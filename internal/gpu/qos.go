package gpu

import (
	"sort"

	"crisp/internal/obs"
)

// This file is the GPU's tenant QoS runtime: per-instance completion
// tracking for scenario mixes. A tenant instance (a rendered frame, one
// compute request) owns a contiguous stream-id range; the runtime counts
// the instance done when its last stream exhausts, records the completion
// cycle, and emits deadline met/missed trace events. All of it is derived
// bookkeeping over architectural events — none of it feeds the state
// digest, and a restore recomputes it from stream progress — so enabling
// QoS tracking never perturbs simulation results.

// QoSInstance is one schedulable unit of a tenant: a frame or a request.
// Its streams are exactly the GPU streams whose ids fall in
// [FirstStream, LastStream].
type QoSInstance struct {
	Arrival  int64 // absolute arrival cycle (== the streams' NotBefore)
	Deadline int64 // absolute deadline cycle; 0 = none
	FirstStream, LastStream int
}

// QoSTenant is one tenant's QoS tracking declaration.
type QoSTenant struct {
	Task      int
	Label     string
	Priority  int
	Instances []QoSInstance
}

// qosInstRT is the live state of one instance.
type qosInstRT struct {
	left int   // streams in range not yet exhausted
	done int64 // completion cycle, valid once left == 0
}

// qosRange indexes an instance by its stream-id range for lookup.
type qosRange struct {
	first, last int
	ti, ii      int
}

// SetQoS installs tenant QoS tracking. Call after every AddStream: the
// per-instance stream counts are derived from the streams present now.
func (g *GPU) SetQoS(tenants []QoSTenant) {
	g.qos = tenants
	g.qosRT = make([][]qosInstRT, len(tenants))
	g.qosRanges = g.qosRanges[:0]
	for ti, qt := range tenants {
		g.qosRT[ti] = make([]qosInstRT, len(qt.Instances))
		for ii, inst := range qt.Instances {
			g.qosRanges = append(g.qosRanges, qosRange{first: inst.FirstStream, last: inst.LastStream, ti: ti, ii: ii})
		}
	}
	sort.Slice(g.qosRanges, func(i, j int) bool { return g.qosRanges[i].first < g.qosRanges[j].first })
	for _, st := range g.streams {
		if r := g.qosLookup(st.def.ID); r != nil {
			rt := &g.qosRT[r.ti][r.ii]
			if st.idx < len(st.def.Kernels) {
				rt.left++
			}
		}
	}
}

// qosLookup finds the instance range owning a stream id (nil if none).
func (g *GPU) qosLookup(stream int) *qosRange {
	i := sort.Search(len(g.qosRanges), func(i int) bool { return g.qosRanges[i].last >= stream })
	if i < len(g.qosRanges) && g.qosRanges[i].first <= stream {
		return &g.qosRanges[i]
	}
	return nil
}

// qosStreamDone records one stream's exhaustion at cycle doneAt and, when
// it completes its instance, settles the instance's deadline accounting.
func (g *GPU) qosStreamDone(stream int, doneAt int64) {
	r := g.qosLookup(stream)
	if r == nil {
		return
	}
	rt := &g.qosRT[r.ti][r.ii]
	if rt.left == 0 {
		return
	}
	rt.left--
	if doneAt > rt.done {
		rt.done = doneAt
	}
	if rt.left != 0 {
		return
	}
	inst := g.qos[r.ti].Instances[r.ii]
	if t := g.tracer; t != nil && inst.Deadline > 0 {
		kind := obs.EvDeadlineMet
		if rt.done > inst.Deadline {
			kind = obs.EvDeadlineMiss
		}
		t.Emit(obs.Event{Cycle: rt.done, Kind: kind, Stream: inst.FirstStream,
			Task: g.qos[r.ti].Task, SM: -1, CTA: -1, Name: g.qos[r.ti].Label,
			Arg: rt.done - inst.Deadline})
	}
}

// emitArrivals emits tenant-arrival trace events for instances whose
// arrival cycle has been reached. Pure observability: gated on the tracer
// and driven by a monotone cursor, it costs nothing when tracing is off.
func (g *GPU) emitArrivals() {
	t := g.tracer
	if t == nil || g.qosArrCursor >= len(g.qosArrEvents) {
		return
	}
	for g.qosArrCursor < len(g.qosArrEvents) {
		ev := g.qosArrEvents[g.qosArrCursor]
		if ev.at > g.now {
			break
		}
		g.qosArrCursor++
		if ev.at == 0 {
			// Immediate arrivals are not events worth a timeline lane.
			continue
		}
		qt := g.qos[ev.ti]
		inst := qt.Instances[ev.ii]
		t.Emit(obs.Event{Cycle: g.now, Kind: obs.EvTenantArrive, Stream: inst.FirstStream,
			Task: qt.Task, SM: -1, CTA: -1, Name: qt.Label, Arg: int64(ev.ii)})
	}
}

// qosArrEvent is one pending arrival emission.
type qosArrEvent struct {
	at     int64
	ti, ii int
}

// buildArrivalEvents precomputes the sorted arrival-event schedule for
// emitArrivals. Called lazily on the first run-loop entry with a tracer.
func (g *GPU) buildArrivalEvents() {
	g.qosArrEvents = g.qosArrEvents[:0]
	for ti, qt := range g.qos {
		for ii, inst := range qt.Instances {
			g.qosArrEvents = append(g.qosArrEvents, qosArrEvent{at: inst.Arrival, ti: ti, ii: ii})
		}
	}
	sort.SliceStable(g.qosArrEvents, func(i, j int) bool { return g.qosArrEvents[i].at < g.qosArrEvents[j].at })
	// A resumed run re-enters mid-schedule: skip events already in the past.
	g.qosArrCursor = 0
	for g.qosArrCursor < len(g.qosArrEvents) && g.qosArrEvents[g.qosArrCursor].at <= g.now {
		g.qosArrCursor++
	}
}

// QoSTenants reports the installed tenant declarations (nil when the run
// has no QoS tracking).
func (g *GPU) QoSTenants() []QoSTenant { return g.qos }

// QoSDone reports each instance's completion cycle (0 while incomplete),
// indexed [tenant][instance].
func (g *GPU) QoSDone() [][]int64 {
	out := make([][]int64, len(g.qosRT))
	for ti, rts := range g.qosRT {
		out[ti] = make([]int64, len(rts))
		for ii, rt := range rts {
			if rt.left == 0 {
				out[ti][ii] = rt.done
			}
		}
	}
	return out
}

// recomputeQoS rebuilds the live instance state from restored stream
// progress and kernel timings. Within one stream kernels serialize and
// completion cycles are monotone, so the max Done over an exhausted
// stream's kernels equals its final kernel's completion — the same value
// the incremental path accumulates.
func (g *GPU) recomputeQoS() {
	if g.qos == nil {
		return
	}
	for ti := range g.qosRT {
		for ii := range g.qosRT[ti] {
			g.qosRT[ti][ii] = qosInstRT{}
		}
	}
	exhausted := make(map[int]bool, len(g.streams))
	for _, st := range g.streams {
		done := st.idx >= len(st.def.Kernels)
		exhausted[st.def.ID] = done
		if r := g.qosLookup(st.def.ID); r != nil && !done {
			g.qosRT[r.ti][r.ii].left++
		}
	}
	for _, ks := range g.kernelStats {
		if !exhausted[ks.Stream] {
			continue
		}
		if r := g.qosLookup(ks.Stream); r != nil {
			rt := &g.qosRT[r.ti][r.ii]
			if ks.Done > rt.done {
				rt.done = ks.Done
			}
		}
	}
}

// SetTaskPriorities installs explicit per-task CTA placement priorities
// (dense by task id, higher first). A nil or all-equal slice keeps plain
// launch order; explicit priorities take precedence over a policy's own
// Prioritizer.
func (g *GPU) SetTaskPriorities(prios []int) {
	uniform := true
	for _, p := range prios {
		if p != prios[0] {
			uniform = false
			break
		}
	}
	if len(prios) == 0 || uniform {
		g.taskPrio = nil
		return
	}
	g.taskPrio = append([]int(nil), prios...)
}

// placementPriority resolves the CTA placement ordering: explicit task
// priorities (scenario mixes) win over the policy's Prioritizer; nil/false
// means plain launch order.
func (g *GPU) placementPriority() (func(task int) int, bool) {
	if tp := g.taskPrio; tp != nil {
		return func(task int) int {
			if task >= 0 && task < len(tp) {
				return tp[task]
			}
			return 0
		}, true
	}
	if pr, ok := g.policy.(Prioritizer); ok {
		return pr.Priority, true
	}
	return nil, false
}
