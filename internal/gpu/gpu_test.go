package gpu

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"crisp/internal/config"
	"crisp/internal/isa"
	"crisp/internal/obs"
	"crisp/internal/robust"
	"crisp/internal/sm"
	"crisp/internal/stats"
	"crisp/internal/trace"
)

// aluKernel builds a kernel of nCTAs × warps × chain-length dependent ops.
func aluKernel(name string, stream, nCTAs, warps, chain int) *trace.Kernel {
	b := trace.NewBuilder(name, trace.KindCompute, stream, warps*32, 32, 0)
	for c := 0; c < nCTAs; c++ {
		b.BeginCTA()
		for w := 0; w < warps; w++ {
			b.BeginWarp()
			r := b.NewReg()
			b.ALU(isa.OpMOV, r, trace.FullMask)
			for i := 0; i < chain; i++ {
				nr := b.NewReg()
				b.ALU(isa.OpFADD, nr, trace.FullMask, r, r)
				r = nr
			}
		}
	}
	return b.Finish()
}

// memKernel builds a streaming-load kernel touching distinct lines.
func memKernel(name string, stream, nCTAs int, base uint64) *trace.Kernel {
	b := trace.NewBuilder(name, trace.KindCompute, stream, 64, 32, 0)
	line := uint64(0)
	for c := 0; c < nCTAs; c++ {
		b.BeginCTA()
		for w := 0; w < 2; w++ {
			b.BeginWarp()
			for i := 0; i < 10; i++ {
				addrs := make([]uint64, 32)
				for l := range addrs {
					addrs[l] = base + line*128 + uint64(l)*4
					line++
				}
				r := b.NewReg()
				b.Mem(isa.OpLDG, r, trace.FullMask, addrs, trace.ClassCompute)
				b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask, r, r)
			}
		}
	}
	return b.Finish()
}

func newGPU(t *testing.T) *GPU {
	t.Helper()
	g, err := New(config.JetsonOrin())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunSingleKernel(t *testing.T) {
	g := newGPU(t)
	k := aluKernel("k", 0, 4, 2, 50)
	if err := g.AddStream(StreamDef{ID: 0, Task: 0, Label: "s0", Kernels: []*trace.Kernel{k}}); err != nil {
		t.Fatal(err)
	}
	cycles, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	st := g.StreamStats()
	if len(st) != 1 {
		t.Fatalf("streams = %d", len(st))
	}
	if st[0].WarpInsts != int64(k.InstCount()) {
		t.Errorf("warp insts = %d, want %d", st[0].WarpInsts, k.InstCount())
	}
	if st[0].KernelsLaunched != 1 || st[0].CTAsLaunched != 4 {
		t.Errorf("launch counters = %d/%d", st[0].KernelsLaunched, st[0].CTAsLaunched)
	}
}

func TestStreamKernelsRunInOrder(t *testing.T) {
	g := newGPU(t)
	k1 := aluKernel("k1", 0, 2, 1, 30)
	k2 := aluKernel("k2", 0, 2, 1, 30)
	if err := g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{k1, k2}}); err != nil {
		t.Fatal(err)
	}
	cycles, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Serialized: both kernels' chains cannot overlap, so the makespan
	// must exceed a single kernel's ≈130 cycles.
	solo := func() int64 {
		g2 := newGPU(t)
		g2.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 2, 1, 30)}})
		c, _ := g2.Run()
		return c
	}()
	if cycles < solo*3/2 {
		t.Errorf("two in-order kernels (%d cycles) should take ≈2× one (%d)", cycles, solo)
	}
}

func TestSeparateStreamsRunConcurrently(t *testing.T) {
	// Two independent small streams under the default policy: the second
	// fills SMs the first leaves idle, so the makespan is far below 2×.
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 4, 1, 200)}})
	g.AddStream(StreamDef{ID: 1, Task: 0, Kernels: []*trace.Kernel{aluKernel("b", 1, 4, 1, 200)}})
	both, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := newGPU(t)
	g2.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 4, 1, 200)}})
	solo, _ := g2.Run()
	if both > solo*3/2 {
		t.Errorf("concurrent streams took %d vs solo %d — no overlap", both, solo)
	}
}

func TestKernelValidationAtAdd(t *testing.T) {
	g := newGPU(t)
	bad := &trace.Kernel{Name: "bad", ThreadsPerCTA: 32}
	if err := g.AddStream(StreamDef{ID: 0, Kernels: []*trace.Kernel{bad}}); err == nil {
		t.Error("accepted invalid kernel")
	}
	k := aluKernel("k", 7, 1, 1, 5)
	if err := g.AddStream(StreamDef{ID: 0, Kernels: []*trace.Kernel{k}}); err == nil {
		t.Error("accepted stream-id mismatch")
	}
}

func TestTaskWindowLimitsActiveStreams(t *testing.T) {
	// 4 single-CTA streams with window 1 must serialize.
	mk := func(id int) StreamDef {
		return StreamDef{ID: id, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", id, 1, 1, 100)}}
	}
	g := newGPU(t)
	g.TaskWindows[0] = 1
	for i := 0; i < 4; i++ {
		g.AddStream(mk(i))
	}
	windowed, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := newGPU(t)
	for i := 0; i < 4; i++ {
		g2.AddStream(mk(i))
	}
	open, _ := g2.Run()
	if windowed < open*2 {
		t.Errorf("window-1 makespan %d should be ≫ unbounded %d", windowed, open)
	}
}

// denyPolicy forbids every placement — Run must error, not hang.
type denyPolicy struct{}

func (denyPolicy) Name() string                        { return "deny" }
func (denyPolicy) AllowSM(int, int) bool               { return false }
func (denyPolicy) Limit(int, int) (sm.Resources, bool) { return sm.Resources{}, false }
func (denyPolicy) OnLaunch(int64, *trace.Kernel, int)  {}
func (denyPolicy) Tick(int64)                          {}

func TestInfeasiblePolicyErrors(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 1, 1, 5)}})
	g.SetPolicy(denyPolicy{})
	if _, err := g.Run(); err == nil {
		t.Fatal("deadlocked configuration did not error")
	}
}

// halfPolicy restricts task 0 to the first half of SMs.
type halfPolicy struct{ n int }

func (p halfPolicy) Name() string { return "half" }
func (p halfPolicy) AllowSM(smID, task int) bool {
	if task == 0 {
		return smID < p.n/2
	}
	return smID >= p.n/2
}
func (halfPolicy) Limit(int, int) (sm.Resources, bool) { return sm.Resources{}, false }
func (halfPolicy) OnLaunch(int64, *trace.Kernel, int)  {}
func (halfPolicy) Tick(int64)                          {}

func TestPolicyRestrictsPlacement(t *testing.T) {
	g := newGPU(t)
	cfg := g.Config()
	g.SetPolicy(halfPolicy{n: cfg.NumSMs})
	// Enough CTAs to fill the whole GPU; with half the SMs the makespan
	// roughly doubles versus no policy.
	big := func(stream int) *trace.Kernel { return aluKernel("big", stream, cfg.NumSMs*4, 8, 100) }
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{big(0)}})
	halfCycles, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := newGPU(t)
	g2.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{big(0)}})
	fullCycles, _ := g2.Run()
	if halfCycles < fullCycles*3/2 {
		t.Errorf("half-SM makespan %d vs full %d — restriction not applied", halfCycles, fullCycles)
	}
}

func TestTimelineSampling(t *testing.T) {
	g := newGPU(t)
	g.Timeline = &stats.Timeline{Interval: 64}
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 8, 4, 200)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(g.Timeline.Samples) < 2 {
		t.Fatalf("timeline samples = %d", len(g.Timeline.Samples))
	}
	any := false
	for _, s := range g.Timeline.Samples {
		if s.WarpsByStream[0] > 0 {
			any = true
		}
	}
	if !any {
		t.Error("timeline never saw resident warps")
	}
}

func TestMemCountersFoldIntoStreams(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 3, Task: 0, Kernels: []*trace.Kernel{memKernel("m", 3, 4, 1<<30)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.StreamStats()[0]
	if st.L1Accesses == 0 || st.L2Accesses == 0 || st.DRAMReads == 0 {
		t.Errorf("memory counters empty: %+v", *st)
	}
}

func TestTaskStatsAggregation(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 1, 1, 10)}})
	g.AddStream(StreamDef{ID: 1, Task: 0, Kernels: []*trace.Kernel{aluKernel("b", 1, 1, 1, 10)}})
	g.AddStream(StreamDef{ID: 5, Task: 1, Kernels: []*trace.Kernel{aluKernel("c", 5, 1, 1, 10)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	agg := g.TaskStats()
	if len(agg) != 2 {
		t.Fatalf("tasks = %d", len(agg))
	}
	if agg[0].WarpInsts != 2*agg[1].WarpInsts {
		t.Errorf("task0 %d vs task1 %d warp insts", agg[0].WarpInsts, agg[1].WarpInsts)
	}
}

func TestDeterministicCycles(t *testing.T) {
	run := func() int64 {
		g := newGPU(t)
		g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{memKernel("m", 0, 8, 1<<28)}})
		g.AddStream(StreamDef{ID: 1, Task: 1, Kernels: []*trace.Kernel{aluKernel("a", 1, 8, 4, 100)}})
		c, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

// prioPolicy is an even intra-SM split that places task 1's CTAs first.
type prioPolicy struct{ limit sm.Resources }

func (p prioPolicy) Name() string          { return "prio" }
func (p prioPolicy) AllowSM(int, int) bool { return true }
func (p prioPolicy) Limit(_, task int) (sm.Resources, bool) {
	return p.limit, true
}
func (prioPolicy) OnLaunch(int64, *trace.Kernel, int) {}
func (prioPolicy) Tick(int64)                         {}
func (prioPolicy) Priority(task int) int              { return task }

func TestPrioritizerPlacesHighPriorityFirst(t *testing.T) {
	// Two equally sized kernels contend for space; the prioritized one
	// must finish no later than the other.
	run := func(usePrio bool) (int64, int64) {
		g := newGPU(t)
		full := sm.Full(g.Config())
		if usePrio {
			g.SetPolicy(prioPolicy{limit: sm.Fraction(full, 1, 2)})
		}
		big := g.Config().NumSMs * 16
		g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, big, 4, 150)}})
		g.AddStream(StreamDef{ID: 1, Task: 1, Kernels: []*trace.Kernel{aluKernel("b", 1, big, 4, 150)}})
		if _, err := g.Run(); err != nil {
			t.Fatal(err)
		}
		st := g.StreamStats()
		return st[0].Cycles, st[1].Cycles
	}
	_, prioTask1 := run(true)
	_, plainTask1 := run(false)
	if prioTask1 > plainTask1 {
		t.Errorf("prioritized task finished later (%d) than unprioritized (%d)", prioTask1, plainTask1)
	}
}

func TestKernelStatsRecorded(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{
		aluKernel("first", 0, 2, 1, 30),
		aluKernel("second", 0, 2, 1, 30),
	}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	ks := g.KernelStats()
	if len(ks) != 2 {
		t.Fatalf("kernel stats = %d, want 2", len(ks))
	}
	if ks[0].Name != "first" || ks[1].Name != "second" {
		t.Errorf("completion order wrong: %v, %v", ks[0].Name, ks[1].Name)
	}
	for _, k := range ks {
		if k.Done < k.Launched || k.CTAs != 2 {
			t.Errorf("stat inconsistent: %+v", k)
		}
	}
	// In-order stream: second launches after first finishes.
	if ks[1].Launched < ks[0].Done {
		t.Errorf("second launched at %d before first done at %d", ks[1].Launched, ks[0].Done)
	}
}

// TestStallConservation checks the issue-slot partition law: every
// scheduler slot is exactly one of an issue (per-stream WarpInsts), an
// attributed stall (per-stream Stalls), or an empty slot.
func TestStallConservation(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 8, 4, 100)}})
	g.AddStream(StreamDef{ID: 7, Task: 1, Kernels: []*trace.Kernel{memKernel("m", 7, 6, 1<<28)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var accounted int64
	for _, st := range g.StreamStats() {
		accounted += st.WarpInsts + st.StallTotal()
	}
	accounted += g.EmptySlots()
	if g.SchedSlots() == 0 {
		t.Fatal("no scheduler slots counted")
	}
	if accounted != g.SchedSlots() {
		t.Errorf("slot conservation violated: %d accounted (issues+stalls+empty) vs %d slots",
			accounted, g.SchedSlots())
	}
}

// TestStallCausesAttributed checks that dependence-heavy and memory-heavy
// kernels produce stalls of the expected classes.
func TestStallCausesAttributed(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 2, 1, 400)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.StreamStats()[0]
	if st.Stalls[obs.StallScoreboard] == 0 {
		t.Errorf("single-warp dependence chain produced no scoreboard stalls: %v", st.Stalls)
	}

	g2 := newGPU(t)
	g2.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{memKernel("m", 0, 2, 1<<28)}})
	if _, err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	st2 := g2.StreamStats()[0]
	if st2.Stalls[obs.StallMemPending] == 0 {
		t.Errorf("streaming-load kernel produced no mem-pending stalls: %v", st2.Stalls)
	}
}

// TestTracerKernelAndCTAEvents checks the event stream for one kernel:
// paired launch/done and issue/commit markers with sane cycles.
func TestTracerKernelAndCTAEvents(t *testing.T) {
	g := newGPU(t)
	rec := obs.NewRecorder()
	g.SetTracer(rec)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 4, 2, 50)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[obs.EventKind]int{}
	var launch, done obs.Event
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
		switch ev.Kind {
		case obs.EvKernelLaunch:
			launch = ev
		case obs.EvKernelDone:
			done = ev
		}
	}
	if counts[obs.EvKernelLaunch] != 1 || counts[obs.EvKernelDone] != 1 {
		t.Fatalf("kernel events = %v", counts)
	}
	if counts[obs.EvCTAIssue] != 4 || counts[obs.EvCTACommit] != 4 {
		t.Errorf("CTA events = %v, want 4 issues and 4 commits", counts)
	}
	if launch.Name != "k" || launch.Arg != 4 {
		t.Errorf("launch event = %+v", launch)
	}
	if done.Cycle <= launch.Cycle {
		t.Errorf("kernel done at %d not after launch at %d", done.Cycle, launch.Cycle)
	}
}

// TestNilTracerEmitsNothing is the fast-path sanity check: an untraced
// run must not allocate or emit anywhere (it would nil-panic if any site
// skipped its guard).
func TestNilTracerEmitsNothing(t *testing.T) {
	g := newGPU(t)
	if g.Tracer() != nil {
		t.Fatal("tracer should default to nil")
	}
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{memKernel("m", 0, 4, 1<<28)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineIntervalNotMutated checks that Run defaults the sampling
// cadence locally instead of writing to the caller-owned structs.
func TestTimelineIntervalNotMutated(t *testing.T) {
	g := newGPU(t)
	g.Timeline = &stats.Timeline{} // Interval deliberately zero
	g.Metrics = &obs.IntervalSeries{}
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 8, 4, 200)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Timeline.Interval != 0 {
		t.Errorf("Run mutated caller-owned Timeline.Interval to %d", g.Timeline.Interval)
	}
	if g.Metrics.Interval != 0 {
		t.Errorf("Run mutated caller-owned Metrics.Interval to %d", g.Metrics.Interval)
	}
	if len(g.Timeline.Samples) == 0 {
		t.Error("default timeline cadence produced no samples")
	}
}

// TestTimelineCadence checks the sampling spacing: consecutive samples
// are at least Interval cycles apart (the event-accelerated loop may
// overshoot, never undershoot).
func TestTimelineCadence(t *testing.T) {
	g := newGPU(t)
	g.Timeline = &stats.Timeline{Interval: 64}
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("k", 0, 8, 4, 300)}})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	s := g.Timeline.Samples
	if len(s) < 3 {
		t.Fatalf("samples = %d, want several", len(s))
	}
	for i := 1; i < len(s); i++ {
		if d := s[i].Cycle - s[i-1].Cycle; d < 64 {
			t.Errorf("samples %d cycles apart, want >= 64", d)
		}
	}
}

// TestIntervalMetricsSampling checks the metrics series: per-task points
// with interval-local (not cumulative) rates and a closing tail sample.
func TestIntervalMetricsSampling(t *testing.T) {
	g := newGPU(t)
	g.Metrics = &obs.IntervalSeries{Interval: 256}
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("a", 0, 8, 4, 200)}})
	g.AddStream(StreamDef{ID: 9, Task: 1, Kernels: []*trace.Kernel{memKernel("m", 9, 6, 1<<28)}})
	cycles, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	samples := g.Metrics.Samples
	if len(samples) < 2 {
		t.Fatalf("metrics samples = %d, want several over %d cycles", len(samples), cycles)
	}
	if first := samples[0].Cycle; first < 256 {
		t.Errorf("first sample at cycle %d, want >= one interval (256)", first)
	}
	if tail := samples[len(samples)-1].Cycle; tail != cycles {
		t.Errorf("tail sample at %d, want run end %d", tail, cycles)
	}
	// Interval IPC must be a rate, not a cumulative count: bounded by the
	// whole GPU's theoretical issue width.
	maxIPC := 0.0
	sawBoth := false
	for _, smp := range samples {
		tasks := map[int]bool{}
		for _, p := range smp.Points {
			tasks[p.Stream] = true
			if p.IPC > maxIPC {
				maxIPC = p.IPC
			}
			if p.IPC < 0 {
				t.Errorf("negative IPC %f at cycle %d", p.IPC, smp.Cycle)
			}
		}
		if tasks[0] && tasks[1] {
			sawBoth = true
		}
	}
	cfg := g.Config()
	if bound := float64(cfg.NumSMs * cfg.SchedulersPerSM); maxIPC > bound {
		t.Errorf("interval IPC %f exceeds machine issue width %f (cumulative, not delta?)", maxIPC, bound)
	}
	if !sawBoth {
		t.Error("no sample carried points for both tasks")
	}
}

// livelockKernel builds a two-warp CTA where only the first warp arrives
// at a barrier — a guaranteed barrier livelock the static validators
// cannot see.
func livelockKernel(stream int) *trace.Kernel {
	b := trace.NewBuilder("livelock", trace.KindCompute, stream, 64, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	b.ALU(isa.OpMOV, b.NewReg(), trace.FullMask)
	b.Barrier()
	b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask)
	b.BeginWarp()
	b.ALU(isa.OpMOV, b.NewReg(), trace.FullMask)
	return b.Finish()
}

func TestWatchdogCatchesBarrierLivelock(t *testing.T) {
	g := newGPU(t)
	if err := g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{livelockKernel(0)}}); err != nil {
		t.Fatal(err)
	}
	_, err := g.Run()
	se, ok := robust.AsSimError(err)
	if !ok {
		t.Fatalf("err = %v, want *robust.SimError", err)
	}
	if se.Kind != robust.KindWatchdog {
		t.Fatalf("kind = %v, want watchdog", se.Kind)
	}
	if se.Dump == nil {
		t.Fatal("no crash dump attached")
	}
	if se.Dump.Kernel != "livelock" {
		t.Errorf("dump names kernel %q, want livelock", se.Dump.Kernel)
	}
	blocked := 0
	for _, s := range se.Dump.SMs {
		blocked += s.BarrierBlocked
	}
	if blocked == 0 {
		t.Error("dump shows no barrier-blocked warps for a barrier livelock")
	}
	// The dump must serialize cleanly to JSON.
	var buf bytes.Buffer
	if err := se.Dump.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("dump JSON is invalid")
	}
	for _, want := range []string{"livelock", "\"sms\"", "\"streams\""} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("dump JSON missing %q", want)
		}
	}
}

// TestLivelockCaughtEvenWithWatchdogDisabled: the barrier-livelock check
// is structural certainty, not a heuristic, so it fires regardless of the
// watchdog window setting.
func TestLivelockCaughtEvenWithWatchdogDisabled(t *testing.T) {
	g := newGPU(t)
	g.WatchdogWindow = -1
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{livelockKernel(0)}})
	_, err := g.Run()
	if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindWatchdog {
		t.Fatalf("err = %v, want watchdog SimError", err)
	}
}

func TestCycleBudget(t *testing.T) {
	g := newGPU(t)
	g.CycleBudget = 64
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("long", 0, 32, 4, 400)}})
	cycles, err := g.Run()
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindBudget {
		t.Fatalf("err = %v, want budget SimError", err)
	}
	if cycles <= 64 {
		t.Errorf("budget error reported at cycle %d, want > budget", cycles)
	}
	if se.Dump == nil || se.Dump.Policy == "" {
		t.Error("budget dump missing policy name")
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{aluKernel("long", 0, 128, 4, 400)}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.RunContext(ctx)
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindCanceled {
		t.Fatalf("err = %v, want canceled SimError", err)
	}
	if se.Err == nil {
		// the context error should be preserved somewhere in the chain
		t.Log("note: canceled SimError carries no wrapped cause")
	}
}

func TestAddStreamRejectsUnplaceableCTA(t *testing.T) {
	g := newGPU(t)
	k := aluKernel("huge", 0, 1, 65, 5) // 65 warps > 64 per SM
	err := g.AddStream(StreamDef{ID: 0, Task: 0, Kernels: []*trace.Kernel{k}})
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindDeadlock {
		t.Fatalf("err = %v, want static deadlock SimError", err)
	}
	if se.Dump == nil || se.Dump.Kernel != "huge" {
		t.Errorf("dump does not name the unplaceable kernel: %+v", se.Dump)
	}
}

func TestDeadlockDumpHasStreamProgress(t *testing.T) {
	g := newGPU(t)
	g.AddStream(StreamDef{ID: 0, Task: 0, Label: "victim", Kernels: []*trace.Kernel{aluKernel("k", 0, 2, 1, 5)}})
	g.SetPolicy(denyPolicy{})
	_, err := g.Run()
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindDeadlock {
		t.Fatalf("err = %v, want deadlock SimError", err)
	}
	d := se.Dump
	if d == nil {
		t.Fatal("no dump")
	}
	if d.Policy != "deny" {
		t.Errorf("dump policy = %q, want deny", d.Policy)
	}
	found := false
	for _, st := range d.Streams {
		if st.Label == "victim" && st.Running != nil && st.Running.Name == "k" {
			found = true
			if st.Running.CTAsTotal != 2 {
				t.Errorf("running progress = %+v, want 2 CTAs total", st.Running)
			}
		}
	}
	if !found {
		t.Errorf("dump streams lack the victim stream's running kernel: %+v", d.Streams)
	}
}
