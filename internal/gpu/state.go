package gpu

import (
	"fmt"

	"crisp/internal/robust"
	"crisp/internal/sm"
	"crisp/internal/snapshot"
	"crisp/internal/trace"
)

// This file implements whole-GPU checkpoint capture and restore. Capture
// walks every slice in its natural order (streams in AddStream order,
// launches in launch order, SMs by id), so the serialized state — and the
// determinism digest over it — is identical across processes for identical
// machine state. Restore requires a freshly built GPU with the same
// streams added and the same policy installed; everything else (resident
// CTAs, warps, caches, counters, policy state) comes from the snapshot.

func gpuStateErr(format string, args ...any) error {
	return &robust.SimError{Kind: robust.KindSnapshot, Msg: fmt.Sprintf(format, args...)}
}

// CaptureState snapshots the complete simulator state at the current
// cycle. It is safe at any run-loop iteration boundary (the built-in
// checkpoint hook only calls it there).
func (g *GPU) CaptureState() (*snapshot.GPUState, error) {
	// Settle sleep debt before anything is captured: the flush credits
	// stall slots into the per-stream stats, which are serialized below
	// before the cores are, so settling inside each core's own capture
	// would be too late for digest parity with a cycle-by-cycle run.
	g.settleCores()
	st := &snapshot.GPUState{}
	a := &st.Arch
	a.Cycle = g.now
	a.TotalIssued = g.totalIssued
	a.MaxTask = g.maxTask
	a.PolicyName = g.policyName()
	if ps, ok := g.policy.(StateSnapshotter); ok {
		blob, err := ps.CaptureState()
		if err != nil {
			return nil, gpuStateErr("capturing %s policy state: %v", a.PolicyName, err)
		}
		a.PolicyBlob = blob
	}

	byID := make(map[int]*streamRT, len(g.streams))
	a.Streams = make([]snapshot.StreamState, len(g.streams))
	for i, s := range g.streams {
		byID[s.def.ID] = s
		a.Streams[i] = snapshot.StreamState{
			ID:         s.def.ID,
			NextKernel: s.idx,
			Active:     s.active,
			Started:    s.started,
			StartCycle: s.start,
			Stat:       captureStreamStat(s),
		}
	}

	a.Running = make([]snapshot.LaunchState, len(g.running))
	for i, l := range g.running {
		ki, err := kernelIndexIn(l.stream, l.k)
		if err != nil {
			return nil, err
		}
		a.Running[i] = snapshot.LaunchState{
			StreamID:  l.stream.def.ID,
			KernelIdx: ki,
			Task:      l.task,
			NextCTA:   l.nextCTA,
			DoneCTAs:  l.doneCTAs,
			Started:   l.started,
			LastDone:  l.lastDone,
		}
	}

	a.Kernels = make([]snapshot.KernelStatState, len(g.kernelStats))
	for i, ks := range g.kernelStats {
		a.Kernels[i] = snapshot.KernelStatState(ks)
	}

	a.InstsBySMTask = make([][]int64, len(g.instsBySMTask))
	for i, row := range g.instsBySMTask {
		a.InstsBySMTask[i] = append([]int64(nil), row...)
	}

	kernelIdx := func(stream int, k *trace.Kernel) (int, error) {
		s := byID[stream]
		if s == nil {
			return 0, gpuStateErr("resident CTA references unknown stream %d", stream)
		}
		return kernelIndexIn(s, k)
	}
	a.Cores = make([]snapshot.CoreState, len(g.cores))
	for i, core := range g.cores {
		cs, err := core.CaptureState(g.now, kernelIdx)
		if err != nil {
			return nil, err
		}
		a.Cores[i] = cs
	}
	a.Mem = g.memsys.CaptureState()

	st.Obs.Loop = snapshot.LoopState{
		LastTick:       g.loop.lastTick,
		NextSample:     g.loop.nextSample,
		NextMetrics:    g.loop.nextMetrics,
		NextCheckpoint: g.loop.nextCheckpoint,
		NextDigest:     g.loop.nextDigest,
		LastIssued:     g.loop.lastIssued,
		LastProgress:   g.loop.lastProgress,
		Iter:           g.loop.iter,
	}
	st.Obs.MPrev = make([]snapshot.TaskSnapState, len(g.mPrev))
	for i, p := range g.mPrev {
		st.Obs.MPrev[i] = snapshot.TaskSnapState{
			WarpInsts: p.warpInsts, L1A: p.l1A, L1M: p.l1M,
			L2A: p.l2A, L2M: p.l2M, DRAMBytes: p.dramBytes, HasStreams: p.hasStreams,
		}
	}
	st.Obs.MPrevCycle = g.mPrevCycle
	return st, nil
}

// kernelIndexIn locates k in a stream's kernel list by identity.
func kernelIndexIn(s *streamRT, k *trace.Kernel) (int, error) {
	for i, sk := range s.def.Kernels {
		if sk == k {
			return i, nil
		}
	}
	return 0, gpuStateErr("kernel %q not found in stream %d", k.Name, s.def.ID)
}

func captureStreamStat(s *streamRT) snapshot.StreamCounters {
	st := s.stat
	return snapshot.StreamCounters{
		Cycles:          st.Cycles,
		WarpInsts:       st.WarpInsts,
		ThreadInsts:     st.ThreadInsts,
		TexAccesses:     st.TexAccesses,
		KernelsLaunched: st.KernelsLaunched,
		CTAsLaunched:    st.CTAsLaunched,
		Stalls:          append([]int64(nil), st.Stalls[:]...),
	}
}

// RestoreState loads a capture into this GPU. The GPU must be freshly
// built for the same config, with the same streams added (AddStream) and
// the same policy installed (SetPolicy) as the captured run — the snapshot
// carries progress and machine state, not workload definitions.
func (g *GPU) RestoreState(st *snapshot.GPUState) error {
	a := &st.Arch
	if a.PolicyName != g.policyName() {
		return gpuStateErr("snapshot was taken under policy %q, this GPU runs %q", a.PolicyName, g.policyName())
	}
	ps, isSnapshotter := g.policy.(StateSnapshotter)
	if isSnapshotter != (a.PolicyBlob != nil) {
		return gpuStateErr("policy %q state mismatch: snapshot blob present=%v, policy snapshots state=%v",
			a.PolicyName, a.PolicyBlob != nil, isSnapshotter)
	}
	if len(a.Streams) != len(g.streams) {
		return gpuStateErr("snapshot has %d streams, GPU has %d — not the same job", len(a.Streams), len(g.streams))
	}
	if len(a.Cores) != len(g.cores) || len(a.InstsBySMTask) != len(g.instsBySMTask) {
		return gpuStateErr("snapshot has %d SMs, GPU has %d — not the same config", len(a.Cores), len(g.cores))
	}
	if a.MaxTask != g.maxTask {
		return gpuStateErr("snapshot max task %d disagrees with GPU's %d", a.MaxTask, g.maxTask)
	}

	byID := make(map[int]*streamRT, len(g.streams))
	for i, s := range g.streams {
		ss := a.Streams[i]
		if ss.ID != s.def.ID {
			return gpuStateErr("stream %d in snapshot is id %d, GPU has id %d — stream order differs", i, ss.ID, s.def.ID)
		}
		if ss.NextKernel < 0 || ss.NextKernel > len(s.def.Kernels) {
			return gpuStateErr("stream %d progress %d outside its %d kernels", ss.ID, ss.NextKernel, len(s.def.Kernels))
		}
		if len(ss.Stat.Stalls) != len(s.stat.Stalls) {
			return gpuStateErr("stream %d snapshot carries %d stall causes, this build has %d", ss.ID, len(ss.Stat.Stalls), len(s.stat.Stalls))
		}
		byID[s.def.ID] = s
	}

	// Structure validated; now mutate. Streams first.
	for i, s := range g.streams {
		ss := a.Streams[i]
		s.idx = ss.NextKernel
		s.active = ss.Active
		s.started = ss.Started
		s.start = ss.StartCycle
		restoreStreamStat(s, ss.Stat)
	}

	g.running = g.running[:0]
	launchByStream := make(map[int]*launch, len(a.Running))
	for _, ls := range a.Running {
		s := byID[ls.StreamID]
		if s == nil {
			return gpuStateErr("running launch references unknown stream %d", ls.StreamID)
		}
		if ls.KernelIdx < 0 || ls.KernelIdx >= len(s.def.Kernels) {
			return gpuStateErr("running launch kernel index %d outside stream %d's %d kernels", ls.KernelIdx, ls.StreamID, len(s.def.Kernels))
		}
		k := s.def.Kernels[ls.KernelIdx]
		if ls.NextCTA < 0 || ls.NextCTA > len(k.CTAs) || ls.DoneCTAs < 0 || ls.DoneCTAs > ls.NextCTA {
			return gpuStateErr("running launch of %q has impossible CTA progress issued=%d done=%d of %d", k.Name, ls.NextCTA, ls.DoneCTAs, len(k.CTAs))
		}
		l := &launch{
			k: k, task: ls.Task, stream: s,
			nextCTA: ls.NextCTA, doneCTAs: ls.DoneCTAs,
			started: ls.Started, lastDone: ls.LastDone,
		}
		g.running = append(g.running, l)
		launchByStream[ls.StreamID] = l
	}

	g.kernelStats = make([]KernelStat, len(a.Kernels))
	for i, ks := range a.Kernels {
		g.kernelStats[i] = KernelStat(ks)
	}

	for i, row := range a.InstsBySMTask {
		if len(row) != len(g.instsBySMTask[i]) {
			return gpuStateErr("per-SM instruction counter width mismatch on SM %d", i)
		}
		copy(g.instsBySMTask[i], row)
	}

	env := sm.RestoreEnv{
		Kernel: func(stream, kernelIdx int) (*trace.Kernel, error) {
			s := byID[stream]
			if s == nil {
				return nil, gpuStateErr("resident CTA references unknown stream %d", stream)
			}
			if kernelIdx < 0 || kernelIdx >= len(s.def.Kernels) {
				return nil, gpuStateErr("resident CTA references kernel %d outside stream %d's %d kernels", kernelIdx, stream, len(s.def.Kernels))
			}
			return s.def.Kernels[kernelIdx], nil
		},
		OnComplete: func(stream, kernelIdx, ctaIdx, smID int) func(now int64) {
			l := launchByStream[stream]
			if l == nil {
				return nil
			}
			return g.completionFn(l, smID, ctaIdx)
		},
	}
	for i, core := range g.cores {
		if err := core.RestoreState(a.Cores[i], env); err != nil {
			return err
		}
		// A resident CTA whose stream has no running launch would complete
		// into the void; reject the snapshot as inconsistent.
		for _, cs := range a.Cores[i].CTAs {
			if launchByStream[cs.StreamID] == nil {
				return gpuStateErr("SM %d holds a CTA of stream %d, which has no running launch", i, cs.StreamID)
			}
		}
	}

	if err := g.memsys.RestoreState(a.Mem); err != nil {
		return err
	}

	if a.PolicyBlob != nil {
		if err := ps.RestoreState(a.PolicyBlob); err != nil {
			return err
		}
	}

	g.now = a.Cycle
	g.totalIssued = a.TotalIssued
	g.lastStream, g.lastStat = -1, nil

	g.loop = loopCursors{
		lastTick:       st.Obs.Loop.LastTick,
		nextSample:     st.Obs.Loop.NextSample,
		nextMetrics:    st.Obs.Loop.NextMetrics,
		nextCheckpoint: st.Obs.Loop.NextCheckpoint,
		nextDigest:     st.Obs.Loop.NextDigest,
		lastIssued:     st.Obs.Loop.LastIssued,
		lastProgress:   st.Obs.Loop.LastProgress,
		iter:           st.Obs.Loop.Iter,
	}
	g.mPrev = make([]taskSnap, len(st.Obs.MPrev))
	for i, p := range st.Obs.MPrev {
		g.mPrev[i] = taskSnap{
			warpInsts: p.WarpInsts, l1A: p.L1A, l1M: p.L1M,
			l2A: p.L2A, l2M: p.L2M, dramBytes: p.DRAMBytes, hasStreams: p.HasStreams,
		}
	}
	g.mPrevCycle = st.Obs.MPrevCycle
	g.resumed = true
	// Tenant QoS state is derived bookkeeping: rebuild it from the
	// restored stream progress and kernel timings rather than carrying it
	// in the snapshot.
	g.recomputeQoS()
	return nil
}

func restoreStreamStat(s *streamRT, c snapshot.StreamCounters) {
	st := s.stat
	st.Cycles = c.Cycles
	st.WarpInsts = c.WarpInsts
	st.ThreadInsts = c.ThreadInsts
	st.TexAccesses = c.TexAccesses
	// The memory-system mirrors (L1/L2/DRAM) are deliberately not restored
	// here: the run-end fold rewrites them from the restored MemState
	// counters.
	st.KernelsLaunched = c.KernelsLaunched
	st.CTAsLaunched = c.CTAsLaunched
	copy(st.Stalls[:], c.Stalls)
}

// StateDigest hashes the current architectural state into one determinism
// digest entry.
func (g *GPU) StateDigest() (snapshot.DigestEntry, error) {
	st, err := g.CaptureState()
	if err != nil {
		return snapshot.DigestEntry{}, err
	}
	h, err := snapshot.ArchDigest(&st.Arch)
	if err != nil {
		return snapshot.DigestEntry{}, err
	}
	return snapshot.DigestEntry{Cycle: g.now, Digest: h}, nil
}

// Digests returns the determinism-auditor series collected so far (one
// entry per DigestEvery boundary, plus the final entry at completion).
func (g *GPU) Digests() []snapshot.DigestEntry { return g.digests }

// Resumed reports whether this GPU's state was loaded from a snapshot.
func (g *GPU) Resumed() bool { return g.resumed }
