// Package gpu assembles the whole simulated GPU: the SM array, the shared
// memory system, the global CTA scheduler with pluggable partitioning
// policies, and multi-stream execution with per-stream statistics.
//
// Streams are in-order command queues (each rendering batch is a stream;
// compute kernels carry their program's stream). Kernels from different
// streams execute concurrently subject to the installed partition policy;
// within a stream kernels are serialized. By default the CTA scheduler
// behaves like stock Accel-Sim: it drains CTAs from one kernel exhaustively
// before moving to the next, so concurrency only arises when a kernel
// cannot fill the machine or a policy reserves resources.
package gpu

import (
	"context"
	"fmt"
	"sort"

	"crisp/internal/config"
	"crisp/internal/engine"
	"crisp/internal/isa"
	"crisp/internal/mem"
	"crisp/internal/obs"
	"crisp/internal/robust"
	"crisp/internal/sm"
	"crisp/internal/snapshot"
	"crisp/internal/stats"
	"crisp/internal/trace"
)

// Prioritizer is an optional Policy extension: when implemented, pending
// CTAs are placed in descending task priority (ties by launch order),
// giving latency-critical tasks (rendering with a frame deadline) first
// claim on freed resources — the QoS dimension the paper's future work
// calls out.
type Prioritizer interface {
	Priority(task int) int
}

// StateDescriber is an optional Policy extension: a one-line description
// of the policy's current state (its last decision), embedded in crash
// dumps so postmortems can see what the policy had just done.
type StateDescriber interface {
	DescribeState() string
}

// StateSnapshotter is an optional Policy extension for policies with
// dynamic state (WarpedSlicer's sampling phase, TAP's set split and
// utility monitors): a serialized blob carried in checkpoints and restored
// on resume. Policies without it are treated as stateless — their behavior
// is fully determined by name and configuration.
type StateSnapshotter interface {
	CaptureState() ([]byte, error)
	RestoreState(blob []byte) error
}

// Policy is a GPU partitioning scheme. Implementations live in
// internal/partition; the zero policy (nil) shares everything.
type Policy interface {
	Name() string
	// AllowSM reports whether the task may place CTAs on the SM.
	AllowSM(smID, task int) bool
	// Limit returns the intra-SM resource envelope for the task on the
	// SM; ok=false means "no intra-SM limit" (whole SM).
	Limit(smID, task int) (res sm.Resources, ok bool)
	// OnLaunch runs when a kernel begins issuing CTAs (kernel launches
	// and, for graphics, new drawcall batches) so dynamic policies can
	// re-evaluate.
	OnLaunch(now int64, k *trace.Kernel, task int)
	// Tick runs periodically with the current cycle.
	Tick(now int64)
}

// StreamDef declares one in-order stream of kernels belonging to a task.
type StreamDef struct {
	ID      int
	Task    int
	Label   string
	Kernels []*trace.Kernel
	// NotBefore gates the stream's activation: it may not start before
	// this cycle (a tenant arrival in a scenario mix). Zero — the default —
	// is eligible immediately. Arrivals are wake events: an otherwise-idle
	// machine jumps straight to the next arrival cycle.
	NotBefore int64
}

// maxTasks bounds the number of distinct tasks a run may contain. The
// paper studies pairs; the framework extends to more (its stated
// extension), and eight is far beyond any experiment here.
const maxTasks = 8

// KernelStat records one kernel launch's timing.
type KernelStat struct {
	Name     string
	Stream   int
	Task     int
	Launched int64 // cycle the kernel entered the running set
	Done     int64 // cycle its last CTA committed
	CTAs     int
}

// launch tracks a kernel that is currently issuing or executing CTAs.
type launch struct {
	k        *trace.Kernel
	task     int
	stream   *streamRT
	nextCTA  int
	doneCTAs int
	started  int64
	lastDone int64
}

type streamRT struct {
	def     StreamDef
	idx     int // next kernel to launch
	active  bool
	stat    *stats.Stream
	start   int64
	started bool
}

// GPU is one simulated GPU instance, configured for a single Run.
type GPU struct {
	cfg    config.GPU
	memsys *mem.System
	cores  []*sm.Core
	policy Policy

	streams []*streamRT
	running []*launch

	statsByStream map[int]*stats.Stream
	lastStream    int
	lastStat      *stats.Stream

	// instsBySMTask[sm][task] counts warp instructions, for policies that
	// sample per-SM progress (warped-slicer).
	instsBySMTask [][]int64

	// TaskWindows limits how many streams of a task may be active at
	// once (the rendering pipeline's in-flight batch window). Zero means
	// unlimited.
	TaskWindows map[int]int

	// Timeline, when non-nil, receives occupancy samples every
	// Timeline.Interval cycles (paper Fig. 13). A non-positive Interval
	// is treated as the default cadence without modifying the caller's
	// struct.
	Timeline *stats.Timeline

	// Metrics, when non-nil, receives per-task interval metrics (IPC,
	// occupancy, cache hit rates, DRAM bandwidth) every Metrics.Interval
	// cycles.
	Metrics *obs.IntervalSeries

	// WatchdogWindow configures the forward-progress watchdog: the run
	// fails with a watchdog SimError when no warp instruction issues for
	// this many cycles while warps are resident. Zero selects
	// DefaultWatchdogWindow; negative disables the watchdog.
	WatchdogWindow int64

	// CycleBudget, when positive, bounds the run: crossing it fails the
	// run with a budget SimError carrying a crash dump.
	CycleBudget int64

	// CheckpointEvery and CheckpointSink arm periodic checkpointing: every
	// CheckpointEvery cycles the run loop invokes the sink at an iteration
	// boundary (post policy-tick), where the captured state resumes
	// bit-identically. Sink errors abort the run with a snapshot SimError.
	CheckpointEvery int64
	CheckpointSink  func() error

	// Workers selects the SM-stepping engine: 1 (or negative) runs the
	// serial reference engine; N > 1 runs the two-phase parallel engine
	// with N worker goroutines; 0 (the default) resolves to the GPU
	// config's Workers field, and from there to auto (GOMAXPROCS, capped
	// at the SM count). Results are bit-identical at every setting — the
	// parallel engine's serial commit phase replays the reference
	// engine's exact effect order — so this knob trades host CPUs for
	// wall-clock time only.
	Workers int

	// NoSkip disables event-driven core sleeping: every busy core is
	// stepped at every visited cycle (the legacy oracle path). Results are
	// bit-identical with skipping on or off — wakeAt bookkeeping, stall
	// attribution, digests, and checkpoints all match — so this knob only
	// trades wall-clock time for a reference to diff against.
	NoSkip bool

	// DigestEvery arms the determinism auditor: every DigestEvery cycles
	// the run loop hashes the architectural state and appends the digest
	// to the series returned by Digests. The digest covers only
	// architectural state, so tracing/metrics/checkpointing never perturb
	// it.
	DigestEvery int64

	tracer     obs.Tracer
	taskLabels map[int]string
	mPrev      []taskSnap
	mPrevCycle int64

	// taskPrio holds explicit per-task CTA placement priorities
	// (SetTaskPriorities); nil means launch order / policy Prioritizer.
	taskPrio []int

	// Tenant QoS runtime (SetQoS): instance declarations, live completion
	// state, the stream-range index, and the arrival trace-event schedule.
	// Derived bookkeeping only — never part of the state digest.
	qos          []QoSTenant
	qosRT        [][]qosInstRT
	qosRanges    []qosRange
	qosArrEvents []qosArrEvent
	qosArrCursor int

	// nextArrival is the earliest NotBefore among streams that have not
	// yet arrived, recomputed by activateStreams each iteration; the run
	// loop clamps its time jumps to it so arrivals behave as wake events.
	nextArrival int64

	// loop holds the run loop's cursor state; a field (not locals) so
	// checkpoints can carry it and a resumed run keeps its sampling
	// cadences aligned with the uninterrupted run's.
	loop    loopCursors
	resumed bool
	digests []snapshot.DigestEntry

	now         int64
	epoch       int64 // policy tick interval
	maxTask     int
	totalIssued int64 // warp instructions issued, the watchdog's progress signal
	kernelStats []KernelStat
}

// loopCursors is the run loop's bookkeeping, promoted from locals so it
// can be checkpointed and restored.
type loopCursors struct {
	lastTick       int64 // last policy-tick cycle
	nextSample     int64 // next timeline sample cycle
	nextMetrics    int64 // next metrics sample cycle
	nextCheckpoint int64
	nextDigest     int64
	lastIssued     int64 // totalIssued at the last progress observation
	lastProgress   int64 // cycle of the last observed issue
	iter           uint64
}

// DefaultWatchdogWindow is the forward-progress window used when
// WatchdogWindow is zero: generous enough that no legitimate workload
// spends this long issuing nothing while warps are resident (memory and
// pipeline waits resolve within thousands of cycles), small enough that a
// livelocked multi-hour sweep run dies in well under a second of host time.
const DefaultWatchdogWindow = 4 << 20

// taskSnap is a cumulative per-task counter snapshot used to derive
// interval deltas for the metrics series.
type taskSnap struct {
	warpInsts  int64
	l1A, l1M   int64
	l2A, l2M   int64
	dramBytes  int64
	stalls     [obs.NumStallCauses]int64
	hasStreams bool
}

// New builds a GPU for cfg. The configuration is validated.
func New(cfg config.GPU) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memsys, err := mem.NewSystem(&cfg)
	if err != nil {
		return nil, err
	}
	g := &GPU{
		cfg:           cfg,
		memsys:        memsys,
		statsByStream: make(map[int]*stats.Stream),
		TaskWindows:   make(map[int]int),
		taskLabels:    make(map[int]string),
		lastStream:    -1,
		epoch:         2048,
	}
	g.cores = make([]*sm.Core, cfg.NumSMs)
	g.instsBySMTask = make([][]int64, cfg.NumSMs)
	for i := range g.cores {
		g.cores[i] = sm.NewCore(i, &g.cfg, memsys, g)
		g.instsBySMTask[i] = make([]int64, maxTasks)
	}
	return g, nil
}

// Config returns the GPU's configuration.
func (g *GPU) Config() *config.GPU { return &g.cfg }

// Mem exposes the memory system (for composition snapshots and mapper
// installation by policies).
func (g *GPU) Mem() *mem.System { return g.memsys }

// Cores exposes the SM array (read-mostly; policies use it for occupancy).
func (g *GPU) Cores() []*sm.Core { return g.cores }

// Now reports the current simulation cycle.
func (g *GPU) Now() int64 { return g.now }

// SetTracer installs a trace-event sink on the GPU and its memory
// system. A nil tracer (the default) disables tracing; every emission
// site then costs a single branch.
func (g *GPU) SetTracer(t obs.Tracer) {
	g.tracer = t
	g.memsys.SetTracer(t)
}

// Tracer reports the installed tracer (nil when tracing is disabled);
// policies use it to emit repartition events.
func (g *GPU) Tracer() obs.Tracer { return g.tracer }

// SchedSlots reports the total warp-scheduler issue slots examined
// across all SMs.
func (g *GPU) SchedSlots() int64 {
	var n int64
	for _, c := range g.cores {
		n += c.SchedSlots()
	}
	return n
}

// EmptySlots reports the issue slots in which a scheduler had no
// resident warps.
func (g *GPU) EmptySlots() int64 {
	var n int64
	for _, c := range g.cores {
		n += c.EmptySlots()
	}
	return n
}

// InstsOnSM reports warp instructions issued on an SM for a task since the
// last ResetSMCounters (warped-slicer's sampling input).
func (g *GPU) InstsOnSM(smID, task int) int64 {
	if task < len(g.instsBySMTask[smID]) {
		return g.instsBySMTask[smID][task]
	}
	return 0
}

// ResetSMCounters zeroes the per-SM instruction counters.
func (g *GPU) ResetSMCounters() {
	for i := range g.instsBySMTask {
		for j := range g.instsBySMTask[i] {
			g.instsBySMTask[i][j] = 0
		}
	}
}

// SetWarpScheduler selects the warp-scheduling discipline on every SM
// (the GTO-vs-LRR ablation).
func (g *GPU) SetWarpScheduler(p sm.SchedPolicy) {
	for _, core := range g.cores {
		core.Sched = p
	}
}

// SetPolicy installs the partition policy and wires intra-SM limits.
func (g *GPU) SetPolicy(p Policy) {
	g.policy = p
	for _, core := range g.cores {
		core := core
		if p == nil {
			core.LimitFor = nil
			continue
		}
		core.LimitFor = func(task int) sm.Resources {
			if res, ok := p.Limit(core.ID, task); ok {
				return res
			}
			return sm.Full(&g.cfg)
		}
	}
}

// AddStream queues a stream definition. Kernels are validated
// structurally (trace.Kernel.Validate) and for placeability: a CTA whose
// resource footprint exceeds a whole SM can never be scheduled under any
// policy, so such streams fail fast here with a deadlock SimError instead
// of misbehaving mid-run.
func (g *GPU) AddStream(def StreamDef) error {
	full := sm.Full(&g.cfg)
	for _, k := range def.Kernels {
		if err := k.Validate(); err != nil {
			return &robust.SimError{Kind: robust.KindValidation,
				Msg: fmt.Sprintf("gpu: stream %d: malformed kernel trace", def.ID), Err: err}
		}
		if k.Stream != def.ID {
			return &robust.SimError{Kind: robust.KindValidation,
				Msg: fmt.Sprintf("gpu: stream %d: kernel %q carries stream %d", def.ID, k.Name, k.Stream)}
		}
		need := sm.Need(k)
		if need.Threads > full.Threads || need.Regs > full.Regs ||
			need.Shared > full.Shared || k.WarpsPerCTA() > g.cfg.MaxWarpsPerSM {
			return &robust.SimError{Kind: robust.KindDeadlock,
				Msg: fmt.Sprintf("gpu: stream %d: kernel %q CTA (threads=%d regs=%d shared=%dB) exceeds an entire SM (threads=%d regs=%d shared=%dB) on %s — unplaceable under every policy",
					def.ID, k.Name, need.Threads, need.Regs, need.Shared,
					full.Threads, full.Regs, full.Shared, g.cfg.Name),
				Dump: g.buildDump(k.Name, "CTA exceeds whole-SM capacity")}
		}
	}
	st := &streamRT{def: def, stat: &stats.Stream{Stream: def.ID, Label: def.Label}}
	g.streams = append(g.streams, st)
	g.statsByStream[def.ID] = st.stat
	if def.Task > g.maxTask {
		g.maxTask = def.Task
	}
	// Label the task for the metrics series: a single-stream task keeps
	// its stream's label; multi-stream tasks (graphics batches) fall back
	// to a generic task name.
	if old, ok := g.taskLabels[def.Task]; !ok {
		g.taskLabels[def.Task] = def.Label
	} else if old != def.Label {
		if def.Task == 0 {
			// Task 0 is the rendering task; its many batch streams all
			// carry distinct labels.
			g.taskLabels[def.Task] = "graphics"
		} else {
			g.taskLabels[def.Task] = fmt.Sprintf("task%d", def.Task)
		}
	}
	return nil
}

// OnIssue implements sm.InstStats.
func (g *GPU) OnIssue(smID, stream, task int, op isa.Opcode, lanes int) {
	g.totalIssued++
	st := g.lastStat
	if stream != g.lastStream || st == nil {
		st = g.statsByStream[stream]
		g.lastStream, g.lastStat = stream, st
	}
	if st == nil {
		return
	}
	st.WarpInsts++
	st.ThreadInsts += int64(lanes)
	if op == isa.OpTEX {
		st.TexAccesses++
	}
	if task < len(g.instsBySMTask[smID]) {
		g.instsBySMTask[smID][task]++
	}
}

// OnStall implements sm.InstStats: one scheduler issue slot in which the
// stream's earliest-ready warp could not issue.
func (g *GPU) OnStall(smID, stream, task int, cause obs.StallCause) {
	st := g.lastStat
	if stream != g.lastStream || st == nil {
		st = g.statsByStream[stream]
		g.lastStream, g.lastStat = stream, st
	}
	if st == nil {
		return
	}
	st.Stalls[cause]++
}

// OnStallN implements sm.InstStats: n identical stall slots bulk-accounted
// by a waking core's FlushSkipDebt. Pure counter increments, so the effect
// equals n OnStall calls.
func (g *GPU) OnStallN(smID, stream, task int, cause obs.StallCause, n int64) {
	st := g.lastStat
	if stream != g.lastStream || st == nil {
		st = g.statsByStream[stream]
		g.lastStream, g.lastStat = stream, st
	}
	if st == nil {
		return
	}
	st.Stalls[cause] += n
}

// activateStreams opens stream slots respecting per-task windows and
// tenant arrival cycles. It also recomputes nextArrival — the earliest
// NotBefore still in the future — which the run loop uses as a wake event.
func (g *GPU) activateStreams() {
	g.nextArrival = sm.Never
	activeByTask := make(map[int]int)
	for _, st := range g.streams {
		if st.active && st.idx < len(st.def.Kernels) {
			activeByTask[st.def.Task]++
		}
	}
	for _, st := range g.streams {
		if st.active || st.idx >= len(st.def.Kernels) {
			continue
		}
		if g.now < st.def.NotBefore {
			if st.def.NotBefore < g.nextArrival {
				g.nextArrival = st.def.NotBefore
			}
			continue
		}
		w := g.TaskWindows[st.def.Task]
		if w > 0 && activeByTask[st.def.Task] >= w {
			continue
		}
		st.active = true
		activeByTask[st.def.Task]++
	}
}

// launchReady moves stream-head kernels into the running set.
func (g *GPU) launchReady() {
	for _, st := range g.streams {
		if !st.active || st.idx >= len(st.def.Kernels) {
			continue
		}
		// Is this stream's head kernel already running?
		alreadyRunning := false
		for _, l := range g.running {
			if l.stream == st {
				alreadyRunning = true
				break
			}
		}
		if alreadyRunning {
			continue
		}
		k := st.def.Kernels[st.idx]
		l := &launch{k: k, task: st.def.Task, stream: st, started: g.now}
		g.running = append(g.running, l)
		if t := g.tracer; t != nil {
			if !st.started && k.Kind.IsGraphics() {
				t.Emit(obs.Event{Cycle: g.now, Kind: obs.EvBatchStart, Stream: st.def.ID,
					Task: st.def.Task, SM: -1, CTA: -1, Name: st.def.Label})
			}
			t.Emit(obs.Event{Cycle: g.now, Kind: obs.EvKernelLaunch, Stream: st.def.ID,
				Task: st.def.Task, SM: -1, CTA: -1, Name: k.Name, Arg: int64(len(k.CTAs))})
		}
		if !st.started {
			st.started = true
			st.start = g.now
		}
		st.stat.KernelsLaunched++
		if g.policy != nil {
			g.policy.OnLaunch(g.now, k, st.def.Task)
		}
	}
}

// issueCTAs places as many pending CTAs as fit, in launch order, spreading
// each kernel breadth-first across its allowed SMs (one CTA per SM per
// sweep, as hardware CTA schedulers do) before stacking SMs deeper.
func (g *GPU) issueCTAs() {
	running := g.running
	if prio, ok := g.placementPriority(); ok {
		running = make([]*launch, len(g.running))
		copy(running, g.running)
		sort.SliceStable(running, func(i, j int) bool {
			return prio(running[i].task) > prio(running[j].task)
		})
	}
	for _, l := range running {
		if l.nextCTA >= len(l.k.CTAs) {
			continue
		}
		l := l
		st := l.stream
		placed := true
		for placed && l.nextCTA < len(l.k.CTAs) {
			placed = false
			for _, core := range g.cores {
				if l.nextCTA >= len(l.k.CTAs) {
					break
				}
				if g.policy != nil && !g.policy.AllowSM(core.ID, l.task) {
					continue
				}
				if !core.CanAccept(l.k, l.task) {
					continue
				}
				ctaIdx, smID := l.nextCTA, core.ID
				if t := g.tracer; t != nil {
					t.Emit(obs.Event{Cycle: g.now, Kind: obs.EvCTAIssue, Stream: l.k.Stream,
						Task: l.task, SM: smID, CTA: ctaIdx, Name: l.k.Name})
				}
				core.IssueCTA(g.now, l.k, l.nextCTA, l.task, g.completionFn(l, smID, ctaIdx))
				l.nextCTA++
				st.stat.CTAsLaunched++
				placed = true
			}
		}
	}
}

// completionFn builds the CTA-completion closure for one placed CTA. It is
// a named constructor (rather than an inline literal in issueCTAs) so that
// checkpoint restore can rebuild the identical closure for CTAs that were
// resident at capture time.
func (g *GPU) completionFn(l *launch, smID, ctaIdx int) func(doneAt int64) {
	st := l.stream
	return func(doneAt int64) {
		l.doneCTAs++
		if doneAt > l.lastDone {
			l.lastDone = doneAt
		}
		st.stat.Cycles = doneAt - st.start
		if t := g.tracer; t != nil {
			t.Emit(obs.Event{Cycle: doneAt, Kind: obs.EvCTACommit, Stream: l.k.Stream,
				Task: l.task, SM: smID, CTA: ctaIdx, Name: l.k.Name})
		}
	}
}

// reapFinished retires completed kernels and advances their streams.
func (g *GPU) reapFinished() {
	kept := g.running[:0]
	for _, l := range g.running {
		if l.doneCTAs == len(l.k.CTAs) {
			g.kernelStats = append(g.kernelStats, KernelStat{
				Name:     l.k.Name,
				Stream:   l.k.Stream,
				Task:     l.task,
				Launched: l.started,
				Done:     l.lastDone,
				CTAs:     len(l.k.CTAs),
			})
			l.stream.idx++
			if l.stream.idx >= len(l.stream.def.Kernels) {
				l.stream.active = false
				if g.qos != nil {
					g.qosStreamDone(l.stream.def.ID, l.lastDone)
				}
			}
			if t := g.tracer; t != nil {
				t.Emit(obs.Event{Cycle: l.lastDone, Kind: obs.EvKernelDone, Stream: l.k.Stream,
					Task: l.task, SM: -1, CTA: -1, Name: l.k.Name, Arg: int64(len(l.k.CTAs))})
				if l.stream.idx >= len(l.stream.def.Kernels) && l.k.Kind.IsGraphics() {
					t.Emit(obs.Event{Cycle: l.lastDone, Kind: obs.EvBatchDone, Stream: l.k.Stream,
						Task: l.task, SM: -1, CTA: -1, Name: l.stream.def.Label})
				}
			}
			continue
		}
		kept = append(kept, l)
	}
	g.running = kept
}

// KernelStats lists every completed kernel launch in completion order.
func (g *GPU) KernelStats() []KernelStat { return g.kernelStats }

// Run executes all queued streams to completion and returns the makespan
// in cycles. It is RunContext with a background (never-canceled) context.
func (g *GPU) Run() (int64, error) { return g.RunContext(context.Background()) }

// ctxCheckMask gates how often the run loop polls ctx.Err(): every
// (mask+1) iterations, so the happy path pays one counter increment and
// mask per iteration instead of an atomic load.
const ctxCheckMask = 255

// RunContext executes all queued streams to completion, subject to the
// hardening envelope: the forward-progress watchdog (WatchdogWindow), the
// hard cycle budget (CycleBudget), and cancellation of ctx, any of which
// terminates the run with a *robust.SimError carrying a crash dump of
// per-SM and per-stream state. The existing all-idle deadlock check
// likewise now reports a structured SimError instead of a bare error.
func (g *GPU) RunContext(ctx context.Context) (int64, error) {
	// Default the sampling cadences locally: the Timeline/Metrics structs
	// are caller-owned and must not be written back.
	var timelineInterval int64
	if g.Timeline != nil {
		timelineInterval = g.Timeline.Interval
		if timelineInterval <= 0 {
			timelineInterval = 1024
		}
	}
	var metricsInterval int64
	if g.Metrics != nil {
		metricsInterval = g.Metrics.Interval
		if metricsInterval <= 0 {
			metricsInterval = 2048
		}
		if !g.resumed {
			// Rates are deltas, so the first sample is only meaningful one
			// full interval in.
			g.loop.nextMetrics = metricsInterval
		}
	}
	if g.DigestEvery > 0 && g.loop.nextDigest <= g.now {
		// Fresh run, or the auditor was newly enabled on a resumed run: a
		// run that carried the cursor through a checkpoint always captures
		// it already advanced past the capture cycle.
		g.loop.nextDigest = g.now + g.DigestEvery
	}
	if g.CheckpointSink != nil && g.CheckpointEvery > 0 && g.loop.nextCheckpoint <= g.now {
		g.loop.nextCheckpoint = g.now + g.CheckpointEvery
	}
	window := g.WatchdogWindow
	if window == 0 {
		window = DefaultWatchdogWindow
	}
	ctxDone := ctx.Done() // nil for background contexts: check skipped entirely
	if g.qos != nil && g.tracer != nil {
		g.buildArrivalEvents()
	}
	eng := engine.New(g.cores, g.effectiveWorkers(), g.NoSkip)
	defer eng.Close()
	ls := &g.loop
	for {
		ls.iter++
		g.activateStreams()
		g.emitArrivals()
		g.launchReady()
		g.issueCTAs()
		g.reapFinished()

		if len(g.running) == 0 {
			done := true
			for _, st := range g.streams {
				if st.idx < len(st.def.Kernels) {
					done = false
					break
				}
			}
			if done {
				break
			}
		}

		next, anyBusy := eng.Step(g.now)
		if !anyBusy {
			// CTAs are pending but none was placeable and nothing is
			// executing: the partition is infeasible.
			if len(g.running) > 0 {
				return g.now, g.fail(robust.KindDeadlock, g.running[0].k.Name,
					"cannot place CTAs under the installed partition",
					"gpu: deadlock at cycle %d: kernel %q cannot place CTAs under policy %s",
					g.now, g.running[0].k.Name, g.policyName())
			}
			// Nothing resident and nothing placeable: the only pending work
			// is future tenant arrivals, so jump straight to the earliest
			// one (an arrival is a wake event, in both skip modes).
			if g.nextArrival > g.now && g.nextArrival < sm.Never {
				g.now = g.nextArrival
			} else {
				g.now++
			}
			continue
		}
		if next >= sm.Never {
			// Every resident warp is permanently blocked (a CTA barrier
			// whose remaining arrivals can never happen): the run would
			// otherwise spin to the end of time. This is the livelock the
			// all-idle check above cannot see, caught immediately rather
			// than after a watchdog window.
			k := g.stuckKernel()
			return g.now, g.fail(robust.KindWatchdog, k,
				"all resident warps permanently blocked (barrier livelock)",
				"gpu: livelock at cycle %d: all resident warps blocked at barriers (kernel %q)", g.now, k)
		}
		// A pending arrival bounds the time jump: the machine must be at
		// the arrival cycle to admit the tenant's streams on time.
		if g.nextArrival > g.now && g.nextArrival < next {
			next = g.nextArrival
		}
		if next <= g.now {
			next = g.now + 1
		}
		g.now = next

		// Observability and policy phases run first so that a checkpoint
		// taken at this boundary captures post-tick state: a resumed run
		// re-enters the loop at the top of the next iteration and repeats
		// nothing.
		if g.Timeline != nil && g.now >= ls.nextSample {
			g.sampleTimeline()
			ls.nextSample = g.now + timelineInterval
		}
		if g.Metrics != nil && g.now >= ls.nextMetrics {
			g.sampleMetrics()
			ls.nextMetrics = g.now + metricsInterval
		}
		if g.policy != nil && g.now-ls.lastTick >= g.epoch {
			g.policy.Tick(g.now)
			ls.lastTick = g.now
			// A repartition can change what a sleeping core could do (CTA
			// placement limits), so force every core awake for the next
			// step. Unconditional in both skip modes — the digest below
			// hashes wakeAt, and this keeps the two modes' values aligned
			// on tick boundaries.
			for _, c := range g.cores {
				c.SetWakeAt(g.now)
			}
		}
		// Watchdog bookkeeping precedes the checkpoint so the captured
		// progress window matches the uninterrupted run's; the digest
		// precedes it so the cursor is captured already advanced (the
		// digest at this cycle belongs to the pre-checkpoint series).
		progressed := g.totalIssued != ls.lastIssued
		if progressed {
			ls.lastIssued = g.totalIssued
			ls.lastProgress = g.now
		}
		if g.DigestEvery > 0 && g.now >= ls.nextDigest {
			ls.nextDigest = g.now + g.DigestEvery
			d, err := g.StateDigest()
			if err != nil {
				return g.now, g.fail(robust.KindSnapshot, "",
					"state digest failed", "gpu: state digest at cycle %d: %v", g.now, err)
			}
			g.digests = append(g.digests, d)
		}
		if g.CheckpointSink != nil && g.CheckpointEvery > 0 && g.now >= ls.nextCheckpoint {
			ls.nextCheckpoint = g.now + g.CheckpointEvery
			if err := g.CheckpointSink(); err != nil {
				return g.now, g.fail(robust.KindSnapshot, "",
					"checkpoint write failed", "gpu: checkpoint at cycle %d: %v", g.now, err)
			}
		}

		// Hardening checks. The watchdog's progress signal is the
		// warp-instruction counter: any issue anywhere resets the window.
		if !progressed && window > 0 && g.now-ls.lastProgress > window {
			k := g.stuckKernel()
			se := g.fail(robust.KindWatchdog, k,
				fmt.Sprintf("no instruction issued for %d cycles", g.now-ls.lastProgress),
				"gpu: watchdog at cycle %d: no instruction issued since cycle %d (window %d, kernel %q)",
				g.now, ls.lastProgress, window, k)
			se.Dump.WatchdogWindow = window
			se.Dump.LastProgress = ls.lastProgress
			return g.now, se
		}
		if g.CycleBudget > 0 && g.now > g.CycleBudget {
			return g.now, g.fail(robust.KindBudget, g.stuckKernel(),
				fmt.Sprintf("cycle budget %d exceeded", g.CycleBudget),
				"gpu: cycle budget exceeded at cycle %d (budget %d)", g.now, g.CycleBudget)
		}
		if ctxDone != nil && ls.iter&ctxCheckMask == 0 {
			select {
			case <-ctxDone:
				return g.now, g.fail(robust.KindCanceled, "",
					"context canceled", "gpu: run canceled at cycle %d: %v", g.now, ctx.Err())
			default:
			}
		}
	}
	if g.Metrics != nil && g.now > g.mPrevCycle {
		// Close the series with the tail interval.
		g.sampleMetrics()
	}
	g.foldMemCounters()
	if g.DigestEvery > 0 {
		// Close the series with a final digest at the makespan cycle, so
		// two complete runs can be compared end to end even when neither
		// crossed another digest boundary.
		d, err := g.StateDigest()
		if err != nil {
			return g.now, g.fail(robust.KindSnapshot, "",
				"state digest failed", "gpu: final state digest: %v", err)
		}
		g.digests = append(g.digests, d)
	}
	return g.now, nil
}

// fail builds the structured error for an abnormal run termination: it
// folds counters so the dump's stall snapshot is current, emits a trace
// event for the abort, and attaches the crash dump.
func (g *GPU) fail(kind robust.Kind, kernel, reason, format string, args ...any) *robust.SimError {
	g.settleCores()
	g.foldMemCounters()
	if t := g.tracer; t != nil {
		t.Emit(obs.Event{Cycle: g.now, Kind: obs.EvWatchdog, Stream: -1, Task: -1,
			SM: -1, CTA: -1, Name: fmt.Sprintf("%s: %s", kind, reason)})
	}
	return &robust.SimError{
		Kind:  kind,
		Cycle: g.now,
		Msg:   fmt.Sprintf(format, args...),
		Dump:  g.buildDump(kernel, reason),
	}
}

// stuckKernel names the kernel most plausibly implicated in a stall: the
// oldest running kernel with unfinished CTAs.
func (g *GPU) stuckKernel() string {
	for _, l := range g.running {
		if l.doneCTAs < len(l.k.CTAs) {
			return l.k.Name
		}
	}
	return ""
}

// buildDump snapshots per-SM occupancy, per-stream kernel/CTA progress,
// and the stall-attribution breakdown into a crash dump.
func (g *GPU) buildDump(kernel, reason string) *robust.CrashDump {
	d := &robust.CrashDump{
		Cycle:  g.now,
		Config: g.cfg.Name,
		Policy: g.policyName(),
		Kernel: kernel,
		Reason: reason,
	}
	if sd, ok := g.policy.(StateDescriber); ok {
		d.PolicyState = sd.DescribeState()
	}
	d.SMs = make([]robust.SMState, len(g.cores))
	for i, core := range g.cores {
		s := robust.SMState{ID: core.ID, ResidentWarps: core.TotalResidentWarps(),
			BarrierBlocked: core.BarrierBlocked()}
		u := core.TotalUsage()
		s.UsedThreads, s.UsedRegs, s.UsedShared, s.UsedCTAs = u.Threads, u.Regs, u.Shared, u.CTAs
		for task := 0; task <= g.maxTask; task++ {
			if w := core.ResidentWarps(task); w > 0 {
				if s.WarpsByTask == nil {
					s.WarpsByTask = make(map[int]int)
				}
				s.WarpsByTask[task] = w
			}
		}
		d.SMs[i] = s
	}
	runningBy := make(map[*streamRT]*launch, len(g.running))
	for _, l := range g.running {
		runningBy[l.stream] = l
	}
	for _, st := range g.streams {
		if st.idx >= len(st.def.Kernels) {
			d.StreamsCompleted++
			continue
		}
		ss := robust.StreamState{
			ID: st.def.ID, Label: st.def.Label, Task: st.def.Task,
			KernelsDone: st.idx, KernelsTotal: len(st.def.Kernels), Active: st.active,
		}
		if l := runningBy[st]; l != nil {
			ss.Running = &robust.KernelProgress{
				Name: l.k.Name, CTAsIssued: l.nextCTA, CTAsDone: l.doneCTAs,
				CTAsTotal: len(l.k.CTAs), LaunchedAt: l.started,
			}
		}
		d.Streams = append(d.Streams, ss)
	}
	// Iterate tasks in sorted order: TaskStats returns a map, and the dump
	// must be byte-identical across runs for the determinism auditor's sake.
	byTask := g.TaskStats()
	tasks := make([]int, 0, len(byTask))
	for task := range byTask {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		st := byTask[task]
		ts := robust.TaskStalls{Task: task, Label: g.taskLabels[task], Issues: st.WarpInsts}
		for _, c := range obs.StallCauses() {
			if n := st.Stalls[c]; n > 0 {
				if ts.Stalls == nil {
					ts.Stalls = make(map[string]int64)
				}
				ts.Stalls[c.String()] = n
			}
		}
		d.Stalls = append(d.Stalls, ts)
	}
	sort.Slice(d.Stalls, func(i, j int) bool { return d.Stalls[i].Task < d.Stalls[j].Task })
	return d
}

// effectiveWorkers resolves the run's worker setting: the GPU field wins,
// then the config's Workers, then auto (0, resolved by the engine to
// GOMAXPROCS capped at the SM count).
func (g *GPU) effectiveWorkers() int {
	if g.Workers != 0 {
		return g.Workers
	}
	return g.cfg.Workers
}

func (g *GPU) policyName() string {
	if g.policy == nil {
		return "none"
	}
	return g.policy.Name()
}

func (g *GPU) sampleTimeline() {
	sample := stats.OccupancySample{Cycle: g.now, WarpsByStream: make(map[int]int)}
	for _, core := range g.cores {
		for task := 0; task <= g.maxTask; task++ {
			sample.WarpsByStream[task] += core.ResidentWarps(task)
		}
	}
	g.Timeline.Samples = append(g.Timeline.Samples, sample)
}

// settleCores flushes every core's accumulated sleep debt so any
// observer (metrics sample, crash dump, state capture, stats fold) sees
// the same counters a cycle-by-cycle run would show at this cycle. It
// does not wake anybody: sleeping cores keep their wakeAt and simply
// start a fresh debt window.
func (g *GPU) settleCores() {
	for _, c := range g.cores {
		c.FlushSkipDebt()
	}
}

// SkipCounters aggregates the cores' event-skipping counters: real Step
// calls executed, engine steps slept through, and stall slots
// synthesized by bulk accounting.
func (g *GPU) SkipCounters() (executed, skipped, bulkStalls int64) {
	for _, c := range g.cores {
		e, s, b := c.SkipCounters()
		executed += e
		skipped += s
		bulkStalls += b
	}
	return executed, skipped, bulkStalls
}

// SleepHist sums the cores' log2 sleep-length histograms (bucket i
// counts flushed sleeps of 2^i..2^(i+1)-1 skipped steps).
func (g *GPU) SleepHist() []int64 {
	var agg []int64
	for _, c := range g.cores {
		h := c.SleepHist()
		if agg == nil {
			agg = make([]int64, len(h))
		}
		for i, v := range h {
			agg[i] += v
		}
	}
	return agg
}

// sampleMetrics appends one interval metrics sample: per-task rates
// derived from cumulative counter deltas since the previous sample.
func (g *GPU) sampleMetrics() {
	g.settleCores()
	nt := g.maxTask + 1
	if g.mPrev == nil {
		g.mPrev = make([]taskSnap, nt)
	}
	cur := make([]taskSnap, nt)
	for _, st := range g.streams {
		c := &cur[st.def.Task]
		c.hasStreams = true
		c.warpInsts += st.stat.WarpInsts
		for i, n := range st.stat.Stalls {
			c.stalls[i] += n
		}
		if mc := g.memsys.PeekCounters(st.def.ID); mc != nil {
			c.l1A += mc.L1Accesses
			c.l1M += mc.L1Misses
			c.l2A += mc.L2Accesses
			c.l2M += mc.L2Misses
			c.dramBytes += mc.DRAMReadB + mc.DRAMWriteB
		}
	}
	dt := g.now - g.mPrevCycle
	if dt <= 0 {
		dt = 1
	}
	hit := func(acc, miss int64) float64 {
		if acc == 0 {
			return 0
		}
		return 1 - float64(miss)/float64(acc)
	}
	sample := obs.Sample{Cycle: g.now, CyclesSimulated: g.now}
	sample.StepsExecuted, sample.StepsSkipped, sample.BulkStallSlots = g.SkipCounters()
	for task := 0; task < nt; task++ {
		if !cur[task].hasStreams {
			continue
		}
		warps := 0
		for _, core := range g.cores {
			warps += core.ResidentWarps(task)
		}
		d := cur[task]
		p := g.mPrev[task]
		pt := obs.SeriesPoint{
			Stream:            task,
			Label:             g.taskLabels[task],
			IPC:               float64(d.warpInsts-p.warpInsts) / float64(dt),
			Warps:             warps,
			L1Hit:             hit(d.l1A-p.l1A, d.l1M-p.l1M),
			L2Hit:             hit(d.l2A-p.l2A, d.l2M-p.l2M),
			DRAMBytesPerCycle: float64(d.dramBytes-p.dramBytes) / float64(dt),
		}
		for i := range pt.Stalls {
			pt.Stalls[i] = d.stalls[i] - p.stalls[i]
		}
		g.fillQoSPoint(task, &pt)
		sample.Points = append(sample.Points, pt)
	}
	g.Metrics.Append(sample)
	copy(g.mPrev, cur)
	g.mPrevCycle = g.now
}

// fillQoSPoint folds the task's live tenant-QoS progress into a metrics
// point: instances arrived/completed so far, and deadline outcomes —
// counting an overdue-but-incomplete instance as missed already, so SSE
// consumers see violations as they happen, not at run end.
func (g *GPU) fillQoSPoint(task int, pt *obs.SeriesPoint) {
	if g.qos == nil {
		return
	}
	for ti, qt := range g.qos {
		if qt.Task != task {
			continue
		}
		for ii, inst := range qt.Instances {
			if inst.Arrival <= g.now {
				pt.QoSArrived++
			}
			rt := g.qosRT[ti][ii]
			switch {
			case rt.left == 0:
				pt.QoSDone++
				if inst.Deadline > 0 {
					if rt.done <= inst.Deadline {
						pt.DeadlinesMet++
					} else {
						pt.DeadlinesMissed++
					}
				}
			case inst.Deadline > 0 && g.now > inst.Deadline:
				pt.DeadlinesMissed++
			}
		}
	}
}

// foldMemCounters copies the memory system's per-stream counters into the
// stream stats.
func (g *GPU) foldMemCounters() {
	for _, id := range g.memsys.Streams() {
		st := g.statsByStream[id]
		if st == nil {
			continue
		}
		c := g.memsys.Counters(id)
		st.L1Accesses = c.L1Accesses
		st.L1Misses = c.L1Misses
		st.L2Accesses = c.L2Accesses
		st.L2Misses = c.L2Misses
		st.DRAMReads = c.DRAMReadB
		st.DRAMWrites = c.DRAMWriteB
	}
}

// StreamStats returns per-stream statistics sorted by stream id.
func (g *GPU) StreamStats() []*stats.Stream {
	out := make([]*stats.Stream, 0, len(g.statsByStream))
	for _, st := range g.streams {
		out = append(out, st.stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// TaskStats aggregates stream statistics by task.
func (g *GPU) TaskStats() map[int]*stats.Stream {
	agg := make(map[int]*stats.Stream)
	for _, st := range g.streams {
		a := agg[st.def.Task]
		if a == nil {
			a = &stats.Stream{Stream: st.def.Task, Label: fmt.Sprintf("task%d", st.def.Task)}
			agg[st.def.Task] = a
		}
		a.Add(st.stat)
	}
	return agg
}
