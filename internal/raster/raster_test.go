package raster

import (
	"testing"

	"crisp/internal/geom"
	"crisp/internal/gmath"
)

// screenTri builds a clip-space triangle that covers the given NDC coords
// at depth z (w=1 — no perspective).
func screenTri(ax, ay, bx, by, cx, cy, z float32) geom.Tri {
	mk := func(x, y float32) geom.ClipVert {
		return geom.ClipVert{Clip: gmath.V4(x, y, z, 1), UV: gmath.Vec2{X: (x + 1) / 2, Y: (y + 1) / 2}}
	}
	return geom.Tri{V: [3]geom.ClipVert{mk(ax, ay), mk(bx, by), mk(cx, cy)}}
}

func fullscreenQuad(z float32) []geom.Tri {
	return []geom.Tri{
		screenTri(-1, -1, 1, -1, -1, 1, z),
		screenTri(1, -1, 1, 1, -1, 1, z),
	}
}

func countFrags(tiles [][]Fragment) int {
	n := 0
	for _, tf := range tiles {
		n += len(tf)
	}
	return n
}

func TestFullscreenCoverage(t *testing.T) {
	r, err := New(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	tiles := r.Rasterize(fullscreenQuad(0.5))
	got := countFrags(tiles)
	if got != 64*64 {
		t.Errorf("fullscreen quad covered %d pixels, want %d", got, 64*64)
	}
	// Every pixel exactly once.
	seen := make(map[int]bool)
	for _, tf := range tiles {
		for _, f := range tf {
			key := f.Y*64 + f.X
			if seen[key] {
				t.Fatalf("pixel (%d,%d) shaded twice", f.X, f.Y)
			}
			seen[key] = true
		}
	}
}

func TestNewRejectsBadTarget(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("accepted zero width")
	}
}

func TestEarlyZKillsOccluded(t *testing.T) {
	r, _ := New(64, 64)
	// Near quad first, then far quad: far is fully occluded.
	near := r.Rasterize(fullscreenQuad(0.2))
	far := r.Rasterize(fullscreenQuad(0.8))
	if countFrags(near) != 64*64 {
		t.Fatalf("near quad fragments = %d", countFrags(near))
	}
	if countFrags(far) != 0 {
		t.Errorf("occluded quad produced %d fragments", countFrags(far))
	}
	if r.Stats().EarlyZKill != 64*64 {
		t.Errorf("early-Z kills = %d, want %d", r.Stats().EarlyZKill, 64*64)
	}
}

func TestDepthOrderReversed(t *testing.T) {
	r, _ := New(32, 32)
	// Far first, then near: both shade (no early-Z benefit) — overdraw.
	far := r.Rasterize(fullscreenQuad(0.8))
	near := r.Rasterize(fullscreenQuad(0.2))
	if countFrags(far) != 32*32 || countFrags(near) != 32*32 {
		t.Error("depth-reversed draws should both fully shade")
	}
}

func TestClearDepthResets(t *testing.T) {
	r, _ := New(32, 32)
	r.Rasterize(fullscreenQuad(0.2))
	r.ClearDepth()
	again := r.Rasterize(fullscreenQuad(0.8))
	if countFrags(again) != 32*32 {
		t.Error("depth buffer not cleared")
	}
}

func TestTileGrouping(t *testing.T) {
	r, _ := New(64, 64) // 4×4 tiles of 16
	tiles := r.Rasterize(fullscreenQuad(0.5))
	if len(tiles) != 16 {
		t.Errorf("non-empty tiles = %d, want 16", len(tiles))
	}
	// Each tile group holds only its own pixels.
	for _, tf := range tiles {
		tx, ty := tf[0].X/16, tf[0].Y/16
		for _, f := range tf {
			if f.X/16 != tx || f.Y/16 != ty {
				t.Fatalf("fragment (%d,%d) leaked into tile (%d,%d)", f.X, f.Y, tx, ty)
			}
		}
	}
}

func TestSmallTriangleFragmentCount(t *testing.T) {
	r, _ := New(64, 64)
	// A triangle covering roughly the lower-left eighth of the screen.
	tiles := r.Rasterize([]geom.Tri{screenTri(-1, -1, 0, -1, -1, 0, 0.5)})
	got := countFrags(tiles)
	// Area in pixels: half of a 32×32 box = 512.
	if got < 400 || got > 620 {
		t.Errorf("fragments = %d, want ≈512", got)
	}
}

func TestInterpolatedUVRange(t *testing.T) {
	r, _ := New(64, 64)
	tiles := r.Rasterize(fullscreenQuad(0.5))
	for _, tf := range tiles {
		for _, f := range tf {
			wantU := (float32(f.X) + 0.5) / 64
			if gmath.Abs(f.UV.X-wantU) > 0.02 {
				t.Fatalf("pixel %d UV.X = %v, want ≈%v", f.X, f.UV.X, wantU)
			}
		}
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// A triangle with w varying 1→4: perspective-correct UV at midpoint
	// is biased toward the w=1 vertex versus affine.
	a := geom.ClipVert{Clip: gmath.V4(-1, -1, 0.5, 1), UV: gmath.Vec2{X: 0, Y: 0}}
	b := geom.ClipVert{Clip: gmath.V4(4, -4, 2, 4), UV: gmath.Vec2{X: 1, Y: 0}}
	c := geom.ClipVert{Clip: gmath.V4(-1, 1, 0.5, 1), UV: gmath.Vec2{X: 0, Y: 1}}
	r, _ := New(64, 64)
	tiles := r.Rasterize([]geom.Tri{{V: [3]geom.ClipVert{a, b, c}}})
	var midU float32 = -1
	for _, tf := range tiles {
		for _, f := range tf {
			if f.Y == 32 && f.X == 32 {
				midU = f.UV.X
			}
		}
	}
	if midU < 0 {
		t.Skip("midpoint not covered")
	}
	if midU > 0.5 {
		t.Errorf("mid U = %v; perspective correction should pull below affine 0.5", midU)
	}
}

func TestFootprintMinificationHigherWhenFar(t *testing.T) {
	// Same UV range mapped to a small on-screen triangle → bigger UV
	// deltas per pixel than a fullscreen one.
	r, _ := New(64, 64)
	full := r.Rasterize(fullscreenQuad(0.5))
	r2, _ := New(64, 64)
	small := r2.Rasterize([]geom.Tri{screenTri(-0.1, -0.1, 0.1, -0.1, -0.1, 0.1, 0.5)})
	if countFrags(small) == 0 {
		t.Fatal("small triangle not covered")
	}
	if small[0][0].Footprint <= full[0][0].Footprint {
		t.Errorf("minified footprint %v should exceed fullscreen %v",
			small[0][0].Footprint, full[0][0].Footprint)
	}
}

func TestFootprintExactTracksApprox(t *testing.T) {
	r, _ := New(64, 64)
	tiles := r.Rasterize(fullscreenQuad(0.5))
	for _, tf := range tiles {
		for _, f := range tf {
			if f.FootprintExact <= 0 {
				t.Fatal("exact footprint not computed")
			}
			ratio := f.Footprint / f.FootprintExact
			if ratio < 0.5 || ratio > 2 {
				t.Fatalf("footprints diverge: approx %v vs exact %v", f.Footprint, f.FootprintExact)
			}
		}
	}
}

func TestDegenerateTriangleDropped(t *testing.T) {
	r, _ := New(32, 32)
	tiles := r.Rasterize([]geom.Tri{screenTri(-0.5, -0.5, 0.5, 0.5, 0, 0, 0.5)})
	if countFrags(tiles) > 40 {
		t.Errorf("degenerate (collinear) triangle shaded %d pixels", countFrags(tiles))
	}
}

func TestBothWindingsRasterize(t *testing.T) {
	// The rasterizer is winding-agnostic (culling happens upstream).
	r, _ := New(32, 32)
	cw := r.Rasterize([]geom.Tri{screenTri(-1, -1, -1, 1, 1, -1, 0.5)})
	r2, _ := New(32, 32)
	ccw := r2.Rasterize([]geom.Tri{screenTri(-1, -1, 1, -1, -1, 1, 0.5)})
	if countFrags(cw) == 0 || countFrags(ccw) == 0 {
		t.Errorf("winding-dependent rasterization: cw=%d ccw=%d", countFrags(cw), countFrags(ccw))
	}
}

func TestStatsAccumulate(t *testing.T) {
	r, _ := New(32, 32)
	r.Rasterize(fullscreenQuad(0.5))
	st := r.Stats()
	if st.Triangles != 2 || st.Fragments != 32*32 {
		t.Errorf("stats = %+v", st)
	}
}
