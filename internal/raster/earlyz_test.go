package raster

import (
	"testing"

	"crisp/internal/gmath"
)

func TestEarlyZDisabledShadesEverything(t *testing.T) {
	r, _ := New(32, 32)
	r.EarlyZ = false
	// Two opaque fullscreen layers, near first: with early-Z off the
	// second still shades everything (overdraw).
	first := r.Rasterize(fullscreenQuad(0.2))
	second := r.Rasterize(fullscreenQuad(0.8))
	if countFrags(first) != 32*32 || countFrags(second) != 32*32 {
		t.Errorf("early-Z off should shade both layers fully: %d/%d",
			countFrags(first), countFrags(second))
	}
	if r.Stats().EarlyZKill != 0 {
		t.Errorf("early-Z kills recorded while disabled: %d", r.Stats().EarlyZKill)
	}
}

func TestEarlyZOverdrawFactor(t *testing.T) {
	// Depth-sorted draws: overdraw factor with early-Z on is 1; off it
	// equals the layer count.
	layers := 3
	run := func(early bool) int {
		r, _ := New(32, 32)
		r.EarlyZ = early
		total := 0
		for l := 0; l < layers; l++ {
			z := 0.2 + 0.2*float32(l)
			total += countFrags(r.Rasterize(fullscreenQuad(z)))
		}
		return total
	}
	on := run(true)
	off := run(false)
	if on != 32*32 {
		t.Errorf("early-Z on shaded %d, want %d", on, 32*32)
	}
	if off != layers*32*32 {
		t.Errorf("early-Z off shaded %d, want %d", off, layers*32*32)
	}
}

func TestFragmentDepthsWithinUnitRange(t *testing.T) {
	r, _ := New(32, 32)
	tiles := r.Rasterize(fullscreenQuad(0.5))
	for _, tf := range tiles {
		for _, f := range tf {
			if f.Depth < 0 || f.Depth > 1 {
				t.Fatalf("depth %v out of [0,1]", f.Depth)
			}
			if gmath.Abs(f.Depth-0.5) > 1e-5 {
				t.Fatalf("flat quad depth %v, want 0.5", f.Depth)
			}
		}
	}
}
