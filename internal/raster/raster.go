// Package raster implements the Immediate Tiled Rendering rasterizer the
// paper models (as observed on NVIDIA discrete and mobile GPUs): the
// screen is a grid of tiles, surviving primitives are binned by screen
// position, and each tile's fragments are generated with edge-function
// coverage, early-Z depth testing, perspective-correct interpolation, and
// per-fragment LoD pre-calculated at rasterization time (the texture unit
// later looks the LoD up when a TEX executes, because approximate quads
// cannot compute runtime derivatives).
package raster

import (
	"fmt"

	"crisp/internal/geom"
	"crisp/internal/gmath"
)

// DefaultTileSize is the screen-tile edge in pixels.
const DefaultTileSize = 16

// Fragment is one generated fragment with its interpolated varyings and
// pre-calculated LoD bases.
type Fragment struct {
	X, Y  int
	Depth float32
	UV    gmath.Vec2
	WNrm  gmath.Vec3
	WPos  gmath.Vec3
	Layer int
	// Footprint is the rasterizer's pre-calculated LoD basis (max UV
	// delta per pixel), evaluated once per triangle at its centroid —
	// the simulator's approximation.
	Footprint float32
	// FootprintExact is the per-pixel analytic derivative, standing in
	// for hardware's per-quad ddx/ddy (the validation reference).
	FootprintExact float32
	// Vert0Global is the triangle's first vertex index in the
	// post-transform buffer; fragment varying fetches address it.
	Vert0Global uint32
}

// Stats counts rasterization work.
type Stats struct {
	Triangles  int
	Fragments  int
	EarlyZKill int
}

// Rasterizer rasterizes triangles against a private depth buffer.
type Rasterizer struct {
	W, H     int
	TileSize int
	// EarlyZ enables the early depth test that kills occluded fragments
	// before shading (on by default; the ablation knob of the paper's
	// pipeline description).
	EarlyZ bool
	depth  []float32
	stats  Stats
}

// New builds a rasterizer for a w×h target.
func New(w, h int) (*Rasterizer, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("raster: bad target %dx%d", w, h)
	}
	r := &Rasterizer{W: w, H: h, TileSize: DefaultTileSize, EarlyZ: true, depth: make([]float32, w*h)}
	r.ClearDepth()
	return r, nil
}

// ClearDepth resets the depth buffer to the far plane.
func (r *Rasterizer) ClearDepth() {
	for i := range r.depth {
		r.depth[i] = 1
	}
	r.stats = Stats{}
}

// Stats reports counters since the last ClearDepth.
func (r *Rasterizer) Stats() Stats { return r.stats }

// screenVert is a triangle vertex mapped to pixel space.
type screenVert struct {
	x, y float32
	invW float32
	z    float32 // NDC depth in [0,1]
}

// triSetup holds per-triangle interpolation state.
type triSetup struct {
	sv   [3]screenVert
	tri  *geom.Tri
	area float32
	// Attribute/w planes for perspective-correct interpolation.
	uOverW, vOverW [3]float32
	// Centroid footprint (simulator LoD basis).
	centroidFoot float32
	// swapped records the vertex reorder applied to orient the area
	// positive, so attribute fetch can map weights back to tri.V order.
	swapped bool
	// edgeOwn is the fill-rule tie-break per edge: a pixel exactly on an
	// edge belongs to exactly one of the two triangles sharing it.
	edgeOwn [3]bool
}

// ownsEdge is an asymmetric predicate on the edge direction a→b: the two
// triangles sharing an edge see it with opposite directions, so exactly
// one of them accepts pixels lying exactly on the edge (the top-left rule
// family).
func ownsEdge(a, b screenVert) bool {
	dy := b.y - a.y
	if dy != 0 {
		return dy < 0
	}
	return b.x-a.x > 0
}

// Rasterize bins tris into tiles and emits fragments tile by tile in
// row-major tile order (the ITR traversal). The returned slice holds one
// fragment group per non-empty tile.
func (r *Rasterizer) Rasterize(tris []geom.Tri) [][]Fragment {
	tilesX := (r.W + r.TileSize - 1) / r.TileSize
	tilesY := (r.H + r.TileSize - 1) / r.TileSize
	bins := make([][]int, tilesX*tilesY)

	setups := make([]triSetup, 0, len(tris))
	for ti := range tris {
		ts, ok := r.setup(&tris[ti])
		if !ok {
			continue
		}
		idx := len(setups)
		setups = append(setups, ts)
		// Bin by the triangle's pixel bounding box.
		minX, minY, maxX, maxY := bbox(&setups[idx], r.W, r.H)
		if minX > maxX || minY > maxY {
			continue
		}
		for ty := minY / r.TileSize; ty <= maxY/r.TileSize; ty++ {
			for tx := minX / r.TileSize; tx <= maxX/r.TileSize; tx++ {
				bins[ty*tilesX+tx] = append(bins[ty*tilesX+tx], idx)
			}
		}
		r.stats.Triangles++
	}

	var out [][]Fragment
	for tile := 0; tile < len(bins); tile++ {
		if len(bins[tile]) == 0 {
			continue
		}
		tx, ty := tile%tilesX, tile/tilesX
		x0, y0 := tx*r.TileSize, ty*r.TileSize
		x1, y1 := min(x0+r.TileSize, r.W), min(y0+r.TileSize, r.H)
		var frags []Fragment
		for _, si := range bins[tile] {
			frags = r.rasterRegion(&setups[si], x0, y0, x1, y1, frags)
		}
		if len(frags) > 0 {
			out = append(out, frags)
		}
	}
	return out
}

// setup maps a triangle to screen space and precomputes interpolation.
func (r *Rasterizer) setup(t *geom.Tri) (triSetup, bool) {
	var ts triSetup
	ts.tri = t
	for i, v := range t.V {
		if v.Clip.W <= 0 {
			return ts, false
		}
		invW := 1 / v.Clip.W
		ndcX := v.Clip.X * invW
		ndcY := v.Clip.Y * invW
		ts.sv[i] = screenVert{
			x:    (ndcX*0.5 + 0.5) * float32(r.W),
			y:    (1 - (ndcY*0.5 + 0.5)) * float32(r.H),
			invW: invW,
			z:    gmath.Clamp(v.Clip.Z*invW, 0, 1),
		}
		ts.uOverW[i] = v.UV.X * invW
		ts.vOverW[i] = v.UV.Y * invW
	}
	ts.area = edge(ts.sv[0], ts.sv[1], ts.sv[2])
	if ts.area == 0 {
		return ts, false
	}
	if ts.area < 0 {
		// Orient consistently so edge tests are uniform.
		ts.sv[0], ts.sv[1] = ts.sv[1], ts.sv[0]
		ts.uOverW[0], ts.uOverW[1] = ts.uOverW[1], ts.uOverW[0]
		ts.vOverW[0], ts.vOverW[1] = ts.vOverW[1], ts.vOverW[0]
		ts.swapped = true
		ts.area = -ts.area
	}
	ts.edgeOwn[0] = ownsEdge(ts.sv[1], ts.sv[2])
	ts.edgeOwn[1] = ownsEdge(ts.sv[2], ts.sv[0])
	ts.edgeOwn[2] = ownsEdge(ts.sv[0], ts.sv[1])
	cx := (ts.sv[0].x + ts.sv[1].x + ts.sv[2].x) / 3
	cy := (ts.sv[0].y + ts.sv[1].y + ts.sv[2].y) / 3
	ts.centroidFoot = ts.footprintAt(cx, cy)
	return ts, true
}

func edge(a, b, c screenVert) float32 {
	return (b.x-a.x)*(c.y-a.y) - (b.y-a.y)*(c.x-a.x)
}

func bbox(ts *triSetup, w, h int) (minX, minY, maxX, maxY int) {
	minXf := gmath.Min(ts.sv[0].x, gmath.Min(ts.sv[1].x, ts.sv[2].x))
	maxXf := gmath.Max(ts.sv[0].x, gmath.Max(ts.sv[1].x, ts.sv[2].x))
	minYf := gmath.Min(ts.sv[0].y, gmath.Min(ts.sv[1].y, ts.sv[2].y))
	maxYf := gmath.Max(ts.sv[0].y, gmath.Max(ts.sv[1].y, ts.sv[2].y))
	minX = gmath.ClampInt(int(minXf), 0, w-1)
	maxX = gmath.ClampInt(int(maxXf), 0, w-1)
	minY = gmath.ClampInt(int(minYf), 0, h-1)
	maxY = gmath.ClampInt(int(maxYf), 0, h-1)
	return
}

// bary returns barycentric weights of pixel center (px, py).
func (ts *triSetup) bary(px, py float32) (w0, w1, w2 float32, inside bool) {
	p := screenVert{x: px, y: py}
	e0 := edge(ts.sv[1], ts.sv[2], p)
	e1 := edge(ts.sv[2], ts.sv[0], p)
	e2 := edge(ts.sv[0], ts.sv[1], p)
	if e0 < 0 || e1 < 0 || e2 < 0 ||
		(e0 == 0 && !ts.edgeOwn[0]) ||
		(e1 == 0 && !ts.edgeOwn[1]) ||
		(e2 == 0 && !ts.edgeOwn[2]) {
		return 0, 0, 0, false
	}
	inv := 1 / ts.area
	return e0 * inv, e1 * inv, e2 * inv, true
}

// interpAt returns perspective-correct u, v, invW at (px, py).
func (ts *triSetup) interpAt(px, py float32) (u, v, invW float32, ok bool) {
	w0, w1, w2, inside := ts.bary(px, py)
	if !inside {
		// Extrapolate for derivative probes just outside the edge.
		p := screenVert{x: px, y: py}
		inv := 1 / ts.area
		w0 = edge(ts.sv[1], ts.sv[2], p) * inv
		w1 = edge(ts.sv[2], ts.sv[0], p) * inv
		w2 = 1 - w0 - w1
	}
	invW = w0*ts.sv[0].invW + w1*ts.sv[1].invW + w2*ts.sv[2].invW
	if invW <= 0 {
		return 0, 0, 0, false
	}
	U := w0*ts.uOverW[0] + w1*ts.uOverW[1] + w2*ts.uOverW[2]
	V := w0*ts.vOverW[0] + w1*ts.vOverW[1] + w2*ts.vOverW[2]
	return U / invW, V / invW, invW, true
}

// footprintAt evaluates the UV-space footprint (max UV delta per pixel) at
// (px, py) by analytic finite differencing — hardware's quad ddx/ddy.
func (ts *triSetup) footprintAt(px, py float32) float32 {
	u0, v0, _, ok0 := ts.interpAt(px, py)
	u1, v1, _, ok1 := ts.interpAt(px+1, py)
	u2, v2, _, ok2 := ts.interpAt(px, py+1)
	if !ok0 || !ok1 || !ok2 {
		return 0
	}
	dx := gmath.Sqrt((u1-u0)*(u1-u0) + (v1-v0)*(v1-v0))
	dy := gmath.Sqrt((u2-u0)*(u2-u0) + (v2-v0)*(v2-v0))
	return gmath.Max(dx, dy)
}

// rasterRegion emits the triangle's covered fragments within a pixel
// region, applying early-Z, appending to frags.
func (r *Rasterizer) rasterRegion(ts *triSetup, x0, y0, x1, y1 int, frags []Fragment) []Fragment {
	minX, minY, maxX, maxY := bbox(ts, r.W, r.H)
	if minX < x0 {
		minX = x0
	}
	if minY < y0 {
		minY = y0
	}
	if maxX >= x1 {
		maxX = x1 - 1
	}
	if maxY >= y1 {
		maxY = y1 - 1
	}
	t := ts.tri
	v0g := t.V[0].Global
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float32(x)+0.5, float32(y)+0.5
			w0, w1, w2, inside := ts.bary(px, py)
			if !inside {
				continue
			}
			z := w0*ts.sv[0].z + w1*ts.sv[1].z + w2*ts.sv[2].z
			di := y*r.W + x
			if r.EarlyZ {
				if z >= r.depth[di] {
					r.stats.EarlyZKill++
					continue
				}
				r.depth[di] = z
			}

			invW := w0*ts.sv[0].invW + w1*ts.sv[1].invW + w2*ts.sv[2].invW
			if invW <= 0 {
				continue
			}
			persp := 1 / invW
			// Perspective-correct attribute weights.
			pw0 := w0 * ts.sv[0].invW * persp
			pw1 := w1 * ts.sv[1].invW * persp
			pw2 := w2 * ts.sv[2].invW * persp
			i0, i1, i2 := 0, 1, 2
			if ts.swapped {
				i0, i1 = 1, 0
			}
			a, b, cc := &t.V[i0], &t.V[i1], &t.V[i2]
			f := Fragment{
				X: x, Y: y, Depth: z,
				UV: gmath.Vec2{
					X: pw0*a.UV.X + pw1*b.UV.X + pw2*cc.UV.X,
					Y: pw0*a.UV.Y + pw1*b.UV.Y + pw2*cc.UV.Y,
				},
				WNrm: gmath.Vec3{
					X: pw0*a.WNrm.X + pw1*b.WNrm.X + pw2*cc.WNrm.X,
					Y: pw0*a.WNrm.Y + pw1*b.WNrm.Y + pw2*cc.WNrm.Y,
					Z: pw0*a.WNrm.Z + pw1*b.WNrm.Z + pw2*cc.WNrm.Z,
				},
				WPos: gmath.Vec3{
					X: pw0*a.WPos.X + pw1*b.WPos.X + pw2*cc.WPos.X,
					Y: pw0*a.WPos.Y + pw1*b.WPos.Y + pw2*cc.WPos.Y,
					Z: pw0*a.WPos.Z + pw1*b.WPos.Z + pw2*cc.WPos.Z,
				},
				Layer:          int(a.Layer + 0.5),
				Footprint:      ts.centroidFoot,
				FootprintExact: ts.footprintAt(px, py),
				Vert0Global:    v0g,
			}
			frags = append(frags, f)
			r.stats.Fragments++
		}
	}
	return frags
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
