package config

import (
	"os"
	"testing"
)

func TestParseOverridesBase(t *testing.T) {
	g, err := Parse([]byte(`{
		"name": "OrinNX",
		"base": "JetsonOrin",
		"num_sms": 8,
		"mem_bandwidth_gbps": 102.4,
		"core_clock_mhz": 918
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "OrinNX" || g.NumSMs != 8 || g.CoreClockMHz != 918 {
		t.Errorf("overrides not applied: %+v", g)
	}
	// Inherited from the Orin base.
	if g.L2Size != 4<<20 || g.MaxWarpsPerSM != 64 {
		t.Errorf("base fields not inherited: %+v", g)
	}
}

func TestParseDefaultsToOrinBase(t *testing.T) {
	g, err := Parse([]byte(`{"name": "X"}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 14 {
		t.Errorf("default base not Orin: %d SMs", g.NumSMs)
	}
}

func TestParseRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"smCount": 8}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"num_sms": 0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Parse([]byte(`{"base": "A100"}`)); err == nil {
		t.Error("unknown base accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadFile(t *testing.T) {
	path := t.TempDir() + "/gpu.json"
	if err := os.WriteFile(path, []byte(`{"base": "RTX3070", "name": "RTX3070-OC", "core_clock_mhz": 1400}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 46 || g.CoreClockMHz != 1400 {
		t.Errorf("loaded config wrong: %+v", g)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}
