package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// The paper's artifact supports experiment customization "by adjusting the
// GPU configuration file"; LoadFile provides the same workflow: a JSON
// file overriding any subset of a base configuration's fields.

// fileConfig mirrors GPU with pointer fields so absent keys inherit the
// base configuration.
type fileConfig struct {
	Name             *string  `json:"name"`
	Base             *string  `json:"base"` // "JetsonOrin" or "RTX3070"; default JetsonOrin
	NumSMs           *int     `json:"num_sms"`
	RegistersPerSM   *int     `json:"registers_per_sm"`
	MaxWarpsPerSM    *int     `json:"max_warps_per_sm"`
	MaxCTAsPerSM     *int     `json:"max_ctas_per_sm"`
	SchedulersPerSM  *int     `json:"schedulers_per_sm"`
	SharedMemPerSM   *int     `json:"shared_mem_per_sm"`
	FPUnits          *int     `json:"fp_units"`
	SFUUnits         *int     `json:"sfu_units"`
	INTUnits         *int     `json:"int_units"`
	TensorUnits      *int     `json:"tensor_units"`
	L1Size           *int     `json:"l1_size"`
	L1Assoc          *int     `json:"l1_assoc"`
	L2Size           *int     `json:"l2_size"`
	L2Assoc          *int     `json:"l2_assoc"`
	L2Banks          *int     `json:"l2_banks"`
	LineSize         *int     `json:"line_size"`
	SectorSize       *int     `json:"sector_size"`
	L1MSHRs          *int     `json:"l1_mshrs"`
	L2MSHRs          *int     `json:"l2_mshrs"`
	L1Latency        *int     `json:"l1_latency"`
	L2Latency        *int     `json:"l2_latency"`
	DRAMLatency      *int     `json:"dram_latency"`
	CoreClockMHz     *int     `json:"core_clock_mhz"`
	MemBandwidthGBps *float64 `json:"mem_bandwidth_gbps"`
	MemChannels      *int     `json:"mem_channels"`
	MemTech          *string  `json:"mem_tech"`
}

// LoadFile reads a JSON GPU configuration. Fields not present inherit
// from the "base" configuration (JetsonOrin by default). The result is
// validated.
func LoadFile(path string) (GPU, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return GPU{}, err
	}
	return Parse(data)
}

// Parse decodes a JSON GPU configuration (see LoadFile).
func Parse(data []byte) (GPU, error) {
	var fc fileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return GPU{}, fmt.Errorf("config: parse: %w", err)
	}
	g := JetsonOrin()
	if fc.Base != nil {
		base, err := ByName(*fc.Base)
		if err != nil {
			return GPU{}, err
		}
		g = base
	}
	setS := func(dst *string, src *string) {
		if src != nil {
			*dst = *src
		}
	}
	setI := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setS(&g.Name, fc.Name)
	setI(&g.NumSMs, fc.NumSMs)
	setI(&g.RegistersPerSM, fc.RegistersPerSM)
	setI(&g.MaxWarpsPerSM, fc.MaxWarpsPerSM)
	setI(&g.MaxCTAsPerSM, fc.MaxCTAsPerSM)
	setI(&g.SchedulersPerSM, fc.SchedulersPerSM)
	setI(&g.SharedMemPerSM, fc.SharedMemPerSM)
	setI(&g.FPUnits, fc.FPUnits)
	setI(&g.SFUUnits, fc.SFUUnits)
	setI(&g.INTUnits, fc.INTUnits)
	setI(&g.TensorUnits, fc.TensorUnits)
	setI(&g.L1Size, fc.L1Size)
	setI(&g.L1Assoc, fc.L1Assoc)
	setI(&g.L2Size, fc.L2Size)
	setI(&g.L2Assoc, fc.L2Assoc)
	setI(&g.L2Banks, fc.L2Banks)
	setI(&g.LineSize, fc.LineSize)
	setI(&g.SectorSize, fc.SectorSize)
	setI(&g.L1MSHRs, fc.L1MSHRs)
	setI(&g.L2MSHRs, fc.L2MSHRs)
	setI(&g.L1Latency, fc.L1Latency)
	setI(&g.L2Latency, fc.L2Latency)
	setI(&g.DRAMLatency, fc.DRAMLatency)
	setI(&g.CoreClockMHz, fc.CoreClockMHz)
	if fc.MemBandwidthGBps != nil {
		g.MemBandwidthGBps = *fc.MemBandwidthGBps
	}
	setI(&g.MemChannels, fc.MemChannels)
	setS(&g.MemTech, fc.MemTech)
	if err := g.Validate(); err != nil {
		return GPU{}, err
	}
	return g, nil
}
