package config

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzConfigLoadFile drives the artifact-style JSON config loader with
// arbitrary bytes: LoadFile must return a config that passes Validate or
// a clean error — never panic, and never hand back a config the timing
// model would divide-by-zero on.
func FuzzConfigLoadFile(f *testing.F) {
	f.Add([]byte(`{"name":"x","base":"JetsonOrin","num_sms":4}`))
	f.Add([]byte(`{"base":"RTX3070","l2_size":2097152,"num_sms":8}`))
	f.Add([]byte(`{"num_sms":0}`))
	f.Add([]byte(`{"schedulers_per_sm":0}`))
	f.Add([]byte(`{"l2_banks":-3,"mem_channels":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	// Seed from the shipped example configs so the corpus starts from
	// real accepted inputs.
	if paths, err := filepath.Glob("../../examples/configs/*.json"); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cfg.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		g, err := LoadFile(path)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("LoadFile accepted a config Validate rejects: %v\ninput: %q", verr, data)
		}
		// The derived quantities the timing model divides by must be sane.
		if g.BytesPerCycle() <= 0 {
			t.Fatalf("accepted config has BytesPerCycle = %v", g.BytesPerCycle())
		}
		if g.FrameTimeMS(1000) <= 0 {
			t.Fatalf("accepted config has non-positive frame time")
		}
	})
}
