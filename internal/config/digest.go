package config

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
)

// Digest returns a canonical content hash of the simulated configuration,
// rendered as 16 lowercase hex digits. Two GPU values digest identically
// iff every simulated field is equal, regardless of how the values were
// built (preset constructor, JSON file, inline literal) and regardless of
// the struct's field declaration order: fields are hashed as sorted
// "name=value" pairs, so reordering the GPU struct never silently changes
// existing digests.
//
// Host-execution knobs (currently Workers) are excluded: they change
// wall-clock behavior only, never simulation results, so they must not
// split otherwise-identical cache keys or snapshot identities.
func Digest(g GPU) string {
	rv := reflect.ValueOf(g)
	rt := rv.Type()
	pairs := make([]string, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !hashedFields[f.Name] {
			continue
		}
		pairs = append(pairs, fmt.Sprintf("%s=%v", f.Name, rv.Field(i).Interface()))
	}
	sort.Strings(pairs)
	h := fnv.New64a()
	for _, p := range pairs {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashedFields names every GPU field that participates in the digest. An
// init-time check below forces this table to stay in sync with the struct:
// adding a simulated field without classifying it here fails fast instead
// of silently aliasing configurations.
var hashedFields = map[string]bool{
	"Name":             true,
	"NumSMs":           true,
	"RegistersPerSM":   true,
	"MaxWarpsPerSM":    true,
	"MaxCTAsPerSM":     true,
	"SchedulersPerSM":  true,
	"SharedMemPerSM":   true,
	"FPUnits":          true,
	"SFUUnits":         true,
	"INTUnits":         true,
	"TensorUnits":      true,
	"L1Size":           true,
	"L1Assoc":          true,
	"L2Size":           true,
	"L2Assoc":          true,
	"L2Banks":          true,
	"LineSize":         true,
	"SectorSize":       true,
	"L1MSHRs":          true,
	"L2MSHRs":          true,
	"L1Latency":        true,
	"L2Latency":        true,
	"DRAMLatency":      true,
	"CoreClockMHz":     true,
	"MemBandwidthGBps": true,
	"MemChannels":      true,
	"MemTech":          true,
	// Host-execution knobs: present so the completeness check passes,
	// excluded from the hash.
	"Workers": false,
}

func init() {
	rt := reflect.TypeOf(GPU{})
	for i := 0; i < rt.NumField(); i++ {
		if _, ok := hashedFields[rt.Field(i).Name]; !ok {
			panic(fmt.Sprintf("config: GPU field %q is not classified in hashedFields (digest.go)", rt.Field(i).Name))
		}
	}
	if len(hashedFields) != rt.NumField() {
		panic("config: hashedFields lists fields the GPU struct no longer has")
	}
}
