package config

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDigestFileVsPreset is the satellite acceptance test: a config loaded
// from a JSON file that reconstructs a preset field-by-field must digest
// identically to the preset itself.
func TestDigestFileVsPreset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orin.json")
	// A file naming the base and overriding nothing reproduces the preset.
	if err := os.WriteFile(path, []byte(`{"base": "JetsonOrin"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	preset := JetsonOrin()
	if got, want := Digest(fromFile), Digest(preset); got != want {
		t.Fatalf("file-loaded config digest %s != preset digest %s", got, want)
	}

	// Overriding a field to its preset value must also digest identically:
	// the digest keys on content, not provenance.
	if err := os.WriteFile(path, []byte(`{"base": "JetsonOrin", "num_sms": 14}`), 0o644); err != nil {
		t.Fatal(err)
	}
	explicit, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Digest(explicit), Digest(preset); got != want {
		t.Fatalf("explicit-field config digest %s != preset digest %s", got, want)
	}
}

func TestDigestSeparatesConfigs(t *testing.T) {
	if Digest(JetsonOrin()) == Digest(RTX3070()) {
		t.Fatal("JetsonOrin and RTX3070 digest identically")
	}
	small := JetsonOrin()
	small.NumSMs = 4
	if Digest(small) == Digest(JetsonOrin()) {
		t.Fatal("changing NumSMs did not change the digest")
	}
}

func TestDigestIgnoresHostKnobs(t *testing.T) {
	a, b := JetsonOrin(), JetsonOrin()
	b.Workers = 8
	if Digest(a) != Digest(b) {
		t.Fatal("host Workers knob changed the config digest")
	}
}
