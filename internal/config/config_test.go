package config

import "testing"

func TestTable2Configs(t *testing.T) {
	orin := JetsonOrin()
	rtx := RTX3070()

	// Table II values.
	if orin.NumSMs != 14 {
		t.Errorf("Orin SMs = %d, want 14", orin.NumSMs)
	}
	if rtx.NumSMs != 46 {
		t.Errorf("3070 SMs = %d, want 46", rtx.NumSMs)
	}
	for _, g := range []GPU{orin, rtx} {
		if g.RegistersPerSM != 65536 {
			t.Errorf("%s registers = %d, want 65536", g.Name, g.RegistersPerSM)
		}
		if g.MaxWarpsPerSM != 64 || g.SchedulersPerSM != 4 {
			t.Errorf("%s warps/schedulers = %d/%d, want 64/4", g.Name, g.MaxWarpsPerSM, g.SchedulersPerSM)
		}
		if g.FPUnits != 4 || g.SFUUnits != 4 || g.INTUnits != 4 || g.TensorUnits != 4 {
			t.Errorf("%s exec units wrong", g.Name)
		}
		if g.L2Size != 4<<20 {
			t.Errorf("%s L2 = %d, want 4MB", g.Name, g.L2Size)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", g.Name, err)
		}
	}
	if orin.CoreClockMHz != 1300 || rtx.CoreClockMHz != 1132 {
		t.Error("core clocks do not match Table II")
	}
	if orin.MemBandwidthGBps != 200 || rtx.MemBandwidthGBps != 448 {
		t.Error("memory bandwidths do not match Table II")
	}
	if orin.MemTech != "LPDDR5" || rtx.MemTech != "GDDR6" {
		t.Error("memory technologies do not match Table II")
	}
}

func TestBytesPerCycle(t *testing.T) {
	g := RTX3070()
	bpc := g.BytesPerCycle()
	// 448 GB/s at 1132 MHz ≈ 395.8 B/cycle.
	if bpc < 390 || bpc > 400 {
		t.Errorf("BytesPerCycle = %v, want ≈396", bpc)
	}
}

func TestFrameTimeMS(t *testing.T) {
	g := JetsonOrin()
	// 1.3M cycles at 1300 MHz = 1 ms.
	if got := g.FrameTimeMS(1300000); got < 0.999 || got > 1.001 {
		t.Errorf("FrameTimeMS = %v, want 1.0", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"JetsonOrin", "orin", "RTX3070", "3070"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("A100"); err == nil {
		t.Error("ByName accepted unknown GPU")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := JetsonOrin()
	bad.NumSMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted 0 SMs")
	}
	bad = JetsonOrin()
	bad.L2Banks = 7 // 4MB not divisible
	if err := bad.Validate(); err == nil {
		t.Error("accepted indivisible bank count")
	}
	bad = JetsonOrin()
	bad.MaxWarpsPerSM = 63
	if err := bad.Validate(); err == nil {
		t.Error("accepted warps not multiple of schedulers")
	}
	bad = JetsonOrin()
	bad.MemBandwidthGBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
}
