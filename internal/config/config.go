// Package config holds the simulated GPU configurations. The two built-in
// configurations reproduce Table II of the paper: the NVIDIA Jetson Orin
// (embedded, LPDDR5) and the NVIDIA RTX 3070 (discrete, GDDR6), both
// Ampere-class parts sharing the same SM organization.
package config

import "fmt"

// GPU describes one simulated GPU.
type GPU struct {
	Name string

	// SM organization.
	NumSMs          int
	RegistersPerSM  int // 32-bit registers
	MaxWarpsPerSM   int
	MaxCTAsPerSM    int
	SchedulersPerSM int
	SharedMemPerSM  int // bytes available as shared memory
	// Execution units per SM (one pipeline each per scheduler in Ampere).
	FPUnits     int
	SFUUnits    int
	INTUnits    int
	TensorUnits int

	// Cache hierarchy.
	L1Size   int // bytes; unified data+texture (+ shared carve-out handled separately)
	L1Assoc  int
	L2Size   int // bytes, total across banks
	L2Assoc  int
	L2Banks  int
	LineSize int // bytes
	// SectorSize enables sectored caches when > 0 (e.g. 32): tags stay
	// line-granular, data fills are per sector. 0 = line-granular fills
	// (the calibrated default).
	SectorSize  int
	L1MSHRs     int
	L2MSHRs     int
	L1Latency   int // hit latency, core cycles
	L2Latency   int // hit latency beyond L1, core cycles
	DRAMLatency int // row access latency beyond L2, core cycles

	// Clocks and memory system.
	CoreClockMHz     int
	MemBandwidthGBps float64
	MemChannels      int
	MemTech          string

	// Host execution (not simulated hardware). Workers sets how many host
	// goroutines step SM cores in parallel: 0 = auto (GOMAXPROCS, capped
	// at NumSMs), 1 or negative = the serial reference engine, N > 1 = the
	// two-phase parallel engine with N workers. Simulation results are
	// bit-identical at every setting, so the field may be overridden
	// freely (e.g. by the CLIs' -j flag) without invalidating comparisons
	// or checkpoints.
	Workers int
}

// BytesPerCycle is the aggregate DRAM bandwidth expressed in bytes per core
// cycle, the unit the DRAM model meters traffic in.
func (g *GPU) BytesPerCycle() float64 {
	return g.MemBandwidthGBps * 1e9 / (float64(g.CoreClockMHz) * 1e6)
}

// FrameTimeMS converts a cycle count to milliseconds at the core clock.
func (g *GPU) FrameTimeMS(cycles int64) float64 {
	return float64(cycles) / (float64(g.CoreClockMHz) * 1e3)
}

// Validate checks the configuration for internally consistent values.
func (g *GPU) Validate() error {
	switch {
	case g.NumSMs <= 0:
		return fmt.Errorf("config %q: NumSMs = %d", g.Name, g.NumSMs)
	case g.SchedulersPerSM <= 0:
		return fmt.Errorf("config %q: SchedulersPerSM = %d", g.Name, g.SchedulersPerSM)
	case g.LineSize <= 0:
		return fmt.Errorf("config %q: LineSize = %d", g.Name, g.LineSize)
	case g.L1Assoc <= 0 || g.L2Assoc <= 0:
		return fmt.Errorf("config %q: cache associativity must be positive (L1 %d, L2 %d)", g.Name, g.L1Assoc, g.L2Assoc)
	case g.MaxWarpsPerSM <= 0 || g.MaxWarpsPerSM%g.SchedulersPerSM != 0:
		return fmt.Errorf("config %q: MaxWarpsPerSM (%d) must be a positive multiple of SchedulersPerSM (%d)", g.Name, g.MaxWarpsPerSM, g.SchedulersPerSM)
	case g.L2Banks <= 0 || g.L2Size%g.L2Banks != 0:
		return fmt.Errorf("config %q: L2Size (%d) must divide evenly across L2Banks (%d)", g.Name, g.L2Size, g.L2Banks)
	case (g.L2Size/g.L2Banks)%(g.L2Assoc*g.LineSize) != 0:
		return fmt.Errorf("config %q: L2 bank size is not a whole number of sets", g.Name)
	case g.L1Size%(g.L1Assoc*g.LineSize) != 0:
		return fmt.Errorf("config %q: L1 size is not a whole number of sets", g.Name)
	case g.MemBandwidthGBps <= 0:
		return fmt.Errorf("config %q: MemBandwidthGBps = %v", g.Name, g.MemBandwidthGBps)
	case g.MemChannels <= 0:
		return fmt.Errorf("config %q: MemChannels = %d", g.Name, g.MemChannels)
	case g.SectorSize < 0 || (g.SectorSize > 0 && (g.LineSize%g.SectorSize != 0 || g.LineSize/g.SectorSize > 32)):
		return fmt.Errorf("config %q: SectorSize %d incompatible with %d-byte lines", g.Name, g.SectorSize, g.LineSize)
	}
	return nil
}

// ampereSM fills the SM parameters shared by both Table II configs:
// 64 warps/SM, 4 schedulers, 65536 registers, 4 FP/SFU/INT/Tensor units.
func ampereSM(g GPU) GPU {
	g.RegistersPerSM = 65536
	g.MaxWarpsPerSM = 64
	g.MaxCTAsPerSM = 32
	g.SchedulersPerSM = 4
	g.FPUnits = 4
	g.SFUUnits = 4
	g.INTUnits = 4
	g.TensorUnits = 4
	g.L1Assoc = 4
	g.L2Assoc = 16
	g.LineSize = 128
	g.L1MSHRs = 64
	g.L2MSHRs = 128
	g.L1Latency = 28
	g.L2Latency = 190
	g.DRAMLatency = 260
	return g
}

// JetsonOrin returns the embedded-GPU configuration from Table II:
// 14 SMs, 196 KB L1+shared, 4 MB L2, LPDDR5 at 200 GB/s, 1300 MHz.
func JetsonOrin() GPU {
	return ampereSM(GPU{
		Name:             "JetsonOrin",
		NumSMs:           14,
		SharedMemPerSM:   64 << 10,
		L1Size:           128 << 10, // 196 KB combined; 64 KB carved out as shared memory
		L2Size:           4 << 20,
		L2Banks:          16,
		CoreClockMHz:     1300,
		MemBandwidthGBps: 200,
		MemChannels:      8,
		MemTech:          "LPDDR5",
	})
}

// RTX3070 returns the discrete-GPU configuration from Table II:
// 46 SMs, 128 KB L1+shared, 4 MB L2, GDDR6 at 448 GB/s, 1132 MHz.
func RTX3070() GPU {
	return ampereSM(GPU{
		Name:             "RTX3070",
		NumSMs:           46,
		SharedMemPerSM:   64 << 10,
		L1Size:           64 << 10, // 128 KB combined; 64 KB carved out as shared memory
		L2Size:           4 << 20,
		L2Banks:          16,
		CoreClockMHz:     1132,
		MemBandwidthGBps: 448,
		MemChannels:      8,
		MemTech:          "GDDR6",
	})
}

// ByName returns a built-in configuration by (case-sensitive) name.
func ByName(name string) (GPU, error) {
	switch name {
	case "JetsonOrin", "orin":
		return JetsonOrin(), nil
	case "RTX3070", "3070":
		return RTX3070(), nil
	}
	return GPU{}, fmt.Errorf("config: unknown GPU %q (want JetsonOrin or RTX3070)", name)
}
