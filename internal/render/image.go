package render

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"strings"

	"crisp/internal/gmath"
)

// WritePPM writes the rendered framebuffer as a binary PPM image — the
// model-rendered outputs of paper Figs. 5 and 8.
func (r *Result) WritePPM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P6\n%d %d\n255\n", r.W, r.H)
	to8 := func(x float32) byte { return byte(gmath.Clamp(x, 0, 1)*254.9 + 0.5) }
	for _, px := range r.Color {
		w.WriteByte(to8(px.X))
		w.WriteByte(to8(px.Y))
		w.WriteByte(to8(px.Z))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePNG writes the framebuffer as a PNG image.
func (r *Result) WritePNG(path string) error {
	img := image.NewNRGBA(image.Rect(0, 0, r.W, r.H))
	to8 := func(x float32) uint8 { return uint8(gmath.Clamp(x, 0, 1)*254.9 + 0.5) }
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			px := r.Color[y*r.W+x]
			img.SetNRGBA(x, y, color.NRGBA{R: to8(px.X), G: to8(px.Y), B: to8(px.Z), A: 255})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteImage writes PNG or PPM depending on the path's extension.
func (r *Result) WriteImage(path string) error {
	if strings.HasSuffix(strings.ToLower(path), ".png") {
		return r.WritePNG(path)
	}
	return r.WritePPM(path)
}

// MeanColor reports the framebuffer's average RGB (useful for image-level
// assertions in tests: LoD on/off must produce similar but not identical
// images).
func (r *Result) MeanColor() gmath.Vec3 {
	var acc gmath.Vec3
	for _, px := range r.Color {
		acc = acc.Add(px.XYZ())
	}
	n := float32(len(r.Color))
	if n == 0 {
		return gmath.Vec3{}
	}
	return acc.Scale(1 / n)
}

// CoveredPixels counts pixels any fragment shaded.
func (r *Result) CoveredPixels() int {
	n := 0
	for _, px := range r.Color {
		if px.W > 0 {
			n++
		}
	}
	return n
}
