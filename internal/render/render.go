// Package render drives the Immediate Tiled Rendering pipeline of Fig. 2:
// drawcalls are split into vertex batches; each batch's vertex shader runs
// (emitting its trace), surviving primitives are assembled, culled, and
// rasterized, and the batch's fragments are shaded (emitting the fragment
// trace). Fixed-function stages run functionally; their inter-stage data
// movement is recreated as pipeline-class L2 traffic, and the ROP is
// skipped, exactly as the paper prescribes. Each batch becomes one stream
// holding its vertex and fragment kernels.
package render

import (
	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/raster"
	"crisp/internal/shader"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// MaterialKind selects the fragment-shader program.
type MaterialKind uint8

const (
	// MatBasic is single-texture Lambert (Khronos Sponza).
	MatBasic MaterialKind = iota
	// MatPBR is the eight-map physically-based shader (Pistol, Sponza PBR).
	MatPBR
	// MatToon is the stylized Platformer shader.
	MatToon
	// MatMaterial is the material-tester shader (3 maps, Blinn-Phong).
	MatMaterial
	// MatPlanet is the instanced, texture-array shader (Planets).
	MatPlanet
)

// regsPerThread reports the fragment-shader register footprint per
// material; the heavyweight PBR shader's register pressure is what causes
// the register-limited occupancy dips of paper Fig. 13.
func (k MaterialKind) regsPerThread() int {
	switch k {
	case MatPBR:
		return 96
	case MatMaterial:
		return 64
	case MatPlanet:
		return 48
	default:
		return 40
	}
}

// Material binds a shader program to its textures.
type Material struct {
	Kind      MaterialKind
	Albedo    *texture.Texture
	Roughness *texture.Texture
	Normal    *texture.Texture
	PBR       *shader.PBRMaps
	Layered   *texture.Texture
}

// Textures lists every texture the material samples.
func (m *Material) Textures() []*texture.Texture {
	switch m.Kind {
	case MatPBR:
		return m.PBR.All()
	case MatMaterial:
		return []*texture.Texture{m.Albedo, m.Roughness, m.Normal}
	case MatPlanet:
		return []*texture.Texture{m.Layered}
	default:
		return []*texture.Texture{m.Albedo}
	}
}

// Instance is one instanced-draw replication.
type Instance struct {
	Model gmath.Mat4
	Layer float32
}

// DrawCall is one draw: a mesh, its material, and either a single model
// transform or a list of instances (instanced drawing merges object
// duplicates into one call, as the Planets workload does).
type DrawCall struct {
	Name      string
	Mesh      *geom.Mesh
	Model     gmath.Mat4
	Mat       *Material
	Instances []Instance
}

// Camera is the frame's view.
type Camera struct {
	View gmath.Mat4
	Proj gmath.Mat4
	Pos  gmath.Vec3
}

// FrameDef is a complete frame description — what vkQueueSubmit hands to
// the simulator.
type FrameDef struct {
	Name  string
	Cam   Camera
	Light shader.Light
	Draws []DrawCall
}

// Options configure one render.
type Options struct {
	W, H      int
	BatchSize int
	// LoD enables mipmapped sampling (the paper's central Fig. 9 knob).
	LoD    bool
	Filter texture.Filter
	// BackfaceCull toggles back-face culling at primitive assembly.
	BackfaceCull bool
	// DisableEarlyZ turns the early depth test off (every covered
	// fragment shades — the overdraw ablation).
	DisableEarlyZ bool
	// StrictQuads packs fragments into 2×2 quads within warps and uses
	// exact per-quad derivatives for LoD — the design alternative to the
	// paper's approximated quads with rasterizer-precalculated LoD
	// ("Even though we don't strictly enforce quads in the model …").
	StrictQuads bool
	// CollectRefTex computes the exact-LoD reference texture accesses
	// alongside the simulated ones (costs a second sample per texel).
	CollectRefTex bool
	// BaseStream numbers the first generated stream.
	BaseStream int
}

// DefaultOptions is a 2K-class render with LoD on.
func DefaultOptions() Options {
	return Options{
		W: 320, H: 180,
		BatchSize:    geom.DefaultBatchSize,
		LoD:          true,
		Filter:       texture.FilterTrilinear,
		BackfaceCull: true,
	}
}

// StreamTrace is one rendering batch's command stream: its vertex kernel
// followed by its fragment kernel.
type StreamTrace struct {
	Stream  int
	Label   string
	Kernels []*trace.Kernel
}

// DrawMetrics are the per-drawcall measurements the validation studies
// consume.
type DrawMetrics struct {
	Name      string
	Batches   int
	Instances int
	// VerticesIn is the pre-batching vertex reference count (indices).
	VerticesIn int
	// ShadedVertices is the exact batched invocation count — what the
	// hardware profiler reports as thread count (paper Fig. 3 x-axis).
	ShadedVertices int
	// SimVertexThreads is warps-launched × 32 — what the simulator
	// reports (paper Fig. 3 y-axis; slight error on small draws).
	SimVertexThreads int
	Triangles        int
	Fragments        int
	EarlyZKill       int
	// SimTexAccesses counts L1 texture requests after per-instruction
	// merging with the simulator's LoD configuration.
	SimTexAccesses int64
	// RefTexAccesses is the same count under exact per-quad LoD — the
	// hardware stand-in reference for Fig. 9.
	RefTexAccesses int64
	// TexelBytes is the total unique texture footprint touched.
	TexWarpInsts int64
}

// Result is a completed frame render.
type Result struct {
	Frame   string
	W, H    int
	Color   []gmath.Vec4 // row-major framebuffer
	Streams []StreamTrace
	Metrics []DrawMetrics
	Raster  raster.Stats
}

// arena is a bump allocator for the frame's virtual address space.
type arena struct{ next uint64 }

func (a *arena) alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 128
	}
	a.next = (a.next + align - 1) / align * align
	p := a.next
	a.next += size
	return p
}
