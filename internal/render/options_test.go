package render

import (
	"testing"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/texture"
)

// gridMesh builds a subdivided quad with heavy vertex sharing so
// batch-size effects are visible.
func gridMesh(segs int) *geom.Mesh {
	m := &geom.Mesh{}
	for y := 0; y <= segs; y++ {
		for x := 0; x <= segs; x++ {
			fx := float32(x)/float32(segs)*2 - 1
			fy := float32(y)/float32(segs)*2 - 1
			m.Verts = append(m.Verts, geom.Vertex{
				Pos: gmath.V3(fx, fy, 0),
				Nrm: gmath.V3(0, 0, 1),
				UV:  gmath.Vec2{X: (fx + 1) * 2, Y: (fy + 1) * 2},
			})
		}
	}
	stride := uint32(segs + 1)
	for y := 0; y < segs; y++ {
		for x := 0; x < segs; x++ {
			a := uint32(y)*stride + uint32(x)
			m.Idx = append(m.Idx, a, a+1, a+stride, a+1, a+stride+1, a+stride)
		}
	}
	return m
}

func TestBatchSizeOptionChangesVertexWork(t *testing.T) {
	f := testFrame(MatBasic)
	f.Draws[0].Mesh = gridMesh(20)
	run := func(bs int) int {
		o := smallOpts()
		o.BatchSize = bs
		res, err := RenderFrame(f, o)
		if err != nil {
			t.Fatal(err)
		}
		shaded := 0
		for _, m := range res.Metrics {
			shaded += m.ShadedVertices
		}
		return shaded
	}
	small := run(12)
	big := run(192)
	if small <= big {
		t.Errorf("batch 12 shaded %d, batch 192 shaded %d — smaller batches must re-shade more", small, big)
	}
}

func TestFilterOptionAffectsSampling(t *testing.T) {
	for _, filter := range []texture.Filter{texture.FilterNearest, texture.FilterBilinear, texture.FilterTrilinear} {
		o := smallOpts()
		o.Filter = filter
		res, err := RenderFrame(testFrame(MatBasic), o)
		if err != nil {
			t.Fatalf("filter %v: %v", filter, err)
		}
		if res.CoveredPixels() == 0 {
			t.Errorf("filter %v painted nothing", filter)
		}
	}
}

func TestDisableEarlyZInflatesFragments(t *testing.T) {
	// Two coplanar-ish stacked quads: with early-Z off, occluded
	// fragments shade too.
	f := testFrame(MatBasic)
	second := f.Draws[0]
	second.Name = "quad2"
	second.Model = gmath.Translate(gmath.V3(0, 0, -0.2))
	f.Draws = append(f.Draws, second)

	on := smallOpts()
	off := smallOpts()
	off.DisableEarlyZ = true
	resOn, err := RenderFrame(f, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := RenderFrame(f, off)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Raster.Fragments <= resOn.Raster.Fragments {
		t.Errorf("early-Z off fragments %d should exceed on %d",
			resOff.Raster.Fragments, resOn.Raster.Fragments)
	}
}

func TestMeanColorBounds(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	mc := res.MeanColor()
	if mc.X < 0 || mc.X > 1 || mc.Y < 0 || mc.Y > 1 || mc.Z < 0 || mc.Z > 1 {
		t.Errorf("mean color out of range: %v", mc)
	}
	if res.CoveredPixels() > res.W*res.H {
		t.Error("coverage exceeds frame")
	}
	empty := &Result{}
	if empty.MeanColor() != (gmath.Vec3{}) {
		t.Error("empty frame mean should be zero")
	}
}

func TestStrictQuadsMatchExactReference(t *testing.T) {
	// With strict quads, runtime derivatives are exact, so simulated
	// texture accesses equal the exact-LoD reference; the approximated
	// quads deviate.
	f := testFrame(MatBasic)
	run := func(strict bool) (sim, ref int64) {
		o := smallOpts()
		o.CollectRefTex = true
		o.StrictQuads = strict
		res, err := RenderFrame(f, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Metrics {
			sim += m.SimTexAccesses
			ref += m.RefTexAccesses
		}
		return
	}
	sSim, sRef := run(true)
	if sSim != sRef {
		t.Errorf("strict quads: sim %d != ref %d", sSim, sRef)
	}
	aSim, aRef := run(false)
	if aSim == aRef {
		t.Log("approximated quads happened to match exactly on this frame (acceptable)")
	}
	_ = aSim
	_ = aRef
}

func TestStrictQuadsKeepFragmentSet(t *testing.T) {
	f := testFrame(MatBasic)
	o := smallOpts()
	plain, err := RenderFrame(f, o)
	if err != nil {
		t.Fatal(err)
	}
	o.StrictQuads = true
	strict, err := RenderFrame(f, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Raster.Fragments != strict.Raster.Fragments {
		t.Errorf("fragment counts differ: %d vs %d", plain.Raster.Fragments, strict.Raster.Fragments)
	}
	if plain.CoveredPixels() != strict.CoveredPixels() {
		t.Errorf("coverage differs: %d vs %d", plain.CoveredPixels(), strict.CoveredPixels())
	}
}
