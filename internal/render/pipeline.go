package render

import (
	"fmt"
	"sort"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/raster"
	"crisp/internal/shader"
	"crisp/internal/trace"
)

const (
	varyingStride  = 48 // bytes of post-transform attributes per vertex
	instanceStride = 64 // bytes of per-instance data (matrix row-major)
	fbPixelBytes   = 4  // RGBA8 render target
)

type pipeline struct {
	opts    Options
	frame   *FrameDef
	rast    *raster.Rasterizer
	mem     arena
	vbuf    map[*geom.Mesh]uint64
	fbBase  uint64
	color   []gmath.Vec4
	streams []StreamTrace
	nextStr int
	metrics []DrawMetrics
}

// RenderFrame executes the full pipeline for f and returns the framebuffer
// plus one trace stream per rendering batch.
func RenderFrame(f *FrameDef, opts Options) (*Result, error) {
	if opts.W <= 0 || opts.H <= 0 {
		return nil, fmt.Errorf("render: bad resolution %dx%d", opts.W, opts.H)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = geom.DefaultBatchSize
	}
	rast, err := raster.New(opts.W, opts.H)
	if err != nil {
		return nil, err
	}
	rast.EarlyZ = !opts.DisableEarlyZ
	p := &pipeline{
		opts:    opts,
		frame:   f,
		rast:    rast,
		mem:     arena{next: 1 << 20},
		vbuf:    make(map[*geom.Mesh]uint64),
		nextStr: opts.BaseStream,
	}
	p.fbBase = p.mem.alloc(uint64(opts.W*opts.H*fbPixelBytes), 128)
	p.color = make([]gmath.Vec4, opts.W*opts.H)

	// Bind all textures into the frame's address space.
	for di := range f.Draws {
		for _, t := range f.Draws[di].Mat.Textures() {
			if t.Size() == 0 {
				t.Bind(p.mem.alloc(1, 128))
				p.mem.next += t.Size()
			}
		}
	}

	for di := range f.Draws {
		if err := p.draw(&f.Draws[di]); err != nil {
			return nil, fmt.Errorf("render: draw %q: %w", f.Draws[di].Name, err)
		}
	}
	return &Result{
		Frame:   f.Name,
		W:       opts.W,
		H:       opts.H,
		Color:   p.color,
		Streams: p.streams,
		Metrics: p.metrics,
		Raster:  p.rast.Stats(),
	}, nil
}

func (p *pipeline) vbufBase(m *geom.Mesh) uint64 {
	if b, ok := p.vbuf[m]; ok {
		return b
	}
	b := p.mem.alloc(uint64(len(m.Verts)*geom.VertexStride), 128)
	p.vbuf[m] = b
	return b
}

// draw runs one drawcall: batching, then per batch VS → assembly/cull →
// raster → FS, each batch forming one stream.
func (p *pipeline) draw(dc *DrawCall) error {
	if err := dc.Mesh.Validate(); err != nil {
		return err
	}
	vb := p.vbufBase(dc.Mesh)
	batches := geom.BatchIndices(dc.Mesh.Idx, p.opts.BatchSize)

	instances := dc.Instances
	if len(instances) == 0 {
		instances = []Instance{{Model: dc.Model}}
	}
	instBase := p.mem.alloc(uint64(len(instances)*instanceStride), 128)

	m := DrawMetrics{
		Name:       dc.Name,
		Batches:    len(batches) * len(instances),
		Instances:  len(instances),
		VerticesIn: len(dc.Mesh.Idx) * len(instances),
	}

	viewProj := p.frame.Cam.Proj.Mul(p.frame.Cam.View)
	for ii := range instances {
		inst := &instances[ii]
		mvp := viewProj.Mul(inst.Model)
		for bi := range batches {
			b := &batches[bi]
			streamID := p.nextStr
			p.nextStr++
			label := fmt.Sprintf("%s.i%02d.b%03d", dc.Name, ii, bi)

			vsK, clipVerts, varyBase := p.vertexStage(dc, b, inst, ii, instBase, vb, mvp, streamID, label, &m)
			kernels := []*trace.Kernel{vsK}

			tris, _ := geom.AssembleCull(clipVerts, b.LocalIdx, p.opts.BackfaceCull)
			m.Triangles += len(tris)
			if len(tris) > 0 {
				tileFrags := p.rast.Rasterize(tris)
				if fsK := p.fragmentStage(dc, tileFrags, varyBase, streamID, label, &m); fsK != nil {
					kernels = append(kernels, fsK)
				}
			}
			p.streams = append(p.streams, StreamTrace{Stream: streamID, Label: label, Kernels: kernels})
		}
	}
	st := p.rast.Stats()
	m.Fragments = st.Fragments - p.sumFragments()
	m.EarlyZKill = st.EarlyZKill - p.sumEarlyZ()
	p.metrics = append(p.metrics, m)
	return nil
}

func (p *pipeline) sumFragments() int {
	n := 0
	for i := range p.metrics {
		n += p.metrics[i].Fragments
	}
	return n
}

func (p *pipeline) sumEarlyZ() int {
	n := 0
	for i := range p.metrics {
		n += p.metrics[i].EarlyZKill
	}
	return n
}

// vertexStage shades one batch's unique vertices, emitting the VS kernel.
func (p *pipeline) vertexStage(dc *DrawCall, b *geom.Batch, inst *Instance, instIdx int, instBase, vb uint64, mvp gmath.Mat4, streamID int, label string, m *DrawMetrics) (*trace.Kernel, []geom.ClipVert, uint64) {
	bld := trace.NewBuilder(label+".vs", trace.KindVertex, streamID, p.opts.BatchSize, 32, 0)
	bld.BeginCTA()
	varyBase := p.mem.alloc(uint64(len(b.Unique)*varyingStride), 128)
	clipVerts := make([]geom.ClipVert, len(b.Unique))

	instanced := len(dc.Instances) > 0
	for w0 := 0; w0 < len(b.Unique); w0 += shader.Lanes {
		lanes := len(b.Unique) - w0
		if lanes > shader.Lanes {
			lanes = shader.Lanes
		}
		mask := uint32(0xFFFFFFFF)
		if lanes < 32 {
			mask = (uint32(1) << uint(lanes)) - 1
		}
		bld.BeginWarp()
		ctx := shader.NewCtx(bld, mask)
		ctx.LodEnabled = p.opts.LoD
		ctx.Filter = p.opts.Filter

		var in shader.VSIn
		posA := make([]uint64, 0, lanes)
		nrmA := make([]uint64, 0, lanes)
		uvA := make([]uint64, 0, lanes)
		for l := 0; l < lanes; l++ {
			g := b.Unique[w0+l]
			v := &dc.Mesh.Verts[g]
			in.PosX[l], in.PosY[l], in.PosZ[l] = v.Pos.X, v.Pos.Y, v.Pos.Z
			in.NrmX[l], in.NrmY[l], in.NrmZ[l] = v.Nrm.X, v.Nrm.Y, v.Nrm.Z
			in.U[l], in.V[l] = v.UV.X, v.UV.Y
			in.Layer[l] = inst.Layer
			base := vb + uint64(g)*geom.VertexStride
			posA = append(posA, base)
			nrmA = append(nrmA, base+12)
			uvA = append(uvA, base+24)
		}
		in.PosAddrs, in.NrmAddrs, in.UVAddrs = posA, nrmA, uvA

		if instanced {
			// Per-instance transform fetch: common vertex attributes are
			// re-referenced across instances (temporal locality) while
			// instance data streams (the Planets access mix).
			ia := make([]uint64, lanes)
			for l := range ia {
				ia[l] = instBase + uint64(instIdx)*instanceStride
			}
			ctx.Load(ia, trace.ClassPipeline)
		}

		varyA := make([]uint64, lanes)
		for l := 0; l < lanes; l++ {
			varyA[l] = varyBase + uint64(w0+l)*varyingStride
		}
		out := shader.TransformVS(ctx, &in, inst.Model, mvp, varyA)

		for l := 0; l < lanes; l++ {
			clipVerts[w0+l] = geom.ClipVert{
				Clip:   gmath.V4(out.ClipX[l], out.ClipY[l], out.ClipZ[l], out.ClipW[l]),
				WNrm:   gmath.V3(out.WNrmX[l], out.WNrmY[l], out.WNrmZ[l]),
				WPos:   gmath.V3(out.WPosX[l], out.WPosY[l], out.WPosZ[l]),
				UV:     gmath.Vec2{X: out.U[l], Y: out.V[l]},
				Layer:  out.Layer[l],
				Global: uint32(w0 + l), // local index addresses the varying buffer
			}
		}
	}
	m.ShadedVertices += len(b.Unique)
	warps := (len(b.Unique) + shader.Lanes - 1) / shader.Lanes
	m.SimVertexThreads += warps * shader.Lanes
	return bld.Finish(), clipVerts, varyBase
}

// fragmentStage shades the batch's binned fragments, emitting the FS
// kernel: warps are packed in tile order (approximate quads), CTAs hold
// 8 warps.
func (p *pipeline) fragmentStage(dc *DrawCall, tileFrags [][]raster.Fragment, varyBase uint64, streamID int, label string, m *DrawMetrics) *trace.Kernel {
	total := 0
	for _, tf := range tileFrags {
		total += len(tf)
	}
	if total == 0 {
		return nil
	}
	bld := trace.NewBuilder(label+".fs", trace.KindFragment, streamID, 256, dc.Mat.Kind.regsPerThread(), 0)
	const warpsPerCTA = 8
	warpsInCTA := warpsPerCTA // force BeginCTA on first warp

	countLines := func(addrs []uint64) int64 {
		var buf [32]uint64
		lines := buf[:0]
	outer:
		for _, a := range addrs {
			la := a / trace.CacheLineSize
			for _, l := range lines {
				if l == la {
					continue outer
				}
			}
			lines = append(lines, la)
		}
		return int64(len(lines))
	}

	for _, tf := range tileFrags {
		if p.opts.StrictQuads {
			tf = quadOrder(tf)
		}
		for f0 := 0; f0 < len(tf); f0 += shader.Lanes {
			lanes := len(tf) - f0
			if lanes > shader.Lanes {
				lanes = shader.Lanes
			}
			mask := uint32(0xFFFFFFFF)
			if lanes < 32 {
				mask = (uint32(1) << uint(lanes)) - 1
			}
			if warpsInCTA == warpsPerCTA {
				bld.BeginCTA()
				warpsInCTA = 0
			}
			bld.BeginWarp()
			warpsInCTA++

			ctx := shader.NewCtx(bld, mask)
			ctx.LodEnabled = p.opts.LoD
			ctx.Filter = p.opts.Filter

			var in shader.FSIn
			var exact [shader.Lanes]float32
			varyA := make([]uint64, lanes)
			outA := make([]uint64, lanes)
			for l := 0; l < lanes; l++ {
				fr := &tf[f0+l]
				in.U[l], in.V[l] = fr.UV.X, fr.UV.Y
				in.NrmX[l], in.NrmY[l], in.NrmZ[l] = fr.WNrm.X, fr.WNrm.Y, fr.WNrm.Z
				in.WPosX[l], in.WPosY[l], in.WPosZ[l] = fr.WPos.X, fr.WPos.Y, fr.WPos.Z
				in.Layer[l] = fr.Layer
				if p.opts.StrictQuads {
					// Quads are real: runtime ddx/ddy is available.
					in.Footprint[l] = fr.FootprintExact
				} else {
					in.Footprint[l] = fr.Footprint
				}
				exact[l] = fr.FootprintExact
				varyA[l] = varyBase + uint64(fr.Vert0Global)*varyingStride
				outA[l] = p.fbBase + uint64(fr.Y*p.opts.W+fr.X)*fbPixelBytes
			}
			in.VaryingAddrs, in.OutAddrs = varyA, outA

			if p.opts.CollectRefTex {
				ctx.RefFootprint = &exact
			}
			ctx.OnTex = func(simAddrs, refAddrs []uint64) {
				m.TexWarpInsts++
				m.SimTexAccesses += countLines(simAddrs)
				if refAddrs != nil {
					m.RefTexAccesses += countLines(refAddrs)
				}
			}

			out := p.shade(ctx, &in, dc.Mat)

			for l := 0; l < lanes; l++ {
				fr := &tf[f0+l]
				p.color[fr.Y*p.opts.W+fr.X] = gmath.V4(
					gmath.Clamp(out.R[l], 0, 1),
					gmath.Clamp(out.G[l], 0, 1),
					gmath.Clamp(out.B[l], 0, 1),
					gmath.Clamp(out.A[l], 0, 1),
				)
			}
		}
	}
	return bld.Finish()
}

// quadOrder reorders a tile's fragments so members of each 2×2 screen
// quad are adjacent (quad-major, then row-major within the quad).
func quadOrder(frags []raster.Fragment) []raster.Fragment {
	out := make([]raster.Fragment, len(frags))
	copy(out, frags)
	sort.SliceStable(out, func(i, j int) bool {
		qi := [2]int{out[i].Y / 2, out[i].X / 2}
		qj := [2]int{out[j].Y / 2, out[j].X / 2}
		if qi != qj {
			if qi[0] != qj[0] {
				return qi[0] < qj[0]
			}
			return qi[1] < qj[1]
		}
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// shade dispatches to the material's fragment program.
func (p *pipeline) shade(ctx *shader.Ctx, in *shader.FSIn, mat *Material) shader.FSOut {
	light := p.frame.Light
	switch mat.Kind {
	case MatPBR:
		return shader.PBRFS(ctx, in, mat.PBR, light)
	case MatToon:
		return shader.ToonFS(ctx, in, mat.Albedo, light)
	case MatMaterial:
		return shader.MaterialFS(ctx, in, mat.Albedo, mat.Roughness, mat.Normal, light)
	case MatPlanet:
		return shader.PlanetFS(ctx, in, mat.Layered, light)
	default:
		return shader.BasicTexturedFS(ctx, in, mat.Albedo, light)
	}
}
