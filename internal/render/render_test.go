package render

import (
	"os"
	"testing"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/isa"
	"crisp/internal/shader"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// testFrame builds a minimal frame: one textured quad in front of the
// camera.
func testFrame(kind MaterialKind) *FrameDef {
	quad := &geom.Mesh{
		Verts: []geom.Vertex{
			{Pos: gmath.V3(-1, -1, 0), Nrm: gmath.V3(0, 0, 1), UV: gmath.Vec2{X: 0, Y: 0}},
			{Pos: gmath.V3(1, -1, 0), Nrm: gmath.V3(0, 0, 1), UV: gmath.Vec2{X: 4, Y: 0}},
			{Pos: gmath.V3(1, 1, 0), Nrm: gmath.V3(0, 0, 1), UV: gmath.Vec2{X: 4, Y: 4}},
			{Pos: gmath.V3(-1, 1, 0), Nrm: gmath.V3(0, 0, 1), UV: gmath.Vec2{X: 0, Y: 4}},
		},
		Idx: []uint32{0, 1, 2, 0, 2, 3},
	}
	mat := &Material{Kind: kind}
	switch kind {
	case MatPBR:
		mat.PBR = &shader.PBRMaps{
			Albedo:     texture.Noise("a", texture.FormatRGBA8, 64, 64, 1, 1),
			Normal:     texture.Noise("n", texture.FormatRGBA8, 64, 64, 1, 2),
			Metallic:   texture.Noise("m", texture.FormatR8, 32, 32, 1, 3),
			Roughness:  texture.Noise("r", texture.FormatR8, 32, 32, 1, 4),
			AO:         texture.Noise("o", texture.FormatR8, 32, 32, 1, 5),
			Irradiance: texture.Gradient("i", texture.FormatRGBA16F, 32, 32, gmath.V4(0, 0, 0, 1), gmath.V4(1, 1, 1, 1)),
			Prefilter:  texture.Noise("p", texture.FormatRGBA16F, 32, 32, 1, 6),
			BRDF:       texture.Gradient("b", texture.FormatRG8, 32, 32, gmath.V4(1, 0, 0, 1), gmath.V4(0, 1, 0, 1)),
		}
	case MatMaterial:
		mat.Albedo = texture.Noise("a", texture.FormatRGBA8, 64, 64, 1, 1)
		mat.Roughness = texture.Noise("r", texture.FormatR8, 32, 32, 1, 2)
		mat.Normal = texture.Noise("n", texture.FormatRGBA8, 32, 32, 1, 3)
	case MatPlanet:
		mat.Layered = texture.Noise("l", texture.FormatRGBA8, 64, 64, 4, 1)
	default:
		mat.Albedo = texture.Checker("a", texture.FormatRGBA8, 128, 128, gmath.V4(1, 0, 0, 1), gmath.V4(0, 0, 1, 1), 8)
	}
	cam := Camera{
		View: gmath.LookAt(gmath.V3(0, 0, 3), gmath.V3(0, 0, 0), gmath.V3(0, 1, 0)),
		Proj: gmath.Perspective(1.0, 16.0/9, 0.1, 100),
		Pos:  gmath.V3(0, 0, 3),
	}
	return &FrameDef{
		Name: "quad",
		Cam:  cam,
		Light: shader.Light{
			Dir: gmath.V3(0, 0, 1), Color: gmath.V3(1, 1, 1),
			Ambient: gmath.V3(0.1, 0.1, 0.1), CameraPos: cam.Pos,
		},
		Draws: []DrawCall{{Name: "quad", Mesh: quad, Model: gmath.Identity(), Mat: mat}},
	}
}

func smallOpts() Options {
	o := DefaultOptions()
	o.W, o.H = 96, 54
	return o
}

func TestRenderFrameProducesValidTraces(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) == 0 {
		t.Fatal("no streams generated")
	}
	for _, st := range res.Streams {
		if len(st.Kernels) == 0 {
			t.Fatalf("stream %d has no kernels", st.Stream)
		}
		for _, k := range st.Kernels {
			if err := k.Validate(); err != nil {
				t.Fatalf("kernel %q: %v", k.Name, err)
			}
			if k.Stream != st.Stream {
				t.Fatalf("kernel %q stream mismatch", k.Name)
			}
		}
		if st.Kernels[0].Kind != trace.KindVertex {
			t.Errorf("stream %d first kernel is %v, want vertex", st.Stream, st.Kernels[0].Kind)
		}
	}
}

func TestRenderFramePaintsPixels(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	covered := res.CoveredPixels()
	if covered == 0 {
		t.Fatal("no pixels painted")
	}
	mean := res.MeanColor()
	if mean.X == 0 && mean.Y == 0 && mean.Z == 0 {
		t.Error("framebuffer is black")
	}
	// The checker texture is red/blue: red channel should exceed green.
	if mean.X <= mean.Y {
		t.Errorf("mean color %v does not reflect the texture", mean)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Raster != b.Raster {
		t.Errorf("raster stats differ: %+v vs %+v", a.Raster, b.Raster)
	}
	ia, ib := 0, 0
	for _, s := range a.Streams {
		for _, k := range s.Kernels {
			ia += k.InstCount()
		}
	}
	for _, s := range b.Streams {
		for _, k := range s.Kernels {
			ib += k.InstCount()
		}
	}
	if ia != ib {
		t.Errorf("instruction counts differ: %d vs %d", ia, ib)
	}
}

func TestAllMaterialKindsRender(t *testing.T) {
	for _, kind := range []MaterialKind{MatBasic, MatPBR, MatToon, MatMaterial, MatPlanet} {
		res, err := RenderFrame(testFrame(kind), smallOpts())
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if res.CoveredPixels() == 0 {
			t.Errorf("kind %d painted nothing", kind)
		}
		for _, st := range res.Streams {
			for _, k := range st.Kernels {
				if err := k.Validate(); err != nil {
					t.Errorf("kind %d kernel %q: %v", kind, k.Name, err)
				}
			}
		}
	}
}

func TestPBRSamplesEightMaps(t *testing.T) {
	res, err := RenderFrame(testFrame(MatPBR), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	basic, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	texPerFrag := func(r *Result) float64 {
		var tex int64
		for _, st := range r.Streams {
			for _, k := range st.Kernels {
				tex += int64(k.OpHistogram()[isa.OpTEX])
			}
		}
		return float64(tex) / float64(r.Raster.Fragments) * 32
	}
	p := texPerFrag(res)
	b := texPerFrag(basic)
	if p < 7*b*0.8 {
		t.Errorf("PBR TEX/fragment %.2f should be ≈8× basic %.2f", p, b)
	}
}

func TestLodOffIncreasesTexTraffic(t *testing.T) {
	on := smallOpts()
	off := smallOpts()
	off.LoD = false
	resOn, err := RenderFrame(testFrame(MatBasic), on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := RenderFrame(testFrame(MatBasic), off)
	if err != nil {
		t.Fatal(err)
	}
	var sOn, sOff int64
	for _, m := range resOn.Metrics {
		sOn += m.SimTexAccesses
	}
	for _, m := range resOff.Metrics {
		sOff += m.SimTexAccesses
	}
	if sOff <= sOn {
		t.Errorf("LoD-off tex accesses %d should exceed LoD-on %d", sOff, sOn)
	}
}

func TestCollectRefTex(t *testing.T) {
	o := smallOpts()
	o.CollectRefTex = true
	res, err := RenderFrame(testFrame(MatBasic), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Metrics {
		if m.TexWarpInsts > 0 && m.RefTexAccesses == 0 {
			t.Error("reference tex accesses not collected")
		}
	}
}

func TestVertexMetrics(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics[0]
	if m.ShadedVertices != 4 {
		t.Errorf("shaded vertices = %d, want 4 (quad dedup)", m.ShadedVertices)
	}
	if m.SimVertexThreads != 32 {
		t.Errorf("sim vertex threads = %d, want 32 (one warp)", m.SimVertexThreads)
	}
	if m.VerticesIn != 6 {
		t.Errorf("vertices in = %d, want 6", m.VerticesIn)
	}
}

func TestInstancedDrawMultipliesStreams(t *testing.T) {
	f := testFrame(MatPlanet)
	f.Draws[0].Instances = []Instance{
		{Model: gmath.Translate(gmath.V3(-1.2, 0, 0)), Layer: 0},
		{Model: gmath.Translate(gmath.V3(1.2, 0, 0)), Layer: 1},
		{Model: gmath.Translate(gmath.V3(0, 1.2, 0)), Layer: 2},
	}
	res, err := RenderFrame(f, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 3 {
		t.Errorf("streams = %d, want 3 (one per instance batch)", len(res.Streams))
	}
	if res.Metrics[0].Instances != 3 {
		t.Errorf("instances = %d", res.Metrics[0].Instances)
	}
}

func TestRenderRejectsBadOptions(t *testing.T) {
	if _, err := RenderFrame(testFrame(MatBasic), Options{}); err == nil {
		t.Error("accepted zero resolution")
	}
}

func TestWritePPM(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/out.ppm"
	if err := res.WritePPM(path); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsUseDisjointIDs(t *testing.T) {
	o := smallOpts()
	o.BaseStream = 100
	res, err := RenderFrame(testFrame(MatBasic), o)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, st := range res.Streams {
		if st.Stream < 100 {
			t.Errorf("stream %d below base", st.Stream)
		}
		if seen[st.Stream] {
			t.Errorf("duplicate stream id %d", st.Stream)
		}
		seen[st.Stream] = true
	}
}

func TestWritePNGAndImageDispatch(t *testing.T) {
	res, err := RenderFrame(testFrame(MatBasic), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteImage(dir + "/out.png"); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteImage(dir + "/out.ppm"); err != nil {
		t.Fatal(err)
	}
	png, err := os.ReadFile(dir + "/out.png")
	if err != nil {
		t.Fatal(err)
	}
	if len(png) < 8 || png[1] != 'P' || png[2] != 'N' || png[3] != 'G' {
		t.Error("PNG magic missing")
	}
	ppm, err := os.ReadFile(dir + "/out.ppm")
	if err != nil {
		t.Fatal(err)
	}
	if len(ppm) < 2 || ppm[0] != 'P' || ppm[1] != '6' {
		t.Error("PPM magic missing")
	}
}
