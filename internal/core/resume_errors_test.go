package core

import (
	"encoding/json"
	"testing"

	"crisp/internal/config"
	"crisp/internal/render"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// wantSnapshotError asserts err is a KindSnapshot SimError.
func wantSnapshotError(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: resumed successfully, want a snapshot error", what)
	}
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindSnapshot {
		t.Fatalf("%s: err = %v (%T), want KindSnapshot SimError", what, err, err)
	}
}

// completeSpec is a resumable spec naming real workloads; tests corrupt
// one field at a time.
func completeSpec() snapshot.Spec {
	opts, _ := json.Marshal(render.DefaultOptions())
	return snapshot.Spec{
		GPU:           config.JetsonOrin(),
		Scene:         "SPL",
		Compute:       "VIO",
		Policy:        string(PolicyEven),
		RenderOptions: opts,
		Complete:      true,
	}
}

// TestJobFromSpecRejectsUnknownNames: a snapshot whose spec names a scene,
// compute workload, or policy this build does not know (e.g. written by a
// newer simulator) must fail resume with a typed snapshot error — never a
// panic, never a silent misconfiguration.
func TestJobFromSpecRejectsUnknownNames(t *testing.T) {
	if j, err := JobFromSpec(completeSpec()); err != nil || j == nil {
		t.Fatalf("baseline spec did not build: %v", err)
	}

	t.Run("unknown-scene", func(t *testing.T) {
		spec := completeSpec()
		spec.Scene = "NO_SUCH_SCENE"
		_, err := JobFromSpec(spec)
		wantSnapshotError(t, err, "unknown scene")
	})
	t.Run("unknown-compute", func(t *testing.T) {
		spec := completeSpec()
		spec.Compute = "NO_SUCH_KERNEL"
		_, err := JobFromSpec(spec)
		wantSnapshotError(t, err, "unknown compute workload")
	})
	t.Run("unknown-policy", func(t *testing.T) {
		spec := completeSpec()
		spec.Policy = "NO_SUCH_POLICY"
		_, err := JobFromSpec(spec)
		wantSnapshotError(t, err, "unknown policy")
	})
	t.Run("unreadable-render-options", func(t *testing.T) {
		spec := completeSpec()
		spec.RenderOptions = []byte("{not json")
		_, err := JobFromSpec(spec)
		wantSnapshotError(t, err, "unreadable render options")
	})
}

// TestKnownPolicy pins the validation helper's contract: every registered
// policy passes, the empty kind passes (callers normalize it to serial),
// anything else fails.
func TestKnownPolicy(t *testing.T) {
	for _, p := range PolicyKinds() {
		if !KnownPolicy(p) {
			t.Errorf("KnownPolicy(%q) = false for a registered policy", p)
		}
	}
	if !KnownPolicy("") {
		t.Error(`KnownPolicy("") = false, want true (empty means serial)`)
	}
	for _, p := range []PolicyKind{"serail", "even", "Serial", "mps"} {
		if KnownPolicy(p) {
			t.Errorf("KnownPolicy(%q) = true, want false", p)
		}
	}
}
