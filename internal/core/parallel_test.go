package core

import (
	"context"
	"os"
	"strconv"
	"testing"

	"crisp/internal/config"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// parityWorkers is the parallel worker count the parity tests compare
// against the serial reference engine. CI overrides it to exercise more
// than one fan-out shape (CRISP_PARITY_WORKERS=2 and =8).
func parityWorkers(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("CRISP_PARITY_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			t.Fatalf("CRISP_PARITY_WORKERS=%q: want an integer >= 2", v)
		}
		return n
	}
	return 8
}

// runParity executes one scene+compute pairing under policy at the given
// worker count with the determinism auditor armed.
func runParity(t *testing.T, scene, comp string, policy PolicyKind, workers int) *Result {
	t.Helper()
	res, err := RunPair(config.JetsonOrin(), scene, comp, policy, tinyOpts(),
		WithWorkers(workers), WithStateDigest(10_000))
	if err != nil {
		t.Fatalf("%s+%s/%s -j%d: %v", scene, comp, policy, workers, err)
	}
	return res
}

// expectIdentical asserts two runs of the same job are bit-identical:
// same final cycle, same stats digest (every per-stream counter, stall
// attribution included), and the same architectural-state digest stream
// throughout the run — not merely the same endpoint.
func expectIdentical(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if serial.Cycles != parallel.Cycles {
		t.Errorf("%s: cycles diverge: serial %d, parallel %d", label, serial.Cycles, parallel.Cycles)
	}
	if ds, dp := statsDigestOf(t, serial), statsDigestOf(t, parallel); ds != dp {
		t.Errorf("%s: stats digests diverge: serial %016x, parallel %016x", label, ds, dp)
	}
	if len(serial.Digests) == 0 {
		t.Fatalf("%s: auditor produced no state digests", label)
	}
	if c, diverged := snapshot.FirstDivergence(serial.Digests, parallel.Digests); diverged {
		t.Errorf("%s: state digests first diverge at cycle %d", label, c)
	}
}

// TestParallelParityAllPolicies is the engine's central correctness gate:
// for every partition policy, a serial (-j1) run and a parallel run must
// be bit-identical — final cycle, full stats, and the auditor's digest
// stream sampled across the whole run. Render-only exercises the
// graphics pipeline's batch streams; the concurrent pairing exercises
// cross-task partitioning under the parallel engine.
func TestParallelParityAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is minutes of simulation")
	}
	workers := parityWorkers(t)
	for _, policy := range PolicyKinds() {
		policy := policy
		t.Run(string(policy)+"/render-only", func(t *testing.T) {
			serial := runParity(t, "SPL", "", policy, 1)
			parallel := runParity(t, "SPL", "", policy, workers)
			expectIdentical(t, serial, parallel, "SPL/"+string(policy))
		})
		t.Run(string(policy)+"/concurrent", func(t *testing.T) {
			serial := runParity(t, "SPL", "VIO", policy, 1)
			parallel := runParity(t, "SPL", "VIO", policy, workers)
			expectIdentical(t, serial, parallel, "SPL+VIO/"+string(policy))
		})
	}
}

// TestParallelCheckpointRoundTrip proves checkpoints are engine-agnostic:
// a run checkpointed under the parallel engine and killed by a cycle
// budget must resume — under either engine — to the same final state a
// never-interrupted serial run reaches.
func TestParallelCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint round trip is slow")
	}
	workers := parityWorkers(t)
	const policy = PolicyEven

	base := runParity(t, "SPL", "VIO", policy, 1)

	for _, resumeWorkers := range []int{1, workers} {
		resumeWorkers := resumeWorkers
		t.Run("resume-j"+strconv.Itoa(resumeWorkers), func(t *testing.T) {
			dir := t.TempDir()
			_, err := RunPair(config.JetsonOrin(), "SPL", "VIO", policy, tinyOpts(),
				WithWorkers(workers), WithStateDigest(10_000),
				WithCheckpointDir(dir), WithCheckpointEvery(max(1, base.Cycles/8)),
				WithCycleBudget(base.Cycles/2))
			se, ok := robust.AsSimError(err)
			if !ok || se.Kind != robust.KindBudget {
				t.Fatalf("expected budget SimError from interrupted run, got %v", err)
			}

			res, err := ResumeFile(context.Background(), dir,
				WithWorkers(resumeWorkers), WithStateDigest(10_000))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !res.Resumed || res.ResumedFrom <= 0 {
				t.Fatalf("resume metadata missing: resumed=%v from=%d", res.Resumed, res.ResumedFrom)
			}
			if res.Cycles != base.Cycles {
				t.Errorf("cycles diverge after resume: base %d, resumed %d", base.Cycles, res.Cycles)
			}
			if db, dr := statsDigestOf(t, base), statsDigestOf(t, res); db != dr {
				t.Errorf("stats digests diverge after resume: base %016x, resumed %016x", db, dr)
			}
			// The resumed run's digest stream restarts at the snapshot cycle;
			// FirstDivergence aligns the overlapping window, where every
			// sample must match the uninterrupted baseline.
			if c, diverged := snapshot.FirstDivergence(base.Digests, res.Digests); diverged {
				t.Errorf("state digests diverge at cycle %d after resuming from %d", c, res.ResumedFrom)
			}
		})
	}
}

// TestWorkersAutoMatchesSerial covers the default path users actually
// run: Workers=0 (auto) must match the serial reference too.
func TestWorkersAutoMatchesSerial(t *testing.T) {
	serial := runParity(t, "", "VIO", PolicySerial, 1)
	auto := runParity(t, "", "VIO", PolicySerial, 0)
	expectIdentical(t, serial, auto, "VIO/auto")
}
