package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/isa"
	"crisp/internal/robust"
	"crisp/internal/trace"
)

// warpsKernel builds a single-CTA compute kernel with the given warp
// count (ThreadsPerCTA = warps×32), small enough in registers and shared
// memory that only the thread/warp footprint decides placement.
func warpsKernel(name string, warps int) *trace.Kernel {
	b := trace.NewBuilder(name, trace.KindCompute, 0, warps*isa.WarpSize, 16, 0)
	b.BeginCTA()
	for w := 0; w < warps; w++ {
		b.BeginWarp()
		r := b.NewReg()
		b.ALU(isa.OpMOV, r, trace.FullMask)
		b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask, r, r)
	}
	return b.Finish()
}

// TestInfeasibleStreamsErrorUnderEveryPolicy is the satellite's
// table-driven guarantee: a stream whose kernel can never be placed fails
// with a structured deadlock SimError — never a hang or a panic — under
// every partitioning policy, and the crash dump names the unplaceable
// kernel.
func TestInfeasibleStreamsErrorUnderEveryPolicy(t *testing.T) {
	type row struct {
		name     string
		warps    int          // per-CTA warp count of the infeasible kernel
		policies []PolicyKind // policies the row applies to
	}
	intraSM := []PolicyKind{PolicyEven, PolicyPriority}
	rows := []row{
		// 65 warps exceed a whole SM: rejected statically at AddStream,
		// identically under every policy (the check is policy-independent).
		{name: "oversized-whole-SM", warps: 65, policies: PolicyKinds()},
		// 64 warps exactly fill a whole SM: legal statically, but no
		// half-SM envelope ever fits it, so intra-SM split policies
		// deadlock at placement time. (WarpedSlicer is excluded: its
		// sampling phase grants a full SM, so the CTA places.)
		{name: "full-SM-vs-half-envelope", warps: 64, policies: intraSM},
	}
	for _, r := range rows {
		for _, pol := range r.policies {
			t.Run(r.name+"/"+string(pol), func(t *testing.T) {
				job := Job{
					GPU:    config.JetsonOrin(),
					Policy: pol,
					Compute: &compute.Workload{
						Name:    "infeasible",
						Kernels: []*trace.Kernel{warpsKernel("unplaceable", r.warps)},
					},
				}
				_, err := job.Run()
				se, ok := robust.AsSimError(err)
				if !ok {
					t.Fatalf("err = %v, want *robust.SimError", err)
				}
				if se.Kind != robust.KindDeadlock {
					t.Fatalf("kind = %v, want deadlock", se.Kind)
				}
				if se.Dump == nil {
					t.Fatal("no crash dump attached")
				}
				if se.Dump.Kernel != "unplaceable" {
					t.Errorf("dump names kernel %q, want unplaceable", se.Dump.Kernel)
				}
				var buf bytes.Buffer
				if err := se.Dump.WriteJSON(&buf); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				if !strings.Contains(buf.String(), "unplaceable") {
					t.Error("dump JSON does not mention the unplaceable kernel")
				}
			})
		}
	}
}

// TestJobWatchdogAndBudgetOptions checks the Job-level plumbing of the
// hardening knobs down to the GPU.
func TestJobWatchdogAndBudgetOptions(t *testing.T) {
	comp, err := compute.ByName("VIO", ComputeStreamBase)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{GPU: config.JetsonOrin(), Compute: comp, Policy: PolicySerial, CycleBudget: 32}
	_, err = job.Run()
	if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindBudget {
		t.Fatalf("err = %v, want budget SimError", err)
	}
}

// TestRunPairContextCancellation checks the context path end to end
// through the convenience API.
func TestRunPairContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunPairContext(ctx, config.JetsonOrin(), "", "HOLO", PolicySerial, tinyOpts())
	if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindCanceled {
		t.Fatalf("err = %v, want canceled SimError", err)
	}
}

// TestRunOptionsHardening checks the RunOption wiring.
func TestRunOptionsHardening(t *testing.T) {
	_, err := RunPair(config.JetsonOrin(), "", "VIO", PolicySerial, tinyOpts(), WithCycleBudget(16))
	if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindBudget {
		t.Fatalf("err = %v, want budget SimError", err)
	}
	if _, err := RunPair(config.JetsonOrin(), "", "VIO", PolicySerial, tinyOpts(), WithWatchdog(1<<20)); err != nil {
		t.Fatalf("healthy run with explicit watchdog failed: %v", err)
	}
}
