package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crisp/internal/config"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// This file gates the event-driven core sleeping (internal/engine): the
// optimized skip-on path must be bit-identical to the -no-skip oracle —
// which steps every core every cycle on the legacy non-memoized path —
// across every policy, worker count, and checkpoint boundary, and the
// bulk stall accounting must preserve the scheduler slot-conservation
// invariant.

// runSkipParity is runParity with the sleep mode explicit.
func runSkipParity(t *testing.T, scene, comp string, policy PolicyKind, workers int, noSkip bool) *Result {
	t.Helper()
	opts := []RunOption{WithWorkers(workers), WithStateDigest(10_000)}
	if noSkip {
		opts = append(opts, WithNoSkip())
	}
	res, err := RunPair(config.JetsonOrin(), scene, comp, policy, tinyOpts(), opts...)
	if err != nil {
		t.Fatalf("%s+%s/%s -j%d noskip=%v: %v", scene, comp, policy, workers, noSkip, err)
	}
	return res
}

// TestSkipParityAllPolicies is the sleeping oracle gate: for every
// partition policy, render-only and concurrent, a skip-on run must be
// bit-identical to the -no-skip oracle at -j1 and at -jN — final cycle,
// full stats digest (stall attribution included), and the auditor's
// state-digest stream across the whole run.
func TestSkipParityAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("skip-parity sweep is minutes of simulation")
	}
	workers := parityWorkers(t)
	for _, policy := range PolicyKinds() {
		policy := policy
		t.Run(string(policy)+"/render-only", func(t *testing.T) {
			oracle := runSkipParity(t, "SPL", "", policy, 1, true)
			skip := runSkipParity(t, "SPL", "", policy, 1, false)
			expectIdentical(t, oracle, skip, "SPL/"+string(policy)+"/j1")
			skipN := runSkipParity(t, "SPL", "", policy, workers, false)
			expectIdentical(t, oracle, skipN, "SPL/"+string(policy)+"/jN")
		})
		t.Run(string(policy)+"/concurrent", func(t *testing.T) {
			oracle := runSkipParity(t, "SPL", "VIO", policy, 1, true)
			skip := runSkipParity(t, "SPL", "VIO", policy, 1, false)
			expectIdentical(t, oracle, skip, "SPL+VIO/"+string(policy)+"/j1")
			skipN := runSkipParity(t, "SPL", "VIO", policy, workers, false)
			expectIdentical(t, oracle, skipN, "SPL+VIO/"+string(policy)+"/jN")
			if oracle.StepsSkipped != 0 {
				t.Errorf("oracle accrued skipped steps: %d", oracle.StepsSkipped)
			}
		})
	}
}

// TestSkipSlotConservation asserts the bulk stall accounting preserves
// the scheduler slot invariant on a run that actually slept: every
// scheduler slot is an issue (per-stream WarpInsts), an attributed stall
// (per-stream Stalls), or an empty slot — including the slots synthesized
// in bulk at core wake.
func TestSkipSlotConservation(t *testing.T) {
	res := runSkipParity(t, "SPL", "VIO", PolicyEven, 1, false)
	if res.StepsSkipped == 0 {
		t.Fatal("run never slept: skip machinery not exercised")
	}
	if res.BulkStallSlots == 0 {
		t.Error("run slept but accounted no bulk stall slots")
	}
	var issues, stalls int64
	for _, st := range res.PerStream {
		issues += st.WarpInsts
		for _, n := range st.Stalls {
			stalls += n
		}
	}
	if got := issues + stalls + res.EmptySlots; got != res.SchedSlots {
		t.Errorf("slot conservation violated: %d issues + %d stalls + %d empty = %d, want SchedSlots %d",
			issues, stalls, res.EmptySlots, got, res.SchedSlots)
	}
	// The histogram buckets must sum to the number of sleep windows,
	// each covering >= 1 skipped step.
	var windows int64
	for _, n := range res.SleepHist {
		windows += n
	}
	if windows == 0 {
		t.Error("run slept but the sleep histogram is empty")
	}
	if windows > res.StepsSkipped {
		t.Errorf("%d sleep windows cover only %d skipped steps", windows, res.StepsSkipped)
	}
}

// TestSkipCheckpointMidSleep proves a checkpoint taken while cores are
// asleep resumes bit-identically: wakeAt is captured and restored, and
// the accrued skip debt is settled before capture so the snapshot is
// exactly the one the -no-skip oracle would write at that cycle.
func TestSkipCheckpointMidSleep(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint round trip is slow")
	}
	const policy = PolicyEven
	base := runSkipParity(t, "SPL", "VIO", policy, 1, false)

	dir := t.TempDir()
	_, err := RunPair(config.JetsonOrin(), "SPL", "VIO", policy, tinyOpts(),
		WithWorkers(1), WithStateDigest(10_000),
		WithCheckpointDir(dir), WithCheckpointEvery(max(1, base.Cycles/16)),
		WithCycleBudget(base.Cycles/2))
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindBudget {
		t.Fatalf("expected budget SimError from interrupted run, got %v", err)
	}

	// At least one checkpoint must have caught a core mid-sleep
	// (wakeAt beyond the capture cycle) — otherwise this test is not
	// exercising what it claims to.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	midSleep := false
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), snapshot.Ext) {
			continue
		}
		env, err := snapshot.LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("load %s: %v", e.Name(), err)
		}
		for _, cs := range env.State.Arch.Cores {
			if cs.WakeAt > env.State.Arch.Cycle {
				midSleep = true
			}
		}
	}
	if !midSleep {
		t.Fatal("no checkpoint captured a sleeping core (wakeAt > cycle)")
	}

	for _, noSkip := range []bool{false, true} {
		opts := []RunOption{WithWorkers(1), WithStateDigest(10_000)}
		label := "resume-skip"
		if noSkip {
			opts = append(opts, WithNoSkip())
			label = "resume-noskip"
		}
		t.Run(label, func(t *testing.T) {
			res, err := ResumeFile(context.Background(), dir, opts...)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !res.Resumed || res.ResumedFrom <= 0 {
				t.Fatalf("resume metadata missing: resumed=%v from=%d", res.Resumed, res.ResumedFrom)
			}
			if res.Cycles != base.Cycles {
				t.Errorf("cycles diverge after resume: base %d, resumed %d", base.Cycles, res.Cycles)
			}
			if db, dr := statsDigestOf(t, base), statsDigestOf(t, res); db != dr {
				t.Errorf("stats digests diverge after resume: base %016x, resumed %016x", db, dr)
			}
			if c, diverged := snapshot.FirstDivergence(base.Digests, res.Digests); diverged {
				t.Errorf("state digests diverge at cycle %d after resuming from %d", c, res.ResumedFrom)
			}
		})
	}
}
