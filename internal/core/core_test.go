package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/obs"
	"crisp/internal/partition"
	"crisp/internal/render"
	"crisp/internal/trace"
)

func tinyOpts() render.Options {
	o := render.DefaultOptions()
	o.W, o.H = 128, 72
	return o
}

func TestTaskOf(t *testing.T) {
	if TaskOf(0) != partition.TaskGraphics || TaskOf(500) != partition.TaskGraphics {
		t.Error("graphics streams misclassified")
	}
	if TaskOf(ComputeStreamBase) != partition.TaskCompute {
		t.Error("compute stream misclassified")
	}
}

func TestRunPairGraphicsOnly(t *testing.T) {
	res, err := RunPair(config.JetsonOrin(), "SPL", "", PolicySerial, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.FrameTimeMS <= 0 {
		t.Fatalf("cycles=%d frame=%v", res.Cycles, res.FrameTimeMS)
	}
	if len(res.PerStream) == 0 {
		t.Fatal("no per-stream stats")
	}
	if _, ok := res.PerTask[partition.TaskGraphics]; !ok {
		t.Fatal("no graphics task stats")
	}
	if res.L2Lines == 0 {
		t.Error("empty L2 composition")
	}
	if res.L2ByClass[trace.ClassTexture] == 0 {
		t.Error("no texture lines in L2 after a rendered frame")
	}
}

func TestRunPairComputeOnly(t *testing.T) {
	res, err := RunPair(config.JetsonOrin(), "", "HOLO", PolicySerial, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	st, ok := res.PerTask[partition.TaskCompute]
	if !ok || st.WarpInsts == 0 {
		t.Fatal("compute task stats missing")
	}
}

func TestRunPairNothingFails(t *testing.T) {
	job := Job{GPU: config.JetsonOrin()}
	if _, err := job.Run(); err == nil {
		t.Error("empty job accepted")
	}
}

func TestRunPairUnknownPolicy(t *testing.T) {
	if _, err := RunPair(config.JetsonOrin(), "SPL", "", PolicyKind("bogus"), tinyOpts()); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConcurrentPairUnderEveryPolicy(t *testing.T) {
	gfx, err := RenderScene("SPL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compute.ByName("VIO", ComputeStreamBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range PolicyKinds() {
		job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: comp, Policy: pol}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("%s: no cycles", pol)
		}
		g := res.PerTask[partition.TaskGraphics]
		c := res.PerTask[partition.TaskCompute]
		if g == nil || c == nil || g.WarpInsts == 0 || c.WarpInsts == 0 {
			t.Errorf("%s: per-task stats incomplete", pol)
		}
		if pol == PolicyWarpedSlicer && res.WS == nil {
			t.Error("warped-slicer state not exposed")
		}
	}
}

func TestJobDeterministic(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := compute.ByName("HOLO", ComputeStreamBase)
	run := func() int64 {
		job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: comp, Policy: PolicyEven}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

func TestTimelineCollection(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := compute.ByName("VIO", ComputeStreamBase)
	job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: comp, Policy: PolicyEven, TimelineInterval: 512}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || len(res.Timeline.Samples) < 2 {
		t.Fatal("timeline missing")
	}
	sawG, sawC := false, false
	for _, s := range res.Timeline.Samples {
		if s.WarpsByStream[partition.TaskGraphics] > 0 {
			sawG = true
		}
		if s.WarpsByStream[partition.TaskCompute] > 0 {
			sawC = true
		}
	}
	if !sawG || !sawC {
		t.Errorf("timeline never saw both tasks resident (g=%v c=%v)", sawG, sawC)
	}
}

func TestL2ByTaskSplitsComposition(t *testing.T) {
	gfx, err := RenderScene("SPL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := compute.ByName("VIO", ComputeStreamBase)
	job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: comp, Policy: PolicyMPS}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.L2ByTask[partition.TaskGraphics] == 0 || res.L2ByTask[partition.TaskCompute] == 0 {
		t.Errorf("L2 by task = %v", res.L2ByTask)
	}
	sum := 0
	for _, n := range res.L2ByTask {
		sum += n
	}
	if sum != res.L2Lines {
		t.Errorf("task split %d does not sum to %d", sum, res.L2Lines)
	}
}

func TestGraphicsWindowDefaults(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	narrow := Job{GPU: config.JetsonOrin(), Graphics: gfx, Policy: PolicySerial, GraphicsWindow: 1}
	rN, err := narrow.Run()
	if err != nil {
		t.Fatal(err)
	}
	wide := Job{GPU: config.JetsonOrin(), Graphics: gfx, Policy: PolicySerial, GraphicsWindow: 16}
	rW, err := wide.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rN.Cycles <= rW.Cycles {
		t.Errorf("window-1 (%d cycles) should be slower than window-16 (%d)", rN.Cycles, rW.Cycles)
	}
}

func TestRenderSceneUnknown(t *testing.T) {
	if _, err := RenderScene("nope", tinyOpts()); err == nil {
		t.Error("unknown scene accepted")
	}
}

// TestRunPairObservability is the end-to-end observability check: run a
// concurrent pair with tracing and metrics attached, confirm the result
// carries both, that the slot conservation law holds at the Result level,
// and that the event stream exports to valid Chrome trace JSON.
func TestRunPairObservability(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
		WithTracer(rec), WithMetrics(1024))
	if err != nil {
		t.Fatal(err)
	}

	if res.Metrics == nil || len(res.Metrics.Samples) == 0 {
		t.Fatal("no interval metrics collected")
	}
	if res.SchedSlots == 0 {
		t.Fatal("no scheduler slots reported")
	}
	accounted := res.EmptySlots
	for _, st := range res.PerStream {
		accounted += st.WarpInsts + st.StallTotal()
	}
	if accounted != res.SchedSlots {
		t.Errorf("slot conservation violated: %d accounted vs %d slots", accounted, res.SchedSlots)
	}

	kinds := map[obs.EventKind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	if kinds[obs.EvKernelLaunch] == 0 || kinds[obs.EvKernelLaunch] != kinds[obs.EvKernelDone] {
		t.Errorf("kernel launch/done mismatch: %v", kinds)
	}
	if kinds[obs.EvCTAIssue] == 0 || kinds[obs.EvCTAIssue] != kinds[obs.EvCTACommit] {
		t.Errorf("CTA issue/commit mismatch: %v", kinds)
	}
	if kinds[obs.EvBatchStart] == 0 {
		t.Errorf("no batch boundaries for a graphics run: %v", kinds)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events(), res.Metrics, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("exported trace is not valid JSON")
	}

	var csv bytes.Buffer
	if err := res.Metrics.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines < 2 {
		t.Errorf("metrics CSV has %d lines", lines)
	}
}

// TestWarpedSlicerEmitsRepartitions checks the policy-decision events.
func TestWarpedSlicerEmitsRepartitions(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyWarpedSlicer, tinyOpts(),
		WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	if res.WS == nil || res.WS.Resamples() == 0 {
		t.Fatal("warped slicer did not sample")
	}
	n := 0
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EvRepartition {
			n++
		}
	}
	if n == 0 {
		t.Error("no repartition events emitted")
	}
}
