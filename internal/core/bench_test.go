package core

import (
	"testing"
	"time"

	"crisp/internal/config"
)

// BenchmarkCheckpointOverhead quantifies what periodic checkpointing costs.
// Each iteration runs the same concurrent pair three ways — unarmed, armed
// at the default 100k-cycle cadence, and armed at a dense cadence that
// actually produces saves — and reports:
//
//	%overhead      — wall-time overhead of arming at the 100k default
//	%save-at-100k  — one save's cost as a fraction of the time it takes to
//	                 simulate 100k cycles (i.e. the steady-state overhead a
//	                 long run pays at the default cadence)
//
// The acceptance bar for the checkpoint subsystem is %save-at-100k < 2.
func BenchmarkCheckpointOverhead(b *testing.B) {
	const defaultEvery = 100_000
	const denseEvery = 2_000
	var base, armed time.Duration
	var saves int
	var saveTime time.Duration
	var cycles int64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		r0, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts())
		if err != nil {
			b.Fatal(err)
		}
		base += time.Since(t0)
		cycles = r0.Cycles

		t1 := time.Now()
		r1, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
			WithCheckpointDir(b.TempDir()), WithCheckpointEvery(defaultEvery))
		if err != nil {
			b.Fatal(err)
		}
		armed += time.Since(t1)
		if r1.Cycles != r0.Cycles {
			b.Fatalf("checkpointing perturbed the run: %d != %d cycles", r1.Cycles, r0.Cycles)
		}

		r2, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
			WithCheckpointDir(b.TempDir()), WithCheckpointEvery(denseEvery))
		if err != nil {
			b.Fatal(err)
		}
		if r2.Cycles != r0.Cycles {
			b.Fatalf("dense checkpointing perturbed the run: %d != %d cycles", r2.Cycles, r0.Cycles)
		}
		if r2.CheckpointSaves == 0 {
			b.Fatalf("dense cadence produced no saves over %d cycles", r2.Cycles)
		}
		saves += r2.CheckpointSaves
		saveTime += r2.CheckpointSaveTime
	}
	b.ReportMetric(100*(armed-base).Seconds()/base.Seconds(), "%overhead")
	perSave := saveTime.Seconds() / float64(saves)
	per100kSim := base.Seconds() / float64(b.N) * float64(defaultEvery) / float64(cycles)
	b.ReportMetric(100*perSave/per100kSim, "%save-at-100k")
	b.ReportMetric(perSave*1e3, "ms/save")
}
