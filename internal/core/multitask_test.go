package core

import (
	"testing"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/gpu"
)

func TestTaskOfMultiCompute(t *testing.T) {
	if TaskOf(0) != 0 || TaskOf(ComputeStreamBase-1) != 0 {
		t.Error("graphics streams misclassified")
	}
	if TaskOf(1*ComputeStreamBase) != 1 || TaskOf(2*ComputeStreamBase) != 2 || TaskOf(3*ComputeStreamBase) != 3 {
		t.Error("compute streams misclassified")
	}
}

func TestThreeTaskJob(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	vio, _ := compute.ByName("VIO", 0)
	holo, _ := compute.ByName("HOLO", 0)
	for _, pol := range []PolicyKind{PolicySerial, PolicyMPS, PolicyEven} {
		job := Job{
			GPU:      config.JetsonOrin(),
			Graphics: gfx,
			Computes: []*compute.Workload{vio, holo},
			Policy:   pol,
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for task := 0; task < 3; task++ {
			st, ok := res.PerTask[task]
			if !ok || st.WarpInsts == 0 {
				t.Errorf("%s: task %d missing or idle", pol, task)
			}
		}
	}
}

// TestNWayPoliciesAcceptThreeTasks pins the scenario-engine extension: the
// formerly pairwise policies now route to their n-way variants beyond two
// tasks and run three-task jobs to completion.
func TestNWayPoliciesAcceptThreeTasks(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	vio, _ := compute.ByName("VIO", 0)
	holo, _ := compute.ByName("HOLO", 0)
	for _, pol := range []PolicyKind{PolicyMiG, PolicyWarpedSlicer, PolicyTAP, PolicyPriority} {
		job := Job{
			GPU:      config.JetsonOrin(),
			Graphics: gfx,
			Computes: []*compute.Workload{vio, holo},
			Policy:   pol,
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for task := 0; task < 3; task++ {
			st, ok := res.PerTask[task]
			if !ok || st.WarpInsts == 0 {
				t.Errorf("%s: task %d missing or idle", pol, task)
			}
		}
	}
}

func TestComputeAndComputesCompose(t *testing.T) {
	vio, _ := compute.ByName("VIO", 0)
	holo, _ := compute.ByName("HOLO", 0)
	job := Job{
		GPU:      config.JetsonOrin(),
		Compute:  vio,
		Computes: []*compute.Workload{holo},
		Policy:   PolicySerial,
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Compute becomes task 1, Computes[0] task 2.
	if res.PerTask[1] == nil || res.PerTask[2] == nil {
		t.Fatalf("tasks = %v", len(res.PerTask))
	}
	if res.PerTask[1].Label != "VIO" && res.PerTask[1].WarpInsts == 0 {
		t.Error("task 1 not the VIO workload")
	}
}

func TestPriorityPolicyProtectsGraphics(t *testing.T) {
	gfx, err := RenderScene("SPL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	nn, _ := compute.ByName("NN", 0)
	graphicsCycles := func(pol PolicyKind) int64 {
		job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: nn, Policy: pol}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		var last int64
		for _, st := range res.PerStream {
			if TaskOf(st.Stream) == 0 && st.Cycles > last {
				last = st.Cycles
			}
		}
		return last
	}
	even := graphicsCycles(PolicyEven)
	prio := graphicsCycles(PolicyPriority)
	if prio > even {
		t.Errorf("graphics finished later under Priority (%d) than EVEN (%d)", prio, even)
	}
}

func TestBuildPolicyUnknown(t *testing.T) {
	g, err := gpu.New(config.JetsonOrin())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPolicy(g, "bogus", 2); err == nil {
		t.Error("unknown policy accepted")
	}
	p, err := BuildPolicy(g, PolicySerial, 2)
	if err != nil || p != nil {
		t.Error("serial should build a nil policy")
	}
}

func TestPostprocessPairings(t *testing.T) {
	gfx, err := RenderScene("PL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"UPSCALE", "ATW"} {
		comp, err := compute.ByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Compute: comp, Policy: PolicyEven}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PerTask[1] == nil || res.PerTask[1].WarpInsts == 0 {
			t.Errorf("%s: compute task idle", name)
		}
	}
}

func TestGraphicsFramesPipelineAndWarmCaches(t *testing.T) {
	gfx, err := RenderScene("SPL", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	run := func(frames int) int64 {
		job := Job{GPU: config.JetsonOrin(), Graphics: gfx, Policy: PolicySerial, GraphicsFrames: frames}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	one := run(1)
	three := run(3)
	// Warm caches + frame pipelining: three frames cost well under 3x one
	// cold frame.
	if three >= 3*one {
		t.Errorf("3 frames (%d cycles) should undercut 3x one frame (%d)", three, 3*one)
	}
	if three <= one {
		t.Errorf("3 frames (%d) can not be cheaper than one (%d)", three, one)
	}
}
