package core

import (
	"context"
	"encoding/json"
	"fmt"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/gpu"
	"crisp/internal/render"
	"crisp/internal/scenario"
	"crisp/internal/trace"
)

// This file lowers a scenario.MixSpec — N tenants with priorities, arrival
// schedules, and deadlines — onto a Job. Each tenant becomes one task and
// owns the stream-id range [task*ComputeStreamBase, (task+1)*
// ComputeStreamBase): a render tenant's frame f occupies a stride of batch
// streams inside it, a compute tenant's request i is the single stream
// base+i. The lowering reproduces RunPair's stream construction exactly,
// so a two-tenant mix with immediate arrivals and no deadlines is
// bit-identical to the pair it describes.

// Tenant is one lowered mix tenant: exactly one of Graphics/Compute holds
// its workload, Arrivals lists the absolute arrival cycle of each instance
// (frames for render tenants, requests for compute ones), and Deadline is
// the per-instance completion budget in cycles after arrival (0 = none).
type Tenant struct {
	Name     string
	Graphics *render.Result
	Compute  *compute.Workload
	Priority int
	Arrivals []int64
	Deadline int64
}

// MixEnv lets callers override how workloads are materialized when
// lowering a mix (e.g. the experiments package injects its frame cache).
// Overrides must produce bit-identical results to the by-name builders —
// the mix spec resumes and re-runs through them.
type MixEnv struct {
	// Render renders a named scene; nil means RenderScene.
	Render func(sceneName string, opts render.Options) (*render.Result, error)
	// Compute builds a named compute workload; nil means compute.ByName.
	Compute func(name string) (*compute.Workload, error)
}

// BuildMixJob validates and lowers a mix onto a runnable Job. opts applies
// to every render tenant (mirroring RunPair's single options argument).
func BuildMixJob(cfg config.GPU, mix scenario.MixSpec, policy PolicyKind, opts render.Options) (*Job, error) {
	return BuildMixJobEnv(cfg, mix, policy, opts, MixEnv{})
}

// BuildMixJobEnv is BuildMixJob with workload materialization overrides.
func BuildMixJobEnv(cfg config.GPU, mix scenario.MixSpec, policy PolicyKind, opts render.Options, env MixEnv) (*Job, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	m := mix
	m.Tenants = append([]scenario.Tenant(nil), mix.Tenants...)
	m.Normalize()
	mixJSON, err := json.Marshal(&m)
	if err != nil {
		return nil, fmt.Errorf("core: marshaling mix spec: %w", err)
	}
	renderFn := env.Render
	if renderFn == nil {
		renderFn = RenderScene
	}
	computeFn := env.Compute
	if computeFn == nil {
		computeFn = func(name string) (*compute.Workload, error) {
			return compute.ByName(name, ComputeStreamBase)
		}
	}
	j := &Job{GPU: cfg, Policy: policy, MixJSON: mixJSON}
	hasRender := false
	for _, t := range m.Tenants {
		arrivals, err := t.Arrival.Times()
		if err != nil {
			return nil, err
		}
		ct := Tenant{Name: t.Name, Priority: t.Priority, Arrivals: arrivals, Deadline: t.Deadline}
		if t.Scene != "" {
			res, err := renderFn(t.Scene, opts)
			if err != nil {
				return nil, err
			}
			ct.Graphics = res
			hasRender = true
		} else {
			w, err := computeFn(t.Compute)
			if err != nil {
				return nil, err
			}
			ct.Compute = w
		}
		j.Tenants = append(j.Tenants, ct)
	}
	if hasRender {
		j.RenderOpts = opts
	}
	return j, nil
}

// addTenantStreams realizes the mix on the GPU: streams with NotBefore
// arrival gates, per-render-tenant batch windows, QoS instance tracking,
// and explicit placement priorities. It returns the task count.
func (j *Job) addTenantStreams(g *gpu.GPU) (int, error) {
	if len(j.Tenants) > scenario.MaxTenants {
		return 0, fmt.Errorf("core: mix has %d tenants, max is %d", len(j.Tenants), scenario.MaxTenants)
	}
	window := j.GraphicsWindow
	if window == 0 {
		window = defaultGraphicsWindow
	}
	qos := make([]gpu.QoSTenant, 0, len(j.Tenants))
	prios := make([]int, len(j.Tenants))
	for ti, tn := range j.Tenants {
		if (tn.Graphics == nil) == (tn.Compute == nil) {
			return 0, fmt.Errorf("core: mix tenant %d must carry exactly one of graphics or compute work", ti)
		}
		prios[ti] = tn.Priority
		base := ti * ComputeStreamBase
		arrivals := tn.Arrivals
		if len(arrivals) == 0 {
			arrivals = []int64{0}
		}
		qt := gpu.QoSTenant{Task: ti, Label: tn.Name, Priority: tn.Priority}
		if tn.Graphics != nil {
			// A render instance is one frame: the same stream layout as
			// RunPair's GraphicsFrames replay, offset into the tenant's
			// stream range, with the frame's arrival gating its batches.
			maxID := 0
			for _, st := range tn.Graphics.Streams {
				if st.Stream > maxID {
					maxID = st.Stream
				}
			}
			stride := maxID + 1
			if len(arrivals)*stride > ComputeStreamBase {
				return 0, fmt.Errorf("core: tenant %q: %d frames × %d streams exceed the tenant stream space", tn.Name, len(arrivals), stride)
			}
			g.TaskWindows[ti] = window
			for f, at := range arrivals {
				for _, st := range tn.Graphics.Streams {
					id := base + f*stride + st.Stream
					label := st.Label
					if len(arrivals) > 1 {
						label = fmt.Sprintf("f%d.%s", f, st.Label)
					}
					def := gpu.StreamDef{ID: id, Task: ti, Label: label, Kernels: renumber(st.Kernels, id), NotBefore: at}
					if err := g.AddStream(def); err != nil {
						return 0, err
					}
				}
				qt.Instances = append(qt.Instances, gpu.QoSInstance{
					Arrival: at, Deadline: absDeadline(at, tn.Deadline),
					FirstStream: base + f*stride, LastStream: base + (f+1)*stride - 1,
				})
			}
		} else {
			// A compute instance is one request: the workload's kernel list
			// on its own stream.
			if len(arrivals) > ComputeStreamBase {
				return 0, fmt.Errorf("core: tenant %q: %d requests exceed the tenant stream space", tn.Name, len(arrivals))
			}
			for i, at := range arrivals {
				id := base + i
				label := tn.Name
				if len(arrivals) > 1 {
					label = fmt.Sprintf("i%d.%s", i, tn.Name)
				}
				kernels := make([]*trace.Kernel, len(tn.Compute.Kernels))
				for ki, k := range tn.Compute.Kernels {
					kk := *k
					kk.Stream = id
					kernels[ki] = &kk
				}
				def := gpu.StreamDef{ID: id, Task: ti, Label: label, Kernels: kernels, NotBefore: at}
				if err := g.AddStream(def); err != nil {
					return 0, err
				}
				qt.Instances = append(qt.Instances, gpu.QoSInstance{
					Arrival: at, Deadline: absDeadline(at, tn.Deadline),
					FirstStream: id, LastStream: id,
				})
			}
		}
		qos = append(qos, qt)
	}
	g.SetQoS(qos)
	g.SetTaskPriorities(prios)
	return len(j.Tenants), nil
}

// absDeadline converts a relative per-instance deadline to the absolute
// cycle the QoS runtime checks against.
func absDeadline(arrival, deadline int64) int64 {
	if deadline <= 0 {
		return 0
	}
	return arrival + deadline
}

// hasGraphicsTenant reports whether any tenant renders.
func (j *Job) hasGraphicsTenant() bool {
	for _, t := range j.Tenants {
		if t.Graphics != nil {
			return true
		}
	}
	return false
}

// RunMix is the mix counterpart of RunPair: build the named workloads,
// lower the mix, and run it under policy on cfg.
func RunMix(cfg config.GPU, mix scenario.MixSpec, policy PolicyKind, opts render.Options, runOpts ...RunOption) (*Result, error) {
	return RunMixContext(context.Background(), cfg, mix, policy, opts, runOpts...)
}

// RunMixContext is RunMix with cooperative cancellation.
func RunMixContext(ctx context.Context, cfg config.GPU, mix scenario.MixSpec, policy PolicyKind, opts render.Options, runOpts ...RunOption) (*Result, error) {
	job, err := BuildMixJob(cfg, mix, policy, opts)
	if err != nil {
		return nil, err
	}
	for _, o := range runOpts {
		o(job)
	}
	return job.RunContext(ctx)
}
