package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crisp/internal/config"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// statsDigestOf fails the test on digest error so call sites stay one line.
func statsDigestOf(t *testing.T, r *Result) uint64 {
	t.Helper()
	d, err := r.StatsDigest()
	if err != nil {
		t.Fatalf("StatsDigest: %v", err)
	}
	return d
}

// countPeriodic counts ckpt-*.crispsnap files in dir (final.crispsnap is
// exempt from retention and not counted).
func countPeriodic(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), snapshot.Ext) {
			n++
		}
	}
	return n
}

// TestCheckpointResumeRoundTrip is the tentpole acceptance test: for every
// partitioning policy, and for both a render-only and a concurrent
// render+compute pair, an interrupted run resumed from its on-disk snapshot
// must finish bit-identical — same cycle count, same stats digest, and a
// digest series consistent with the uninterrupted run's — with restore going
// through the full file round trip (encode → gzip → disk → decode).
func TestCheckpointResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy × workload resume matrix is not short")
	}
	workloads := []struct {
		name, scene, compute string
	}{
		{"render-only", "SPL", ""},
		{"render+compute", "SPL", "VIO"},
	}
	for _, wl := range workloads {
		for _, pol := range PolicyKinds() {
			wl, pol := wl, pol
			t.Run(wl.name+"/"+string(pol), func(t *testing.T) {
				t.Parallel()
				// Probe the run length first so every cadence scales with it:
				// the tiny test scenes complete in a few thousand cycles.
				probe, err := RunPair(config.JetsonOrin(), wl.scene, wl.compute, pol, tinyOpts())
				if err != nil {
					t.Fatalf("probe run: %v", err)
				}
				if probe.Cycles < 64 {
					t.Fatalf("baseline too short to interrupt meaningfully: %d cycles", probe.Cycles)
				}
				digestEvery := max(1, probe.Cycles/16)
				base, err := RunPair(config.JetsonOrin(), wl.scene, wl.compute, pol, tinyOpts(),
					WithStateDigest(digestEvery))
				if err != nil {
					t.Fatalf("baseline run: %v", err)
				}

				// Interrupt mid-run via the cycle budget, checkpointing all the way.
				dir := t.TempDir()
				_, err = RunPair(config.JetsonOrin(), wl.scene, wl.compute, pol, tinyOpts(),
					WithStateDigest(digestEvery),
					WithCheckpointDir(dir),
					WithCheckpointEvery(max(1, base.Cycles/8)),
					WithCycleBudget(base.Cycles/2))
				se, ok := robust.AsSimError(err)
				if !ok || se.Kind != robust.KindBudget {
					t.Fatalf("interrupted run: err = %v, want budget SimError", err)
				}
				if _, err := os.Stat(filepath.Join(dir, "final.crispsnap")); err != nil {
					t.Fatalf("no final snapshot next to the failure: %v", err)
				}
				if n := countPeriodic(t, dir); n > snapshot.DefaultRetain {
					t.Errorf("retention kept %d periodic checkpoints, want <= %d", n, snapshot.DefaultRetain)
				}

				// Resume from disk and run to completion.
				res, err := ResumeFile(context.Background(), dir)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if !res.Resumed || res.ResumedFrom <= 0 {
					t.Errorf("Resumed/ResumedFrom = %v/%d, want true/>0", res.Resumed, res.ResumedFrom)
				}
				if res.Cycles != base.Cycles {
					t.Errorf("resumed run finished at cycle %d, uninterrupted at %d", res.Cycles, base.Cycles)
				}
				if got, want := statsDigestOf(t, res), statsDigestOf(t, base); got != want {
					t.Errorf("stats digest mismatch after resume: %#x != %#x", got, want)
				}
				if len(res.Digests) == 0 {
					t.Fatalf("resumed run produced no digests (spec should re-arm the auditor)")
				}
				if c, diverged := snapshot.FirstDivergence(base.Digests, res.Digests); diverged {
					t.Errorf("state digests diverge at cycle %d", c)
				}
			})
		}
	}
}

// TestIndependentRunsDigestIdentical asserts the determinism half of the
// auditor: two independent runs of the same concurrent job produce the same
// digest at every sampled cycle, and a mismatch would name the first
// divergent cycle.
func TestIndependentRunsDigestIdentical(t *testing.T) {
	run := func() *Result {
		res, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
			WithStateDigest(512))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Digests) == 0 || len(a.Digests) != len(b.Digests) {
		t.Fatalf("digest series lengths %d vs %d, want equal and nonzero", len(a.Digests), len(b.Digests))
	}
	if c, diverged := snapshot.FirstDivergence(a.Digests, b.Digests); diverged {
		t.Fatalf("independent runs diverge at cycle %d", c)
	}
	if da, db := statsDigestOf(t, a), statsDigestOf(t, b); da != db {
		t.Fatalf("stats digests differ across independent runs: %#x != %#x", da, db)
	}
}

// TestWatchdogLeavesResumableSnapshot asserts crash-dump/snapshot
// co-emission: a watchdog-killed run leaves both a dump (attached to the
// SimError) and a final snapshot, and resuming that snapshot with the
// watchdog disabled completes at exactly the clean run's cycle count.
func TestWatchdogLeavesResumableSnapshot(t *testing.T) {
	base, err := RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	dir := t.TempDir()
	_, err = RunPair(config.JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
		WithCheckpointDir(dir), WithWatchdog(4))
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindWatchdog {
		t.Fatalf("err = %v, want watchdog SimError", err)
	}
	if se.Dump == nil {
		t.Errorf("watchdog SimError carries no crash dump")
	}
	final := filepath.Join(dir, "final.crispsnap")
	if _, err := os.Stat(final); err != nil {
		t.Fatalf("watchdog kill left no final snapshot: %v", err)
	}

	res, err := ResumeFile(context.Background(), final, WithWatchdog(-1))
	if err != nil {
		t.Fatalf("resume after watchdog kill: %v", err)
	}
	if res.Cycles != base.Cycles {
		t.Errorf("resumed completion at cycle %d, clean run at %d", res.Cycles, base.Cycles)
	}
	if got, want := statsDigestOf(t, res), statsDigestOf(t, base); got != want {
		t.Errorf("stats digest mismatch after watchdog resume: %#x != %#x", got, want)
	}
}

// TestCheckpointTimingsReported asserts the Result exposes checkpoint save
// accounting when checkpointing is armed.
func TestCheckpointTimingsReported(t *testing.T) {
	dir := t.TempDir()
	res, err := RunPair(config.JetsonOrin(), "SPL", "", PolicySerial, tinyOpts(),
		WithCheckpointDir(dir), WithCheckpointEvery(1000))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.CheckpointSaves == 0 {
		t.Fatalf("no checkpoint saves recorded over %d cycles at a 20k interval", res.Cycles)
	}
	if res.CheckpointSaveTime <= 0 {
		t.Errorf("CheckpointSaveTime = %v, want > 0", res.CheckpointSaveTime)
	}
}

// TestResumeRejectsIncompleteSpec asserts a snapshot of a job built from
// in-memory traces refuses resume with a structured snapshot error rather
// than misbehaving.
func TestResumeRejectsIncompleteSpec(t *testing.T) {
	if _, err := JobFromSpec(snapshot.Spec{Policy: "EVEN"}); err == nil {
		t.Fatalf("JobFromSpec accepted an incomplete spec")
	} else if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindSnapshot {
		t.Fatalf("err = %v, want snapshot SimError", err)
	}
}
