package core

import (
	"context"
	"path/filepath"
	"testing"

	"crisp/internal/config"
	"crisp/internal/robust"
	"crisp/internal/scenario"
	"crisp/internal/snapshot"
)

// pairMix is the two-tenant mix describing RunPair(scene, comp): one
// render tenant and one compute tenant, immediate arrivals, no deadlines,
// no priorities.
func pairMix(scene, comp string) scenario.MixSpec {
	return scenario.MixSpec{Name: "pair", Tenants: []scenario.Tenant{
		{Scene: scene},
		{Compute: comp},
	}}
}

// TestRunMixPairParity is the scenario engine's anchor acceptance: a
// two-tenant mix with immediate arrivals and no deadlines reproduces
// RunPair bit-identically (same cycle count, same stats digest) for every
// policy — the mix lowering is a strict generalization, not a parallel
// implementation.
func TestRunMixPairParity(t *testing.T) {
	cfg := config.JetsonOrin()
	for _, pol := range PolicyKinds() {
		pair, err := RunPair(cfg, "SPL", "VIO", pol, tinyOpts())
		if err != nil {
			t.Fatalf("%s pair: %v", pol, err)
		}
		mix, err := RunMix(cfg, pairMix("SPL", "VIO"), pol, tinyOpts())
		if err != nil {
			t.Fatalf("%s mix: %v", pol, err)
		}
		if pair.Cycles != mix.Cycles {
			t.Errorf("%s: cycles diverge: pair %d, mix %d", pol, pair.Cycles, mix.Cycles)
		}
		if dp, dm := statsDigestOf(t, pair), statsDigestOf(t, mix); dp != dm {
			t.Errorf("%s: stats digests diverge: pair %016x, mix %016x", pol, dp, dm)
		}
		if mix.QoS == nil || len(mix.QoS.Tenants) != 2 {
			t.Fatalf("%s: mix run missing QoS report", pol)
		}
		for _, tr := range mix.QoS.Tenants {
			if tr.Completed != tr.Instances {
				t.Errorf("%s: tenant %s completed %d/%d instances", pol, tr.Name, tr.Completed, tr.Instances)
			}
		}
	}
}

// TestMixNWayDeterminism runs the 4-tenant n-way-fair preset under
// representative policies across worker counts and skip modes, asserting
// full-trajectory identity (stats digest plus the auditor's state-digest
// stream) — the N-way analog of the pair parity suite.
func TestMixNWayDeterminism(t *testing.T) {
	cfg := config.JetsonOrin()
	mix, err := scenario.Preset("n-way-fair")
	if err != nil {
		t.Fatal(err)
	}
	workers := parityWorkers(t)
	for _, pol := range []PolicyKind{PolicyMPS, PolicyEven, PolicyMiG, PolicyTAP, PolicyPriority} {
		ref, err := RunMix(cfg, mix, pol, tinyOpts(),
			WithWorkers(1), WithStateDigest(10_000))
		if err != nil {
			t.Fatalf("%s -j1: %v", pol, err)
		}
		par, err := RunMix(cfg, mix, pol, tinyOpts(),
			WithWorkers(workers), WithStateDigest(10_000))
		if err != nil {
			t.Fatalf("%s -j%d: %v", pol, workers, err)
		}
		expectIdentical(t, ref, par, string(pol)+" workers")
		noskip, err := RunMix(cfg, mix, pol, tinyOpts(),
			WithWorkers(workers), WithNoSkip(), WithStateDigest(10_000))
		if err != nil {
			t.Fatalf("%s -no-skip: %v", pol, err)
		}
		expectIdentical(t, ref, noskip, string(pol)+" no-skip")
	}
}

// TestMixArrivalsGateWork pins arrival semantics: a tenant with a large
// fixed offset contributes no completed instances before its arrival, and
// the run's QoS report places its first completion after the offset.
func TestMixArrivalsGateWork(t *testing.T) {
	cfg := config.JetsonOrin()
	const offset = 50_000
	mix := scenario.MixSpec{Name: "gated", Tenants: []scenario.Tenant{
		{Compute: "VIO"},
		{Compute: "NN", Arrival: scenario.Arrival{Kind: scenario.ArriveOffset, Offset: offset}},
	}}
	res, err := RunMix(cfg, mix, PolicyEven, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	nn := res.QoS.Tenants[1]
	if nn.Completed != 1 {
		t.Fatalf("NN completed %d instances, want 1", nn.Completed)
	}
	if nn.LastDone <= offset {
		t.Errorf("NN completed at cycle %d, before its arrival offset %d", nn.LastDone, offset)
	}
	if nn.FirstArrival != offset {
		t.Errorf("NN first arrival %d, want %d", nn.FirstArrival, offset)
	}
}

// TestMixCheckpointResume kills a 3-tenant mix mid-run — before the
// offset tenant has arrived — resumes it from the final snapshot in a
// job rebuilt purely from the snapshot spec, and asserts the resumed
// trajectory is bit-identical to the uninterrupted run.
func TestMixCheckpointResume(t *testing.T) {
	cfg := config.JetsonOrin()
	mix := scenario.MixSpec{Name: "resume-mix", Tenants: []scenario.Tenant{
		{Compute: "VIO", Deadline: 4_000_000},
		{Compute: "NN", Priority: 2},
		{Compute: "UPSCALE", Arrival: scenario.Arrival{Kind: scenario.ArriveOffset, Offset: 120_000}},
	}}
	pol := PolicyMPS

	full, err := RunMix(cfg, mix, pol, tinyOpts(), WithStateDigest(5_000))
	if err != nil {
		t.Fatal(err)
	}
	if full.Cycles <= 120_000 {
		t.Fatalf("mix finished in %d cycles; too short to cut before the offset tenant arrives", full.Cycles)
	}

	dir := t.TempDir()
	budget := int64(60_000) // well before UPSCALE's 120k arrival
	_, err = RunMix(cfg, mix, pol, tinyOpts(),
		WithCycleBudget(budget), WithCheckpointDir(dir), WithStateDigest(5_000))
	if se, ok := robust.AsSimError(err); !ok || robust.DeepestKind(se) != robust.KindBudget {
		t.Fatalf("budget kill: got %v", err)
	}

	env, err := LoadSnapshot(filepath.Join(dir, "final.crispsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if !env.Spec.Complete || len(env.Spec.Mix) == 0 {
		t.Fatalf("mix snapshot spec incomplete: complete=%v mix=%dB", env.Spec.Complete, len(env.Spec.Mix))
	}
	resumed, err := ResumeContext(context.Background(), env, WithStateDigest(5_000))
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || resumed.ResumedFrom == 0 {
		t.Fatalf("resume metadata missing: %+v", resumed.Resumed)
	}
	if resumed.Cycles != full.Cycles {
		t.Errorf("cycles diverge: full %d, resumed %d", full.Cycles, resumed.Cycles)
	}
	if df, dr := statsDigestOf(t, full), statsDigestOf(t, resumed); df != dr {
		t.Errorf("stats digests diverge: full %016x, resumed %016x", df, dr)
	}
	if c, diverged := snapshot.FirstDivergence(full.Digests, resumed.Digests); diverged {
		t.Errorf("state digests first diverge at cycle %d", c)
	}
	// The offset tenant arrived and completed only after the resume point.
	up := resumed.QoS.Tenants[2]
	if up.Completed != 1 || up.LastDone <= resumed.ResumedFrom {
		t.Errorf("offset tenant: completed=%d lastDone=%d resumedFrom=%d", up.Completed, up.LastDone, resumed.ResumedFrom)
	}
}

// TestMixJobDigestStability pins cache-key behavior: the same mix digests
// identically across builds, a different mix digests differently, and a
// pair job's digest is untouched by the Mix field's existence.
func TestMixJobDigestStability(t *testing.T) {
	cfg := config.JetsonOrin()
	j1, err := BuildMixJob(cfg, pairMix("SPL", "VIO"), PolicyMPS, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := BuildMixJob(cfg, pairMix("SPL", "VIO"), PolicyMPS, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := j1.buildSpec(), j2.buildSpec()
	if s1.JobDigest() != s2.JobDigest() {
		t.Error("identical mixes produced different job digests")
	}
	j3, err := BuildMixJob(cfg, pairMix("SPL", "NN"), PolicyMPS, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s3 := j3.buildSpec()
	if s3.JobDigest() == s1.JobDigest() {
		t.Error("different mixes produced the same job digest")
	}
	pair := Job{GPU: cfg, Policy: PolicyMPS, SceneName: "SPL", ComputeName: "VIO", RenderOpts: tinyOpts()}
	ps := pair.buildSpec()
	if len(ps.Mix) != 0 {
		t.Error("pair spec unexpectedly carries a mix")
	}
	if ps.JobDigest() == s1.JobDigest() {
		t.Error("pair and mix digests collide")
	}
}
