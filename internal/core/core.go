// Package core is CRISP's concurrent simulation platform: it pairs a
// functionally rendered frame (graphics task) with a compute workload
// (CUDA-analog task), places both on one cycle-level GPU under a selected
// partitioning policy, runs the simulation, and reports per-stream,
// per-task, and whole-run statistics — the paper's central capability.
package core

import (
	"context"
	"fmt"
	"time"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/gpu"
	"crisp/internal/obs"
	"crisp/internal/partition"
	"crisp/internal/render"
	"crisp/internal/scenario"
	"crisp/internal/scene"
	"crisp/internal/sm"
	"crisp/internal/snapshot"
	"crisp/internal/stats"
	"crisp/internal/trace"
)

// ComputeStreamBase numbers compute streams; graphics streams count up
// from zero, so any stream at or above the base belongs to the compute
// task.
const ComputeStreamBase = 1 << 20

// defaultGraphicsWindow is how many rendering batch streams may be in
// flight at once — the capacity of the ITR binning buffer. Batches are
// small (≤96 vertices), so hardware keeps many in flight to fill the SMs.
const defaultGraphicsWindow = 32

// TaskOf maps a stream id to its task: graphics streams (below the base)
// are task 0; the i-th compute workload's stream, (i+1)*ComputeStreamBase,
// is task i+1.
func TaskOf(stream int) int {
	if stream < ComputeStreamBase {
		return partition.TaskGraphics
	}
	return stream / ComputeStreamBase
}

// PolicyKind names a partitioning configuration.
type PolicyKind string

// The supported policies. Serial is stock Accel-Sim behavior: CTAs drain
// from one kernel exhaustively before the next, so big kernels never
// co-run.
const (
	PolicySerial       PolicyKind = "serial"
	PolicyMPS          PolicyKind = "MPS"
	PolicyMiG          PolicyKind = "MiG"
	PolicyEven         PolicyKind = "EVEN"
	PolicyWarpedSlicer PolicyKind = "WarpedSlicer"
	PolicyTAP          PolicyKind = "TAP"
	// PolicyPriority is QoS-aware intra-SM sharing: an even split where
	// the rendering task's CTAs claim freed resources first (the
	// latency/QoS dimension of the paper's future work).
	PolicyPriority PolicyKind = "Priority"
)

// PolicyKinds lists all supported policies.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{PolicySerial, PolicyMPS, PolicyMiG, PolicyEven, PolicyWarpedSlicer, PolicyTAP, PolicyPriority}
}

// KnownPolicy reports whether k names a supported partitioning policy
// ("" is accepted as an alias for serial, matching BuildPolicy).
func KnownPolicy(k PolicyKind) bool {
	if k == "" {
		return true
	}
	for _, p := range PolicyKinds() {
		if p == k {
			return true
		}
	}
	return false
}

// Job is one simulation: optional graphics frame traces, optional compute
// workload, a GPU configuration, and a policy.
type Job struct {
	GPU      config.GPU
	Graphics *render.Result
	Compute  *compute.Workload
	// Computes adds further compute workloads as additional tasks
	// (2, 3, …) — the more-than-two-workloads extension the paper's
	// limitation section describes. Every policy generalizes to n tasks
	// (the pairwise implementations stay in force at n ≤ 2).
	Computes []*compute.Workload
	// Tenants, when non-empty, replaces Graphics/Compute/Computes with an
	// N-tenant scenario mix: tenant i is task i and owns stream range
	// [i*ComputeStreamBase, (i+1)*ComputeStreamBase). Build with
	// BuildMixJob, which also fills MixJSON.
	Tenants []Tenant
	// MixJSON is the canonical scenario.MixSpec JSON the tenants were
	// lowered from; it rides in checkpoint specs and the job digest so
	// mixes are as resumable and cacheable as pairs.
	MixJSON []byte
	Policy  PolicyKind
	// GraphicsWindow bounds concurrently active rendering batch streams
	// (the binning buffer); 0 means the default of 4.
	GraphicsWindow int
	// GraphicsFrames replays the graphics trace this many times (0/1 =
	// one frame). Later frames run against warm caches, and because
	// batches are streams bounded by GraphicsWindow, frame N+1's early
	// batches pipeline behind frame N's tail — the steady-state frame
	// pipelining of real renderers.
	GraphicsFrames int
	// TimelineInterval, when > 0, samples per-task occupancy every so
	// many cycles (paper Fig. 13).
	TimelineInterval int64
	// LRRScheduler switches the warp schedulers from greedy-then-oldest
	// to loose round-robin (the scheduling ablation).
	LRRScheduler bool
	// Tracer, when non-nil, receives cycle-stamped structured events
	// (kernel/CTA lifecycle, batch boundaries, repartition decisions,
	// memory contention markers). Nil disables tracing at the cost of one
	// branch per emission site.
	Tracer obs.Tracer
	// MetricsInterval, when > 0, samples per-task interval metrics (IPC,
	// occupancy, hit rates, DRAM bandwidth) every so many cycles into
	// Result.Metrics.
	MetricsInterval int64
	// MetricsSink, when non-nil, additionally receives each interval
	// metrics sample as it is taken (live progress for long runs, e.g. the
	// batch service's job-status endpoint). It runs on the simulation
	// goroutine; implementations must synchronize their own publication.
	// Requires MetricsInterval > 0.
	MetricsSink func(obs.Sample)
	// WatchdogWindow configures the forward-progress watchdog: the run
	// fails with a watchdog SimError when no instruction issues for this
	// many cycles while warps are resident. 0 = the GPU default window;
	// negative disables the watchdog.
	WatchdogWindow int64
	// CycleBudget, when > 0, is a hard bound on simulated cycles; crossing
	// it fails the run with a budget SimError carrying a crash dump.
	CycleBudget int64
	// Workers sets the host-side SM stepping parallelism: 0 defers to the
	// GPU config (whose 0 means auto = GOMAXPROCS), 1 or negative forces
	// the serial reference engine, N > 1 runs the two-phase parallel
	// engine. Results are bit-identical at every setting, so Workers is a
	// host knob, not part of the simulated configuration (checkpoints
	// neither record nor require it).
	Workers int
	// NoSkip disables event-driven core sleeping, stepping every busy SM
	// at every visited cycle (the legacy oracle path). Like Workers it is
	// a host knob: results, digests, and checkpoints are bit-identical
	// with skipping on or off, so it exists to diff the fast path against.
	NoSkip bool

	// SceneName and ComputeName record how Graphics/Compute were built
	// (RunPair sets them). They make checkpoints self-describing: a
	// snapshot whose spec carries both names can be resumed in a fresh
	// process that regenerates the identical workloads.
	SceneName   string
	ComputeName string
	// RenderOpts are the options SceneName was rendered with (carried in
	// the checkpoint spec so a resume re-renders the identical frame).
	RenderOpts render.Options

	// CheckpointDir, when non-empty, enables periodic checkpointing into
	// that directory every CheckpointEvery cycles (0 selects
	// DefaultCheckpointEvery), keeping the newest CheckpointRetain files
	// (0 selects snapshot.DefaultRetain). On watchdog/budget/deadlock/
	// panic failures a final snapshot is additionally written next to the
	// crash dump as final.crispsnap, exempt from retention.
	CheckpointDir    string
	CheckpointEvery  int64
	CheckpointRetain int
	// DigestEvery, when > 0, arms the determinism auditor: the
	// architectural state is hashed every so many cycles into
	// Result.Digests (plus one final digest at completion).
	DigestEvery int64
	// Restore, when non-nil, loads this snapshot into the freshly built
	// GPU before running: the job must describe the same workloads, config,
	// and policy as the captured run (ResumeContext builds such a job from
	// the snapshot's own spec).
	Restore *snapshot.Envelope
}

// DefaultCheckpointEvery is the checkpoint cadence used when CheckpointDir
// is set but CheckpointEvery is zero. At 100k cycles the save overhead is
// under the hardening layer's 2% envelope (BenchmarkCheckpointOverhead).
const DefaultCheckpointEvery = 100_000

// Result is a completed simulation.
type Result struct {
	Policy      PolicyKind
	Cycles      int64
	FrameTimeMS float64
	PerStream   []*stats.Stream
	PerTask     map[int]*stats.Stream
	// L2ByClass counts valid L2 lines by data class at end of run
	// (paper Figs. 11/15).
	L2ByClass map[trace.MemClass]int
	// L2ByTask counts valid L2 lines by owning task.
	L2ByTask map[int]int
	L2Lines  int
	Timeline *stats.Timeline
	// Metrics is the interval time series when Job.MetricsInterval > 0.
	Metrics *obs.IntervalSeries
	// SchedSlots and EmptySlots are whole-GPU scheduler slot counts: every
	// slot is either an issue (per-stream WarpInsts), an attributed stall
	// (per-stream Stalls), or an empty slot.
	SchedSlots int64
	EmptySlots int64
	// StepsExecuted/StepsSkipped count engine core-step visits: executed
	// steps ran the core's pipeline model, skipped ones were covered by
	// event-driven sleeping (bulk-accounted at wake; zero under NoSkip).
	// BulkStallSlots is the subset of stall slots credited in bulk.
	// SleepHist buckets skipped-run lengths by floor(log2(n)).
	StepsExecuted  int64
	StepsSkipped   int64
	BulkStallSlots int64
	SleepHist      []int64
	// Kernels lists every completed kernel launch in completion order.
	Kernels []gpu.KernelStat
	// WS exposes warped-slicer state when that policy ran.
	WS *partition.WarpedSlicer
	// QoS is the per-tenant deadline/turnaround accounting for scenario
	// mixes (nil for plain pair jobs).
	QoS *scenario.QoSReport
	// Digests is the determinism-auditor series when Job.DigestEvery > 0.
	Digests []snapshot.DigestEntry
	// Resumed/ResumedFrom report whether (and from which cycle) the run
	// was restored from a snapshot.
	Resumed     bool
	ResumedFrom int64
	// CheckpointSaves counts periodic snapshots written;
	// CheckpointSaveTime is the wall-clock time they cost.
	CheckpointSaves    int
	CheckpointSaveTime time.Duration
}

// Run executes the job. It is RunContext with a background context.
func (j *Job) Run() (*Result, error) { return j.RunContext(context.Background()) }

// RunContext executes the job, checking ctx periodically: cancellation
// terminates the simulation with a canceled SimError carrying a crash
// dump of where the run stood.
func (j *Job) RunContext(ctx context.Context) (*Result, error) {
	if j.Graphics == nil && j.Compute == nil && len(j.Tenants) == 0 {
		return nil, fmt.Errorf("core: job has neither graphics nor compute work")
	}
	g, err := gpu.New(j.GPU)
	if err != nil {
		return nil, err
	}
	g.Workers = j.Workers
	g.NoSkip = j.NoSkip

	var totalTasks int
	if len(j.Tenants) > 0 {
		if j.Graphics != nil || j.Compute != nil || len(j.Computes) > 0 {
			return nil, fmt.Errorf("core: a job carries either a tenant mix or pair workloads, not both")
		}
		totalTasks, err = j.addTenantStreams(g)
		if err != nil {
			return nil, err
		}
	} else if totalTasks, err = j.addPairStreams(g); err != nil {
		return nil, err
	}

	res := &Result{Policy: j.Policy}
	pol, ws, err := BuildPolicyWS(g, j.Policy, totalTasks)
	if err != nil {
		return nil, err
	}
	if pol != nil {
		g.SetPolicy(pol)
	}
	res.WS = ws
	return j.runOn(ctx, g, res)
}

// addPairStreams realizes the classic pair job (graphics frame replay plus
// compute workloads) on the GPU, returning the task count.
func (j *Job) addPairStreams(g *gpu.GPU) (int, error) {
	window := j.GraphicsWindow
	if window == 0 {
		window = defaultGraphicsWindow
	}
	g.TaskWindows[partition.TaskGraphics] = window

	if j.Graphics != nil {
		frames := j.GraphicsFrames
		if frames < 1 {
			frames = 1
		}
		// Frame f's stream ids are offset so replays never collide; the
		// kernels (and their addresses) are shared, so later frames see
		// warm caches.
		maxID := 0
		for _, st := range j.Graphics.Streams {
			if st.Stream > maxID {
				maxID = st.Stream
			}
		}
		stride := maxID + 1
		if frames*stride > ComputeStreamBase {
			return 0, fmt.Errorf("core: %d frames × %d streams exceed the graphics stream space", frames, stride)
		}
		for f := 0; f < frames; f++ {
			for _, st := range j.Graphics.Streams {
				id := f*stride + st.Stream
				label := st.Label
				if frames > 1 {
					label = fmt.Sprintf("f%d.%s", f, st.Label)
				}
				def := gpu.StreamDef{ID: id, Task: partition.TaskGraphics, Label: label, Kernels: renumber(st.Kernels, id)}
				if err := g.AddStream(def); err != nil {
					return 0, err
				}
			}
		}
	}
	computes := j.Computes
	if j.Compute != nil {
		computes = append([]*compute.Workload{j.Compute}, computes...)
	}
	for ci, w := range computes {
		id := (ci + 1) * ComputeStreamBase
		task := ci + 1
		kernels := make([]*trace.Kernel, len(w.Kernels))
		for i, k := range w.Kernels {
			kk := *k
			kk.Stream = id
			kernels[i] = &kk
		}
		def := gpu.StreamDef{ID: id, Task: task, Label: w.Name, Kernels: kernels}
		if err := g.AddStream(def); err != nil {
			return 0, err
		}
	}
	return 1 + len(computes), nil
}

// runOn finishes RunContext after streams and policy are installed:
// observability wiring, checkpointing, optional restore, the run itself,
// and result folding.
func (j *Job) runOn(ctx context.Context, g *gpu.GPU, res *Result) (*Result, error) {
	if j.TimelineInterval > 0 {
		g.Timeline = &stats.Timeline{Interval: j.TimelineInterval}
	}
	if j.LRRScheduler {
		g.SetWarpScheduler(sm.SchedLRR)
	}
	if j.Tracer != nil {
		g.SetTracer(j.Tracer)
	}
	if j.MetricsInterval > 0 {
		g.Metrics = &obs.IntervalSeries{Interval: j.MetricsInterval, OnSample: j.MetricsSink}
	}
	g.WatchdogWindow = j.WatchdogWindow
	g.CycleBudget = j.CycleBudget
	g.DigestEvery = j.DigestEvery

	var store *snapshot.Store
	if j.CheckpointDir != "" {
		store = &snapshot.Store{Dir: j.CheckpointDir, Retain: j.CheckpointRetain}
		spec := j.buildSpec()
		g.CheckpointEvery = j.CheckpointEvery
		if g.CheckpointEvery <= 0 {
			g.CheckpointEvery = DefaultCheckpointEvery
		}
		g.CheckpointSink = func() error {
			t0 := time.Now()
			st, err := g.CaptureState()
			if err != nil {
				return err
			}
			if _, err := store.Save(&snapshot.Envelope{Version: snapshot.FormatVersion, Spec: spec, State: *st}); err != nil {
				return err
			}
			res.CheckpointSaves++
			res.CheckpointSaveTime += time.Since(t0)
			return nil
		}
		// A panic escaping the simulator still leaves a resumable final
		// snapshot next to the crash dump, like any other failure.
		defer func() {
			if r := recover(); r != nil {
				j.saveFinal(g, store)
				panic(r)
			}
		}()
	}

	if j.Restore != nil {
		if err := g.RestoreState(&j.Restore.State); err != nil {
			return nil, err
		}
		res.Resumed = true
		res.ResumedFrom = j.Restore.State.Arch.Cycle
	}

	cycles, err := g.RunContext(ctx)
	if err != nil {
		if store != nil {
			// The simulator state is intact after a structured failure:
			// persist it so the run can resume past a budget kill or be
			// replayed up to a watchdog trip. Best-effort — the primary
			// error always wins.
			j.saveFinal(g, store)
		}
		return nil, err
	}
	res.Digests = g.Digests()
	res.Cycles = cycles
	res.FrameTimeMS = j.GPU.FrameTimeMS(cycles)
	res.PerStream = g.StreamStats()
	res.PerTask = g.TaskStats()
	res.Timeline = g.Timeline
	res.Metrics = g.Metrics
	res.SchedSlots = g.SchedSlots()
	res.EmptySlots = g.EmptySlots()
	res.StepsExecuted, res.StepsSkipped, res.BulkStallSlots = g.SkipCounters()
	res.SleepHist = g.SleepHist()
	res.Kernels = g.KernelStats()

	comp := g.Mem().L2Composition()
	res.L2ByClass = comp.ByClass
	res.L2Lines = comp.Valid
	res.L2ByTask = make(map[int]int)
	for stream, n := range comp.ByStream {
		res.L2ByTask[TaskOf(stream)] += n
	}
	if len(j.Tenants) > 0 {
		res.QoS = scenario.Account(g.QoSTenants(), g.QoSDone(), cycles)
	}
	return res, nil
}

// renumber copies kernels onto a new stream id (kernels are value-copied;
// the CTA/warp traces are shared).
func renumber(kernels []*trace.Kernel, id int) []*trace.Kernel {
	out := make([]*trace.Kernel, len(kernels))
	for i, k := range kernels {
		if k.Stream == id {
			out[i] = k
			continue
		}
		kk := *k
		kk.Stream = id
		out[i] = &kk
	}
	return out
}

// BuildPolicy constructs the named partitioning policy for a GPU hosting
// totalTasks tasks (nil for PolicySerial). Every policy generalizes to n
// tasks: at n ≤ 2 the original pairwise implementations run (bit-identical
// to the paper's studies), beyond that the n-way variants take over.
func BuildPolicy(g *gpu.GPU, kind PolicyKind, totalTasks int) (gpu.Policy, error) {
	p, _, err := BuildPolicyWS(g, kind, totalTasks)
	return p, err
}

// BuildPolicyWS is BuildPolicy, additionally returning the warped-slicer
// instance when that policy was selected (its sampling state is part of
// the Fig. 13 experiment).
func BuildPolicyWS(g *gpu.GPU, kind PolicyKind, totalTasks int) (gpu.Policy, *partition.WarpedSlicer, error) {
	cfg := g.Config()
	switch kind {
	case PolicySerial, "":
		return nil, nil, nil
	case PolicyMPS:
		if totalTasks <= 2 {
			return partition.NewMPS(cfg.NumSMs), nil, nil
		}
		p, err := partition.NewSMGroups(cfg.NumSMs, totalTasks)
		return p, nil, err
	case PolicyMiG:
		if totalTasks <= 2 {
			return partition.NewMiG(g, TaskOf), nil, nil
		}
		p, err := partition.NewMiGN(g, TaskOf, totalTasks)
		return p, nil, err
	case PolicyEven:
		if totalTasks <= 2 {
			return partition.NewFGEven(g), nil, nil
		}
		p, err := partition.NewFGN(g, totalTasks)
		return p, nil, err
	case PolicyWarpedSlicer:
		if totalTasks <= 2 {
			ws := partition.NewWarpedSlicer(g)
			return ws, ws, nil
		}
		p, err := partition.NewWarpedSlicerN(g, totalTasks)
		return p, nil, err
	case PolicyTAP:
		if totalTasks <= 2 {
			return partition.NewTAP(g, TaskOf), nil, nil
		}
		p, err := partition.NewTAPN(g, TaskOf, totalTasks)
		return p, nil, err
	case PolicyPriority:
		if totalTasks <= 2 {
			return partition.NewPriorityEven(g), nil, nil
		}
		p, err := partition.NewPriorityEvenN(g, totalTasks)
		return p, nil, err
	}
	return nil, nil, fmt.Errorf("core: unknown policy %q", kind)
}

// RenderScene renders a named scene workload with the given options,
// producing the graphics traces a Job consumes.
func RenderScene(name string, opts render.Options) (*render.Result, error) {
	f, err := scene.ByName(name)
	if err != nil {
		return nil, err
	}
	return render.RenderFrame(f, opts)
}

// RunOption tweaks a Job built by RunPair (observability knobs that do
// not change simulated behavior).
type RunOption func(*Job)

// WithTracer routes the run's structured trace events to t.
func WithTracer(t obs.Tracer) RunOption { return func(j *Job) { j.Tracer = t } }

// WithMetrics samples the interval metrics time series every interval
// cycles into Result.Metrics.
func WithMetrics(interval int64) RunOption { return func(j *Job) { j.MetricsInterval = interval } }

// WithMetricsSink streams each interval metrics sample to fn as it is
// taken (requires WithMetrics to set the cadence). fn runs on the
// simulation goroutine and must be cheap and internally synchronized.
func WithMetricsSink(fn func(obs.Sample)) RunOption { return func(j *Job) { j.MetricsSink = fn } }

// WithTimeline samples the per-task occupancy timeline every interval
// cycles into Result.Timeline.
func WithTimeline(interval int64) RunOption { return func(j *Job) { j.TimelineInterval = interval } }

// WithWatchdog sets the forward-progress watchdog window in cycles
// (0 = default window, negative disables).
func WithWatchdog(window int64) RunOption { return func(j *Job) { j.WatchdogWindow = window } }

// WithCycleBudget caps the run at n simulated cycles (0 = unlimited).
func WithCycleBudget(n int64) RunOption { return func(j *Job) { j.CycleBudget = n } }

// WithWorkers sets host-side SM stepping parallelism: 0 = auto
// (GOMAXPROCS), 1 or negative = the serial reference engine, N > 1 = the
// two-phase parallel engine. Results are bit-identical at every setting.
func WithWorkers(n int) RunOption { return func(j *Job) { j.Workers = n } }

// WithNoSkip disables event-driven core sleeping (the cycle-by-cycle
// oracle path); results are bit-identical either way.
func WithNoSkip() RunOption { return func(j *Job) { j.NoSkip = true } }

// RunPair is the one-call convenience: render sceneName (may be ""),
// build computeName (may be ""), and run them under policy on cfg.
func RunPair(cfg config.GPU, sceneName, computeName string, policy PolicyKind, opts render.Options, runOpts ...RunOption) (*Result, error) {
	return RunPairContext(context.Background(), cfg, sceneName, computeName, policy, opts, runOpts...)
}

// RunPairContext is RunPair with cooperative cancellation: when ctx is
// canceled or times out, the simulation stops and returns a canceled
// SimError with a crash dump of where the run stood.
func RunPairContext(ctx context.Context, cfg config.GPU, sceneName, computeName string, policy PolicyKind, opts render.Options, runOpts ...RunOption) (*Result, error) {
	job := Job{GPU: cfg, Policy: policy}
	for _, o := range runOpts {
		o(&job)
	}
	if sceneName != "" {
		res, err := RenderScene(sceneName, opts)
		if err != nil {
			return nil, err
		}
		job.Graphics = res
		job.SceneName = sceneName
		job.RenderOpts = opts
	}
	if computeName != "" {
		w, err := compute.ByName(computeName, ComputeStreamBase)
		if err != nil {
			return nil, err
		}
		job.Compute = w
		job.ComputeName = computeName
	}
	return job.RunContext(ctx)
}
