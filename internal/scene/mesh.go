// Package scene builds the paper's six rendering workloads as
// deterministic procedural scenes: Sponza (basic and PBR variants),
// Pistol (PBR, eight maps), Planets (instanced, texture array),
// Platformer (toon), and Material testers. Geometry, textures, cameras,
// and lights are self-contained stand-ins for the Godot / Khronos assets
// with the same structural workload properties.
package scene

import (
	"crisp/internal/geom"
	"crisp/internal/gmath"
)

// Plane builds a subdivided XZ plane centered at the origin with the given
// UV tiling (tiling > 1 makes distant texels minify, exercising mips).
func Plane(width, depth float32, segs int, uvTile float32) *geom.Mesh {
	if segs < 1 {
		segs = 1
	}
	m := &geom.Mesh{}
	for z := 0; z <= segs; z++ {
		for x := 0; x <= segs; x++ {
			fx := float32(x)/float32(segs) - 0.5
			fz := float32(z)/float32(segs) - 0.5
			m.Verts = append(m.Verts, geom.Vertex{
				Pos: gmath.V3(fx*width, 0, fz*depth),
				Nrm: gmath.V3(0, 1, 0),
				UV:  gmath.Vec2{X: (fx + 0.5) * uvTile, Y: (fz + 0.5) * uvTile},
			})
		}
	}
	stride := uint32(segs + 1)
	for z := 0; z < segs; z++ {
		for x := 0; x < segs; x++ {
			a := uint32(z)*stride + uint32(x)
			b := a + 1
			c := a + stride
			d := c + 1
			m.Idx = append(m.Idx, a, c, b, b, c, d)
		}
	}
	return m
}

// Box builds an axis-aligned box with per-face normals and unit UVs.
func Box(sx, sy, sz float32) *geom.Mesh {
	hx, hy, hz := sx/2, sy/2, sz/2
	type face struct {
		n          gmath.Vec3
		a, b, c, d gmath.Vec3
	}
	faces := []face{
		{gmath.V3(0, 0, 1), gmath.V3(-hx, -hy, hz), gmath.V3(hx, -hy, hz), gmath.V3(hx, hy, hz), gmath.V3(-hx, hy, hz)},
		{gmath.V3(0, 0, -1), gmath.V3(hx, -hy, -hz), gmath.V3(-hx, -hy, -hz), gmath.V3(-hx, hy, -hz), gmath.V3(hx, hy, -hz)},
		{gmath.V3(1, 0, 0), gmath.V3(hx, -hy, hz), gmath.V3(hx, -hy, -hz), gmath.V3(hx, hy, -hz), gmath.V3(hx, hy, hz)},
		{gmath.V3(-1, 0, 0), gmath.V3(-hx, -hy, -hz), gmath.V3(-hx, -hy, hz), gmath.V3(-hx, hy, hz), gmath.V3(-hx, hy, -hz)},
		{gmath.V3(0, 1, 0), gmath.V3(-hx, hy, hz), gmath.V3(hx, hy, hz), gmath.V3(hx, hy, -hz), gmath.V3(-hx, hy, -hz)},
		{gmath.V3(0, -1, 0), gmath.V3(-hx, -hy, -hz), gmath.V3(hx, -hy, -hz), gmath.V3(hx, -hy, hz), gmath.V3(-hx, -hy, hz)},
	}
	m := &geom.Mesh{}
	for _, f := range faces {
		base := uint32(len(m.Verts))
		uvs := [4]gmath.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
		for i, p := range [4]gmath.Vec3{f.a, f.b, f.c, f.d} {
			m.Verts = append(m.Verts, geom.Vertex{Pos: p, Nrm: f.n, UV: uvs[i]})
		}
		m.Idx = append(m.Idx, base, base+1, base+2, base, base+2, base+3)
	}
	return m
}

// UVSphere builds a latitude/longitude sphere of the given radius.
func UVSphere(radius float32, slices, stacks int) *geom.Mesh {
	if slices < 3 {
		slices = 3
	}
	if stacks < 2 {
		stacks = 2
	}
	m := &geom.Mesh{}
	for st := 0; st <= stacks; st++ {
		phi := float32(st) / float32(stacks) * 3.14159265
		for sl := 0; sl <= slices; sl++ {
			theta := float32(sl) / float32(slices) * 2 * 3.14159265
			n := gmath.V3(
				gmath.Sin(phi)*gmath.Cos(theta),
				gmath.Cos(phi),
				gmath.Sin(phi)*gmath.Sin(theta),
			)
			m.Verts = append(m.Verts, geom.Vertex{
				Pos: n.Scale(radius),
				Nrm: n,
				UV:  gmath.Vec2{X: float32(sl) / float32(slices), Y: float32(st) / float32(stacks)},
			})
		}
	}
	stride := uint32(slices + 1)
	for st := 0; st < stacks; st++ {
		for sl := 0; sl < slices; sl++ {
			a := uint32(st)*stride + uint32(sl)
			b := a + 1
			c := a + stride
			d := c + 1
			m.Idx = append(m.Idx, a, b, c, b, d, c)
		}
	}
	return m
}

// Cylinder builds a vertical cylinder (no caps) — Sponza's columns.
func Cylinder(radius, height float32, segs int) *geom.Mesh {
	if segs < 3 {
		segs = 3
	}
	m := &geom.Mesh{}
	for y := 0; y <= 1; y++ {
		for s := 0; s <= segs; s++ {
			theta := float32(s) / float32(segs) * 2 * 3.14159265
			n := gmath.V3(gmath.Cos(theta), 0, gmath.Sin(theta))
			m.Verts = append(m.Verts, geom.Vertex{
				Pos: gmath.V3(n.X*radius, float32(y)*height, n.Z*radius),
				Nrm: n,
				UV:  gmath.Vec2{X: float32(s) / float32(segs) * 2, Y: float32(y) * 2},
			})
		}
	}
	stride := uint32(segs + 1)
	for s := 0; s < segs; s++ {
		a := uint32(s)
		b := a + 1
		c := a + stride
		d := c + 1
		m.Idx = append(m.Idx, a, c, b, b, c, d)
	}
	return m
}

// Merge concatenates meshes after transforming each by its matrix.
func Merge(parts []*geom.Mesh, xf []gmath.Mat4) *geom.Mesh {
	m := &geom.Mesh{}
	for i, p := range parts {
		base := uint32(len(m.Verts))
		for _, v := range p.Verts {
			pos := xf[i].MulVec(gmath.V4(v.Pos.X, v.Pos.Y, v.Pos.Z, 1))
			nrm := xf[i].MulDir(v.Nrm).Normalize()
			m.Verts = append(m.Verts, geom.Vertex{Pos: pos.XYZ(), Nrm: nrm, UV: v.UV, Layer: v.Layer})
		}
		for _, ix := range p.Idx {
			m.Idx = append(m.Idx, base+ix)
		}
	}
	return m
}
