package scene

import (
	"fmt"
	"sort"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/render"
	"crisp/internal/shader"
	"crisp/internal/texture"
)

// Names lists the built-in rendering workloads, matching the paper's
// abbreviations: SPL (Sponza basic), SPH (Sponza PBR), PT (Pistol),
// IT (Planets), PL (Platformer), MT (Material testers).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var registry = map[string]func() *render.FrameDef{
	"SPL": SponzaBasic,
	"SPH": SponzaPBR,
	"PT":  Pistol,
	"IT":  Planets,
	"PL":  Platformer,
	"MT":  MaterialTesters,
}

// ByName builds a workload by its paper abbreviation.
func ByName(name string) (*render.FrameDef, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scene: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// Aspect is the width:height ratio all scenes are authored for (16:9).
const Aspect = float32(16.0 / 9.0)

func defaultLight(camPos gmath.Vec3) shader.Light {
	return shader.Light{
		Dir:       gmath.V3(0.4, 0.8, 0.3).Normalize(),
		Color:     gmath.V3(1.0, 0.96, 0.9),
		Ambient:   gmath.V3(0.18, 0.19, 0.22),
		CameraPos: camPos,
	}
}

func camera(pos, target gmath.Vec3, fovDeg float32) render.Camera {
	return render.Camera{
		View: gmath.LookAt(pos, target, gmath.V3(0, 1, 0)),
		Proj: gmath.Perspective(fovDeg*3.14159265/180, Aspect, 0.1, 400),
		Pos:  pos,
	}
}

// pbrMaps builds an eight-map PBR set with mixed formats, as the paper's
// PBR workloads use (maps saved in different formats, all sampled).
// base sizes the albedo/normal maps; secondary maps are half size.
func pbrMaps(prefix string, seed int64, base int) *shader.PBRMaps {
	half := base / 2
	return &shader.PBRMaps{
		Albedo:     texture.Noise(prefix+".albedo", texture.FormatRGBA8, base, base, 1, seed),
		Normal:     texture.NoiseFine(prefix+".normal", texture.FormatRGBA8, base, base, 1, seed+1),
		Metallic:   texture.Noise(prefix+".metallic", texture.FormatR8, half, half, 1, seed+2),
		Roughness:  texture.Noise(prefix+".roughness", texture.FormatR8, half, half, 1, seed+3),
		AO:         texture.Noise(prefix+".ao", texture.FormatR8, half, half, 1, seed+4),
		Irradiance: texture.Gradient(prefix+".irradiance", texture.FormatRGBA16F, 128, 128, gmath.V4(0.3, 0.35, 0.5, 1), gmath.V4(0.9, 0.8, 0.6, 1)),
		Prefilter:  texture.NoiseFine(prefix+".prefilter", texture.FormatRGBA16F, half, half, 1, seed+5),
		BRDF:       texture.Gradient(prefix+".brdf", texture.FormatRG8, 128, 128, gmath.V4(1, 0, 0, 1), gmath.V4(0, 1, 0, 1)),
	}
}

// SponzaBasic is SPL: the Khronos-samples Sponza with basic single-texture
// shading — few texture lines in L2, high hit rate (paper Fig. 11b).
func SponzaBasic() *render.FrameDef { return sponza("SPL", false) }

// SponzaPBR is SPH: the Godot Sponza variant shaded with PBR — the
// texture-heavy L2 profile (paper Fig. 11a).
func SponzaPBR() *render.FrameDef { return sponza("SPH", true) }

// sponza builds the shared atrium geometry: tiled floor, side walls, two
// colonnade rows, an upper gallery, and a hanging banner.
func sponza(name string, pbr bool) *render.FrameDef {
	camPos := gmath.V3(-14, 3.2, 0.5)
	f := &render.FrameDef{
		Name:  name,
		Cam:   camera(camPos, gmath.V3(10, 2.5, 0), 65),
		Light: defaultLight(camPos),
	}

	mat := func(label string, seed int64) *render.Material {
		if pbr {
			return &render.Material{Kind: render.MatPBR, PBR: pbrMaps(name+"."+label, seed, 512)}
		}
		// The basic-shaded (Khronos) variant ships block-compressed
		// albedo textures, which is why its L2 holds so few texture
		// lines (paper Figs. 10-11).
		return &render.Material{
			Kind:   render.MatBasic,
			Albedo: texture.Noise(name+"."+label+".albedo", texture.FormatBC1, 256, 256, 1, seed),
		}
	}

	f.Draws = append(f.Draws, render.DrawCall{
		Name: name + ".floor", Mesh: Plane(44, 22, 22, 12),
		Model: gmath.Identity(), Mat: mat("floor", 11),
	})

	wall := Box(44, 10, 0.8)
	for i, z := range []float32{-10.5, 10.5} {
		f.Draws = append(f.Draws, render.DrawCall{
			Name: fmt.Sprintf("%s.wall%d", name, i), Mesh: wall,
			Model: gmath.Translate(gmath.V3(0, 5, z)), Mat: mat(fmt.Sprintf("wall%d", i), 23+int64(i)),
		})
	}

	col := Cylinder(0.6, 7, 14)
	for r, z := range []float32{-6.5, 6.5} {
		var parts []*geom.Mesh
		var xfs []gmath.Mat4
		for i := 0; i < 8; i++ {
			parts = append(parts, col)
			xfs = append(xfs, gmath.Translate(gmath.V3(-17.5+float32(i)*5, 0, z)))
		}
		f.Draws = append(f.Draws, render.DrawCall{
			Name: fmt.Sprintf("%s.columns%d", name, r), Mesh: Merge(parts, xfs),
			Model: gmath.Identity(), Mat: mat(fmt.Sprintf("columns%d", r), 37+int64(r)),
		})
	}

	arch := Box(4, 2.4, 1.2)
	var archParts []*geom.Mesh
	var archXfs []gmath.Mat4
	for i := 0; i < 7; i++ {
		archParts = append(archParts, arch)
		archXfs = append(archXfs, gmath.Translate(gmath.V3(-15+float32(i)*5, 8.2, 0)))
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: name + ".gallery", Mesh: Merge(archParts, archXfs),
		Model: gmath.Identity(), Mat: mat("gallery", 53),
	})

	f.Draws = append(f.Draws, render.DrawCall{
		Name: name + ".banner", Mesh: Plane(3, 5, 4, 1),
		Model: gmath.Translate(gmath.V3(2, 4.5, 0)).Mul(gmath.RotateX(3.14159265 / 2)),
		Mat:   mat("banner", 71),
	})
	return f
}

// Pistol is PT: an antique metallic pistol rendered with PBR and eight
// texture maps — the texture-dominated L2 footprint of Fig. 11a.
func Pistol() *render.FrameDef {
	// Close-up framing, as in the pbrtexture sample: the pistol fills
	// the frame, so its eight high-resolution maps are sampled near
	// mip 0 and dominate the L2 (Fig. 11a).
	camPos := gmath.V3(0.1, 0.4, 0.85)
	f := &render.FrameDef{
		Name:  "PT",
		Cam:   camera(camPos, gmath.V3(0, 0.28, 0), 50),
		Light: defaultLight(camPos),
	}
	maps := pbrMaps("PT.metal", 101, 1024)
	mat := &render.Material{Kind: render.MatPBR, PBR: maps}

	barrel := Cylinder(0.06, 0.75, 18)
	slide := Box(0.82, 0.16, 0.14)
	grip := Box(0.16, 0.42, 0.12)
	guard := Box(0.2, 0.04, 0.1)
	sight := Box(0.03, 0.04, 0.03)

	pistol := Merge(
		[]*geom.Mesh{barrel, slide, grip, guard, sight},
		[]gmath.Mat4{
			gmath.Translate(gmath.V3(0.05, 0.28, 0)).Mul(gmath.RotateZ(-3.14159265 / 2)),
			gmath.Translate(gmath.V3(0.05, 0.38, 0)),
			gmath.Translate(gmath.V3(-0.3, 0.08, 0)).Mul(gmath.RotateZ(0.25)),
			gmath.Translate(gmath.V3(-0.18, 0.18, 0)),
			gmath.Translate(gmath.V3(0.4, 0.48, 0)),
		},
	)
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PT.pistol", Mesh: pistol,
		Model: gmath.RotateY(0.6), Mat: mat,
	})

	// Pedestal below the pistol, basic-shaded (the PBR workload includes
	// several non-PBR draws, as the paper's footnote notes).
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PT.pedestal", Mesh: Box(1.4, 0.1, 1.4),
		Model: gmath.Translate(gmath.V3(0, -0.1, 0)),
		Mat: &render.Material{
			Kind:   render.MatBasic,
			Albedo: texture.Checker("PT.pedestal.albedo", texture.FormatRGBA8, 256, 256, gmath.V4(0.25, 0.22, 0.2, 1), gmath.V4(0.45, 0.42, 0.4, 1), 8),
		},
	})
	return f
}

// Planets is IT: instanced drawing of a high-poly sphere; every asteroid
// is one instance, the texture is a layered array indexed by a vertex
// attribute — temporal locality on shared vertex data, streaming access on
// per-instance data. Vertex-bound: few fragments per vertex batch.
func Planets() *render.FrameDef {
	camPos := gmath.V3(0, 6, 30)
	f := &render.FrameDef{
		Name:  "IT",
		Cam:   camera(camPos, gmath.V3(0, 0, 0), 55),
		Light: defaultLight(camPos),
	}
	layered := texture.Noise("IT.rock", texture.FormatRGBA8, 256, 256, 8, 211)
	asteroid := UVSphere(1, 24, 18)

	var insts []render.Instance
	// A ring of asteroids; deterministic placement.
	const n = 48
	for i := 0; i < n; i++ {
		ang := float32(i) / n * 2 * 3.14159265
		rad := 14 + 4*gmath.Sin(float32(i)*2.39996) // golden-angle jitter
		scale := 0.5 + 0.45*gmath.Cos(float32(i)*1.7)
		pos := gmath.V3(rad*gmath.Cos(ang), 2.5*gmath.Sin(float32(i)*0.9), rad*gmath.Sin(ang)-5)
		model := gmath.Translate(pos).Mul(gmath.ScaleUniform(scale)).Mul(gmath.RotateY(float32(i)))
		insts = append(insts, render.Instance{Model: model, Layer: float32(i % 8)})
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "IT.asteroids", Mesh: asteroid,
		Mat:       &render.Material{Kind: render.MatPlanet, Layered: layered},
		Instances: insts,
	})

	// The central planet: one big instance.
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "IT.planet", Mesh: UVSphere(1, 32, 24),
		Mat: &render.Material{Kind: render.MatPlanet, Layered: layered},
		Instances: []render.Instance{
			{Model: gmath.Translate(gmath.V3(0, 0, -5)).Mul(gmath.ScaleUniform(7)), Layer: 3},
		},
	})
	return f
}

// Platformer is PL: the Godot platformer level — ground, platforms, ramps
// and pillars with stylized toon shading.
func Platformer() *render.FrameDef {
	camPos := gmath.V3(-10, 7, 14)
	f := &render.FrameDef{
		Name:  "PL",
		Cam:   camera(camPos, gmath.V3(2, 1, 0), 55),
		Light: defaultLight(camPos),
	}
	ground := &render.Material{
		Kind:   render.MatToon,
		Albedo: texture.Checker("PL.ground", texture.FormatRGBA8, 512, 512, gmath.V4(0.3, 0.6, 0.3, 1), gmath.V4(0.25, 0.5, 0.28, 1), 16),
	}
	block := &render.Material{
		Kind:   render.MatToon,
		Albedo: texture.Noise("PL.block", texture.FormatRGBA8, 256, 256, 1, 307),
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PL.ground", Mesh: Plane(40, 40, 16, 10),
		Model: gmath.Identity(), Mat: ground,
	})
	plat := Box(4, 0.6, 4)
	var parts []*geom.Mesh
	var xfs []gmath.Mat4
	heights := []float32{1.2, 2.4, 3.6, 4.8, 3.0, 1.8}
	for i, h := range heights {
		parts = append(parts, plat)
		xfs = append(xfs, gmath.Translate(gmath.V3(-8+float32(i)*4.5, h, float32(i%3)*3-3)))
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PL.platforms", Mesh: Merge(parts, xfs),
		Model: gmath.Identity(), Mat: block,
	})
	pillar := Cylinder(0.5, 6, 10)
	var pparts []*geom.Mesh
	var pxfs []gmath.Mat4
	for i := 0; i < 5; i++ {
		pparts = append(pparts, pillar)
		pxfs = append(pxfs, gmath.Translate(gmath.V3(-10+float32(i)*5.5, 0, -8)))
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PL.pillars", Mesh: Merge(pparts, pxfs),
		Model: gmath.Identity(), Mat: block,
	})
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "PL.player", Mesh: UVSphere(0.6, 12, 10),
		Model: gmath.Translate(gmath.V3(-8, 2.1, -3)), Mat: block,
	})
	return f
}

// MaterialTesters is MT: the Godot material-tester scene — a row of
// spheres, each with its own albedo/roughness/normal map set.
func MaterialTesters() *render.FrameDef {
	camPos := gmath.V3(0, 2.2, 9)
	f := &render.FrameDef{
		Name:  "MT",
		Cam:   camera(camPos, gmath.V3(0, 1.2, 0), 50),
		Light: defaultLight(camPos),
	}
	ball := UVSphere(1, 28, 20)
	for i := 0; i < 5; i++ {
		seed := int64(401 + i*13)
		mat := &render.Material{
			Kind:      render.MatMaterial,
			Albedo:    texture.Noise(fmt.Sprintf("MT.m%d.albedo", i), texture.FormatRGBA8, 512, 512, 1, seed),
			Roughness: texture.Noise(fmt.Sprintf("MT.m%d.rough", i), texture.FormatR8, 256, 256, 1, seed+1),
			Normal:    texture.Noise(fmt.Sprintf("MT.m%d.normal", i), texture.FormatRGBA8, 256, 256, 1, seed+2),
		}
		f.Draws = append(f.Draws, render.DrawCall{
			Name: fmt.Sprintf("MT.ball%d", i), Mesh: ball,
			Model: gmath.Translate(gmath.V3(-5+float32(i)*2.5, 1.2, 0)), Mat: mat,
		})
	}
	f.Draws = append(f.Draws, render.DrawCall{
		Name: "MT.floor", Mesh: Plane(20, 10, 8, 6),
		Model: gmath.Identity(),
		Mat: &render.Material{
			Kind:   render.MatBasic,
			Albedo: texture.Checker("MT.floor.albedo", texture.FormatRGBA8, 512, 512, gmath.V4(0.8, 0.8, 0.82, 1), gmath.V4(0.3, 0.3, 0.32, 1), 24),
		},
	})
	return f
}
