package scene

import (
	"testing"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/render"
)

func TestNamesAndRegistry(t *testing.T) {
	names := Names()
	want := []string{"IT", "MT", "PL", "PT", "SPH", "SPL"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown scene")
	}
}

func TestMeshGenerators(t *testing.T) {
	cases := map[string]*geom.Mesh{
		"plane":    Plane(10, 10, 4, 2),
		"box":      Box(1, 2, 3),
		"sphere":   UVSphere(1, 12, 8),
		"cylinder": Cylinder(0.5, 2, 8),
	}
	for name, m := range cases {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Triangles() == 0 {
			t.Errorf("%s has no triangles", name)
		}
		// Normals are unit length.
		for i, v := range m.Verts {
			l := v.Nrm.Len()
			if l < 0.99 || l > 1.01 {
				t.Errorf("%s vertex %d normal length %v", name, i, l)
				break
			}
		}
	}
	if got := Plane(1, 1, 4, 1).Triangles(); got != 32 {
		t.Errorf("plane(4 segs) = %d tris, want 32", got)
	}
	if got := Box(1, 1, 1).Triangles(); got != 12 {
		t.Errorf("box = %d tris, want 12", got)
	}
}

func TestMergeTransforms(t *testing.T) {
	a := Box(1, 1, 1)
	m := Merge([]*geom.Mesh{a, a}, []gmath.Mat4{
		gmath.Identity(),
		gmath.Translate(gmath.V3(10, 0, 0)),
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Verts) != 2*len(a.Verts) || len(m.Idx) != 2*len(a.Idx) {
		t.Fatal("merge sizes wrong")
	}
	// Second copy is translated.
	off := m.Verts[len(a.Verts)].Pos.X - m.Verts[0].Pos.X
	if off != 10 {
		t.Errorf("translated copy offset = %v", off)
	}
}

// renderSmall renders a scene at tiny resolution for structural checks.
func renderSmall(t *testing.T, name string) *render.Result {
	t.Helper()
	f, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := render.DefaultOptions()
	opts.W, opts.H = 128, 72
	res, err := render.RenderFrame(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllScenesRenderAndCover(t *testing.T) {
	for _, name := range Names() {
		res := renderSmall(t, name)
		cov := float64(res.CoveredPixels()) / float64(res.W*res.H)
		minCov := 0.2
		if name == "IT" {
			minCov = 0.08 // space scene: mostly empty sky by design
		}
		if cov < minCov {
			t.Errorf("%s covers only %.0f%% of the frame", name, cov*100)
		}
		for _, st := range res.Streams {
			for _, k := range st.Kernels {
				if err := k.Validate(); err != nil {
					t.Errorf("%s kernel %q: %v", name, k.Name, err)
				}
			}
		}
	}
}

func TestPlanetsIsVertexBound(t *testing.T) {
	res := renderSmall(t, "IT")
	// IT's defining property: many vertices, few fragments per batch.
	var shaded int
	for _, m := range res.Metrics {
		shaded += m.ShadedVertices
	}
	if shaded < res.Raster.Fragments {
		t.Errorf("IT should be vertex-bound: %d verts vs %d frags", shaded, res.Raster.Fragments)
	}
	if res.Metrics[0].Instances < 8 {
		t.Errorf("IT asteroids should be instanced, got %d", res.Metrics[0].Instances)
	}
}

func TestSponzaVariantsShareGeometry(t *testing.T) {
	spl := renderSmall(t, "SPL")
	sph := renderSmall(t, "SPH")
	if spl.Raster.Triangles != sph.Raster.Triangles {
		t.Errorf("SPL/SPH triangles differ: %d vs %d", spl.Raster.Triangles, sph.Raster.Triangles)
	}
	// PBR executes far more work per fragment.
	insts := func(r *render.Result) int {
		n := 0
		for _, s := range r.Streams {
			for _, k := range s.Kernels {
				n += k.InstCount()
			}
		}
		return n
	}
	if insts(sph) < 2*insts(spl) {
		t.Errorf("SPH insts %d should dwarf SPL %d", insts(sph), insts(spl))
	}
}

func TestPistolIsTextureHeavy(t *testing.T) {
	pt := renderSmall(t, "PT")
	spl := renderSmall(t, "SPL")
	texRate := func(r *render.Result) float64 {
		var tex, frag int64
		for _, m := range r.Metrics {
			tex += m.TexWarpInsts
			frag += int64(m.Fragments)
		}
		if frag == 0 {
			return 0
		}
		return float64(tex) / float64(frag)
	}
	if texRate(pt) <= texRate(spl) {
		t.Errorf("PT TEX rate %.3f should exceed SPL %.3f", texRate(pt), texRate(spl))
	}
}

func TestScenesDeterministic(t *testing.T) {
	a := renderSmall(t, "PL")
	b := renderSmall(t, "PL")
	if a.Raster != b.Raster {
		t.Error("PL renders differ between runs")
	}
	ma, mb := a.MeanColor(), b.MeanColor()
	if ma != mb {
		t.Errorf("PL mean colors differ: %v vs %v", ma, mb)
	}
}
