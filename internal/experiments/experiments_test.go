package experiments

// Shape tests: each experiment must reproduce the *direction and rough
// magnitude* of the corresponding paper claim at the quick scale. The
// default-scale numbers are produced by bench_test.go and cmd/crispbench.

import (
	"strings"
	"testing"

	"crisp/internal/core"
)

var sc = QuickScale

func TestTable2Render(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"JetsonOrin", "RTX3070", "14", "46", "LPDDR5, 200GB/s", "GDDR6, 448GB/s", "1300", "1132"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFrameCaching(t *testing.T) {
	a, err := Frame("PL", sc.W2K, sc.H2K, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frame("PL", sc.W2K, sc.H2K, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Frame did not memoize")
	}
	c, err := Frame("PL", sc.W2K, sc.H2K, false)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("LoD setting must key the cache")
	}
}

func TestScaleRes(t *testing.T) {
	w2, h2 := DefaultScale.Res("2K")
	w4, h4 := DefaultScale.Res("4K")
	if w4*h4 != 4*w2*h2 {
		t.Errorf("4K class must be exactly 4x the pixels: %dx%d vs %dx%d", w2, h2, w4, h4)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Near-perfect correlation; simulator over-counts slightly (warp
	// rounding), the paper's bottom-left error band.
	if r.R < 0.99 {
		t.Errorf("Fig3 r = %v, want ≥0.99", r.R)
	}
	if r.MeanRelErr < 0 || r.MeanRelErr > 0.5 {
		t.Errorf("Fig3 mean over-count = %v, want small positive", r.MeanRelErr)
	}
	if r.Points < 20 {
		t.Errorf("Fig3 points = %d", r.Points)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 12 frames")
	}
	r, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.R < 0.7 {
		t.Errorf("Fig6 correlation = %v, want strong (paper 0.948)", r.R)
	}
	// Simulated times read high for most points (lack of driver opts).
	if r.SimHighFraction < 0.8 {
		t.Errorf("simulator reads high on only %v of points", r.SimHighFraction)
	}
	// IT is vertex-bound: 4x pixels cost well under 2x; some scene
	// scales far more.
	if r.ITScaling > 1.7 {
		t.Errorf("IT 4K/2K = %v, want ≈1 (vertex-bound)", r.ITScaling)
	}
	if r.MaxScaling < r.ITScaling {
		t.Errorf("max scaling %v below IT %v", r.MaxScaling, r.ITScaling)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Level0Distinct != 4 || r.Level1Distinct != 1 {
		t.Errorf("mip merge %d→%d, want 4→1", r.Level0Distinct, r.Level1Distinct)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(sc)
	if err != nil {
		t.Fatal(err)
	}
	// LoD-off must be far less accurate than LoD-on (paper: 219% vs 33%,
	// a 6.6x reduction; the worst drawcall inflates up to 6x).
	if r.MAPEOn > 0.8 {
		t.Errorf("LoD-on MAPE = %v, want well under 1", r.MAPEOn)
	}
	if r.Improvement < 3 {
		t.Errorf("MAPE reduction = %vx, want multiple-fold", r.Improvement)
	}
	if r.MaxInflation < 3 {
		t.Errorf("max LoD-off inflation = %vx, want several-fold", r.MaxInflation)
	}
}

func TestFig10Shape(t *testing.T) {
	// The lines-per-CTA histogram is resolution-sensitive (mip levels
	// shift with pixel density), so this check runs at the same default
	// scale as the harness.
	r, err := Fig10(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode < 2 || r.Mode > 8 {
		t.Errorf("mode = %d, want the paper's 3-5 neighborhood", r.Mode)
	}
	if r.MeanMax <= r.MeanMin {
		t.Errorf("per-drawcall means should vary: %v..%v", r.MeanMin, r.MeanMax)
	}
	if r.Histogram.Total() < 10 {
		t.Errorf("histogram too small: %d CTAs", r.Histogram.Total())
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(sc)
	if err != nil {
		t.Fatal(err)
	}
	// PBR fills the L2 with texture lines; basic shading does not.
	if r.TexFraction["PT"] <= r.TexFraction["SPL"] {
		t.Errorf("texture share PT %v should exceed SPL %v",
			r.TexFraction["PT"], r.TexFraction["SPL"])
	}
	if r.TexFraction["PT"] < 0.3 {
		t.Errorf("PT texture share = %v, want paper's ≈44-60%% region", r.TexFraction["PT"])
	}
	// Basic-shaded Sponza hits better than the PBR Pistol.
	if r.L2Hit["SPL"] <= r.L2Hit["PT"] {
		t.Errorf("L2 hit SPL %v should exceed PT %v", r.L2Hit["SPL"], r.L2Hit["PT"])
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("27 concurrent simulations")
	}
	r, err := Fig12(sc)
	if err != nil {
		t.Fatal(err)
	}
	// EVEN is the fastest of the three overall.
	if r.GeoMean[core.PolicyEven] <= r.GeoMean[core.PolicyMPS] {
		t.Errorf("EVEN %v should beat MPS %v", r.GeoMean[core.PolicyEven], r.GeoMean[core.PolicyMPS])
	}
	if r.GeoMean[core.PolicyEven] <= r.GeoMean[core.PolicyWarpedSlicer] {
		t.Errorf("EVEN %v should beat Dynamic %v", r.GeoMean[core.PolicyEven], r.GeoMean[core.PolicyWarpedSlicer])
	}
	// NN pairings show the highest concurrency speedup.
	if r.BestNNSpeedup < 1.05 {
		t.Errorf("best NN speedup = %v, want >1", r.BestNNSpeedup)
	}
	// The sampling overhead hurts VIO (many small kernels) most.
	worstVIO, worstOther := 10.0, 10.0
	for _, p := range r.Pairs {
		d := p.Norm[core.PolicyWarpedSlicer]
		if p.Compute == "VIO" {
			if d < worstVIO {
				worstVIO = d
			}
		} else if d < worstOther {
			worstOther = d
		}
	}
	if worstVIO >= worstOther {
		t.Errorf("Dynamic should hurt VIO (%v) more than others (%v)", worstVIO, worstOther)
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples < 5 {
		t.Fatalf("timeline samples = %d", r.Samples)
	}
	if r.PeakWarps <= 0 {
		t.Fatal("no occupancy observed")
	}
	// Register-limited dips: occupancy while both tasks run falls well
	// below the peak.
	if float64(r.MinBusyWarps) > 0.8*float64(r.PeakWarps) {
		t.Errorf("no occupancy dips: min %d vs peak %d", r.MinBusyWarps, r.PeakWarps)
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("18 concurrent simulations")
	}
	r, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	// TAP matches MPS overall and beats MiG (bandwidth-bound pairs).
	if r.GeoMean[core.PolicyTAP] < 0.85 {
		t.Errorf("TAP %v should roughly match MPS", r.GeoMean[core.PolicyTAP])
	}
	if r.GeoMean[core.PolicyTAP] <= r.GeoMean[core.PolicyMiG] {
		t.Errorf("TAP %v should beat MiG %v", r.GeoMean[core.PolicyTAP], r.GeoMean[core.PolicyMiG])
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15(sc)
	if err != nil {
		t.Fatal(err)
	}
	// HOLO is compute-bound: TAP hands the L2 to rendering.
	if r.RenderFraction < 0.85 {
		t.Errorf("rendering L2 share = %v, want dominant", r.RenderFraction)
	}
}

func TestCaseStudyAsyncUpscale(t *testing.T) {
	r, err := CaseStudyAsyncUpscale(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Tensor-heavy upscaling complements FP/TEX-heavy rendering:
	// intra-SM sharing must beat dedicating whole SMs.
	if r.Norm[core.PolicyEven] <= 1.0 {
		t.Errorf("EVEN %v should beat MPS for the DLSS-analog pairing", r.Norm[core.PolicyEven])
	}
	// The QoS variant keeps throughput in the same neighborhood.
	if r.Norm[core.PolicyPriority] < 0.9*r.Norm[core.PolicyEven] {
		t.Errorf("Priority %v far below EVEN %v", r.Norm[core.PolicyPriority], r.Norm[core.PolicyEven])
	}
}

func TestCaseStudyQoS(t *testing.T) {
	r, err := CaseStudyQoS(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The priority policy must get the frame ready no later than plain
	// EVEN sharing.
	if r.FrameDone[core.PolicyPriority] > r.FrameDone[core.PolicyEven] {
		t.Errorf("frame ready under Priority (%d) later than EVEN (%d)",
			r.FrameDone[core.PolicyPriority], r.FrameDone[core.PolicyEven])
	}
	for _, pol := range []core.PolicyKind{core.PolicyMPS, core.PolicyEven, core.PolicyPriority} {
		if r.FrameDone[pol] <= 0 || r.FrameDone[pol] > r.Makespan[pol] {
			t.Errorf("%s: frame-ready %d outside (0, makespan %d]", pol, r.FrameDone[pol], r.Makespan[pol])
		}
	}
}

func TestFig3SweepPrefers96(t *testing.T) {
	r, err := Fig3Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 96 {
		t.Errorf("best batch size = %d, want 96 (paper's tuning result)", r.Best)
	}
	if r.MAPE[96] >= r.MAPE[24] {
		t.Errorf("batch-96 MAPE %v should beat batch-24 %v", r.MAPE[96], r.MAPE[24])
	}
}

// TestGridScenarioAxis pins the sweep decomposition order with scenarios in
// play: pair points first in GPU-major order, then scenario × policy points
// per GPU, with empty scenario names skipped — the deterministic task-list
// contract crispd's merged digest depends on.
func TestGridScenarioAxis(t *testing.T) {
	g := Grid{
		GPUs:      []string{"JetsonOrin"},
		Computes:  []string{"VIO"},
		Policies:  []string{"EVEN", "MPS"},
		Scenarios: []string{"n-way-fair", ""},
	}
	pts := g.Points()
	want := []GridPoint{
		{GPU: "JetsonOrin", Compute: "VIO", Policy: "EVEN"},
		{GPU: "JetsonOrin", Compute: "VIO", Policy: "MPS"},
		{GPU: "JetsonOrin", Scenario: "n-way-fair", Policy: "EVEN"},
		{GPU: "JetsonOrin", Scenario: "n-way-fair", Policy: "MPS"},
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	// A scenario-only grid expands too (no pair axes at all).
	only := Grid{Scenarios: []string{"vr-frame-deadline"}}
	if pts := only.Points(); len(pts) != 1 || pts[0].Scenario != "vr-frame-deadline" {
		t.Errorf("scenario-only grid: %+v", pts)
	}
}
