package experiments

import (
	"fmt"

	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/partition"
	"crisp/internal/stats"
)

// Fig12Pairs are the rendering×compute pairs used in the intra-SM study.
// The paper pairs its rendering workloads with VIO, HOLO, and NN; the
// three scenes here cover the fragment-heavy (PT), balanced (SPL), and
// toon/low-ALU (PL) regimes.
var Fig12Pairs = []string{"SPL", "PT", "PL"}

// PairPerf is one workload pair's performance under a set of policies,
// normalized to the baseline policy.
type PairPerf struct {
	Scene   string
	Compute string
	// Norm maps policy → performance relative to the baseline (higher
	// is better; baseline = 1).
	Norm map[core.PolicyKind]float64
	// Cycles maps policy → raw makespan.
	Cycles map[core.PolicyKind]int64
}

// runPairs evaluates each (scene, compute) pair under the policies,
// normalizing to baseline.
func runPairs(cfg config.GPU, scenes, computes []string, policies []core.PolicyKind, baseline core.PolicyKind, sc Scale) ([]PairPerf, *stats.Table, error) {
	header := []string{"pair"}
	for _, p := range policies {
		header = append(header, string(p))
	}
	t := &stats.Table{Header: header}
	var out []PairPerf
	for _, sn := range scenes {
		for _, cn := range computes {
			pp := PairPerf{Scene: sn, Compute: cn, Norm: map[core.PolicyKind]float64{}, Cycles: map[core.PolicyKind]int64{}}
			for _, pol := range policies {
				res, err := Simulate(cfg, sn, sc.W2K, sc.H2K, true, cn, pol)
				if err != nil {
					return nil, nil, fmt.Errorf("%s+%s under %s: %w", sn, cn, pol, err)
				}
				pp.Cycles[pol] = res.Cycles
			}
			base := pp.Cycles[baseline]
			if base == 0 {
				return nil, nil, fmt.Errorf("%s+%s: zero baseline cycles", sn, cn)
			}
			row := []string{sn + "+" + cn}
			for _, pol := range policies {
				pp.Norm[pol] = float64(base) / float64(pp.Cycles[pol])
				row = append(row, stats.F(pp.Norm[pol]))
			}
			t.AddRow(row...)
			out = append(out, pp)
		}
	}
	return out, t, nil
}

// Fig12Result is the warped-slicer study (paper Fig. 12) on the Jetson
// Orin: MPS-even vs static intra-SM EVEN vs warped-slicer Dynamic,
// normalized to MPS. The paper finds EVEN fastest overall, Dynamic
// penalized by per-launch sampling (worst for VIO's many small kernels),
// and the NN pairing the biggest concurrency winner.
type Fig12Result struct {
	Table *stats.Table
	Pairs []PairPerf
	// GeoMean maps policy → geometric-mean normalized performance.
	GeoMean map[core.PolicyKind]float64
	// BestNNSpeedup is the best EVEN speedup among NN pairs.
	BestNNSpeedup float64
}

// Fig12 runs the intra-SM partitioning study.
func Fig12(sc Scale) (*Fig12Result, error) {
	policies := []core.PolicyKind{core.PolicyMPS, core.PolicyEven, core.PolicyWarpedSlicer}
	pairs, table, err := runPairs(config.JetsonOrin(), Fig12Pairs, ComputeWorkloads, policies, core.PolicyMPS, sc)
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{Table: table, Pairs: pairs, GeoMean: map[core.PolicyKind]float64{}}
	for _, pol := range policies {
		var xs []float64
		for _, p := range pairs {
			xs = append(xs, p.Norm[pol])
		}
		out.GeoMean[pol] = stats.GeoMean(xs)
	}
	for _, p := range pairs {
		if p.Compute == "NN" && p.Norm[core.PolicyEven] > out.BestNNSpeedup {
			out.BestNNSpeedup = p.Norm[core.PolicyEven]
		}
	}
	return out, nil
}

// Fig13Result is the warped-slicer occupancy timeline for PT+VIO on the
// Orin (paper Fig. 13): per-task resident warps over time, with
// register-limited dips when the PBR fragment shader's 96-register
// footprint caps occupancy.
type Fig13Result struct {
	Table *stats.Table
	// PeakWarps is the maximum total resident warps observed.
	PeakWarps int
	// MinBusyWarps is the minimum total while both tasks were resident.
	MinBusyWarps int
	Samples      int
}

// Fig13 collects the occupancy timeline.
func Fig13(sc Scale) (*Fig13Result, error) {
	gfx, err := Frame("PT", sc.W2K, sc.H2K, true)
	if err != nil {
		return nil, err
	}
	comp, err := buildCompute("VIO")
	if err != nil {
		return nil, err
	}
	job := core.Job{
		GPU:              config.JetsonOrin(),
		Graphics:         gfx,
		Compute:          comp,
		Policy:           core.PolicyWarpedSlicer,
		TimelineInterval: 1024,
		Workers:          Workers,
		NoSkip:           NoSkip,
	}
	res, err := job.Run()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"cycle", "render-warps", "compute-warps"}}
	out := &Fig13Result{Table: t, MinBusyWarps: 1 << 30}
	for _, s := range res.Timeline.Samples {
		g := s.WarpsByStream[partition.TaskGraphics]
		c := s.WarpsByStream[partition.TaskCompute]
		t.AddRow(fmt.Sprint(s.Cycle), fmt.Sprint(g), fmt.Sprint(c))
		if g+c > out.PeakWarps {
			out.PeakWarps = g + c
		}
		if g > 0 && c > 0 && g+c < out.MinBusyWarps {
			out.MinBusyWarps = g + c
		}
		out.Samples++
	}
	if out.MinBusyWarps == 1<<30 {
		out.MinBusyWarps = 0
	}
	return out, nil
}

// Fig14Result is the TAP study (paper Fig. 14) on the RTX 3070: MPS vs
// MiG (bank-level L2 + bandwidth partitioning) vs TAP (set-level, shared
// banks), normalized to MPS. The paper finds TAP ≈ MPS > MiG: the
// workloads are bandwidth-bound, and MiG's halved bank set costs
// bandwidth.
type Fig14Result struct {
	Table   *stats.Table
	Pairs   []PairPerf
	GeoMean map[core.PolicyKind]float64
}

// Fig14Pairs are the pairs for the inter-SM/L2 study.
var Fig14Pairs = []string{"SPH", "SPL"}

// Fig14 runs the L2-partitioning study.
func Fig14(sc Scale) (*Fig14Result, error) {
	policies := []core.PolicyKind{core.PolicyMPS, core.PolicyMiG, core.PolicyTAP}
	pairs, table, err := runPairs(config.RTX3070(), Fig14Pairs, ComputeWorkloads, policies, core.PolicyMPS, sc)
	if err != nil {
		return nil, err
	}
	out := &Fig14Result{Table: table, Pairs: pairs, GeoMean: map[core.PolicyKind]float64{}}
	for _, pol := range policies {
		var xs []float64
		for _, p := range pairs {
			xs = append(xs, p.Norm[pol])
		}
		out.GeoMean[pol] = stats.GeoMean(xs)
	}
	return out, nil
}

// Fig15Result is the L2 composition under TAP for SPH+HOLO (paper
// Fig. 15): HOLO barely touches memory, so TAP hands nearly every line to
// the rendering task.
type Fig15Result struct {
	Table *stats.Table
	// RenderFraction is the fraction of valid L2 lines owned by the
	// rendering task at end of run.
	RenderFraction float64
}

// Fig15 measures the TAP L2 composition for SPH+HOLO.
func Fig15(sc Scale) (*Fig15Result, error) {
	res, err := Simulate(config.RTX3070(), "SPH", sc.W2K, sc.H2K, true, "HOLO", core.PolicyTAP)
	if err != nil {
		return nil, err
	}
	total := res.L2Lines
	if total == 0 {
		return nil, fmt.Errorf("experiments: Fig15 empty L2")
	}
	t := &stats.Table{Header: []string{"owner", "lines", "share"}}
	g := res.L2ByTask[partition.TaskGraphics]
	c := res.L2ByTask[partition.TaskCompute]
	t.AddRow("rendering (SPH)", fmt.Sprint(g), stats.Pct(float64(g)/float64(total)))
	t.AddRow("compute (HOLO)", fmt.Sprint(c), stats.Pct(float64(c)/float64(total)))
	return &Fig15Result{Table: t, RenderFraction: float64(g) / float64(total)}, nil
}
