// Package experiments regenerates every table and figure of the paper's
// evaluation (Table II and Figs. 3, 6, 7, 9, 10, 11, 12, 13, 14, 15).
// Each experiment returns both a printable table (the harness output) and
// the headline metrics its paper claim rests on, so benchmarks and tests
// can assert the *shape* of the results — who wins, by roughly what
// factor — without pinning absolute numbers.
package experiments

import (
	"fmt"
	"sync"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/render"
	"crisp/internal/scene"
	"crisp/internal/stats"
)

// Scale selects the resolution class pair used for experiments. Cycle
// simulating a full 2560×1440 frame is hours of CPU, so the default
// "2K-class"/"4K-class" pair keeps the exact 4× pixel ratio at reduced
// absolute size (see DESIGN.md substitutions).
type Scale struct {
	W2K, H2K int
}

// DefaultScale is the standard experiment scale.
var DefaultScale = Scale{W2K: 320, H2K: 180}

// QuickScale is a reduced scale for fast tests.
var QuickScale = Scale{W2K: 128, H2K: 72}

// Res returns the resolution of a class ("2K" or "4K").
func (s Scale) Res(class string) (int, int) {
	if class == "4K" {
		return s.W2K * 2, s.H2K * 2
	}
	return s.W2K, s.H2K
}

// Workers is the host-side SM stepping parallelism every experiment's
// jobs run with (crispbench -j): 0 = auto, 1 = serial reference engine.
// Results are bit-identical at any setting, so this never perturbs the
// reproduced tables — only how fast they regenerate.
var Workers int

// NoSkip disables event-driven core sleeping for every experiment's jobs
// (crispbench -no-skip). Results are bit-identical either way; the knob
// exists to diff the fast path against the cycle-by-cycle oracle.
var NoSkip bool

// RenderScenes lists the rendering workloads in paper order.
var RenderScenes = []string{"SPH", "PL", "MT", "SPL", "PT", "IT"}

// ComputeWorkloads lists the compute workloads.
var ComputeWorkloads = []string{"VIO", "HOLO", "NN"}

// frameKey identifies one cached render.
type frameKey struct {
	scene string
	w, h  int
	lod   bool
	ref   bool
}

var (
	frameMu    sync.Mutex
	frameCache = map[frameKey]*render.Result{}
)

// Frame renders (and caches) a scene at the given size and LoD setting.
// CollectRefTex is always enabled so validation metrics are available.
func Frame(sceneName string, w, h int, lod bool) (*render.Result, error) {
	key := frameKey{sceneName, w, h, lod, true}
	frameMu.Lock()
	defer frameMu.Unlock()
	if r, ok := frameCache[key]; ok {
		return r, nil
	}
	opts := render.DefaultOptions()
	opts.W, opts.H = w, h
	opts.LoD = lod
	opts.CollectRefTex = true
	f, err := scene.ByName(sceneName)
	if err != nil {
		return nil, err
	}
	res, err := render.RenderFrame(f, opts)
	if err != nil {
		return nil, err
	}
	frameCache[key] = res
	return res, nil
}

// MaterialKinds maps drawcall names to their material kind for a scene
// (used by the silicon stand-in's cost model).
func MaterialKinds(sceneName string) (map[string]render.MaterialKind, error) {
	f, err := scene.ByName(sceneName)
	if err != nil {
		return nil, err
	}
	kinds := make(map[string]render.MaterialKind, len(f.Draws))
	for _, d := range f.Draws {
		kinds[d.Name] = d.Mat.Kind
	}
	return kinds, nil
}

// simKey identifies one cached simulation.
type simKey struct {
	gpuName string
	scene   string
	w, h    int
	lod     bool
	comp    string
	policy  core.PolicyKind
}

var (
	simMu    sync.Mutex
	simCache = map[simKey]*core.Result{}
)

// Simulate runs (and caches) a graphics/compute pair under a policy.
func Simulate(cfg config.GPU, sceneName string, w, h int, lod bool, computeName string, policy core.PolicyKind) (*core.Result, error) {
	key := simKey{cfg.Name, sceneName, w, h, lod, computeName, policy}
	simMu.Lock()
	if r, ok := simCache[key]; ok {
		simMu.Unlock()
		return r, nil
	}
	simMu.Unlock()

	job := core.Job{GPU: cfg, Policy: policy, Workers: Workers, NoSkip: NoSkip}
	if sceneName != "" {
		gfx, err := Frame(sceneName, w, h, lod)
		if err != nil {
			return nil, err
		}
		job.Graphics = gfx
	}
	if computeName != "" {
		comp, err := compute.ByName(computeName, core.ComputeStreamBase)
		if err != nil {
			return nil, err
		}
		job.Compute = comp
	}
	res, err := job.Run()
	if err != nil {
		return nil, err
	}
	simMu.Lock()
	simCache[key] = res
	simMu.Unlock()
	return res, nil
}

// buildCompute constructs a compute workload on the conventional stream.
func buildCompute(name string) (*compute.Workload, error) {
	return compute.ByName(name, core.ComputeStreamBase)
}

// ResetCaches drops all memoized renders and simulations (tests use this
// to bound memory).
func ResetCaches() {
	frameMu.Lock()
	frameCache = map[frameKey]*render.Result{}
	frameMu.Unlock()
	simMu.Lock()
	simCache = map[simKey]*core.Result{}
	simMu.Unlock()
}

// Table2 renders the simulation-configuration table (paper Table II).
func Table2() *stats.Table {
	orin := config.JetsonOrin()
	rtx := config.RTX3070()
	t := &stats.Table{Header: []string{"", orin.Name, rtx.Name}}
	row := func(label string, f func(g config.GPU) string) {
		t.AddRow(label, f(orin), f(rtx))
	}
	row("# SMs", func(g config.GPU) string { return fmt.Sprint(g.NumSMs) })
	row("# Registers / SM", func(g config.GPU) string { return fmt.Sprint(g.RegistersPerSM) })
	row("L1D + Shared / SM (KB)", func(g config.GPU) string { return fmt.Sprint((g.L1Size + g.SharedMemPerSM) >> 10) })
	row("Warps/SM, Schedulers/SM", func(g config.GPU) string {
		return fmt.Sprintf("%d, %d", g.MaxWarpsPerSM, g.SchedulersPerSM)
	})
	row("# Exec Units", func(g config.GPU) string {
		return fmt.Sprintf("%d FPs, %d SFUs, %d INTs, %d TENSORs", g.FPUnits, g.SFUUnits, g.INTUnits, g.TensorUnits)
	})
	row("L2 Cache (MB)", func(g config.GPU) string { return fmt.Sprint(g.L2Size >> 20) })
	row("Core Clock (MHz)", func(g config.GPU) string { return fmt.Sprint(g.CoreClockMHz) })
	row("Memory", func(g config.GPU) string { return fmt.Sprintf("%s, %.0fGB/s", g.MemTech, g.MemBandwidthGBps) })
	return t
}

// BuildComputeForBench exposes compute-workload construction to the
// benchmark harness at the conventional stream base.
func BuildComputeForBench(name string) (*compute.Workload, error) {
	return buildCompute(name)
}

// sceneByName re-exports scene lookup for experiment code in this package.
func sceneByName(name string) (*render.FrameDef, error) { return scene.ByName(name) }
