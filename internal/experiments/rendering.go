package experiments

import (
	"fmt"

	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/silicon"
	"crisp/internal/stats"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// Fig3Result is the vertex-shader invocation validation (paper Fig. 3):
// per drawcall, the simulator's warps-launched×32 count against the
// hardware profiler's thread count (the exact batched invocation count),
// at batch size 96.
type Fig3Result struct {
	Table *stats.Table
	// R is the Pearson correlation over all drawcalls.
	R float64
	// MeanRelErr is the mean relative over-count from warp rounding.
	MeanRelErr float64
	Points     int
}

// Fig3 runs the vertex-invocation correlation over all scenes.
func Fig3(sc Scale) (*Fig3Result, error) {
	t := &stats.Table{Header: []string{"scene", "drawcall", "hw-threads", "sim-threads", "err%"}}
	var hw, sim []float64
	var relErr float64
	n := 0
	for _, name := range RenderScenes {
		res, err := Frame(name, sc.W2K, sc.H2K, true)
		if err != nil {
			return nil, err
		}
		hwCounts := silicon.VertexInvocations(res)
		for _, m := range res.Metrics {
			h := float64(hwCounts[m.Name])
			s := float64(m.SimVertexThreads)
			if h == 0 {
				continue
			}
			hw = append(hw, h)
			sim = append(sim, s)
			relErr += (s - h) / h
			n++
			t.AddRow(name, m.Name, fmt.Sprint(int(h)), fmt.Sprint(int(s)),
				fmt.Sprintf("%.1f", 100*(s-h)/h))
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: Fig3 collected no drawcalls")
	}
	return &Fig3Result{Table: t, R: stats.Pearson(hw, sim), MeanRelErr: relErr / float64(n), Points: n}, nil
}

// Fig6Result is the frame-time validation (paper Fig. 6): simulated cycle
// counts against the silicon stand-in, per scene and resolution class, on
// the RTX 3070. The paper reports 94.8% correlation with the simulator
// reading uniformly high.
type Fig6Result struct {
	Table *stats.Table
	// R is the correlation between simulated and hardware frame times.
	R float64
	// SimHighFraction is the fraction of points where the simulator
	// reads higher than silicon (paper: all of them, for lack of driver
	// optimizations).
	SimHighFraction float64
	// ITScaling is IT's 4K/2K frame-time ratio (paper: ≈1.2, because IT
	// is vertex-bound; fragment-bound scenes approach 4×).
	ITScaling float64
	// MaxScaling is the largest 4K/2K ratio across scenes.
	MaxScaling float64
}

// Fig6 runs the frame-time correlation study.
func Fig6(sc Scale) (*Fig6Result, error) {
	cfg := config.RTX3070()
	t := &stats.Table{Header: []string{"scene", "res", "sim-ms", "hw-ms", "sim/hw"}}
	var simT, hwT []float64
	simHigh := 0
	ratio2K := map[string]float64{}
	ratio4K := map[string]float64{}
	for _, name := range RenderScenes {
		kinds, err := MaterialKinds(name)
		if err != nil {
			return nil, err
		}
		for _, class := range []string{"2K", "4K"} {
			w, h := sc.Res(class)
			res, err := Simulate(cfg, name, w, h, true, "", core.PolicySerial)
			if err != nil {
				return nil, err
			}
			frame, err := Frame(name, w, h, true)
			if err != nil {
				return nil, err
			}
			hwMS := silicon.FrameTime(frame, &cfg, kinds)
			simMS := res.FrameTimeMS
			simT = append(simT, simMS)
			hwT = append(hwT, hwMS)
			if simMS > hwMS {
				simHigh++
			}
			if class == "2K" {
				ratio2K[name] = simMS
			} else {
				ratio4K[name] = simMS
			}
			t.AddRow(name, class, stats.F(simMS), stats.F(hwMS), stats.F(simMS/hwMS))
		}
	}
	out := &Fig6Result{
		Table:           t,
		R:               stats.Pearson(simT, hwT),
		SimHighFraction: float64(simHigh) / float64(len(simT)),
	}
	out.ITScaling = ratio4K["IT"] / ratio2K["IT"]
	for name := range ratio2K {
		if r := ratio4K[name] / ratio2K[name]; r > out.MaxScaling {
			out.MaxScaling = r
		}
	}
	return out, nil
}

// Fig7Result demonstrates the mip-merge mechanism on a 4×4 texture
// (paper Fig. 7): four distinct level-0 texel requests collapse to one at
// level 1.
type Fig7Result struct {
	Table          *stats.Table
	Level0Distinct int
	Level1Distinct int
}

// Fig7 runs the 4×4-texture mip example.
func Fig7() (*Fig7Result, error) {
	pix := make([]gmath.Vec4, 16)
	for i := range pix {
		pix[i] = gmath.V4(float32(i)/16, 0, 0, 1)
	}
	tex, err := texture.New("fig7", texture.FormatRGBA8, 4, 4, 1, pix)
	if err != nil {
		return nil, err
	}
	tex.Bind(0x1000)
	uvs := [][2]float32{{0.125, 0.125}, {0.375, 0.125}, {0.125, 0.375}, {0.375, 0.375}}
	t := &stats.Table{Header: []string{"UV", "level-0 texel addr", "level-1 texel addr"}}
	d0 := map[uint64]bool{}
	d1 := map[uint64]bool{}
	for _, uv := range uvs {
		_, a0 := tex.Sample(uv[0], uv[1], 0, 0, texture.FilterNearest)
		_, a1 := tex.Sample(uv[0], uv[1], 0, 1, texture.FilterNearest)
		d0[a0] = true
		d1[a1] = true
		t.AddRow(fmt.Sprintf("(%.3f, %.3f)", uv[0], uv[1]), fmt.Sprintf("%#x", a0), fmt.Sprintf("%#x", a1))
	}
	return &Fig7Result{Table: t, Level0Distinct: len(d0), Level1Distinct: len(d1)}, nil
}

// Fig9Result is the LoD texture-traffic validation (paper Fig. 9): L1
// texture accesses per drawcall with LoD on and off versus the exact-LoD
// hardware reference. The paper's MAPE drops from 219% to 33% (6.6×).
type Fig9Result struct {
	Table   *stats.Table
	MAPEOn  float64
	MAPEOff float64
	// Improvement is MAPEOff / MAPEOn.
	Improvement float64
	// MaxInflation is the worst per-drawcall LoD-off over-count factor
	// (paper: up to 6×).
	MaxInflation float64
}

// Fig9 runs the LoD on/off texture-access comparison over all scenes.
func Fig9(sc Scale) (*Fig9Result, error) {
	t := &stats.Table{Header: []string{"scene", "drawcall", "ref", "lod-on", "lod-off", "off/ref"}}
	var ref, on, off []float64
	maxInfl := 0.0
	for _, name := range RenderScenes {
		fOn, err := Frame(name, sc.W2K, sc.H2K, true)
		if err != nil {
			return nil, err
		}
		fOff, err := Frame(name, sc.W2K, sc.H2K, false)
		if err != nil {
			return nil, err
		}
		offBy := map[string]int64{}
		for _, m := range fOff.Metrics {
			offBy[m.Name] = m.SimTexAccesses
		}
		for _, m := range fOn.Metrics {
			if m.RefTexAccesses == 0 {
				continue
			}
			r := float64(m.RefTexAccesses)
			o := float64(m.SimTexAccesses)
			f := float64(offBy[m.Name])
			ref = append(ref, r)
			on = append(on, o)
			off = append(off, f)
			if infl := f / r; infl > maxInfl {
				maxInfl = infl
			}
			t.AddRow(name, m.Name, fmt.Sprint(int64(r)), fmt.Sprint(int64(o)), fmt.Sprint(int64(f)),
				stats.F(f/r))
		}
	}
	mOn := stats.MAPE(ref, on)
	mOff := stats.MAPE(ref, off)
	return &Fig9Result{
		Table:        t,
		MAPEOn:       mOn,
		MAPEOff:      mOff,
		Improvement:  mOff / mOn,
		MaxInflation: maxInfl,
	}, nil
}

// Fig10Result is the static trace analysis of texture cache lines per CTA
// for one Sponza drawcall (paper Fig. 10: most CTAs in the shown drawcall
// touch 3–5 lines, and the per-drawcall mean varies widely — 2.54 to
// 21.19 in the paper; "the figure may look different depending on the
// drawcall you choose", per the artifact).
type Fig10Result struct {
	Histogram *stats.Histogram
	Mode      int
	Mean      float64
	Drawcall  string
	// MeanMin/MeanMax span the per-batch means across the frame.
	MeanMin float64
	MeanMax float64
}

// Fig10 analyzes TEX cache lines per CTA across SPL's fragment kernels and
// reports the representative (lowest-mean, ≥12-CTA) drawcall's histogram,
// matching the paper's selection of a typical drawcall.
func Fig10(sc Scale) (*Fig10Result, error) {
	res, err := Frame("SPL", sc.W2K, sc.H2K, true)
	if err != nil {
		return nil, err
	}
	minCTAs := 12
	if sc.W2K < DefaultScale.W2K {
		minCTAs = 6 // smaller frames produce smaller fragment kernels
	}
	var best *trace.Kernel
	var bestLabel string
	bestMean := 0.0
	out := &Fig10Result{MeanMin: 1e18}
	for _, st := range res.Streams {
		for _, k := range st.Kernels {
			if k.Kind != trace.KindFragment || len(k.CTAs) < minCTAs {
				continue
			}
			h := stats.NewHistogram()
			for _, lines := range k.TexLinesPerCTA() {
				h.Observe(lines)
			}
			m := h.Mean()
			if m < out.MeanMin {
				out.MeanMin = m
			}
			if m > out.MeanMax {
				out.MeanMax = m
			}
			if best == nil || m < bestMean {
				best, bestLabel, bestMean = k, st.Label, m
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: Fig10 found no fragment kernels with ≥%d CTAs", minCTAs)
	}
	h := stats.NewHistogram()
	for _, lines := range best.TexLinesPerCTA() {
		h.Observe(lines)
	}
	out.Histogram = h
	out.Mode = h.Mode()
	out.Mean = h.Mean()
	out.Drawcall = bestLabel
	return out, nil
}

// Fig11Result is the L2-composition comparison between shading techniques
// (paper Fig. 11): the PBR Pistol fills the L2 with texture lines and hits
// lower; the basic-shaded Sponza keeps few texture lines and hits ≈90%.
type Fig11Result struct {
	Table *stats.Table
	// TexFraction maps scene → fraction of valid L2 lines holding
	// texture data at end of frame.
	TexFraction map[string]float64
	// L2Hit maps scene → overall L2 hit rate.
	L2Hit map[string]float64
}

// Fig11 compares the L2 composition of PT (PBR) and SPL (basic).
func Fig11(sc Scale) (*Fig11Result, error) {
	cfg := config.RTX3070()
	out := &Fig11Result{
		Table:       &stats.Table{Header: []string{"scene", "shading", "tex%", "pipeline%", "fb%", "L2 hit"}},
		TexFraction: map[string]float64{},
		L2Hit:       map[string]float64{},
	}
	shading := map[string]string{"PT": "PBR", "SPL": "basic"}
	for _, name := range []string{"PT", "SPL"} {
		res, err := Simulate(cfg, name, sc.W2K, sc.H2K, true, "", core.PolicySerial)
		if err != nil {
			return nil, err
		}
		total := res.L2Lines
		if total == 0 {
			return nil, fmt.Errorf("experiments: Fig11 %s has empty L2", name)
		}
		frac := func(c trace.MemClass) float64 { return float64(res.L2ByClass[c]) / float64(total) }
		gfx := res.PerTask[0]
		hit := gfx.L2HitRate()
		out.TexFraction[name] = frac(trace.ClassTexture)
		out.L2Hit[name] = hit
		out.Table.AddRow(name, shading[name],
			stats.Pct(frac(trace.ClassTexture)),
			stats.Pct(frac(trace.ClassPipeline)),
			stats.Pct(frac(trace.ClassFramebuffer)),
			stats.Pct(hit))
	}
	return out, nil
}

// Fig3SweepResult is the batch-size tuning behind Fig. 3: the paper
// "tested the model with incrementing batch size" and found 96 gives the
// highest invocation-count correlation with hardware.
type Fig3SweepResult struct {
	Table *stats.Table
	// MAPE maps batch size → invocation-count MAPE against the
	// hardware-exact (batch-96) profiler counts.
	MAPE map[int]float64
	// Best is the batch size minimizing MAPE.
	Best int
}

// Fig3Sweep sweeps the vertex batch size and scores each against the
// hardware reference counts.
func Fig3Sweep(sc Scale) (*Fig3SweepResult, error) {
	sizes := []int{24, 48, 96, 192, 384}
	out := &Fig3SweepResult{
		Table: &stats.Table{Header: []string{"batch", "MAPE"}},
		MAPE:  map[int]float64{},
	}
	// Hardware reference: exact batched-96 invocation counts per draw.
	var refByDraw map[string]float64
	{
		res, err := Frame("SPL", sc.W2K, sc.H2K, true)
		if err != nil {
			return nil, err
		}
		refByDraw = map[string]float64{}
		for _, m := range res.Metrics {
			refByDraw[m.Name] = float64(m.ShadedVertices)
		}
	}
	f, err := sceneByName("SPL")
	if err != nil {
		return nil, err
	}
	out.Best = sizes[0]
	for _, size := range sizes {
		var ref, sim []float64
		for _, d := range f.Draws {
			batches := geom.BatchIndices(d.Mesh.Idx, size)
			warps := 0
			for _, b := range batches {
				warps += (len(b.Unique) + 31) / 32
			}
			sim = append(sim, float64(warps*32))
			ref = append(ref, refByDraw[d.Name])
		}
		m := stats.MAPE(ref, sim)
		out.MAPE[size] = m
		out.Table.AddRow(fmt.Sprint(size), stats.Pct(m))
		if m < out.MAPE[out.Best] {
			out.Best = size
		}
	}
	return out, nil
}
