package experiments

import (
	"fmt"

	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/partition"
	"crisp/internal/stats"
)

// QoSResult is the quality-of-service case study the paper's future work
// points toward: "XR workloads have distinct quality-of-service
// requirements, which must be considered in the system design as well."
// The rendering task has a frame deadline (motion-to-photon budget); the
// study measures when the frame finishes — not just aggregate throughput —
// under each sharing policy.
type QoSResult struct {
	Table *stats.Table
	// FrameDone maps policy → cycle at which the last rendering stream
	// completed (the frame's ready time).
	FrameDone map[core.PolicyKind]int64
	// Makespan maps policy → total cycles (both tasks done).
	Makespan map[core.PolicyKind]int64
}

// CaseStudyQoS co-runs PT (the frame) with VIO (the tracking service) on
// the Orin and compares frame-ready time and total throughput across
// EVEN, Priority, and MPS.
func CaseStudyQoS(sc Scale) (*QoSResult, error) {
	cfg := config.JetsonOrin()
	gfx, err := Frame("PT", sc.W2K, sc.H2K, true)
	if err != nil {
		return nil, err
	}
	policies := []core.PolicyKind{core.PolicyMPS, core.PolicyEven, core.PolicyPriority}
	out := &QoSResult{
		Table:     &stats.Table{Header: []string{"policy", "frame-ready", "makespan"}},
		FrameDone: map[core.PolicyKind]int64{},
		Makespan:  map[core.PolicyKind]int64{},
	}
	for _, pol := range policies {
		comp, err := buildCompute("VIO")
		if err != nil {
			return nil, err
		}
		job := core.Job{GPU: cfg, Graphics: gfx, Compute: comp, Policy: pol, Workers: Workers, NoSkip: NoSkip}
		res, err := job.Run()
		if err != nil {
			return nil, err
		}
		var frameDone int64
		for _, st := range res.PerStream {
			if core.TaskOf(st.Stream) == partition.TaskGraphics && st.Cycles > frameDone {
				frameDone = st.Cycles
			}
		}
		out.FrameDone[pol] = frameDone
		out.Makespan[pol] = res.Cycles
		out.Table.AddRow(string(pol), fmt.Sprint(frameDone), fmt.Sprint(res.Cycles))
	}
	return out, nil
}
