package experiments

import (
	"fmt"

	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/render"
	"crisp/internal/scenario"
	"crisp/internal/stats"
)

// QoSResult is the quality-of-service case study the paper's future work
// points toward: "XR workloads have distinct quality-of-service
// requirements, which must be considered in the system design as well."
// The rendering task has a frame deadline (motion-to-photon budget); the
// study measures when the frame finishes — not just aggregate throughput —
// under each sharing policy. The accounting runs on the scenario engine
// (core.RunMix → Result.QoS), the single source of truth for deadline
// bookkeeping.
type QoSResult struct {
	Table *stats.Table
	// FrameDone maps policy → cycle at which the frame completed (the
	// render tenant's last-done cycle).
	FrameDone map[core.PolicyKind]int64
	// Makespan maps policy → total cycles (all tenants done).
	Makespan map[core.PolicyKind]int64
	// DeadlinesMet maps policy → whether the frame met its deadline (set
	// at 2× the isolated frame time, i.e. 100% sharing slack).
	DeadlinesMet map[core.PolicyKind]bool
	// Slowdown maps policy → tenant name → shared/isolated turnaround —
	// the per-tenant interference cost of sharing.
	Slowdown map[core.PolicyKind]map[string]float64
}

// qosMixEnv routes mix workload materialization through the experiment
// caches, so repeated policies reuse one rendered frame.
func qosMixEnv() core.MixEnv {
	return core.MixEnv{
		Render: func(name string, opts render.Options) (*render.Result, error) {
			return Frame(name, opts.W, opts.H, opts.LoD)
		},
		Compute: buildCompute,
	}
}

// runQoSMix lowers and runs one mix with the experiment's host knobs.
func runQoSMix(cfg config.GPU, mix scenario.MixSpec, pol core.PolicyKind, opts render.Options) (*core.Result, error) {
	job, err := core.BuildMixJobEnv(cfg, mix, pol, opts, qosMixEnv())
	if err != nil {
		return nil, err
	}
	job.Workers = Workers
	job.NoSkip = NoSkip
	return job.Run()
}

// CaseStudyQoS co-runs PT (the frame) with VIO (the tracking service) on
// the Orin and compares frame-ready time, deadline outcome, and per-tenant
// slowdown versus isolated execution across MPS, EVEN, and Priority.
func CaseStudyQoS(sc Scale) (*QoSResult, error) {
	cfg := config.JetsonOrin()
	opts := render.DefaultOptions()
	opts.W, opts.H = sc.W2K, sc.H2K
	opts.LoD = true
	opts.CollectRefTex = true

	tenants := []scenario.Tenant{
		{Name: "PT", Scene: "PT", Priority: 1},
		{Name: "VIO", Compute: "VIO"},
	}

	// Isolated baselines: each tenant alone on the whole GPU. Their
	// turnarounds anchor the slowdown metric, and the isolated frame time
	// sets the deadline at 2× (a 100% sharing budget).
	isolated := make(map[string]int64, len(tenants))
	for _, tn := range tenants {
		res, err := runQoSMix(cfg, scenario.MixSpec{Name: "isolated-" + tn.Name,
			Tenants: []scenario.Tenant{tn}}, core.PolicySerial, opts)
		if err != nil {
			return nil, err
		}
		tr := res.QoS.Tenants[0]
		isolated[tn.Name] = tr.LastDone - tr.FirstArrival
	}
	deadline := 2 * isolated["PT"]
	tenants[0].Deadline = deadline

	policies := []core.PolicyKind{core.PolicyMPS, core.PolicyEven, core.PolicyPriority}
	out := &QoSResult{
		Table:        &stats.Table{Header: []string{"policy", "frame-ready", "deadline", "makespan", "slowdown-PT", "slowdown-VIO"}},
		FrameDone:    map[core.PolicyKind]int64{},
		Makespan:     map[core.PolicyKind]int64{},
		DeadlinesMet: map[core.PolicyKind]bool{},
		Slowdown:     map[core.PolicyKind]map[string]float64{},
	}
	for _, pol := range policies {
		mix := scenario.MixSpec{Name: "qos-case-study", Tenants: tenants}
		res, err := runQoSMix(cfg, mix, pol, opts)
		if err != nil {
			return nil, err
		}
		slow := make(map[string]float64, len(res.QoS.Tenants))
		for _, tr := range res.QoS.Tenants {
			if iso := isolated[tr.Name]; iso > 0 {
				slow[tr.Name] = float64(tr.LastDone-tr.FirstArrival) / float64(iso)
			}
		}
		frame := res.QoS.Tenants[0]
		out.FrameDone[pol] = frame.LastDone
		out.Makespan[pol] = res.Cycles
		out.DeadlinesMet[pol] = frame.DeadlinesMissed == 0
		out.Slowdown[pol] = slow
		verdict := "met"
		if frame.DeadlinesMissed > 0 {
			verdict = "MISS"
		}
		out.Table.AddRow(string(pol), fmt.Sprint(frame.LastDone), verdict,
			fmt.Sprint(res.Cycles),
			fmt.Sprintf("%.2f", slow["PT"]), fmt.Sprintf("%.2f", slow["VIO"]))
	}
	return out, nil
}
