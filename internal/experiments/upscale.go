package experiments

import (
	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/stats"
)

// UpscaleResult is the async-compute case study the paper's background
// motivates: the scene renders at low resolution and a DLSS-analog
// tensor-core network upscales it. "DLSS uses tensor cores extensively,
// and fragment shaders use floating-point units. This makes DLSS
// post-processing and the rendering pipeline suitable for async compute
// to maximize system throughput."
type UpscaleResult struct {
	Table *stats.Table
	// Norm maps policy → performance normalized to MPS.
	Norm map[core.PolicyKind]float64
}

// CaseStudyAsyncUpscale runs low-res rendering + UPSCALE under MPS and
// EVEN on the RTX 3070 (frame N's upscale overlaps frame N+1's render,
// so the pair co-runs in steady state).
func CaseStudyAsyncUpscale(sc Scale) (*UpscaleResult, error) {
	cfg := config.RTX3070()
	policies := []core.PolicyKind{core.PolicyMPS, core.PolicyEven, core.PolicyPriority}
	out := &UpscaleResult{
		Table: &stats.Table{Header: []string{"policy", "cycles", "vs MPS"}},
		Norm:  map[core.PolicyKind]float64{},
	}
	var base int64
	for _, pol := range policies {
		res, err := Simulate(cfg, "SPL", sc.W2K, sc.H2K, true, "UPSCALE", pol)
		if err != nil {
			return nil, err
		}
		if pol == core.PolicyMPS {
			base = res.Cycles
		}
		n := float64(base) / float64(res.Cycles)
		out.Norm[pol] = n
		out.Table.AddRow(string(pol), itoa64(res.Cycles), stats.F(n))
	}
	return out, nil
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
