package experiments

// Grid is the sweep decomposition shared by the bench harness and crispd's
// fleet tier: a policy × workload × config cross product expanded into
// concrete points in a deterministic order, so a sweep decomposed twice —
// or on two different coordinators — yields the same task list and
// therefore the same merged digest.
type Grid struct {
	// GPUs lists named GPU configurations ("JetsonOrin", "RTX3070");
	// empty means one unnamed entry (the caller's default config).
	GPUs []string
	// Scenes and Computes list the render and compute workloads. An empty
	// list means one "" entry (axis absent); a "" element inside a
	// non-empty list is also allowed and means "no workload on this axis
	// for that point" (e.g. Computes: ["", "VIO"] sweeps render-only
	// against render+compute).
	Scenes   []string
	Computes []string
	// Policies lists partitioning policies; empty means one "" entry
	// (the serial default).
	Policies []string
	// Scenarios lists named scenario presets (scenario.PresetNames); each
	// entry crosses with GPUs and Policies to form N-tenant mix points,
	// appended after the pair points. Empty means no scenario points.
	Scenarios []string
}

// GridPoint is one concrete cell of the cross product. Either Scenario
// names an N-tenant mix (Scene/Compute empty), or Scene/Compute describe
// a pair.
type GridPoint struct {
	GPU      string
	Scene    string
	Compute  string
	Policy   string
	Scenario string
}

// Points expands the grid in GPU-major, scene, compute, policy-minor
// order, followed by the scenario × policy points for each GPU. Pair
// points with neither a scene nor a compute workload are skipped — they
// describe no simulation. The expansion is pure: no deduplication, no
// validation of the names themselves (callers resolve each point and
// reject unknown names there).
func (g Grid) Points() []GridPoint {
	axis := func(vals []string) []string {
		if len(vals) == 0 {
			return []string{""}
		}
		return vals
	}
	gpus, scenes := axis(g.GPUs), axis(g.Scenes)
	computes, policies := axis(g.Computes), axis(g.Policies)

	out := make([]GridPoint, 0, len(gpus)*(len(scenes)*len(computes)+len(g.Scenarios))*len(policies))
	for _, gpu := range gpus {
		for _, sc := range scenes {
			for _, comp := range computes {
				if sc == "" && comp == "" {
					continue
				}
				for _, pol := range policies {
					out = append(out, GridPoint{GPU: gpu, Scene: sc, Compute: comp, Policy: pol})
				}
			}
		}
		for _, scen := range g.Scenarios {
			if scen == "" {
				continue
			}
			for _, pol := range policies {
				out = append(out, GridPoint{GPU: gpu, Scenario: scen, Policy: pol})
			}
		}
	}
	return out
}
