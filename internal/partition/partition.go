// Package partition implements the GPU sharing mechanisms of paper Fig. 4
// plus the two prior-work policies evaluated in the concurrency case
// studies:
//
//   - MPS:  coarse inter-SM partitioning; L2 and memory stay shared.
//   - MiG:  inter-SM partitioning plus L2 bank and memory-channel
//     partitioning — each task sees only its subset of banks.
//   - FG:   fine-grained intra-SM partitioning (the async-compute analog):
//     every SM runs both tasks under per-task resource envelopes.
//   - WarpedSlicer: dynamic intra-SM partitioning — parallel SMs sample
//     the IPC-vs-CTA-count curve of each kernel, then a water-filling
//     pass picks the per-SM CTA split (Xu et al., ISCA'16).
//   - TAP: TLP-aware utility-based L2 set partitioning on top of MPS
//     (Lee & Kim, HPCA'12), with utility monitors per task.
//
// Tasks are small integers; by convention the concurrent platform uses
// task 0 for graphics and task 1 for compute.
package partition

import (
	"crisp/internal/gpu"
	"crisp/internal/mem"
	"crisp/internal/sm"
	"crisp/internal/trace"
)

// TaskGraphics and TaskCompute are the conventional task ids.
const (
	TaskGraphics = 0
	TaskCompute  = 1
)

// splitSMs assigns the first n0 SMs to task 0 and the rest to task 1.
func splitSMs(numSMs, n0 int) func(smID int) int {
	return func(smID int) int {
		if smID < n0 {
			return 0
		}
		return 1
	}
}

// MPS is even inter-SM partitioning with shared L2 — the paper's baseline
// in both concurrency studies ("MPS even").
type MPS struct {
	taskOfSM func(int) int
}

// NewMPS splits the SMs evenly between two tasks.
func NewMPS(numSMs int) *MPS {
	return &MPS{taskOfSM: splitSMs(numSMs, numSMs/2)}
}

// Name implements gpu.Policy.
func (p *MPS) Name() string { return "MPS" }

// AllowSM implements gpu.Policy.
func (p *MPS) AllowSM(smID, task int) bool { return p.taskOfSM(smID) == task }

// Limit implements gpu.Policy (no intra-SM limits).
func (p *MPS) Limit(smID, task int) (sm.Resources, bool) { return sm.Resources{}, false }

// OnLaunch implements gpu.Policy.
func (p *MPS) OnLaunch(now int64, k *trace.Kernel, task int) {}

// Tick implements gpu.Policy.
func (p *MPS) Tick(now int64) {}

// MiG partitions SMs and the L2: each task owns half the banks, which also
// confines it to the corresponding DRAM channels (half the bandwidth) —
// the bank-level partitioning the TAP study compares against.
type MiG struct {
	MPS
}

// NewMiG builds MiG for g: even SM split plus an L2 bank mapper keyed by
// the stream→task translation.
func NewMiG(g *gpu.GPU, taskOf func(stream int) int) *MiG {
	cfg := g.Config()
	p := &MiG{MPS{taskOfSM: splitSMs(cfg.NumSMs, cfg.NumSMs/2)}}
	banks := map[int][]int{0: {}, 1: {}}
	for b := 0; b < cfg.L2Banks; b++ {
		t := 0
		if b >= cfg.L2Banks/2 {
			t = 1
		}
		banks[t] = append(banks[t], b)
	}
	g.Mem().SetMapper(&mem.BankMapper{TaskOf: taskOf, Banks: banks})
	return p
}

// Name implements gpu.Policy.
func (p *MiG) Name() string { return "MiG" }

// FG is static fine-grained intra-SM partitioning: both tasks run on every
// SM, each within a fixed fraction of the SM's resources. The even split
// is the paper's "EVEN" configuration.
type FG struct {
	label  string
	limits [2]sm.Resources
}

// NewFGEven gives each task half of every SM.
func NewFGEven(g *gpu.GPU) *FG {
	full := sm.Full(g.Config())
	return &FG{
		label:  "EVEN",
		limits: [2]sm.Resources{sm.Fraction(full, 1, 2), sm.Fraction(full, 1, 2)},
	}
}

// NewFGRatio gives task 0 num/den of every SM and task 1 the remainder.
func NewFGRatio(g *gpu.GPU, num, den int) *FG {
	full := sm.Full(g.Config())
	return &FG{
		label:  "FG",
		limits: [2]sm.Resources{sm.Fraction(full, num, den), sm.Fraction(full, den-num, den)},
	}
}

// Name implements gpu.Policy.
func (p *FG) Name() string { return p.label }

// AllowSM implements gpu.Policy: both tasks run everywhere.
func (p *FG) AllowSM(smID, task int) bool { return task >= 0 && task < 2 }

// Limit implements gpu.Policy.
func (p *FG) Limit(smID, task int) (sm.Resources, bool) {
	if task < 0 || task > 1 {
		return sm.Resources{}, false
	}
	return p.limits[task], true
}

// OnLaunch implements gpu.Policy.
func (p *FG) OnLaunch(now int64, k *trace.Kernel, task int) {}

// Tick implements gpu.Policy.
func (p *FG) Tick(now int64) {}
