package partition

import (
	"testing"

	"crisp/internal/config"
	"crisp/internal/sm"
)

func TestSMGroupsCoverAllSMs(t *testing.T) {
	for _, tasks := range []int{2, 3, 4} {
		p, err := NewSMGroups(14, tasks)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, tasks)
		for s := 0; s < 14; s++ {
			owner := -1
			for task := 0; task < tasks; task++ {
				if p.AllowSM(s, task) {
					if owner >= 0 {
						t.Fatalf("tasks=%d: SM %d owned twice", tasks, s)
					}
					owner = task
				}
			}
			if owner < 0 {
				t.Fatalf("tasks=%d: SM %d unowned", tasks, s)
			}
			counts[owner]++
		}
		for task, c := range counts {
			if c < 14/tasks-1 || c > 14/tasks+1 {
				t.Errorf("tasks=%d: task %d got %d SMs", tasks, task, c)
			}
		}
	}
	if _, err := NewSMGroups(4, 8); err == nil {
		t.Error("more groups than SMs accepted")
	}
	p, _ := NewSMGroups(14, 3)
	if p.AllowSM(0, 5) || p.AllowSM(0, -1) {
		t.Error("out-of-range task allowed")
	}
}

func TestFGNSplitsEvenly(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	p, err := NewFGN(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := sm.Full(g.Config())
	for task := 0; task < 4; task++ {
		if !p.AllowSM(7, task) {
			t.Errorf("task %d not allowed", task)
		}
		lim, ok := p.Limit(0, task)
		if !ok || lim.Threads != full.Threads/4 {
			t.Errorf("task %d limit = %+v", task, lim)
		}
	}
	if _, ok := p.Limit(0, 4); ok {
		t.Error("task 4 got a limit")
	}
	if _, err := NewFGN(g, 0); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestPriorityEvenOrdering(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	p := NewPriorityEven(g)
	if p.Priority(0) <= p.Priority(1) {
		t.Error("graphics must outrank compute")
	}
	if p.Name() != "PriorityEven" {
		t.Errorf("name = %s", p.Name())
	}
	// Limits are the EVEN split.
	full := sm.Full(g.Config())
	lim, ok := p.Limit(0, 0)
	if !ok || lim.Threads != full.Threads/2 {
		t.Errorf("limit = %+v", lim)
	}
}
