package partition

import (
	"testing"

	"crisp/internal/config"
	"crisp/internal/gpu"
	"crisp/internal/isa"
	"crisp/internal/sm"
	"crisp/internal/trace"
)

func newGPU(t *testing.T, cfg config.GPU) *gpu.GPU {
	t.Helper()
	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func taskOfEvenOdd(stream int) int { return stream % 2 }

func TestMPSSplitsSMsEvenly(t *testing.T) {
	p := NewMPS(14)
	c0, c1 := 0, 0
	for s := 0; s < 14; s++ {
		if p.AllowSM(s, 0) {
			c0++
		}
		if p.AllowSM(s, 1) {
			c1++
		}
		if p.AllowSM(s, 0) == p.AllowSM(s, 1) {
			t.Errorf("SM %d assigned to both or neither task", s)
		}
	}
	if c0 != 7 || c1 != 7 {
		t.Errorf("split = %d/%d", c0, c1)
	}
	if _, ok := p.Limit(0, 0); ok {
		t.Error("MPS should impose no intra-SM limits")
	}
}

func TestFGEvenLimits(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	p := NewFGEven(g)
	full := sm.Full(g.Config())
	for task := 0; task < 2; task++ {
		if !p.AllowSM(3, task) {
			t.Errorf("FG should allow task %d on every SM", task)
		}
		lim, ok := p.Limit(0, task)
		if !ok {
			t.Fatal("FG without limits")
		}
		if lim.Threads != full.Threads/2 || lim.Regs != full.Regs/2 {
			t.Errorf("task %d limit = %+v", task, lim)
		}
	}
	if p.AllowSM(0, 2) {
		t.Error("task 2 allowed")
	}
}

func TestFGRatio(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	p := NewFGRatio(g, 3, 4)
	l0, _ := p.Limit(0, 0)
	l1, _ := p.Limit(0, 1)
	full := sm.Full(g.Config())
	if l0.Threads != full.Threads*3/4 || l1.Threads != full.Threads/4 {
		t.Errorf("ratio limits = %d/%d", l0.Threads, l1.Threads)
	}
}

func TestMiGInstallsBankMapper(t *testing.T) {
	g := newGPU(t, config.RTX3070())
	NewMiG(g, taskOfEvenOdd)
	cfg := g.Config()
	line := uint64(cfg.LineSize)
	// Drive traffic from both tasks; composition must land in disjoint
	// banks. We can't see banks directly, but a full sweep by task 0
	// must not evict task 1's lines (different banks).
	g.Mem().Load(0, 0, 1, trace.ClassCompute, 99999*line)
	for i := 0; i < 200000; i++ {
		g.Mem().Load(int64(i+1), 0, 0, trace.ClassCompute, uint64(i)*line)
	}
	comp := g.Mem().L2Composition()
	if comp.ByStream[1] != 1 {
		t.Errorf("MiG bank isolation broken: %v", comp.ByStream)
	}
}

// kernelWith builds a uniform ALU kernel with given CTA shape.
func kernelWith(stream, ctas, warps, regsPerThread, sharedMem int) *trace.Kernel {
	b := trace.NewBuilder("k", trace.KindCompute, stream, warps*32, regsPerThread, sharedMem)
	for c := 0; c < ctas; c++ {
		b.BeginCTA()
		for w := 0; w < warps; w++ {
			b.BeginWarp()
			r := b.NewReg()
			b.ALU(isa.OpMOV, r, trace.FullMask)
			for i := 0; i < 60; i++ {
				nr := b.NewReg()
				b.ALU(isa.OpFADD, nr, trace.FullMask, r, r)
				r = nr
			}
		}
	}
	return b.Finish()
}

func TestWarpedSlicerLifecycle(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	ws := NewWarpedSlicer(g)
	kA := kernelWith(0, 20, 4, 32, 0)
	kB := kernelWith(1, 20, 8, 64, 4096)

	ws.OnLaunch(0, kA, 0)
	ws.OnLaunch(0, kB, 1)
	if ws.Resamples() != 2 {
		t.Errorf("resamples = %d", ws.Resamples())
	}
	// During sampling: SM parity split, CTA caps vary per SM.
	if ws.AllowSM(0, 1) || !ws.AllowSM(0, 0) {
		t.Error("sampling SM assignment wrong (SM 0 should be task 0)")
	}
	if !ws.AllowSM(1, 1) || ws.AllowSM(1, 0) {
		t.Error("sampling SM assignment wrong (SM 1 should be task 1)")
	}
	lim0, ok := ws.Limit(0, 0)
	if !ok || lim0.CTAs != 1 {
		t.Errorf("SM 0 sampling cap = %+v", lim0)
	}
	lim2, _ := ws.Limit(2, 0)
	if lim2.CTAs != 2 {
		t.Errorf("SM 2 sampling cap = %d, want 2", lim2.CTAs)
	}

	// Simulate progress counters and close the window.
	ws.Tick(100000)
	if !ws.AllowSM(0, 1) || !ws.AllowSM(1, 0) {
		t.Error("steady state should allow both tasks everywhere")
	}
	limits := ws.CurrentLimits()
	full := sm.Full(g.Config())
	if limits[0].Threads+limits[1].Threads > full.Threads {
		t.Errorf("steady limits overflow SM threads: %+v", limits)
	}
	if limits[0].Regs+limits[1].Regs > full.Regs {
		t.Errorf("steady limits overflow SM registers: %+v", limits)
	}
	if limits[0].CTAs < 1 || limits[1].CTAs < 1 {
		t.Errorf("steady limits starve a task: %+v", limits)
	}
}

func TestWarpedSlicerEnvelopeRespectsKernelShape(t *testing.T) {
	full := sm.Resources{Threads: 2048, Regs: 65536, Shared: 65536, CTAs: 32}
	need := sm.Resources{Threads: 256, Regs: 256 * 64, Shared: 8192, CTAs: 1}
	env := envelopeFor(need, 4, full)
	if env.Threads != 1024 || env.CTAs != 4 || env.Shared != 32768 {
		t.Errorf("envelope = %+v", env)
	}
	// Clamped to SM capacity.
	env = envelopeFor(need, 100, full)
	if env.Threads > full.Threads || env.Regs > full.Regs {
		t.Errorf("envelope overflow: %+v", env)
	}
	// Unknown kernel defaults to half.
	env = envelopeFor(sm.Resources{}, 4, full)
	if env.Threads != full.Threads/2 {
		t.Errorf("default envelope = %+v", env)
	}
}

func TestTAPRepartitionsTowardCacheSensitiveTask(t *testing.T) {
	g := newGPU(t, config.RTX3070())
	tap := NewTAP(g, taskOfEvenOdd)
	sets := g.Mem().SetsPerBank()

	// Task 0: cache-friendly reuse of a small line set (same UMON set).
	for i := 0; i < 20000; i++ {
		tap.ObserveL2(0, uint64(i%4)*256, false)
	}
	// Task 1: barely touches memory (HOLO-like).
	for i := 0; i < 100; i++ {
		tap.ObserveL2(1, uint64(i), false)
	}
	tap.Tick(10000)
	r := tap.Regions()
	if r[0].Count <= r[1].Count {
		t.Errorf("TAP regions = %+v, want task 0 dominant", r)
	}
	if r[1].Count < 1 {
		t.Error("TAP must leave the compute task at least one set")
	}
	if r[0].Count+r[1].Count > sets {
		t.Errorf("regions exceed sets per bank: %+v", r)
	}
}

func TestTAPKeepsSMBehaviorOfMPS(t *testing.T) {
	g := newGPU(t, config.RTX3070())
	tap := NewTAP(g, taskOfEvenOdd)
	n0 := 0
	for s := 0; s < g.Config().NumSMs; s++ {
		if tap.AllowSM(s, 0) {
			n0++
		}
	}
	if n0 != g.Config().NumSMs/2 {
		t.Errorf("TAP SM split = %d", n0)
	}
}

func TestTAPIgnoresTinySample(t *testing.T) {
	g := newGPU(t, config.RTX3070())
	tap := NewTAP(g, taskOfEvenOdd)
	before := tap.Regions()[0].Count
	tap.ObserveL2(0, 1, false)
	tap.Tick(100)
	if tap.Regions()[0].Count != before {
		t.Error("TAP repartitioned on statistically empty sample")
	}
}

func TestPoliciesHaveNames(t *testing.T) {
	g := newGPU(t, config.JetsonOrin())
	ps := []gpu.Policy{NewMPS(14), NewMiG(g, taskOfEvenOdd), NewFGEven(g), NewWarpedSlicer(g), NewTAP(g, taskOfEvenOdd)}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name() == "" || seen[p.Name()] {
			t.Errorf("bad or duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
