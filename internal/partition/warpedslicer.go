package partition

import (
	"fmt"

	"crisp/internal/gpu"
	"crisp/internal/obs"
	"crisp/internal/sm"
	"crisp/internal/trace"
)

// wsState is the warped-slicer phase.
type wsState uint8

const (
	wsSampling wsState = iota
	wsSteady
)

// WarpedSlicer implements dynamic intra-SM partitioning (Xu et al.): at
// every kernel launch (and every new drawcall batch) the partition is
// reset; during the sampling phase each SM runs only one of the two tasks
// with a different CTA cap, so the per-task IPC-vs-CTA-count curve can be
// read from per-SM progress counters with no cross-task contention. A
// water-filling pass then picks the CTA split that maximizes combined
// normalized throughput, and the machine switches to fine-grained intra-SM
// sharing at that ratio.
//
// The sampling cost is re-paid on every launch, which is why workloads
// composed of many small kernels (VIO) lose to the static EVEN split in
// paper Fig. 12.
type WarpedSlicer struct {
	g   *gpu.GPU
	cfg wsConfig

	state     wsState
	sampleEnd int64

	// latest kernel resource shapes per task (for envelope math).
	kernelNeed  [2]sm.Resources
	haveKernel  [2]bool
	limits      [2]sm.Resources
	sampleCaps  []int
	resampleCnt int
}

type wsConfig struct {
	sampleCycles int64
}

// NewWarpedSlicer builds the policy attached to g.
func NewWarpedSlicer(g *gpu.GPU) *WarpedSlicer {
	full := sm.Full(g.Config())
	w := &WarpedSlicer{
		g:          g,
		cfg:        wsConfig{sampleCycles: 4096},
		state:      wsSampling,
		sampleCaps: []int{1, 2, 4, 6, 8, 12, 16, 24},
		limits:     [2]sm.Resources{sm.Fraction(full, 1, 2), sm.Fraction(full, 1, 2)},
	}
	g.ResetSMCounters()
	return w
}

// Name implements gpu.Policy.
func (w *WarpedSlicer) Name() string { return "WarpedSlicer" }

// DescribeState implements gpu.StateDescriber: the policy's last decision
// for crash dumps — sampling vs steady, the active envelopes, and how many
// repartitions have run.
func (w *WarpedSlicer) DescribeState() string {
	phase := "steady"
	if w.state == wsSampling {
		phase = "sampling"
	}
	return fmt.Sprintf("%s after %d resamples; envelopes task0={threads:%d regs:%d shared:%d ctas:%d} task1={threads:%d regs:%d shared:%d ctas:%d}",
		phase, w.resampleCnt,
		w.limits[0].Threads, w.limits[0].Regs, w.limits[0].Shared, w.limits[0].CTAs,
		w.limits[1].Threads, w.limits[1].Regs, w.limits[1].Shared, w.limits[1].CTAs)
}

// Resamples reports how many sampling phases have run (one per launch).
func (w *WarpedSlicer) Resamples() int { return w.resampleCnt }

// CurrentLimits reports the active per-task envelopes.
func (w *WarpedSlicer) CurrentLimits() [2]sm.Resources { return w.limits }

// taskOfSamplingSM maps SMs alternately to tasks during sampling so both
// curves are measured in parallel with no contention.
func taskOfSamplingSM(smID int) int { return smID % 2 }

// capOfSamplingSM gives each sampling SM its CTA cap point.
func (w *WarpedSlicer) capOfSamplingSM(smID int) int {
	return w.sampleCaps[(smID/2)%len(w.sampleCaps)]
}

// AllowSM implements gpu.Policy.
func (w *WarpedSlicer) AllowSM(smID, task int) bool {
	if w.state == wsSampling {
		return taskOfSamplingSM(smID) == task
	}
	return task >= 0 && task < 2
}

// Limit implements gpu.Policy.
func (w *WarpedSlicer) Limit(smID, task int) (sm.Resources, bool) {
	if task < 0 || task > 1 {
		return sm.Resources{}, false
	}
	if w.state == wsSampling {
		full := sm.Full(w.g.Config())
		full.CTAs = w.capOfSamplingSM(smID)
		return full, true
	}
	return w.limits[task], true
}

// OnLaunch implements gpu.Policy: every kernel launch or new rendering
// batch resets the dynamic partition and re-samples. The envelope shape
// tracks the component-wise maximum CTA footprint seen for the task:
// rendering streams interleave small vertex kernels with large fragment
// kernels, and an envelope sized only for the most recent launch could
// never place the bigger kernel's CTAs.
func (w *WarpedSlicer) OnLaunch(now int64, k *trace.Kernel, task int) {
	if task >= 0 && task < 2 {
		need := sm.Need(k)
		cur := &w.kernelNeed[task]
		if need.Threads > cur.Threads {
			cur.Threads = need.Threads
		}
		if need.Regs > cur.Regs {
			cur.Regs = need.Regs
		}
		if need.Shared > cur.Shared {
			cur.Shared = need.Shared
		}
		if need.CTAs > cur.CTAs {
			cur.CTAs = need.CTAs
		}
		w.haveKernel[task] = true
	}
	w.state = wsSampling
	w.sampleEnd = now + w.cfg.sampleCycles
	w.resampleCnt++
	if t := w.g.Tracer(); t != nil {
		t.Emit(obs.Event{Cycle: now, Kind: obs.EvRepartition, Stream: -1,
			Task: task, SM: -1, CTA: -1, Name: "resample", Arg: int64(w.resampleCnt)})
	}
	w.g.ResetSMCounters()
}

// Tick implements gpu.Policy: when the sampling window closes, read the
// per-SM progress counters, build the two performance curves, and
// water-fill.
func (w *WarpedSlicer) Tick(now int64) {
	if w.state != wsSampling || now < w.sampleEnd {
		return
	}
	cfg := w.g.Config()
	// perf[task][cap] = instructions retired at that CTA cap.
	perf := [2]map[int]float64{make(map[int]float64), make(map[int]float64)}
	counts := [2]map[int]int{make(map[int]int), make(map[int]int)}
	for smID := 0; smID < cfg.NumSMs; smID++ {
		task := taskOfSamplingSM(smID)
		cap := w.capOfSamplingSM(smID)
		perf[task][cap] += float64(w.g.InstsOnSM(smID, task))
		counts[task][cap]++
	}
	for t := 0; t < 2; t++ {
		for cp, n := range counts[t] {
			if n > 0 {
				perf[t][cp] /= float64(n)
			}
		}
	}
	ca, cb := w.waterFill(perf)
	full := sm.Full(cfg)
	w.limits[0] = envelopeFor(w.kernelNeed[0], ca, full)
	w.limits[1] = envelopeFor(w.kernelNeed[1], cb, full)
	w.state = wsSteady
	if t := w.g.Tracer(); t != nil {
		t.Emit(obs.Event{Cycle: now, Kind: obs.EvRepartition, Stream: -1,
			Task: -1, SM: -1, CTA: -1,
			Name: fmt.Sprintf("split %d:%d CTAs", ca, cb), Arg: int64(ca)<<16 | int64(cb)})
	}
	w.g.ResetSMCounters()
}

// envelopeFor sizes a task's intra-SM envelope to hold ctas CTAs of need.
func envelopeFor(need sm.Resources, ctas int, full sm.Resources) sm.Resources {
	if need.Threads == 0 || ctas <= 0 {
		return sm.Fraction(full, 1, 2)
	}
	env := sm.Resources{
		Threads: need.Threads * ctas,
		Regs:    need.Regs * ctas,
		Shared:  need.Shared * ctas,
		CTAs:    ctas,
	}
	// Clamp to the SM.
	if env.Threads > full.Threads {
		env.Threads = full.Threads
	}
	if env.Regs > full.Regs {
		env.Regs = full.Regs
	}
	if env.Shared > full.Shared {
		env.Shared = full.Shared
	}
	if env.CTAs > full.CTAs {
		env.CTAs = full.CTAs
	}
	return env
}

// waterFill scans candidate CTA splits and keeps the one maximizing the
// sum of normalized per-task performance that fits in one SM.
func (w *WarpedSlicer) waterFill(perf [2]map[int]float64) (int, int) {
	full := sm.Full(w.g.Config())
	maxPerf := [2]float64{}
	for t := 0; t < 2; t++ {
		for _, v := range perf[t] {
			if v > maxPerf[t] {
				maxPerf[t] = v
			}
		}
		if maxPerf[t] == 0 {
			maxPerf[t] = 1
		}
	}
	fits := func(ca, cb int) bool {
		a := envelopeFor(w.kernelNeed[0], ca, full)
		b := envelopeFor(w.kernelNeed[1], cb, full)
		return a.Threads+b.Threads <= full.Threads &&
			a.Regs+b.Regs <= full.Regs &&
			a.Shared+b.Shared <= full.Shared &&
			a.CTAs+b.CTAs <= full.CTAs
	}
	bestA, bestB := 1, 1
	bestScore := -1.0
	for _, ca := range w.sampleCaps {
		pa, okA := perf[0][ca]
		if !okA {
			continue
		}
		for _, cb := range w.sampleCaps {
			pb, okB := perf[1][cb]
			if !okB || !fits(ca, cb) {
				continue
			}
			score := pa/maxPerf[0] + pb/maxPerf[1]
			if score > bestScore {
				bestScore, bestA, bestB = score, ca, cb
			}
		}
	}
	return bestA, bestB
}
