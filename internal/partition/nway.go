package partition

import (
	"encoding/json"
	"fmt"
	"sort"

	"crisp/internal/gpu"
	"crisp/internal/mem"
	"crisp/internal/obs"
	"crisp/internal/sm"
	"crisp/internal/snapshot"
	"crisp/internal/trace"
)

// This file promotes the remaining two-task policies to n tasks for the
// scenario engine's N-tenant mixes, on top of the SMGroups/FGN primitives
// in ntask.go:
//
//   - MiGN:          SM groups plus an n-way L2 bank (and thus DRAM
//     channel) split.
//   - PriorityEvenN: FGN with lower task ids claiming freed resources
//     first (the default when tenants declare no explicit priorities).
//   - TAPN:          SM groups plus utility-monitor-driven n-way L2 set
//     partitioning with the TLP-aware insensitivity clamp.
//   - WarpedSlicerN: n-way sampling of the IPC-vs-CTA-count curves and a
//     greedy water-fill over the per-task CTA caps.
//
// Every decision procedure iterates tasks in ascending id with explicit
// tie-breaks (lowest task wins), so the policies are deterministic under
// any host parallelism.

// MiGN is n-way MiG: contiguous SM groups per task plus a contiguous L2
// bank range per task, which also confines each task to the matching DRAM
// channels.
type MiGN struct {
	SMGroups
}

// NewMiGN builds n-way MiG for g. It needs at least one L2 bank per task.
func NewMiGN(g *gpu.GPU, taskOf func(stream int) int, tasks int) (*MiGN, error) {
	cfg := g.Config()
	if tasks < 1 || tasks > cfg.L2Banks {
		return nil, fmt.Errorf("partition: cannot split %d L2 banks into %d MiG slices", cfg.L2Banks, tasks)
	}
	groups, err := NewSMGroups(cfg.NumSMs, tasks)
	if err != nil {
		return nil, err
	}
	p := &MiGN{SMGroups: *groups}
	banks := make(map[int][]int, tasks)
	for b := 0; b < cfg.L2Banks; b++ {
		t := b * tasks / cfg.L2Banks
		banks[t] = append(banks[t], b)
	}
	g.Mem().SetMapper(&mem.BankMapper{TaskOf: taskOf, Banks: banks})
	return p, nil
}

// Name implements gpu.Policy.
func (p *MiGN) Name() string { return fmt.Sprintf("MiGx%d", p.tasks) }

// PriorityEvenN is the n-way generalization of PriorityEven: every task
// runs on every SM within a 1/n envelope, and pending CTAs of
// lower-numbered tasks claim freed resources first. Tenant-declared
// priorities (gpu.SetTaskPriorities) override this default ordering.
type PriorityEvenN struct {
	FGN
}

// NewPriorityEvenN builds the n-way QoS policy for g.
func NewPriorityEvenN(g *gpu.GPU, tasks int) (*PriorityEvenN, error) {
	f, err := NewFGN(g, tasks)
	if err != nil {
		return nil, err
	}
	return &PriorityEvenN{FGN: *f}, nil
}

// Name implements gpu.Policy.
func (p *PriorityEvenN) Name() string { return fmt.Sprintf("PriorityEvenx%d", p.tasks) }

// Priority implements gpu.Prioritizer: lower task ids first.
func (p *PriorityEvenN) Priority(task int) int { return -task }

// TAPN is n-way TAP: contiguous SM groups, one utility monitor per task,
// and an n-region L2 set split re-decided at long epochs by marginal
// utility with the TLP-aware clamp (tasks whose access stream shows no
// reuse are squeezed to the minimum so cache-sensitive tasks keep the
// capacity).
type TAPN struct {
	SMGroups
	g      *gpu.GPU
	taskOf func(stream int) int
	mapper *mem.SetMapper
	umons  []*mem.UMON

	setsPerBank int
	minSets     int
	epochs      int
}

// NewTAPN builds n-way TAP for g.
func NewTAPN(g *gpu.GPU, taskOf func(stream int) int, tasks int) (*TAPN, error) {
	cfg := g.Config()
	groups, err := NewSMGroups(cfg.NumSMs, tasks)
	if err != nil {
		return nil, err
	}
	t := &TAPN{
		SMGroups:    *groups,
		g:           g,
		taskOf:      taskOf,
		setsPerBank: g.Mem().SetsPerBank(),
		minSets:     1,
	}
	if t.setsPerBank < tasks*t.minSets {
		return nil, fmt.Errorf("partition: cannot split %d L2 sets into %d TAP regions", t.setsPerBank, tasks)
	}
	t.mapper = &mem.SetMapper{TaskOf: taskOf, Regions: regionsFor(evenSets(t.setsPerBank, tasks))}
	t.umons = make([]*mem.UMON, tasks)
	for i := range t.umons {
		t.umons[i] = mem.NewUMON(cfg.L2Assoc, 4)
	}
	g.Mem().SetMapper(t.mapper)
	g.Mem().SetObserver(t)
	return t, nil
}

// Name implements gpu.Policy.
func (t *TAPN) Name() string { return fmt.Sprintf("TAPx%d", t.tasks) }

// Regions reports the current set split.
func (t *TAPN) Regions() map[int]mem.SetRegion { return t.mapper.Regions }

// ObserveL2 implements mem.Observer.
func (t *TAPN) ObserveL2(stream int, lineAddr uint64, hit bool) {
	task := t.taskOf(stream)
	if task >= 0 && task < t.tasks {
		t.umons[task].Observe(lineAddr)
	}
}

// evenSets splits total sets evenly over n tasks; the remainder goes to
// the lowest task ids so the split is a pure function of (total, n).
func evenSets(total, n int) []int {
	sets := make([]int, n)
	base, rem := total/n, total%n
	for i := range sets {
		sets[i] = base
		if i < rem {
			sets[i]++
		}
	}
	return sets
}

// regionsFor lays the per-task set counts out contiguously in task order.
func regionsFor(sets []int) map[int]mem.SetRegion {
	regions := make(map[int]mem.SetRegion, len(sets))
	start := 0
	for t, n := range sets {
		regions[t] = mem.SetRegion{Start: start, Count: n}
		start += n
	}
	return regions
}

// Tick implements gpu.Policy: the same epoch cadence as pairwise TAP —
// decide once after the warmup window, then re-evaluate only at long
// intervals (a set remap is an effective flush).
func (t *TAPN) Tick(now int64) {
	t.epochs++
	if t.epochs > 1 && t.epochs < 32 {
		return
	}
	if t.epochs >= 32 {
		t.epochs = 1
	}
	var total int64
	for _, u := range t.umons {
		total += u.Accesses
	}
	if total < 1024 {
		return
	}
	assoc := len(t.umons[0].WayHits)

	// TLP-aware classification, as in pairwise TAP: "active" means a
	// non-negligible share of the L2 access stream, "sensitive" means the
	// shadow tags show real reuse.
	active := make([]bool, t.tasks)
	sensitive := make([]bool, t.tasks)
	activeCount, sensCount := 0, 0
	for i, u := range t.umons {
		active[i] = u.Accesses*50 >= total
		if active[i] {
			activeCount++
			sensitive[i] = u.Utility(assoc) > u.Accesses/16
			if sensitive[i] {
				sensCount++
			}
		}
	}
	if activeCount == 0 {
		return
	}

	// Inactive tasks hold the minimum; actives share the remainder.
	sets := make([]int, t.tasks)
	avail := t.setsPerBank
	for i := range sets {
		if !active[i] {
			sets[i] = t.minSets
			avail -= t.minSets
		}
	}
	if avail < activeCount*t.minSets {
		sets = evenSets(t.setsPerBank, t.tasks)
	} else if sensCount >= 2 {
		t.sensitiveSplit(sets, active, avail, activeCount, assoc)
	} else {
		// At most one task shows capacity sensitivity: these mixes are
		// bandwidth-bound, so match shared-LRU behavior with an even
		// split over the active tasks (the paper's two-task finding).
		share := evenSets(avail, activeCount)
		j := 0
		for i := range sets {
			if active[i] {
				sets[i] = share[j]
				j++
			}
		}
	}

	// Hysteresis: ignore small deltas — a remap is never worth a few sets.
	maxDelta := 0
	for i, n := range sets {
		d := n - t.mapper.Regions[i].Count
		if d < 0 {
			d = -d
		}
		if d > maxDelta {
			maxDelta = d
		}
	}
	if maxDelta >= 8 {
		t.mapper.Regions = regionsFor(sets)
	}
	for _, u := range t.umons {
		u.Reset()
	}
}

// sensitiveSplit fills sets for the ≥2-sensitive case: assoc ways are
// granted greedily by access-rate-normalized marginal utility across the
// active tasks, then the available sets are split proportionally to
// (ways+1) with a per-active floor of half an even share — the n-way
// analog of pairwise TAP's quarter clamp.
func (t *TAPN) sensitiveSplit(sets []int, active []bool, avail, activeCount, assoc int) {
	ways := make([]int, t.tasks)
	for w := 0; w < assoc; w++ {
		best, bestScore := -1, -1.0
		for i, u := range t.umons {
			if !active[i] {
				continue
			}
			mu := float64(u.MarginalUtility(ways[i]+1)) / float64(max64(u.Accesses, 1))
			if mu > bestScore {
				bestScore, best = mu, i
			}
		}
		ways[best]++
	}
	weightSum := 0
	for i := range ways {
		if active[i] {
			weightSum += ways[i] + 1
		}
	}
	assigned := 0
	for i := range sets {
		if active[i] {
			sets[i] = avail * (ways[i] + 1) / weightSum
			assigned += sets[i]
		}
	}
	// Leftover from integer division goes to the most-weighted active
	// (ties: lowest task).
	if rem := avail - assigned; rem > 0 {
		best := -1
		for i := range ways {
			if active[i] && (best < 0 || ways[i] > ways[best]) {
				best = i
			}
		}
		sets[best] += rem
	}
	// Per-active floor: raise the squeezed, take from the largest.
	floor := avail / (2 * activeCount)
	if floor < t.minSets {
		floor = t.minSets
	}
	for i := range sets {
		if !active[i] {
			continue
		}
		for sets[i] < floor {
			donor := -1
			for j := range sets {
				if active[j] && sets[j] > floor && (donor < 0 || sets[j] > sets[donor]) {
					donor = j
				}
			}
			if donor < 0 {
				break
			}
			give := sets[donor] - floor
			if need := floor - sets[i]; give > need {
				give = need
			}
			sets[donor] -= give
			sets[i] += give
		}
	}
}

// tapNBlob is TAPN's serialized dynamic state.
type tapNBlob struct {
	Epochs  int
	Regions []tapRegion // sorted by task
	UMons   []snapshot.UMONState
}

// CaptureState implements gpu.StateSnapshotter.
func (t *TAPN) CaptureState() ([]byte, error) {
	b := tapNBlob{Epochs: t.epochs}
	for task, r := range t.mapper.Regions {
		b.Regions = append(b.Regions, tapRegion{Task: task, Start: r.Start, Count: r.Count})
	}
	sort.Slice(b.Regions, func(i, j int) bool { return b.Regions[i].Task < b.Regions[j].Task })
	for _, u := range t.umons {
		b.UMons = append(b.UMons, u.CaptureState())
	}
	return json.Marshal(b)
}

// RestoreState implements gpu.StateSnapshotter.
func (t *TAPN) RestoreState(blob []byte) error {
	var b tapNBlob
	if err := json.Unmarshal(blob, &b); err != nil {
		return policyErr("TAPN state blob: %v", err)
	}
	if len(b.Regions) != t.tasks || len(b.UMons) != t.tasks {
		return policyErr("TAPN state blob: %d regions / %d umons for %d tasks", len(b.Regions), len(b.UMons), t.tasks)
	}
	regions := make(map[int]mem.SetRegion, len(b.Regions))
	for _, r := range b.Regions {
		if r.Start < 0 || r.Count < 0 || r.Start+r.Count > t.setsPerBank {
			return policyErr("TAPN state blob: region task=%d [%d,+%d) outside bank of %d sets", r.Task, r.Start, r.Count, t.setsPerBank)
		}
		regions[r.Task] = mem.SetRegion{Start: r.Start, Count: r.Count}
	}
	if len(regions) != t.tasks {
		return policyErr("TAPN state blob: expected %d set regions, got %d", t.tasks, len(regions))
	}
	t.epochs = b.Epochs
	t.mapper.Regions = regions
	for i := range t.umons {
		if err := t.umons[i].RestoreState(b.UMons[i]); err != nil {
			return err
		}
	}
	return nil
}

// WarpedSlicerN is the n-way warped slicer: during sampling, SM smID runs
// only task smID%n at CTA cap sampleCaps[(smID/n)%len(sampleCaps)], so all
// n IPC-vs-CTA-count curves are measured in parallel with no cross-task
// contention; the steady split is then chosen by a greedy water-fill that
// repeatedly raises the cap with the best normalized marginal gain while
// the combined envelopes still fit in one SM.
type WarpedSlicerN struct {
	g     *gpu.GPU
	tasks int
	cfg   wsConfig

	state     wsState
	sampleEnd int64

	kernelNeed  []sm.Resources
	haveKernel  []bool
	limits      []sm.Resources
	sampleCaps  []int
	resampleCnt int
}

// NewWarpedSlicerN builds the n-way policy attached to g.
func NewWarpedSlicerN(g *gpu.GPU, tasks int) (*WarpedSlicerN, error) {
	if tasks < 1 {
		return nil, fmt.Errorf("partition: WarpedSlicerN needs at least one task")
	}
	full := sm.Full(g.Config())
	w := &WarpedSlicerN{
		g:          g,
		tasks:      tasks,
		cfg:        wsConfig{sampleCycles: 4096},
		state:      wsSampling,
		sampleCaps: []int{1, 2, 4, 6, 8, 12, 16, 24},
		kernelNeed: make([]sm.Resources, tasks),
		haveKernel: make([]bool, tasks),
		limits:     make([]sm.Resources, tasks),
	}
	for i := range w.limits {
		w.limits[i] = sm.Fraction(full, 1, tasks)
	}
	g.ResetSMCounters()
	return w, nil
}

// Name implements gpu.Policy.
func (w *WarpedSlicerN) Name() string { return fmt.Sprintf("WarpedSlicerx%d", w.tasks) }

// Resamples reports how many sampling phases have run.
func (w *WarpedSlicerN) Resamples() int { return w.resampleCnt }

// capOfSamplingSMN gives each sampling SM its CTA cap point.
func (w *WarpedSlicerN) capOfSamplingSMN(smID int) int {
	return w.sampleCaps[(smID/w.tasks)%len(w.sampleCaps)]
}

// AllowSM implements gpu.Policy.
func (w *WarpedSlicerN) AllowSM(smID, task int) bool {
	if task < 0 || task >= w.tasks {
		return false
	}
	if w.state == wsSampling {
		return smID%w.tasks == task
	}
	return true
}

// Limit implements gpu.Policy.
func (w *WarpedSlicerN) Limit(smID, task int) (sm.Resources, bool) {
	if task < 0 || task >= w.tasks {
		return sm.Resources{}, false
	}
	if w.state == wsSampling {
		full := sm.Full(w.g.Config())
		full.CTAs = w.capOfSamplingSMN(smID)
		return full, true
	}
	return w.limits[task], true
}

// OnLaunch implements gpu.Policy: every launch resets the partition and
// re-samples, tracking the component-wise maximum CTA footprint per task
// (as pairwise does).
func (w *WarpedSlicerN) OnLaunch(now int64, k *trace.Kernel, task int) {
	if task >= 0 && task < w.tasks {
		need := sm.Need(k)
		cur := &w.kernelNeed[task]
		if need.Threads > cur.Threads {
			cur.Threads = need.Threads
		}
		if need.Regs > cur.Regs {
			cur.Regs = need.Regs
		}
		if need.Shared > cur.Shared {
			cur.Shared = need.Shared
		}
		if need.CTAs > cur.CTAs {
			cur.CTAs = need.CTAs
		}
		w.haveKernel[task] = true
	}
	w.state = wsSampling
	w.sampleEnd = now + w.cfg.sampleCycles
	w.resampleCnt++
	if t := w.g.Tracer(); t != nil {
		t.Emit(obs.Event{Cycle: now, Kind: obs.EvRepartition, Stream: -1,
			Task: task, SM: -1, CTA: -1, Name: "resample", Arg: int64(w.resampleCnt)})
	}
	w.g.ResetSMCounters()
}

// envelopeForN sizes a task's intra-SM envelope to hold ctas CTAs of need.
func envelopeForN(need sm.Resources, ctas int, full sm.Resources, tasks int) sm.Resources {
	if need.Threads == 0 || ctas <= 0 {
		return sm.Fraction(full, 1, tasks)
	}
	return envelopeFor(need, ctas, full)
}

// Tick implements gpu.Policy: when the sampling window closes, read the
// curves and water-fill.
func (w *WarpedSlicerN) Tick(now int64) {
	if w.state != wsSampling || now < w.sampleEnd {
		return
	}
	cfg := w.g.Config()
	// perf[task][capIdx] = mean instructions retired at that CTA cap
	// (indices into sampleCaps; -1 count = cap never sampled).
	perf := make([][]float64, w.tasks)
	counts := make([][]int, w.tasks)
	for t := range perf {
		perf[t] = make([]float64, len(w.sampleCaps))
		counts[t] = make([]int, len(w.sampleCaps))
	}
	for smID := 0; smID < cfg.NumSMs; smID++ {
		task := smID % w.tasks
		ci := (smID / w.tasks) % len(w.sampleCaps)
		perf[task][ci] += float64(w.g.InstsOnSM(smID, task))
		counts[task][ci]++
	}
	for t := range perf {
		for ci, n := range counts[t] {
			if n > 0 {
				perf[t][ci] /= float64(n)
			}
		}
	}
	caps := w.waterFillN(perf, counts)
	full := sm.Full(cfg)
	for t := range w.limits {
		w.limits[t] = envelopeForN(w.kernelNeed[t], caps[t], full, w.tasks)
	}
	w.state = wsSteady
	if tr := w.g.Tracer(); tr != nil {
		tr.Emit(obs.Event{Cycle: now, Kind: obs.EvRepartition, Stream: -1,
			Task: -1, SM: -1, CTA: -1,
			Name: fmt.Sprintf("split %v CTAs", caps), Arg: int64(w.resampleCnt)})
	}
	w.g.ResetSMCounters()
}

// waterFillN picks per-task CTA caps greedily: start every task at its
// smallest sampled cap, then repeatedly raise the task whose next cap
// yields the best normalized throughput gain while the combined envelopes
// still fit in one SM (ties: lowest task id). If even the floor does not
// fit, every task falls back to the 1/n static split.
func (w *WarpedSlicerN) waterFillN(perf [][]float64, counts [][]int) []int {
	full := sm.Full(w.g.Config())
	// Per-task list of sampled cap indices (ascending) and the curve max.
	sampled := make([][]int, w.tasks)
	maxPerf := make([]float64, w.tasks)
	for t := range perf {
		for ci, n := range counts[t] {
			if n == 0 {
				continue
			}
			sampled[t] = append(sampled[t], ci)
			if perf[t][ci] > maxPerf[t] {
				maxPerf[t] = perf[t][ci]
			}
		}
		if maxPerf[t] == 0 {
			maxPerf[t] = 1
		}
	}
	caps := make([]int, w.tasks)
	idx := make([]int, w.tasks)
	for t := range caps {
		if len(sampled[t]) == 0 {
			// No SM sampled this task (more tasks than SMs per cap
			// point): hold the smallest cap.
			caps[t] = w.sampleCaps[0]
			idx[t] = -1
			continue
		}
		caps[t] = w.sampleCaps[sampled[t][0]]
	}
	fits := func(caps []int) bool {
		var sum sm.Resources
		for t, c := range caps {
			e := envelopeForN(w.kernelNeed[t], c, full, w.tasks)
			sum.Threads += e.Threads
			sum.Regs += e.Regs
			sum.Shared += e.Shared
			sum.CTAs += e.CTAs
		}
		return sum.Threads <= full.Threads && sum.Regs <= full.Regs &&
			sum.Shared <= full.Shared && sum.CTAs <= full.CTAs
	}
	if !fits(caps) {
		for t := range caps {
			caps[t] = 0 // envelopeForN maps 0 to the 1/n fallback
		}
		return caps
	}
	for {
		best, bestGain := -1, 0.0
		for t := range caps {
			if idx[t] < 0 || idx[t]+1 >= len(sampled[t]) {
				continue
			}
			cur, next := sampled[t][idx[t]], sampled[t][idx[t]+1]
			gain := (perf[t][next] - perf[t][cur]) / maxPerf[t]
			if gain <= bestGain {
				continue
			}
			trial := make([]int, len(caps))
			copy(trial, caps)
			trial[t] = w.sampleCaps[next]
			if fits(trial) {
				best, bestGain = t, gain
			}
		}
		if best < 0 {
			return caps
		}
		idx[best]++
		caps[best] = w.sampleCaps[sampled[best][idx[best]]]
	}
}

// wsNBlob is WarpedSlicerN's serialized dynamic state.
type wsNBlob struct {
	State       uint8
	SampleEnd   int64
	KernelNeed  []sm.Resources
	HaveKernel  []bool
	Limits      []sm.Resources
	ResampleCnt int
}

// CaptureState implements gpu.StateSnapshotter.
func (w *WarpedSlicerN) CaptureState() ([]byte, error) {
	return json.Marshal(wsNBlob{
		State:       uint8(w.state),
		SampleEnd:   w.sampleEnd,
		KernelNeed:  w.kernelNeed,
		HaveKernel:  w.haveKernel,
		Limits:      w.limits,
		ResampleCnt: w.resampleCnt,
	})
}

// RestoreState implements gpu.StateSnapshotter.
func (w *WarpedSlicerN) RestoreState(blob []byte) error {
	var b wsNBlob
	if err := json.Unmarshal(blob, &b); err != nil {
		return policyErr("WarpedSlicerN state blob: %v", err)
	}
	if b.State > uint8(wsSteady) {
		return policyErr("WarpedSlicerN state blob: unknown phase %d", b.State)
	}
	if len(b.KernelNeed) != w.tasks || len(b.HaveKernel) != w.tasks || len(b.Limits) != w.tasks {
		return policyErr("WarpedSlicerN state blob: sized for %d tasks, policy runs %d", len(b.Limits), w.tasks)
	}
	w.state = wsState(b.State)
	w.sampleEnd = b.SampleEnd
	w.kernelNeed = b.KernelNeed
	w.haveKernel = b.HaveKernel
	w.limits = b.Limits
	w.resampleCnt = b.ResampleCnt
	return nil
}

var _ gpu.Policy = (*MiGN)(nil)
var _ gpu.Policy = (*PriorityEvenN)(nil)
var _ gpu.Prioritizer = (*PriorityEvenN)(nil)
var _ gpu.Policy = (*TAPN)(nil)
var _ mem.Observer = (*TAPN)(nil)
var _ gpu.StateSnapshotter = (*TAPN)(nil)
var _ gpu.Policy = (*WarpedSlicerN)(nil)
var _ gpu.StateSnapshotter = (*WarpedSlicerN)(nil)
