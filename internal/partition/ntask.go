package partition

import (
	"fmt"

	"crisp/internal/gpu"
	"crisp/internal/sm"
	"crisp/internal/trace"
)

// The paper's limitation section notes the framework "can be easily
// extended to support more than 2 workloads"; these policies provide that
// extension: n-way inter-SM grouping (SMGroups, the MPS generalization)
// and n-way intra-SM splitting (FGN, the EVEN generalization).

// SMGroups assigns contiguous, near-equal SM groups to n tasks.
type SMGroups struct {
	numSMs int
	tasks  int
}

// NewSMGroups builds an n-way inter-SM partition.
func NewSMGroups(numSMs, tasks int) (*SMGroups, error) {
	if tasks < 1 || tasks > numSMs {
		return nil, fmt.Errorf("partition: cannot split %d SMs into %d groups", numSMs, tasks)
	}
	return &SMGroups{numSMs: numSMs, tasks: tasks}, nil
}

// Name implements gpu.Policy.
func (p *SMGroups) Name() string { return fmt.Sprintf("MPSx%d", p.tasks) }

// AllowSM implements gpu.Policy.
func (p *SMGroups) AllowSM(smID, task int) bool {
	if task < 0 || task >= p.tasks {
		return false
	}
	return smID*p.tasks/p.numSMs == task
}

// Limit implements gpu.Policy.
func (p *SMGroups) Limit(smID, task int) (sm.Resources, bool) { return sm.Resources{}, false }

// OnLaunch implements gpu.Policy.
func (p *SMGroups) OnLaunch(now int64, k *trace.Kernel, task int) {}

// Tick implements gpu.Policy.
func (p *SMGroups) Tick(now int64) {}

// FGN is n-way fine-grained intra-SM partitioning: every task runs on
// every SM within a 1/n resource envelope.
type FGN struct {
	tasks int
	limit sm.Resources
}

// NewFGN builds an n-way intra-SM even split for g.
func NewFGN(g *gpu.GPU, tasks int) (*FGN, error) {
	if tasks < 1 {
		return nil, fmt.Errorf("partition: FGN needs at least one task")
	}
	return &FGN{tasks: tasks, limit: sm.Fraction(sm.Full(g.Config()), 1, tasks)}, nil
}

// Name implements gpu.Policy.
func (p *FGN) Name() string { return fmt.Sprintf("EVENx%d", p.tasks) }

// AllowSM implements gpu.Policy.
func (p *FGN) AllowSM(smID, task int) bool { return task >= 0 && task < p.tasks }

// Limit implements gpu.Policy.
func (p *FGN) Limit(smID, task int) (sm.Resources, bool) {
	if task < 0 || task >= p.tasks {
		return sm.Resources{}, false
	}
	return p.limit, true
}

// OnLaunch implements gpu.Policy.
func (p *FGN) OnLaunch(now int64, k *trace.Kernel, task int) {}

// Tick implements gpu.Policy.
func (p *FGN) Tick(now int64) {}

// PriorityEven is the QoS-aware variant of intra-SM sharing the paper's
// future work points toward: resources split evenly, but the rendering
// task's pending CTAs claim freed resources first, protecting the frame
// deadline while compute soaks up the remainder.
type PriorityEven struct {
	FG
}

// NewPriorityEven builds the QoS policy for g.
func NewPriorityEven(g *gpu.GPU) *PriorityEven {
	p := &PriorityEven{FG: *NewFGEven(g)}
	p.FG.label = "PriorityEven"
	return p
}

// Priority implements gpu.Prioritizer: graphics (task 0) first.
func (p *PriorityEven) Priority(task int) int { return -task }

var _ gpu.Policy = (*SMGroups)(nil)
var _ gpu.Policy = (*FGN)(nil)
var _ gpu.Policy = (*PriorityEven)(nil)
var _ gpu.Prioritizer = (*PriorityEven)(nil)
