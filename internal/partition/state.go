package partition

import (
	"encoding/json"
	"fmt"
	"sort"

	"crisp/internal/mem"
	"crisp/internal/robust"
	"crisp/internal/sm"
	"crisp/internal/snapshot"
)

// This file implements gpu.StateSnapshotter for the two policies with
// dynamic state: WarpedSlicer (sampling phase, measured envelopes) and TAP
// (epoch counter, set split, utility-monitor shadow tags). The blobs are
// JSON with sorted slices, so a policy blob — like everything else in a
// snapshot — is byte-deterministic for a given state. The remaining
// policies (MPS, MiG, the static intra-SM splits) are stateless: their
// behavior is fully determined by name and config, so they serialize to
// nothing.

func policyErr(format string, args ...any) error {
	return &robust.SimError{Kind: robust.KindSnapshot, Msg: fmt.Sprintf(format, args...)}
}

// wsBlob is WarpedSlicer's serialized dynamic state.
type wsBlob struct {
	State       uint8
	SampleEnd   int64
	KernelNeed  [2]sm.Resources
	HaveKernel  [2]bool
	Limits      [2]sm.Resources
	ResampleCnt int
}

// CaptureState implements gpu.StateSnapshotter.
func (w *WarpedSlicer) CaptureState() ([]byte, error) {
	return json.Marshal(wsBlob{
		State:       uint8(w.state),
		SampleEnd:   w.sampleEnd,
		KernelNeed:  w.kernelNeed,
		HaveKernel:  w.haveKernel,
		Limits:      w.limits,
		ResampleCnt: w.resampleCnt,
	})
}

// RestoreState implements gpu.StateSnapshotter.
func (w *WarpedSlicer) RestoreState(blob []byte) error {
	var b wsBlob
	if err := json.Unmarshal(blob, &b); err != nil {
		return policyErr("WarpedSlicer state blob: %v", err)
	}
	if b.State > uint8(wsSteady) {
		return policyErr("WarpedSlicer state blob: unknown phase %d", b.State)
	}
	w.state = wsState(b.State)
	w.sampleEnd = b.SampleEnd
	w.kernelNeed = b.KernelNeed
	w.haveKernel = b.HaveKernel
	w.limits = b.Limits
	w.resampleCnt = b.ResampleCnt
	return nil
}

// tapRegion is one task's set region, keyed for sorting.
type tapRegion struct {
	Task  int
	Start int
	Count int
}

// tapBlob is TAP's serialized dynamic state.
type tapBlob struct {
	Epochs  int
	Regions []tapRegion // sorted by task
	UMons   [2]snapshot.UMONState
}

// CaptureState implements gpu.StateSnapshotter.
func (t *TAP) CaptureState() ([]byte, error) {
	b := tapBlob{Epochs: t.epochs}
	for task, r := range t.mapper.Regions {
		b.Regions = append(b.Regions, tapRegion{Task: task, Start: r.Start, Count: r.Count})
	}
	sort.Slice(b.Regions, func(i, j int) bool { return b.Regions[i].Task < b.Regions[j].Task })
	b.UMons[0] = t.umons[0].CaptureState()
	b.UMons[1] = t.umons[1].CaptureState()
	return json.Marshal(b)
}

// RestoreState implements gpu.StateSnapshotter.
func (t *TAP) RestoreState(blob []byte) error {
	var b tapBlob
	if err := json.Unmarshal(blob, &b); err != nil {
		return policyErr("TAP state blob: %v", err)
	}
	regions := make(map[int]mem.SetRegion, len(b.Regions))
	for _, r := range b.Regions {
		if r.Start < 0 || r.Count < 0 || r.Start+r.Count > t.setsPerBank {
			return policyErr("TAP state blob: region task=%d [%d,+%d) outside bank of %d sets", r.Task, r.Start, r.Count, t.setsPerBank)
		}
		regions[r.Task] = mem.SetRegion{Start: r.Start, Count: r.Count}
	}
	if len(regions) != 2 {
		return policyErr("TAP state blob: expected 2 set regions, got %d", len(regions))
	}
	t.epochs = b.Epochs
	t.mapper.Regions = regions
	for i := range t.umons {
		if err := t.umons[i].RestoreState(b.UMons[i]); err != nil {
			return err
		}
	}
	return nil
}
