package partition

import (
	"crisp/internal/gpu"
	"crisp/internal/mem"
)

// TAP applies TLP-aware utility-based cache partitioning to the shared L2
// on top of MPS inter-SM sharing (Lee & Kim, adapted to two GPU tasks as
// the paper does). Each task has a utility monitor sampling its L2 access
// stream; at every repartition epoch the set split is chosen by marginal
// utility, with the TLP-aware correction: a task whose access stream shows
// no cache sensitivity (compute-bound, e.g. HOLO) is clamped to the
// minimum allocation so the cache-sensitive task keeps the capacity
// (paper Figs. 14-15).
type TAP struct {
	MPS
	g      *gpu.GPU
	taskOf func(stream int) int
	mapper *mem.SetMapper
	umons  [2]*mem.UMON

	setsPerBank int
	minSets     int
	epochs      int
}

// NewTAP builds TAP for g: even SM split, shared banks, set-partitioned
// mapper, and observers wired into the memory system.
func NewTAP(g *gpu.GPU, taskOf func(stream int) int) *TAP {
	cfg := g.Config()
	t := &TAP{
		MPS:         MPS{taskOfSM: splitSMs(cfg.NumSMs, cfg.NumSMs/2)},
		g:           g,
		taskOf:      taskOf,
		setsPerBank: g.Mem().SetsPerBank(),
		minSets:     1,
	}
	half := t.setsPerBank / 2
	t.mapper = &mem.SetMapper{
		TaskOf: taskOf,
		Regions: map[int]mem.SetRegion{
			0: {Start: 0, Count: half},
			1: {Start: half, Count: t.setsPerBank - half},
		},
	}
	t.umons[0] = mem.NewUMON(cfg.L2Assoc, 4)
	t.umons[1] = mem.NewUMON(cfg.L2Assoc, 4)
	g.Mem().SetMapper(t.mapper)
	g.Mem().SetObserver(t)
	return t
}

// Name implements gpu.Policy.
func (t *TAP) Name() string { return "TAP" }

// Regions reports the current set split (for the composition study).
func (t *TAP) Regions() map[int]mem.SetRegion { return t.mapper.Regions }

// ObserveL2 implements mem.Observer, feeding the task's utility monitor.
func (t *TAP) ObserveL2(stream int, lineAddr uint64, hit bool) {
	task := t.taskOf(stream)
	if task >= 0 && task < 2 {
		t.umons[task].Observe(lineAddr)
	}
}

// Tick implements gpu.Policy: repartition by marginal utility with the
// TLP-aware insensitivity clamp. Because reassigning sets remaps resident
// lines (an effective flush), the split is decided once after a warmup
// sampling window and then re-evaluated only at long intervals — frequent
// re-partitioning costs more in remap misses than any allocation gain.
func (t *TAP) Tick(now int64) {
	t.epochs++
	if t.epochs > 1 && t.epochs < 32 {
		return
	}
	if t.epochs >= 32 {
		t.epochs = 1
	}
	u0, u1 := t.umons[0], t.umons[1]
	if u0.Accesses+u1.Accesses < 1024 {
		return
	}
	assoc := len(u0.WayHits)

	// TLP-aware classification. "Active" means the task contributes a
	// non-negligible share of L2 accesses; "sensitive" means its shadow
	// tags show real reuse (cache capacity would convert misses to hits).
	total := u0.Accesses + u1.Accesses
	active := func(u *mem.UMON) bool { return u.Accesses*50 >= total }
	sens := func(u *mem.UMON) bool {
		return active(u) && u.Utility(assoc) > u.Accesses/16
	}
	a0, a1 := active(u0), active(u1)
	s0, s1 := sens(u0), sens(u1)

	half := t.setsPerBank / 2
	quarter := t.setsPerBank / 4
	var sets0 int
	switch {
	case !a0 && a1:
		// Task 0 barely touches memory (e.g. HOLO as task 0): hand the
		// cache to task 1.
		sets0 = t.minSets
	case a0 && !a1:
		sets0 = t.setsPerBank - t.minSets
	case s0 && s1:
		// Both reuse: split by access-rate-normalized utility (TAP's
		// hit-rate comparison, not raw hit counts).
		w0, w1 := 0, 0
		for w0+w1 < assoc {
			m0 := float64(u0.MarginalUtility(w0+1)) / float64(max64(u0.Accesses, 1))
			m1 := float64(u1.MarginalUtility(w1+1)) / float64(max64(u1.Accesses, 1))
			if m0 >= m1 {
				w0++
			} else {
				w1++
			}
		}
		sets0 = t.setsPerBank * (w0*256/assoc) / 256
		if sets0 < quarter {
			sets0 = quarter
		}
		if sets0 > t.setsPerBank-quarter {
			sets0 = t.setsPerBank - quarter
		}
	default:
		// At most one task shows capacity sensitivity and both are
		// active: these pairs are bandwidth-, not capacity-bound, so
		// TAP matches shared-LRU behavior with an even split rather
		// than squeezing the streaming task into conflict misses —
		// the paper's finding that TAP shows no speedup over MPS
		// because "the baseline cache replacement policy, LRU, is
		// efficient enough".
		sets0 = half
	}
	_ = s0
	_ = s1
	if sets0 < t.minSets {
		sets0 = t.minSets
	}
	if sets0 > t.setsPerBank-t.minSets {
		sets0 = t.setsPerBank - t.minSets
	}

	// Hysteresis: ignore small deltas — a remap is never worth a few
	// sets.
	cur := t.mapper.Regions[0].Count
	if d := sets0 - cur; d > -8 && d < 8 {
		u0.Reset()
		u1.Reset()
		return
	}
	t.mapper.Regions = map[int]mem.SetRegion{
		0: {Start: 0, Count: sets0},
		1: {Start: sets0, Count: t.setsPerBank - sets0},
	}
	u0.Reset()
	u1.Reset()
}

var _ mem.Observer = (*TAP)(nil)
var _ gpu.Policy = (*TAP)(nil)
var _ gpu.Policy = (*MPS)(nil)
var _ gpu.Policy = (*MiG)(nil)
var _ gpu.Policy = (*FG)(nil)
var _ gpu.Policy = (*WarpedSlicer)(nil)

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
