// Package stats provides the measurement toolkit for CRISP experiments:
// per-stream simulation counters, correlation metrics (Pearson r, MAPE),
// histograms, occupancy timelines, and plain-text table rendering for the
// benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"crisp/internal/obs"
)

// Stream aggregates the per-stream counters the paper's per-stream-stats
// extension tracks. Statistics are kept per stream because aggregated
// counters are misleading under concurrent execution.
type Stream struct {
	Stream int
	Label  string

	Cycles      int64 // cycles from first issue to last commit of the stream
	WarpInsts   int64
	ThreadInsts int64

	L1Accesses int64
	L1Misses   int64
	L2Accesses int64
	L2Misses   int64
	DRAMReads  int64 // bytes
	DRAMWrites int64 // bytes

	TexAccesses int64 // TEX instructions issued to L1

	KernelsLaunched int
	CTAsLaunched    int

	// Stalls counts scheduler issue slots in which this stream's
	// earliest-ready warp could not issue, by cause (indexed by
	// obs.StallCause). Together with WarpInsts (issues) and the GPU's
	// empty-slot count these partition every scheduler slot.
	Stalls [obs.NumStallCauses]int64
}

// StallTotal is the total attributed stall slots across all causes.
func (s *Stream) StallTotal() int64 {
	var n int64
	for _, v := range s.Stalls {
		n += v
	}
	return n
}

// StallFraction reports cause's share of the stream's scheduler slots
// (issues + stalls); 0 when the stream never held a slot.
func (s *Stream) StallFraction(cause obs.StallCause) float64 {
	slots := s.WarpInsts + s.StallTotal()
	if slots == 0 {
		return 0
	}
	return float64(s.Stalls[cause]) / float64(slots)
}

// IPC is warp instructions per cycle over the stream's active window.
func (s *Stream) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WarpInsts) / float64(s.Cycles)
}

// L1HitRate is the L1 data-cache hit rate.
func (s *Stream) L1HitRate() float64 { return hitRate(s.L1Accesses, s.L1Misses) }

// L2HitRate is the L2 cache hit rate.
func (s *Stream) L2HitRate() float64 { return hitRate(s.L2Accesses, s.L2Misses) }

func hitRate(acc, miss int64) float64 {
	if acc == 0 {
		return 0
	}
	return 1 - float64(miss)/float64(acc)
}

// Add accumulates o into s (used when folding kernels of one stream).
func (s *Stream) Add(o *Stream) {
	s.WarpInsts += o.WarpInsts
	s.ThreadInsts += o.ThreadInsts
	s.L1Accesses += o.L1Accesses
	s.L1Misses += o.L1Misses
	s.L2Accesses += o.L2Accesses
	s.L2Misses += o.L2Misses
	s.DRAMReads += o.DRAMReads
	s.DRAMWrites += o.DRAMWrites
	s.TexAccesses += o.TexAccesses
	s.KernelsLaunched += o.KernelsLaunched
	s.CTAsLaunched += o.CTAsLaunched
	for i := range s.Stalls {
		s.Stalls[i] += o.Stalls[i]
	}
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when fewer than two points or zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// MAPE returns the mean absolute percentage error of predictions pred
// against references ref, as a fraction (0.33 = 33%). Reference points
// equal to zero are skipped.
func MAPE(ref, pred []float64) float64 {
	if len(ref) != len(pred) || len(ref) == 0 {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range ref {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// GeoMean returns the geometric mean of xs (all must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Histogram is an integer-valued histogram with unit-width bins.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int)} }

// Observe adds one sample.
func (h *Histogram) Observe(v int) { h.counts[v]++; h.total++ }

// Total reports the number of samples.
func (h *Histogram) Total() int { return h.total }

// Count reports the number of samples with value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Mean reports the sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s int
	for v, c := range h.counts {
		s += v * c
	}
	return float64(s) / float64(h.total)
}

// Mode reports the most frequent value (smallest on ties). Ties resolve
// to the smallest value without sorting: a single pass tracks the best
// (count, value) pair.
func (h *Histogram) Mode() int {
	best, bestC := 0, -1
	for v, c := range h.counts {
		if c > bestC || (c == bestC && v < best) {
			best, bestC = v, c
		}
	}
	if bestC < 0 {
		return 0
	}
	return best
}

// Quantile reports the q-quantile (0..1) of the samples. The sorted key
// slice is built exactly once per call.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	keys := h.sortedKeys()
	seen := 0
	for _, v := range keys {
		seen += h.counts[v]
		if seen >= target {
			return v
		}
	}
	return keys[len(keys)-1]
}

func (h *Histogram) sortedKeys() []int {
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	return keys
}

// String renders the histogram as an ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	for _, v := range h.sortedKeys() {
		c := h.counts[v]
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
		}
		fmt.Fprintf(&b, "%6d | %-40s %d\n", v, bar, c)
	}
	return b.String()
}

// OccupancySample is one point of a per-stream occupancy timeline
// (paper Fig. 13).
type OccupancySample struct {
	Cycle int64
	// WarpsByStream maps stream id to resident warps across the GPU.
	WarpsByStream map[int]int
}

// Timeline accumulates occupancy samples at a fixed cycle interval.
type Timeline struct {
	Interval int64
	Samples  []OccupancySample
}

// Table renders aligned plain-text tables for harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hcell := range t.Header {
		widths[i] = len(hcell)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (the artifact's output
// format: "Several CSV files should be generated … contain simulation
// statistics such as execution cycles and cache hit rates"). Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with 3 significant decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
