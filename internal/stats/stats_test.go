package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crisp/internal/obs"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonEdgeCases(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("single point should give 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(xs [8]float64, ys [8]float64) bool {
		for _, v := range append(xs[:], ys[:]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(xs[:], ys[:])
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMAPE(t *testing.T) {
	ref := []float64{100, 200}
	pred := []float64{110, 180}
	// (0.10 + 0.10)/2 = 0.10
	if m := MAPE(ref, pred); math.Abs(m-0.10) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.10", m)
	}
	// Zero reference entries are skipped.
	if m := MAPE([]float64{0, 100}, []float64{5, 150}); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("MAPE with zero ref = %v, want 0.5", m)
	}
	if !math.IsNaN(MAPE(nil, nil)) {
		t.Error("empty MAPE should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{3, 4, 4, 5, 4, 3} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Mode() != 4 {
		t.Errorf("Mode = %d, want 4", h.Mode())
	}
	if m := h.Mean(); math.Abs(m-23.0/6) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Errorf("median = %d, want 4", q)
	}
	if q := h.Quantile(1.0); q != 5 {
		t.Errorf("max = %d, want 5", q)
	}
	if h.Count(4) != 3 {
		t.Errorf("Count(4) = %d", h.Count(4))
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(i % 13)
	}
	prev := -1
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone at %v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestStreamRates(t *testing.T) {
	s := Stream{Cycles: 100, WarpInsts: 250, L1Accesses: 100, L1Misses: 30, L2Accesses: 30, L2Misses: 15}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.L1HitRate() != 0.7 {
		t.Errorf("L1 = %v", s.L1HitRate())
	}
	if s.L2HitRate() != 0.5 {
		t.Errorf("L2 = %v", s.L2HitRate())
	}
	empty := Stream{}
	if empty.IPC() != 0 || empty.L1HitRate() != 0 {
		t.Error("zero stream rates should be 0")
	}
}

func TestStreamAdd(t *testing.T) {
	a := Stream{Cycles: 10, WarpInsts: 5, L1Accesses: 2}
	b := Stream{Cycles: 20, WarpInsts: 7, L1Accesses: 3}
	a.Add(&b)
	if a.WarpInsts != 12 || a.L1Accesses != 5 {
		t.Error("Add did not accumulate")
	}
	if a.Cycles != 20 {
		t.Errorf("Add should keep max cycles, got %d", a.Cycles)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("x", "1.5")
	tb.AddRow("longer-name", "2")
	s := tb.String()
	if !strings.Contains(s, "longer-name") || !strings.Contains(s, "name") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %s", F(1.23456))
	}
	if Pct(0.948) != "94.8%" {
		t.Errorf("Pct = %s", Pct(0.948))
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "x")
	csv := tb.CSV()
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestHistogramModeTies(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{5, 5, 3, 3, 9} {
		h.Observe(v)
	}
	// 3 and 5 tie at two samples each; the smaller value wins.
	if m := h.Mode(); m != 3 {
		t.Errorf("Mode = %d, want 3 (smallest tied value)", m)
	}
	if m := NewHistogram().Mode(); m != 0 {
		t.Errorf("empty Mode = %d, want 0", m)
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %d, want 1", q)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("Quantile(0.5) = %d, want 50", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %d, want 100", q)
	}
	// q > 1 must clamp to the largest key, not panic.
	if q := h.Quantile(1.5); q != 100 {
		t.Errorf("Quantile(1.5) = %d, want 100", q)
	}
}

func TestStreamStallAccounting(t *testing.T) {
	s := &Stream{WarpInsts: 60}
	s.Stalls[obs.StallScoreboard] = 30
	s.Stalls[obs.StallMemPending] = 10
	if got := s.StallTotal(); got != 40 {
		t.Errorf("StallTotal = %d, want 40", got)
	}
	if f := s.StallFraction(obs.StallScoreboard); f != 0.3 {
		t.Errorf("StallFraction(scoreboard) = %f, want 0.3", f)
	}
	if f := (&Stream{}).StallFraction(obs.StallScoreboard); f != 0 {
		t.Errorf("empty StallFraction = %f, want 0", f)
	}

	var o Stream
	o.Stalls[obs.StallScoreboard] = 5
	o.Stalls[obs.StallBarrier] = 2
	s.Add(&o)
	if s.Stalls[obs.StallScoreboard] != 35 || s.Stalls[obs.StallBarrier] != 2 {
		t.Errorf("Add did not fold stalls: %v", s.Stalls)
	}
}
