package shader

import (
	"math"
	"testing"
	"testing/quick"

	"crisp/internal/gmath"
	"crisp/internal/isa"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

func newWarpCtx() (*Ctx, *trace.Builder) {
	b := trace.NewBuilder("test", trace.KindCompute, 0, 32, 32, 0)
	b.BeginCTA()
	b.BeginWarp()
	return NewCtx(b, trace.FullMask), b
}

func TestArithmeticOpsComputeAndEmit(t *testing.T) {
	c, b := newWarpCtx()
	two := c.Imm(2)
	three := c.Imm(3)
	sum := c.Add(two, three)
	prod := c.Mul(two, three)
	fma := c.FMA(two, three, sum)
	diff := c.Sub(three, two)
	for i := 0; i < Lanes; i++ {
		if sum.V[i] != 5 || prod.V[i] != 6 || fma.V[i] != 11 || diff.V[i] != 1 {
			t.Fatalf("lane %d: %v %v %v %v", i, sum.V[i], prod.V[i], fma.V[i], diff.V[i])
		}
	}
	k := b.Finish()
	h := k.OpHistogram()
	if h[isa.OpFADD] != 2 || h[isa.OpFMUL] != 1 || h[isa.OpFFMA] != 1 || h[isa.OpMOV] != 2 {
		t.Errorf("trace histogram = %v", h)
	}
}

func TestSpecialFunctions(t *testing.T) {
	c, b := newWarpCtx()
	x := c.Imm(4)
	if got := c.Rcp(x).V[0]; got != 0.25 {
		t.Errorf("Rcp(4) = %v", got)
	}
	if got := c.Rsqrt(x).V[0]; got != 0.5 {
		t.Errorf("Rsqrt(4) = %v", got)
	}
	if got := c.Sqrt(x).V[0]; math.Abs(float64(got)-2) > 1e-6 {
		t.Errorf("Sqrt(4) = %v", got)
	}
	angle := c.Imm(math.Pi / 2)
	if got := c.Sin(angle).V[0]; math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("Sin(pi/2) = %v", got)
	}
	if got := c.Cos(c.Imm(0)).V[0]; got != 1 {
		t.Errorf("Cos(0) = %v", got)
	}
	if got := c.Pow(c.Imm(2), c.Imm(10)).V[0]; math.Abs(float64(got)-1024) > 0.5 {
		t.Errorf("Pow(2,10) = %v", got)
	}
	k := b.Finish()
	h := k.OpHistogram()
	if h[isa.OpMUFURCP] == 0 || h[isa.OpMUFURSQ] == 0 || h[isa.OpMUFUSIN] == 0 {
		t.Errorf("SFU ops missing from trace: %v", h)
	}
}

func TestClampLerpMinMax(t *testing.T) {
	c, _ := newWarpCtx()
	if got := c.Clamp(c.Imm(5), 0, 1).V[0]; got != 1 {
		t.Errorf("Clamp = %v", got)
	}
	if got := c.Lerp(c.Imm(0), c.Imm(10), c.Imm(0.25)).V[0]; got != 2.5 {
		t.Errorf("Lerp = %v", got)
	}
	if got := c.Min(c.Imm(3), c.Imm(7)).V[0]; got != 3 {
		t.Errorf("Min = %v", got)
	}
	if got := c.Max(c.Imm(3), c.Imm(7)).V[0]; got != 7 {
		t.Errorf("Max = %v", got)
	}
}

func TestRcpOfZeroIsInf(t *testing.T) {
	c, _ := newWarpCtx()
	if got := c.Rcp(c.Imm(0)).V[0]; !math.IsInf(float64(got), 1) {
		t.Errorf("Rcp(0) = %v", got)
	}
	if got := c.Rsqrt(c.Imm(-1)).V[0]; got != 0 {
		t.Errorf("Rsqrt(-1) = %v", got)
	}
}

func TestVec3Ops(t *testing.T) {
	c, _ := newWarpCtx()
	a := c.V3Imm(gmath.V3(1, 2, 3))
	b := c.V3Imm(gmath.V3(4, 5, 6))
	if got := c.V3Dot(a, b).V[0]; got != 32 {
		t.Errorf("V3Dot = %v", got)
	}
	n := c.V3Normalize(c.V3Imm(gmath.V3(3, 0, 4)))
	if math.Abs(float64(n.X.V[0])-0.6) > 1e-5 || math.Abs(float64(n.Z.V[0])-0.8) > 1e-5 {
		t.Errorf("V3Normalize = %v %v %v", n.X.V[0], n.Y.V[0], n.Z.V[0])
	}
	s := c.V3Scale(a, c.Imm(2))
	if s.Z.V[0] != 6 {
		t.Errorf("V3Scale = %v", s.Z.V[0])
	}
}

func TestMatrixTransformMatchesGmath(t *testing.T) {
	f := func(px, py, pz float32) bool {
		if gmath.Abs(px) > 100 || gmath.Abs(py) > 100 || gmath.Abs(pz) > 100 {
			return true
		}
		m := gmath.Translate(gmath.V3(1, 2, 3)).Mul(gmath.RotateY(0.5))
		c, _ := newWarpCtx()
		var xs, ys, zs [Lanes]float32
		for i := range xs {
			xs[i], ys[i], zs[i] = px, py, pz
		}
		out := c.MulMat4Vec4(m, Val{V: xs}, Val{V: ys}, Val{V: zs}, c.Imm(1))
		want := m.MulVec(gmath.V4(px, py, pz, 1))
		tol := float32(1e-3)
		return gmath.Abs(out.X.V[0]-want.X) < tol &&
			gmath.Abs(out.Y.V[0]-want.Y) < tol &&
			gmath.Abs(out.Z.V[0]-want.Z) < tol &&
			gmath.Abs(out.W.V[0]-want.W) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformUsesConstantCache(t *testing.T) {
	c, b := newWarpCtx()
	c.Uniform(3.5)
	k := b.Finish()
	if k.OpHistogram()[isa.OpLDC] != 1 {
		t.Error("Uniform did not emit LDC")
	}
}

func TestLoadStoreEmitAddresses(t *testing.T) {
	c, b := newWarpCtx()
	addrs := make([]uint64, Lanes)
	for i := range addrs {
		addrs[i] = uint64(0x100 + 4*i)
	}
	v := c.Load(addrs, trace.ClassCompute)
	c.Store(v, addrs, trace.ClassCompute)
	k := b.Finish()
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	h := k.OpHistogram()
	if h[isa.OpLDG] != 1 || h[isa.OpSTG] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSharedAndBarrier(t *testing.T) {
	c, b := newWarpCtx()
	v := c.SharedLoad()
	c.SharedStore(v)
	c.Barrier()
	k := b.Finish()
	h := k.OpHistogram()
	if h[isa.OpLDS] != 1 || h[isa.OpSTS] != 1 || h[isa.OpBAR] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestInputVecRidesOneFetch(t *testing.T) {
	c, b := newWarpCtx()
	addrs := make([]uint64, Lanes)
	for i := range addrs {
		addrs[i] = uint64(i * 36)
	}
	var xs, ys, zs [Lanes]float32
	v := c.InputVec3(xs, ys, zs, addrs, trace.ClassPipeline)
	_ = v
	k := b.Finish()
	h := k.OpHistogram()
	if h[isa.OpLDG] != 1 {
		t.Errorf("InputVec3 emitted %d LDGs, want 1", h[isa.OpLDG])
	}
	if h[isa.OpMOV] != 2 {
		t.Errorf("InputVec3 emitted %d MOVs, want 2", h[isa.OpMOV])
	}
}

func TestTexSampleEmitsAddressesAndColors(t *testing.T) {
	tex := texture.Checker("t", texture.FormatRGBA8, 32, 32, gmath.V4(1, 0, 0, 1), gmath.V4(0, 0, 1, 1), 2)
	base := uint64(0x7000)
	size := tex.Bind(base)

	c, b := newWarpCtx()
	var us, vs [Lanes]float32
	for i := range us {
		us[i] = float32(i) / Lanes
		vs[i] = 0.25
	}
	var layer [Lanes]int
	var foot [Lanes]float32
	var gotSim []uint64
	c.OnTex = func(sim, ref []uint64) { gotSim = sim }
	rgba := c.TexSample(tex, Val{V: us}, Val{V: vs}, layer, foot)
	k := b.Finish()
	if k.OpHistogram()[isa.OpTEX] != 1 {
		t.Fatal("TEX not emitted")
	}
	if len(gotSim) != Lanes {
		t.Fatalf("OnTex got %d addrs", len(gotSim))
	}
	for _, a := range gotSim {
		if a < base || a >= base+size {
			t.Fatalf("texel address %#x out of bounds", a)
		}
	}
	// Left quarter samples the first checker cell (red).
	if rgba.X.V[0] != 1 || rgba.Z.V[0] != 0 {
		t.Errorf("lane 0 color = %v/%v, want red", rgba.X.V[0], rgba.Z.V[0])
	}
}

func TestTexSampleLodOffUsesLevel0(t *testing.T) {
	tex := texture.Noise("n", texture.FormatRGBA8, 64, 64, 1, 3)
	tex.Bind(0x9000)
	var us, vs [Lanes]float32
	for i := range us {
		us[i] = float32(i) / Lanes
		vs[i] = float32(i) / Lanes
	}
	var layer [Lanes]int
	var foot [Lanes]float32
	for i := range foot {
		foot[i] = 0.25 // strong minification → high mip when LoD on
	}
	run := func(lod bool) map[uint64]bool {
		c, b := newWarpCtx()
		c.LodEnabled = lod
		var addrs []uint64
		c.OnTex = func(sim, ref []uint64) { addrs = sim }
		c.TexSample(tex, Val{V: us}, Val{V: vs}, layer, foot)
		b.Finish()
		set := map[uint64]bool{}
		for _, a := range addrs {
			set[a] = true
		}
		return set
	}
	on := run(true)
	off := run(false)
	// With LoD on, heavy minification merges texels; off scatters them.
	if len(on) >= len(off) {
		t.Errorf("LoD-on distinct texels %d should be below LoD-off %d", len(on), len(off))
	}
}

func TestRefFootprintProducesRefAddrs(t *testing.T) {
	tex := texture.Noise("n", texture.FormatRGBA8, 64, 64, 1, 3)
	tex.Bind(0x9000)
	c, b := newWarpCtx()
	var exact [Lanes]float32
	for i := range exact {
		exact[i] = 0.5
	}
	c.RefFootprint = &exact
	var ref []uint64
	c.OnTex = func(sim, r []uint64) { ref = r }
	var us, vs [Lanes]float32
	var layer [Lanes]int
	var foot [Lanes]float32
	c.TexSample(tex, Val{V: us}, Val{V: vs}, layer, foot)
	b.Finish()
	if len(ref) != Lanes {
		t.Errorf("ref addrs = %d, want %d", len(ref), Lanes)
	}
}

func TestPartialMask(t *testing.T) {
	b := trace.NewBuilder("partial", trace.KindCompute, 0, 32, 32, 0)
	b.BeginCTA()
	b.BeginWarp()
	c := NewCtx(b, 0x0000FFFF) // 16 lanes
	if c.ActiveLanes() != 16 {
		t.Fatalf("ActiveLanes = %d", c.ActiveLanes())
	}
	tex := texture.Checker("t", texture.FormatRGBA8, 16, 16, gmath.V4(1, 1, 1, 1), gmath.V4(0, 0, 0, 1), 2)
	tex.Bind(0)
	var us, vs [Lanes]float32
	var layer [Lanes]int
	var foot [Lanes]float32
	c.TexSample(tex, Val{V: us}, Val{V: vs}, layer, foot)
	k := b.Finish()
	if err := k.Validate(); err != nil {
		t.Fatalf("partial-mask TEX invalid: %v", err)
	}
}

func TestTensorOp(t *testing.T) {
	c, b := newWarpCtx()
	c.Tensor(c.Imm(1), c.Imm(2))
	if b.Finish().OpHistogram()[isa.OpHMMA] != 1 {
		t.Error("Tensor did not emit HMMA")
	}
}


func TestSelect(t *testing.T) {
	c, b := newWarpCtx()
	var xs [Lanes]float32
	for i := range xs {
		xs[i] = float32(i)
	}
	x := Val{Reg: c.B.NewReg(), V: xs}
	cond := c.CmpGT(x, c.Imm(15.5))
	r := c.Select(cond, c.Imm(1), c.Imm(-1))
	for i := 0; i < Lanes; i++ {
		want := float32(-1)
		if i > 15 {
			want = 1
		}
		if r.V[i] != want {
			t.Fatalf("lane %d = %v, want %v", i, r.V[i], want)
		}
	}
	h := b.Finish().OpHistogram()
	if h[isa.OpFSET] != 1 || h[isa.OpSEL] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMaskedNarrowsAndRestores(t *testing.T) {
	c, b := newWarpCtx()
	var xs [Lanes]float32
	for i := range xs {
		xs[i] = float32(i % 2) // odd lanes qualify
	}
	cond := Val{Reg: c.B.NewReg(), V: xs}
	ran := false
	c.Masked(cond, func() {
		ran = true
		if c.ActiveLanes() != 16 {
			t.Errorf("masked lanes = %d, want 16", c.ActiveLanes())
		}
		c.Add(c.Imm(1), c.Imm(2))
	})
	if !ran {
		t.Fatal("masked block skipped")
	}
	if c.ActiveLanes() != 32 {
		t.Errorf("mask not restored: %d lanes", c.ActiveLanes())
	}
	// All-false predicate skips the block entirely.
	c.Masked(Val{Reg: c.B.NewReg()}, func() { t.Fatal("dead branch executed") })
	k := b.Finish()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// Find the masked FADD: it must carry the odd-lane mask.
	found := false
	for _, in := range k.CTAs[0].Warps[0].Insts {
		if in.Op == isa.OpFADD && in.Mask == 0xAAAAAAAA {
			found = true
		}
	}
	if !found {
		t.Error("masked instruction with odd-lane mask not found")
	}
}
