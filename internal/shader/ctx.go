// Package shader implements CRISP's unified shader model: one execution
// context serves vertex shaders, fragment shaders, and compute kernels.
//
// A shader here is a Go function written against Ctx's operation set.
// Every operation does two things at once: it computes the real per-lane
// float values (the functional model — actual positions, texels, colors),
// and it lowers itself to one or more SASS-like trace instructions with
// register dependencies and per-lane memory addresses (the timing model's
// input). This mirrors the paper's flow, where the functional simulator
// executes shaders and records SASS-compatible traces for Accel-Sim.
package shader

import (
	"math"

	"crisp/internal/gmath"
	"crisp/internal/isa"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// Lanes is the SIMT width of one warp.
const Lanes = isa.WarpSize

// Val is an SSA value: a virtual register holding one float per lane.
type Val struct {
	Reg isa.Reg
	V   [Lanes]float32
}

// Ctx executes one warp of a shader, emitting its trace as it goes.
type Ctx struct {
	B    *trace.Builder
	Mask uint32
	// LodEnabled selects mipmapped sampling; when false every TEX
	// references mip level 0 (the paper's "LoD off" configuration).
	LodEnabled bool
	// Filter is the texture filter applied by TexSample.
	Filter texture.Filter

	// RefFootprint, when set, is the exact per-quad LoD basis (the
	// hardware reference); TexSample then reports, per TEX instruction,
	// both the simulator's addresses and the reference addresses through
	// OnTex, which the LoD validation study (paper Fig. 9) consumes.
	RefFootprint *[Lanes]float32
	// OnTex, when non-nil, receives each TEX instruction's per-lane
	// addresses: the simulated ones and the exact-LoD reference ones.
	OnTex func(simAddrs, refAddrs []uint64)
}

// NewCtx starts a warp-execution context over builder b with the given
// active mask. LoD defaults to enabled with trilinear filtering.
func NewCtx(b *trace.Builder, mask uint32) *Ctx {
	return &Ctx{B: b, Mask: mask, LodEnabled: true, Filter: texture.FilterTrilinear}
}

// ActiveLanes reports the number of active lanes.
func (c *Ctx) ActiveLanes() int {
	n := 0
	for i := 0; i < Lanes; i++ {
		if c.Mask&(1<<uint(i)) != 0 {
			n++
		}
	}
	return n
}

func (c *Ctx) newVal() Val { return Val{Reg: c.B.NewReg()} }

// Imm materializes an immediate constant into a register (MOV).
func (c *Ctx) Imm(x float32) Val {
	v := c.newVal()
	for i := range v.V {
		v.V[i] = x
	}
	c.B.ALU(isa.OpMOV, v.Reg, c.Mask)
	return v
}

// Uniform loads a uniform scalar through the constant cache (LDC).
func (c *Ctx) Uniform(x float32) Val {
	v := c.newVal()
	for i := range v.V {
		v.V[i] = x
	}
	c.B.Mem(isa.OpLDC, v.Reg, c.Mask, nil, trace.ClassNone)
	return v
}

// lane-wise binary op helper
func (c *Ctx) bin(op isa.Opcode, a, b Val, f func(x, y float32) float32) Val {
	r := c.newVal()
	for i := range r.V {
		r.V[i] = f(a.V[i], b.V[i])
	}
	c.B.ALU(op, r.Reg, c.Mask, a.Reg, b.Reg)
	return r
}

func (c *Ctx) un(op isa.Opcode, a Val, f func(x float32) float32) Val {
	r := c.newVal()
	for i := range r.V {
		r.V[i] = f(a.V[i])
	}
	c.B.ALU(op, r.Reg, c.Mask, a.Reg)
	return r
}

// Add returns a+b (FADD).
func (c *Ctx) Add(a, b Val) Val { return c.bin(isa.OpFADD, a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a-b (FADD with negated operand).
func (c *Ctx) Sub(a, b Val) Val { return c.bin(isa.OpFADD, a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a*b (FMUL).
func (c *Ctx) Mul(a, b Val) Val { return c.bin(isa.OpFMUL, a, b, func(x, y float32) float32 { return x * y }) }

// FMA returns a*b+d (FFMA).
func (c *Ctx) FMA(a, b, d Val) Val {
	r := c.newVal()
	for i := range r.V {
		r.V[i] = a.V[i]*b.V[i] + d.V[i]
	}
	c.B.ALU(isa.OpFFMA, r.Reg, c.Mask, a.Reg, b.Reg, d.Reg)
	return r
}

// Min returns min(a, b) (FMNMX).
func (c *Ctx) Min(a, b Val) Val { return c.bin(isa.OpFMNMX, a, b, gmath.Min) }

// Max returns max(a, b) (FMNMX).
func (c *Ctx) Max(a, b Val) Val { return c.bin(isa.OpFMNMX, a, b, gmath.Max) }

// Rcp returns 1/a (MUFU.RCP).
func (c *Ctx) Rcp(a Val) Val {
	return c.un(isa.OpMUFURCP, a, func(x float32) float32 {
		if x == 0 {
			return float32(math.Inf(1))
		}
		return 1 / x
	})
}

// Rsqrt returns 1/sqrt(a) (MUFU.RSQ).
func (c *Ctx) Rsqrt(a Val) Val {
	return c.un(isa.OpMUFURSQ, a, func(x float32) float32 {
		if x <= 0 {
			return 0
		}
		return 1 / gmath.Sqrt(x)
	})
}

// Sqrt returns sqrt(a) as RSQ followed by RCP, like compiled code does.
func (c *Ctx) Sqrt(a Val) Val { return c.Rcp(c.Rsqrt(a)) }

// Sin returns sin(a) (MUFU.SIN).
func (c *Ctx) Sin(a Val) Val { return c.un(isa.OpMUFUSIN, a, gmath.Sin) }

// Cos returns cos(a) (MUFU.COS).
func (c *Ctx) Cos(a Val) Val { return c.un(isa.OpMUFUCOS, a, gmath.Cos) }

// Ex2 returns 2^a (MUFU.EX2).
func (c *Ctx) Ex2(a Val) Val {
	return c.un(isa.OpMUFUEX2, a, func(x float32) float32 { return gmath.Pow(2, x) })
}

// Lg2 returns log2(a) (MUFU.LG2).
func (c *Ctx) Lg2(a Val) Val {
	return c.un(isa.OpMUFULG2, a, func(x float32) float32 {
		if x <= 0 {
			return -126
		}
		return gmath.Log2(x)
	})
}

// Pow returns a^b lowered to EX2(b*LG2(a)), the standard expansion.
func (c *Ctx) Pow(a, b Val) Val { return c.Ex2(c.Mul(b, c.Lg2(a))) }

// Clamp returns a limited to [lo, hi] using two FMNMX.
func (c *Ctx) Clamp(a Val, lo, hi float32) Val {
	return c.Min(c.Max(a, c.Imm(lo)), c.Imm(hi))
}

// Lerp returns a + (b-a)*t (two instructions: FADD, FFMA).
func (c *Ctx) Lerp(a, b, t Val) Val { return c.FMA(t, c.Sub(b, a), a) }

// Input binds pipeline-provided per-lane values (vertex attributes or
// interpolated varyings) to a register, modeled as a global load of the
// given class from the given per-lane addresses.
func (c *Ctx) Input(values [Lanes]float32, addrs []uint64, class trace.MemClass) Val {
	v := Val{Reg: c.B.NewReg(), V: values}
	c.B.Mem(isa.OpLDG, v.Reg, c.Mask, addrs, class)
	return v
}

// ride binds values to a register produced by the same wide fetch as lead:
// a MOV dependent on the lead load, carrying no extra memory traffic
// (vector attributes load with one LDG.128 on real hardware).
func (c *Ctx) ride(values [Lanes]float32, lead Val) Val {
	v := Val{Reg: c.B.NewReg(), V: values}
	c.B.ALU(isa.OpMOV, v.Reg, c.Mask, lead.Reg)
	return v
}

// InputVec2 loads a two-component attribute with one fetch.
func (c *Ctx) InputVec2(x, y [Lanes]float32, addrs []uint64, class trace.MemClass) (Val, Val) {
	vx := c.Input(x, addrs, class)
	return vx, c.ride(y, vx)
}

// InputVec3 loads a three-component attribute with one fetch.
func (c *Ctx) InputVec3(x, y, z [Lanes]float32, addrs []uint64, class trace.MemClass) Vec3V {
	vx := c.Input(x, addrs, class)
	return Vec3V{vx, c.ride(y, vx), c.ride(z, vx)}
}

// Load emits a global load from per-lane addrs; the returned value carries
// the supplied functional values (zeros are fine for pure-timing kernels).
func (c *Ctx) Load(addrs []uint64, class trace.MemClass) Val {
	v := c.newVal()
	c.B.Mem(isa.OpLDG, v.Reg, c.Mask, addrs, class)
	return v
}

// Store emits a global store of v to per-lane addrs.
func (c *Ctx) Store(v Val, addrs []uint64, class trace.MemClass) {
	c.B.Mem(isa.OpSTG, isa.RegNone, c.Mask, addrs, class, v.Reg)
}

// SharedStore emits an STS of v with no lane offsets (conflict-free).
func (c *Ctx) SharedStore(v Val) {
	c.B.Shared(isa.OpSTS, isa.RegNone, c.Mask, v.Reg)
}

// SharedLoad emits an LDS returning a fresh value (conflict-free).
func (c *Ctx) SharedLoad() Val {
	v := c.newVal()
	c.B.Shared(isa.OpLDS, v.Reg, c.Mask)
	return v
}

// SharedStoreAt emits an STS with per-active-lane byte offsets within the
// CTA's shared segment, so the timing model derives bank conflicts.
func (c *Ctx) SharedStoreAt(v Val, offsets []uint64) {
	c.B.SharedAddr(isa.OpSTS, isa.RegNone, c.Mask, offsets, v.Reg)
}

// SharedLoadAt emits an LDS with per-active-lane byte offsets.
func (c *Ctx) SharedLoadAt(offsets []uint64) Val {
	v := c.newVal()
	c.B.SharedAddr(isa.OpLDS, v.Reg, c.Mask, offsets)
	return v
}

// Barrier emits a CTA-wide barrier.
func (c *Ctx) Barrier() { c.B.Barrier() }

// Tensor emits a tensor-core HMMA operating on two sources.
func (c *Ctx) Tensor(a, b Val) Val {
	r := c.newVal()
	c.B.ALU(isa.OpHMMA, r.Reg, c.Mask, a.Reg, b.Reg)
	return r
}

// Vec4V is a 4-component vector of Vals.
type Vec4V struct{ X, Y, Z, W Val }

// TexSample samples tex at per-lane (u, v), layer, and UV-space footprint
// (UV units per screen pixel, used for LoD selection). It emits one TEX
// instruction carrying the sampled texel address per active lane and
// returns the RGBA components, all dependent on the TEX result register.
func (c *Ctx) TexSample(tex *texture.Texture, u, v Val, layer [Lanes]int, footprint [Lanes]float32) Vec4V {
	reg := c.B.NewReg()
	var out Vec4V
	out.X = Val{Reg: reg}
	out.Y = Val{Reg: reg}
	out.Z = Val{Reg: reg}
	out.W = Val{Reg: reg}

	addrs := make([]uint64, 0, Lanes)
	var refAddrs []uint64
	if c.OnTex != nil && c.RefFootprint != nil {
		refAddrs = make([]uint64, 0, Lanes)
	}
	maxDim := float32(tex.W)
	if tex.H > tex.W {
		maxDim = float32(tex.H)
	}
	lodOf := func(fp float32) float32 {
		d := fp * maxDim
		if d <= 1 {
			return 0
		}
		return gmath.Clamp(gmath.Log2(d), 0, float32(tex.Levels()-1))
	}
	for i := 0; i < Lanes; i++ {
		if c.Mask&(1<<uint(i)) == 0 {
			continue
		}
		lod := float32(0)
		if c.LodEnabled {
			lod = lodOf(footprint[i])
		}
		col, addr := tex.Sample(u.V[i], v.V[i], layer[i], lod, c.Filter)
		out.X.V[i] = col.X
		out.Y.V[i] = col.Y
		out.Z.V[i] = col.Z
		out.W.V[i] = col.W
		addrs = append(addrs, addr)
		if refAddrs != nil {
			_, refAddr := tex.Sample(u.V[i], v.V[i], layer[i], lodOf(c.RefFootprint[i]), c.Filter)
			refAddrs = append(refAddrs, refAddr)
		}
	}
	c.B.Mem(isa.OpTEX, reg, c.Mask, addrs, trace.ClassTexture, u.Reg, v.Reg)
	if c.OnTex != nil {
		c.OnTex(addrs, refAddrs)
	}
	return out
}

// CmpGT returns per-lane 1.0 where a > b, else 0.0 (FSET).
func (c *Ctx) CmpGT(a, b Val) Val {
	return c.bin(isa.OpFSET, a, b, func(x, y float32) float32 {
		if x > y {
			return 1
		}
		return 0
	})
}

// Select returns per-lane a where cond ≠ 0, else b — the predicated SEL
// compiled shaders use for small divergence.
func (c *Ctx) Select(cond, a, b Val) Val {
	r := c.newVal()
	for i := range r.V {
		if cond.V[i] != 0 {
			r.V[i] = a.V[i]
		} else {
			r.V[i] = b.V[i]
		}
	}
	c.B.ALU(isa.OpSEL, r.Reg, c.Mask, cond.Reg, a.Reg, b.Reg)
	return r
}

// Masked runs fn with the active mask narrowed to lanes where cond ≠ 0 —
// one side of a divergent branch. Instructions emitted inside carry the
// reduced mask (SIMT predication); memory operations inside must supply
// addresses for exactly the reduced lane set. The previous mask is
// restored afterwards. fn is skipped entirely when no lane qualifies.
func (c *Ctx) Masked(cond Val, fn func()) {
	sub := uint32(0)
	for i := 0; i < Lanes; i++ {
		if c.Mask&(1<<uint(i)) != 0 && cond.V[i] != 0 {
			sub |= 1 << uint(i)
		}
	}
	if sub == 0 {
		return
	}
	prev := c.Mask
	c.Mask = sub
	fn()
	c.Mask = prev
}
