package shader

import "crisp/internal/gmath"

// Vec3V is a 3-component vector of Vals with ctx-mediated arithmetic.
type Vec3V struct{ X, Y, Z Val }

// V3Imm broadcasts a constant vector.
func (c *Ctx) V3Imm(v gmath.Vec3) Vec3V {
	return Vec3V{c.Imm(v.X), c.Imm(v.Y), c.Imm(v.Z)}
}

// V3Add returns a+b.
func (c *Ctx) V3Add(a, b Vec3V) Vec3V {
	return Vec3V{c.Add(a.X, b.X), c.Add(a.Y, b.Y), c.Add(a.Z, b.Z)}
}

// V3Sub returns a-b.
func (c *Ctx) V3Sub(a, b Vec3V) Vec3V {
	return Vec3V{c.Sub(a.X, b.X), c.Sub(a.Y, b.Y), c.Sub(a.Z, b.Z)}
}

// V3Mul returns the component-wise product.
func (c *Ctx) V3Mul(a, b Vec3V) Vec3V {
	return Vec3V{c.Mul(a.X, b.X), c.Mul(a.Y, b.Y), c.Mul(a.Z, b.Z)}
}

// V3Scale returns a*s.
func (c *Ctx) V3Scale(a Vec3V, s Val) Vec3V {
	return Vec3V{c.Mul(a.X, s), c.Mul(a.Y, s), c.Mul(a.Z, s)}
}

// V3Dot returns a·b (one FMUL, two FFMA — the compiled form).
func (c *Ctx) V3Dot(a, b Vec3V) Val {
	r := c.Mul(a.X, b.X)
	r = c.FMA(a.Y, b.Y, r)
	return c.FMA(a.Z, b.Z, r)
}

// V3Normalize returns a/|a|.
func (c *Ctx) V3Normalize(a Vec3V) Vec3V {
	inv := c.Rsqrt(c.V3Dot(a, a))
	return c.V3Scale(a, inv)
}

// V3Lerp interpolates a→b by t per component.
func (c *Ctx) V3Lerp(a, b Vec3V, t Val) Vec3V {
	return Vec3V{c.Lerp(a.X, b.X, t), c.Lerp(a.Y, b.Y, t), c.Lerp(a.Z, b.Z, t)}
}

// V3FMA returns a*s + d.
func (c *Ctx) V3FMA(a Vec3V, s Val, d Vec3V) Vec3V {
	return Vec3V{c.FMA(a.X, s, d.X), c.FMA(a.Y, s, d.Y), c.FMA(a.Z, s, d.Z)}
}

// MulMat4Vec4 transforms per-lane positions by a uniform 4×4 matrix:
// the matrix rows arrive through the constant cache and the transform
// lowers to 4 FMULs and 12 FFMAs, like compiled vertex shaders.
func (c *Ctx) MulMat4Vec4(m gmath.Mat4, x, y, z, w Val) Vec4V {
	row := func(r int) Val {
		m0 := c.Uniform(m[r*4+0])
		m1 := c.Uniform(m[r*4+1])
		m2 := c.Uniform(m[r*4+2])
		m3 := c.Uniform(m[r*4+3])
		acc := c.Mul(m0, x)
		acc = c.FMA(m1, y, acc)
		acc = c.FMA(m2, z, acc)
		return c.FMA(m3, w, acc)
	}
	return Vec4V{row(0), row(1), row(2), row(3)}
}

// MulMat3Dir transforms per-lane directions by the upper-left 3×3 of m.
func (c *Ctx) MulMat3Dir(m gmath.Mat4, d Vec3V) Vec3V {
	row := func(r int) Val {
		m0 := c.Uniform(m[r*4+0])
		m1 := c.Uniform(m[r*4+1])
		m2 := c.Uniform(m[r*4+2])
		acc := c.Mul(m0, d.X)
		acc = c.FMA(m1, d.Y, acc)
		return c.FMA(m2, d.Z, acc)
	}
	return Vec3V{row(0), row(1), row(2)}
}
