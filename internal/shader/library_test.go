package shader

import (
	"testing"

	"crisp/internal/gmath"
	"crisp/internal/isa"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// fsFixtures builds an FSIn with plausible varyings and bound textures.
func fsFixtures() (*FSIn, Light) {
	var in FSIn
	addrs := make([]uint64, Lanes)
	outA := make([]uint64, Lanes)
	for i := 0; i < Lanes; i++ {
		in.U[i] = float32(i) / Lanes
		in.V[i] = 0.5
		in.NrmX[i], in.NrmY[i], in.NrmZ[i] = 0, 0.8, 0.6
		in.WPosX[i], in.WPosY[i], in.WPosZ[i] = float32(i)*0.1, 1, 0
		in.Footprint[i] = 0.01
		addrs[i] = uint64(0x100000 + i*48)
		outA[i] = uint64(0x800000 + i*4)
	}
	in.VaryingAddrs = addrs
	in.OutAddrs = outA
	light := Light{
		Dir:       gmath.V3(0, 1, 0),
		Color:     gmath.V3(1, 0.9, 0.8),
		Ambient:   gmath.V3(0.1, 0.1, 0.1),
		CameraPos: gmath.V3(0, 1, 3),
	}
	return &in, light
}

func boundTex(name string, seed int64) *texture.Texture {
	t := texture.Noise(name, texture.FormatRGBA8, 64, 64, 1, seed)
	t.Bind(uint64(0x2000000 + seed*0x100000))
	return t
}

func boundPBR() *PBRMaps {
	m := &PBRMaps{
		Albedo:     boundTex("a", 1),
		Normal:     boundTex("n", 2),
		Metallic:   boundTex("m", 3),
		Roughness:  boundTex("r", 4),
		AO:         boundTex("o", 5),
		Irradiance: boundTex("i", 6),
		Prefilter:  boundTex("p", 7),
		BRDF:       boundTex("b", 8),
	}
	return m
}

// runFS executes an FS program in a fresh warp and returns output +
// histogram.
func runFS(t *testing.T, fn func(c *Ctx, in *FSIn) FSOut) (FSOut, map[isa.Opcode]int) {
	t.Helper()
	b := trace.NewBuilder("fs", trace.KindFragment, 0, 32, 64, 0)
	b.BeginCTA()
	b.BeginWarp()
	c := NewCtx(b, trace.FullMask)
	in, _ := fsFixtures()
	out := fn(c, in)
	k := b.Finish()
	if err := k.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	return out, k.OpHistogram()
}

func checkFinite(t *testing.T, out FSOut) {
	t.Helper()
	for i := 0; i < Lanes; i++ {
		for _, v := range [4]float32{out.R[i], out.G[i], out.B[i], out.A[i]} {
			if v != v || v < -10 || v > 100 {
				t.Fatalf("lane %d produced wild value %v", i, v)
			}
		}
	}
}

func TestBasicTexturedFSProgram(t *testing.T) {
	_, light := fsFixtures()
	out, h := runFS(t, func(c *Ctx, in *FSIn) FSOut {
		return BasicTexturedFS(c, in, boundTex("albedo", 11), light)
	})
	checkFinite(t, out)
	if h[isa.OpTEX] != 1 {
		t.Errorf("basic shader TEX count = %d, want 1", h[isa.OpTEX])
	}
	if h[isa.OpSTG] != 1 {
		t.Errorf("color export STG = %d, want 1", h[isa.OpSTG])
	}
}

func TestPBRFSProgram(t *testing.T) {
	_, light := fsFixtures()
	maps := boundPBR()
	out, h := runFS(t, func(c *Ctx, in *FSIn) FSOut {
		return PBRFS(c, in, maps, light)
	})
	checkFinite(t, out)
	if h[isa.OpTEX] != 8 {
		t.Errorf("PBR TEX count = %d, want 8 (eight maps)", h[isa.OpTEX])
	}
	if h[isa.OpMUFURSQ] == 0 || h[isa.OpMUFURCP] == 0 {
		t.Error("PBR should use SFU ops (normalize, rcp)")
	}
	// Tone mapping keeps output in [0, 1].
	for i := 0; i < Lanes; i++ {
		if out.R[i] < 0 || out.R[i] > 1 {
			t.Fatalf("tone-mapped output %v outside [0,1]", out.R[i])
		}
	}
}

func TestToonFSProgram(t *testing.T) {
	_, light := fsFixtures()
	out, h := runFS(t, func(c *Ctx, in *FSIn) FSOut {
		return ToonFS(c, in, boundTex("albedo", 12), light)
	})
	checkFinite(t, out)
	if h[isa.OpSEL] < 2 || h[isa.OpFSET] < 2 {
		t.Errorf("toon banding should use predicated selects: %v", h)
	}
}

func TestMaterialFSProgram(t *testing.T) {
	_, light := fsFixtures()
	out, h := runFS(t, func(c *Ctx, in *FSIn) FSOut {
		return MaterialFS(c, in, boundTex("a", 13), boundTex("r", 14), boundTex("n", 15), light)
	})
	checkFinite(t, out)
	if h[isa.OpTEX] != 3 {
		t.Errorf("material shader TEX = %d, want 3", h[isa.OpTEX])
	}
	// Blinn-Phong pow lowers to LG2+EX2.
	if h[isa.OpMUFULG2] == 0 || h[isa.OpMUFUEX2] == 0 {
		t.Error("specular pow should use LG2/EX2")
	}
}

func TestPlanetFSProgram(t *testing.T) {
	_, light := fsFixtures()
	layered := texture.Noise("layered", texture.FormatRGBA8, 64, 64, 4, 21)
	layered.Bind(0x4000000)
	out, h := runFS(t, func(c *Ctx, in *FSIn) FSOut {
		for i := range in.Layer {
			in.Layer[i] = i % 4
		}
		return PlanetFS(c, in, layered, light)
	})
	checkFinite(t, out)
	if h[isa.OpTEX] != 1 {
		t.Errorf("planet shader TEX = %d, want 1", h[isa.OpTEX])
	}
}

func TestTransformVSProgram(t *testing.T) {
	b := trace.NewBuilder("vs", trace.KindVertex, 0, 96, 32, 0)
	b.BeginCTA()
	b.BeginWarp()
	c := NewCtx(b, trace.FullMask)

	var in VSIn
	pos := make([]uint64, Lanes)
	nrm := make([]uint64, Lanes)
	uv := make([]uint64, Lanes)
	vary := make([]uint64, Lanes)
	for i := 0; i < Lanes; i++ {
		in.PosX[i] = float32(i)*0.1 - 1.5
		in.PosY[i] = 0.5
		in.PosZ[i] = 0
		in.NrmZ[i] = 1
		in.U[i] = float32(i) / Lanes
		pos[i] = uint64(0x10000 + i*36)
		nrm[i] = pos[i] + 12
		uv[i] = pos[i] + 24
		vary[i] = uint64(0x90000 + i*48)
	}
	in.PosAddrs, in.NrmAddrs, in.UVAddrs = pos, nrm, uv

	model := gmath.Translate(gmath.V3(0, 0, -3))
	view := gmath.LookAt(gmath.V3(0, 0, 2), gmath.V3(0, 0, -3), gmath.V3(0, 1, 0))
	proj := gmath.Perspective(1, 16.0/9, 0.1, 100)
	mvp := proj.Mul(view).Mul(model)

	out := TransformVS(c, &in, model, mvp, vary)
	k := b.Finish()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	h := k.OpHistogram()
	// Attribute fetches: position, normal, UV.
	if h[isa.OpLDG] != 3 {
		t.Errorf("VS LDG = %d, want 3 attribute fetches", h[isa.OpLDG])
	}
	// Varying exports: 3 16-byte stores.
	if h[isa.OpSTG] != 3 {
		t.Errorf("VS STG = %d, want 3 varying exports", h[isa.OpSTG])
	}
	// Matrix rows arrive via the constant cache.
	if h[isa.OpLDC] < 16 {
		t.Errorf("VS LDC = %d, want ≥16 (two matrix transforms)", h[isa.OpLDC])
	}
	// Functional check against gmath: lane 0's clip position.
	want := mvp.MulVec(gmath.V4(in.PosX[0], in.PosY[0], in.PosZ[0], 1))
	if gmath.Abs(out.ClipX[0]-want.X) > 1e-3 || gmath.Abs(out.ClipW[0]-want.W) > 1e-3 {
		t.Errorf("clip lane 0 = (%v, w=%v), want (%v, w=%v)", out.ClipX[0], out.ClipW[0], want.X, want.W)
	}
	// World normal is normalized.
	l := out.WNrmX[0]*out.WNrmX[0] + out.WNrmY[0]*out.WNrmY[0] + out.WNrmZ[0]*out.WNrmZ[0]
	if gmath.Abs(l-1) > 1e-3 {
		t.Errorf("world normal length² = %v", l)
	}
}

func TestPBRMapsAll(t *testing.T) {
	m := boundPBR()
	all := m.All()
	if len(all) != 8 {
		t.Fatalf("All() = %d maps, want 8", len(all))
	}
	for i, tex := range all {
		if tex == nil {
			t.Errorf("map %d nil", i)
		}
	}
}
