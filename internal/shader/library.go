package shader

import (
	"crisp/internal/gmath"
	"crisp/internal/texture"
	"crisp/internal/trace"
)

// VSIn carries one warp of vertex-shader inputs: per-lane attribute values
// (functional) plus the vertex-buffer addresses the attribute fetches load
// from (timing). Address slices are packed over active lanes.
type VSIn struct {
	PosX, PosY, PosZ [Lanes]float32
	NrmX, NrmY, NrmZ [Lanes]float32
	U, V             [Lanes]float32
	Layer            [Lanes]float32 // texture-array layer (instanced draws)

	PosAddrs []uint64
	NrmAddrs []uint64
	UVAddrs  []uint64
}

// VSOut carries the functional results of one vertex-shader warp.
type VSOut struct {
	ClipX, ClipY, ClipZ, ClipW [Lanes]float32
	WNrmX, WNrmY, WNrmZ        [Lanes]float32
	WPosX, WPosY, WPosZ        [Lanes]float32
	U, V                       [Lanes]float32
	Layer                      [Lanes]float32
}

// TransformVS is the standard vertex shader: fetch attributes, transform
// position by MVP and normal by the model matrix, and export varyings
// through the L2 (pipeline-class stores to varyingAddrs), as the paper's
// pipeline does between the vertex stage and the rasterizer.
func TransformVS(c *Ctx, in *VSIn, model, mvp gmath.Mat4, varyingAddrs []uint64) VSOut {
	pos := c.InputVec3(in.PosX, in.PosY, in.PosZ, in.PosAddrs, trace.ClassPipeline)
	one := c.Imm(1)

	clip := c.MulMat4Vec4(mvp, pos.X, pos.Y, pos.Z, one)

	nrm := c.InputVec3(in.NrmX, in.NrmY, in.NrmZ, in.NrmAddrs, trace.ClassPipeline)
	wn := c.MulMat3Dir(model, nrm)
	wn = c.V3Normalize(wn)

	wp := c.MulMat4Vec4(model, pos.X, pos.Y, pos.Z, one)

	u, v := c.InputVec2(in.U, in.V, in.UVAddrs, trace.ClassPipeline)

	// Export: position and varyings go to the post-transform buffer in
	// L2 as three 16-byte stores (clip position, normal, UV/world).
	c.Store(clip.X, varyingAddrs, trace.ClassPipeline)
	c.Store(wn.X, offsetAddrs(varyingAddrs, 16), trace.ClassPipeline)
	c.Store(u, offsetAddrs(varyingAddrs, 32), trace.ClassPipeline)

	var out VSOut
	out.ClipX, out.ClipY, out.ClipZ, out.ClipW = clip.X.V, clip.Y.V, clip.Z.V, clip.W.V
	out.WNrmX, out.WNrmY, out.WNrmZ = wn.X.V, wn.Y.V, wn.Z.V
	out.WPosX, out.WPosY, out.WPosZ = wp.X.V, wp.Y.V, wp.Z.V
	out.U, out.V = u.V, v.V
	out.Layer = in.Layer
	return out
}

// FSIn carries one warp of fragment-shader inputs: interpolated varying
// values (functional), the varying-buffer addresses the fragment stage
// reads them from, per-lane texture-array layers, the UV-space footprint
// for LoD, and the framebuffer addresses the outputs store to.
type FSIn struct {
	U, V                [Lanes]float32
	NrmX, NrmY, NrmZ    [Lanes]float32
	WPosX, WPosY, WPosZ [Lanes]float32
	Layer               [Lanes]int
	// Footprint is the max UV delta per screen pixel (LoD basis),
	// pre-calculated during rasterization as the paper describes.
	Footprint [Lanes]float32

	VaryingAddrs []uint64
	OutAddrs     []uint64
}

// FSOut is the shaded color per lane.
type FSOut struct {
	R, G, B, A [Lanes]float32
}

// Light is a simple directional light used by the shading models.
type Light struct {
	Dir       gmath.Vec3 // direction toward the light, normalized
	Color     gmath.Vec3
	Ambient   gmath.Vec3
	CameraPos gmath.Vec3
}

// loadVaryings emits the pipeline-class loads every fragment shader starts
// with and returns the bound values.
func loadVaryings(c *Ctx, in *FSIn) (u, v Val, n Vec3V, wp Vec3V) {
	u, v = c.InputVec2(in.U, in.V, in.VaryingAddrs, trace.ClassPipeline)
	n = c.InputVec3(in.NrmX, in.NrmY, in.NrmZ, offsetAddrs(in.VaryingAddrs, 16), trace.ClassPipeline)
	wp = c.InputVec3(in.WPosX, in.WPosY, in.WPosZ, offsetAddrs(in.VaryingAddrs, 32), trace.ClassPipeline)
	return
}

func offsetAddrs(addrs []uint64, off uint64) []uint64 {
	if addrs == nil {
		return nil
	}
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = a + off
	}
	return out
}

func (c *Ctx) export(out Vec3V, alpha Val, in *FSIn) FSOut {
	c.Store(out.X, in.OutAddrs, trace.ClassFramebuffer)
	var o FSOut
	o.R, o.G, o.B, o.A = out.X.V, out.Y.V, out.Z.V, alpha.V
	return o
}

// BasicTexturedFS is the Khronos-Sponza-style shader: one albedo texture
// and Lambert diffuse with ambient. This is the "basic shading" the paper
// contrasts against PBR in the L2-composition study.
func BasicTexturedFS(c *Ctx, in *FSIn, albedo *texture.Texture, light Light) FSOut {
	u, v, n, _ := loadVaryings(c, in)
	tex := c.TexSample(albedo, u, v, in.Layer, in.Footprint)
	nn := c.V3Normalize(n)
	l := c.V3Imm(light.Dir)
	ndl := c.Max(c.V3Dot(nn, l), c.Imm(0))
	lc := c.V3Imm(light.Color)
	amb := c.V3Imm(light.Ambient)
	diffuse := c.V3FMA(lc, ndl, amb)
	col := c.V3Mul(Vec3V{tex.X, tex.Y, tex.Z}, diffuse)
	return c.export(col, tex.W, in)
}

// PBRMaps bundles the eight texture maps of the paper's PBR workloads
// (Pistol, Sponza-PBR): albedo, normal, metallic, roughness, ambient
// occlusion, irradiance, prefiltered environment, and the BRDF LUT.
type PBRMaps struct {
	Albedo     *texture.Texture
	Normal     *texture.Texture
	Metallic   *texture.Texture
	Roughness  *texture.Texture
	AO         *texture.Texture
	Irradiance *texture.Texture
	Prefilter  *texture.Texture
	BRDF       *texture.Texture
}

// All lists the maps in sampling order.
func (m *PBRMaps) All() []*texture.Texture {
	return []*texture.Texture{m.Albedo, m.Normal, m.Metallic, m.Roughness, m.AO, m.Irradiance, m.Prefilter, m.BRDF}
}

// PBRFS is a physically-based shader in the Cook-Torrance style: all eight
// maps are sampled and combined, producing the texture-heavy, ALU-heavy
// profile the paper's Pistol/Sponza-PBR workloads exhibit.
func PBRFS(c *Ctx, in *FSIn, maps *PBRMaps, light Light) FSOut {
	u, v, n, wp := loadVaryings(c, in)

	albedo := c.TexSample(maps.Albedo, u, v, in.Layer, in.Footprint)
	nmap := c.TexSample(maps.Normal, u, v, in.Layer, in.Footprint)
	metallic := c.TexSample(maps.Metallic, u, v, in.Layer, in.Footprint)
	rough := c.TexSample(maps.Roughness, u, v, in.Layer, in.Footprint)
	ao := c.TexSample(maps.AO, u, v, in.Layer, in.Footprint)

	// Perturb the interpolated normal with the normal map (tangent-space
	// approximation: offset and renormalize).
	two := c.Imm(2)
	negOne := c.Imm(-1)
	pert := Vec3V{
		c.FMA(nmap.X, two, negOne),
		c.FMA(nmap.Y, two, negOne),
		c.FMA(nmap.Z, two, negOne),
	}
	nrm := c.V3Normalize(c.V3FMA(pert, c.Imm(0.5), n))

	// View and half vectors.
	cam := c.V3Imm(light.CameraPos)
	view := c.V3Normalize(c.V3Sub(cam, wp))
	l := c.V3Imm(light.Dir)
	half := c.V3Normalize(c.V3Add(view, l))

	ndl := c.Max(c.V3Dot(nrm, l), c.Imm(0))
	ndv := c.Max(c.V3Dot(nrm, view), c.Imm(0.001))
	ndh := c.Max(c.V3Dot(nrm, half), c.Imm(0))

	// GGX-ish distribution: a2 / (pi * (ndh^2 (a2-1) + 1)^2).
	a := c.Mul(rough.X, rough.X)
	a2 := c.Mul(a, a)
	denomInner := c.FMA(c.Mul(ndh, ndh), c.Sub(a2, c.Imm(1)), c.Imm(1))
	denom := c.Mul(c.Mul(denomInner, denomInner), c.Imm(3.14159265))
	dist := c.Mul(a2, c.Rcp(c.Max(denom, c.Imm(1e-5))))

	// Schlick Fresnel with metallic-blended F0.
	f0 := c.V3Lerp(c.V3Imm(gmath.V3(0.04, 0.04, 0.04)), Vec3V{albedo.X, albedo.Y, albedo.Z}, metallic.X)
	oneMinus := c.Sub(c.Imm(1), ndv)
	p5 := c.Pow(oneMinus, c.Imm(5))
	fres := c.V3Lerp(f0, c.V3Imm(gmath.V3(1, 1, 1)), p5)

	// Smith geometry (direct-lighting k).
	k := c.Mul(c.Add(rough.X, c.Imm(1)), c.Mul(c.Add(rough.X, c.Imm(1)), c.Imm(0.125)))
	gv := c.Mul(ndv, c.Rcp(c.FMA(ndv, c.Sub(c.Imm(1), k), k)))
	gl := c.Mul(ndl, c.Rcp(c.FMA(ndl, c.Sub(c.Imm(1), k), k)))
	geo := c.Mul(gv, gl)

	specScale := c.Mul(c.Mul(dist, geo), c.Rcp(c.Max(c.Mul(c.Mul(ndv, ndl), c.Imm(4)), c.Imm(1e-4))))
	spec := c.V3Scale(fres, specScale)

	// Diffuse (energy-conserving).
	kd := c.V3Sub(c.V3Imm(gmath.V3(1, 1, 1)), fres)
	kd = c.V3Scale(kd, c.Sub(c.Imm(1), metallic.X))
	diff := c.V3Scale(Vec3V{albedo.X, albedo.Y, albedo.Z}, c.Imm(1/3.14159265))
	diff = c.V3Mul(diff, kd)

	lc := c.V3Imm(light.Color)
	direct := c.V3Mul(c.V3Scale(c.V3Add(diff, spec), ndl), lc)

	// Image-based ambient: irradiance for diffuse, prefiltered env +
	// BRDF LUT for specular (sampled at reflection-dependent UVs).
	irr := c.TexSample(maps.Irradiance, nrm.X, nrm.Y, in.Layer, in.Footprint)
	pre := c.TexSample(maps.Prefilter, c.Mul(nrm.X, rough.X), c.Mul(nrm.Y, rough.X), in.Layer, in.Footprint)
	lut := c.TexSample(maps.BRDF, ndv, rough.X, in.Layer, in.Footprint)

	ambD := c.V3Mul(Vec3V{irr.X, irr.Y, irr.Z}, Vec3V{albedo.X, albedo.Y, albedo.Z})
	ambS := c.V3Scale(Vec3V{pre.X, pre.Y, pre.Z}, c.FMA(fres.X, lut.X, lut.Y))
	ambient := c.V3Scale(c.V3Add(ambD, ambS), ao.X)

	col := c.V3Add(direct, ambient)
	// Reinhard tone map: c/(1+c).
	col = Vec3V{
		c.Mul(col.X, c.Rcp(c.Add(col.X, c.Imm(1)))),
		c.Mul(col.Y, c.Rcp(c.Add(col.Y, c.Imm(1)))),
		c.Mul(col.Z, c.Rcp(c.Add(col.Z, c.Imm(1)))),
	}
	return c.export(col, albedo.W, in)
}

// ToonFS is the Platformer-style stylized shader: one albedo texture and
// quantized diffuse bands.
func ToonFS(c *Ctx, in *FSIn, albedo *texture.Texture, light Light) FSOut {
	u, v, n, _ := loadVaryings(c, in)
	tex := c.TexSample(albedo, u, v, in.Layer, in.Footprint)
	nn := c.V3Normalize(n)
	ndl := c.Max(c.V3Dot(nn, c.V3Imm(light.Dir)), c.Imm(0))
	// Quantize into 3 toon bands with predicated selects — the small
	// divergence compiled stylized shaders use.
	hi := c.CmpGT(ndl, c.Imm(0.66))
	mid := c.CmpGT(ndl, c.Imm(0.33))
	banded := c.Select(hi, c.Imm(1), c.Select(mid, c.Imm(0.66), c.Imm(0.25)))
	lc := c.V3Imm(light.Color)
	amb := c.V3Imm(light.Ambient)
	shade := c.V3FMA(lc, banded, amb)
	col := c.V3Mul(Vec3V{tex.X, tex.Y, tex.Z}, shade)
	return c.export(col, tex.W, in)
}

// MaterialFS is the material-tester shader: albedo + roughness + normal
// maps with Blinn-Phong specular — between basic and PBR in complexity.
func MaterialFS(c *Ctx, in *FSIn, albedo, roughness, normal *texture.Texture, light Light) FSOut {
	u, v, n, wp := loadVaryings(c, in)
	tex := c.TexSample(albedo, u, v, in.Layer, in.Footprint)
	rgh := c.TexSample(roughness, u, v, in.Layer, in.Footprint)
	nmap := c.TexSample(normal, u, v, in.Layer, in.Footprint)

	two := c.Imm(2)
	negOne := c.Imm(-1)
	pert := Vec3V{c.FMA(nmap.X, two, negOne), c.FMA(nmap.Y, two, negOne), c.FMA(nmap.Z, two, negOne)}
	nrm := c.V3Normalize(c.V3FMA(pert, c.Imm(0.4), n))

	l := c.V3Imm(light.Dir)
	ndl := c.Max(c.V3Dot(nrm, l), c.Imm(0))
	view := c.V3Normalize(c.V3Sub(c.V3Imm(light.CameraPos), wp))
	half := c.V3Normalize(c.V3Add(view, l))
	ndh := c.Max(c.V3Dot(nrm, half), c.Imm(0))
	shin := c.FMA(c.Sub(c.Imm(1), rgh.X), c.Imm(96), c.Imm(4))
	spec := c.Pow(ndh, shin)

	lc := c.V3Imm(light.Color)
	amb := c.V3Imm(light.Ambient)
	col := c.V3Mul(Vec3V{tex.X, tex.Y, tex.Z}, c.V3FMA(lc, ndl, amb))
	col = c.V3FMA(lc, c.Mul(spec, c.Sub(c.Imm(1), rgh.X)), col)
	return c.export(col, tex.W, in)
}

// PlanetFS is the instanced-planets shader: a layered (array) texture
// indexed by the per-instance layer attribute, plus Lambert shading —
// the unique streaming/temporal access mix the paper includes IT for.
func PlanetFS(c *Ctx, in *FSIn, layered *texture.Texture, light Light) FSOut {
	u, v, n, _ := loadVaryings(c, in)
	tex := c.TexSample(layered, u, v, in.Layer, in.Footprint)
	nn := c.V3Normalize(n)
	ndl := c.Max(c.V3Dot(nn, c.V3Imm(light.Dir)), c.Imm(0))
	lc := c.V3Imm(light.Color)
	amb := c.V3Imm(light.Ambient)
	col := c.V3Mul(Vec3V{tex.X, tex.Y, tex.Z}, c.V3FMA(lc, ndl, amb))
	return c.export(col, tex.W, in)
}
