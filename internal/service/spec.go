package service

import (
	"encoding/json"
	"fmt"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/render"
	"crisp/internal/scenario"
	"crisp/internal/scene"
	"crisp/internal/snapshot"
)

// JobSpec is the submission body of POST /v1/jobs: a simulation described
// entirely by value — workload names, a named or inline GPU configuration,
// a policy, and render/run options — so the service can rebuild, digest,
// and deduplicate it without any client-held state.
type JobSpec struct {
	// GPU names a built-in configuration ("JetsonOrin", "RTX3070");
	// empty defaults to JetsonOrin. Ignored when Config is set.
	GPU string `json:"gpu,omitempty"`
	// Config is an inline JSON GPU configuration with the same semantics
	// as a -config file: any subset of fields overriding a "base" config.
	Config json.RawMessage `json:"config,omitempty"`
	// Scene and Compute name the workloads (either may be empty, not both).
	Scene   string `json:"scene,omitempty"`
	Compute string `json:"compute,omitempty"`
	// Scenario names an N-tenant mix preset (scenario.PresetNames); Mix is
	// an inline scenario.MixSpec JSON document. At most one may be set, and
	// a scenario job carries no Scene/Compute — the mix names its own
	// workloads. Width/Height/LoD still apply, to every render tenant.
	Scenario string          `json:"scenario,omitempty"`
	Mix      json.RawMessage `json:"mix,omitempty"`
	// Policy is the partitioning policy; empty = serial.
	Policy string `json:"policy,omitempty"`
	// Width/Height override the render resolution (0 = default).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// LoD toggles mipmap LoD; nil = default (on).
	LoD *bool `json:"lod,omitempty"`
	// CycleBudget caps the run in simulated cycles (0 = the server's
	// default budget). Budgets bound runaway jobs; they do not key the
	// result cache, because only successful runs are cached and a
	// successful run is budget-independent.
	CycleBudget int64 `json:"cycle_budget,omitempty"`
	// WatchdogWindow overrides the forward-progress watchdog (0 = server
	// default, negative = off).
	WatchdogWindow int64 `json:"watchdog_window,omitempty"`
}

// resolved is a JobSpec after name resolution and validation: everything
// execute() needs, plus the job's content digest.
type resolved struct {
	cfg     config.GPU
	scene   string
	compute string
	policy  core.PolicyKind
	opts    render.Options
	budget  int64
	wdog    int64
	digest  string
	// mix/mixJSON are set for scenario jobs: the validated, normalized
	// MixSpec and its canonical JSON — the exact bytes core.BuildMixJob
	// embeds in snapshot specs, so cache key == snapshot header digest.
	mix     scenario.MixSpec
	mixJSON []byte
}

// isMix reports whether this job is an N-tenant scenario rather than a
// pair.
func (r *resolved) isMix() bool { return len(r.mixJSON) > 0 }

// mixHasRender reports whether any mix tenant renders (RenderOptions only
// key the digest when they affect the run).
func (r *resolved) mixHasRender() bool {
	for _, t := range r.mix.Tenants {
		if t.Scene != "" {
			return true
		}
	}
	return false
}

// resolve validates the spec and computes its canonical content digest.
// All errors are client errors (HTTP 400): the server's own failures
// surface later, from the run itself.
func (s *JobSpec) resolve() (*resolved, error) {
	r := &resolved{scene: s.Scene, compute: s.Compute, budget: s.CycleBudget, wdog: s.WatchdogWindow}

	var err error
	switch {
	case len(s.Config) > 0:
		r.cfg, err = config.Parse(s.Config)
	case s.GPU != "":
		r.cfg, err = config.ByName(s.GPU)
	default:
		r.cfg = config.JetsonOrin()
	}
	if err != nil {
		return nil, err
	}

	switch {
	case s.Scenario != "" || len(s.Mix) > 0:
		if s.Scenario != "" && len(s.Mix) > 0 {
			return nil, fmt.Errorf("scenario and mix are mutually exclusive (a preset name or an inline spec, not both)")
		}
		if s.Scene != "" || s.Compute != "" {
			return nil, fmt.Errorf("a scenario job names its workloads inside the mix; scene/compute must be empty")
		}
		if s.Scenario != "" {
			r.mix, err = scenario.Preset(s.Scenario)
			if err != nil {
				return nil, err
			}
		} else {
			if err := json.Unmarshal(s.Mix, &r.mix); err != nil {
				return nil, fmt.Errorf("parsing inline mix: %w", err)
			}
			if err := r.mix.Validate(); err != nil {
				return nil, err
			}
			r.mix.Normalize()
		}
		// Canonical bytes: presets come back normalized, inline mixes were
		// normalized above, so this marshal matches core.BuildMixJob's.
		r.mixJSON, err = json.Marshal(&r.mix)
		if err != nil {
			return nil, fmt.Errorf("canonicalizing mix: %w", err)
		}
	case s.Scene == "" && s.Compute == "":
		return nil, fmt.Errorf("job needs a scene and/or a compute workload (or a scenario)")
	default:
		if s.Scene != "" && !contains(scene.Names(), s.Scene) {
			return nil, fmt.Errorf("unknown scene %q (have %v)", s.Scene, scene.Names())
		}
		if s.Compute != "" && !contains(compute.Names(), s.Compute) {
			return nil, fmt.Errorf("unknown compute workload %q (have %v)", s.Compute, compute.Names())
		}
	}

	// Normalize the empty policy to its canonical name so "" and "serial"
	// submissions share one digest.
	r.policy = core.PolicyKind(s.Policy)
	if r.policy == "" {
		r.policy = core.PolicySerial
	}
	if !core.KnownPolicy(r.policy) {
		return nil, fmt.Errorf("unknown policy %q (have %v)", s.Policy, core.PolicyKinds())
	}

	r.opts = render.DefaultOptions()
	if s.Width > 0 {
		r.opts.W = s.Width
	}
	if s.Height > 0 {
		r.opts.H = s.Height
	}
	if s.LoD != nil {
		r.opts.LoD = *s.LoD
	}
	if s.Width < 0 || s.Height < 0 {
		return nil, fmt.Errorf("negative render resolution %dx%d", s.Width, s.Height)
	}

	spec := r.snapshotSpec()
	r.digest = spec.JobDigest()
	return r, nil
}

// snapshotSpec mirrors core's checkpoint spec construction for this job,
// so the service's cache key and the header digest of any snapshot the
// run writes are the same value (snapshot.Spec.JobDigest).
func (r *resolved) snapshotSpec() snapshot.Spec {
	spec := snapshot.Spec{
		GPU:     r.cfg,
		Scene:   r.scene,
		Compute: r.compute,
		Policy:  string(r.policy),
	}
	if r.isMix() {
		spec.Mix = r.mixJSON
		if r.mixHasRender() {
			if b, err := json.Marshal(r.opts); err == nil {
				spec.RenderOptions = b
			}
		}
		return spec
	}
	if r.scene != "" {
		if b, err := json.Marshal(r.opts); err == nil {
			spec.RenderOptions = b
		}
	}
	return spec
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
