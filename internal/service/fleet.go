package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"syscall"
	"time"

	crisp "crisp"
	"crisp/internal/obs"
	"crisp/internal/robust"
)

// This file is the shared execution core: one attempt of one resolved
// job, runnable either in-process through the crisp facade (runDirect) or
// in a child worker process over the wire protocol (runWorkerProcess).
// Both the per-job supervision path (execute/runAttempt in service.go)
// and the fleet shards (coordinator.go) drive these two functions, so a
// sweep task and a directly submitted job execute byte-identically — the
// determinism contract the merged-digest convergence tests lean on.

// runParams is one fully resolved execution attempt: the job plus every
// server-default-merged knob, by value.
type runParams struct {
	res              *resolved
	resumeFrom       string
	checkpointDir    string
	checkpointEvery  int64
	budget           int64
	wdog             int64
	progressInterval int64
	runWorkers       int
	killAt           int64
}

// paramsFor merges the server defaults into one attempt's parameters.
func (s *Server) paramsFor(r *resolved, resumeFrom, checkpointDir string, killAt int64) runParams {
	p := runParams{
		res:              r,
		resumeFrom:       resumeFrom,
		checkpointDir:    checkpointDir,
		checkpointEvery:  s.cfg.CheckpointEvery,
		budget:           r.budget,
		wdog:             r.wdog,
		progressInterval: s.cfg.ProgressInterval,
		runWorkers:       s.cfg.RunWorkers,
		killAt:           killAt,
	}
	if p.budget == 0 {
		p.budget = s.cfg.DefaultBudget
	}
	if p.wdog == 0 {
		p.wdog = s.cfg.WatchdogWindow
	}
	return p
}

// attemptHooks observe one attempt's progress. Any hook may be nil.
type attemptHooks struct {
	// onSample receives interval telemetry from the simulation (or, for an
	// isolated attempt, forwarded from the child).
	onSample func(obs.Sample)
	// onFallback reports checkpoints renamed aside during a resume.
	onFallback func(corrupt []string)
	// onHeartbeat fires on a child's wall-clock liveness events (isolated
	// attempts only) — the fleet's lease-renewal signal.
	onHeartbeat func()
	// onCached fires when an isolated worker answered from its local
	// result cache without simulating (cache federation).
	onCached func()
	// onKill implements the chaos kill at runParams.killAt for the direct
	// path: in-process supervision panics with an injected SimError (the
	// core's deferred recovery flushes a final snapshot first); a worker
	// process SIGKILLs itself (no snapshot — the hardest crash).
	onKill func(cycle int64)
}

// runDirect executes one attempt in-process through the crisp facade and
// summarizes the result for the cache. The returned wall time is the
// simulation time, for the server's EWMA.
func runDirect(ctx context.Context, p runParams, h attemptHooks) (*StoredResult, time.Duration, error) {
	sink := func(smp obs.Sample) {
		if h.onSample != nil {
			h.onSample(smp)
		}
		if p.killAt > 0 && smp.Cycle >= p.killAt && h.onKill != nil {
			h.onKill(smp.Cycle)
		}
	}
	runOpts := []crisp.RunOption{
		crisp.WithMetrics(p.progressInterval),
		crisp.WithMetricsSink(sink),
	}
	if p.budget > 0 {
		runOpts = append(runOpts, crisp.WithCycleBudget(p.budget))
	}
	if p.wdog != 0 {
		runOpts = append(runOpts, crisp.WithWatchdog(p.wdog))
	}
	if p.runWorkers != 0 {
		runOpts = append(runOpts, crisp.WithWorkers(p.runWorkers))
	}
	if p.checkpointDir != "" {
		runOpts = append(runOpts, crisp.WithCheckpointDir(p.checkpointDir))
		if p.checkpointEvery > 0 {
			runOpts = append(runOpts, crisp.WithCheckpointEvery(p.checkpointEvery))
		}
	}

	t0 := time.Now()
	var res *crisp.Result
	var err error
	if p.resumeFrom != "" {
		// Resume from the newest readable snapshot; corrupt ones are
		// renamed aside and skipped (fallback-to-previous). A directory
		// with nothing readable falls back to a fresh run — losing
		// progress, never the job.
		env, corrupt, lerr := loadResume(p.resumeFrom)
		if len(corrupt) > 0 && h.onFallback != nil {
			h.onFallback(corrupt)
		}
		if lerr == nil {
			res, err = crisp.Resume(ctx, env, runOpts...)
		}
	}
	if res == nil && err == nil {
		if p.res.isMix() {
			res, err = crisp.RunMixContext(ctx, p.res.cfg, p.res.mix, p.res.policy, p.res.opts, runOpts...)
		} else {
			res, err = crisp.RunPairContext(ctx, p.res.cfg, p.res.scene, p.res.compute, p.res.policy, p.res.opts, runOpts...)
		}
	}
	wall := time.Since(t0)
	if err != nil {
		return nil, wall, err
	}
	stored, serr := storedFromResult(p.res, res, float64(wall.Microseconds())/1000)
	return stored, wall, serr
}

// workerArgv resolves the isolated-worker command line: the configured
// override, or this binary re-exec'ed with WorkerEnv set.
func (s *Server) workerArgv() ([]string, error) {
	if len(s.cfg.WorkerCommand) > 0 {
		return s.cfg.WorkerCommand, nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "locating worker binary", Err: err}
	}
	return []string{self}, nil
}

// runWorkerProcess executes one attempt in a child worker process
// speaking the wire protocol. The child's samples, heartbeats, and
// fallback reports fire the hooks; its terminal event becomes this
// function's return. A child that dies without a terminal event — the
// SIGKILL/OOM case — is classified KindCrash (retryable), or KindCanceled
// when its death was requested through ctx. logName labels protocol
// complaints in the daemon log.
func (s *Server) runWorkerProcess(ctx context.Context, req workerRequest, h attemptHooks, logName string) (*StoredResult, error) {
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, &robust.SimError{Kind: robust.KindValidation, Msg: "encoding worker request", Err: err}
	}
	argv, err := s.workerArgv()
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stdin = bytes.NewReader(reqJSON)
	cmd.Stderr = os.Stderr
	// Graceful stop: ctx cancellation SIGTERMs the child (it flushes a
	// final snapshot and reports canceled); WaitDelay escalates to SIGKILL
	// if it wedges.
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = workerKillDelay
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "worker stdout pipe", Err: err}
	}
	if err := cmd.Start(); err != nil {
		return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "spawning worker", Err: err}
	}

	t0 := time.Now()
	var stored *StoredResult
	var cached bool
	var simErr *robust.SimError
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64*1024), maxWireEvent)
	for sc.Scan() {
		ev, err := decodeWorkerEvent(sc.Bytes())
		if err != nil {
			log.Printf("crispd: %s: dropped worker event: %v", logName, err)
			continue
		}
		switch ev.Type {
		case evSample:
			if h.onSample != nil {
				h.onSample(*ev.Sample)
			}
		case evHeartbeat:
			if h.onHeartbeat != nil {
				h.onHeartbeat()
			}
		case evFallback:
			for _, c := range ev.Corrupt {
				log.Printf("crispd: %s: corrupt checkpoint %s renamed aside (worker)", logName, c)
			}
			if len(ev.Corrupt) > 0 && h.onFallback != nil {
				h.onFallback(ev.Corrupt)
			}
		case evResult:
			stored, cached = ev.Result, ev.Cached
		case evError:
			kind, ok := robust.KindFromString(ev.ErrKind)
			if !ok {
				kind = robust.KindPanic
			}
			simErr = &robust.SimError{Kind: kind, Cycle: ev.ErrCycle, Msg: ev.ErrMsg}
		}
	}
	waitErr := cmd.Wait()
	s.observeRunTime(time.Since(t0))

	switch {
	case stored != nil:
		if cached && h.onCached != nil {
			h.onCached()
		}
		return stored, nil
	case simErr != nil:
		return nil, simErr
	case ctx.Err() != nil:
		// Death was requested (cancel or drain) and the child never got a
		// terminal event out — SIGKILL escalation beat the snapshot flush.
		return nil, &robust.SimError{Kind: robust.KindCanceled, Msg: "worker terminated by cancellation", Err: ctx.Err()}
	default:
		// The child vanished mid-protocol: SIGKILL, OOM kill, or a runtime
		// fault. Only this attempt dies; the supervisor retries from the
		// last periodic checkpoint.
		s.crashes.Add(1)
		return nil, &robust.SimError{Kind: robust.KindCrash,
			Msg: fmt.Sprintf("worker process died without a result: %v", waitErr)}
	}
}
