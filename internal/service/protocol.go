package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"crisp/internal/obs"
	"crisp/internal/robust"
)

// The coordinator↔worker wire protocol. A supervisor (the per-job
// isolation path in worker.go, or a fleet shard in coordinator.go) sends
// one workerRequest JSON document on the child's stdin; the child streams
// newline-delimited workerEvent JSON on stdout — any number of "sample",
// "heartbeat", and "fallback" events, then exactly one terminal "result"
// or "error" event. The same framing works unchanged over a socket to a
// remote `crispd -worker-mode` peer: the protocol carries summaries,
// never simulator internals, so both ends rebuild the job independently
// from the same by-value JobSpec.
//
// Every inbound line passes through decodeWorkerEvent, which enforces the
// never-panic contract fuzzed by FuzzWireDecode: arbitrary bytes produce
// an error, never a crash, and a structurally valid event always carries
// the fields its type promises.

// Protocol event types (workerEvent.Type).
const (
	evSample    = "sample"
	evFallback  = "fallback"
	evHeartbeat = "heartbeat"
	evResult    = "result"
	evError     = "error"
)

// workerRequest is everything one attempt needs, resolved by the parent.
type workerRequest struct {
	Spec JobSpec `json:"spec"`
	// ResumeDir, when set, resumes from the newest readable snapshot in
	// the directory (corrupt ones renamed aside, reported via "fallback").
	ResumeDir string `json:"resume_dir,omitempty"`
	// CheckpointDir/CheckpointEvery enable periodic checkpoints — the
	// supervisor's recovery points if this worker dies.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int64  `json:"checkpoint_every,omitempty"`
	// ResultsDir, when set, is a content-addressed result cache the worker
	// consults before simulating: a hit for the job digest is returned as
	// a result event with Cached set, without re-executing. This is how
	// the fleet federates caches — a worker that already computed a digest
	// answers from its local store.
	ResultsDir string `json:"results_dir,omitempty"`
	// Budget and Watchdog are the server-default-merged limits.
	Budget   int64 `json:"budget,omitempty"`
	Watchdog int64 `json:"watchdog,omitempty"`
	// ProgressInterval is the sample cadence; RunWorkers the -j knob.
	ProgressInterval int64 `json:"progress_interval,omitempty"`
	RunWorkers       int   `json:"run_workers,omitempty"`
	// HeartbeatEvery, when positive, makes the worker emit heartbeat
	// events on this wall-clock period — the lease-renewal signal a fleet
	// coordinator watches between samples.
	HeartbeatEvery int64 `json:"heartbeat_every_ns,omitempty"`
	// KillAt is a chaos fault: the worker SIGKILLs itself at this
	// simulated cycle (0 = none), leaving no final snapshot — the hardest
	// crash the supervisor must recover from.
	KillAt int64 `json:"kill_at,omitempty"`
}

// workerEvent is one newline-delimited protocol message from the child.
type workerEvent struct {
	Type string `json:"type"` // evSample | evFallback | evHeartbeat | evResult | evError
	// Sample carries interval telemetry (Type "sample"), forwarded to the
	// job's hub so isolation is invisible to timeline subscribers.
	Sample *obs.Sample `json:"sample,omitempty"`
	// Corrupt lists checkpoints renamed aside during resume (Type
	// "fallback").
	Corrupt []string `json:"corrupt,omitempty"`
	// Result is the completed attempt's cache entry (Type "result");
	// Cached marks it as answered from the worker's local result cache
	// without simulating.
	Result *StoredResult `json:"result,omitempty"`
	Cached bool          `json:"cached,omitempty"`
	// ErrKind/ErrCycle/ErrMsg reconstruct the SimError (Type "error").
	ErrKind  string `json:"err_kind,omitempty"`
	ErrCycle int64  `json:"err_cycle,omitempty"`
	ErrMsg   string `json:"err_msg,omitempty"`
}

// maxWireEvent bounds one protocol line. Samples are a few KB; results
// grow with per-task stats. 16 MiB matches the scanner buffer the
// supervisor reads with.
const maxWireEvent = 16 * 1024 * 1024

// decodeWorkerEvent parses and validates one protocol line. It never
// panics on any input (the fuzzed contract): malformed JSON, unknown
// fields, an unknown type, or a type missing its promised payload all
// return an error, so a corrupted or adversarial peer costs one attempt,
// never the coordinator.
func decodeWorkerEvent(line []byte) (*workerEvent, error) {
	if len(line) == 0 {
		return nil, fmt.Errorf("protocol: empty event line")
	}
	if len(line) > maxWireEvent {
		return nil, fmt.Errorf("protocol: event line of %d bytes exceeds the %d limit", len(line), maxWireEvent)
	}
	var ev workerEvent
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return nil, fmt.Errorf("protocol: malformed event: %w", err)
	}
	switch ev.Type {
	case evSample:
		if ev.Sample == nil {
			return nil, fmt.Errorf("protocol: sample event without a sample")
		}
	case evFallback, evHeartbeat:
		// No required payload.
	case evResult:
		if ev.Result == nil {
			return nil, fmt.Errorf("protocol: result event without a result")
		}
		if !validDigest(ev.Result.Digest) {
			return nil, fmt.Errorf("protocol: result event with malformed digest %q", ev.Result.Digest)
		}
	case evError:
		if ev.ErrKind == "" {
			return nil, fmt.Errorf("protocol: error event without a kind")
		}
	default:
		return nil, fmt.Errorf("protocol: unknown event type %q", ev.Type)
	}
	return &ev, nil
}

// eventWriter serializes protocol events onto one stream: the sample sink
// runs on the simulation goroutine while the signal handler and heartbeat
// goroutines are live, so writes are mutexed.
type eventWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   *bufio.Writer
}

func newEventWriter(w io.Writer) *eventWriter {
	bw := bufio.NewWriter(w)
	return &eventWriter{enc: json.NewEncoder(bw), w: bw}
}

func (e *eventWriter) event(ev workerEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enc.Encode(ev) // Encode appends the newline framing
	e.w.Flush()
}

func (e *eventWriter) sample(smp obs.Sample) {
	e.event(workerEvent{Type: evSample, Sample: &smp})
}

func (e *eventWriter) heartbeat() {
	e.event(workerEvent{Type: evHeartbeat})
}

func (e *eventWriter) error(se *robust.SimError) {
	e.event(workerEvent{
		Type:     evError,
		ErrKind:  robust.DeepestKind(se).String(),
		ErrCycle: se.Cycle,
		ErrMsg:   se.Error(),
	})
}
