package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	crisp "crisp"
	"crisp/internal/obs"
)

// tinySpec is a fast job: the 128×72 resolution the core tests use.
func tinySpec(scene, comp, policy string) JobSpec {
	return JobSpec{Scene: scene, Compute: comp, Policy: policy, Width: 128, Height: 72}
}

// directRun executes the same job the service would, via the facade, for
// bit-identical comparison.
func directRun(t *testing.T, spec JobSpec) *crisp.Result {
	t.Helper()
	r, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	var res *crisp.Result
	if r.isMix() {
		res, err = crisp.RunMix(r.cfg, r.mix, r.policy, r.opts)
	} else {
		res, err = crisp.RunPair(r.cfg, r.scene, r.compute, r.policy, r.opts)
	}
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	return res
}

func waitState(t *testing.T, s *Server, id string, want State, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		job.mu.Lock()
		st, errMsg := job.state, job.errMsg
		job.mu.Unlock()
		if st == want {
			return job
		}
		switch st {
		case StateFailed, StateCanceled, StateDone, StateQuarantined:
			t.Fatalf("job %s reached %s (want %s): %s", id, st, want, errMsg)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s)", id, st, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceEndToEnd is the ISSUE acceptance test: N concurrent
// submissions covering K distinct jobs all complete, with exactly K
// simulator executions (the rest served by the cache or coalesced onto an
// in-flight run), and each cached result bit-identical to a direct
// crisp.RunPair of the same inputs.
func TestServiceEndToEnd(t *testing.T) {
	specs := []JobSpec{
		tinySpec("SPL", "", "serial"),
		tinySpec("SPL", "VIO", "EVEN"),
		{Compute: "VIO"},
	}
	const dup = 4 // submissions per distinct job

	s, err := New(Config{Workers: 2, ProgressInterval: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	var (
		mu  sync.Mutex
		ids []string
		wg  sync.WaitGroup
	)
	for i := 0; i < dup; i++ {
		for _, spec := range specs {
			wg.Add(1)
			go func(spec JobSpec) {
				defer wg.Done()
				job, err := s.Submit(spec)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, job.ID)
				mu.Unlock()
			}(spec)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(ids) != dup*len(specs) {
		t.Fatalf("submitted %d jobs, tracked %d", dup*len(specs), len(ids))
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone, 2*time.Minute)
	}

	st := s.Snapshot()
	if st.Executions != int64(len(specs)) {
		t.Errorf("executions = %d, want exactly %d (one per distinct job)", st.Executions, len(specs))
	}
	if got := st.CacheHits + st.Coalesced; got != int64(dup*len(specs)-len(specs)) {
		t.Errorf("cache hits (%d) + coalesced (%d) = %d, want %d",
			st.CacheHits, st.Coalesced, got, dup*len(specs)-len(specs))
	}
	if st.Done != int64(dup*len(specs)) {
		t.Errorf("done = %d, want %d", st.Done, dup*len(specs))
	}

	// Every cached result must match a direct facade run bit for bit.
	for _, spec := range specs {
		r, err := spec.resolve()
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		sr, ok := s.Result(r.digest)
		if !ok {
			t.Fatalf("no cached result for %+v (digest %s)", spec, r.digest)
		}
		direct := directRun(t, spec)
		dd, err := direct.StatsDigest()
		if err != nil {
			t.Fatalf("StatsDigest: %v", err)
		}
		if sr.Cycles != direct.Cycles {
			t.Errorf("%s/%s/%s: service cycles %d != direct %d",
				spec.Scene, spec.Compute, spec.Policy, sr.Cycles, direct.Cycles)
		}
		if want := fmt.Sprintf("%016x", dd); sr.StatsDigest != want {
			t.Errorf("%s/%s/%s: service stats digest %s != direct %s",
				spec.Scene, spec.Compute, spec.Policy, sr.StatsDigest, want)
		}
	}

	// A fresh submission of a completed job is an instant cache hit.
	job, err := s.Submit(specs[0])
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	job.mu.Lock()
	state, hit := job.state, job.cacheHit
	job.mu.Unlock()
	if state != StateDone || !hit {
		t.Errorf("resubmission: state=%s cacheHit=%v, want done cache hit", state, hit)
	}
}

// TestQueueFullAdmission fills the bounded queue of an un-started server
// (no workers draining it) and asserts the over-capacity submission is
// rejected with a QueueFullError carrying a positive Retry-After, then
// that starting the pool drains the backlog.
func TestQueueFullAdmission(t *testing.T) {
	s, err := New(Config{QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	first, err := s.Submit(tinySpec("SPL", "", "serial"))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Distinct digest (different policy), so it cannot coalesce: it must
	// hit admission control.
	_, err = s.Submit(tinySpec("SPL", "", "EVEN"))
	qf, ok := err.(*QueueFullError)
	if !ok {
		t.Fatalf("over-capacity submit: got err %v, want *QueueFullError", err)
	}
	if qf.RetryAfter < time.Second {
		t.Errorf("Retry-After %v, want >= 1s", qf.RetryAfter)
	}

	// An identical job coalesces instead of being rejected: dedup costs
	// no queue slot.
	co, err := s.Submit(tinySpec("SPL", "", "serial"))
	if err != nil {
		t.Fatalf("identical submit while queue full: %v", err)
	}
	if !co.coalesce {
		t.Errorf("identical submission did not coalesce")
	}

	s.Start()
	defer s.Drain(context.Background())
	waitState(t, s, first.ID, StateDone, 2*time.Minute)
	waitState(t, s, co.ID, StateDone, time.Second)
}

// TestDrainAndResume drains a server mid-simulation and restarts it on the
// same state directory: the recovered job must resume from its final
// snapshot and finish bit-identical to an uninterrupted run.
func TestDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("drain/restart round trip is not short")
	}
	dir := t.TempDir()
	spec := tinySpec("SPL", "VIO", "EVEN")

	s1, err := New(Config{
		Workers:          1,
		StateDir:         dir,
		ProgressInterval: 256,
		CheckpointEvery:  512,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s1.Start()
	job, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until the run has made observable progress, so the drain
	// interrupts a genuinely mid-flight simulation.
	deadline := time.Now().Add(time.Minute)
	for {
		job.mu.Lock()
		cycle := int64(0)
		if ev, ok := job.hub.Latest(obs.TimelineSample); ok {
			cycle = ev.Cycle
		}
		st := job.state
		job.mu.Unlock()
		if st == StateRunning && cycle > 0 {
			break
		}
		if st == StateDone {
			t.Skip("job finished before it could be drained; nothing to resume")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never made progress (state %s)", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	job.mu.Lock()
	st := job.state
	job.mu.Unlock()
	if st != StateQueued {
		t.Fatalf("drained job state = %s, want queued (resumable)", st)
	}

	// Second daemon instance over the same state directory.
	s2, err := New(Config{Workers: 1, StateDir: dir, ProgressInterval: 256})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	recovered, ok := s2.Job(job.ID)
	if !ok {
		t.Fatalf("restarted server lost job %s", job.ID)
	}
	if recovered.resumeFrom == "" {
		t.Errorf("recovered job has no snapshot to resume from")
	}
	s2.Start()
	defer s2.Drain(context.Background())
	waitState(t, s2, job.ID, StateDone, 2*time.Minute)

	r, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	sr, ok := s2.Result(r.digest)
	if !ok {
		t.Fatalf("no cached result after resume")
	}
	if !sr.Resumed {
		t.Errorf("result not marked resumed; the restart re-simulated from scratch")
	}
	direct := directRun(t, spec)
	dd, _ := direct.StatsDigest()
	if sr.Cycles != direct.Cycles || sr.StatsDigest != fmt.Sprintf("%016x", dd) {
		t.Errorf("resumed result (cycles %d, digest %s) != direct (cycles %d, digest %016x)",
			sr.Cycles, sr.StatsDigest, direct.Cycles, dd)
	}

	// Third instance: the cache now answers without any execution.
	s3, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatalf("third New: %v", err)
	}
	s3.Start()
	defer s3.Drain(context.Background())
	hit, err := s3.Submit(spec)
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	hit.mu.Lock()
	hitState, cached := hit.state, hit.cacheHit
	hit.mu.Unlock()
	if hitState != StateDone || !cached {
		t.Errorf("restarted cache: state=%s cached=%v, want instant hit", hitState, cached)
	}
	if n := s3.Snapshot().Executions; n != 0 {
		t.Errorf("restarted server executed %d jobs for a cached digest", n)
	}
}

// TestCancelQueuedAndRunning exercises DELETE semantics at both lifecycle
// points.
func TestCancelQueuedAndRunning(t *testing.T) {
	s, err := New(Config{QueueDepth: 4, Workers: 1, ProgressInterval: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// No workers yet: cancel a queued job deterministically.
	queued, err := s.Submit(tinySpec("SPL", "", "serial"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ok, err := s.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("Cancel(queued) = %v, %v", ok, err)
	}
	queued.mu.Lock()
	st := queued.state
	queued.mu.Unlock()
	if st != StateCanceled {
		t.Fatalf("canceled queued job state = %s", st)
	}
	if ok, _ := s.Cancel(queued.ID); ok {
		t.Errorf("second cancel reported success on a finished job")
	}

	running, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())
	waitState(t, s, running.ID, StateRunning, time.Minute)
	if ok, err := s.Cancel(running.ID); err != nil || !ok {
		t.Fatalf("Cancel(running) = %v, %v", ok, err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		running.mu.Lock()
		st := running.state
		running.mu.Unlock()
		if st == StateCanceled {
			break
		}
		if st == StateDone {
			t.Skip("run finished before the cancel landed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled running job stuck in %s", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := s.Snapshot().Canceled; n != 2 {
		t.Errorf("canceled counter = %d, want 2", n)
	}
}

// TestSubmitValidation maps bad specs to ValidationError.
func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bad := []JobSpec{
		{},                              // no workload at all
		{Scene: "no-such-scene"},        // unknown scene
		{Compute: "no-such-kernel"},     // unknown compute workload
		{Scene: "SPL", Policy: "bogus"}, // unknown policy
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		} else if _, ok := err.(*ValidationError); !ok {
			t.Errorf("Submit(%+v) error %T, want *ValidationError", spec, err)
		}
	}
}

// TestDigestNormalization: submissions that resolve identically share one
// digest — empty policy vs "serial", named config vs the equivalent
// inline config.
func TestDigestNormalization(t *testing.T) {
	base := tinySpec("SPL", "", "serial")
	r1, err := base.resolve()
	if err != nil {
		t.Fatal(err)
	}
	empty := tinySpec("SPL", "", "")
	r2, err := empty.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r1.digest != r2.digest {
		t.Errorf("policy \"\" digest %s != \"serial\" digest %s", r2.digest, r1.digest)
	}

	inline := base
	inline.Config = []byte(`{"base": "JetsonOrin"}`)
	r3, err := inline.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r3.digest != r1.digest {
		t.Errorf("inline JetsonOrin digest %s != named digest %s", r3.digest, r1.digest)
	}

	other := base
	other.GPU = "RTX3070"
	r4, err := other.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r4.digest == r1.digest {
		t.Errorf("RTX3070 and JetsonOrin jobs share digest %s", r4.digest)
	}

	// Budgets and watchdogs bound execution; they must not key the cache.
	budgeted := base
	budgeted.CycleBudget = 1 << 40
	budgeted.WatchdogWindow = 1 << 30
	r5, err := budgeted.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r5.digest != r1.digest {
		t.Errorf("budgeted job digest %s != base digest %s", r5.digest, r1.digest)
	}

	// The service digest equals the header digest of snapshots written by
	// core for the same job (cache key ⇔ snapshot identity).
	snapSpec := r1.snapshotSpec()
	if d := snapSpec.JobDigest(); d != r1.digest {
		t.Errorf("snapshotSpec digest %s != resolved digest %s", d, r1.digest)
	}
}
