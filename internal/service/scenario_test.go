package service

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// scenarioSpec is a fast scenario job: an inline two-tenant compute mix
// (no rendering), so the test costs two short compute runs.
func scenarioSpec(policy string) JobSpec {
	mix := json.RawMessage(`{"name":"svc-mix","tenants":[
		{"compute":"VIO","deadline":4000000},
		{"compute":"NN","arrival":{"kind":"offset","offset":20000}}]}`)
	return JobSpec{Mix: mix, Policy: policy}
}

// TestScenarioJobEndToEnd submits an inline-mix job, asserts the cached
// result is bit-identical to a direct crisp.RunMix of the resolved spec,
// carries the QoS summary, and that a resubmission is an instant cache hit.
func TestScenarioJobEndToEnd(t *testing.T) {
	spec := scenarioSpec("EVEN")

	s, err := New(Config{Workers: 1, ProgressInterval: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone, 2*time.Minute)

	r, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	sr, ok := s.Result(r.digest)
	if !ok {
		t.Fatalf("no cached result for digest %s", r.digest)
	}
	if sr.Scenario != "svc-mix" {
		t.Errorf("stored scenario = %q, want svc-mix", sr.Scenario)
	}
	if sr.Tenants != 2 {
		t.Errorf("stored tenants = %d, want 2", sr.Tenants)
	}
	if sr.DeadlinesMet+sr.DeadlinesMissed != 1 {
		t.Errorf("deadline outcomes met=%d missed=%d, want exactly 1 total",
			sr.DeadlinesMet, sr.DeadlinesMissed)
	}

	direct := directRun(t, spec)
	dd, err := direct.StatsDigest()
	if err != nil {
		t.Fatalf("StatsDigest: %v", err)
	}
	if sr.Cycles != direct.Cycles {
		t.Errorf("service cycles %d != direct %d", sr.Cycles, direct.Cycles)
	}
	if want := fmt.Sprintf("%016x", dd); sr.StatsDigest != want {
		t.Errorf("service stats digest %s != direct %s", sr.StatsDigest, want)
	}

	// Resubmission: instant cache hit, no second execution.
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	again.mu.Lock()
	state, hit := again.state, again.cacheHit
	again.mu.Unlock()
	if state != StateDone || !hit {
		t.Errorf("resubmission: state=%s cacheHit=%v, want done cache hit", state, hit)
	}
}

// TestScenarioSpecValidation pins the admission rules: preset and inline
// mix are mutually exclusive, a scenario job carries no scene/compute, bad
// mixes and unknown presets are client errors, and a preset resolved by
// name digests identically to the same mix submitted inline (one cache
// entry, however the client phrased it).
func TestScenarioSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Scenario: "n-way-fair", Mix: json.RawMessage(`{"tenants":[{"compute":"VIO"}]}`)},
		{Scenario: "n-way-fair", Scene: "SPL"},
		{Scenario: "n-way-fair", Compute: "VIO"},
		{Scenario: "no-such-preset"},
		{Mix: json.RawMessage(`{"tenants":[]}`)},
		{Mix: json.RawMessage(`not json`)},
		{Mix: json.RawMessage(`{"tenants":[{"compute":"nope"}]}`)},
	}
	for i, spec := range bad {
		if _, err := spec.resolve(); err == nil {
			t.Errorf("case %d: invalid scenario spec accepted", i)
		}
	}

	presetSpec := JobSpec{Scenario: "n-way-fair", Policy: "MPS"}
	byName, err := presetSpec.resolve()
	if err != nil {
		t.Fatalf("preset resolve: %v", err)
	}
	inlineSpec := JobSpec{Mix: json.RawMessage(byName.mixJSON), Policy: "MPS"}
	inline, err := inlineSpec.resolve()
	if err != nil {
		t.Fatalf("inline resolve: %v", err)
	}
	if byName.digest != inline.digest {
		t.Errorf("preset digest %s != inline digest %s", byName.digest, inline.digest)
	}
	pairSpec := tinySpec("SPL", "VIO", "MPS")
	pair, err := pairSpec.resolve()
	if err != nil {
		t.Fatalf("pair resolve: %v", err)
	}
	if pair.digest == byName.digest {
		t.Error("pair and scenario digests collide")
	}
}

// TestSweepScenarioGrid runs a sweep mixing a pair cell with a scenario ×
// policy grid, asserts every task commits with the single-node stats
// digest, and that resubmitting the sweep is answered entirely from the
// cache with an identical merged digest — the scenario-determinism
// observable crispd's CI smoke leans on.
func TestSweepScenarioGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweep round trip is not short")
	}
	spec := SweepSpec{
		Computes:  []string{"VIO"},
		Scenarios: []string{"n-way-fair"},
		Policies:  []string{"EVEN", "MPS"},
	}
	specs, err := spec.decompose()
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	// 1 compute × 2 policies pair cells + 1 scenario × 2 policies.
	if len(specs) != 4 {
		t.Fatalf("decomposed into %d tasks, want 4", len(specs))
	}
	scenarios := 0
	for _, js := range specs {
		if js.Scenario != "" {
			scenarios++
		}
	}
	if scenarios != 2 {
		t.Fatalf("%d scenario tasks, want 2", scenarios)
	}
	want := expectedMergedDigest(t, spec)

	s, err := New(Config{Workers: 1, FleetWorkers: 2, ProgressInterval: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	v := waitSweep(t, s, sw.ID, StateDone, 4*time.Minute)
	if v.MergedDigest != want {
		t.Fatalf("sweep merged digest %s != single-node %s", v.MergedDigest, want)
	}

	// Resubmission: all cache hits, same merged digest.
	sw2, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	v2 := waitSweep(t, s, sw2.ID, StateDone, time.Minute)
	if v2.MergedDigest != want {
		t.Fatalf("resubmitted merged digest %s != %s", v2.MergedDigest, want)
	}
	for _, tv := range v2.Tasks {
		if !tv.Cached {
			t.Fatalf("task %d (%s/%s) re-executed instead of hitting the cache",
				tv.Index, tv.Spec.Scenario, tv.Spec.Policy)
		}
	}
}
