package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	crisp "crisp"
	"crisp/internal/obs"
	"crisp/internal/robust"
)

// Process-isolation mode: with Config.Isolate each execution attempt runs
// in a child worker process, so a hard crash — SIGKILL, OOM kill, a
// runtime fault deep in the simulator — kills one job instead of the
// daemon. Parent and child speak a two-message stdio protocol:
//
//	parent → child (stdin):  one workerRequest JSON document
//	child  → parent (stdout): newline-delimited workerEvent JSON —
//	    any number of "sample" and "fallback" events, then exactly one
//	    terminal "result" or "error" event
//
// A child that exits without a terminal event was crashed (the supervisor
// classifies it KindCrash and retries from the job's last checkpoint); a
// child whose death was requested (cancel, drain) terminates via SIGTERM,
// flushes a final snapshot, and reports a "canceled" error event. The
// protocol carries summaries, never simulator internals, so the child and
// parent rebuild the job independently from the same by-value JobSpec —
// the exact shape a future coordinator/worker network split needs.

// WorkerEnv marks a process as a crispd worker: when the variable is "1",
// cmd/crispd (and the service test binary) run WorkerMain instead of the
// daemon. The supervisor re-execs its own binary with this set, so no
// separate worker binary needs to be installed.
const WorkerEnv = "CRISPD_WORKER"

// workerRequest is everything one attempt needs, resolved by the parent.
type workerRequest struct {
	Spec JobSpec `json:"spec"`
	// ResumeDir, when set, resumes from the newest readable snapshot in
	// the directory (corrupt ones renamed aside, reported via "fallback").
	ResumeDir string `json:"resume_dir,omitempty"`
	// CheckpointDir/CheckpointEvery enable periodic checkpoints — the
	// supervisor's recovery points if this worker dies.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int64  `json:"checkpoint_every,omitempty"`
	// Budget and Watchdog are the server-default-merged limits.
	Budget   int64 `json:"budget,omitempty"`
	Watchdog int64 `json:"watchdog,omitempty"`
	// ProgressInterval is the sample cadence; RunWorkers the -j knob.
	ProgressInterval int64 `json:"progress_interval,omitempty"`
	RunWorkers       int   `json:"run_workers,omitempty"`
	// KillAt is a chaos fault: the worker SIGKILLs itself at this
	// simulated cycle (0 = none), leaving no final snapshot — the hardest
	// crash the supervisor must recover from.
	KillAt int64 `json:"kill_at,omitempty"`
}

// workerEvent is one newline-delimited protocol message from the child.
type workerEvent struct {
	Type string `json:"type"` // "sample" | "fallback" | "result" | "error"
	// Sample carries interval telemetry (Type "sample"), forwarded to the
	// job's hub so isolation is invisible to timeline subscribers.
	Sample *obs.Sample `json:"sample,omitempty"`
	// Corrupt lists checkpoints renamed aside during resume (Type
	// "fallback").
	Corrupt []string `json:"corrupt,omitempty"`
	// Result is the completed attempt's cache entry (Type "result").
	Result *StoredResult `json:"result,omitempty"`
	// ErrKind/ErrCycle/ErrMsg reconstruct the SimError (Type "error").
	ErrKind  string `json:"err_kind,omitempty"`
	ErrCycle int64  `json:"err_cycle,omitempty"`
	ErrMsg   string `json:"err_msg,omitempty"`
}

// WorkerMain is the crispd-worker entry point: it reads one workerRequest
// from stdin, runs the attempt, and streams workerEvents to stdout. It is
// called by cmd/crispd-worker, and by cmd/crispd (or a test binary) when
// WorkerEnv is set. Returns the process exit code: 0 when the protocol
// completed (including reported simulation failures — the supervisor
// classifies those from the error event), nonzero only when the protocol
// itself broke.
func WorkerMain() int {
	var req workerRequest
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		fmt.Fprintf(os.Stderr, "crispd-worker: reading request: %v\n", err)
		return 2
	}
	enc := newEventWriter(os.Stdout)

	r, err := req.Spec.resolve()
	if err != nil {
		enc.error(&robust.SimError{Kind: robust.KindValidation, Msg: err.Error()})
		return 0
	}

	// SIGTERM is the supervisor's graceful stop (cancel, drain): cancel
	// the run so it stops at a cycle boundary and flushes a final
	// snapshot through the checkpoint layer.
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigc
		cancel()
	}()
	defer signal.Stop(sigc)

	sink := func(smp obs.Sample) {
		enc.sample(smp)
		if req.KillAt > 0 && smp.Cycle >= req.KillAt {
			// Chaos hard-kill: die without flushing anything, exactly like
			// an OOM kill. The supervisor must fall back to the last
			// periodic checkpoint.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	runOpts := []crisp.RunOption{
		crisp.WithMetrics(req.ProgressInterval),
		crisp.WithMetricsSink(sink),
	}
	if req.Budget > 0 {
		runOpts = append(runOpts, crisp.WithCycleBudget(req.Budget))
	}
	if req.Watchdog != 0 {
		runOpts = append(runOpts, crisp.WithWatchdog(req.Watchdog))
	}
	if req.RunWorkers != 0 {
		runOpts = append(runOpts, crisp.WithWorkers(req.RunWorkers))
	}
	if req.CheckpointDir != "" {
		runOpts = append(runOpts, crisp.WithCheckpointDir(req.CheckpointDir))
		if req.CheckpointEvery > 0 {
			runOpts = append(runOpts, crisp.WithCheckpointEvery(req.CheckpointEvery))
		}
	}

	t0 := time.Now()
	var res *crisp.Result
	var rerr error
	if req.ResumeDir != "" {
		env, corrupt, lerr := loadResume(req.ResumeDir)
		if len(corrupt) > 0 {
			enc.event(workerEvent{Type: "fallback", Corrupt: corrupt})
		}
		if lerr == nil {
			res, rerr = crisp.Resume(ctx, env, runOpts...)
		}
	}
	if res == nil && rerr == nil {
		res, rerr = crisp.RunPairContext(ctx, r.cfg, r.scene, r.compute, r.policy, r.opts, runOpts...)
	}
	if rerr != nil {
		if se, ok := robust.AsSimError(rerr); ok {
			enc.error(se)
		} else {
			enc.error(&robust.SimError{Kind: robust.KindPanic, Msg: rerr.Error()})
		}
		return 0
	}
	stored, serr := storedFromResult(r, res, float64(time.Since(t0).Microseconds())/1000)
	if serr != nil {
		enc.error(&robust.SimError{Kind: robust.KindSnapshot, Msg: serr.Error()})
		return 0
	}
	enc.event(workerEvent{Type: "result", Result: stored})
	return 0
}

// eventWriter serializes protocol events onto one stream: the sample sink
// runs on the simulation goroutine while the signal handler goroutine is
// live, so writes are mutexed.
type eventWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   *bufio.Writer
}

func newEventWriter(w io.Writer) *eventWriter {
	bw := bufio.NewWriter(w)
	return &eventWriter{enc: json.NewEncoder(bw), w: bw}
}

func (e *eventWriter) event(ev workerEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enc.Encode(ev) // Encode appends the newline framing
	e.w.Flush()
}

func (e *eventWriter) sample(smp obs.Sample) {
	e.event(workerEvent{Type: "sample", Sample: &smp})
}

func (e *eventWriter) error(se *robust.SimError) {
	e.event(workerEvent{
		Type:     "error",
		ErrKind:  robust.DeepestKind(se).String(),
		ErrCycle: se.Cycle,
		ErrMsg:   se.Error(),
	})
}

// workerKillDelay bounds how long a SIGTERMed worker may take to flush its
// final snapshot before the supervisor escalates to SIGKILL.
const workerKillDelay = 10 * time.Second

// runIsolated executes one attempt in a child worker process. The child's
// samples are forwarded to the job's hub; its terminal event becomes this
// function's return. A child that dies without a terminal event — the
// SIGKILL/OOM case — is classified KindCrash (retryable), or KindCanceled
// when its death was requested through ctx.
func (s *Server) runIsolated(ctx context.Context, job *Job, resumeFrom string, killAt int64) (*StoredResult, error) {
	req := workerRequest{
		Spec:             job.Spec,
		ResumeDir:        resumeFrom,
		CheckpointDir:    s.jobDir(job),
		CheckpointEvery:  s.cfg.CheckpointEvery,
		Budget:           job.res.budget,
		Watchdog:         job.res.wdog,
		ProgressInterval: s.cfg.ProgressInterval,
		RunWorkers:       s.cfg.RunWorkers,
		KillAt:           killAt,
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.Watchdog == 0 {
		req.Watchdog = s.cfg.WatchdogWindow
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, &robust.SimError{Kind: robust.KindValidation, Msg: "encoding worker request", Err: err}
	}

	argv := s.cfg.WorkerCommand
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "locating worker binary", Err: err}
		}
		argv = []string{self}
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stdin = bytes.NewReader(reqJSON)
	cmd.Stderr = os.Stderr
	// Graceful stop: ctx cancellation SIGTERMs the child (it flushes a
	// final snapshot and reports canceled); WaitDelay escalates to SIGKILL
	// if it wedges.
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = workerKillDelay
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "worker stdout pipe", Err: err}
	}
	if err := cmd.Start(); err != nil {
		return nil, &robust.SimError{Kind: robust.KindCrash, Msg: "spawning worker", Err: err}
	}

	t0 := time.Now()
	var stored *StoredResult
	var simErr *robust.SimError
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ev workerEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Printf("crispd: job %s: malformed worker event: %v", job.ID, err)
			continue
		}
		switch ev.Type {
		case "sample":
			if ev.Sample != nil {
				job.noteSample(*ev.Sample)
			}
		case "fallback":
			for _, c := range ev.Corrupt {
				log.Printf("crispd: job %s: corrupt checkpoint %s renamed aside (worker)", job.ID, c)
			}
			if len(ev.Corrupt) > 0 {
				s.fallbacks.Add(1)
			}
		case "result":
			stored = ev.Result
		case "error":
			kind, ok := robust.KindFromString(ev.ErrKind)
			if !ok {
				kind = robust.KindPanic
			}
			simErr = &robust.SimError{Kind: kind, Cycle: ev.ErrCycle, Msg: ev.ErrMsg}
		}
	}
	waitErr := cmd.Wait()
	s.observeRunTime(time.Since(t0))

	switch {
	case stored != nil:
		return stored, nil
	case simErr != nil:
		return nil, simErr
	case ctx.Err() != nil:
		// Death was requested (cancel or drain) and the child never got a
		// terminal event out — SIGKILL escalation beat the snapshot flush.
		return nil, &robust.SimError{Kind: robust.KindCanceled, Msg: "worker terminated by cancellation", Err: ctx.Err()}
	default:
		// The child vanished mid-protocol: SIGKILL, OOM kill, or a runtime
		// fault. Only this job dies; the supervisor retries from the last
		// periodic checkpoint.
		s.crashes.Add(1)
		return nil, &robust.SimError{Kind: robust.KindCrash,
			Msg: fmt.Sprintf("worker process died without a result: %v", waitErr)}
	}
}
