package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"crisp/internal/robust"
)

// Process-isolation mode: with Config.Isolate each execution attempt runs
// in a child worker process, so a hard crash — SIGKILL, OOM kill, a
// runtime fault deep in the simulator — kills one job instead of the
// daemon. Parent and child speak the stdio wire protocol defined in
// protocol.go; the shared execution core in fleet.go does the actual
// simulating on both sides of the pipe.
//
// A child that exits without a terminal event was crashed (the supervisor
// classifies it KindCrash and retries from the job's last checkpoint); a
// child whose death was requested (cancel, drain) terminates via SIGTERM,
// flushes a final snapshot, and reports a "canceled" error event.

// WorkerEnv marks a process as a crispd worker: when the variable is "1",
// cmd/crispd (and the service test binary) run WorkerMain instead of the
// daemon. The supervisor re-execs its own binary with this set, so no
// separate worker binary needs to be installed; `crispd -worker-mode`
// enters the same loop explicitly for fleet peers launched by hand.
const WorkerEnv = "CRISPD_WORKER"

// WorkerMain is the crispd-worker entry point: it reads one workerRequest
// from stdin, runs the attempt, and streams workerEvents to stdout. It is
// called by cmd/crispd-worker, and by cmd/crispd (or a test binary) when
// WorkerEnv is set or -worker-mode is passed. Returns the process exit
// code: 0 when the protocol completed (including reported simulation
// failures — the supervisor classifies those from the error event),
// nonzero only when the protocol itself broke.
func WorkerMain() int {
	var req workerRequest
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		fmt.Fprintf(os.Stderr, "crispd-worker: reading request: %v\n", err)
		return 2
	}
	enc := newEventWriter(os.Stdout)

	r, err := req.Spec.resolve()
	if err != nil {
		enc.error(&robust.SimError{Kind: robust.KindValidation, Msg: err.Error()})
		return 0
	}

	// Cache federation: a worker that already holds this digest in its
	// local content-addressed store answers from it without simulating —
	// the coordinator merges the result under the same digest key it
	// would have computed.
	if sr, ok := localResult(req.ResultsDir, r.digest); ok {
		enc.event(workerEvent{Type: evResult, Result: sr, Cached: true})
		return 0
	}

	// SIGTERM is the supervisor's graceful stop (cancel, drain): cancel
	// the run so it stops at a cycle boundary and flushes a final
	// snapshot through the checkpoint layer.
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigc
		cancel()
	}()
	defer signal.Stop(sigc)

	// Wall-clock heartbeats: the lease-renewal signal a fleet coordinator
	// watches between samples. Stops with the run.
	if req.HeartbeatEvery > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			tick := time.NewTicker(time.Duration(req.HeartbeatEvery))
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					enc.heartbeat()
				}
			}
		}()
	}

	p := runParams{
		res:              r,
		resumeFrom:       req.ResumeDir,
		checkpointDir:    req.CheckpointDir,
		checkpointEvery:  req.CheckpointEvery,
		budget:           req.Budget,
		wdog:             req.Watchdog,
		progressInterval: req.ProgressInterval,
		runWorkers:       req.RunWorkers,
		killAt:           req.KillAt,
	}
	stored, _, rerr := runDirect(ctx, p, attemptHooks{
		onSample: enc.sample,
		onFallback: func(corrupt []string) {
			enc.event(workerEvent{Type: evFallback, Corrupt: corrupt})
		},
		onKill: func(cycle int64) {
			// Chaos hard-kill: die without flushing anything, exactly like
			// an OOM kill. The supervisor must fall back to the last
			// periodic checkpoint.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		},
	})
	if rerr != nil {
		if se, ok := robust.AsSimError(rerr); ok {
			enc.error(se)
		} else {
			enc.error(&robust.SimError{Kind: robust.KindPanic, Msg: rerr.Error()})
		}
		return 0
	}
	enc.event(workerEvent{Type: evResult, Result: stored})
	return 0
}

// localResult reads a worker-local cached result for digest from a
// results directory ("" = no local cache). A malformed or mismatched
// entry is ignored — the worker simulates instead.
func localResult(dir, digest string) (*StoredResult, bool) {
	if dir == "" || !validDigest(digest) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(dir, digest+".json"))
	if err != nil {
		return nil, false
	}
	var sr StoredResult
	if err := json.Unmarshal(b, &sr); err != nil || sr.Digest != digest {
		return nil, false
	}
	return &sr, true
}

// workerKillDelay bounds how long a SIGTERMed worker may take to flush its
// final snapshot before the supervisor escalates to SIGKILL.
const workerKillDelay = 10 * time.Second

// runIsolated executes one attempt in a child worker process. The child's
// samples are forwarded to the job's hub; its terminal event becomes this
// function's return.
func (s *Server) runIsolated(ctx context.Context, job *Job, resumeFrom string, killAt int64) (*StoredResult, error) {
	req := workerRequest{
		Spec:             job.Spec,
		ResumeDir:        resumeFrom,
		CheckpointDir:    s.jobDir(job),
		CheckpointEvery:  s.cfg.CheckpointEvery,
		Budget:           job.res.budget,
		Watchdog:         job.res.wdog,
		ProgressInterval: s.cfg.ProgressInterval,
		RunWorkers:       s.cfg.RunWorkers,
		KillAt:           killAt,
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.Watchdog == 0 {
		req.Watchdog = s.cfg.WatchdogWindow
	}
	return s.runWorkerProcess(ctx, req, attemptHooks{
		onSample: job.noteSample,
		onFallback: func(corrupt []string) {
			s.fallbacks.Add(1)
		},
	}, "job "+job.ID)
}
