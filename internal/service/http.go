package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"crisp/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs               submit a job (201; 400 invalid; 429 queue
//	                              full + Retry-After; 503 draining)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status + progress (+ result when done)
//	DELETE /v1/jobs/{id}          cancel a job (409 if already finished)
//	GET    /v1/jobs/{id}/timeline live telemetry stream (SSE: interval
//	                              samples, stall deltas, lifecycle events;
//	                              Last-Event-ID resumes)
//	GET    /v1/jobs/{id}/series   the buffered timeline as JSON, windowed
//	                              by ?from=&to= (cycle range)
//	GET    /v1/results/{digest}   fetch a cached result by content digest
//	GET    /v1/series/{digest}    fetch a completed job's interval series
//	                              by content digest (the A/B diff source)
//	POST   /v1/sweeps             submit a sweep: a policy × workload ×
//	                              config grid sharded across the fleet
//	                              (201; 400 invalid; 429 too many sweeps)
//	GET    /v1/sweeps             list sweeps
//	GET    /v1/sweeps/{id}        sweep status: per-task states, lease
//	                              accounting, merged digest when done
//	DELETE /v1/sweeps/{id}        cancel a sweep (409 if finished)
//	GET    /v1/sweeps/{id}/timeline merged sweep progress (SSE)
//	GET    /ui/                   embedded exploration UI (vanilla JS+SVG)
//	GET    /healthz               liveness: 200 while the process serves
//	GET    /readyz                readiness: 200 accepting work / 503 while
//	                              starting up or draining (route traffic away)
//	GET    /metrics               Prometheus-style text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/jobs/{id}/series", s.handleJobSeries)
	mux.HandleFunc("GET /v1/results/{digest}", s.handleResult)
	mux.HandleFunc("GET /v1/series/{digest}", s.handleSeries)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/timeline", s.handleSweepTimeline)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mountUI(mux)
	return mux
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID        string `json:"id"`
	Digest    string `json:"digest"`
	State     State  `json:"state"`
	Cached    bool   `json:"cached,omitempty"`    // served from the result cache at submit
	Coalesced bool   `json:"coalesced,omitempty"` // attached to an identical in-flight run
	Error     string `json:"error,omitempty"`

	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`

	Progress *progressView `json:"progress,omitempty"`
	Result   *StoredResult `json:"result,omitempty"`
}

// progressView summarizes the job's telemetry ring: the newest interval
// sample plus how much history is buffered. A poller that missed samples
// sees the retained window here and fetches /series (or replays the
// timeline stream from a cursor) instead of losing them.
type progressView struct {
	Cycle int64          `json:"cycle"`
	Tasks []taskProgress `json:"tasks,omitempty"`
	// Samples is how many interval samples the timeline ring retains;
	// FirstCycle/LastCycle bound the retained window.
	Samples    int   `json:"samples"`
	FirstCycle int64 `json:"first_cycle"`
	LastCycle  int64 `json:"last_cycle"`
	// Events is the newest timeline sequence number — pass it as
	// Last-Event-ID to resume the SSE stream from here.
	Events uint64 `json:"events"`
}

type taskProgress struct {
	Stream int     `json:"stream"`
	Label  string  `json:"label"`
	IPC    float64 `json:"ipc"`
	Warps  int     `json:"warps"`
}

func (s *Server) viewOf(j *Job) jobView {
	j.mu.Lock()
	v := jobView{
		ID:        j.ID,
		Digest:    j.Digest,
		State:     j.state,
		Cached:    j.cacheHit,
		Coalesced: j.coalesce,
		Error:     j.errMsg,
		Created:   stamp(j.created),
		Started:   stamp(j.started),
		Finished:  stamp(j.finished),
	}
	j.mu.Unlock()

	if v.State == StateRunning {
		if ev, ok := j.hub.Latest(obs.TimelineSample); ok {
			pv := &progressView{Cycle: ev.Cycle, Events: j.hub.Stats().Published}
			for _, p := range ev.Sample.Points {
				pv.Tasks = append(pv.Tasks, taskProgress{Stream: p.Stream, Label: p.Label, IPC: p.IPC, Warps: p.Warps})
			}
			for _, e := range j.hub.Events(0, 0) {
				if e.Kind != obs.TimelineSample {
					continue
				}
				if pv.Samples == 0 {
					pv.FirstCycle = e.Cycle
				}
				pv.Samples++
				pv.LastCycle = e.Cycle
			}
			v.Progress = pv
		}
	}
	if v.State == StateDone {
		if sr, ok := s.cache.get(v.Digest); ok {
			v.Result = sr
		}
	}
	return v
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "malformed job spec: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		var ve *ValidationError
		var qf *QueueFullError
		switch {
		case errors.As(err, &ve):
			httpError(w, http.StatusBadRequest, ve.Error())
		case errors.As(err, &qf):
			w.Header().Set("Retry-After", strconv.Itoa(int(qf.RetryAfter.Round(time.Second)/time.Second)))
			httpError(w, http.StatusTooManyRequests, qf.Error())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.viewOf(job))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		v := s.viewOf(j)
		v.Result = nil // keep the listing light; fetch one job for the payload
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(job))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	okCancel, err := s.Cancel(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if !okCancel {
		httpError(w, http.StatusConflict, "job "+id+" already finished")
		return
	}
	job, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.viewOf(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	sr, ok := s.Result(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached result for digest "+digest)
		return
	}
	writeJSON(w, http.StatusOK, sr)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "malformed sweep spec: "+err.Error())
		return
	}
	sw, err := s.SubmitSweep(spec)
	if err != nil {
		var ve *ValidationError
		var qf *QueueFullError
		switch {
		case errors.As(err, &ve):
			httpError(w, http.StatusBadRequest, ve.Error())
		case errors.As(err, &qf):
			w.Header().Set("Retry-After", strconv.Itoa(int(qf.RetryAfter.Round(time.Second)/time.Second)))
			httpError(w, http.StatusTooManyRequests, "too many live sweeps; retry later")
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.viewOfSweep(sw, true))
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	sweeps := s.Sweeps()
	views := make([]sweepView, 0, len(sweeps))
	for _, sw := range sweeps {
		views = append(views, s.viewOfSweep(sw, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.SweepByID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.viewOfSweep(sw, true))
}

func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	okCancel, err := s.CancelSweep(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if !okCancel {
		httpError(w, http.StatusConflict, "sweep "+id+" already finished")
		return
	}
	sw, _ := s.SweepByID(id)
	writeJSON(w, http.StatusOK, s.viewOfSweep(sw, true))
}

// handleHealthz is liveness: the process is up and serving HTTP. It stays
// 200 through a drain — a draining daemon is still alive and must not be
// restarted by an orchestrator's liveness probe while it checkpoints.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 until startup recovery finished and the
// pool launched, and again once draining — the router-level "stop sending
// me work" signal.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.Draining():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !s.Ready():
		httpError(w, http.StatusServiceUnavailable, "starting: recovery in progress")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	hitRate := 0.0
	if lookups := st.CacheHits + st.Executions; lookups > 0 {
		hitRate = float64(st.CacheHits) / float64(lookups)
	}
	jobsPerSec := 0.0
	if st.UptimeSec > 0 {
		jobsPerSec = float64(st.Done) / st.UptimeSec
	}
	draining := 0
	if st.Draining {
		draining = 1
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP crispd_queue_depth Jobs admitted but not yet running.\n")
	fmt.Fprintf(w, "# TYPE crispd_queue_depth gauge\ncrispd_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# TYPE crispd_queue_capacity gauge\ncrispd_queue_capacity %d\n", st.QueueCapacity)
	fmt.Fprintf(w, "# HELP crispd_inflight Distinct job digests queued or running.\n")
	fmt.Fprintf(w, "# TYPE crispd_inflight gauge\ncrispd_inflight %d\n", st.Inflight)
	fmt.Fprintf(w, "# TYPE crispd_jobs_total counter\n")
	fmt.Fprintf(w, "crispd_jobs_total{state=\"done\"} %d\n", st.Done)
	fmt.Fprintf(w, "crispd_jobs_total{state=\"failed\"} %d\n", st.Failed)
	fmt.Fprintf(w, "crispd_jobs_total{state=\"canceled\"} %d\n", st.Canceled)
	fmt.Fprintf(w, "crispd_jobs_total{state=\"quarantined\"} %d\n", st.Quarantined)
	fmt.Fprintf(w, "# HELP crispd_jobs Tracked jobs by current lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE crispd_jobs gauge\n")
	for _, state := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateQuarantined} {
		fmt.Fprintf(w, "crispd_jobs{state=%q} %d\n", state, st.JobsByState[state])
	}
	skipRatio := 0.0
	if visited := st.StepsExecuted + st.StepsSkipped; visited > 0 {
		skipRatio = float64(st.StepsSkipped) / float64(visited)
	}
	fmt.Fprintf(w, "# HELP crispd_sim_cycles Simulated cycles reached, summed over tracked jobs' latest samples.\n")
	fmt.Fprintf(w, "# TYPE crispd_sim_cycles gauge\ncrispd_sim_cycles %d\n", st.CyclesSimulated)
	fmt.Fprintf(w, "# HELP crispd_sim_steps_executed Core steps executed (event-driven sleeping skips the rest).\n")
	fmt.Fprintf(w, "# TYPE crispd_sim_steps_executed gauge\ncrispd_sim_steps_executed %d\n", st.StepsExecuted)
	fmt.Fprintf(w, "# HELP crispd_sim_steps_skipped Core steps skipped while cores slept until their wake cycle.\n")
	fmt.Fprintf(w, "# TYPE crispd_sim_steps_skipped gauge\ncrispd_sim_steps_skipped %d\n", st.StepsSkipped)
	fmt.Fprintf(w, "# HELP crispd_sim_bulk_stall_slots Scheduler stall slots accounted in bulk at core wake.\n")
	fmt.Fprintf(w, "# TYPE crispd_sim_bulk_stall_slots gauge\ncrispd_sim_bulk_stall_slots %d\n", st.BulkStallSlots)
	fmt.Fprintf(w, "# HELP crispd_sim_skip_ratio Fraction of visited core steps skipped by sleeping (0 when idle or -no-skip).\n")
	fmt.Fprintf(w, "# TYPE crispd_sim_skip_ratio gauge\ncrispd_sim_skip_ratio %g\n", skipRatio)
	fmt.Fprintf(w, "# HELP crispd_attempts_total Supervised execution attempts started (>= executions).\n")
	fmt.Fprintf(w, "# TYPE crispd_attempts_total counter\ncrispd_attempts_total %d\n", st.Attempts)
	fmt.Fprintf(w, "# HELP crispd_retries_total Retry attempts: checkpoint-resumed re-executions after a retryable failure.\n")
	fmt.Fprintf(w, "# TYPE crispd_retries_total counter\ncrispd_retries_total %d\n", st.Retries)
	fmt.Fprintf(w, "# HELP crispd_quarantined_total Jobs quarantined after exhausting their retry budget.\n")
	fmt.Fprintf(w, "# TYPE crispd_quarantined_total counter\ncrispd_quarantined_total %d\n", st.Quarantined)
	fmt.Fprintf(w, "# HELP crispd_worker_crashes_total Isolated worker processes that died without reporting a result.\n")
	fmt.Fprintf(w, "# TYPE crispd_worker_crashes_total counter\ncrispd_worker_crashes_total %d\n", st.WorkerCrashes)
	fmt.Fprintf(w, "# HELP crispd_checkpoint_fallbacks_total Resumes that skipped at least one corrupt checkpoint.\n")
	fmt.Fprintf(w, "# TYPE crispd_checkpoint_fallbacks_total counter\ncrispd_checkpoint_fallbacks_total %d\n", st.CheckpointFallbacks)
	fmt.Fprintf(w, "# TYPE crispd_chaos_kills_total counter\ncrispd_chaos_kills_total %d\n", st.ChaosKills)
	fmt.Fprintf(w, "# TYPE crispd_chaos_corruptions_total counter\ncrispd_chaos_corruptions_total %d\n", st.ChaosCorruptions)
	fmt.Fprintf(w, "# HELP crispd_chaos_hb_drops_total Chaos faults fired: leases made deaf to heartbeat renewals.\n")
	fmt.Fprintf(w, "# TYPE crispd_chaos_hb_drops_total counter\ncrispd_chaos_hb_drops_total %d\n", st.Fleet.HeartbeatDrops)
	fmt.Fprintf(w, "# HELP crispd_fleet_shards Sweep-tier shard pool size.\n")
	fmt.Fprintf(w, "# TYPE crispd_fleet_shards gauge\ncrispd_fleet_shards %d\n", st.Fleet.Shards)
	fmt.Fprintf(w, "# TYPE crispd_sweeps_active gauge\ncrispd_sweeps_active %d\n", st.Fleet.SweepsActive)
	fmt.Fprintf(w, "# TYPE crispd_sweeps gauge\n")
	for _, state := range []State{StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "crispd_sweeps{state=%q} %d\n", state, st.Fleet.SweepsByState[state])
	}
	fmt.Fprintf(w, "# TYPE crispd_sweep_tasks_total counter\n")
	fmt.Fprintf(w, "crispd_sweep_tasks_total{state=\"done\"} %d\n", st.Fleet.TasksDone)
	fmt.Fprintf(w, "crispd_sweep_tasks_total{state=\"failed\"} %d\n", st.Fleet.TasksFailed)
	fmt.Fprintf(w, "# HELP crispd_lease_grants_total Task leases granted to fleet shards.\n")
	fmt.Fprintf(w, "# TYPE crispd_lease_grants_total counter\ncrispd_lease_grants_total %d\n", st.Fleet.LeaseGrants)
	fmt.Fprintf(w, "# TYPE crispd_lease_renewals_total counter\ncrispd_lease_renewals_total %d\n", st.Fleet.LeaseRenewals)
	fmt.Fprintf(w, "# HELP crispd_lease_expirations_total Leases that expired after missed heartbeats.\n")
	fmt.Fprintf(w, "# TYPE crispd_lease_expirations_total counter\ncrispd_lease_expirations_total %d\n", st.Fleet.LeaseExpirations)
	fmt.Fprintf(w, "# HELP crispd_lease_revocations_total Leases revoked (worker crash or heartbeat expiry) and reassigned.\n")
	fmt.Fprintf(w, "# TYPE crispd_lease_revocations_total counter\ncrispd_lease_revocations_total %d\n", st.Fleet.LeaseRevocations)
	fmt.Fprintf(w, "# HELP crispd_fleet_resumes_total Reassigned sweep attempts that resumed from a shipped checkpoint.\n")
	fmt.Fprintf(w, "# TYPE crispd_fleet_resumes_total counter\ncrispd_fleet_resumes_total %d\n", st.Fleet.FleetResumes)
	fmt.Fprintf(w, "# HELP crispd_duplicate_results_total Results from revoked leases discarded by digest (exactly-once commit).\n")
	fmt.Fprintf(w, "# TYPE crispd_duplicate_results_total counter\ncrispd_duplicate_results_total %d\n", st.Fleet.DuplicateResults)
	fmt.Fprintf(w, "# HELP crispd_federated_cache_hits_total Sweep dispatches answered from a federated result cache.\n")
	fmt.Fprintf(w, "# TYPE crispd_federated_cache_hits_total counter\ncrispd_federated_cache_hits_total %d\n", st.Fleet.FederatedHits)
	fmt.Fprintf(w, "# HELP crispd_timeline_subscribers Live timeline (SSE) subscriptions across all job hubs.\n")
	fmt.Fprintf(w, "# TYPE crispd_timeline_subscribers gauge\ncrispd_timeline_subscribers %d\n", st.Subscribers)
	fmt.Fprintf(w, "# TYPE crispd_timeline_events_total counter\ncrispd_timeline_events_total %d\n", st.TimelineEvents)
	fmt.Fprintf(w, "# HELP crispd_timeline_dropped_subscribers_total Subscribers dropped for lagging behind the broadcast.\n")
	fmt.Fprintf(w, "# TYPE crispd_timeline_dropped_subscribers_total counter\ncrispd_timeline_dropped_subscribers_total %d\n", st.SubsDropped)
	fmt.Fprintf(w, "# TYPE crispd_timeline_dropped_events_total counter\ncrispd_timeline_dropped_events_total %d\n", st.EvsDropped)
	fmt.Fprintf(w, "# HELP crispd_executions_total Simulator executions started (cache misses).\n")
	fmt.Fprintf(w, "# TYPE crispd_executions_total counter\ncrispd_executions_total %d\n", st.Executions)
	fmt.Fprintf(w, "# TYPE crispd_cache_hits_total counter\ncrispd_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "# TYPE crispd_coalesced_total counter\ncrispd_coalesced_total %d\n", st.Coalesced)
	fmt.Fprintf(w, "# TYPE crispd_cached_results gauge\ncrispd_cached_results %d\n", st.CachedResults)
	fmt.Fprintf(w, "# HELP crispd_cache_hit_rate Cache hits over cache lookups (hits + executions).\n")
	fmt.Fprintf(w, "# TYPE crispd_cache_hit_rate gauge\ncrispd_cache_hit_rate %.6f\n", hitRate)
	fmt.Fprintf(w, "# TYPE crispd_jobs_per_sec gauge\ncrispd_jobs_per_sec %.6f\n", jobsPerSec)
	fmt.Fprintf(w, "# TYPE crispd_draining gauge\ncrispd_draining %d\n", draining)
	ready := 0
	if st.Ready {
		ready = 1
	}
	fmt.Fprintf(w, "# TYPE crispd_ready gauge\ncrispd_ready %d\n", ready)
	fmt.Fprintf(w, "# TYPE crispd_uptime_seconds gauge\ncrispd_uptime_seconds %.3f\n", st.UptimeSec)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
