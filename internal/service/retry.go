package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// Supervised-retry defaults (Config.MaxAttempts / RetryBase / RetryMax).
const (
	// DefaultMaxAttempts is how many execution attempts a job gets before
	// quarantine, counted across daemon restarts via attempts.json.
	DefaultMaxAttempts = 3
	// DefaultRetryBase and DefaultRetryMax bound the exponential backoff
	// between attempts: base·2^(n-1), capped at max, plus seeded jitter.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 30 * time.Second
)

// backoffDelay is the pause before retry attempt `attempt` (2-based: the
// first retry is attempt 2): exponential in the number of prior failures,
// capped, plus deterministic jitter in [0, delay/2) keyed on (seed, digest,
// attempt) — jitter de-synchronizes a fleet of retrying jobs without
// sacrificing reproducibility, which the chaos suite depends on.
func (s *Server) backoffDelay(digest string, attempt int) time.Duration {
	base := s.cfg.RetryBase
	if base <= 0 {
		base = DefaultRetryBase
	}
	maxd := s.cfg.RetryMax
	if maxd <= 0 {
		maxd = DefaultRetryMax
	}
	delay := base
	for i := 2; i < attempt && delay < maxd; i++ {
		delay *= 2
	}
	if delay > maxd {
		delay = maxd
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", s.cfg.RetrySeed, digest, attempt)
	jitter := time.Duration(h.Sum64() % uint64(delay/2+1))
	return delay + jitter
}

// sleepBackoff waits out the retry delay; false when ctx is canceled first
// (user cancel or drain), in which case no retry may fire.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// maxAttempts is the quarantine threshold K.
func (s *Server) maxAttempts() int {
	if s.cfg.MaxAttempts > 0 {
		return s.cfg.MaxAttempts
	}
	return DefaultMaxAttempts
}

// ---- failure markers --------------------------------------------------
//
// Two small JSON files in the job directory persist supervision state
// across daemon restarts: attempts.json counts failed attempts (so a
// crash-looping daemon cannot reset a poison job's budget), and
// quarantined.json marks the terminal quarantine decision. Both are
// written atomically with a directory fsync — they are the ground truth
// the next daemon instance recovers from.

// attemptRecord is the on-disk failed-attempt counter.
type attemptRecord struct {
	Attempts  int    `json:"attempts"`
	LastError string `json:"last_error"`
	Kind      string `json:"kind,omitempty"`
	Cycle     int64  `json:"cycle,omitempty"`
}

// quarantineRecord is the on-disk quarantine marker.
type quarantineRecord struct {
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Kind     string `json:"kind,omitempty"`
	Cycle    int64  `json:"cycle,omitempty"`
}

// recordAttempt persists the failed-attempt counter after attempt n failed
// with err (best effort; memory-only servers count in-process only).
func (s *Server) recordAttempt(job *Job, n int, err error) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	rec := attemptRecord{Attempts: n, LastError: err.Error()}
	if se, ok := robust.AsSimError(err); ok {
		rec.Kind = robust.DeepestKind(se).String()
		rec.Cycle = se.Cycle
	}
	if b, merr := json.MarshalIndent(rec, "", "  "); merr == nil {
		writeFileAtomic(filepath.Join(dir, "attempts.json"), b)
	}
}

// markQuarantined persists the quarantine decision and a crash dump for
// postmortems; the job directory (checkpoints included) is kept.
func (s *Server) markQuarantined(job *Job, err error, attempts int) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	rec := quarantineRecord{Attempts: attempts, Error: err.Error()}
	if se, ok := robust.AsSimError(err); ok {
		rec.Kind = robust.DeepestKind(se).String()
		rec.Cycle = se.Cycle
		if se.Dump != nil {
			if f, cerr := os.Create(filepath.Join(dir, "crash.json")); cerr == nil {
				se.Dump.WriteJSON(f)
				f.Close()
			}
		}
	}
	if b, merr := json.MarshalIndent(rec, "", "  "); merr == nil {
		writeFileAtomic(filepath.Join(dir, "quarantined.json"), b)
	}
}

// writeFileAtomic writes b to path via temp + rename + directory fsync, so
// a host crash can neither expose a partial file nor lose the rename. Best
// effort: persistence failures never fail the in-memory state change.
func writeFileAtomic(path string, b []byte) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return
	}
	snapshot.SyncDir(dir)
}

// quarantineSuffix marks a job directory or persisted file set aside at
// startup because its contents no longer parse.
const quarantineSuffix = ".corrupt"

// quarantineFile renames a corrupt persisted file aside (best effort) and
// returns the new name for logging.
func quarantineFile(path string) string {
	aside := path + quarantineSuffix
	if err := os.Rename(path, aside); err != nil {
		return ""
	}
	return aside
}
