package service

import (
	"embed"
	"io/fs"
	"net/http"
)

// The exploration UI is embedded in the binary — no build step, no node
// toolchain, no external assets: vanilla JS + SVG served from the same
// process (crispd, or crispviz in serve mode). See ui/app.js for the
// client side of the timeline SSE protocol.
//
//go:embed ui
var uiAssets embed.FS

// mountUI serves the embedded exploration UI at /ui/ and redirects the
// bare root there.
func mountUI(mux *http.ServeMux) {
	sub, err := fs.Sub(uiAssets, "ui")
	if err != nil {
		return // embed is static; unreachable in a correct build
	}
	mux.Handle("GET /ui/", http.StripPrefix("/ui/", http.FileServerFS(sub)))
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/ui/", http.StatusTemporaryRedirect)
	})
}
