package service

import (
	"fmt"
	"testing"
	"time"
)

func TestLeaseTableGrantRenewRelease(t *testing.T) {
	lt := newLeaseTable(time.Hour)

	ep1 := lt.Grant("s1/0", 0, false)
	if !lt.Renew("s1/0", ep1) {
		t.Fatal("holder's renewal refused")
	}
	if lt.Renew("s1/0", ep1+99) {
		t.Fatal("renewal with a bogus epoch accepted")
	}
	if lt.Renew("s1/1", ep1) {
		t.Fatal("renewal of an ungranted key accepted")
	}

	// A re-grant replaces the lease with a fresh epoch: the old holder is
	// fenced off — its renewals and release must both fail.
	ep2 := lt.Grant("s1/0", 1, false)
	if ep2 <= ep1 {
		t.Fatalf("epochs not increasing: %d then %d", ep1, ep2)
	}
	if lt.Renew("s1/0", ep1) {
		t.Fatal("fenced-off holder renewed a replaced lease")
	}
	if lt.Release("s1/0", ep1) {
		t.Fatal("fenced-off holder released a replaced lease")
	}
	if !lt.Release("s1/0", ep2) {
		t.Fatal("current holder's release refused")
	}
	if _, _, ok := lt.Holder("s1/0"); ok {
		t.Fatal("lease survived its release")
	}
}

func TestLeaseTableEpochsUniqueAcrossKeys(t *testing.T) {
	lt := newLeaseTable(time.Hour)
	seen := map[uint64]string{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("s1/%d", i%5) // re-grants included
		ep := lt.Grant(key, i, false)
		if prev, dup := seen[ep]; dup {
			t.Fatalf("epoch %d granted twice (%s then %s)", ep, prev, key)
		}
		seen[ep] = key
	}
}

func TestLeaseTableExpiry(t *testing.T) {
	lt := newLeaseTable(50 * time.Millisecond)
	ep := lt.Grant("s1/0", 0, false)
	lt.Grant("s1/1", 1, false)

	// Keep s1/0 alive with renewals past the original TTL; let s1/1 lapse.
	deadline := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !lt.Renew("s1/0", ep) {
			t.Fatal("live holder's renewal refused")
		}
		time.Sleep(10 * time.Millisecond)
	}
	expired := lt.Expired(time.Now())
	if len(expired) != 1 || expired[0].key != "s1/1" {
		t.Fatalf("Expired = %+v, want exactly s1/1", expired)
	}
	if _, _, ok := lt.Holder("s1/1"); ok {
		t.Fatal("expired lease still in table")
	}
	if _, _, ok := lt.Holder("s1/0"); !ok {
		t.Fatal("renewed lease evicted")
	}
	_, _, expirations := lt.Counters()
	if expirations != 1 {
		t.Fatalf("expirations counter = %d, want 1", expirations)
	}
}

// TestLeaseTableDeaf pins the hbdrop chaos contract: a deaf lease
// acknowledges renewals (the holder believes it is healthy) while never
// extending its expiry — the simulated partition that forces the
// coordinator to win the duplicate-commit race.
func TestLeaseTableDeaf(t *testing.T) {
	lt := newLeaseTable(30 * time.Millisecond)
	ep := lt.Grant("s1/0", 0, true)
	for i := 0; i < 5; i++ {
		if !lt.Renew("s1/0", ep) {
			t.Fatal("deaf lease must acknowledge renewals")
		}
		time.Sleep(10 * time.Millisecond)
	}
	expired := lt.Expired(time.Now())
	if len(expired) != 1 || expired[0].epoch != ep {
		t.Fatalf("deaf lease did not expire despite renewals: %+v", expired)
	}
}

// sweepFixture builds a server (not started: the shard pool stays idle, so
// tasks sit in the queue and the test drives the coordinator by hand) with
// one two-task sweep admitted.
func sweepFixture(t *testing.T) (*Server, *coordinator, *Sweep) {
	t.Helper()
	s, err := New(Config{Workers: 1, ProgressInterval: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sw, err := s.SubmitSweep(SweepSpec{
		Scenes: []string{"SPL"}, Computes: []string{"", "VIO"}, Policies: []string{"EVEN"},
		Width: 128, Height: 72,
	})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if len(sw.tasks) != 2 {
		t.Fatalf("fixture sweep has %d tasks, want 2", len(sw.tasks))
	}
	return s, s.coord, sw
}

// TestCommitExactlyOnceAfterRevocation is the lease-expiry race, run
// deterministically (satellite of the fleet tier): a worker's lease is
// revoked and its task reassigned while the worker keeps running; both the
// reassigned attempt and the revoked orphan then deliver results.
// Exactly one commit must land; the duplicate is discarded by digest.
func TestCommitExactlyOnceAfterRevocation(t *testing.T) {
	_, c, sw := sweepFixture(t)
	task := sw.tasks[0]

	// Attempt 1: leased, then revoked by expiry (the holder is deaf or
	// partitioned — from the coordinator's view, silent).
	ep1 := c.leases.Grant(task.key(), 0, false)
	c.mu.Lock()
	task.state, task.epoch, task.worker = taskLeased, ep1, 0
	c.mu.Unlock()
	c.leases.Expired(time.Now().Add(2 * DefaultLeaseTTL)) // force-expire

	// Reassignment: attempt 2 on another shard, fresh epoch.
	ep2 := c.leases.Grant(task.key(), 1, false)
	c.mu.Lock()
	task.epoch, task.worker = ep2, 1
	c.mu.Unlock()

	// Determinism makes the two candidate results bit-identical.
	fresh := func() *StoredResult {
		return &StoredResult{Digest: task.digest, StatsDigest: "feedfacefeedface", Cycles: 4096}
	}
	winner := fresh()

	c.mu.Lock()
	c.commitLocked(task, ep2, winner, false) // reassigned attempt commits first
	c.mu.Unlock()
	c.mu.Lock()
	c.commitLocked(task, ep1, fresh(), false) // revoked orphan finishes anyway
	c.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if task.state != taskDone {
		t.Fatalf("task state = %s, want done", task.state)
	}
	if task.result != winner {
		t.Fatal("committed result is not the reassigned attempt's")
	}
	if sw.doneN != 1 {
		t.Fatalf("doneN = %d, want 1 (exactly one commit)", sw.doneN)
	}
	if sw.dups != 1 {
		t.Fatalf("sweep duplicate count = %d, want 1", sw.dups)
	}
	if got := c.duplicates.Load(); got != 1 {
		t.Fatalf("coordinator duplicate counter = %d, want 1", got)
	}
	if _, _, ok := c.leases.Holder(task.key()); ok {
		t.Fatal("lease survived both commits")
	}
	if sr, ok := c.s.cache.get(task.digest); !ok || sr != winner {
		t.Fatal("cache does not hold exactly the winning result")
	}
}

// TestHandleFailureStaleEpochDropped: a revoked holder's late *failure*
// report must not disturb the reassigned attempt.
func TestHandleFailureStaleEpochDropped(t *testing.T) {
	_, c, sw := sweepFixture(t)
	task := sw.tasks[0]

	ep1 := c.leases.Grant(task.key(), 0, false)
	c.mu.Lock()
	task.state, task.epoch, task.worker = taskLeased, ep1, 0
	c.mu.Unlock()

	// Reassigned under a fresh epoch; the orphan's epoch is now stale.
	ep2 := c.leases.Grant(task.key(), 1, false)
	c.mu.Lock()
	task.epoch, task.worker = ep2, 1
	c.mu.Unlock()

	c.handleFailure(task, ep1, fmt.Errorf("orphan crashed late"))

	c.mu.Lock()
	defer c.mu.Unlock()
	if task.state != taskLeased || task.epoch != ep2 {
		t.Fatalf("stale failure report disturbed the live attempt: state=%s epoch=%d (want leased/%d)", task.state, task.epoch, ep2)
	}
	if task.attempts != 0 {
		t.Fatalf("stale failure burned an attempt: %d", task.attempts)
	}
	if sw.revoked != 0 {
		t.Fatalf("stale failure counted a revocation: %d", sw.revoked)
	}
}
