// Package service is crispd's batch-simulation engine: a bounded FIFO job
// queue with admission control, a worker pool executing simulations
// through the crisp facade (cycle budgets, watchdogs, cooperative
// cancellation), a content-addressed result cache keyed by the canonical
// job digest, and a graceful drain protocol that checkpoints in-flight
// work through internal/snapshot so a restarted daemon resumes instead of
// re-simulating.
//
// Identical submissions never simulate twice: a submission whose digest is
// already cached completes instantly as a cache hit, and one whose digest
// is already queued or running attaches to that execution (coalescing)
// and completes when it does.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	crisp "crisp"
	"crisp/internal/obs"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// Config configures a Server. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the FIFO queue of admitted-but-not-yet-running
	// jobs; submissions beyond it receive 429 + Retry-After. Default 64.
	QueueDepth int
	// Workers is the worker-pool size: how many simulations run
	// concurrently. Default 2.
	Workers int
	// RunWorkers is the per-simulation SM-stepping parallelism (the -j
	// knob): 0 = auto, 1 = serial reference engine.
	RunWorkers int
	// StateDir enables persistence: job specs, periodic checkpoints,
	// final snapshots, and the result cache live under it, and a
	// restarted daemon resumes unfinished jobs from there. "" = memory
	// only (drain cancels, nothing survives restart).
	StateDir string
	// DefaultBudget is the cycle budget applied to jobs that do not set
	// their own (0 = unlimited).
	DefaultBudget int64
	// WatchdogWindow is the default forward-progress watchdog window
	// (0 = simulator default, negative = off).
	WatchdogWindow int64
	// CheckpointEvery is the checkpoint cadence in cycles for persisted
	// jobs (0 = the core default, 100k cycles).
	CheckpointEvery int64
	// ProgressInterval is the obs interval-metrics cadence, which doubles
	// as the job progress feed. Default 4096 cycles.
	ProgressInterval int64
	// TimelineBuffer bounds each job's retained telemetry history in
	// events (samples + lifecycle markers). Late joiners and Last-Event-ID
	// reconnects replay from this ring; a cursor older than it forces a
	// full /series refetch. Default obs.DefaultHubCapacity.
	TimelineBuffer int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 4096
	}
	if c.TimelineBuffer <= 0 {
		c.TimelineBuffer = obs.DefaultHubCapacity
	}
	return c
}

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued → running → done | failed | canceled.
// Cache hits and coalesced duplicates move queued → done without running.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one tracked submission.
type Job struct {
	ID     string
	Digest string
	Spec   JobSpec

	res *resolved

	// hub is the job's telemetry stream: interval samples published from
	// the simulation goroutine interleaved with lifecycle markers. It
	// backs the timeline SSE endpoint, the windowed /series view, and the
	// progress section of the job status — one ring, every reader.
	hub *obs.Hub

	mu       sync.Mutex
	state    State
	errMsg   string
	cacheHit bool // served from the completed-result cache at submit
	coalesce bool // attached to an identical in-flight execution
	userStop bool // canceled via DELETE
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	// followers are coalesced duplicates completed alongside this
	// (primary) job.
	followers []*Job
	// resumeFrom, when non-empty, is a snapshot path/dir the execution
	// restores from (a restarted daemon's recovered job).
	resumeFrom string
}

func (j *Job) setState(st State) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// noteSample receives interval metrics samples from the simulation
// goroutine (crisp.WithMetricsSink) and broadcasts them. Publish is one
// mutex + ring write when nobody is watching, so the simulation never
// waits on an observer.
func (j *Job) noteSample(s obs.Sample) {
	j.hub.Publish(obs.TimelineEvent{Cycle: s.Cycle, Kind: obs.TimelineSample, Sample: &s})
}

// noteLifecycle broadcasts a state transition on the job's timeline,
// stamped with the last sampled cycle (0 before the first sample).
func (j *Job) noteLifecycle(state State, detail string) {
	var cycle int64
	if ev, ok := j.hub.Latest(""); ok {
		cycle = ev.Cycle
	}
	j.hub.Publish(obs.TimelineEvent{Cycle: cycle, Kind: obs.TimelineLifecycle, State: string(state), Detail: detail})
}

// samples extracts the retained interval samples from the job's timeline,
// in cycle order.
func (j *Job) samples() []obs.Sample {
	evs := j.hub.Events(0, 0)
	out := make([]obs.Sample, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind == obs.TimelineSample && ev.Sample != nil {
			out = append(out, *ev.Sample)
		}
	}
	return out
}

// Typed submission failures, mapped to HTTP statuses by the handler.
var (
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not admitting jobs")
)

// QueueFullError rejects a submission that found the queue at capacity
// (429); RetryAfter estimates when a slot will free up.
type QueueFullError struct {
	Depth      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: job queue full (%d queued); retry in %v", e.Depth, e.RetryAfter)
}

// ValidationError marks a malformed or unresolvable job spec (400).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return "service: invalid job: " + e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// Server is the batch simulation service.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // submission order, for listing
	inflight map[string]*Job // digest → primary job (queued or running)
	queued   int             // admission counter
	nextID   int
	draining bool

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	cache *resultCache
	// series holds completed jobs' interval series by job digest (the
	// retained window of the primary execution's timeline), mirrored to
	// <stateDir>/results/<digest>.series.json when persistence is on.
	// Guarded by s.mu.
	series map[string][]obs.Sample

	// Counters (atomic: read by /metrics while workers run).
	execs      atomic.Int64 // simulator executions started
	hits       atomic.Int64 // submissions served from the completed cache
	coalesced  atomic.Int64 // submissions attached to an in-flight run
	done       atomic.Int64 // jobs reaching StateDone
	failed     atomic.Int64
	canceled   atomic.Int64
	avgRunNS   atomic.Int64 // EWMA of execution wall time
	launchedAt time.Time
}

// New builds a Server, loading the persisted result cache and recovering
// unfinished jobs when cfg.StateDir is set. Call Start to launch the
// worker pool (tests submit against an un-started server to exercise
// admission control deterministically).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		stop:       make(chan struct{}),
		cache:      newResultCache(""),
		series:     make(map[string][]obs.Sample),
		launchedAt: time.Now(),
	}
	var recovered []*Job
	if cfg.StateDir != "" {
		s.cache = newResultCache(filepath.Join(cfg.StateDir, "results"))
		s.cache.load()
		var err error
		recovered, err = s.scanJobs()
		if err != nil {
			return nil, err
		}
	}
	// Capacity covers the admission bound plus every recovered job, so an
	// enqueue under the admission counter can never block.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.readmit(j)
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Submit validates, digests, and admits one job. The returned Job may
// already be done (cache hit). Errors: *ValidationError, ErrDraining,
// *QueueFullError.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	r, err := spec.resolve()
	if err != nil {
		return nil, &ValidationError{Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}

	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.nextID),
		Digest:  r.digest,
		Spec:    spec,
		res:     r,
		hub:     obs.NewHub(s.cfg.TimelineBuffer),
		state:   StateQueued,
		created: time.Now(),
	}

	// Content-addressed fast path: an identical job already completed.
	if _, ok := s.cache.get(r.digest); ok {
		job.state = StateDone
		job.cacheHit = true
		job.finished = job.created
		s.hits.Add(1)
		s.done.Add(1)
		s.register(job)
		job.noteLifecycle(StateDone, "cache hit: result "+r.digest)
		job.hub.Close()
		return job, nil
	}

	// Single-flight: an identical job is already queued or running —
	// attach to it instead of simulating twice.
	if primary, ok := s.inflight[r.digest]; ok {
		job.coalesce = true
		primary.mu.Lock()
		primary.followers = append(primary.followers, job)
		primary.mu.Unlock()
		s.coalesced.Add(1)
		s.register(job)
		s.persistJob(job)
		job.noteLifecycle(StateQueued, "coalesced with "+primary.ID)
		return job, nil
	}

	// Admission control: the queue is bounded.
	if s.queued >= s.cfg.QueueDepth {
		return nil, &QueueFullError{Depth: s.queued, RetryAfter: s.retryAfter()}
	}
	s.queued++
	s.inflight[r.digest] = job
	s.register(job)
	s.persistJob(job)
	job.noteLifecycle(StateQueued, "")
	s.queue <- job // never blocks: capacity ≥ admission bound
	return job, nil
}

// register indexes the job (caller holds s.mu).
func (s *Server) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// readmit re-enqueues a recovered job at startup (caller is New; no lock
// contention yet). The digest routing mirrors Submit.
func (s *Server) readmit(job *Job) {
	if _, ok := s.cache.get(job.Digest); ok {
		job.state = StateDone
		job.cacheHit = true
		job.finished = time.Now()
		s.done.Add(1)
		s.hits.Add(1)
		s.register(job)
		job.noteLifecycle(StateDone, "cache hit: result "+job.Digest)
		job.hub.Close()
		s.unpersistJob(job)
		return
	}
	if primary, ok := s.inflight[job.Digest]; ok {
		job.coalesce = true
		primary.followers = append(primary.followers, job)
		s.register(job)
		job.noteLifecycle(StateQueued, "recovered; coalesced with "+primary.ID)
		return
	}
	s.queued++
	s.inflight[job.Digest] = job
	s.register(job)
	job.noteLifecycle(StateQueued, "recovered from a previous daemon instance")
	s.queue <- job
}

// Job returns a tracked job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every tracked job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Result returns a cached result by digest.
func (s *Server) Result(digest string) (*StoredResult, bool) { return s.cache.get(digest) }

// SeriesFor returns a completed job's retained interval series by job
// digest — in-memory first, then the persisted mirror next to the cached
// result (a restarted daemon serves yesterday's timelines too).
func (s *Server) SeriesFor(digest string) ([]obs.Sample, bool) {
	s.mu.Lock()
	samples, ok := s.series[digest]
	s.mu.Unlock()
	if ok {
		return samples, true
	}
	if s.cfg.StateDir == "" || !validDigest(digest) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.cfg.StateDir, "results", digest+".series.json"))
	if err != nil {
		return nil, false
	}
	if err := json.Unmarshal(b, &samples); err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.series[digest] = samples
	s.mu.Unlock()
	return samples, true
}

// persistSeries mirrors a completed series to disk, best effort, atomic
// (temp + rename), next to the cached result it belongs to (caller holds
// s.mu).
func (s *Server) persistSeries(digest string, samples []obs.Sample) {
	if s.cfg.StateDir == "" || len(samples) == 0 || !validDigest(digest) {
		return
	}
	dir := filepath.Join(s.cfg.StateDir, "results")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(samples)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-series-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(dir, digest+".series.json")); err != nil {
		os.Remove(name)
	}
}

// validDigest accepts exactly the canonical job-digest shape (16 hex
// digits), keeping URL path values out of filesystem paths otherwise.
func validDigest(d string) bool {
	if len(d) != 16 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Cancel cancels a job: a queued job is dropped before execution, a
// running one has its context canceled (the run fails with a canceled
// SimError and, when persistence is on, leaves a final snapshot).
// Canceling a primary also cancels its coalesced followers — they were
// riding the execution that just died. Returns false when the job is
// already finished.
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("service: unknown job %q", id)
	}
	job.mu.Lock()
	switch job.state {
	case StateDone, StateFailed, StateCanceled:
		job.mu.Unlock()
		s.mu.Unlock()
		return false, nil
	case StateRunning:
		job.userStop = true
		cancel := job.cancel
		job.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true, nil
	}
	// Queued (or a coalesced follower): finish it here. A queued primary
	// stays in the channel; the worker skips non-queued jobs.
	job.userStop = true
	job.state = StateCanceled
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.canceled.Add(1)
	s.unpersistJob(job)
	job.noteLifecycle(StateCanceled, "canceled before execution")
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = StateCanceled
		f.errMsg = "canceled: the execution this job was coalesced with was canceled"
		f.finished = time.Now()
		f.mu.Unlock()
		s.canceled.Add(1)
		s.unpersistJob(f)
		f.noteLifecycle(StateCanceled, f.errMsg)
		f.hub.Close()
	}
	s.mu.Unlock()
	return true, nil
}

// worker pulls jobs until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.mu.Lock()
			s.queued--
			draining := s.draining
			s.mu.Unlock()
			if draining {
				// Leave the job queued on disk; the restarted daemon
				// re-enqueues it.
				return
			}
			s.execute(job)
		}
	}
}

// execute runs one admitted job through the crisp facade.
func (s *Server) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued {
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	job.cancel = cancel
	resumeFrom := job.resumeFrom
	job.mu.Unlock()
	defer cancel()
	if resumeFrom != "" {
		job.noteLifecycle(StateRunning, "resuming from snapshot")
	} else {
		job.noteLifecycle(StateRunning, "")
	}

	r := job.res
	runOpts := []crisp.RunOption{
		crisp.WithMetrics(s.cfg.ProgressInterval),
		crisp.WithMetricsSink(job.noteSample),
	}
	budget := r.budget
	if budget == 0 {
		budget = s.cfg.DefaultBudget
	}
	if budget > 0 {
		runOpts = append(runOpts, crisp.WithCycleBudget(budget))
	}
	wdog := r.wdog
	if wdog == 0 {
		wdog = s.cfg.WatchdogWindow
	}
	if wdog != 0 {
		runOpts = append(runOpts, crisp.WithWatchdog(wdog))
	}
	if s.cfg.RunWorkers != 0 {
		runOpts = append(runOpts, crisp.WithWorkers(s.cfg.RunWorkers))
	}
	if dir := s.jobDir(job); dir != "" {
		runOpts = append(runOpts, crisp.WithCheckpointDir(dir))
		if s.cfg.CheckpointEvery > 0 {
			runOpts = append(runOpts, crisp.WithCheckpointEvery(s.cfg.CheckpointEvery))
		}
	}

	s.execs.Add(1)
	t0 := time.Now()
	var res *crisp.Result
	var err error
	if resumeFrom != "" {
		// A recovered job with an on-disk snapshot continues where the
		// drained daemon stopped. An unreadable snapshot falls back to a
		// fresh run — losing progress, never the job.
		var env *crisp.Snapshot
		if env, err = crisp.LoadSnapshot(resumeFrom); err == nil {
			res, err = crisp.Resume(ctx, env, runOpts...)
		} else {
			err = nil
		}
	}
	if res == nil && err == nil {
		res, err = crisp.RunPairContext(ctx, r.cfg, r.scene, r.compute, r.policy, r.opts, runOpts...)
	}
	wall := time.Since(t0)
	s.observeRunTime(wall)

	if err != nil {
		s.fail(job, err)
		return
	}
	stored, serr := storedFromResult(r, res, float64(wall.Microseconds())/1000)
	if serr != nil {
		s.fail(job, serr)
		return
	}
	s.cache.put(stored)
	s.complete(job, stored)
}

// complete marks the primary job and every coalesced follower done,
// retains the job's interval series under its digest (the A/B-diff and
// crispviz-serve data source), and clears persisted per-job state (the
// result now lives in the cache).
func (s *Server) complete(job *Job, stored *StoredResult) {
	samples := job.samples()
	s.mu.Lock()
	s.series[job.Digest] = samples
	s.persistSeries(job.Digest, samples)
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	job.mu.Lock()
	job.state = StateDone
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()
	s.done.Add(1)
	s.unpersistJob(job)
	done := fmt.Sprintf("stats_digest=%s samples=%d series_digest=%016x",
		stored.StatsDigest, len(samples), obs.SamplesDigest(samples))
	job.noteLifecycle(StateDone, done)
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = StateDone
		f.finished = time.Now()
		f.mu.Unlock()
		s.done.Add(1)
		s.unpersistJob(f)
		f.noteLifecycle(StateDone, "coalesced execution "+job.ID+" done; "+done)
		f.hub.Close()
	}
	s.mu.Unlock()
}

// fail resolves a failed execution. Three cases:
//   - drain cancellation: the job goes back to queued; its spec and final
//     snapshot stay on disk for the restarted daemon to resume;
//   - user cancellation (DELETE): the job is canceled;
//   - real failure (budget, watchdog, deadlock, panic): the job is failed
//     and a failure marker keeps a restart from retrying it blindly.
//
// Followers share the primary's outcome in every case.
func (s *Server) fail(job *Job, err error) {
	se, isSim := robust.AsSimError(err)
	isCancel := isSim && se.Kind == crisp.ErrCanceled

	s.mu.Lock()
	defer s.mu.Unlock()

	job.mu.Lock()
	if isCancel && s.draining && !job.userStop {
		// Graceful drain: the final snapshot was just flushed by the
		// checkpoint layer. Rewind to queued; disk state survives.
		job.state = StateQueued
		job.cancel = nil
		job.mu.Unlock()
		job.noteLifecycle(StateQueued, "drained; checkpointed for the next daemon")
		return
	}
	state := StateFailed
	if isCancel && job.userStop {
		state = StateCanceled
	}
	job.state = state
	job.errMsg = err.Error()
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()

	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.noteTerminal(job, state, err)
	job.noteLifecycle(state, err.Error())
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = state
		f.errMsg = fmt.Sprintf("coalesced execution %s: %v", state, err)
		f.finished = time.Now()
		f.mu.Unlock()
		s.noteTerminal(f, state, err)
		f.noteLifecycle(state, fmt.Sprintf("coalesced execution %s: %v", state, err))
		f.hub.Close()
	}
}

// noteTerminal updates counters and disk state for a terminally failed or
// canceled job (caller holds s.mu).
func (s *Server) noteTerminal(job *Job, state State, err error) {
	if state == StateCanceled {
		s.canceled.Add(1)
		s.unpersistJob(job)
		return
	}
	s.failed.Add(1)
	s.markFailed(job, err)
}

// Drain gracefully shuts the server down: stop admitting, stop starting
// queued work, cancel running simulations (each flushes a final snapshot
// through the checkpoint layer when persistence is on), and wait for the
// workers to exit. Queued and drained jobs stay on disk for the next
// daemon. Returns when the pool is idle or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.stop)
	}
	var cancels []context.CancelFunc
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	for _, c := range cancels {
		c()
	}
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out: %w", ctx.Err())
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// retryAfter estimates when a queue slot frees (caller holds s.mu): the
// EWMA execution time times the queue ahead, divided across the pool.
func (s *Server) retryAfter() time.Duration {
	avg := time.Duration(s.avgRunNS.Load())
	if avg <= 0 {
		avg = 2 * time.Second
	}
	est := avg * time.Duration(s.queued) / time.Duration(s.cfg.Workers)
	if est < time.Second {
		est = time.Second
	}
	if est > 2*time.Minute {
		est = 2 * time.Minute
	}
	return est
}

func (s *Server) observeRunTime(d time.Duration) {
	prev := s.avgRunNS.Load()
	if prev == 0 {
		s.avgRunNS.Store(int64(d))
		return
	}
	s.avgRunNS.Store((3*prev + int64(d)) / 4)
}

// Stats is a point-in-time counter snapshot (the /metrics payload and the
// test observables).
type Stats struct {
	QueueDepth    int
	QueueCapacity int
	Inflight      int
	Executions    int64
	CacheHits     int64
	Coalesced     int64
	Done          int64
	Failed        int64
	Canceled      int64
	CachedResults int
	Draining      bool
	UptimeSec     float64

	// JobsByState counts every tracked job by current lifecycle state.
	JobsByState map[State]int
	// Telemetry aggregates every job hub's counters: live timeline
	// subscribers, events published, and the slow-subscriber drop
	// counters.
	Subscribers    int
	TimelineEvents uint64
	SubsDropped    uint64
	EvsDropped     uint64
}

// Snapshot returns current server statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    s.queued,
		QueueCapacity: s.cfg.QueueDepth,
		Inflight:      len(s.inflight),
		Draining:      s.draining,
		JobsByState:   make(map[State]int),
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		st.JobsByState[j.state]++
		j.mu.Unlock()
		hs := j.hub.Stats()
		st.Subscribers += hs.Subscribers
		st.TimelineEvents += hs.Published
		st.SubsDropped += hs.SubsDropped
		st.EvsDropped += hs.EvsDropped
	}
	s.mu.Unlock()
	st.Executions = s.execs.Load()
	st.CacheHits = s.hits.Load()
	st.Coalesced = s.coalesced.Load()
	st.Done = s.done.Load()
	st.Failed = s.failed.Load()
	st.Canceled = s.canceled.Load()
	st.CachedResults = s.cache.len()
	st.UptimeSec = time.Since(s.launchedAt).Seconds()
	return st
}

// ---- persistence ----------------------------------------------------

// persistedJob is the on-disk record of an admitted job.
type persistedJob struct {
	ID     string  `json:"id"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
}

// jobDir is the job's private state directory ("" without persistence).
func (s *Server) jobDir(job *Job) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, "jobs", job.ID)
}

// persistJob writes the job spec record (best effort).
func (s *Server) persistJob(job *Job) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(persistedJob{ID: job.ID, Digest: job.Digest, Spec: job.Spec}, "", "  ")
	if err != nil {
		return
	}
	os.WriteFile(filepath.Join(dir, "job.json"), b, 0o644)
}

// unpersistJob removes the job's state directory — its result (if any)
// lives on in the content-addressed cache (caller holds s.mu or runs at
// startup).
func (s *Server) unpersistJob(job *Job) {
	if dir := s.jobDir(job); dir != "" {
		os.RemoveAll(dir)
	}
}

// markFailed records a terminal failure so a restart reports the job as
// failed instead of blindly re-running it; the job directory (crash-time
// snapshot included) is kept for postmortems.
func (s *Server) markFailed(job *Job, err error) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	rec := map[string]string{"error": err.Error()}
	if se, ok := robust.AsSimError(err); ok {
		rec["kind"] = se.Kind.String()
		rec["cycle"] = fmt.Sprint(se.Cycle)
	}
	if b, merr := json.MarshalIndent(rec, "", "  "); merr == nil {
		os.WriteFile(filepath.Join(dir, "failed.json"), b, 0o644)
	}
}

// scanJobs recovers persisted jobs at startup, in id order. Jobs with a
// failure marker are registered failed; the rest are resolved and handed
// back for readmission (resuming from their snapshot when one exists).
func (s *Server) scanJobs() ([]*Job, error) {
	root := filepath.Join(s.cfg.StateDir, "jobs")
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: scanning job state: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var recovered []*Job
	for _, name := range names {
		dir := filepath.Join(root, name)
		b, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			continue // not a job dir; leave it alone
		}
		var pj persistedJob
		if err := json.Unmarshal(b, &pj); err != nil || pj.ID == "" {
			continue
		}
		if n := idNumber(pj.ID); n > s.nextID {
			s.nextID = n
		}
		job := &Job{ID: pj.ID, Digest: pj.Digest, Spec: pj.Spec, hub: obs.NewHub(s.cfg.TimelineBuffer), created: time.Now()}

		if fb, err := os.ReadFile(filepath.Join(dir, "failed.json")); err == nil {
			var rec map[string]string
			json.Unmarshal(fb, &rec)
			job.state = StateFailed
			job.errMsg = rec["error"]
			if job.errMsg == "" {
				job.errMsg = "failed in a previous daemon instance"
			}
			job.finished = job.created
			s.failed.Add(1)
			s.register(job)
			job.noteLifecycle(StateFailed, job.errMsg)
			job.hub.Close()
			continue
		}

		r, err := pj.Spec.resolve()
		if err != nil {
			job.state = StateFailed
			job.errMsg = "recovered spec no longer resolves: " + err.Error()
			job.finished = job.created
			s.failed.Add(1)
			s.register(job)
			s.markFailed(job, err)
			job.noteLifecycle(StateFailed, job.errMsg)
			job.hub.Close()
			continue
		}
		job.res = r
		job.Digest = r.digest
		job.state = StateQueued
		if _, err := snapshot.Resolve(dir); err == nil {
			job.resumeFrom = dir
		}
		recovered = append(recovered, job)
	}
	return recovered, nil
}

func idNumber(id string) int {
	n := 0
	fmt.Sscanf(strings.TrimPrefix(id, "j"), "%d", &n)
	return n
}
