// Package service is crispd's batch-simulation engine: a bounded FIFO job
// queue with admission control, a worker pool executing simulations
// through the crisp facade (cycle budgets, watchdogs, cooperative
// cancellation), a content-addressed result cache keyed by the canonical
// job digest, and a graceful drain protocol that checkpoints in-flight
// work through internal/snapshot so a restarted daemon resumes instead of
// re-simulating.
//
// Identical submissions never simulate twice: a submission whose digest is
// already cached completes instantly as a cache hit, and one whose digest
// is already queued or running attaches to that execution (coalescing)
// and completes when it does.
//
// Execution is supervised: a retryable failure (watchdog, budget, panic,
// injected chaos fault, worker crash — robust.Kind.Retryable) is retried
// with exponential backoff and seeded jitter, resuming from the job's
// newest readable checkpoint instead of cycle 0; determinism makes the
// recovered run bit-identical to an uninterrupted one. A job that fails
// MaxAttempts times — counted across daemon restarts via persisted
// attempt markers — is quarantined with its crash dumps, never
// hot-looped. With Config.Isolate, each attempt runs in a child worker
// process (worker.go), so a hard crash kills one job, not the daemon.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	crisp "crisp"
	"crisp/internal/obs"
	"crisp/internal/robust"
	"crisp/internal/robust/chaos"
	"crisp/internal/snapshot"
)

// Config configures a Server. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the FIFO queue of admitted-but-not-yet-running
	// jobs; submissions beyond it receive 429 + Retry-After. Default 64.
	QueueDepth int
	// Workers is the worker-pool size: how many simulations run
	// concurrently. Default 2.
	Workers int
	// RunWorkers is the per-simulation SM-stepping parallelism (the -j
	// knob): 0 = auto, 1 = serial reference engine.
	RunWorkers int
	// StateDir enables persistence: job specs, periodic checkpoints,
	// final snapshots, and the result cache live under it, and a
	// restarted daemon resumes unfinished jobs from there. "" = memory
	// only (drain cancels, nothing survives restart).
	StateDir string
	// DefaultBudget is the cycle budget applied to jobs that do not set
	// their own (0 = unlimited).
	DefaultBudget int64
	// WatchdogWindow is the default forward-progress watchdog window
	// (0 = simulator default, negative = off).
	WatchdogWindow int64
	// CheckpointEvery is the checkpoint cadence in cycles for persisted
	// jobs (0 = the core default, 100k cycles).
	CheckpointEvery int64
	// ProgressInterval is the obs interval-metrics cadence, which doubles
	// as the job progress feed. Default 4096 cycles.
	ProgressInterval int64
	// TimelineBuffer bounds each job's retained telemetry history in
	// events (samples + lifecycle markers). Late joiners and Last-Event-ID
	// reconnects replay from this ring; a cursor older than it forces a
	// full /series refetch. Default obs.DefaultHubCapacity.
	TimelineBuffer int
	// MaxTimelineSubs bounds live SSE subscribers per timeline hub; a
	// subscriber beyond it gets 503 + Retry-After instead of a stream, so
	// a subscriber flood cannot exhaust file descriptors. Default 256;
	// negative = unlimited.
	MaxTimelineSubs int

	// FleetWorkers is the sweep tier's shard count: how many sweep tasks
	// execute concurrently under lease-based supervision. Default Workers.
	FleetWorkers int
	// LeaseTTL bounds how long a shard may go without renewing its task
	// lease (heartbeats, samples) before the coordinator presumes it dead,
	// revokes the lease, and reassigns the task. Default 10s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the lease-renewal cadence. Default LeaseTTL/4.
	HeartbeatEvery time.Duration
	// MaxSweeps bounds concurrently live (non-terminal) sweeps; beyond it
	// submissions get 429 + Retry-After. Default 16.
	MaxSweeps int
	// MaxSweepTasks bounds one sweep's grid expansion. Default 512.
	MaxSweepTasks int

	// MaxAttempts is the supervised-retry budget per job: a job whose
	// execution fails retryably this many times (counted across daemon
	// restarts) is quarantined. Default DefaultMaxAttempts.
	MaxAttempts int
	// RetryBase and RetryMax bound the exponential backoff between
	// attempts (base·2^(n-1) capped at max, plus seeded jitter). Defaults
	// DefaultRetryBase / DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed keys the deterministic backoff jitter.
	RetrySeed int64
	// Isolate runs each execution attempt in a child worker process
	// speaking the stdio/JSON protocol in worker.go, so a hard crash
	// (SIGKILL, OOM, runtime fault) kills one job instead of the daemon.
	Isolate bool
	// WorkerCommand overrides the isolated worker command line. Empty =
	// re-exec this binary with CRISPD_WORKER=1 in the environment (both
	// cmd/crispd and the test binary intercept that and run WorkerMain).
	WorkerCommand []string
	// Chaos plants seeded faults into the execution path (kill at cycle N,
	// corrupt the newest checkpoint before a resume, delay completion) —
	// the recovery machinery's test harness. Zero = no faults.
	Chaos chaos.Spec
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 4096
	}
	if c.TimelineBuffer <= 0 {
		c.TimelineBuffer = obs.DefaultHubCapacity
	}
	if c.MaxTimelineSubs == 0 {
		c.MaxTimelineSubs = 256
	}
	if c.FleetWorkers <= 0 {
		c.FleetWorkers = c.Workers
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 4
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = DefaultMaxSweeps
	}
	if c.MaxSweepTasks <= 0 {
		c.MaxSweepTasks = DefaultMaxSweepTasks
	}
	return c
}

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued → running → done | failed | canceled |
// quarantined. Cache hits and coalesced duplicates move queued → done
// without running. Quarantined is the poison-job terminal state: the job
// exhausted its retry budget; its directory (crash dumps, checkpoints,
// attempt markers) is kept for postmortems and survives restarts.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateQuarantined State = "quarantined"
)

// Job is one tracked submission.
type Job struct {
	ID     string
	Digest string
	Spec   JobSpec

	res *resolved

	// hub is the job's telemetry stream: interval samples published from
	// the simulation goroutine interleaved with lifecycle markers. It
	// backs the timeline SSE endpoint, the windowed /series view, and the
	// progress section of the job status — one ring, every reader.
	hub *obs.Hub

	mu       sync.Mutex
	state    State
	errMsg   string
	cacheHit bool // served from the completed-result cache at submit
	coalesce bool // attached to an identical in-flight execution
	userStop bool // canceled via DELETE
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	// followers are coalesced duplicates completed alongside this
	// (primary) job.
	followers []*Job
	// resumeFrom, when non-empty, is a snapshot path/dir the execution
	// restores from (a restarted daemon's recovered job).
	resumeFrom string
	// failedAttempts counts execution attempts that failed retryably,
	// including ones recorded by previous daemon instances (attempts.json)
	// — the quarantine threshold compares against this.
	failedAttempts int
	// Skip-ratio telemetry from the latest interval sample: cumulative
	// counters for the job's current execution attempt (engine core
	// sleeping — see internal/engine). Guarded by mu.
	simCycles    int64
	stepsExec    int64
	stepsSkipped int64
	bulkStalls   int64
}

func (j *Job) setState(st State) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// noteSample receives interval metrics samples from the simulation
// goroutine (crisp.WithMetricsSink) and broadcasts them. Publish is one
// mutex + ring write when nobody is watching, so the simulation never
// waits on an observer.
func (j *Job) noteSample(s obs.Sample) {
	j.mu.Lock()
	j.simCycles = s.CyclesSimulated
	j.stepsExec = s.StepsExecuted
	j.stepsSkipped = s.StepsSkipped
	j.bulkStalls = s.BulkStallSlots
	j.mu.Unlock()
	j.hub.Publish(obs.TimelineEvent{Cycle: s.Cycle, Kind: obs.TimelineSample, Sample: &s})
}

// noteLifecycle broadcasts a state transition on the job's timeline,
// stamped with the last sampled cycle (0 before the first sample).
func (j *Job) noteLifecycle(state State, detail string) {
	var cycle int64
	if ev, ok := j.hub.Latest(""); ok {
		cycle = ev.Cycle
	}
	j.hub.Publish(obs.TimelineEvent{Cycle: cycle, Kind: obs.TimelineLifecycle, State: string(state), Detail: detail})
}

// noteAttempt broadcasts a supervised execution attempt starting: attempt
// 1 is the first run, higher numbers are retries.
func (j *Job) noteAttempt(attempt int, detail string) {
	var cycle int64
	if ev, ok := j.hub.Latest(""); ok {
		cycle = ev.Cycle
	}
	j.hub.Publish(obs.TimelineEvent{Cycle: cycle, Kind: obs.TimelineAttempt, Attempt: attempt, Detail: detail})
}

// samples extracts the retained interval samples from the job's timeline,
// in cycle order.
func (j *Job) samples() []obs.Sample {
	evs := j.hub.Events(0, 0)
	out := make([]obs.Sample, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind == obs.TimelineSample && ev.Sample != nil {
			out = append(out, *ev.Sample)
		}
	}
	return out
}

// Typed submission failures, mapped to HTTP statuses by the handler.
var (
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not admitting jobs")
)

// QueueFullError rejects a submission that found the queue at capacity
// (429); RetryAfter estimates when a slot will free up.
type QueueFullError struct {
	Depth      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: job queue full (%d queued); retry in %v", e.Depth, e.RetryAfter)
}

// ValidationError marks a malformed or unresolvable job spec (400).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return "service: invalid job: " + e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// Server is the batch simulation service.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // submission order, for listing
	inflight map[string]*Job // digest → primary job (queued or running)
	queued   int             // admission counter
	nextID   int
	draining bool

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	// coord owns the sweep tier: sharded execution with lease-based
	// supervision and checkpoint handoff (coordinator.go).
	coord *coordinator

	cache *resultCache
	// series holds completed jobs' interval series by job digest (the
	// retained window of the primary execution's timeline), mirrored to
	// <stateDir>/results/<digest>.series.json when persistence is on.
	// Guarded by s.mu.
	series map[string][]obs.Sample

	// chaosCtrl plants Config.Chaos's faults (nil = no chaos).
	chaosCtrl *chaos.Controller
	// ready flips true once startup recovery finished and the worker pool
	// is launched; /readyz serves 503 until then (and again while
	// draining).
	ready atomic.Bool

	// Counters (atomic: read by /metrics while workers run).
	execs      atomic.Int64 // simulator executions started
	hits       atomic.Int64 // submissions served from the completed cache
	coalesced  atomic.Int64 // submissions attached to an in-flight run
	done       atomic.Int64 // jobs reaching StateDone
	failed     atomic.Int64
	canceled   atomic.Int64
	quarantine atomic.Int64 // jobs quarantined after exhausting retries
	attempts   atomic.Int64 // execution attempts started (≥ execs)
	retries    atomic.Int64 // retry attempts (attempt number > 1)
	crashes    atomic.Int64 // isolated workers that died without a result
	fallbacks  atomic.Int64 // resumes that skipped ≥1 corrupt checkpoint
	avgRunNS   atomic.Int64 // EWMA of execution wall time
	launchedAt time.Time
}

// New builds a Server, loading the persisted result cache and recovering
// unfinished jobs when cfg.StateDir is set. Call Start to launch the
// worker pool (tests submit against an un-started server to exercise
// admission control deterministically).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		stop:       make(chan struct{}),
		cache:      newResultCache(""),
		series:     make(map[string][]obs.Sample),
		chaosCtrl:  chaos.NewController(cfg.Chaos),
		launchedAt: time.Now(),
	}
	var recovered []*Job
	if cfg.StateDir != "" {
		s.cache = newResultCache(filepath.Join(cfg.StateDir, "results"))
		s.cache.load()
		var err error
		recovered, err = s.scanJobs()
		if err != nil {
			return nil, err
		}
	}
	// Capacity covers the admission bound plus every recovered job, so an
	// enqueue under the admission counter can never block.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.readmit(j)
	}
	s.coord = newCoordinator(s)
	return s, nil
}

// resultsDir is the persisted content-addressed result store ("" when
// memory-only) — the directory isolated fleet workers consult as their
// local cache (federation).
func (s *Server) resultsDir() string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, "results")
}

// Start launches the worker pool and marks the server ready: startup
// recovery (New's scanJobs pass) has finished by the time Start is called.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.coord.start()
	s.ready.Store(true)
}

// Ready reports readiness for /readyz: recovery finished, pool launched,
// not draining. Liveness (/healthz) is unconditional by contrast — a
// draining daemon is still alive.
func (s *Server) Ready() bool {
	return s.ready.Load() && !s.Draining()
}

// Submit validates, digests, and admits one job. The returned Job may
// already be done (cache hit). Errors: *ValidationError, ErrDraining,
// *QueueFullError.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	r, err := spec.resolve()
	if err != nil {
		return nil, &ValidationError{Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}

	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.nextID),
		Digest:  r.digest,
		Spec:    spec,
		res:     r,
		hub:     obs.NewHub(s.cfg.TimelineBuffer),
		state:   StateQueued,
		created: time.Now(),
	}

	// Content-addressed fast path: an identical job already completed.
	if _, ok := s.cache.get(r.digest); ok {
		job.state = StateDone
		job.cacheHit = true
		job.finished = job.created
		s.hits.Add(1)
		s.done.Add(1)
		s.register(job)
		job.noteLifecycle(StateDone, "cache hit: result "+r.digest)
		job.hub.Close()
		return job, nil
	}

	// Single-flight: an identical job is already queued or running —
	// attach to it instead of simulating twice.
	if primary, ok := s.inflight[r.digest]; ok {
		job.coalesce = true
		primary.mu.Lock()
		primary.followers = append(primary.followers, job)
		primary.mu.Unlock()
		s.coalesced.Add(1)
		s.register(job)
		s.persistJob(job)
		job.noteLifecycle(StateQueued, "coalesced with "+primary.ID)
		return job, nil
	}

	// Admission control: the queue is bounded.
	if s.queued >= s.cfg.QueueDepth {
		return nil, &QueueFullError{Depth: s.queued, RetryAfter: s.retryAfter()}
	}
	s.queued++
	s.inflight[r.digest] = job
	s.register(job)
	s.persistJob(job)
	job.noteLifecycle(StateQueued, "")
	s.queue <- job // never blocks: capacity ≥ admission bound
	return job, nil
}

// register indexes the job (caller holds s.mu).
func (s *Server) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// readmit re-enqueues a recovered job at startup (caller is New; no lock
// contention yet). The digest routing mirrors Submit.
func (s *Server) readmit(job *Job) {
	if _, ok := s.cache.get(job.Digest); ok {
		job.state = StateDone
		job.cacheHit = true
		job.finished = time.Now()
		s.done.Add(1)
		s.hits.Add(1)
		s.register(job)
		job.noteLifecycle(StateDone, "cache hit: result "+job.Digest)
		job.hub.Close()
		s.unpersistJob(job)
		return
	}
	if primary, ok := s.inflight[job.Digest]; ok {
		job.coalesce = true
		primary.followers = append(primary.followers, job)
		s.register(job)
		job.noteLifecycle(StateQueued, "recovered; coalesced with "+primary.ID)
		return
	}
	s.queued++
	s.inflight[job.Digest] = job
	s.register(job)
	job.noteLifecycle(StateQueued, "recovered from a previous daemon instance")
	s.queue <- job
}

// Job returns a tracked job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every tracked job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Result returns a cached result by digest.
func (s *Server) Result(digest string) (*StoredResult, bool) { return s.cache.get(digest) }

// SeriesFor returns a completed job's retained interval series by job
// digest — in-memory first, then the persisted mirror next to the cached
// result (a restarted daemon serves yesterday's timelines too).
func (s *Server) SeriesFor(digest string) ([]obs.Sample, bool) {
	s.mu.Lock()
	samples, ok := s.series[digest]
	s.mu.Unlock()
	if ok {
		return samples, true
	}
	if s.cfg.StateDir == "" || !validDigest(digest) {
		return nil, false
	}
	path := filepath.Join(s.cfg.StateDir, "results", digest+".series.json")
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if err := json.Unmarshal(b, &samples); err != nil {
		// Corrupt persisted series: set it aside so it is not re-parsed on
		// every request. The job's result is unaffected.
		if aside := quarantineFile(path); aside != "" {
			log.Printf("crispd: corrupt persisted series %s set aside as %s", path, aside)
		}
		return nil, false
	}
	s.mu.Lock()
	s.series[digest] = samples
	s.mu.Unlock()
	return samples, true
}

// persistSeries mirrors a completed series to disk, best effort, atomic
// (temp + rename), next to the cached result it belongs to (caller holds
// s.mu).
func (s *Server) persistSeries(digest string, samples []obs.Sample) {
	if s.cfg.StateDir == "" || len(samples) == 0 || !validDigest(digest) {
		return
	}
	dir := filepath.Join(s.cfg.StateDir, "results")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(samples)
	if err != nil {
		return
	}
	writeFileAtomic(filepath.Join(dir, digest+".series.json"), b)
}

// validDigest accepts exactly the canonical job-digest shape (16 hex
// digits), keeping URL path values out of filesystem paths otherwise.
func validDigest(d string) bool {
	if len(d) != 16 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Cancel cancels a job: a queued job is dropped before execution, a
// running one has its context canceled (the run fails with a canceled
// SimError and, when persistence is on, leaves a final snapshot).
// Canceling a primary also cancels its coalesced followers — they were
// riding the execution that just died. Returns false when the job is
// already finished.
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("service: unknown job %q", id)
	}
	job.mu.Lock()
	switch job.state {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		job.mu.Unlock()
		s.mu.Unlock()
		return false, nil
	case StateRunning:
		job.userStop = true
		cancel := job.cancel
		job.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true, nil
	}
	// Queued (or a coalesced follower): finish it here. A queued primary
	// stays in the channel; the worker skips non-queued jobs.
	job.userStop = true
	job.state = StateCanceled
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.canceled.Add(1)
	s.unpersistJob(job)
	job.noteLifecycle(StateCanceled, "canceled before execution")
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = StateCanceled
		f.errMsg = "canceled: the execution this job was coalesced with was canceled"
		f.finished = time.Now()
		f.mu.Unlock()
		s.canceled.Add(1)
		s.unpersistJob(f)
		f.noteLifecycle(StateCanceled, f.errMsg)
		f.hub.Close()
	}
	s.mu.Unlock()
	return true, nil
}

// worker pulls jobs until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.mu.Lock()
			s.queued--
			draining := s.draining
			s.mu.Unlock()
			if draining {
				// Leave the job queued on disk; the restarted daemon
				// re-enqueues it.
				return
			}
			s.execute(job)
		}
	}
}

// execute runs one admitted job under supervision: execution attempts
// (in-process through the crisp facade, or in an isolated worker process)
// with retryable failures retried after a backoff, resuming from the
// job's newest readable checkpoint; a job that exhausts its attempt
// budget is quarantined. Cancellation — user DELETE or drain — always
// wins over a pending retry.
func (s *Server) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued {
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	// lctx is the job's lifecycle context: Cancel and Drain both cancel it
	// through job.cancel, which covers a running simulation, a backoff
	// sleep, and a spawning worker process alike.
	lctx, cancel := context.WithCancel(context.Background())
	job.cancel = cancel
	resumeFrom := job.resumeFrom
	failed := job.failedAttempts
	job.mu.Unlock()
	defer cancel()
	if resumeFrom != "" {
		job.noteLifecycle(StateRunning, "resuming from snapshot")
	} else {
		job.noteLifecycle(StateRunning, "")
	}

	maxAtt := s.maxAttempts()
	for {
		attempt := failed + 1
		s.attempts.Add(1)
		if attempt > 1 {
			s.retries.Add(1)
		} else {
			s.execs.Add(1)
		}
		detail := "fresh run"
		if resumeFrom != "" {
			detail = "resuming from " + resumeFrom
		}
		job.noteAttempt(attempt, detail)

		stored, err := s.runAttempt(lctx, job, resumeFrom)
		if err == nil {
			if d := s.chaosCtrl.CompletionDelay(); d > 0 {
				sleepBackoff(lctx, d)
			}
			s.cache.put(stored)
			s.complete(job, stored)
			return
		}

		// Cancellation and permanent failures (validation, deadlock) end
		// the job now; fail() distinguishes drain-rewind / user cancel /
		// terminal failure.
		if se, ok := robust.AsSimError(err); ok && robust.DeepestKind(se) == robust.KindCanceled {
			s.fail(job, err)
			return
		}
		if !robust.RetryableError(err) {
			s.fail(job, err)
			return
		}

		failed = attempt
		job.mu.Lock()
		job.failedAttempts = failed
		job.mu.Unlock()
		s.recordAttempt(job, failed, err)
		if failed >= maxAtt {
			s.quarantineJob(job, err, failed)
			return
		}

		// Chaos: damage the newest checkpoint before the resume, forcing
		// the fallback-to-previous path.
		if mode, ok := s.chaosCtrl.TakeCorrupt(job.Digest); ok {
			if dir := s.jobDir(job); dir != "" {
				if p, cerr := chaos.Corrupt(dir, mode, s.cfg.Chaos.Seed); cerr == nil {
					log.Printf("crispd: chaos: %s-corrupted checkpoint %s (job %s)", mode, p, job.ID)
				}
			}
		}

		delay := s.backoffDelay(job.Digest, attempt+1)
		log.Printf("crispd: job %s attempt %d/%d failed, retrying in %v: %v", job.ID, failed, maxAtt, delay, err)
		if !sleepBackoff(lctx, delay) {
			s.fail(job, &robust.SimError{Kind: robust.KindCanceled, Msg: "canceled during retry backoff", Err: err})
			return
		}
		// Retry from the newest checkpoint when one exists — the failed
		// attempt's progress up to its last checkpoint is never re-simulated.
		resumeFrom = ""
		if dir := s.jobDir(job); dir != "" && len(snapshot.Candidates(dir)) > 0 {
			resumeFrom = dir
		}
	}
}

// runAttempt executes one attempt and summarizes the result for the
// cache. With Config.Isolate the attempt runs in a child worker process
// (worker.go); otherwise in-process through the crisp facade.
func (s *Server) runAttempt(ctx context.Context, job *Job, resumeFrom string) (*StoredResult, error) {
	killAt, killArmed := s.chaosCtrl.TakeKill(job.Digest)
	if !killArmed {
		killAt = 0
	}
	if s.cfg.Isolate {
		return s.runIsolated(ctx, job, resumeFrom, killAt)
	}
	return s.runInProcess(ctx, job, resumeFrom, killAt)
}

// runInProcess is the direct execution path, built on the shared core in
// fleet.go. A chaos kill (killAt > 0) panics with a KindInjected SimError
// from the metrics sink on the sim goroutine: the core's deferred
// recovery flushes a final snapshot first, so the retry has the kill-time
// state to resume from.
func (s *Server) runInProcess(ctx context.Context, job *Job, resumeFrom string, killAt int64) (*StoredResult, error) {
	p := s.paramsFor(job.res, resumeFrom, s.jobDir(job), killAt)
	stored, wall, err := runDirect(ctx, p, attemptHooks{
		onSample: job.noteSample,
		onFallback: func(corrupt []string) {
			for _, c := range corrupt {
				log.Printf("crispd: job %s: corrupt checkpoint %s renamed aside", job.ID, c)
			}
			s.fallbacks.Add(1)
		},
		onKill: func(cycle int64) { panic(chaos.Injected(cycle)) },
	})
	s.observeRunTime(wall)
	return stored, err
}

// loadResume loads the snapshot a retry resumes from: a directory loads
// its newest readable checkpoint (corrupt ones renamed aside and reported
// in corrupt), a file path loads directly.
func loadResume(arg string) (*crisp.Snapshot, []string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, nil, err
	}
	if info.IsDir() {
		return snapshot.LoadNewest(arg)
	}
	env, err := crisp.LoadSnapshot(arg)
	return env, nil, err
}

// quarantineJob parks a poison job: its retry budget is exhausted, so it
// goes terminal with its crash dumps and checkpoints kept on disk and is
// never retried again — not even by a restarted daemon (quarantined.json).
// Followers fail: they were riding an execution that will never finish.
func (s *Server) quarantineJob(job *Job, err error, attempts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.mu.Lock()
	msg := fmt.Sprintf("quarantined after %d failed attempts: %v", attempts, err)
	job.state = StateQuarantined
	job.errMsg = msg
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.quarantine.Add(1)
	s.markQuarantined(job, err, attempts)
	log.Printf("crispd: job %s %s", job.ID, msg)
	job.noteLifecycle(StateQuarantined, msg)
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = StateFailed
		f.errMsg = "coalesced execution " + job.ID + " " + msg
		f.finished = time.Now()
		f.mu.Unlock()
		s.failed.Add(1)
		s.markFailed(f, err)
		f.noteLifecycle(StateFailed, f.errMsg)
		f.hub.Close()
	}
}

// complete marks the primary job and every coalesced follower done,
// retains the job's interval series under its digest (the A/B-diff and
// crispviz-serve data source), and clears persisted per-job state (the
// result now lives in the cache).
func (s *Server) complete(job *Job, stored *StoredResult) {
	samples := job.samples()
	s.mu.Lock()
	s.series[job.Digest] = samples
	s.persistSeries(job.Digest, samples)
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	job.mu.Lock()
	job.state = StateDone
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()
	s.done.Add(1)
	s.unpersistJob(job)
	done := fmt.Sprintf("stats_digest=%s samples=%d series_digest=%016x",
		stored.StatsDigest, len(samples), obs.SamplesDigest(samples))
	job.noteLifecycle(StateDone, done)
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = StateDone
		f.finished = time.Now()
		f.mu.Unlock()
		s.done.Add(1)
		s.unpersistJob(f)
		f.noteLifecycle(StateDone, "coalesced execution "+job.ID+" done; "+done)
		f.hub.Close()
	}
	s.mu.Unlock()
}

// fail resolves a failed execution. Three cases:
//   - drain cancellation: the job goes back to queued; its spec and final
//     snapshot stay on disk for the restarted daemon to resume;
//   - user cancellation (DELETE): the job is canceled;
//   - real failure (budget, watchdog, deadlock, panic): the job is failed
//     and a failure marker keeps a restart from retrying it blindly.
//
// Followers share the primary's outcome in every case.
func (s *Server) fail(job *Job, err error) {
	se, isSim := robust.AsSimError(err)
	isCancel := isSim && se.Kind == crisp.ErrCanceled

	s.mu.Lock()
	defer s.mu.Unlock()

	job.mu.Lock()
	if isCancel && s.draining && !job.userStop {
		// Graceful drain: the final snapshot was just flushed by the
		// checkpoint layer. Rewind to queued; disk state survives.
		job.state = StateQueued
		job.cancel = nil
		job.mu.Unlock()
		job.noteLifecycle(StateQueued, "drained; checkpointed for the next daemon")
		return
	}
	state := StateFailed
	if isCancel && job.userStop {
		state = StateCanceled
	}
	job.state = state
	job.errMsg = err.Error()
	job.finished = time.Now()
	followers := job.followers
	job.followers = nil
	job.mu.Unlock()

	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.noteTerminal(job, state, err)
	job.noteLifecycle(state, err.Error())
	job.hub.Close()
	for _, f := range followers {
		f.mu.Lock()
		f.state = state
		f.errMsg = fmt.Sprintf("coalesced execution %s: %v", state, err)
		f.finished = time.Now()
		f.mu.Unlock()
		s.noteTerminal(f, state, err)
		f.noteLifecycle(state, fmt.Sprintf("coalesced execution %s: %v", state, err))
		f.hub.Close()
	}
}

// noteTerminal updates counters and disk state for a terminally failed or
// canceled job (caller holds s.mu).
func (s *Server) noteTerminal(job *Job, state State, err error) {
	if state == StateCanceled {
		s.canceled.Add(1)
		s.unpersistJob(job)
		return
	}
	s.failed.Add(1)
	s.markFailed(job, err)
}

// Drain gracefully shuts the server down: stop admitting, stop starting
// queued work, cancel running simulations (each flushes a final snapshot
// through the checkpoint layer when persistence is on), and wait for the
// workers to exit. Queued and drained jobs stay on disk for the next
// daemon. Returns when the pool is idle or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.stop)
	}
	var cancels []context.CancelFunc
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	for _, c := range cancels {
		c()
	}
	idle := make(chan struct{})
	go func() {
		// The sweep tier drains first (its shards cancel their attempts
		// and exit), then the job pool.
		s.coord.drain()
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out: %w", ctx.Err())
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// retryAfter estimates when a queue slot frees (caller holds s.mu): the
// EWMA execution time times the queue ahead, divided across the pool.
func (s *Server) retryAfter() time.Duration {
	avg := time.Duration(s.avgRunNS.Load())
	if avg <= 0 {
		avg = 2 * time.Second
	}
	est := avg * time.Duration(s.queued) / time.Duration(s.cfg.Workers)
	if est < time.Second {
		est = time.Second
	}
	if est > 2*time.Minute {
		est = 2 * time.Minute
	}
	return est
}

func (s *Server) observeRunTime(d time.Duration) {
	prev := s.avgRunNS.Load()
	if prev == 0 {
		s.avgRunNS.Store(int64(d))
		return
	}
	s.avgRunNS.Store((3*prev + int64(d)) / 4)
}

// Stats is a point-in-time counter snapshot (the /metrics payload and the
// test observables).
type Stats struct {
	QueueDepth    int
	QueueCapacity int
	Inflight      int
	Executions    int64
	CacheHits     int64
	Coalesced     int64
	Done          int64
	Failed        int64
	Canceled      int64
	CachedResults int
	Draining      bool
	Ready         bool
	UptimeSec     float64

	// Supervision counters.
	Attempts            int64 // execution attempts started (≥ Executions)
	Retries             int64 // attempts beyond each job's first
	Quarantined         int64 // jobs quarantined after exhausting retries
	WorkerCrashes       int64 // isolated workers dead without a result
	CheckpointFallbacks int64 // resumes that skipped ≥1 corrupt checkpoint
	ChaosKills          int64 // chaos faults fired: injected kills
	ChaosCorruptions    int64 // chaos faults fired: checkpoint corruptions

	// JobsByState counts every tracked job by current lifecycle state.
	JobsByState map[State]int

	// Skip-ratio telemetry summed over every tracked job's latest
	// interval sample: how much simulated time the event-driven engine
	// covered versus how many core steps it actually executed.
	CyclesSimulated int64
	StepsExecuted   int64
	StepsSkipped    int64
	BulkStallSlots  int64
	// Telemetry aggregates every job hub's counters: live timeline
	// subscribers, events published, and the slow-subscriber drop
	// counters.
	Subscribers    int
	TimelineEvents uint64
	SubsDropped    uint64
	EvsDropped     uint64

	// Fleet is the sweep tier's counter snapshot (leases, revocations,
	// checkpoint handoffs, federation).
	Fleet FleetStats
}

// Snapshot returns current server statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    s.queued,
		QueueCapacity: s.cfg.QueueDepth,
		Inflight:      len(s.inflight),
		Draining:      s.draining,
		JobsByState:   make(map[State]int),
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		st.JobsByState[j.state]++
		st.CyclesSimulated += j.simCycles
		st.StepsExecuted += j.stepsExec
		st.StepsSkipped += j.stepsSkipped
		st.BulkStallSlots += j.bulkStalls
		j.mu.Unlock()
		hs := j.hub.Stats()
		st.Subscribers += hs.Subscribers
		st.TimelineEvents += hs.Published
		st.SubsDropped += hs.SubsDropped
		st.EvsDropped += hs.EvsDropped
	}
	s.mu.Unlock()
	st.Executions = s.execs.Load()
	st.CacheHits = s.hits.Load()
	st.Coalesced = s.coalesced.Load()
	st.Done = s.done.Load()
	st.Failed = s.failed.Load()
	st.Canceled = s.canceled.Load()
	st.Attempts = s.attempts.Load()
	st.Retries = s.retries.Load()
	st.Quarantined = s.quarantine.Load()
	st.WorkerCrashes = s.crashes.Load()
	st.CheckpointFallbacks = s.fallbacks.Load()
	st.ChaosKills, st.ChaosCorruptions = s.chaosCtrl.Stats()
	st.Fleet = s.coord.stats()
	st.CachedResults = s.cache.len()
	st.Ready = s.Ready()
	st.UptimeSec = time.Since(s.launchedAt).Seconds()
	return st
}

// ---- persistence ----------------------------------------------------

// persistedJob is the on-disk record of an admitted job.
type persistedJob struct {
	ID     string  `json:"id"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
}

// jobDir is the job's private state directory ("" without persistence).
func (s *Server) jobDir(job *Job) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, "jobs", job.ID)
}

// persistJob writes the job spec record (best effort).
func (s *Server) persistJob(job *Job) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(persistedJob{ID: job.ID, Digest: job.Digest, Spec: job.Spec}, "", "  ")
	if err != nil {
		return
	}
	writeFileAtomic(filepath.Join(dir, "job.json"), b)
}

// unpersistJob removes the job's state directory — its result (if any)
// lives on in the content-addressed cache (caller holds s.mu or runs at
// startup).
func (s *Server) unpersistJob(job *Job) {
	if dir := s.jobDir(job); dir != "" {
		os.RemoveAll(dir)
	}
}

// markFailed records a terminal failure so a restart reports the job as
// failed instead of blindly re-running it; the job directory (crash-time
// snapshot included) is kept for postmortems.
func (s *Server) markFailed(job *Job, err error) {
	dir := s.jobDir(job)
	if dir == "" {
		return
	}
	rec := map[string]string{"error": err.Error()}
	if se, ok := robust.AsSimError(err); ok {
		rec["kind"] = robust.DeepestKind(se).String()
		rec["cycle"] = fmt.Sprint(se.Cycle)
	}
	if b, merr := json.MarshalIndent(rec, "", "  "); merr == nil {
		writeFileAtomic(filepath.Join(dir, "failed.json"), b)
	}
}

// scanJobs recovers persisted jobs at startup, in id order. Jobs with a
// quarantine or failure marker are registered in that terminal state; the
// rest are resolved and handed back for readmission (resuming from their
// snapshot when one exists), carrying their persisted failed-attempt
// count so a crash-looping daemon cannot reset a poison job's retry
// budget. A corrupt persisted entry is set aside (renamed *.corrupt,
// logged) and never aborts the boot — one damaged file costs one job.
func (s *Server) scanJobs() ([]*Job, error) {
	root := filepath.Join(s.cfg.StateDir, "jobs")
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: scanning job state: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && !strings.HasSuffix(e.Name(), quarantineSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var recovered []*Job
	for _, name := range names {
		dir := filepath.Join(root, name)
		b, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a job dir; leave it alone
			}
			if aside := quarantineFile(dir); aside != "" {
				log.Printf("crispd: unreadable persisted job %s set aside as %s: %v", dir, aside, err)
			}
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(b, &pj); err != nil || pj.ID == "" {
			if aside := quarantineFile(dir); aside != "" {
				log.Printf("crispd: corrupt persisted job %s set aside as %s", dir, aside)
			}
			continue
		}
		if n := idNumber(pj.ID); n > s.nextID {
			s.nextID = n
		}
		job := &Job{ID: pj.ID, Digest: pj.Digest, Spec: pj.Spec, hub: obs.NewHub(s.cfg.TimelineBuffer), created: time.Now()}

		if qb, err := os.ReadFile(filepath.Join(dir, "quarantined.json")); err == nil {
			var rec quarantineRecord
			json.Unmarshal(qb, &rec)
			job.state = StateQuarantined
			job.errMsg = fmt.Sprintf("quarantined after %d failed attempts: %s", rec.Attempts, rec.Error)
			job.finished = job.created
			s.quarantine.Add(1)
			s.register(job)
			job.noteLifecycle(StateQuarantined, job.errMsg)
			job.hub.Close()
			continue
		}

		if fb, err := os.ReadFile(filepath.Join(dir, "failed.json")); err == nil {
			var rec map[string]string
			json.Unmarshal(fb, &rec)
			job.state = StateFailed
			job.errMsg = rec["error"]
			if job.errMsg == "" {
				job.errMsg = "failed in a previous daemon instance"
			}
			job.finished = job.created
			s.failed.Add(1)
			s.register(job)
			job.noteLifecycle(StateFailed, job.errMsg)
			job.hub.Close()
			continue
		}

		r, err := pj.Spec.resolve()
		if err != nil {
			job.state = StateFailed
			job.errMsg = "recovered spec no longer resolves: " + err.Error()
			job.finished = job.created
			s.failed.Add(1)
			s.register(job)
			s.markFailed(job, err)
			job.noteLifecycle(StateFailed, job.errMsg)
			job.hub.Close()
			continue
		}
		job.res = r
		job.Digest = r.digest

		// Failed attempts persist across restarts; a job already at the
		// quarantine threshold goes terminal here instead of re-running.
		if ab, err := os.ReadFile(filepath.Join(dir, "attempts.json")); err == nil {
			var rec attemptRecord
			if json.Unmarshal(ab, &rec) == nil && rec.Attempts > 0 {
				job.failedAttempts = rec.Attempts
				if rec.Attempts >= s.maxAttempts() {
					qerr := fmt.Errorf("%s (recovered at the attempt limit)", rec.LastError)
					job.state = StateQuarantined
					job.errMsg = fmt.Sprintf("quarantined after %d failed attempts: %v", rec.Attempts, qerr)
					job.finished = job.created
					s.quarantine.Add(1)
					s.markQuarantined(job, qerr, rec.Attempts)
					s.register(job)
					log.Printf("crispd: recovered job %s %s", job.ID, job.errMsg)
					job.noteLifecycle(StateQuarantined, job.errMsg)
					job.hub.Close()
					continue
				}
			}
		}

		job.state = StateQueued
		if len(snapshot.Candidates(dir)) > 0 {
			job.resumeFrom = dir
		}
		recovered = append(recovered, job)
	}
	return recovered, nil
}

func idNumber(id string) int {
	n := 0
	fmt.Sscanf(strings.TrimPrefix(id, "j"), "%d", &n)
	return n
}
