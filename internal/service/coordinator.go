package service

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"crisp/internal/obs"
	"crisp/internal/robust"
	"crisp/internal/robust/chaos"
	"crisp/internal/snapshot"
)

// The sharded execution tier: a coordinator decomposes a sweep into
// content-addressed tasks and schedules them across a fleet of shards —
// goroutine-isolated in-process executors by default, child worker
// processes over the wire protocol with Config.Isolate (the same
// processes a remote `crispd -worker-mode` peer would run). Robustness is
// the design center:
//
//   - Leases. A shard holds a time-bounded lease on its task, renewed by
//     heartbeat and by interval samples. A crashed shard (child SIGKILL,
//     OOM — classified KindCrash by the wire supervisor) revokes its own
//     lease on the way out; a silent one (dropped heartbeats) is caught
//     by the expiry monitor. Either way the task is reassigned to a
//     healthy shard.
//   - Checkpoint handoff. Each attempt checkpoints into its own
//     directory; a reassigned attempt resumes from the newest readable
//     checkpoint any prior attempt shipped, so a lost worker costs the
//     progress since its last checkpoint, never the task.
//   - Idempotent commit. Results are committed under the task's job
//     digest exactly once: a revoked-but-alive holder that finishes
//     anyway has its duplicate discarded by digest. Determinism makes
//     the race benign — both candidates are bit-identical — so losing
//     workers shrinks throughput, never correctness.
//
// Retries reuse the job tier's deterministic backoff (base·2^(n-1) with
// seeded jitter, keyed by digest and attempt); dispatch consults the
// federated caches (the coordinator's own store, and with isolation the
// worker's ResultsDir) before executing anything.

// Sweep admission defaults.
const (
	DefaultLeaseTTL      = 10 * time.Second
	DefaultMaxSweeps     = 16
	DefaultMaxSweepTasks = 512
)

// coordinator owns the sweep tier. One per server; nil until New wires it.
type coordinator struct {
	s *Server

	ttl     time.Duration
	hbEvery time.Duration
	shards  int

	mu      sync.Mutex
	sweeps  map[string]*Sweep
	order   []string
	byKey   map[string]*sweepTask
	cancels map[string]context.CancelFunc // running attempts by "key#epoch"
	nextID  int
	active  int // sweeps not yet terminal (admission bound)

	queue  chan *sweepTask
	leases *leaseTable
	stop   chan struct{}
	wg     sync.WaitGroup

	revocations atomic.Int64 // leases revoked: crashes + expiries
	expiries    atomic.Int64 // revocations caused by a missed heartbeat
	resumes     atomic.Int64 // reassigned attempts resuming from a checkpoint
	duplicates  atomic.Int64 // duplicate results discarded by digest
	fedHits     atomic.Int64 // dispatches answered from a federated cache
	tasksDone   atomic.Int64
	tasksFailed atomic.Int64
}

func newCoordinator(s *Server) *coordinator {
	cfg := s.cfg
	c := &coordinator{
		s:       s,
		ttl:     cfg.LeaseTTL,
		hbEvery: cfg.HeartbeatEvery,
		shards:  cfg.FleetWorkers,
		sweeps:  make(map[string]*Sweep),
		byKey:   make(map[string]*sweepTask),
		cancels: make(map[string]context.CancelFunc),
		stop:    make(chan struct{}),
	}
	// Capacity covers every task of every admissible sweep, so enqueue
	// and requeue never block a shard or a timer goroutine.
	c.queue = make(chan *sweepTask, cfg.MaxSweeps*cfg.MaxSweepTasks)
	c.leases = newLeaseTable(c.ttl)
	return c
}

// start launches the shard pool and the lease-expiry monitor.
func (c *coordinator) start() {
	for i := 0; i < c.shards; i++ {
		c.wg.Add(1)
		go c.shard(i)
	}
	c.wg.Add(1)
	go c.monitor()
}

// drain stops admission, cancels running attempts (isolated children get
// SIGTERM and flush a final snapshot), and waits for the shards to exit.
func (c *coordinator) drain() {
	c.mu.Lock()
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	cancels := make([]context.CancelFunc, 0, len(c.cancels))
	for _, cancel := range c.cancels {
		cancels = append(cancels, cancel)
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	c.wg.Wait()
}

// ---- admission -------------------------------------------------------

// SubmitSweep validates, decomposes, and admits one sweep. Errors:
// *ValidationError, ErrDraining, *QueueFullError (too many live sweeps).
func (s *Server) SubmitSweep(spec SweepSpec) (*Sweep, error) {
	return s.coord.submit(spec)
}

func (c *coordinator) submit(spec SweepSpec) (*Sweep, error) {
	specs, err := spec.decompose()
	if err != nil {
		return nil, &ValidationError{Err: err}
	}
	if len(specs) > c.s.cfg.MaxSweepTasks {
		return nil, &ValidationError{Err: fmt.Errorf("sweep expands to %d tasks; the limit is %d", len(specs), c.s.cfg.MaxSweepTasks)}
	}
	resolvedSpecs := make([]*resolved, len(specs))
	for i, js := range specs {
		r, err := js.resolve()
		if err != nil {
			return nil, &ValidationError{Err: fmt.Errorf("grid point %d: %w", i, err)}
		}
		resolvedSpecs[i] = r
	}

	c.mu.Lock()
	if c.s.Draining() || c.stopped() {
		c.mu.Unlock()
		return nil, ErrDraining
	}
	if c.active >= c.s.cfg.MaxSweeps {
		c.mu.Unlock()
		return nil, &QueueFullError{Depth: c.active, RetryAfter: 30 * time.Second}
	}
	c.nextID++
	sw := &Sweep{
		ID:      fmt.Sprintf("s%06d", c.nextID),
		Spec:    spec,
		hub:     obs.NewHub(c.s.cfg.TimelineBuffer),
		state:   StateRunning,
		created: time.Now(),
		started: time.Now(),
	}
	root := c.sweepDir(sw)
	for i, js := range specs {
		t := &sweepTask{
			sweep:  sw,
			index:  i,
			spec:   js,
			res:    resolvedSpecs[i],
			digest: resolvedSpecs[i].digest,
			state:  taskPending,
		}
		if root != "" {
			t.dir = filepath.Join(root, fmt.Sprintf("t%03d-%s", i, t.digest))
		}
		sw.tasks = append(sw.tasks, t)
		c.byKey[t.key()] = t
	}
	c.sweeps[sw.ID] = sw
	c.order = append(c.order, sw.ID)
	c.active++
	sw.note(StateRunning, fmt.Sprintf("sweep admitted: %d tasks across %d shards (lease ttl %v)", len(sw.tasks), c.shards, c.ttl))
	tasks := sw.tasks
	c.mu.Unlock()

	for _, t := range tasks {
		c.enqueue(t)
	}
	return sw, nil
}

// sweepDir picks the sweep's checkpoint-handoff root: under the state
// dir when persistence is on, a temp scratch dir otherwise (handoff must
// work for memory-only daemons too; the scratch is removed when the sweep
// finishes). "" disables handoff — attempts then restart from cycle 0.
func (c *coordinator) sweepDir(sw *Sweep) string {
	if c.s.cfg.StateDir != "" {
		dir := filepath.Join(c.s.cfg.StateDir, "sweeps", sw.ID)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return ""
		}
		return dir
	}
	dir, err := os.MkdirTemp("", "crispd-sweep-")
	if err != nil {
		return ""
	}
	sw.scratch = dir
	return dir
}

func (c *coordinator) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// enqueue hands a task to the shard pool. Never blocks: the queue's
// capacity covers every admissible task, and a stopped coordinator drops
// the task (sweeps are in-memory; they die with the process).
func (c *coordinator) enqueue(t *sweepTask) {
	select {
	case <-c.stop:
	case c.queue <- t:
	}
}

// ---- accessors -------------------------------------------------------

// SweepByID returns a tracked sweep.
func (s *Server) SweepByID(id string) (*Sweep, bool) {
	c := s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	return sw, ok
}

// Sweeps lists every tracked sweep in submission order.
func (s *Server) Sweeps() []*Sweep {
	c := s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Sweep, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.sweeps[id])
	}
	return out
}

// viewOfSweep snapshots a sweep for the wire. withTasks includes the
// per-task table (omitted in listings).
func (s *Server) viewOfSweep(sw *Sweep, withTasks bool) sweepView {
	c := s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	v := sweepView{
		ID:           sw.ID,
		State:        sw.state,
		Total:        len(sw.tasks),
		Done:         sw.doneN,
		Failed:       sw.failedN,
		MergedDigest: sw.merged,
		Revocations:  sw.revoked,
		Resumes:      sw.resumes,
		Duplicates:   sw.dups,
		Created:      stamp(sw.created),
		Started:      stamp(sw.started),
		Finished:     stamp(sw.finished),
		Events:       sw.hub.Stats().Published,
	}
	if withTasks {
		for _, t := range sw.tasks {
			tv := sweepTaskView{
				Index:    t.index,
				Digest:   t.digest,
				State:    t.state,
				Worker:   t.worker,
				Attempts: t.attempts,
				Resumed:  t.resumed,
				Cached:   t.cacheHit,
				Error:    t.errMsg,
				Spec:     t.spec,
			}
			if t.result != nil {
				tv.StatsDigest = t.result.StatsDigest
			}
			v.Tasks = append(v.Tasks, tv)
		}
	}
	return v
}

// CancelSweep cancels a sweep: running attempts are canceled (isolated
// children SIGTERMed), pending tasks never dispatch. Returns false when
// the sweep is already terminal.
func (s *Server) CancelSweep(id string) (bool, error) {
	c := s.coord
	c.mu.Lock()
	sw, ok := c.sweeps[id]
	if !ok {
		c.mu.Unlock()
		return false, fmt.Errorf("service: unknown sweep %q", id)
	}
	switch sw.state {
	case StateDone, StateFailed, StateCanceled:
		c.mu.Unlock()
		return false, nil
	}
	sw.canceled = true
	sw.state = StateCanceled
	sw.finished = time.Now()
	var cancels []context.CancelFunc
	prefix := sw.ID + "/"
	for key, cancel := range c.cancels {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			cancels = append(cancels, cancel)
		}
	}
	sw.note(StateCanceled, "sweep canceled")
	sw.hub.Close()
	c.finishCleanupLocked(sw, false)
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	return true, nil
}

// ---- dispatch and supervision ---------------------------------------

// shard is one fleet executor: it pulls tasks until drain.
func (c *coordinator) shard(id int) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case t := <-c.queue:
			c.runTask(id, t)
		}
	}
}

// runTask executes one dispatch of one task on one shard: federated cache
// check, lease grant, the attempt itself, then commit or failure handling
// — all keyed by the lease epoch so a revoked holder's late report is
// recognized as stale.
func (c *coordinator) runTask(shard int, t *sweepTask) {
	sw := t.sweep
	c.mu.Lock()
	if t.state != taskPending || sw.canceled || sw.state != StateRunning {
		c.mu.Unlock()
		return
	}
	// Federation, coordinator side: the shared content-addressed store
	// already holds this digest (a prior job, a prior sweep, another
	// task's commit, or a restored persisted cache) — commit without
	// executing.
	if sr, ok := c.s.cache.get(t.digest); ok {
		c.fedHits.Add(1)
		c.commitLocked(t, t.epoch, sr, true)
		c.mu.Unlock()
		return
	}
	deaf := c.s.chaosCtrl.TakeHBDrop(t.digest)
	epoch := c.leases.Grant(t.key(), shard, deaf)
	t.state, t.epoch, t.worker = taskLeased, epoch, shard
	attempt := t.attempts + 1
	resumeFrom := t.resumeFrom
	if resumeFrom != "" {
		t.resumed = true
		sw.resumes++
		c.resumes.Add(1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ckey := fmt.Sprintf("%s#%d", t.key(), epoch)
	c.cancels[ckey] = cancel
	detail := fmt.Sprintf("task %d (%s) leased to shard %d, attempt %d (epoch %d)", t.index, t.digest, shard, attempt, epoch)
	if resumeFrom != "" {
		if cyc, ok := snapshot.NewestCycle(resumeFrom); ok {
			detail += fmt.Sprintf(", resuming from shipped checkpoint at cycle %d", cyc)
		} else {
			detail += ", resuming"
		}
	}
	sw.note(StateRunning, detail)
	c.mu.Unlock()
	defer func() {
		cancel()
		c.mu.Lock()
		delete(c.cancels, ckey)
		c.mu.Unlock()
	}()

	stored, err := c.runShardAttempt(ctx, cancel, shard, t, attempt, resumeFrom, epoch)
	if err == nil {
		if d := c.s.chaosCtrl.CompletionDelay(); d > 0 {
			sleepBackoff(ctx, d)
		}
		c.mu.Lock()
		c.commitLocked(t, epoch, stored, false)
		c.mu.Unlock()
		return
	}
	c.handleFailure(t, epoch, err)
}

// runShardAttempt runs one attempt on this shard, renewing the task's
// lease on a wall-clock ticker (the worker→coordinator heartbeat) and on
// every interval sample. A renewal that comes back negative means the
// lease was revoked under us — the attempt is abandoned via cancel, the
// distributed-system equivalent of a fencing token.
func (c *coordinator) runShardAttempt(ctx context.Context, cancel context.CancelFunc, shard int, t *sweepTask, attempt int, resumeFrom string, epoch uint64) (*StoredResult, error) {
	key := t.key()
	renew := func() {
		if d := c.s.chaosCtrl.HeartbeatDelay(); d > 0 {
			time.Sleep(d)
		}
		if !c.leases.Renew(key, epoch) {
			cancel()
		}
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(c.hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				renew()
			}
		}
	}()
	defer func() {
		close(hbStop)
		hbWG.Wait()
	}()

	killAt, armed := c.s.chaosCtrl.TakeKill(t.digest)
	if !armed {
		killAt = 0
	}
	ckptDir := t.attemptDir(attempt)
	onSample := func(smp obs.Sample) {
		t.sweep.hub.Publish(obs.TimelineEvent{Cycle: smp.Cycle, Kind: obs.TimelineSample, Sample: &smp})
		if !c.leases.Renew(key, epoch) {
			cancel()
		}
	}

	if c.s.cfg.Isolate {
		req := workerRequest{
			Spec:             t.spec,
			ResumeDir:        resumeFrom,
			CheckpointDir:    ckptDir,
			CheckpointEvery:  c.s.cfg.CheckpointEvery,
			ResultsDir:       c.s.resultsDir(),
			Budget:           t.res.budget,
			Watchdog:         t.res.wdog,
			ProgressInterval: c.s.cfg.ProgressInterval,
			RunWorkers:       c.s.cfg.RunWorkers,
			HeartbeatEvery:   int64(c.hbEvery),
			KillAt:           killAt,
		}
		if req.Budget == 0 {
			req.Budget = c.s.cfg.DefaultBudget
		}
		if req.Watchdog == 0 {
			req.Watchdog = c.s.cfg.WatchdogWindow
		}
		return c.s.runWorkerProcess(ctx, req, attemptHooks{
			onSample:    onSample,
			onHeartbeat: renew,
			onCached:    func() { c.fedHits.Add(1) },
		}, fmt.Sprintf("sweep task %s", key))
	}

	p := c.s.paramsFor(t.res, resumeFrom, ckptDir, killAt)
	stored, wall, err := runDirect(ctx, p, attemptHooks{
		onSample: onSample,
		onKill:   func(cycle int64) { panic(chaos.Injected(cycle)) },
	})
	c.s.observeRunTime(wall)
	return stored, err
}

// commitLocked commits one result for a task — exactly once. The caller
// holds c.mu. A second result for an already-done task (a revoked holder
// that finished anyway) is discarded as a duplicate; determinism
// guarantees the discarded bytes equal the committed ones, which the
// lease-expiry race test asserts literally.
func (c *coordinator) commitLocked(t *sweepTask, epoch uint64, stored *StoredResult, fromCache bool) {
	sw := t.sweep
	c.leases.Release(t.key(), epoch)
	if sw.canceled || sw.state != StateRunning {
		return
	}
	if t.state == taskDone {
		sw.dups++
		c.duplicates.Add(1)
		sw.note(StateRunning, fmt.Sprintf("task %d (%s): duplicate result from revoked lease (epoch %d) discarded by digest", t.index, t.digest, epoch))
		return
	}
	t.state = taskDone
	t.result = stored
	t.cacheHit = fromCache
	t.errMsg = ""
	sw.doneN++
	c.tasksDone.Add(1)
	if !fromCache {
		// Federation, write side: the result joins the shared store under
		// its digest, visible to jobs, future sweeps, and worker-local
		// caches alike.
		c.s.cache.put(stored)
	}
	src := "executed"
	if fromCache {
		src = "from federated cache"
	}
	sw.note(StateRunning, fmt.Sprintf("task %d (%s) done %s: stats_digest=%s (%d/%d)", t.index, t.digest, src, stored.StatsDigest, sw.doneN, len(sw.tasks)))
	c.maybeFinishLocked(sw)
}

// handleFailure resolves a failed attempt. Reports carrying a stale epoch
// (the lease was revoked while the attempt ran) are dropped — the task
// was already reassigned. A retryable failure revokes the lease, counts a
// revocation, and requeues the task after the deterministic backoff,
// resuming from the best shipped checkpoint; a permanent one fails the
// task; exhaustion of the attempt budget fails it too (the sweep-tier
// quarantine equivalent).
func (c *coordinator) handleFailure(t *sweepTask, epoch uint64, err error) {
	sw := t.sweep
	c.mu.Lock()
	if t.state != taskLeased || t.epoch != epoch {
		// Stale: a revoked holder reporting after reassignment.
		c.leases.Release(t.key(), epoch)
		c.mu.Unlock()
		return
	}
	c.leases.Release(t.key(), epoch)
	if sw.canceled || sw.state != StateRunning || c.stopped() {
		t.state = taskPending
		c.mu.Unlock()
		return
	}
	if se, ok := robust.AsSimError(err); ok && robust.DeepestKind(se) == robust.KindCanceled {
		// Canceled without the sweep being canceled: the lease was revoked
		// under a live attempt (fencing) — the expiry path already
		// requeued; nothing to do here. Treat like stale.
		t.state = taskPending
		c.mu.Unlock()
		return
	}
	if !robust.RetryableError(err) {
		c.failTaskLocked(t, err)
		c.mu.Unlock()
		return
	}

	// A crashed or failed holder revokes its lease on the way out.
	sw.revoked++
	c.revocations.Add(1)
	t.attempts++
	if t.attempts >= c.s.maxAttempts() {
		c.failTaskLocked(t, fmt.Errorf("task exhausted %d attempts: %w", t.attempts, err))
		c.mu.Unlock()
		return
	}
	t.state = taskPending
	t.epoch = 0
	t.resumeFrom = t.bestResume(t.attempts)
	// Chaos: damage the newest checkpoint before the resume, forcing the
	// fallback-to-previous path on the next attempt.
	if t.resumeFrom != "" {
		if mode, ok := c.s.chaosCtrl.TakeCorrupt(t.digest); ok {
			if p, cerr := chaos.Corrupt(t.resumeFrom, mode, c.s.cfg.Chaos.Seed); cerr == nil {
				log.Printf("crispd: chaos: %s-corrupted checkpoint %s (sweep task %s)", mode, p, t.key())
			}
		}
	}
	delay := c.s.backoffDelay(t.digest, t.attempts+1)
	sw.note(StateRunning, fmt.Sprintf("task %d (%s): lease revoked after attempt %d (%v); retrying in %v", t.index, t.digest, t.attempts, err, delay))
	log.Printf("crispd: sweep task %s attempt %d failed, retrying in %v: %v", t.key(), t.attempts, delay, err)
	c.mu.Unlock()
	time.AfterFunc(delay, func() { c.enqueue(t) })
}

// failTaskLocked marks a task terminally failed (caller holds c.mu).
func (c *coordinator) failTaskLocked(t *sweepTask, err error) {
	sw := t.sweep
	t.state = taskFailed
	t.errMsg = err.Error()
	sw.failedN++
	c.tasksFailed.Add(1)
	sw.note(StateFailed, fmt.Sprintf("task %d (%s) failed: %v", t.index, t.digest, err))
	c.maybeFinishLocked(sw)
}

// maybeFinishLocked finishes the sweep once every task is terminal
// (caller holds c.mu). A fully successful sweep computes its merged
// digest — the fleet-vs-single-node convergence observable — and its
// transient checkpoint scratch is removed (results live in the cache).
func (c *coordinator) maybeFinishLocked(sw *Sweep) {
	if sw.state != StateRunning || sw.doneN+sw.failedN < len(sw.tasks) {
		return
	}
	sw.finished = time.Now()
	if sw.failedN > 0 {
		sw.state = StateFailed
		sw.note(StateFailed, fmt.Sprintf("sweep failed: %d/%d tasks failed", sw.failedN, len(sw.tasks)))
		sw.hub.Close()
		c.finishCleanupLocked(sw, false)
		return
	}
	sw.state = StateDone
	sw.merged = sw.mergedDigest()
	sw.note(StateDone, fmt.Sprintf("sweep done: %d tasks, merged_digest=%s, revocations=%d, resumes=%d, duplicates=%d",
		len(sw.tasks), sw.merged, sw.revoked, sw.resumes, sw.dups))
	sw.hub.Close()
	c.finishCleanupLocked(sw, true)
}

// finishCleanupLocked releases a terminal sweep's resources (caller holds
// c.mu): its admission slot, its lease-table keys, and — when the sweep
// succeeded — its checkpoint directories (kept for postmortems
// otherwise, except memory-only scratch which always goes).
func (c *coordinator) finishCleanupLocked(sw *Sweep, removeDirs bool) {
	c.active--
	for _, t := range sw.tasks {
		delete(c.byKey, t.key())
	}
	scratch := sw.scratch
	var stateDir string
	if removeDirs && c.s.cfg.StateDir != "" {
		stateDir = filepath.Join(c.s.cfg.StateDir, "sweeps", sw.ID)
	}
	if scratch != "" || stateDir != "" {
		go func() {
			if scratch != "" {
				os.RemoveAll(scratch)
			}
			if stateDir != "" {
				os.RemoveAll(stateDir)
			}
		}()
	}
}

// ---- lease expiry ----------------------------------------------------

// monitor is the lease-expiry scanner: leases whose holders went silent
// are revoked and their tasks reassigned immediately (the TTL already
// was the grace period — no extra backoff).
func (c *coordinator) monitor() {
	defer c.wg.Done()
	period := c.ttl / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			for _, exp := range c.leases.Expired(time.Now()) {
				c.expire(exp)
			}
		}
	}
}

// expire revokes one expired lease and reassigns its task. The revoked
// holder — if it is in fact still alive — keeps running until its next
// renewal attempt fences it off (or it finishes, and its result is
// discarded as a duplicate).
func (c *coordinator) expire(exp expiredLease) {
	c.mu.Lock()
	t, ok := c.byKey[exp.key]
	if !ok || t.state != taskLeased || t.epoch != exp.epoch {
		c.mu.Unlock()
		return
	}
	sw := t.sweep
	c.expiries.Add(1)
	c.revocations.Add(1)
	sw.revoked++
	t.attempts++
	if sw.canceled || sw.state != StateRunning {
		t.state = taskPending
		c.mu.Unlock()
		return
	}
	if t.attempts >= c.s.maxAttempts() {
		c.failTaskLocked(t, fmt.Errorf("task exhausted %d attempts: lease on shard %d expired (missed heartbeats)", t.attempts, exp.worker))
		c.mu.Unlock()
		return
	}
	t.state = taskPending
	t.epoch = 0
	t.resumeFrom = t.bestResume(t.attempts)
	sw.note(StateRunning, fmt.Sprintf("task %d (%s): lease on shard %d revoked (heartbeats missed for %v); reassigning", t.index, t.digest, exp.worker, c.ttl))
	log.Printf("crispd: sweep task %s: lease on shard %d expired; reassigning", exp.key, exp.worker)
	c.mu.Unlock()
	c.enqueue(t)
}

// ---- stats -----------------------------------------------------------

// FleetStats is the coordinator's counter snapshot, embedded in the
// server Stats.
type FleetStats struct {
	Shards           int
	SweepsActive     int
	SweepsByState    map[State]int
	TasksDone        int64
	TasksFailed      int64
	LeaseGrants      int64
	LeaseRenewals    int64
	LeaseExpirations int64
	LeaseRevocations int64
	FleetResumes     int64
	DuplicateResults int64
	FederatedHits    int64
	HeartbeatDrops   int64
}

func (c *coordinator) stats() FleetStats {
	grants, renewals, _ := c.leases.Counters()
	fs := FleetStats{
		Shards:           c.shards,
		SweepsByState:    make(map[State]int),
		TasksDone:        c.tasksDone.Load(),
		TasksFailed:      c.tasksFailed.Load(),
		LeaseGrants:      grants,
		LeaseRenewals:    renewals,
		LeaseExpirations: c.expiries.Load(),
		LeaseRevocations: c.revocations.Load(),
		FleetResumes:     c.resumes.Load(),
		DuplicateResults: c.duplicates.Load(),
		FederatedHits:    c.fedHits.Load(),
		HeartbeatDrops:   c.s.chaosCtrl.HeartbeatDrops(),
	}
	c.mu.Lock()
	fs.SweepsActive = c.active
	for _, sw := range c.sweeps {
		fs.SweepsByState[sw.state]++
	}
	c.mu.Unlock()
	return fs
}
