package service

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	crisp "crisp"
	"crisp/internal/config"
)

// StoredResult is the JSON-serializable summary a completed job leaves in
// the content-addressed result cache. It carries everything the paper's
// experiments compare runs by — cycle count, frame time, scheduler slot
// conservation, per-task statistics — plus the stats digest, which two
// runs share iff their results are bit-identical.
type StoredResult struct {
	Digest       string `json:"digest"`
	GPU          string `json:"gpu"`
	ConfigDigest string `json:"config_digest"`
	Scene        string `json:"scene,omitempty"`
	Compute      string `json:"compute,omitempty"`
	// Scenario is the mix name for N-tenant scenario jobs (Scene/Compute
	// empty); Tenants/DeadlinesMet/DeadlinesMissed summarize its QoS report.
	Scenario        string `json:"scenario,omitempty"`
	Tenants         int    `json:"tenants,omitempty"`
	DeadlinesMet    int    `json:"deadlines_met,omitempty"`
	DeadlinesMissed int    `json:"deadlines_missed,omitempty"`
	Policy          string `json:"policy"`

	Cycles      int64   `json:"cycles"`
	FrameTimeMS float64 `json:"frame_time_ms"`
	// StatsDigest is the FNV hash of makespan + scheduler slots + every
	// per-stream counter (core.Result.StatsDigest), in hex.
	StatsDigest string      `json:"stats_digest"`
	SchedSlots  int64       `json:"sched_slots"`
	EmptySlots  int64       `json:"empty_slots"`
	L2Lines     int         `json:"l2_lines"`
	Kernels     int         `json:"kernels"`
	Tasks       []TaskStats `json:"tasks"`

	// Host-side accounting (informational; not content-addressed).
	SimWallMS float64 `json:"sim_wall_ms"`
	Resumed   bool    `json:"resumed,omitempty"`
}

// TaskStats is one task's end-of-run statistics.
type TaskStats struct {
	Task        int     `json:"task"`
	WarpInsts   int64   `json:"warp_insts"`
	IPC         float64 `json:"ipc"`
	L1HitRate   float64 `json:"l1_hit_rate"`
	L2HitRate   float64 `json:"l2_hit_rate"`
	DRAMReadKB  int64   `json:"dram_read_kb"`
	DRAMWriteKB int64   `json:"dram_write_kb"`
}

// storedFromResult summarizes a completed simulation for the cache.
func storedFromResult(r *resolved, res *crisp.Result, wallMS float64) (*StoredResult, error) {
	sd, err := res.StatsDigest()
	if err != nil {
		return nil, err
	}
	sr := &StoredResult{
		Digest:       r.digest,
		GPU:          r.cfg.Name,
		ConfigDigest: config.Digest(r.cfg),
		Scene:        r.scene,
		Compute:      r.compute,
		Policy:       string(res.Policy),
		Cycles:       res.Cycles,
		FrameTimeMS:  res.FrameTimeMS,
		StatsDigest:  fmt.Sprintf("%016x", sd),
		SchedSlots:   res.SchedSlots,
		EmptySlots:   res.EmptySlots,
		L2Lines:      res.L2Lines,
		Kernels:      len(res.Kernels),
		SimWallMS:    wallMS,
		Resumed:      res.Resumed,
	}
	if r.isMix() {
		sr.Scenario = r.mix.Name
	}
	if res.QoS != nil {
		sr.Tenants = len(res.QoS.Tenants)
		for _, tr := range res.QoS.Tenants {
			sr.DeadlinesMet += tr.DeadlinesMet
			sr.DeadlinesMissed += tr.DeadlinesMissed
		}
	}
	tasks := make([]int, 0, len(res.PerTask))
	for task := range res.PerTask {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		st := res.PerTask[task]
		sr.Tasks = append(sr.Tasks, TaskStats{
			Task:        task,
			WarpInsts:   st.WarpInsts,
			IPC:         st.IPC(),
			L1HitRate:   st.L1HitRate(),
			L2HitRate:   st.L2HitRate(),
			DRAMReadKB:  st.DRAMReads / 1024,
			DRAMWriteKB: st.DRAMWrites / 1024,
		})
	}
	return sr, nil
}

// resultCache is the content-addressed result store: an in-memory map,
// mirrored to <stateDir>/results/<digest>.json when persistence is on so
// a restarted daemon serves yesterday's results without re-simulating.
type resultCache struct {
	mu  sync.Mutex
	m   map[string]*StoredResult
	dir string // "" = memory only
}

func newResultCache(dir string) *resultCache {
	return &resultCache{m: make(map[string]*StoredResult), dir: dir}
}

func (c *resultCache) get(digest string) (*StoredResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.m[digest]
	return sr, ok
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// put stores the result, persisting it best-effort: a full disk must not
// fail a simulation that already succeeded.
func (c *resultCache) put(sr *StoredResult) {
	c.mu.Lock()
	c.m[sr.Digest] = sr
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return
	}
	writeFileAtomic(filepath.Join(c.dir, sr.Digest+".json"), b)
}

// load reads every persisted result into memory (startup). A corrupt
// entry is set aside (renamed *.corrupt, logged) and costs one
// re-simulation — it never aborts the boot.
func (c *resultCache) load() {
	if c.dir == "" {
		return
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".series.json") {
			continue
		}
		path := filepath.Join(c.dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var sr StoredResult
		if err := json.Unmarshal(b, &sr); err != nil || sr.Digest == "" {
			if aside := quarantineFile(path); aside != "" {
				log.Printf("crispd: corrupt cached result %s set aside as %s", path, aside)
			}
			continue
		}
		c.mu.Lock()
		c.m[sr.Digest] = &sr
		c.mu.Unlock()
	}
}
