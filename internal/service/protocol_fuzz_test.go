package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crisp/internal/obs"
)

// TestDecodeWorkerEvent pins the validation matrix the fuzzer explores:
// every well-formed event type round-trips, and each way a line can be
// malformed is an error, not a panic and not a half-valid event.
func TestDecodeWorkerEvent(t *testing.T) {
	valid := []workerEvent{
		{Type: evSample, Sample: &obs.Sample{Cycle: 4096}},
		{Type: evFallback, Corrupt: []string{"ckpt-000001.crisp"}},
		{Type: evHeartbeat},
		{Type: evResult, Result: &StoredResult{Digest: "0123456789abcdef", StatsDigest: "feedfacefeedface"}},
		{Type: evResult, Result: &StoredResult{Digest: "0123456789abcdef"}, Cached: true},
		{Type: evError, ErrKind: "crash", ErrCycle: 9000, ErrMsg: "sim crash at cycle 9000"},
	}
	for _, want := range valid {
		line, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := decodeWorkerEvent(line)
		if err != nil {
			t.Errorf("valid %s event rejected: %v", want.Type, err)
			continue
		}
		if got.Type != want.Type || got.Cached != want.Cached {
			t.Errorf("round trip mangled %s event: %+v", want.Type, got)
		}
	}

	invalid := map[string]string{
		"empty line":           "",
		"not json":             "not json at all",
		"json scalar":          `42`,
		"json array":           `[1,2,3]`,
		"no type":              `{}`,
		"unknown type":         `{"type":"gossip"}`,
		"unknown field":        `{"type":"heartbeat","surprise":true}`,
		"sample sans payload":  `{"type":"sample"}`,
		"result sans payload":  `{"type":"result"}`,
		"result digest short":  `{"type":"result","result":{"digest":"abc"}}`,
		"result digest upper":  `{"type":"result","result":{"digest":"0123456789ABCDEF"}}`,
		"error sans kind":      `{"type":"error","err_msg":"boom"}`,
		"type wrong json kind": `{"type":7}`,
		"truncated":            `{"type":"sample","sample":{"cycle":`,
	}
	for name, line := range invalid {
		if ev, err := decodeWorkerEvent([]byte(line)); err == nil {
			t.Errorf("%s accepted: %+v", name, ev)
		}
	}

	oversized := []byte(`{"type":"heartbeat","err_msg":"` + strings.Repeat("x", maxWireEvent) + `"}`)
	if _, err := decodeWorkerEvent(oversized); err == nil {
		t.Error("oversized line accepted")
	}
}

// FuzzWireDecode is the never-panic contract on the coordinator↔worker
// protocol: arbitrary bytes — a corrupted pipe, a truncated write, an
// adversarial peer — must decode to an error or to an event that carries
// everything its type promises. The CI wire-fuzz job runs this for a 10s
// smoke on every push.
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: every valid event shape plus the interesting rejections.
	seeds := []string{
		`{"type":"sample","sample":{"cycle":4096,"frames":1}}`,
		`{"type":"fallback","corrupt":["ckpt-000001.crisp","ckpt-000002.crisp"]}`,
		`{"type":"heartbeat"}`,
		`{"type":"result","result":{"digest":"0123456789abcdef","stats_digest":"feedfacefeedface","cycles":65536}}`,
		`{"type":"result","result":{"digest":"0123456789abcdef"},"cached":true}`,
		`{"type":"error","err_kind":"crash","err_cycle":9000,"err_msg":"sim crash at cycle 9000"}`,
		`{"type":"gossip"}`,
		`{"type":"sample"}`,
		`{"type":"result","result":{"digest":"xyz"}}`,
		`{}`,
		``,
		`null`,
		`"heartbeat"`,
		`{"type":"heartbeat"`,
		"\x00\x01\x02",
		`{"type":"heartbeat","sample":null,"result":null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := decodeWorkerEvent(line)
		if err != nil {
			if ev != nil {
				t.Fatalf("error return with non-nil event: %+v", ev)
			}
			return
		}
		// A decoded event must honor its type's promises — the supervisor
		// dereferences these without further checks.
		switch ev.Type {
		case evSample:
			if ev.Sample == nil {
				t.Fatal("sample event decoded without a sample")
			}
		case evResult:
			if ev.Result == nil {
				t.Fatal("result event decoded without a result")
			}
			if !validDigest(ev.Result.Digest) {
				t.Fatalf("result event decoded with invalid digest %q", ev.Result.Digest)
			}
		case evError:
			if ev.ErrKind == "" {
				t.Fatal("error event decoded without a kind")
			}
		case evFallback, evHeartbeat:
		default:
			t.Fatalf("unknown type %q decoded without error", ev.Type)
		}
		// Valid events re-encode losslessly modulo field ordering: encode
		// and re-decode, and the result must be accepted too (the protocol
		// is self-consistent — what one end writes, the other end reads).
		reenc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("re-encode of accepted event failed: %v", err)
		}
		ev2, err := decodeWorkerEvent(reenc)
		if err != nil {
			t.Fatalf("re-encoded accepted event rejected: %v\n%s", err, reenc)
		}
		if ev2.Type != ev.Type {
			t.Fatalf("type changed across re-encode: %q -> %q", ev.Type, ev2.Type)
		}
		_ = bytes.Equal(line, reenc)
	})
}
