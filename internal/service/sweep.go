package service

import (
	"fmt"
	"path/filepath"
	"time"

	"crisp/internal/experiments"
	"crisp/internal/obs"
	"crisp/internal/snapshot"
)

// SweepSpec is the submission body of POST /v1/sweeps: a policy ×
// workload × config grid (internal/experiments decomposition) plus the
// per-job options every cell shares. The coordinator expands it into one
// task per grid point, each content-addressed by the same
// snapshot.Spec.JobDigest a direct submission of that cell would get —
// which is what lets fleet results, single-node results, and cached
// results merge under one key.
type SweepSpec struct {
	// GPUs, Scenes, Computes, Policies are the grid axes (see
	// experiments.Grid): an empty axis contributes one default entry; a ""
	// element inside Scenes/Computes means "no workload on this axis for
	// that point".
	GPUs     []string `json:"gpus,omitempty"`
	Scenes   []string `json:"scenes,omitempty"`
	Computes []string `json:"computes,omitempty"`
	Policies []string `json:"policies,omitempty"`
	// Scenarios lists N-tenant mix presets; each crosses with GPUs and
	// Policies and expands after the pair points (see experiments.Grid).
	Scenarios []string `json:"scenarios,omitempty"`
	// Shared per-cell options, forwarded into each JobSpec verbatim.
	Width          int   `json:"width,omitempty"`
	Height         int   `json:"height,omitempty"`
	LoD            *bool `json:"lod,omitempty"`
	CycleBudget    int64 `json:"cycle_budget,omitempty"`
	WatchdogWindow int64 `json:"watchdog_window,omitempty"`
}

// decompose expands the grid into concrete job specs, in the grid's
// deterministic order — decomposed twice (or on two coordinators), a
// sweep yields the same task list and therefore the same merged digest.
func (sp *SweepSpec) decompose() ([]JobSpec, error) {
	g := experiments.Grid{GPUs: sp.GPUs, Scenes: sp.Scenes, Computes: sp.Computes,
		Policies: sp.Policies, Scenarios: sp.Scenarios}
	pts := g.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("sweep grid expands to zero runnable points (every cell needs a scene, a compute workload, or a scenario)")
	}
	specs := make([]JobSpec, 0, len(pts))
	for _, pt := range pts {
		specs = append(specs, JobSpec{
			GPU:            pt.GPU,
			Scene:          pt.Scene,
			Compute:        pt.Compute,
			Scenario:       pt.Scenario,
			Policy:         pt.Policy,
			Width:          sp.Width,
			Height:         sp.Height,
			LoD:            sp.LoD,
			CycleBudget:    sp.CycleBudget,
			WatchdogWindow: sp.WatchdogWindow,
		})
	}
	return specs, nil
}

// Task lifecycle states inside a sweep. Unlike jobs, tasks have no
// queued/running split visible to clients — a leased task is running on
// some shard (or presumed to be, until its lease says otherwise).
type taskState string

const (
	taskPending taskState = "pending"
	taskLeased  taskState = "leased"
	taskDone    taskState = "done"
	taskFailed  taskState = "failed"
)

// sweepTask is one grid cell of one sweep. Mutable fields are guarded by
// the coordinator's mutex.
type sweepTask struct {
	sweep  *Sweep
	index  int
	spec   JobSpec
	res    *resolved
	digest string
	// dir is the task's checkpoint-handoff root; each attempt writes into
	// its own subdirectory (a1, a2, ...) so a reassigned attempt resumes
	// from a dead shard's checkpoints without ever sharing a write path
	// with a still-running orphan.
	dir string

	state      taskState
	epoch      uint64 // current lease epoch (meaningful while leased)
	worker     int    // shard holding the lease
	attempts   int    // failed or revoked attempts so far
	resumeFrom string // checkpoint dir the next attempt resumes from
	resumed    bool   // some committed or running attempt resumed from a checkpoint
	cacheHit   bool   // committed from a cache, not an execution
	result     *StoredResult
	errMsg     string
}

// key is the lease-table key: unique across sweeps.
func (t *sweepTask) key() string {
	return t.sweep.ID + "/" + fmt.Sprint(t.index)
}

// attemptDir is attempt n's private checkpoint directory ("" when the
// sweep has no handoff root).
func (t *sweepTask) attemptDir(n int) string {
	if t.dir == "" {
		return ""
	}
	return filepath.Join(t.dir, fmt.Sprintf("a%d", n))
}

// bestResume picks the attempt directory holding the newest readable
// checkpoint — the handoff point a reassigned attempt resumes from. ""
// when no attempt shipped a checkpoint yet (the retry restarts at cycle
// 0, losing progress but never the task).
func (t *sweepTask) bestResume(upTo int) string {
	best, bestCycle := "", int64(-1)
	for n := 1; n <= upTo; n++ {
		dir := t.attemptDir(n)
		if dir == "" {
			return ""
		}
		if cyc, ok := snapshot.NewestCycle(dir); ok && cyc > bestCycle {
			best, bestCycle = dir, cyc
		}
	}
	return best
}

// Sweep is one tracked sweep submission. Mutable fields are guarded by
// the coordinator's mutex.
type Sweep struct {
	ID   string
	Spec SweepSpec

	// hub is the sweep's merged progress stream: per-task lifecycle
	// markers (dispatch, commit, revocation, duplicate discard) and the
	// shards' interval samples, interleaved — the same ring/SSE machinery
	// jobs use.
	hub *obs.Hub

	tasks []*sweepTask

	state    State
	canceled bool
	created  time.Time
	started  time.Time
	finished time.Time
	scratch  string // temp checkpoint root to remove when finished ("" = none)
	merged   string // merged digest, set when every task committed

	doneN   int
	failedN int
	// Per-sweep robustness accounting (mirrored by the server-wide
	// counters; these make one sweep's story self-contained).
	revoked int // leases revoked (crash or expiry) for this sweep's tasks
	resumes int // reassigned attempts that resumed from a shipped checkpoint
	dups    int // duplicate results discarded by digest
}

// note publishes a lifecycle marker on the sweep's timeline.
func (sw *Sweep) note(state State, detail string) {
	var cycle int64
	if ev, ok := sw.hub.Latest(""); ok {
		cycle = ev.Cycle
	}
	sw.hub.Publish(obs.TimelineEvent{Cycle: cycle, Kind: obs.TimelineLifecycle, State: string(state), Detail: detail})
}

// mergedDigest folds the sweep's per-task (job digest, stats digest)
// pairs, in task order, through the canonical hasher. Two sweeps share a
// merged digest iff every cell produced bit-identical results — the
// fleet-vs-single-node convergence observable.
func (sw *Sweep) mergedDigest() string {
	h := snapshot.NewHasher()
	h.PutInt(len(sw.tasks))
	for _, t := range sw.tasks {
		h.PutStr(t.digest)
		if t.result != nil {
			h.PutStr(t.result.StatsDigest)
		} else {
			h.PutStr("")
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ---- wire views ------------------------------------------------------

// sweepTaskView is one task's status on the wire.
type sweepTaskView struct {
	Index       int       `json:"index"`
	Digest      string    `json:"digest"`
	State       taskState `json:"state"`
	Worker      int       `json:"worker,omitempty"`
	Attempts    int       `json:"attempts,omitempty"`
	Resumed     bool      `json:"resumed,omitempty"`
	Cached      bool      `json:"cached,omitempty"`
	StatsDigest string    `json:"stats_digest,omitempty"`
	Error       string    `json:"error,omitempty"`
	Spec        JobSpec   `json:"spec"`
}

// sweepView is a sweep's status on the wire.
type sweepView struct {
	ID           string          `json:"id"`
	State        State           `json:"state"`
	Tasks        []sweepTaskView `json:"tasks,omitempty"`
	Total        int             `json:"total"`
	Done         int             `json:"done"`
	Failed       int             `json:"failed,omitempty"`
	MergedDigest string          `json:"merged_digest,omitempty"`
	Revocations  int             `json:"lease_revocations,omitempty"`
	Resumes      int             `json:"checkpoint_resumes,omitempty"`
	Duplicates   int             `json:"duplicates_discarded,omitempty"`
	Created      string          `json:"created,omitempty"`
	Started      string          `json:"started,omitempty"`
	Finished     string          `json:"finished,omitempty"`
	// Events is the sweep timeline's newest sequence number — pass it as
	// Last-Event-ID to resume the SSE stream from here.
	Events uint64 `json:"events,omitempty"`
}
