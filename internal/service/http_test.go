package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, jobView) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	json.NewDecoder(resp.Body).Decode(&v)
	return resp, v
}

func getJob(t *testing.T, url, id string) jobView {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// TestHTTPLifecycle drives the full wire API: submit, poll to completion,
// resubmit for a cache hit, fetch by digest, list, metrics.
func TestHTTPLifecycle(t *testing.T) {
	s, err := New(Config{Workers: 1, ProgressInterval: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, created := postJob(t, ts.URL, tinySpec("SPL", "", "serial"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d, want 201", resp.StatusCode)
	}
	if created.ID == "" || created.Digest == "" || created.State != StateQueued {
		t.Fatalf("unexpected creation view: %+v", created)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var final jobView
	for {
		final = getJob(t, ts.URL, created.ID)
		if final.State == StateDone {
			break
		}
		if final.State == StateFailed || final.State == StateCanceled {
			t.Fatalf("job ended %s: %s", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", final.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Result == nil || final.Result.Cycles <= 0 || final.Result.StatsDigest == "" {
		t.Fatalf("done job carries no result payload: %+v", final.Result)
	}

	// Identical resubmission: instant done, flagged cached.
	resp2, hit := postJob(t, ts.URL, tinySpec("SPL", "", "serial"))
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit status %d", resp2.StatusCode)
	}
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("resubmission state=%s cached=%v, want instant cache hit", hit.State, hit.Cached)
	}
	if hit.Digest != created.Digest {
		t.Fatalf("identical jobs got digests %s vs %s", hit.Digest, created.Digest)
	}

	// Content-addressed fetch.
	rresp, err := http.Get(ts.URL + "/v1/results/" + created.Digest)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var sr StoredResult
	json.NewDecoder(rresp.Body).Decode(&sr)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || sr.StatsDigest != final.Result.StatsDigest {
		t.Fatalf("result fetch: status %d digest %s, want 200 %s",
			rresp.StatusCode, sr.StatsDigest, final.Result.StatsDigest)
	}
	if miss, _ := http.Get(ts.URL + "/v1/results/ffffffffffffffff"); miss.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest status %d, want 404", miss.StatusCode)
	}

	// Listing includes both submissions.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if len(listing.Jobs) != 2 {
		t.Errorf("listing has %d jobs, want 2", len(listing.Jobs))
	}

	// Metrics expose the counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"crispd_executions_total 1",
		"crispd_cache_hits_total 1",
		"crispd_jobs_total{state=\"done\"} 2",
		"crispd_draining 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Health.
	if h, _ := http.Get(ts.URL + "/healthz"); h.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200", h.StatusCode)
	}
}

// TestHTTPQueueFull asserts the wire contract of admission control: 429
// with a positive integer Retry-After header.
func TestHTTPQueueFull(t *testing.T) {
	s, err := New(Config{QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Workers intentionally not started: the queue cannot drain under us.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postJob(t, ts.URL, tinySpec("SPL", "", "serial")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	resp, _ := postJob(t, ts.URL, tinySpec("SPL", "", "EVEN"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", ra)
	}

	s.Start()
	defer s.Drain(context.Background())
}

// TestHTTPBadRequests maps malformed submissions to 400.
func TestHTTPBadRequests(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":       "{",
		"unknown field":  `{"scen": "SPL"}`,
		"no workload":    `{}`,
		"unknown scene":  `{"scene": "nope"}`,
		"unknown policy": `{"scene": "SPL", "policy": "nope"}`,
		"bad config":     `{"scene": "SPL", "config": {"base": "NoSuchGPU"}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/j999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPDrainRejects asserts a draining server refuses new work with 503
// and goes unready — while liveness stays 200: a draining daemon is alive,
// just not accepting traffic, and restarting it would lose the drain.
func TestHTTPDrainRejects(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusOK {
		t.Errorf("readyz before drain status %d, want 200", r.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, _ := postJob(t, ts.URL, tinySpec("SPL", "", "serial"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining status %d, want 503", resp.StatusCode)
	}
	if h, _ := http.Get(ts.URL + "/healthz"); h.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining status %d, want 200 (liveness is not readiness)", h.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining status %d, want 503", r.StatusCode)
	}
}

// TestHTTPReadyzBeforeStart: a constructed-but-not-started server (startup
// recovery still pending) is alive but unready.
func TestHTTPReadyzBeforeStart(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if h, _ := http.Get(ts.URL + "/healthz"); h.StatusCode != http.StatusOK {
		t.Errorf("healthz before Start status %d, want 200", h.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before Start status %d, want 503", r.StatusCode)
	}
	s.Start()
	defer s.Drain(context.Background())
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusOK {
		t.Errorf("readyz after Start status %d, want 200", r.StatusCode)
	}
}
