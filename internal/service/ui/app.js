/* CRISP exploration UI.
 *
 * Data flow: poll /v1/jobs for the sidebar; stream the selected job's
 * /v1/jobs/{id}/timeline over SSE (the browser's EventSource resends
 * Last-Event-ID on reconnect, which the hub turns into a gap-free
 * cursor replay); fall back to the buffered /series endpoint when the
 * stream reports a gap. The A/B view fetches /v1/series/{digest} twice.
 */
"use strict";

const STALL_NAMES = ["scoreboard", "mem-pending", "pipe-busy", "barrier", "empty-slot"];
const SERIES_VARS = ["--series-1", "--series-2", "--series-3", "--series-4", "--series-5"];
const LANE_W = 860, LANE_H = 110, PAD_L = 46, PAD_R = 10, PAD_T = 6, PAD_B = 16;

const $ = (id) => document.getElementById(id);
const css = (v) => getComputedStyle(document.body).getPropertyValue(v).trim();
const fmt = (n) => n >= 1e6 ? (n / 1e6).toFixed(2) + "M" : n >= 1e3 ? (n / 1e3).toFixed(1) + "k" : String(Math.round(n * 100) / 100);

const state = {
  jobs: [],
  sel: null,        // selected job id
  samples: [],      // obs.Sample objects, cycle-ascending
  lifecycle: [],    // lifecycle TimelineEvents
  lastSeq: 0,
  es: null,         // EventSource
  zoom: null,       // [c0, c1] cycle window, null = fit
  streams: [],      // [{stream, label}] discovered from samples
  raf: 0,
};

/* ---- job list ------------------------------------------------------- */

async function refreshJobs() {
  try {
    const res = await fetch("/v1/jobs");
    const body = await res.json();
    state.jobs = body.jobs || [];
    $("conn").textContent = body.mode === "static" ? "static results dir" : "connected";
    $("conn").classList.add("live");
  } catch {
    $("conn").textContent = "unreachable";
    $("conn").classList.remove("live");
  }
  renderJobList();
}

function renderJobList() {
  const ul = $("joblist");
  ul.textContent = "";
  for (const j of state.jobs) {
    const li = document.createElement("li");
    li.className = j.id === state.sel ? "sel" : "";
    const st = document.createElement("span");
    st.className = "state";
    st.textContent = j.state;
    li.append(j.id, st);
    const dig = document.createElement("span");
    dig.className = "dig";
    dig.textContent = j.digest;
    li.append(dig);
    li.onclick = () => selectJob(j.id);
    ul.append(li);
  }
  if (!state.jobs.length) {
    const li = document.createElement("li");
    li.textContent = "no jobs yet — POST /v1/jobs to submit one";
    ul.append(li);
  }
}

/* ---- timeline streaming --------------------------------------------- */

function selectJob(id) {
  if (state.es) { state.es.close(); state.es = null; }
  state.sel = id;
  state.samples = [];
  state.lifecycle = [];
  state.lastSeq = 0;
  state.zoom = null;
  state.streams = [];
  renderJobList();
  renderHead();
  $("zoomctl").hidden = false;
  connect(id);
}

function connect(id) {
  const es = new EventSource(`/v1/jobs/${id}/timeline`);
  state.es = es;
  es.addEventListener("sample", (ev) => { ingest(JSON.parse(ev.data)); });
  es.addEventListener("lifecycle", (ev) => {
    const tev = JSON.parse(ev.data);
    ingest(tev);
    if (["done", "failed", "canceled", "quarantined"].includes(tev.state)) es.close();
  });
  es.addEventListener("attempt", (ev) => { ingest(JSON.parse(ev.data)); });
  es.addEventListener("gap", async () => {
    // History scrolled out of the ring: replace with the buffered series.
    const res = await fetch(`/v1/jobs/${id}/series`);
    if (res.ok) {
      const v = await res.json();
      state.samples = v.samples || [];
      state.lifecycle = v.lifecycle || [];
      scheduleRender();
    }
  });
  es.onerror = () => { /* EventSource retries with Last-Event-ID on its own */ };
}

function ingest(tev) {
  if (tev.seq && tev.seq <= state.lastSeq) return; // reconnect duplicate
  if (tev.seq) state.lastSeq = tev.seq;
  if (tev.kind === "sample" && tev.sample) {
    state.samples.push(tev.sample);
    for (const p of tev.sample.points) {
      if (!state.streams.some((s) => s.stream === p.stream)) {
        state.streams.push({ stream: p.stream, label: p.label });
        state.streams.sort((a, b) => a.stream - b.stream);
      }
    }
  } else if (tev.kind === "lifecycle" || tev.kind === "attempt") {
    state.lifecycle.push(tev);
  }
  scheduleRender();
}

function scheduleRender() {
  if (state.raf) return;
  state.raf = requestAnimationFrame(() => { state.raf = 0; renderHead(); renderLanes(); });
}

/* ---- header --------------------------------------------------------- */

function renderHead() {
  const el = $("jobhead");
  if (!state.sel) return;
  el.textContent = "";
  const id = document.createElement("span");
  id.className = "id";
  id.textContent = state.sel;
  let last = null;
  for (let i = state.lifecycle.length - 1; i >= 0 && !last; i--) {
    if (state.lifecycle[i].state) last = state.lifecycle[i];
  }
  const meta = document.createElement("span");
  meta.className = "meta";
  const cyc = state.samples.length ? state.samples[state.samples.length - 1].cycle : 0;
  meta.textContent = ` · ${last ? last.state : "…"} · ${state.samples.length} samples · cycle ${fmt(cyc)}` +
    (last && last.detail ? ` · ${last.detail}` : "");
  el.append(id, meta);
}

/* ---- lane rendering -------------------------------------------------- */

function domain() {
  if (state.zoom) return state.zoom;
  const s = state.samples;
  if (!s.length) return [0, 1];
  return [s[0].cycle, Math.max(s[s.length - 1].cycle, s[0].cycle + 1)];
}

function visible() {
  const [c0, c1] = domain();
  return state.samples.filter((s) => s.cycle >= c0 && s.cycle <= c1);
}

function laneBox(title, legendItems) {
  const div = document.createElement("div");
  div.className = "lane";
  const h = document.createElement("h3");
  h.textContent = title;
  div.append(h);
  if (legendItems && legendItems.length > 1) {
    const lg = document.createElement("div");
    lg.className = "legend";
    for (const it of legendItems) {
      const sp = document.createElement("span");
      const k = document.createElement("span");
      k.className = "key";
      k.style.background = it.color;
      sp.append(k, it.label);
      lg.append(sp);
    }
    div.append(lg);
  }
  return div;
}

function newSVG() {
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${LANE_W} ${LANE_H}`);
  svg.setAttribute("preserveAspectRatio", "none");
  svg.style.height = LANE_H + "px";
  return svg;
}

function scales(c0, c1, yMax) {
  const x = (c) => PAD_L + (c - c0) / Math.max(1, c1 - c0) * (LANE_W - PAD_L - PAD_R);
  const y = (v) => LANE_H - PAD_B - v / Math.max(1e-9, yMax) * (LANE_H - PAD_T - PAD_B);
  return { x, y };
}

function gridAndAxis(svg, c0, c1, yMax, yFmt) {
  const g = document.createElementNS("http://www.w3.org/2000/svg", "g");
  for (let i = 0; i <= 2; i++) {
    const v = yMax * i / 2;
    const yy = LANE_H - PAD_B - (LANE_H - PAD_T - PAD_B) * i / 2;
    const ln = document.createElementNS("http://www.w3.org/2000/svg", "line");
    ln.setAttribute("x1", PAD_L); ln.setAttribute("x2", LANE_W - PAD_R);
    ln.setAttribute("y1", yy); ln.setAttribute("y2", yy);
    ln.setAttribute("stroke", css("--grid"));
    ln.setAttribute("stroke-width", i === 0 ? "0" : "1");
    g.append(ln);
    const tx = document.createElementNS("http://www.w3.org/2000/svg", "text");
    tx.setAttribute("x", PAD_L - 5); tx.setAttribute("y", yy + 3.5);
    tx.setAttribute("text-anchor", "end");
    tx.setAttribute("font-size", "9");
    tx.setAttribute("fill", css("--muted"));
    tx.textContent = (yFmt || fmt)(v);
    g.append(tx);
  }
  const base = document.createElementNS("http://www.w3.org/2000/svg", "line");
  base.setAttribute("x1", PAD_L); base.setAttribute("x2", LANE_W - PAD_R);
  base.setAttribute("y1", LANE_H - PAD_B); base.setAttribute("y2", LANE_H - PAD_B);
  base.setAttribute("stroke", css("--baseline"));
  g.append(base);
  for (const c of [c0, (c0 + c1) / 2, c1]) {
    const tx = document.createElementNS("http://www.w3.org/2000/svg", "text");
    const xx = PAD_L + (c - c0) / Math.max(1, c1 - c0) * (LANE_W - PAD_L - PAD_R);
    tx.setAttribute("x", Math.min(xx, LANE_W - PAD_R - 2));
    tx.setAttribute("y", LANE_H - 4);
    tx.setAttribute("text-anchor", c === c0 ? "start" : c === c1 ? "end" : "middle");
    tx.setAttribute("font-size", "9");
    tx.setAttribute("fill", css("--muted"));
    tx.textContent = fmt(c);
    g.append(tx);
  }
  svg.append(g);
}

function pathOf(pts) {
  return pts.map((p, i) => (i ? "L" : "M") + p[0].toFixed(1) + " " + p[1].toFixed(1)).join("");
}

// lineLane draws one polyline per series: rows(sample) -> [v0, v1, ...].
function lineLane(title, rows, labels, yFmt) {
  const colors = labels.map((_, i) => css(SERIES_VARS[i % SERIES_VARS.length]));
  const box = laneBox(title, labels.map((l, i) => ({ label: l, color: colors[i] })));
  const svg = newSVG();
  const data = visible();
  const [c0, c1] = domain();
  let yMax = 1e-9;
  for (const s of data) for (const v of rows(s)) yMax = Math.max(yMax, v || 0);
  gridAndAxis(svg, c0, c1, yMax, yFmt);
  const { x, y } = scales(c0, c1, yMax);
  labels.forEach((_, si) => {
    const pts = data.map((s) => [x(s.cycle), y(rows(s)[si] || 0)]);
    if (!pts.length) return;
    const p = document.createElementNS("http://www.w3.org/2000/svg", "path");
    p.setAttribute("d", pathOf(pts));
    p.setAttribute("fill", "none");
    p.setAttribute("stroke", colors[si]);
    p.setAttribute("stroke-width", "2");
    p.setAttribute("stroke-linejoin", "round");
    svg.append(p);
  });
  box.append(svg);
  attachHover(svg, box, (s) => labels.map((l, i) => ({ label: l, color: colors[i], value: (yFmt || fmt)(rows(s)[i] || 0) })));
  return box;
}

// stackLane draws a stacked area: rows(sample) -> [v0, v1, ...] stacked
// bottom-up with a 1px surface gap between bands.
function stackLane(title, rows, labels, yFmt) {
  const colors = labels.map((_, i) => css(SERIES_VARS[i % SERIES_VARS.length]));
  const box = laneBox(title, labels.map((l, i) => ({ label: l, color: colors[i] })));
  const svg = newSVG();
  const data = visible();
  const [c0, c1] = domain();
  let yMax = 1e-9;
  for (const s of data) yMax = Math.max(yMax, rows(s).reduce((a, b) => a + (b || 0), 0));
  gridAndAxis(svg, c0, c1, yMax, yFmt);
  const { x, y } = scales(c0, c1, yMax);
  const cum = data.map(() => 0);
  labels.forEach((_, si) => {
    const top = [], bot = [];
    data.forEach((s, di) => {
      const v = rows(s)[si] || 0;
      bot.push([x(s.cycle), y(cum[di])]);
      cum[di] += v;
      top.push([x(s.cycle), y(cum[di])]);
    });
    if (!top.length) return;
    const p = document.createElementNS("http://www.w3.org/2000/svg", "path");
    p.setAttribute("d", pathOf(top) + bot.slice().reverse().map((q) => "L" + q[0].toFixed(1) + " " + q[1].toFixed(1)).join("") + "Z");
    p.setAttribute("fill", colors[si]);
    p.setAttribute("stroke", css("--surface-1"));
    p.setAttribute("stroke-width", "1"); // surface gap between stacked bands
    svg.append(p);
  });
  box.append(svg);
  attachHover(svg, box, (s) => labels.map((l, i) => ({ label: l, color: colors[i], value: (yFmt || fmt)(rows(s)[i] || 0) })));
  return box;
}

function renderLanes() {
  const root = $("lanes");
  root.textContent = "";
  if (!state.samples.length) {
    const p = document.createElement("p");
    p.className = "hint";
    p.textContent = state.sel ? "waiting for samples…" : "";
    root.append(p);
    return;
  }
  const streams = state.streams;
  const byStream = (field) => (s) => streams.map((st) => {
    const p = s.points.find((q) => q.stream === st.stream);
    return p ? p[field] : 0;
  });
  const labels = streams.map((s) => s.label);

  root.append(stackLane("Occupancy — resident warps by stream", byStream("warps"), labels));
  root.append(lineLane("IPC — warp instructions / cycle by stream", byStream("ipc"), labels, (v) => v.toFixed(2)));
  for (const st of streams) {
    root.append(stackLane(
      `Stall attribution — ${st.label} (issue slots lost per interval)`,
      (s) => {
        const p = s.points.find((q) => q.stream === st.stream);
        return p && p.stalls ? p.stalls : STALL_NAMES.map(() => 0);
      },
      STALL_NAMES));
  }
  root.append(lineLane("DRAM bandwidth — bytes / cycle by stream", byStream("dram_bpc"), labels, (v) => v.toFixed(1)));
  if (!$("tableview").hidden) renderTable();
}

/* ---- hover, zoom, pan ------------------------------------------------ */

function cycleAt(svg, clientX) {
  const r = svg.getBoundingClientRect();
  const [c0, c1] = domain();
  const fx = (clientX - r.left) / r.width * LANE_W;
  return c0 + Math.max(0, Math.min(1, (fx - PAD_L) / (LANE_W - PAD_L - PAD_R))) * (c1 - c0);
}

function attachHover(svg, box, describe) {
  const cross = document.createElementNS("http://www.w3.org/2000/svg", "line");
  cross.setAttribute("y1", PAD_T); cross.setAttribute("y2", LANE_H - PAD_B);
  cross.setAttribute("stroke", css("--muted"));
  cross.setAttribute("stroke-dasharray", "3 3");
  cross.setAttribute("visibility", "hidden");
  svg.append(cross);
  const tip = $("tooltip");
  let dragFrom = null;

  svg.addEventListener("mousemove", (ev) => {
    const data = visible();
    if (!data.length) return;
    const c = cycleAt(svg, ev.clientX);
    if (dragFrom !== null) {
      const [c0, c1] = domain();
      const shift = dragFrom - c;
      state.zoom = [c0 + shift, c1 + shift];
      scheduleRender();
      return;
    }
    let best = data[0];
    for (const s of data) if (Math.abs(s.cycle - c) < Math.abs(best.cycle - c)) best = s;
    const [c0, c1] = domain();
    cross.setAttribute("x1", scales(c0, c1, 1).x(best.cycle));
    cross.setAttribute("x2", scales(c0, c1, 1).x(best.cycle));
    cross.setAttribute("visibility", "visible");
    tip.hidden = false;
    tip.textContent = "";
    const head = document.createElement("div");
    head.className = "t-cycle";
    head.textContent = "cycle " + fmt(best.cycle);
    tip.append(head);
    for (const row of describe(best)) {
      const d = document.createElement("div");
      const k = document.createElement("span");
      k.className = "key";
      k.style.background = row.color;
      d.append(k, `${row.label}: ${row.value}`);
      tip.append(d);
    }
    tip.style.left = Math.min(ev.clientX + 14, window.innerWidth - 330) + "px";
    tip.style.top = (ev.clientY + 12) + "px";
  });
  svg.addEventListener("mouseleave", () => { cross.setAttribute("visibility", "hidden"); tip.hidden = true; dragFrom = null; });
  svg.addEventListener("mousedown", (ev) => { dragFrom = cycleAt(svg, ev.clientX); ev.preventDefault(); });
  window.addEventListener("mouseup", () => { dragFrom = null; });
  svg.addEventListener("dblclick", () => { state.zoom = null; scheduleRender(); });
  svg.addEventListener("wheel", (ev) => {
    ev.preventDefault();
    const [c0, c1] = domain();
    const c = cycleAt(svg, ev.clientX);
    const f = ev.deltaY > 0 ? 1.25 : 0.8;
    let n0 = c - (c - c0) * f, n1 = c + (c1 - c) * f;
    if (n1 - n0 < 1) return;
    state.zoom = [n0, n1];
    scheduleRender();
  }, { passive: false });
}

/* ---- table view ------------------------------------------------------ */

function renderTable() {
  const root = $("tableview");
  root.textContent = "";
  const data = visible();
  const step = Math.max(1, Math.floor(data.length / 200));
  const tbl = document.createElement("table");
  tbl.className = "series";
  const hdr = document.createElement("tr");
  for (const h of ["cycle", "stream", "ipc", "warps", "l1 hit", "l2 hit", "dram b/c", ...STALL_NAMES]) {
    const th = document.createElement("th");
    th.textContent = h;
    hdr.append(th);
  }
  tbl.append(hdr);
  for (let i = 0; i < data.length; i += step) {
    for (const p of data[i].points) {
      const tr = document.createElement("tr");
      const cells = [data[i].cycle, p.label, p.ipc.toFixed(3), p.warps,
        p.l1_hit.toFixed(3), p.l2_hit.toFixed(3), p.dram_bpc.toFixed(1),
        ...(p.stalls || STALL_NAMES.map(() => 0))];
      for (const c of cells) {
        const td = document.createElement("td");
        td.textContent = c;
        tr.append(td);
      }
      tbl.append(tr);
    }
  }
  root.append(tbl);
}

/* ---- A/B diff -------------------------------------------------------- */

async function runDiff(a, b) {
  $("differr").textContent = "";
  const load = async (d) => {
    const res = await fetch(`/v1/series/${d}`);
    if (!res.ok) throw new Error(`no series for ${d}`);
    return res.json();
  };
  let va, vb;
  try {
    [va, vb] = await Promise.all([load(a), load(b)]);
  } catch (e) {
    $("differr").textContent = e.message;
    return;
  }
  const root = $("difflanes");
  root.textContent = "";
  const colA = css("--series-1"), colB = css("--series-2");
  const streamsOf = (v) => {
    const out = [];
    for (const s of v.samples) for (const p of s.points)
      if (!out.some((q) => q.stream === p.stream)) out.push({ stream: p.stream, label: p.label });
    return out.sort((x, y) => x.stream - y.stream);
  };
  const streams = streamsOf(va);
  for (const st of streams) {
    const box = laneBox(`IPC — ${st.label}`, [
      { label: `A ${a.slice(0, 6)}…`, color: colA },
      { label: `B ${b.slice(0, 6)}…`, color: colB },
    ]);
    const svg = newSVG();
    const seriesOf = (v) => v.samples.map((s) => {
      const p = s.points.find((q) => q.stream === st.stream);
      return [s.cycle, p ? p.ipc : 0];
    });
    const sa = seriesOf(va), sb = seriesOf(vb);
    const cMax = Math.max(sa.length ? sa[sa.length - 1][0] : 1, sb.length ? sb[sb.length - 1][0] : 1);
    const cMin = Math.min(sa.length ? sa[0][0] : 0, sb.length ? sb[0][0] : 0);
    let yMax = 1e-9;
    for (const [, v] of [...sa, ...sb]) yMax = Math.max(yMax, v);
    gridAndAxis(svg, cMin, cMax, yMax, (v) => v.toFixed(2));
    const { x, y } = scales(cMin, cMax, yMax);
    for (const [pts, col] of [[sa, colA], [sb, colB]]) {
      if (!pts.length) continue;
      const p = document.createElementNS("http://www.w3.org/2000/svg", "path");
      p.setAttribute("d", pathOf(pts.map(([c, v]) => [x(c), y(v)])));
      p.setAttribute("fill", "none");
      p.setAttribute("stroke", col);
      p.setAttribute("stroke-width", "2");
      svg.append(p);
    }
    box.append(svg);
    root.append(box);
  }

  const sum = $("diffsummary");
  sum.textContent = "";
  const tbl = document.createElement("table");
  tbl.className = "series";
  const mk = (cells, th) => {
    const tr = document.createElement("tr");
    for (const c of cells) {
      const td = document.createElement(th ? "th" : "td");
      td.textContent = c;
      tr.append(td);
    }
    tbl.append(tr);
  };
  const agg = (v) => {
    const by = {};
    for (const s of v.samples) for (const p of s.points) {
      const e = (by[p.label] = by[p.label] || { ipc: 0, warps: 0, n: 0, stalls: 0 });
      e.ipc += p.ipc; e.warps += p.warps; e.n++;
      e.stalls += (p.stalls || []).reduce((x, y) => x + y, 0);
    }
    return by;
  };
  const aa = agg(va), ab = agg(vb);
  mk(["stream", "mean IPC A", "mean IPC B", "Δ%", "mean warps A", "mean warps B", "stall slots A", "stall slots B"], true);
  for (const label of Object.keys(aa)) {
    const x = aa[label], y = ab[label] || { ipc: 0, warps: 0, n: 1, stalls: 0 };
    const ia = x.ipc / Math.max(1, x.n), ib = y.ipc / Math.max(1, y.n);
    mk([label, ia.toFixed(3), ib.toFixed(3), ia ? (100 * (ib - ia) / ia).toFixed(1) + "%" : "—",
      (x.warps / Math.max(1, x.n)).toFixed(0), (y.warps / Math.max(1, y.n)).toFixed(0),
      fmt(x.stalls), fmt(y.stalls)]);
  }
  mk([`A ${a}: ${va.samples.length} samples, series ${va.series_digest}` +
      (va.stats_digest ? `, stats ${va.stats_digest}` : "")], false);
  mk([`B ${b}: ${vb.samples.length} samples, series ${vb.series_digest}` +
      (vb.stats_digest ? `, stats ${vb.stats_digest}` : "")], false);
  sum.append(tbl);
}

/* ---- wiring ---------------------------------------------------------- */

$("resetzoom").onclick = () => { state.zoom = null; scheduleRender(); };
$("tablebtn").onclick = () => {
  const tv = $("tableview");
  tv.hidden = !tv.hidden;
  $("tablebtn").setAttribute("aria-pressed", String(!tv.hidden));
  if (!tv.hidden) renderTable();
};
$("diffform").onsubmit = (ev) => {
  ev.preventDefault();
  const a = $("digA").value.trim(), b = $("digB").value.trim();
  if (/^[0-9a-f]{16}$/.test(a) && /^[0-9a-f]{16}$/.test(b)) runDiff(a, b);
  else $("differr").textContent = "digests are 16 hex digits (see the job list)";
};

refreshJobs();
setInterval(refreshJobs, 2000);
