package service

import (
	"sync"
	"time"
)

// Lease-based supervision: a fleet shard holds a time-bounded lease on
// the task it is executing, renewed by heartbeat (wall-clock ticks plus
// interval samples — any sign of life). A lease that reaches its expiry
// without a renewal is presumed held by a dead or partitioned worker: the
// coordinator revokes it and reassigns the task to a healthy shard,
// resuming from the newest shipped checkpoint. Epochs make revocation
// safe without coordination: every grant gets a fresh, table-unique
// epoch, and a commit or failure report carrying a stale epoch is
// recognized as coming from a revoked holder.

// lease is one shard's claim on one task.
type lease struct {
	key     string // task key ("sweepID/index")
	worker  int    // shard id holding the claim
	epoch   uint64 // table-unique grant number
	expires time.Time
	// deaf is a chaos fault (hbdrop): renewals are acknowledged to the
	// holder but silently swallowed, so the lease expires while its
	// holder keeps working — the network-partition simulation that
	// forces the duplicate-commit race the coordinator must win.
	deaf bool
}

// expiredLease is one revocation candidate collected by Expired.
type expiredLease struct {
	key    string
	worker int
	epoch  uint64
}

// leaseTable tracks every live lease. All methods are safe for concurrent
// use; the zero value is not usable — call newLeaseTable.
type leaseTable struct {
	mu     sync.Mutex
	ttl    time.Duration
	leases map[string]*lease
	nextEp uint64

	grants      int64
	renewals    int64
	expirations int64
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{ttl: ttl, leases: make(map[string]*lease), nextEp: 1}
}

// Grant claims key for worker and returns the grant's epoch. An existing
// lease on the same key is replaced (the caller revoked it first).
func (t *leaseTable) Grant(key string, worker int, deaf bool) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.nextEp
	t.nextEp++
	t.leases[key] = &lease{key: key, worker: worker, epoch: ep, expires: time.Now().Add(t.ttl), deaf: deaf}
	t.grants++
	return ep
}

// Renew extends the lease by one TTL. It reports whether the holder still
// owns the lease: false means the lease was revoked or replaced and the
// holder should abandon the attempt — except for a deaf lease, which lies
// (returns true) while letting the clock run out, exactly like a
// partition that drops heartbeats after acknowledging them is
// indistinguishable from one that never delivers them.
func (t *leaseTable) Renew(key string, epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[key]
	if !ok || l.epoch != epoch {
		return false
	}
	if l.deaf {
		return true
	}
	l.expires = time.Now().Add(t.ttl)
	t.renewals++
	return true
}

// Release drops the lease if the holder still owns it (normal completion
// or failure handoff). Reports whether a lease was removed.
func (t *leaseTable) Release(key string, epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[key]
	if !ok || l.epoch != epoch {
		return false
	}
	delete(t.leases, key)
	return true
}

// Expired removes and returns every lease whose expiry has passed. The
// expiry monitor revokes and reassigns each returned task.
func (t *leaseTable) Expired(now time.Time) []expiredLease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []expiredLease
	for key, l := range t.leases {
		if now.After(l.expires) {
			out = append(out, expiredLease{key: key, worker: l.worker, epoch: l.epoch})
			delete(t.leases, key)
			t.expirations++
		}
	}
	return out
}

// Holder reports the current lease on key, if any.
func (t *leaseTable) Holder(key string) (worker int, epoch uint64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, found := t.leases[key]
	if !found {
		return 0, 0, false
	}
	return l.worker, l.epoch, true
}

// Counters returns the lifetime grant/renewal/expiration counts.
func (t *leaseTable) Counters() (grants, renewals, expirations int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.grants, t.renewals, t.expirations
}
