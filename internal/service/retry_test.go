package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crisp/internal/robust/chaos"
)

// chaosKillAt picks a kill cycle roughly halfway through the job, derived
// from an uninterrupted direct run so the fault lands mid-simulation
// regardless of how long the workload happens to be.
func chaosKillAt(t *testing.T, spec JobSpec) (killAt int64, directCycles int64, directDigest string) {
	t.Helper()
	direct := directRun(t, spec)
	dd, err := direct.StatsDigest()
	if err != nil {
		t.Fatalf("StatsDigest: %v", err)
	}
	killAt = direct.Cycles / 2
	if killAt < 1024 {
		t.Skipf("run too short to interrupt meaningfully (%d cycles)", direct.Cycles)
	}
	return killAt, direct.Cycles, fmt.Sprintf("%016x", dd)
}

// TestRetryResumesFromCheckpoint is the tentpole determinism audit: a job
// killed mid-run by an injected fault is retried from its snapshot and the
// recovered result is bit-identical to an uninterrupted run.
func TestRetryResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos recovery round trip is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	killAt, wantCycles, wantDigest := chaosKillAt(t, spec)

	s, err := New(Config{
		Workers:          1,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Millisecond,
		Chaos:            chaos.Spec{Seed: 7, KillCycle: killAt, Kills: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone, 2*time.Minute)

	st := s.Snapshot()
	if st.ChaosKills != 1 {
		t.Errorf("chaos kills = %d, want 1", st.ChaosKills)
	}
	if st.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (the kill must have forced a retry)", st.Retries)
	}
	sr, ok := s.Result(job.Digest)
	if !ok {
		t.Fatalf("no cached result after recovery")
	}
	if !sr.Resumed {
		t.Errorf("recovered result not marked resumed; the retry re-simulated from scratch")
	}
	if sr.Cycles != wantCycles || sr.StatsDigest != wantDigest {
		t.Errorf("recovered result (cycles %d, digest %s) != uninterrupted (cycles %d, digest %s)",
			sr.Cycles, sr.StatsDigest, wantCycles, wantDigest)
	}
}

// TestChaosCorruptFallsBack layers checkpoint corruption on top of the
// kill: the newest snapshot is truncated before the retry resumes, forcing
// the fallback to the previous checkpoint — and the result must STILL be
// bit-identical.
func TestChaosCorruptFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos recovery round trip is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	killAt, wantCycles, wantDigest := chaosKillAt(t, spec)

	s, err := New(Config{
		Workers:          1,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Millisecond,
		Chaos:            chaos.Spec{Seed: 11, KillCycle: killAt, Kills: 1, CorruptLatest: "truncate"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone, 2*time.Minute)

	st := s.Snapshot()
	if st.ChaosCorruptions != 1 {
		t.Errorf("chaos corruptions = %d, want 1", st.ChaosCorruptions)
	}
	if st.CheckpointFallbacks < 1 {
		t.Errorf("checkpoint fallbacks = %d, want >= 1 (the corrupt snapshot must have been skipped)", st.CheckpointFallbacks)
	}
	sr, ok := s.Result(job.Digest)
	if !ok {
		t.Fatalf("no cached result after corrupt-fallback recovery")
	}
	if sr.Cycles != wantCycles || sr.StatsDigest != wantDigest {
		t.Errorf("fallback result (cycles %d, digest %s) != uninterrupted (cycles %d, digest %s)",
			sr.Cycles, sr.StatsDigest, wantCycles, wantDigest)
	}
}

// TestQuarantineAfterAttemptBudget kills every attempt: the job must land
// in quarantine (not a hot retry loop), persist the decision, and stay
// quarantined across a daemon restart.
func TestQuarantineAfterAttemptBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos quarantine round trip is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	killAt, _, _ := chaosKillAt(t, spec)
	dir := t.TempDir()

	s1, err := New(Config{
		Workers:          1,
		StateDir:         dir,
		ProgressInterval: 256,
		CheckpointEvery:  512,
		MaxAttempts:      3,
		RetryBase:        time.Millisecond,
		Chaos:            chaos.Spec{Seed: 3, KillCycle: killAt, Kills: 3},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s1.Start()
	job, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s1, job.ID, StateQuarantined, 2*time.Minute)

	st := s1.Snapshot()
	if st.Quarantined != 1 {
		t.Errorf("quarantined counter = %d, want 1", st.Quarantined)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want exactly 3 (the budget)", st.Attempts)
	}
	job.mu.Lock()
	errMsg := job.errMsg
	job.mu.Unlock()
	if !strings.Contains(errMsg, "quarantined after 3 failed attempts") {
		t.Errorf("quarantine message %q lacks the attempt count", errMsg)
	}
	if ok, _ := s1.Cancel(job.ID); ok {
		t.Errorf("Cancel succeeded on a quarantined job; quarantine must be terminal")
	}
	qpath := filepath.Join(dir, "jobs", job.ID, "quarantined.json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantine marker not persisted: %v", err)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// A restarted daemon must honor the marker: the job comes back
	// quarantined and is never re-executed.
	s2, err := New(Config{Workers: 1, StateDir: dir, MaxAttempts: 3})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	s2.Start()
	defer s2.Drain(context.Background())
	rec, ok := s2.Job(job.ID)
	if !ok {
		t.Fatalf("restarted server lost quarantined job %s", job.ID)
	}
	rec.mu.Lock()
	recState := rec.state
	rec.mu.Unlock()
	if recState != StateQuarantined {
		t.Errorf("recovered job state = %s, want quarantined", recState)
	}
	if n := s2.Snapshot().Executions; n != 0 {
		t.Errorf("restarted server re-executed a quarantined job %d times", n)
	}
}

// TestAttemptCountSurvivesRestart plants a persisted attempts.json at the
// budget: the booting daemon must quarantine the job instead of handing a
// crash-looping poison job a fresh retry budget.
func TestAttemptCountSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("SPL", "", "serial")
	r, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	jdir := filepath.Join(dir, "jobs", "j000001")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	pj, _ := json.Marshal(persistedJob{ID: "j000001", Digest: r.digest, Spec: spec})
	if err := os.WriteFile(filepath.Join(jdir, "job.json"), pj, 0o644); err != nil {
		t.Fatal(err)
	}
	ar, _ := json.Marshal(attemptRecord{Attempts: 3, LastError: "simulated watchdog stall", Kind: "watchdog"})
	if err := os.WriteFile(filepath.Join(jdir, "attempts.json"), ar, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 1, StateDir: dir, MaxAttempts: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	job, ok := s.Job("j000001")
	if !ok {
		t.Fatalf("planted job not recovered")
	}
	job.mu.Lock()
	st, errMsg := job.state, job.errMsg
	job.mu.Unlock()
	if st != StateQuarantined {
		t.Fatalf("job at the attempt limit recovered as %s, want quarantined", st)
	}
	if !strings.Contains(errMsg, "watchdog stall") {
		t.Errorf("quarantine message %q lost the last error", errMsg)
	}
	if _, err := os.Stat(filepath.Join(jdir, "quarantined.json")); err != nil {
		t.Errorf("at-boot quarantine not persisted: %v", err)
	}
	if n := s.Snapshot().Quarantined; n != 1 {
		t.Errorf("quarantined counter = %d, want 1", n)
	}
}

// TestCancelDuringBackoff races DELETE against a pending retry: the cancel
// must win — the job goes canceled, and no retry attempt ever starts.
func TestCancelDuringBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos cancel race is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	killAt, _, _ := chaosKillAt(t, spec)

	s, err := New(Config{
		Workers:          1,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Hour, // park the retry: the test must cancel it
		Chaos:            chaos.Spec{Seed: 5, KillCycle: killAt, Kills: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until attempt 1 has failed — the job is now inside its one-hour
	// backoff sleep.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job.mu.Lock()
		failed, st := job.failedAttempts, job.state
		job.mu.Unlock()
		if failed >= 1 {
			break
		}
		if st != StateQueued && st != StateRunning {
			t.Fatalf("job reached %s before the injected kill", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("injected kill never fired (state %s)", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if ok, err := s.Cancel(job.ID); err != nil || !ok {
		t.Fatalf("Cancel(mid-backoff) = %v, %v", ok, err)
	}
	waitState(t, s, job.ID, StateCanceled, time.Minute)

	st := s.Snapshot()
	if st.Retries != 0 {
		t.Errorf("retries = %d after cancel-during-backoff, want 0 (no retry may fire after cancel)", st.Retries)
	}
	if st.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", st.Canceled)
	}
	job.mu.Lock()
	errMsg := job.errMsg
	job.mu.Unlock()
	if !strings.Contains(errMsg, "canceled during retry backoff") {
		t.Errorf("cancel-during-backoff error %q lacks the backoff marker", errMsg)
	}
}

// TestScanJobsQuarantinesCorruptEntries plants a corrupt persisted job next
// to a valid one: boot must succeed, set the damaged entry aside as
// *.corrupt, and recover the healthy job untouched.
func TestScanJobsQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("SPL", "", "serial")
	r, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}

	good := filepath.Join(dir, "jobs", "j000001")
	os.MkdirAll(good, 0o755)
	pj, _ := json.Marshal(persistedJob{ID: "j000001", Digest: r.digest, Spec: spec})
	os.WriteFile(filepath.Join(good, "job.json"), pj, 0o644)

	bad := filepath.Join(dir, "jobs", "j000002")
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(bad, "job.json"), []byte("{truncated garbag"), 0o644)

	s, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatalf("New must survive a corrupt persisted job: %v", err)
	}
	if _, ok := s.Job("j000001"); !ok {
		t.Errorf("healthy job not recovered alongside the corrupt one")
	}
	if _, ok := s.Job("j000002"); ok {
		t.Errorf("corrupt job recovered as if valid")
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Errorf("corrupt job dir not set aside: %v", err)
	}
	// A second boot must not trip over the quarantined leftovers.
	if _, err := New(Config{Workers: 1, StateDir: dir}); err != nil {
		t.Errorf("reboot over quarantined leftovers: %v", err)
	}
}
