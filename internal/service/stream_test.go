package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crisp/internal/obs"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	ID    uint64
	Event string
	Data  string
}

// readSSE parses SSE frames off r, invoking fn per frame; it returns when
// fn returns false or the stream ends.
func readSSE(r *bufio.Reader, fn func(sseEvent) bool) error {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.Event != "" || ev.Data != "" {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &ev.ID)
		case strings.HasPrefix(line, "event: "):
			ev.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = strings.TrimPrefix(line, "data: ")
		}
	}
}

func terminal(ev sseEvent) bool {
	if ev.Event != obs.TimelineLifecycle {
		return false
	}
	var tev obs.TimelineEvent
	json.Unmarshal([]byte(ev.Data), &tev)
	switch State(tev.State) {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// streamServer boots a service behind a real HTTP listener (SSE needs
// honest flushing, which httptest.NewServer provides).
func streamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestTimelineStreamBitConsistent streams a full job timeline over SSE and
// checks it against the buffered /series view: same sample count, same
// canonical digest, dense sequence ids — the streamed and buffered views
// are the same history.
func TestTimelineStreamBitConsistent(t *testing.T) {
	s, ts := streamServer(t, Config{Workers: 1, ProgressInterval: 256})
	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/timeline")
	if err != nil {
		t.Fatalf("GET timeline: %v", err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var streamed []obs.Sample
	var lastSeq uint64
	var doneDetail string
	err = readSSE(bufio.NewReader(res.Body), func(ev sseEvent) bool {
		if ev.Event == "gap" || ev.Event == "lagged" {
			t.Fatalf("unexpected control event %q on a fresh stream", ev.Event)
		}
		if ev.ID != lastSeq+1 {
			t.Fatalf("sequence jump: id %d after %d", ev.ID, lastSeq)
		}
		lastSeq = ev.ID
		var tev obs.TimelineEvent
		if err := json.Unmarshal([]byte(ev.Data), &tev); err != nil {
			t.Fatalf("bad event payload %q: %v", ev.Data, err)
		}
		if tev.Kind == obs.TimelineSample {
			streamed = append(streamed, *tev.Sample)
		}
		if terminal(ev) {
			doneDetail = tev.Detail
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(streamed) == 0 {
		t.Fatal("no samples streamed; lower ProgressInterval")
	}

	var v seriesView
	getJSON(t, ts, "/v1/jobs/"+job.ID+"/series", &v)
	if len(v.Samples) != len(streamed) {
		t.Fatalf("streamed %d samples, series has %d", len(streamed), len(v.Samples))
	}
	dig := fmt.Sprintf("%016x", obs.SamplesDigest(streamed))
	if dig != v.SeriesDigest {
		t.Fatalf("streamed digest %s != series digest %s", dig, v.SeriesDigest)
	}
	if !strings.Contains(doneDetail, "series_digest="+dig) {
		t.Fatalf("done detail %q lacks series_digest=%s", doneDetail, dig)
	}
	if v.Events != lastSeq {
		t.Fatalf("series high-water mark %d, stream ended at %d", v.Events, lastSeq)
	}

	// The by-digest route serves the same series (the A/B diff source).
	var byDigest seriesView
	getJSON(t, ts, "/v1/series/"+job.Digest, &byDigest)
	if byDigest.SeriesDigest != v.SeriesDigest {
		t.Fatalf("by-digest view digest %s != per-job %s", byDigest.SeriesDigest, v.SeriesDigest)
	}

	// Cycle windowing trims to the requested range.
	mid := v.Samples[len(v.Samples)/2].Cycle
	var windowed seriesView
	getJSON(t, ts, fmt.Sprintf("/v1/jobs/%s/series?from=%d", job.ID, mid), &windowed)
	if len(windowed.Samples) >= len(v.Samples) || len(windowed.Samples) == 0 {
		t.Fatalf("window [%d,∞) kept %d of %d samples", mid, len(windowed.Samples), len(v.Samples))
	}
	for _, smp := range windowed.Samples {
		if smp.Cycle < mid {
			t.Fatalf("windowed sample at cycle %d < from=%d", smp.Cycle, mid)
		}
	}
}

// TestTimelineResume disconnects mid-stream and reconnects with
// Last-Event-ID: the spliced event log must be gap-free and
// duplicate-free all the way to the terminal event.
func TestTimelineResume(t *testing.T) {
	s, ts := streamServer(t, Config{Workers: 1, ProgressInterval: 256})
	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Leg 1: read a handful of events, then hang up mid-job.
	res, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/timeline")
	if err != nil {
		t.Fatalf("GET timeline: %v", err)
	}
	var cursor uint64
	n := 0
	readSSE(bufio.NewReader(res.Body), func(ev sseEvent) bool {
		cursor = ev.ID
		n++
		return n < 3 && !terminal(ev)
	})
	res.Body.Close()
	if cursor == 0 {
		t.Fatal("leg 1 saw no events")
	}

	// Leg 2: resume from the cursor; ids must continue at cursor+1.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+job.ID+"/timeline", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resume GET: %v", err)
	}
	defer res2.Body.Close()
	last := cursor
	err = readSSE(bufio.NewReader(res2.Body), func(ev sseEvent) bool {
		if ev.Event == "gap" {
			t.Fatal("gap on a fresh resume cursor")
		}
		if ev.ID != last+1 {
			t.Fatalf("resume splice: id %d after %d", ev.ID, last)
		}
		last = ev.ID
		return !terminal(ev)
	})
	if err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	if last <= cursor {
		t.Fatalf("resume made no progress past %d", cursor)
	}

	// A cursor beyond the retained ring must announce the gap.
	_, sub, gapped := job.hub.Subscribe(1, 1)
	sub.Cancel()
	_ = gapped // the full ring is retained here; the gap path is covered in obs
}

// TestTimelineNotFound covers the error paths.
func TestTimelineNotFound(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/nope/timeline", "/v1/jobs/nope/series", "/v1/series/0123456789abcdef"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, res.StatusCode)
		}
	}
	res, _ := http.Get(ts.URL + "/v1/series/" + strings.Repeat("../", 4) + "etc/passwd")
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal digest: status %d, want 404", res.StatusCode)
	}
}

// TestUIServed checks the embedded exploration UI ships with the daemon.
func TestUIServed(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1})
	for _, path := range []string{"/ui/", "/ui/app.js", "/ui/style.css"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, res.StatusCode)
		}
	}
	// The bare root redirects into the UI.
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	res.Body.Close()
	if res.Request.URL.Path != "/ui/" {
		t.Fatalf("GET / landed on %s, want /ui/", res.Request.URL.Path)
	}
}

// TestStaticSite exercises crispviz's serve mode: a completed, persisted
// run browsed straight off the results directory with no daemon.
func TestStaticSite(t *testing.T) {
	dir := t.TempDir()
	s, ts := streamServer(t, Config{Workers: 1, ProgressInterval: 256, StateDir: dir})
	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, s, job)
	ts.Close()

	resultsDir := filepath.Join(dir, "results")
	if _, err := os.Stat(filepath.Join(resultsDir, job.Digest+".series.json")); err != nil {
		t.Fatalf("series not persisted: %v", err)
	}

	static := httptest.NewServer(StaticSite(resultsDir))
	defer static.Close()

	var list struct {
		Jobs []jobView `json:"jobs"`
		Mode string    `json:"mode"`
	}
	getJSONFrom(t, static.URL+"/v1/jobs", &list)
	if list.Mode != "static" || len(list.Jobs) != 1 || list.Jobs[0].Digest != job.Digest {
		t.Fatalf("static listing: %+v", list)
	}

	var v seriesView
	getJSONFrom(t, static.URL+"/v1/series/"+job.Digest, &v)
	if len(v.Samples) == 0 {
		t.Fatal("static series is empty")
	}

	// The timeline replay ends with a done lifecycle event carrying the
	// same digest as the series view.
	res, err := http.Get(static.URL + "/v1/jobs/" + job.Digest + "/timeline")
	if err != nil {
		t.Fatalf("static timeline: %v", err)
	}
	defer res.Body.Close()
	samples, lastDetail := 0, ""
	readSSE(bufio.NewReader(res.Body), func(ev sseEvent) bool {
		var tev obs.TimelineEvent
		json.Unmarshal([]byte(ev.Data), &tev)
		if tev.Kind == obs.TimelineSample {
			samples++
		}
		if terminal(ev) {
			lastDetail = tev.Detail
			return false
		}
		return true
	})
	if samples != len(v.Samples) {
		t.Fatalf("static replay streamed %d samples, series has %d", samples, len(v.Samples))
	}
	if !strings.Contains(lastDetail, "series_digest="+v.SeriesDigest) {
		t.Fatalf("static done detail %q lacks series digest %s", lastDetail, v.SeriesDigest)
	}

	// The UI ships in static mode too.
	ui, err := http.Get(static.URL + "/ui/")
	if err != nil {
		t.Fatalf("static UI: %v", err)
	}
	ui.Body.Close()
	if ui.StatusCode != http.StatusOK {
		t.Fatalf("static /ui/: status %d", ui.StatusCode)
	}
}

func waitDone(t *testing.T, s *Server, job *Job) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job.mu.Lock()
		st := job.state
		job.mu.Unlock()
		switch st {
		case StateDone:
			return
		case StateFailed, StateCanceled:
			t.Fatalf("job finished %s", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	getJSONFrom(t, ts.URL+path, v)
}

func getJSONFrom(t *testing.T, url string, v any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
