package service

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"crisp/internal/obs"
	"crisp/internal/robust/chaos"
)

// TestMain doubles the test binary as the crispd worker: runIsolated
// re-execs os.Executable() with WorkerEnv set, and that lands here before
// any test runs — exactly the interception cmd/crispd performs.
func TestMain(m *testing.M) {
	if os.Getenv(WorkerEnv) == "1" {
		os.Exit(WorkerMain())
	}
	os.Exit(m.Run())
}

// TestIsolatedRunMatchesInProcess: process isolation must be invisible to
// results — a job executed in a child worker process produces the same
// bit-identical digest as the direct in-process run, and its telemetry
// still flows to the job's timeline hub.
func TestIsolatedRunMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("isolated round trip is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	direct := directRun(t, spec)
	dd, err := direct.StatsDigest()
	if err != nil {
		t.Fatalf("StatsDigest: %v", err)
	}

	s, err := New(Config{Workers: 1, ProgressInterval: 256, Isolate: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone, 2*time.Minute)

	sr, ok := s.Result(job.Digest)
	if !ok {
		t.Fatalf("no cached result from isolated run")
	}
	if want := fmt.Sprintf("%016x", dd); sr.Cycles != direct.Cycles || sr.StatsDigest != want {
		t.Errorf("isolated result (cycles %d, digest %s) != direct (cycles %d, digest %s)",
			sr.Cycles, sr.StatsDigest, direct.Cycles, want)
	}
	// The child's samples were forwarded through the stdio protocol onto
	// the job's hub: the timeline must hold interval telemetry.
	if _, ok := job.hub.Latest(obs.TimelineSample); !ok {
		t.Errorf("isolated run produced no timeline samples; the worker protocol dropped them")
	}
	if n := s.Snapshot().WorkerCrashes; n != 0 {
		t.Errorf("worker crashes = %d on a clean isolated run", n)
	}
}

// TestIsolatedCrashRecovery is the hard-crash drill: the chaos fault makes
// the worker SIGKILL itself mid-run — no final snapshot, no goodbye — and
// the supervisor must classify the crash, retry from the last periodic
// checkpoint, and still converge to the bit-identical digest, all without
// the daemon itself dying.
func TestIsolatedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash recovery round trip is not short")
	}
	spec := tinySpec("SPL", "VIO", "EVEN")
	killAt, wantCycles, wantDigest := chaosKillAt(t, spec)

	s, err := New(Config{
		Workers:          1,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Millisecond,
		Isolate:          true,
		Chaos:            chaos.Spec{Seed: 13, KillCycle: killAt, Kills: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone, 3*time.Minute)

	st := s.Snapshot()
	if st.WorkerCrashes < 1 {
		t.Errorf("worker crashes = %d, want >= 1 (the SIGKILL must register as a crash)", st.WorkerCrashes)
	}
	if st.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", st.Retries)
	}
	sr, ok := s.Result(job.Digest)
	if !ok {
		t.Fatalf("no cached result after crash recovery")
	}
	if !sr.Resumed {
		t.Errorf("crash-recovered result not marked resumed; progress to the last checkpoint was thrown away")
	}
	if sr.Cycles != wantCycles || sr.StatsDigest != wantDigest {
		t.Errorf("crash-recovered result (cycles %d, digest %s) != uninterrupted (cycles %d, digest %s)",
			sr.Cycles, sr.StatsDigest, wantCycles, wantDigest)
	}

	// The daemon survived its worker's death: it still accepts and
	// completes new work.
	after, err := s.Submit(tinySpec("SPL", "", "serial"))
	if err != nil {
		t.Fatalf("Submit after crash: %v", err)
	}
	waitState(t, s, after.ID, StateDone, 2*time.Minute)
}

// TestCancelIsolatedRun: DELETE on a job running in a child process must
// SIGTERM the worker, reap it, and land the job in canceled — the cancel
// path must not leak the child or misclassify its exit as a crash.
func TestCancelIsolatedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("isolated cancel round trip is not short")
	}
	s, err := New(Config{Workers: 1, ProgressInterval: 256, Isolate: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Cancel once the child demonstrably runs (samples flowing), so the
	// SIGTERM interrupts a live worker rather than a spawning one...
	deadline := time.Now().Add(time.Minute)
	for {
		job.mu.Lock()
		st := job.state
		_, sampled := job.hub.Latest(obs.TimelineSample)
		job.mu.Unlock()
		if st == StateRunning && sampled {
			break
		}
		if st == StateDone {
			t.Skip("job finished before it could be canceled")
		}
		if time.Now().After(deadline) {
			t.Fatalf("isolated job never produced samples (state %s)", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ok, err := s.Cancel(job.ID); err != nil || !ok {
		t.Fatalf("Cancel(isolated) = %v, %v", ok, err)
	}
	waitState(t, s, job.ID, StateCanceled, time.Minute)
	if n := s.Snapshot().Retries; n != 0 {
		t.Errorf("retries = %d after cancel, want 0", n)
	}
}

// TestCancelDuringIsolatedSpawn races DELETE against worker startup: the
// job is canceled the instant it leaves the queue, so the cancel lands
// while the child is being spawned or barely alive. Cancel must win and
// the child must be reaped.
func TestCancelDuringIsolatedSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawn race round trip is not short")
	}
	s, err := New(Config{Workers: 1, ProgressInterval: 256, Isolate: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	// Fire the cancel as soon as the job turns running — before the child
	// has produced any sample.
	deadline := time.Now().Add(time.Minute)
	for {
		job.mu.Lock()
		st := job.state
		job.mu.Unlock()
		if st == StateRunning {
			break
		}
		if st != StateQueued {
			t.Fatalf("job reached %s before the cancel race", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started")
		}
	}
	if ok, err := s.Cancel(job.ID); err != nil || !ok {
		t.Fatalf("Cancel(spawning) = %v, %v", ok, err)
	}
	waitState(t, s, job.ID, StateCanceled, time.Minute)
	if n := s.Snapshot().Retries; n != 0 {
		t.Errorf("retries = %d after spawn-race cancel, want 0 (cancel must never be retried)", n)
	}
}
