package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crisp/internal/obs"
)

// The timeline SSE wire format (documented in docs/SERVICE.md):
//
//	id: <seq>
//	event: sample | lifecycle
//	data: <TimelineEvent JSON>
//
// ids are the hub's dense 1-based sequence numbers, so a reconnecting
// client sends Last-Event-ID and resumes gap-free from the ring. A resume
// cursor older than the retained window gets one "gap" control event
// first (refetch /series for the full history); a consumer too slow for
// the broadcast is dropped mid-stream with a "lagged" control event and
// reconnects the same way.

// handleTimeline streams a job's telemetry as Server-Sent Events: the
// retained backlog first (from Last-Event-ID when given), then live until
// the job reaches a terminal state or the client goes away.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	s.streamHub(w, r, job.hub)
}

// handleSweepTimeline streams a sweep's merged progress — per-task
// lifecycle markers and the shards' interleaved interval samples — in the
// same SSE framing as a job timeline.
func (s *Server) handleSweepTimeline(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.SweepByID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
		return
	}
	s.streamHub(w, r, sw.hub)
}

// streamHub is the shared SSE loop behind the job and sweep timeline
// endpoints: retained backlog first (from Last-Event-ID when given), then
// live until the hub closes or the client goes away. Concurrent streams
// per hub are bounded by Config.MaxTimelineSubs — one slow proxied
// consumer is survivable, ten thousand are a memory bill — so past the
// cap new subscribers get 503 + Retry-After instead of a subscription.
func (s *Server) streamHub(w http.ResponseWriter, r *http.Request, hub *obs.Hub) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	from := uint64(1)
	cursor := r.Header.Get("Last-Event-ID")
	if cursor == "" {
		cursor = r.URL.Query().Get("last_event_id")
	}
	if cursor != "" {
		n, err := strconv.ParseUint(cursor, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "malformed Last-Event-ID "+cursor)
			return
		}
		from = n + 1
	}

	// Registration and backlog copy are atomic in the hub, so the
	// concatenation written below has no gap and no duplicate around the
	// catch-up/live boundary.
	backlog, sub, gapped, admitted := hub.SubscribeLimited(from, 256, s.cfg.MaxTimelineSubs)
	if !admitted {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "timeline subscriber limit reached; retry later or fetch the series endpoint")
		return
	}
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // disable proxy buffering
	w.WriteHeader(http.StatusOK)

	if gapped {
		oldest := hub.Stats().OldestSeq
		fmt.Fprintf(w, "event: gap\ndata: {\"requested\":%d,\"oldest_retained\":%d,\"hint\":\"history evicted; fetch the series endpoint for the full view\"}\n\n", from, oldest)
	}
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case ev, live := <-sub.C:
			if !live {
				// Hub closed: either the run finished (the terminal
				// lifecycle event was already written) or this consumer
				// lagged and was dropped.
				if sub.Lagged() {
					fmt.Fprintf(w, "event: lagged\ndata: {\"hint\":\"consumer too slow, dropped; reconnect with Last-Event-ID to resume\"}\n\n")
				}
				flusher.Flush()
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE writes one event in SSE framing.
func writeSSE(w http.ResponseWriter, ev obs.TimelineEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
}

// seriesView is the JSON shape of the buffered-series endpoints.
type seriesView struct {
	ID     string `json:"id,omitempty"`
	Digest string `json:"digest"`
	State  State  `json:"state,omitempty"`
	// Interval is the sampling cadence in cycles.
	Interval int64 `json:"interval,omitempty"`
	// Events is the timeline's newest sequence number (its SSE
	// high-water mark); resume a stream from here with Last-Event-ID.
	Events uint64 `json:"events,omitempty"`
	// From/To echo the requested cycle window (0 = unbounded).
	From int64 `json:"from,omitempty"`
	To   int64 `json:"to,omitempty"`
	// Samples is the windowed interval series; SeriesDigest is
	// obs.SamplesDigest over exactly these samples (hex), so a streamed
	// timeline can be checked bit-for-bit against this buffered view.
	Samples      []obs.Sample `json:"samples"`
	SeriesDigest string       `json:"series_digest"`
	// StatsDigest is the completed run's result digest, when cached.
	StatsDigest string `json:"stats_digest,omitempty"`
	// Lifecycle lists the retained lifecycle events in the window.
	Lifecycle []obs.TimelineEvent `json:"lifecycle,omitempty"`
}

// handleJobSeries serves a job's buffered interval series as JSON,
// windowed by ?from=&to= (inclusive cycle bounds; 0/absent = unbounded).
func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	from, err := cycleParam(r, "from")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := cycleParam(r, "to")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	job.mu.Lock()
	state := job.state
	job.mu.Unlock()

	v := seriesView{
		ID:       job.ID,
		Digest:   job.Digest,
		State:    state,
		Interval: s.cfg.ProgressInterval,
		Events:   job.hub.Stats().Published,
		From:     from,
		To:       to,
		Samples:  []obs.Sample{},
	}
	for _, ev := range job.hub.Events(from, to) {
		switch ev.Kind {
		case obs.TimelineSample:
			v.Samples = append(v.Samples, *ev.Sample)
		case obs.TimelineLifecycle, obs.TimelineAttempt:
			v.Lifecycle = append(v.Lifecycle, ev)
		}
	}
	if len(v.Samples) == 0 && (state == StateDone) {
		// A cache-hit or restarted-daemon job has an empty hub; its
		// series lives under the digest.
		if samples, ok := s.SeriesFor(job.Digest); ok {
			v.Samples = windowSamples(samples, from, to)
		}
	}
	v.SeriesDigest = fmt.Sprintf("%016x", obs.SamplesDigest(v.Samples))
	if sr, ok := s.cache.get(job.Digest); ok {
		v.StatsDigest = sr.StatsDigest
	}
	writeJSON(w, http.StatusOK, v)
}

// handleSeries serves a completed job's interval series by content
// digest — the data source of the UI's A/B diff view.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	samples, ok := s.SeriesFor(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored series for digest "+digest)
		return
	}
	from, err := cycleParam(r, "from")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := cycleParam(r, "to")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	samples = windowSamples(samples, from, to)
	v := seriesView{Digest: digest, From: from, To: to, Samples: samples,
		SeriesDigest: fmt.Sprintf("%016x", obs.SamplesDigest(samples))}
	if sr, ok := s.cache.get(digest); ok {
		v.StatsDigest = sr.StatsDigest
	}
	writeJSON(w, http.StatusOK, v)
}

func cycleParam(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("malformed %s=%q: want a non-negative cycle number", name, raw)
	}
	return n, nil
}

func windowSamples(samples []obs.Sample, from, to int64) []obs.Sample {
	out := make([]obs.Sample, 0, len(samples))
	for _, smp := range samples {
		if smp.Cycle < from || (to > 0 && smp.Cycle > to) {
			continue
		}
		out = append(out, smp)
	}
	return out
}

// ---- static site (crispviz serve) -----------------------------------

// StaticSite serves the embedded exploration UI over a local results
// directory (a crispd state dir's results/, or any directory of
// <digest>.json + <digest>.series.json files) with no daemon running:
// crispviz's serve mode. Completed results appear as done jobs keyed by
// their digest; timelines replay from the persisted series.
func StaticSite(dir string) http.Handler {
	ss := &staticSite{dir: dir}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", ss.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", ss.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", ss.handleTimeline)
	mux.HandleFunc("GET /v1/jobs/{id}/series", ss.handleSeries)
	mux.HandleFunc("GET /v1/results/{digest}", ss.handleResult)
	mux.HandleFunc("GET /v1/series/{digest}", ss.handleSeries)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "static"})
	})
	mountUI(mux)
	return mux
}

type staticSite struct{ dir string }

// result reads one persisted result by digest.
func (ss *staticSite) result(digest string) (*StoredResult, bool) {
	if !validDigest(digest) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(ss.dir, digest+".json"))
	if err != nil {
		return nil, false
	}
	var sr StoredResult
	if err := json.Unmarshal(b, &sr); err != nil || sr.Digest == "" {
		return nil, false
	}
	return &sr, true
}

// samples reads one persisted series by digest.
func (ss *staticSite) samples(digest string) ([]obs.Sample, bool) {
	if !validDigest(digest) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(ss.dir, digest+".series.json"))
	if err != nil {
		return nil, false
	}
	var samples []obs.Sample
	if err := json.Unmarshal(b, &samples); err != nil {
		return nil, false
	}
	return samples, true
}

func (ss *staticSite) handleList(w http.ResponseWriter, r *http.Request) {
	ents, err := os.ReadDir(ss.dir)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "results dir: "+err.Error())
		return
	}
	views := []jobView{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".series.json") {
			continue
		}
		if sr, ok := ss.result(strings.TrimSuffix(name, ".json")); ok {
			views = append(views, jobView{ID: sr.Digest, Digest: sr.Digest, State: StateDone, Cached: true})
		}
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "mode": "static"})
}

func (ss *staticSite) handleJob(w http.ResponseWriter, r *http.Request) {
	sr, ok := ss.result(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no result "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobView{ID: sr.Digest, Digest: sr.Digest, State: StateDone, Cached: true, Result: sr})
}

func (ss *staticSite) handleResult(w http.ResponseWriter, r *http.Request) {
	sr, ok := ss.result(r.PathValue("digest"))
	if !ok {
		httpError(w, http.StatusNotFound, "no result "+r.PathValue("digest"))
		return
	}
	writeJSON(w, http.StatusOK, sr)
}

// handleSeries serves a persisted series (both the per-job and by-digest
// routes: in static mode the job id IS the digest).
func (ss *staticSite) handleSeries(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if digest == "" {
		digest = r.PathValue("id")
	}
	samples, ok := ss.samples(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored series for "+digest)
		return
	}
	from, err := cycleParam(r, "from")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := cycleParam(r, "to")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	samples = windowSamples(samples, from, to)
	v := seriesView{ID: digest, Digest: digest, State: StateDone, From: from, To: to,
		Samples: samples, SeriesDigest: fmt.Sprintf("%016x", obs.SamplesDigest(samples))}
	if sr, ok := ss.result(digest); ok {
		v.StatsDigest = sr.StatsDigest
	}
	writeJSON(w, http.StatusOK, v)
}

// handleTimeline replays a persisted series in the live SSE framing, then
// ends the stream — so the UI's streaming path works identically against
// a static results directory.
func (ss *staticSite) handleTimeline(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("id")
	samples, ok := ss.samples(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored series for "+digest)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	seq := uint64(1)
	for i := range samples {
		writeSSE(w, obs.TimelineEvent{Seq: seq, Cycle: samples[i].Cycle, Kind: obs.TimelineSample, Sample: &samples[i]})
		seq++
	}
	done := fmt.Sprintf("samples=%d series_digest=%016x", len(samples), obs.SamplesDigest(samples))
	var last int64
	if len(samples) > 0 {
		last = samples[len(samples)-1].Cycle
	}
	writeSSE(w, obs.TimelineEvent{Seq: seq, Cycle: last, Kind: obs.TimelineLifecycle, State: string(StateDone), Detail: done})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
