package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crisp/internal/obs"
	"crisp/internal/robust/chaos"
	"crisp/internal/snapshot"
)

// newTestHTTP mounts an (optionally unstarted) server's handler on a real
// listener and returns the base URL.
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// twoTaskSweep is the canonical test grid: 2 cells (SPL render-only and
// SPL+VIO concurrent), both EVEN-partitioned, at the fast test resolution.
func twoTaskSweep() SweepSpec {
	return SweepSpec{
		Scenes: []string{"SPL"}, Computes: []string{"", "VIO"}, Policies: []string{"EVEN"},
		Width: 128, Height: 72,
	}
}

// expectedMergedDigest computes the sweep's merged digest from direct
// facade runs of every grid cell — the single-node ground truth the fleet
// must converge to bit-identically, whatever the chaos schedule did.
func expectedMergedDigest(t *testing.T, spec SweepSpec) string {
	t.Helper()
	specs, err := spec.decompose()
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	h := snapshot.NewHasher()
	h.PutInt(len(specs))
	for _, js := range specs {
		r, err := js.resolve()
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		res := directRun(t, js)
		dd, err := res.StatsDigest()
		if err != nil {
			t.Fatalf("StatsDigest: %v", err)
		}
		h.PutStr(r.digest)
		h.PutStr(fmt.Sprintf("%016x", dd))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// waitSweep polls until the sweep reaches want (failing fast on any other
// terminal state) and returns its final view.
func waitSweep(t *testing.T, s *Server, id string, want State, timeout time.Duration) sweepView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		sw, ok := s.SweepByID(id)
		if !ok {
			t.Fatalf("sweep %s disappeared", id)
		}
		v := s.viewOfSweep(sw, true)
		if v.State == want {
			return v
		}
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			var errs []string
			for _, tv := range v.Tasks {
				if tv.Error != "" {
					errs = append(errs, tv.Error)
				}
			}
			t.Fatalf("sweep %s reached %s (want %s): %s", id, v.State, want, strings.Join(errs, "; "))
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s (want %s)", id, v.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepFleetMatchesSingleNode is the fleet acceptance baseline: a
// sweep sharded across 2 workers completes with a merged digest equal to
// direct single-node runs of every cell, and a resubmission of the same
// sweep is answered entirely from the federated cache.
func TestSweepFleetMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet round trip is not short")
	}
	spec := twoTaskSweep()
	want := expectedMergedDigest(t, spec)

	s, err := New(Config{Workers: 1, FleetWorkers: 2, ProgressInterval: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	v := waitSweep(t, s, sw.ID, StateDone, 2*time.Minute)
	if v.MergedDigest != want {
		t.Fatalf("fleet merged digest %s != single-node %s", v.MergedDigest, want)
	}
	for _, tv := range v.Tasks {
		if tv.State != taskDone {
			t.Fatalf("task %d state %s", tv.Index, tv.State)
		}
		dres := directRun(t, tv.Spec)
		dd, err := dres.StatsDigest()
		if err != nil {
			t.Fatalf("StatsDigest: %v", err)
		}
		if got, wantTask := tv.StatsDigest, fmt.Sprintf("%016x", dd); got != wantTask {
			t.Fatalf("task %d stats digest %s != direct %s", tv.Index, got, wantTask)
		}
	}

	// Federation: the same sweep again never executes — every dispatch is
	// answered from the shared content-addressed store.
	sw2, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	v2 := waitSweep(t, s, sw2.ID, StateDone, time.Minute)
	if v2.MergedDigest != want {
		t.Fatalf("cached merged digest %s != %s", v2.MergedDigest, want)
	}
	for _, tv := range v2.Tasks {
		if !tv.Cached {
			t.Fatalf("task %d of the resubmitted sweep executed instead of hitting the federated cache", tv.Index)
		}
	}
	if fs := s.coord.stats(); fs.FederatedHits < int64(len(v2.Tasks)) {
		t.Fatalf("FederatedHits = %d, want >= %d", fs.FederatedHits, len(v2.Tasks))
	}
}

// TestSweepChaosKillConverges kills each task's first attempt mid-run
// (in-process injected crash), forcing a lease revocation and a
// checkpoint-handoff reassignment — and the merged result must still be
// bit-identical to the clean single-node sweep.
func TestSweepChaosKillConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convergence round trip is not short")
	}
	spec := twoTaskSweep()
	specs, err := spec.decompose()
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	killAt := int64(1<<62 - 1)
	for _, js := range specs {
		if c := directRun(t, js).Cycles / 2; c < killAt {
			killAt = c
		}
	}
	if killAt < 1024 {
		t.Skipf("runs too short to interrupt meaningfully (kill@%d)", killAt)
	}
	want := expectedMergedDigest(t, spec)

	s, err := New(Config{
		Workers: 1, FleetWorkers: 2,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Millisecond,
		Chaos:            chaos.Spec{Seed: 7, KillCycle: killAt, Kills: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	v := waitSweep(t, s, sw.ID, StateDone, 2*time.Minute)
	if v.MergedDigest != want {
		t.Fatalf("chaos sweep merged digest %s != clean single-node %s", v.MergedDigest, want)
	}
	if v.Revocations < 1 {
		t.Fatalf("Revocations = %d, want >= 1 (every first attempt was killed)", v.Revocations)
	}
	if v.Resumes < 1 {
		t.Fatalf("Resumes = %d, want >= 1 (kill@%d with checkpoints every 512)", v.Resumes, killAt)
	}
}

// TestSweepIsolatedWorkerSIGKILL is the fleet-chaos acceptance test in
// process-isolation mode: each task's first child worker is SIGKILLed
// mid-simulation (no terminal event, classified as a crash), the lease is
// revoked, and the reassigned worker resumes from the dead worker's
// shipped checkpoint — converging bit-identically to single-node.
func TestSweepIsolatedWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("isolated fleet chaos round trip is not short")
	}
	spec := twoTaskSweep()
	specs, err := spec.decompose()
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	killAt := int64(1<<62 - 1)
	for _, js := range specs {
		if c := directRun(t, js).Cycles / 2; c < killAt {
			killAt = c
		}
	}
	if killAt < 1024 {
		t.Skipf("runs too short to interrupt meaningfully (kill@%d)", killAt)
	}
	want := expectedMergedDigest(t, spec)

	s, err := New(Config{
		Workers: 1, FleetWorkers: 2,
		Isolate:          true,
		StateDir:         t.TempDir(),
		ProgressInterval: 256,
		CheckpointEvery:  512,
		RetryBase:        time.Millisecond,
		Chaos:            chaos.Spec{Seed: 11, KillCycle: killAt, Kills: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	v := waitSweep(t, s, sw.ID, StateDone, 3*time.Minute)
	if v.MergedDigest != want {
		t.Fatalf("SIGKILL sweep merged digest %s != clean single-node %s", v.MergedDigest, want)
	}
	if v.Revocations < 1 {
		t.Fatalf("Revocations = %d, want >= 1", v.Revocations)
	}
	if v.Resumes < 1 {
		t.Fatalf("Resumes = %d, want >= 1", v.Resumes)
	}
	fs := s.coord.stats()
	if fs.LeaseRevocations < 1 {
		t.Fatalf("LeaseRevocations = %d, want >= 1", fs.LeaseRevocations)
	}
}

// TestSweepHeartbeatDropConverges plants the hbdrop fault: one task's
// lease goes deaf (renewals acknowledged, never applied), so it expires
// mid-run and the task is reassigned while the original holder keeps
// working. The orphan and the reassigned attempt race to commit; exactly
// one lands, the loser is discarded by digest, and the merged result is
// still bit-identical to single-node.
func TestSweepHeartbeatDropConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("heartbeat-drop convergence is not short")
	}
	spec := twoTaskSweep()
	want := expectedMergedDigest(t, spec)

	s, err := New(Config{
		Workers: 1, FleetWorkers: 2,
		ProgressInterval: 256,
		RetryBase:        time.Millisecond,
		LeaseTTL:         60 * time.Millisecond,
		HeartbeatEvery:   15 * time.Millisecond,
		// Delay holds every completion long enough for the deaf lease to
		// expire mid-attempt, guaranteeing the duplicate-commit race runs.
		Chaos: chaos.Spec{Seed: 5, HBDrop: 1, Delay: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Drain(context.Background())

	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	v := waitSweep(t, s, sw.ID, StateDone, 2*time.Minute)
	if v.MergedDigest != want {
		t.Fatalf("hbdrop sweep merged digest %s != clean single-node %s", v.MergedDigest, want)
	}
	if v.Revocations < 1 {
		t.Fatalf("Revocations = %d, want >= 1 (the deaf lease must expire)", v.Revocations)
	}
	fs := s.coord.stats()
	if fs.LeaseExpirations < 1 {
		t.Fatalf("LeaseExpirations = %d, want >= 1", fs.LeaseExpirations)
	}
	if fs.HeartbeatDrops != 1 {
		t.Fatalf("HeartbeatDrops = %d, want 1", fs.HeartbeatDrops)
	}
	if got := s.cache.len(); got < 2 {
		t.Fatalf("cache has %d results after convergence, want >= 2", got)
	}
}

// TestSweepAdmission pins the sweep tier's admission errors without
// running anything (the server is never started, so tasks stay queued).
func TestSweepAdmission(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxSweeps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Zero runnable grid points: validation error.
	if _, err := s.SubmitSweep(SweepSpec{Policies: []string{"EVEN"}}); err == nil {
		t.Fatal("empty grid admitted")
	} else {
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("empty grid error = %T, want *ValidationError", err)
		}
	}

	// Grid larger than MaxSweepTasks: validation error.
	big := SweepSpec{Scenes: []string{"SPL"}, Policies: make([]string, 0, DefaultMaxSweepTasks+1)}
	for i := 0; i <= DefaultMaxSweepTasks; i++ {
		big.Policies = append(big.Policies, "EVEN")
	}
	if _, err := s.SubmitSweep(big); err == nil {
		t.Fatal("oversized grid admitted")
	}

	// Admission bound: the second live sweep is refused with retry advice.
	if _, err := s.SubmitSweep(twoTaskSweep()); err != nil {
		t.Fatalf("first sweep refused: %v", err)
	}
	_, err = s.SubmitSweep(twoTaskSweep())
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("second sweep error = %v (%T), want *QueueFullError", err, err)
	}
	if qf.RetryAfter <= 0 {
		t.Fatalf("QueueFullError.RetryAfter = %v, want > 0", qf.RetryAfter)
	}
}

// TestSweepCancel: cancel releases the admission slot, marks the sweep
// canceled, and a second cancel reports already-terminal.
func TestSweepCancel(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxSweeps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sw, err := s.SubmitSweep(twoTaskSweep())
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	ok, err := s.CancelSweep(sw.ID)
	if err != nil || !ok {
		t.Fatalf("CancelSweep = %v, %v", ok, err)
	}
	v := s.viewOfSweep(sw, true)
	if v.State != StateCanceled {
		t.Fatalf("state after cancel = %s", v.State)
	}
	ok, err = s.CancelSweep(sw.ID)
	if err != nil || ok {
		t.Fatalf("second CancelSweep = %v, %v; want false, nil", ok, err)
	}
	if _, err := s.CancelSweep("s999999"); err == nil {
		t.Fatal("cancel of unknown sweep did not error")
	}
	// The slot freed by the cancel admits a new sweep.
	if _, err := s.SubmitSweep(twoTaskSweep()); err != nil {
		t.Fatalf("submit after cancel refused: %v", err)
	}
}

// TestSweepHTTP drives the sweep tier end to end over the wire: submit,
// poll, stream the merged timeline, verify the metrics the CI fleet-chaos
// job asserts on, and check the terminal-state DELETE conflict.
func TestSweepHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP fleet round trip is not short")
	}
	_, ts := streamServer(t, Config{Workers: 1, FleetWorkers: 2, ProgressInterval: 256})

	body := `{"scenes":["SPL"],"computes":["","VIO"],"policies":["EVEN"],"width":128,"height":72}`
	res, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	var created sweepView
	if err := json.NewDecoder(res.Body).Decode(&created); err != nil {
		t.Fatalf("decode created sweep: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusCreated || created.ID == "" || created.Total != 2 {
		t.Fatalf("POST -> %d %+v", res.StatusCode, created)
	}

	// Malformed grid: 400.
	res, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"policies":["EVEN"]}`))
	if err != nil {
		t.Fatalf("POST empty grid: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty grid -> %d, want 400", res.StatusCode)
	}

	var final sweepView
	deadline := time.Now().Add(2 * time.Minute)
	for {
		res, err := http.Get(ts.URL + "/v1/sweeps/" + created.ID)
		if err != nil {
			t.Fatalf("GET sweep: %v", err)
		}
		if err := json.NewDecoder(res.Body).Decode(&final); err != nil {
			t.Fatalf("decode sweep: %v", err)
		}
		res.Body.Close()
		if final.State == StateDone {
			break
		}
		if final.State == StateFailed || final.State == StateCanceled {
			t.Fatalf("sweep reached %s", final.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s", final.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.MergedDigest == "" || final.Done != 2 {
		t.Fatalf("final sweep view %+v", final)
	}

	// Listing includes it, without the task table.
	res, err = http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatalf("GET /v1/sweeps: %v", err)
	}
	var list struct {
		Sweeps []sweepView `json:"sweeps"`
	}
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	res.Body.Close()
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != created.ID || len(list.Sweeps[0].Tasks) != 0 {
		t.Fatalf("listing %+v", list)
	}

	// The merged timeline replays over SSE and ends with the sweep's
	// terminal lifecycle event carrying the merged digest.
	res, err = http.Get(ts.URL + "/v1/sweeps/" + created.ID + "/timeline")
	if err != nil {
		t.Fatalf("GET sweep timeline: %v", err)
	}
	sawDone := false
	err = readSSE(bufio.NewReader(res.Body), func(ev sseEvent) bool {
		if ev.Event != obs.TimelineLifecycle {
			return true
		}
		var tev obs.TimelineEvent
		json.Unmarshal([]byte(ev.Data), &tev)
		if State(tev.State) == StateDone && strings.Contains(tev.Detail, final.MergedDigest) {
			sawDone = true
			return false
		}
		return true
	})
	res.Body.Close()
	if err != nil && !sawDone {
		t.Fatalf("sweep timeline: %v", err)
	}
	if !sawDone {
		t.Fatal("sweep timeline never delivered the terminal event with the merged digest")
	}

	// Fleet metrics are on /metrics (the CI fleet-chaos job greps these).
	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	buf := new(strings.Builder)
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteString("\n")
	}
	res.Body.Close()
	metrics := buf.String()
	for _, name := range []string{
		"crispd_lease_grants_total", "crispd_lease_renewals_total",
		"crispd_lease_expirations_total", "crispd_lease_revocations_total",
		"crispd_fleet_resumes_total", "crispd_duplicate_results_total",
		"crispd_federated_cache_hits_total", "crispd_fleet_shards",
		"crispd_sweeps_active", "crispd_sweep_tasks_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(metrics, `crispd_sweep_tasks_total{state="done"} 2`) {
		t.Errorf("task-done counter wrong:\n%s", metrics)
	}

	// A finished sweep cannot be canceled: 409.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+created.ID, nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE sweep: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE finished sweep -> %d, want 409", res.StatusCode)
	}
}

// TestTimelineSubscriberCap pins the SSE admission bound: with
// MaxTimelineSubs=1 the second concurrent subscriber to the same timeline
// is refused with 503 + Retry-After, and a slot freed by a disconnect
// readmits. The server is never started, so the job stays queued and its
// hub stays open for the whole test.
func TestTimelineSubscriberCap(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxTimelineSubs: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := newTestHTTP(t, s)

	job, err := s.Submit(tinySpec("SPL", "VIO", "EVEN"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	url := ts + "/v1/jobs/" + job.ID + "/timeline"

	res1, err := http.Get(url)
	if err != nil {
		t.Fatalf("first subscriber: %v", err)
	}
	if res1.StatusCode != http.StatusOK {
		t.Fatalf("first subscriber -> %d, want 200", res1.StatusCode)
	}

	res2, err := http.Get(url)
	if err != nil {
		t.Fatalf("second subscriber: %v", err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second subscriber -> %d, want 503", res2.StatusCode)
	}
	if ra := res2.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}

	// Freeing the slot readmits — poll briefly: the server notices the
	// disconnect asynchronously.
	res1.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res3, err := http.Get(url)
		if err != nil {
			t.Fatalf("third subscriber: %v", err)
		}
		code := res3.StatusCode
		res3.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: still %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
