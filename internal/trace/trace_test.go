package trace

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"crisp/internal/isa"
)

// tinyKernel builds a minimal valid kernel: 1 CTA, 1 warp, ALU + load +
// EXIT.
func tinyKernel(name string, stream int) *Kernel {
	b := NewBuilder(name, KindCompute, stream, 64, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	r0 := b.NewReg()
	b.ALU(isa.OpMOV, r0, FullMask)
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(0x1000 + i*4)
	}
	r1 := b.NewReg()
	b.Mem(isa.OpLDG, r1, FullMask, addrs, ClassCompute, r0)
	b.ALU(isa.OpFADD, b.NewReg(), FullMask, r1, r0)
	return b.Finish()
}

func TestBuilderAppendsExit(t *testing.T) {
	k := tinyKernel("k", 0)
	w := k.CTAs[0].Warps[0]
	if w.Insts[len(w.Insts)-1].Op != isa.OpEXIT {
		t.Fatal("builder did not terminate warp with EXIT")
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesMissingAddrs(t *testing.T) {
	k := tinyKernel("k", 0)
	k.CTAs[0].Warps[0].Insts[1].Addrs = k.CTAs[0].Warps[0].Insts[1].Addrs[:5]
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted address/lane mismatch")
	}
}

func TestValidateCatchesEmptyMask(t *testing.T) {
	k := tinyKernel("k", 0)
	k.CTAs[0].Warps[0].Insts[0].Mask = 0
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted empty mask")
	}
}

func TestValidateCatchesMissingExit(t *testing.T) {
	k := tinyKernel("k", 0)
	w := &k.CTAs[0].Warps[0]
	w.Insts = w.Insts[:len(w.Insts)-1]
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted trace without EXIT")
	}
}

func TestValidateCatchesNoCTAs(t *testing.T) {
	k := &Kernel{Name: "empty", ThreadsPerCTA: 32}
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted kernel without CTAs")
	}
}

func TestInstCounts(t *testing.T) {
	k := tinyKernel("k", 0)
	if got := k.InstCount(); got != 4 {
		t.Errorf("InstCount = %d, want 4", got)
	}
	if got := k.ThreadInstCount(); got != 4*32 {
		t.Errorf("ThreadInstCount = %d, want 128", got)
	}
}

func TestWarpsPerCTA(t *testing.T) {
	k := &Kernel{ThreadsPerCTA: 96}
	if k.WarpsPerCTA() != 3 {
		t.Errorf("WarpsPerCTA(96) = %d", k.WarpsPerCTA())
	}
	k.ThreadsPerCTA = 100
	if k.WarpsPerCTA() != 4 {
		t.Errorf("WarpsPerCTA(100) = %d", k.WarpsPerCTA())
	}
}

func TestOpHistogram(t *testing.T) {
	k := tinyKernel("k", 0)
	h := k.OpHistogram()
	if h[isa.OpMOV] != 1 || h[isa.OpLDG] != 1 || h[isa.OpFADD] != 1 || h[isa.OpEXIT] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestActiveLanes(t *testing.T) {
	in := Inst{Mask: 0x0000000F}
	if in.ActiveLanes() != 4 {
		t.Errorf("ActiveLanes = %d", in.ActiveLanes())
	}
	in.Mask = FullMask
	if in.ActiveLanes() != 32 {
		t.Errorf("ActiveLanes = %d", in.ActiveLanes())
	}
}

func TestTexLinesPerCTA(t *testing.T) {
	b := NewBuilder("tex", KindFragment, 0, 64, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	// 32 lanes hitting 2 distinct 128B lines.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64((i % 2) * 128)
	}
	b.Mem(isa.OpTEX, b.NewReg(), FullMask, addrs, ClassTexture)
	// Same lines again (no new lines), plus one new line.
	addrs2 := make([]uint64, 32)
	for i := range addrs2 {
		addrs2[i] = uint64((i % 2) * (128 + 256))
	}
	b.Mem(isa.OpTEX, b.NewReg(), FullMask, addrs2, ClassTexture)
	k := b.Finish()
	lines := k.TexLinesPerCTA()
	if len(lines) != 1 {
		t.Fatalf("lines len = %d", len(lines))
	}
	// Lines touched: 0, 128 from first; 0 and 384 from second → {0,1,3}.
	if lines[0] != 3 {
		t.Errorf("TexLinesPerCTA = %d, want 3", lines[0])
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BeginWarp before BeginCTA did not panic")
		}
	}()
	b := NewBuilder("bad", KindCompute, 0, 32, 16, 0)
	b.BeginWarp()
}

func TestBuilderALURejectsMemOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ALU(LDG) did not panic")
		}
	}()
	b := NewBuilder("bad", KindCompute, 0, 32, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	b.ALU(isa.OpLDG, b.NewReg(), FullMask)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ks := []*Kernel{tinyKernel("a", 1), tinyKernel("b", 2)}
	var buf bytes.Buffer
	if err := Save(&buf, ks); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d kernels", len(got))
	}
	for i := range got {
		if got[i].Name != ks[i].Name || got[i].Stream != ks[i].Stream {
			t.Errorf("kernel %d identity mismatch", i)
		}
		if got[i].InstCount() != ks[i].InstCount() {
			t.Errorf("kernel %d inst count mismatch", i)
		}
		if err := got[i].Validate(); err != nil {
			t.Errorf("kernel %d invalid after round trip: %v", i, err)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/trace.bin"
	ks := []*Kernel{tinyKernel("f", 7)}
	if err := SaveFile(path, ks); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(got) != 1 || got[0].Name != "f" {
		t.Fatal("file round trip mismatch")
	}
}

func TestMemClassString(t *testing.T) {
	for c := MemClass(0); c < MemClassCount; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestKernelKind(t *testing.T) {
	if !KindVertex.IsGraphics() || !KindFragment.IsGraphics() || KindCompute.IsGraphics() {
		t.Error("IsGraphics misclassifies")
	}
	for _, k := range []KernelKind{KindCompute, KindVertex, KindFragment} {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	ks := []*Kernel{tinyKernel("v", 1)}
	var buf bytes.Buffer
	if err := Save(&buf, ks); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version field: re-encode with a different fingerprint
	// by patching a copy of the stream through a fresh save at a fake
	// version is impractical; instead, decode-tamper-reencode via gzip.
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// The first gob value is the version int; flip a byte inside it.
	raw[3] ^= 0x40
	var tampered bytes.Buffer
	zw := gzip.NewWriter(&tampered)
	zw.Write(raw)
	zw.Close()
	if _, err := Load(&tampered); err == nil {
		t.Fatal("version-tampered trace accepted")
	}
}
