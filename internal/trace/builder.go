package trace

import (
	"fmt"

	"crisp/internal/isa"
)

// Builder incrementally assembles one Kernel trace. Front ends create a
// Builder per kernel, open CTAs and warps, and append instructions; the
// Builder tracks register numbering per warp and appends the terminating
// EXIT automatically when a warp is closed.
type Builder struct {
	k       Kernel
	curCTA  *CTA
	curWarp *Warp
	nextReg int
}

// NewBuilder starts a kernel trace with the given identity and per-CTA
// resource requirements.
func NewBuilder(name string, kind KernelKind, stream, threadsPerCTA, regsPerThread, sharedMem int) *Builder {
	return &Builder{k: Kernel{
		Name:          name,
		Kind:          kind,
		Stream:        stream,
		ThreadsPerCTA: threadsPerCTA,
		RegsPerThread: regsPerThread,
		SharedMem:     sharedMem,
	}}
}

// BeginCTA opens a new CTA. Any open warp is closed first.
func (b *Builder) BeginCTA() {
	b.EndWarp()
	b.k.CTAs = append(b.k.CTAs, CTA{ID: len(b.k.CTAs)})
	b.curCTA = &b.k.CTAs[len(b.k.CTAs)-1]
}

// BeginWarp opens a new warp in the current CTA and resets register
// numbering. It panics if no CTA is open.
func (b *Builder) BeginWarp() {
	if b.curCTA == nil {
		panic("trace.Builder: BeginWarp before BeginCTA")
	}
	b.EndWarp()
	b.curCTA.Warps = append(b.curCTA.Warps, Warp{ID: len(b.curCTA.Warps)})
	b.curWarp = &b.curCTA.Warps[len(b.curCTA.Warps)-1]
	b.nextReg = 0
}

// EndWarp closes the open warp, appending EXIT if the trace does not
// already end with one. It is a no-op when no warp is open.
func (b *Builder) EndWarp() {
	if b.curWarp == nil {
		return
	}
	n := len(b.curWarp.Insts)
	if n == 0 || b.curWarp.Insts[n-1].Op != isa.OpEXIT {
		mask := FullMask
		if n > 0 {
			mask = b.curWarp.Insts[n-1].Mask
		}
		b.curWarp.Insts = append(b.curWarp.Insts, Inst{Op: isa.OpEXIT, Dst: isa.RegNone, SrcA: isa.RegNone, SrcB: isa.RegNone, SrcC: isa.RegNone, Mask: mask})
	}
	b.curWarp = nil
}

// NewReg allocates the next virtual register for the current warp.
// Register numbers wrap within the ISA's 8-bit space; the timing model
// only uses them for dependence tracking, so reuse after 255 registers is
// harmless (it conservatively adds dependencies).
func (b *Builder) NewReg() isa.Reg {
	r := isa.Reg(b.nextReg % int(isa.RegNone))
	b.nextReg++
	return r
}

// ALU appends a non-memory instruction writing dst from up to three
// sources (pass isa.RegNone for absent operands) under the given mask,
// and returns dst for chaining.
func (b *Builder) ALU(op isa.Opcode, dst isa.Reg, mask uint32, srcs ...isa.Reg) isa.Reg {
	if isa.IsMemory(op) {
		panic(fmt.Sprintf("trace.Builder: ALU called with memory opcode %v", op))
	}
	in := Inst{Op: op, Dst: dst, SrcA: isa.RegNone, SrcB: isa.RegNone, SrcC: isa.RegNone, Mask: mask}
	setSrcs(&in, srcs)
	b.append(in)
	return dst
}

// Mem appends a memory instruction with one address per active lane.
func (b *Builder) Mem(op isa.Opcode, dst isa.Reg, mask uint32, addrs []uint64, class MemClass, srcs ...isa.Reg) {
	if !isa.IsMemory(op) {
		panic(fmt.Sprintf("trace.Builder: Mem called with non-memory opcode %v", op))
	}
	in := Inst{Op: op, Dst: dst, SrcA: isa.RegNone, SrcB: isa.RegNone, SrcC: isa.RegNone, Mask: mask, Addrs: addrs, Class: class}
	setSrcs(&in, srcs)
	b.append(in)
}

// Shared appends a shared-memory access carrying no per-lane offsets:
// the LDST unit treats it as conflict-free (one bank transaction).
func (b *Builder) Shared(op isa.Opcode, dst isa.Reg, mask uint32, srcs ...isa.Reg) {
	b.SharedAddr(op, dst, mask, nil, srcs...)
}

// SharedAddr appends a shared-memory access with per-active-lane byte
// offsets within the CTA's shared segment; the LDST unit derives bank
// conflicts from them. Addresses never leave the SM, so they are offsets,
// not virtual addresses.
func (b *Builder) SharedAddr(op isa.Opcode, dst isa.Reg, mask uint32, offsets []uint64, srcs ...isa.Reg) {
	if op != isa.OpLDS && op != isa.OpSTS {
		panic(fmt.Sprintf("trace.Builder: Shared called with %v", op))
	}
	in := Inst{Op: op, Dst: dst, SrcA: isa.RegNone, SrcB: isa.RegNone, SrcC: isa.RegNone, Mask: mask, Addrs: offsets}
	setSrcs(&in, srcs)
	b.append(in)
}

// Barrier appends a CTA-wide barrier.
func (b *Builder) Barrier() {
	b.append(Inst{Op: isa.OpBAR, Dst: isa.RegNone, SrcA: isa.RegNone, SrcB: isa.RegNone, SrcC: isa.RegNone, Mask: FullMask})
}

func setSrcs(in *Inst, srcs []isa.Reg) {
	switch len(srcs) {
	case 0:
	case 1:
		in.SrcA = srcs[0]
	case 2:
		in.SrcA, in.SrcB = srcs[0], srcs[1]
	case 3:
		in.SrcA, in.SrcB, in.SrcC = srcs[0], srcs[1], srcs[2]
	default:
		panic("trace.Builder: more than three source operands")
	}
}

func (b *Builder) append(in Inst) {
	if b.curWarp == nil {
		panic("trace.Builder: instruction appended outside a warp")
	}
	b.curWarp.Insts = append(b.curWarp.Insts, in)
}

// Finish closes any open warp and returns the completed kernel.
func (b *Builder) Finish() *Kernel {
	b.EndWarp()
	b.curCTA = nil
	return &b.k
}
