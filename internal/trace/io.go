package trace

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"crisp/internal/isa"
)

// formatVersion fingerprints the trace file format: the container layout
// revision in the high bits and the ISA's opcode count in the low bits,
// because opcode insertion renumbers every serialized instruction.
const formatVersion = 1<<16 | isa.OpcodeCount

// Save serializes kernels to w (gob, gzip-compressed). This is the
// trace-driven workflow: front ends collect traces once, and timing
// experiments replay them in any combination.
func Save(w io.Writer, kernels []*Kernel) error {
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(formatVersion); err != nil {
		return fmt.Errorf("trace: encode version: %w", err)
	}
	if err := enc.Encode(len(kernels)); err != nil {
		return fmt.Errorf("trace: encode count: %w", err)
	}
	for _, k := range kernels {
		if err := enc.Encode(k); err != nil {
			return fmt.Errorf("trace: encode kernel %q: %w", k.Name, err)
		}
	}
	return zw.Close()
}

// Load reads kernels written by Save.
func Load(r io.Reader) ([]*Kernel, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: open gzip stream: %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var version int
	if err := dec.Decode(&version); err != nil {
		return nil, fmt.Errorf("trace: decode version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: format version %#x does not match this build's %#x (traces must be re-collected after ISA changes)", version, formatVersion)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("trace: decode count: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative kernel count %d", n)
	}
	// Cap the pre-allocation: n is attacker-controlled (a corrupt or
	// malicious file), and a huge count must fail at decode — after 0
	// kernels decode — rather than OOM the host up front.
	capHint := n
	if capHint > 1024 {
		capHint = 1024
	}
	kernels := make([]*Kernel, 0, capHint)
	for i := 0; i < n; i++ {
		var k Kernel
		if err := dec.Decode(&k); err != nil {
			return nil, fmt.Errorf("trace: decode kernel %d: %w", i, err)
		}
		kernels = append(kernels, &k)
	}
	return kernels, nil
}

// SaveFile writes kernels to the named file.
func SaveFile(path string, kernels []*Kernel) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, kernels); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads kernels from the named file.
func LoadFile(path string) ([]*Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
