package trace

import (
	"bytes"
	"testing"

	"crisp/internal/isa"
)

// fuzzSeedTrace serializes a small well-formed kernel set with Save so
// the corpus starts from bytes that decode successfully.
func fuzzSeedTrace() []byte {
	var kernels []*Kernel
	for i := 0; i < 2; i++ {
		b := NewBuilder("seed", KindCompute, 3, 64, 16, 256)
		b.BeginCTA()
		for w := 0; w < 2; w++ {
			b.BeginWarp()
			r := b.NewReg()
			b.ALU(isa.OpMOV, r, FullMask)
			addrs := make([]uint64, isa.WarpSize)
			for l := range addrs {
				addrs[l] = uint64(l * 4)
			}
			b.Mem(isa.OpLDG, b.NewReg(), FullMask, addrs, ClassCompute)
			b.Barrier()
		}
		kernels = append(kernels, b.Finish())
	}
	var buf bytes.Buffer
	if err := Save(&buf, kernels); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzKernelValidate feeds arbitrary bytes through the trace
// deserializer and validates whatever decodes: Load and Validate must
// contain any corruption — truncated streams, hostile counts, malformed
// instruction lists — with a clean error, never a panic or an OOM.
func FuzzKernelValidate(f *testing.F) {
	seed := fuzzSeedTrace()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic
	f.Fuzz(func(t *testing.T, data []byte) {
		kernels, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, k := range kernels {
			if k == nil {
				t.Fatal("Load returned a nil kernel without error")
			}
			// Validate must classify, not crash, whatever decoded.
			_ = k.Validate()
			_ = k.InstCount()
			_ = k.WarpsPerCTA()
		}
	})
}
