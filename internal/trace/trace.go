// Package trace defines the execution-trace data model that connects
// CRISP's functional front ends to its cycle-level timing simulator.
//
// The layout follows Accel-Sim's SASS traces: a Kernel is a grid of CTAs
// (thread blocks); a CTA is a set of warps; a warp is the ordered list of
// instructions it executed, each carrying its active mask, register
// operands, and — for memory operations — the per-lane addresses it
// referenced. The timing model replays these traces; it never re-executes
// the program, so concurrent-execution studies can combine traces that
// were collected independently (a rendering trace and a compute trace),
// exactly as the paper prescribes.
package trace

import (
	"fmt"
	"math/bits"

	"crisp/internal/isa"
)

// MemClass labels the kind of data a memory instruction touches. The L2
// model uses it to attribute cache lines to texture, pipeline (inter-stage
// attributes), framebuffer, or compute data for the L2-composition studies
// (paper Figs. 11 and 15).
type MemClass uint8

const (
	// ClassNone marks non-memory instructions.
	ClassNone MemClass = iota
	// ClassTexture is texel data fetched by TEX instructions.
	ClassTexture
	// ClassPipeline is inter-stage rendering data: vertex attributes,
	// post-transform varyings written through L2 between pipeline stages.
	ClassPipeline
	// ClassFramebuffer is color/depth render-target traffic.
	ClassFramebuffer
	// ClassCompute is ordinary global-memory data of compute kernels.
	ClassCompute
)

// MemClassCount is the number of MemClass values.
const MemClassCount = 5

var memClassNames = [...]string{
	ClassNone:        "none",
	ClassTexture:     "texture",
	ClassPipeline:    "pipeline",
	ClassFramebuffer: "framebuffer",
	ClassCompute:     "compute",
}

func (c MemClass) String() string {
	if int(c) < len(memClassNames) {
		return memClassNames[c]
	}
	return fmt.Sprintf("MemClass(%d)", uint8(c))
}

// Inst is one executed warp instruction.
type Inst struct {
	Op   isa.Opcode
	Dst  isa.Reg
	SrcA isa.Reg
	SrcB isa.Reg
	SrcC isa.Reg
	// Mask is the active-lane mask; bit i set means lane i executed.
	Mask uint32
	// Addrs holds one byte address per active lane, in ascending lane
	// order, for memory instructions. Empty for non-memory instructions.
	Addrs []uint64
	// Class attributes memory traffic for cache-composition accounting.
	Class MemClass
}

// ActiveLanes reports the number of executing lanes.
func (in *Inst) ActiveLanes() int { return bits.OnesCount32(in.Mask) }

// FullMask is the mask with all 32 lanes active.
const FullMask uint32 = 0xFFFFFFFF

// Warp is the trace of one warp: the instructions it executed, in order.
type Warp struct {
	ID    int // warp index within its CTA
	Insts []Inst
}

// CTA is one thread block's trace.
type CTA struct {
	ID    int // linear CTA index within the kernel
	Warps []Warp
}

// KernelKind distinguishes rendering-pipeline kernels from compute kernels.
type KernelKind uint8

const (
	// KindCompute marks a general-purpose (CUDA-analog) kernel.
	KindCompute KernelKind = iota
	// KindVertex marks a vertex-shading kernel (one per vertex batch).
	KindVertex
	// KindFragment marks a fragment-shading kernel.
	KindFragment
)

var kindNames = [...]string{KindCompute: "compute", KindVertex: "vertex", KindFragment: "fragment"}

func (k KernelKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KernelKind(%d)", uint8(k))
}

// IsGraphics reports whether the kernel belongs to the rendering pipeline.
func (k KernelKind) IsGraphics() bool { return k == KindVertex || k == KindFragment }

// Kernel is one launched grid with its static resource requirements, which
// the CTA scheduler uses for occupancy and partitioning decisions.
type Kernel struct {
	Name string
	Kind KernelKind
	// Stream identifies the in-order command stream the kernel belongs
	// to. Each rendering batch is its own stream; compute kernels carry
	// the stream their program used.
	Stream int

	ThreadsPerCTA int
	RegsPerThread int
	SharedMem     int // bytes per CTA

	CTAs []CTA
}

// WarpsPerCTA reports how many warps one CTA launches.
func (k *Kernel) WarpsPerCTA() int {
	return (k.ThreadsPerCTA + isa.WarpSize - 1) / isa.WarpSize
}

// InstCount reports the total number of warp instructions in the trace.
func (k *Kernel) InstCount() int {
	n := 0
	for i := range k.CTAs {
		for j := range k.CTAs[i].Warps {
			n += len(k.CTAs[i].Warps[j].Insts)
		}
	}
	return n
}

// ThreadInstCount reports the total thread-level instruction count
// (warp instructions weighted by active lanes).
func (k *Kernel) ThreadInstCount() int64 {
	var n int64
	for i := range k.CTAs {
		for j := range k.CTAs[i].Warps {
			for l := range k.CTAs[i].Warps[j].Insts {
				n += int64(k.CTAs[i].Warps[j].Insts[l].ActiveLanes())
			}
		}
	}
	return n
}

// Validate checks structural invariants of the trace: every CTA has at
// least one warp, warps end with EXIT, memory instructions carry exactly
// one address per active lane, and non-memory instructions carry none.
func (k *Kernel) Validate() error {
	if k.ThreadsPerCTA <= 0 {
		return fmt.Errorf("kernel %q: ThreadsPerCTA = %d", k.Name, k.ThreadsPerCTA)
	}
	if len(k.CTAs) == 0 {
		return fmt.Errorf("kernel %q: no CTAs", k.Name)
	}
	for i := range k.CTAs {
		cta := &k.CTAs[i]
		if len(cta.Warps) == 0 {
			return fmt.Errorf("kernel %q CTA %d: no warps", k.Name, cta.ID)
		}
		if len(cta.Warps) > k.WarpsPerCTA() {
			return fmt.Errorf("kernel %q CTA %d: %d warps exceeds CTA size", k.Name, cta.ID, len(cta.Warps))
		}
		for j := range cta.Warps {
			w := &cta.Warps[j]
			if len(w.Insts) == 0 {
				return fmt.Errorf("kernel %q CTA %d warp %d: empty", k.Name, cta.ID, w.ID)
			}
			last := w.Insts[len(w.Insts)-1]
			if last.Op != isa.OpEXIT {
				return fmt.Errorf("kernel %q CTA %d warp %d: trace does not end with EXIT", k.Name, cta.ID, w.ID)
			}
			for l := range w.Insts {
				in := &w.Insts[l]
				if in.Mask == 0 {
					return fmt.Errorf("kernel %q CTA %d warp %d inst %d (%v): empty active mask", k.Name, cta.ID, w.ID, l, in.Op)
				}
				switch {
				case isa.IsMemory(in.Op) && isa.SpaceOf(in.Op) != isa.SpaceShared && isa.SpaceOf(in.Op) != isa.SpaceConst:
					if len(in.Addrs) != in.ActiveLanes() {
						return fmt.Errorf("kernel %q CTA %d warp %d inst %d (%v): %d addrs for %d active lanes",
							k.Name, cta.ID, w.ID, l, in.Op, len(in.Addrs), in.ActiveLanes())
					}
				case isa.SpaceOf(in.Op) == isa.SpaceShared:
					// Shared accesses carry either no offsets (modeled
					// conflict-free) or one per active lane.
					if len(in.Addrs) != 0 && len(in.Addrs) != in.ActiveLanes() {
						return fmt.Errorf("kernel %q CTA %d warp %d inst %d (%v): %d shared offsets for %d active lanes",
							k.Name, cta.ID, w.ID, l, in.Op, len(in.Addrs), in.ActiveLanes())
					}
				case len(in.Addrs) != 0 && !isa.IsMemory(in.Op):
					return fmt.Errorf("kernel %q CTA %d warp %d inst %d (%v): non-memory op carries addresses", k.Name, cta.ID, w.ID, l, in.Op)
				}
			}
		}
	}
	return nil
}

// OpHistogram counts warp instructions by opcode.
func (k *Kernel) OpHistogram() map[isa.Opcode]int {
	h := make(map[isa.Opcode]int)
	for i := range k.CTAs {
		for j := range k.CTAs[i].Warps {
			for l := range k.CTAs[i].Warps[j].Insts {
				h[k.CTAs[i].Warps[j].Insts[l].Op]++
			}
		}
	}
	return h
}

// CacheLineSize is the cache line granularity used for static trace
// analysis (128 B, matching the simulated caches and paper Fig. 10).
const CacheLineSize = 128

// TexLinesPerCTA reports, for each CTA, the number of distinct 128-byte
// cache lines referenced by its TEX instructions — the static analysis
// behind paper Fig. 10.
func (k *Kernel) TexLinesPerCTA() []int {
	out := make([]int, 0, len(k.CTAs))
	for i := range k.CTAs {
		lines := make(map[uint64]struct{})
		for j := range k.CTAs[i].Warps {
			for l := range k.CTAs[i].Warps[j].Insts {
				in := &k.CTAs[i].Warps[j].Insts[l]
				if in.Op != isa.OpTEX {
					continue
				}
				for _, a := range in.Addrs {
					lines[a/CacheLineSize] = struct{}{}
				}
			}
		}
		out = append(out, len(lines))
	}
	return out
}
