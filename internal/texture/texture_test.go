package texture

import (
	"testing"
	"testing/quick"

	"crisp/internal/gmath"
)

func solid(w, h, layers int, c gmath.Vec4) []gmath.Vec4 {
	pix := make([]gmath.Vec4, w*h*layers)
	for i := range pix {
		pix[i] = c
	}
	return pix
}

func TestMipChainLength(t *testing.T) {
	// log2(dim)+1 levels, per the paper.
	tex, err := New("t", FormatRGBA8, 64, 64, 1, solid(64, 64, 1, gmath.V4(1, 0, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if tex.Levels() != 7 {
		t.Errorf("levels = %d, want 7 (log2(64)+1)", tex.Levels())
	}
	w, h := tex.LevelDim(6)
	if w != 1 || h != 1 {
		t.Errorf("top level = %dx%d", w, h)
	}
	// Non-square: 64x16 → log2(64)+1 = 7 levels, clamped min dim 1.
	tex2, err := New("t2", FormatRGBA8, 64, 16, 1, solid(64, 16, 1, gmath.V4(0, 1, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if tex2.Levels() != 7 {
		t.Errorf("64x16 levels = %d, want 7", tex2.Levels())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New("bad", FormatRGBA8, 60, 64, 1, solid(60, 64, 1, gmath.Vec4{})); err == nil {
		t.Error("accepted non-power-of-two width")
	}
	if _, err := New("bad", FormatRGBA8, 64, 64, 1, make([]gmath.Vec4, 3)); err == nil {
		t.Error("accepted wrong pixel count")
	}
	if _, err := New("bad", FormatRGBA8, 0, 64, 1, nil); err == nil {
		t.Error("accepted zero dimension")
	}
}

func TestDownsamplePreservesSolidColor(t *testing.T) {
	c := gmath.V4(0.25, 0.5, 0.75, 1)
	tex, _ := New("t", FormatRGBA8, 32, 32, 1, solid(32, 32, 1, c))
	tex.Bind(0x1000)
	for lv := 0; lv < tex.Levels(); lv++ {
		col, _ := tex.Sample(0.5, 0.5, 0, float32(lv), FilterNearest)
		if gmath.Abs(col.X-c.X) > 1e-5 || gmath.Abs(col.Y-c.Y) > 1e-5 {
			t.Errorf("level %d color = %v", lv, col)
		}
	}
}

func TestBindAssignsDisjointLevels(t *testing.T) {
	tex, _ := New("t", FormatRGBA8, 16, 16, 1, solid(16, 16, 1, gmath.Vec4{}))
	size := tex.Bind(0x10000)
	if size == 0 {
		t.Fatal("Bind returned zero size")
	}
	// Level 0 occupies 16*16*4 = 1024 bytes; level 1 must start after.
	a0 := tex.TexelAddr(0, 0, 15, 15)
	a1 := tex.TexelAddr(1, 0, 0, 0)
	if a1 <= a0 {
		t.Errorf("level 1 base %#x overlaps level 0 end %#x", a1, a0)
	}
	// All addresses inside [base, base+size).
	for lv := 0; lv < tex.Levels(); lv++ {
		w, h := tex.LevelDim(lv)
		a := tex.TexelAddr(lv, 0, w-1, h-1)
		if a < 0x10000 || a >= 0x10000+size {
			t.Errorf("level %d texel address %#x outside texture", lv, a)
		}
	}
}

func TestTexelAddrFormats(t *testing.T) {
	for _, f := range []Format{FormatRGBA8, FormatRG8, FormatR8, FormatRGBA16F} {
		tex, _ := New("t", f, 16, 16, 1, solid(16, 16, 1, gmath.Vec4{}))
		tex.Bind(0)
		stride := tex.TexelAddr(0, 0, 1, 0) - tex.TexelAddr(0, 0, 0, 0)
		if int(stride) != f.Bytes() {
			t.Errorf("%v stride = %d, want %d", f, stride, f.Bytes())
		}
	}
	// BC1: two texels per byte.
	tex, _ := New("t", FormatBC1, 16, 16, 1, solid(16, 16, 1, gmath.Vec4{}))
	tex.Bind(0)
	if d := tex.TexelAddr(0, 0, 2, 0) - tex.TexelAddr(0, 0, 0, 0); d != 1 {
		t.Errorf("BC1 2-texel delta = %d, want 1", d)
	}
}

func TestMipMergeReducesDistinctTexels(t *testing.T) {
	// The Fig. 7 mechanism: 4 texel coordinates in a 4x4 texture that are
	// distinct at level 0 collide at level 1.
	tex, _ := New("t", FormatRGBA8, 4, 4, 1, solid(4, 4, 1, gmath.Vec4{}))
	tex.Bind(0)
	uvs := [][2]float32{{0.1, 0.1}, {0.3, 0.1}, {0.1, 0.3}, {0.3, 0.3}}
	addrs0 := map[uint64]bool{}
	addrs1 := map[uint64]bool{}
	for _, uv := range uvs {
		_, a0 := tex.Sample(uv[0], uv[1], 0, 0, FilterNearest)
		addrs0[a0] = true
		_, a1 := tex.Sample(uv[0], uv[1], 0, 1, FilterNearest)
		addrs1[a1] = true
	}
	if len(addrs0) != 4 {
		t.Errorf("level 0 distinct texels = %d, want 4", len(addrs0))
	}
	if len(addrs1) != 1 {
		t.Errorf("level 1 distinct texels = %d, want 1", len(addrs1))
	}
}

func TestLayeredAddressing(t *testing.T) {
	tex, _ := New("t", FormatRGBA8, 8, 8, 4, solid(8, 8, 4, gmath.Vec4{}))
	tex.Bind(0)
	a0 := tex.TexelAddr(0, 0, 0, 0)
	a1 := tex.TexelAddr(0, 1, 0, 0)
	if a1-a0 != 8*8*4 {
		t.Errorf("layer stride = %d, want %d", a1-a0, 8*8*4)
	}
}

func TestSampleWraps(t *testing.T) {
	tex := Checker("c", FormatRGBA8, 16, 16, gmath.V4(1, 1, 1, 1), gmath.V4(0, 0, 0, 1), 2)
	tex.Bind(0)
	c1, _ := tex.Sample(0.25, 0.25, 0, 0, FilterNearest)
	c2, _ := tex.Sample(1.25, 0.25, 0, 0, FilterNearest)
	if c1 != c2 {
		t.Errorf("wrap mismatch: %v vs %v", c1, c2)
	}
}

func TestBilinearBlends(t *testing.T) {
	// Half black, half white: sampling the boundary blends.
	pix := make([]gmath.Vec4, 16*16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := float32(0)
			if x >= 8 {
				v = 1
			}
			pix[y*16+x] = gmath.V4(v, v, v, 1)
		}
	}
	tex, _ := New("t", FormatRGBA8, 16, 16, 1, pix)
	tex.Bind(0)
	c, _ := tex.Sample(0.5, 0.5, 0, 0, FilterBilinear)
	if c.X <= 0.2 || c.X >= 0.8 {
		t.Errorf("boundary sample = %v, want blended", c.X)
	}
}

func TestTrilinearBlendsLevels(t *testing.T) {
	// Level 0 is a checker; level 4 is nearly uniform. A fractional LoD
	// between them must interpolate.
	tex := Checker("c", FormatRGBA8, 32, 32, gmath.V4(1, 1, 1, 1), gmath.V4(0, 0, 0, 1), 16)
	tex.Bind(0)
	c0, _ := tex.Sample(0.26, 0.26, 0, 0, FilterTrilinear)
	cTop, _ := tex.Sample(0.26, 0.26, 0, float32(tex.Levels()-1), FilterTrilinear)
	cMid, _ := tex.Sample(0.26, 0.26, 0, 2.5, FilterTrilinear)
	lo, hi := gmath.Min(c0.X, cTop.X), gmath.Max(c0.X, cTop.X)
	if cMid.X < lo-0.3 || cMid.X > hi+0.3 {
		t.Errorf("trilinear mid %v outside [%v, %v] band", cMid.X, lo, hi)
	}
}

func TestLodForFootprints(t *testing.T) {
	tex, _ := New("t", FormatRGBA8, 256, 256, 1, solid(256, 256, 1, gmath.Vec4{}))
	// One texel per pixel → LoD 0.
	if l := tex.LodFor(1.0/256, 0, 0, 1.0/256); l != 0 {
		t.Errorf("1:1 LoD = %v", l)
	}
	// Four texels per pixel → LoD 2.
	if l := tex.LodFor(4.0/256, 0, 0, 4.0/256); gmath.Abs(l-2) > 0.01 {
		t.Errorf("4:1 LoD = %v, want 2", l)
	}
	// Magnification clamps at 0.
	if l := tex.LodFor(0.1/256, 0, 0, 0.1/256); l != 0 {
		t.Errorf("magnified LoD = %v, want 0", l)
	}
}

func TestSampleAddrAlwaysInBounds(t *testing.T) {
	tex := Noise("n", FormatRGBA8, 64, 64, 2, 42)
	base := uint64(0x40000)
	size := tex.Bind(base)
	f := func(u, v float32, lod float32, layer uint8) bool {
		if u != u || v != v || lod != lod { // NaN guards
			return true
		}
		_, addr := tex.Sample(u, v, int(layer%2), gmath.Clamp(lod, 0, 20), FilterTrilinear)
		return addr >= base && addr < base+size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestProceduralGeneratorsDeterministic(t *testing.T) {
	a := Noise("n", FormatRGBA8, 32, 32, 1, 7)
	b := Noise("n", FormatRGBA8, 32, 32, 1, 7)
	a.Bind(0)
	b.Bind(0)
	for _, uv := range [][2]float32{{0.1, 0.9}, {0.5, 0.5}, {0.99, 0.01}} {
		ca, _ := a.Sample(uv[0], uv[1], 0, 0, FilterNearest)
		cb, _ := b.Sample(uv[0], uv[1], 0, 0, FilterNearest)
		if ca != cb {
			t.Errorf("same-seed noise differs at %v", uv)
		}
	}
	c := Noise("n", FormatRGBA8, 32, 32, 1, 8)
	c.Bind(0)
	same := true
	for _, uv := range [][2]float32{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}} {
		ca, _ := a.Sample(uv[0], uv[1], 0, 0, FilterNearest)
		cc, _ := c.Sample(uv[0], uv[1], 0, 0, FilterNearest)
		if ca != cc {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestFormatStrings(t *testing.T) {
	for _, f := range []Format{FormatRGBA8, FormatRG8, FormatR8, FormatRGBA16F, FormatBC1} {
		if f.String() == "" {
			t.Errorf("format %d unnamed", f)
		}
		if f.Bytes() <= 0 {
			t.Errorf("format %v non-positive bytes", f)
		}
	}
}

func TestLodForMonotoneInFootprint(t *testing.T) {
	tex, _ := New("t", FormatRGBA8, 256, 256, 1, solid(256, 256, 1, gmath.Vec4{}))
	f := func(raw uint16) bool {
		// Two footprints, a ≤ b: LoD(a) ≤ LoD(b).
		a := float32(raw%1000) / 1000 * 0.1
		b := a * 2
		la := tex.LodFor(a, 0, 0, a)
		lb := tex.LodFor(b, 0, 0, b)
		return la <= lb+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMipDimsHalveMonotonically(t *testing.T) {
	tex, _ := New("t", FormatRGBA8, 128, 32, 1, solid(128, 32, 1, gmath.Vec4{}))
	pw, ph := tex.LevelDim(0)
	for lv := 1; lv < tex.Levels(); lv++ {
		w, h := tex.LevelDim(lv)
		if w > pw || h > ph || w < 1 || h < 1 {
			t.Fatalf("level %d dims %dx%d after %dx%d", lv, w, h, pw, ph)
		}
		pw, ph = w, h
	}
	if pw != 1 || ph != 1 {
		t.Errorf("top level = %dx%d, want 1x1", pw, ph)
	}
}
