// Package texture models GPU textures with full mip chains: formats,
// procedural content generation, normalized-coordinate addressing,
// nearest/bilinear/trilinear filtering, layered (array) textures, and —
// crucially for the simulator — the texel byte addresses each sample
// touches, which the shader front end records into TEX traces.
//
// Mipmapping is the subject of the paper's first case study: each level is
// down-sampled by half, the chain has log2(dim)+1 levels, and sampling at
// a higher level makes neighboring fragments collide onto the same texel,
// cutting L1 texture traffic by multiples (paper Figs. 7-9).
package texture

import (
	"fmt"
	"math/rand"

	"crisp/internal/gmath"
)

// Format is a texel storage format; it determines bytes per texel and thus
// the address stride, which shapes cache-line utilization.
type Format uint8

const (
	// FormatRGBA8 is 8-bit-per-channel color (4 B/texel).
	FormatRGBA8 Format = iota
	// FormatRG8 is a two-channel format (2 B/texel), e.g. normal XY.
	FormatRG8
	// FormatR8 is single channel (1 B/texel), e.g. AO or roughness.
	FormatR8
	// FormatRGBA16F is half-float HDR color (8 B/texel), e.g. irradiance.
	FormatRGBA16F
	// FormatBC1 approximates a block-compressed footprint (0.5 B/texel,
	// modeled as 1 B per 2 texels along x).
	FormatBC1
)

// Bytes reports the storage size of one texel (BC1 reports 1; its halved
// footprint is handled in address computation).
func (f Format) Bytes() int {
	switch f {
	case FormatRGBA8:
		return 4
	case FormatRG8:
		return 2
	case FormatR8:
		return 1
	case FormatRGBA16F:
		return 8
	case FormatBC1:
		return 1
	}
	return 4
}

func (f Format) String() string {
	switch f {
	case FormatRGBA8:
		return "RGBA8"
	case FormatRG8:
		return "RG8"
	case FormatR8:
		return "R8"
	case FormatRGBA16F:
		return "RGBA16F"
	case FormatBC1:
		return "BC1"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// Filter selects the sampling filter.
type Filter uint8

const (
	// FilterNearest picks the closest texel.
	FilterNearest Filter = iota
	// FilterBilinear blends the 2×2 neighborhood.
	FilterBilinear
	// FilterTrilinear blends bilinear taps from two mip levels.
	FilterTrilinear
)

// level is one mip level's pixel storage (RGBA float for simplicity;
// the Format only affects addressing).
type level struct {
	w, h int
	pix  []gmath.Vec4 // layer-major: layer*w*h + y*w + x
}

// Texture is a (possibly layered) 2D texture with a full mip chain.
type Texture struct {
	Name   string
	Fmt    Format
	W, H   int
	Layers int
	levels []level
	// base is the virtual byte address of each level's storage.
	base []uint64
	size uint64
}

// New builds a texture from layer-major RGBA pixels and generates the full
// mip chain. W and H must be powers of two.
func New(name string, fmtc Format, w, h, layers int, pix []gmath.Vec4) (*Texture, error) {
	if w <= 0 || h <= 0 || layers <= 0 {
		return nil, fmt.Errorf("texture %q: bad dimensions %dx%dx%d", name, w, h, layers)
	}
	if w&(w-1) != 0 || h&(h-1) != 0 {
		return nil, fmt.Errorf("texture %q: dimensions %dx%d not powers of two", name, w, h)
	}
	if len(pix) != w*h*layers {
		return nil, fmt.Errorf("texture %q: %d pixels for %dx%dx%d", name, len(pix), w, h, layers)
	}
	t := &Texture{Name: name, Fmt: fmtc, W: w, H: h, Layers: layers}
	t.levels = append(t.levels, level{w: w, h: h, pix: pix})
	for lw, lh := w, h; lw > 1 || lh > 1; {
		nw, nh := max(1, lw/2), max(1, lh/2)
		t.levels = append(t.levels, downsample(t.levels[len(t.levels)-1], nw, nh, layers))
		lw, lh = nw, nh
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// downsample box-filters src into an nw×nh level.
func downsample(src level, nw, nh, layers int) level {
	dst := level{w: nw, h: nh, pix: make([]gmath.Vec4, nw*nh*layers)}
	sx := src.w / nw
	sy := src.h / nh
	if sx < 1 {
		sx = 1
	}
	if sy < 1 {
		sy = 1
	}
	inv := 1 / float32(sx*sy)
	for l := 0; l < layers; l++ {
		for y := 0; y < nh; y++ {
			for x := 0; x < nw; x++ {
				var acc gmath.Vec4
				for dy := 0; dy < sy; dy++ {
					for dx := 0; dx < sx; dx++ {
						acc = acc.Add(src.pix[l*src.w*src.h+(y*sy+dy)*src.w+(x*sx+dx)])
					}
				}
				dst.pix[l*nw*nh+y*nw+x] = acc.Scale(inv)
			}
		}
	}
	return dst
}

// Levels reports the number of mip levels (log2(max dim)+1).
func (t *Texture) Levels() int { return len(t.levels) }

// LevelDim reports the dimensions of a mip level.
func (t *Texture) LevelDim(lv int) (w, h int) {
	lv = gmath.ClampInt(lv, 0, len(t.levels)-1)
	return t.levels[lv].w, t.levels[lv].h
}

// Bind assigns virtual addresses to every level starting at base and
// returns the total byte size occupied.
func (t *Texture) Bind(base uint64) uint64 {
	t.base = make([]uint64, len(t.levels))
	addr := base
	for i, lv := range t.levels {
		t.base[i] = addr
		sz := uint64(lv.w*lv.h*t.Layers) * uint64(t.Fmt.Bytes())
		if t.Fmt == FormatBC1 {
			sz = (sz + 1) / 2
		}
		// Align each level to a cache line.
		addr += (sz + 127) &^ 127
	}
	t.size = addr - base
	return t.size
}

// Size reports the bound byte size (0 before Bind).
func (t *Texture) Size() uint64 { return t.size }

// TexelAddr computes the virtual byte address of texel (x, y) of the given
// layer and level. The texture must be bound.
func (t *Texture) TexelAddr(lv, layer, x, y int) uint64 {
	if t.base == nil {
		panic(fmt.Sprintf("texture %q: TexelAddr before Bind", t.Name))
	}
	lv = gmath.ClampInt(lv, 0, len(t.levels)-1)
	l := &t.levels[lv]
	x = gmath.ClampInt(x, 0, l.w-1)
	y = gmath.ClampInt(y, 0, l.h-1)
	layer = gmath.ClampInt(layer, 0, t.Layers-1)
	idx := uint64(layer*l.w*l.h + y*l.w + x)
	if t.Fmt == FormatBC1 {
		return t.base[lv] + idx/2
	}
	return t.base[lv] + idx*uint64(t.Fmt.Bytes())
}

// texel fetches one texel with clamp-to-edge addressing.
func (t *Texture) texel(lv, layer, x, y int) gmath.Vec4 {
	l := &t.levels[lv]
	x = gmath.ClampInt(x, 0, l.w-1)
	y = gmath.ClampInt(y, 0, l.h-1)
	layer = gmath.ClampInt(layer, 0, t.Layers-1)
	return l.pix[layer*l.w*l.h+y*l.w+x]
}

// Sample filters the texture at normalized (u, v) in the given layer at
// mip level lod (fractional for trilinear), returning the color and the
// byte address of the dominant texel — the address the TEX trace carries.
func (t *Texture) Sample(u, v float32, layer int, lod float32, filter Filter) (gmath.Vec4, uint64) {
	maxLv := float32(len(t.levels) - 1)
	lod = gmath.Clamp(lod, 0, maxLv)
	switch filter {
	case FilterNearest:
		lv := int(lod + 0.5)
		c, a := t.sampleNearest(u, v, layer, lv)
		return c, a
	case FilterBilinear:
		lv := int(lod + 0.5)
		c, a := t.sampleBilinear(u, v, layer, lv)
		return c, a
	default: // trilinear
		lv0 := int(lod)
		frac := lod - float32(lv0)
		c0, a0 := t.sampleBilinear(u, v, layer, lv0)
		if frac == 0 || lv0 == len(t.levels)-1 {
			return c0, a0
		}
		c1, _ := t.sampleBilinear(u, v, layer, lv0+1)
		return gmath.Vec4{
			X: gmath.Lerp(c0.X, c1.X, frac),
			Y: gmath.Lerp(c0.Y, c1.Y, frac),
			Z: gmath.Lerp(c0.Z, c1.Z, frac),
			W: gmath.Lerp(c0.W, c1.W, frac),
		}, a0
	}
}

func (t *Texture) wrap(u float32) float32 {
	u = u - gmath.Floor(u)
	if u < 0 {
		u += 1
	}
	return u
}

func (t *Texture) sampleNearest(u, v float32, layer, lv int) (gmath.Vec4, uint64) {
	lv = gmath.ClampInt(lv, 0, len(t.levels)-1)
	l := &t.levels[lv]
	x := int(t.wrap(u) * float32(l.w))
	y := int(t.wrap(v) * float32(l.h))
	x = gmath.ClampInt(x, 0, l.w-1)
	y = gmath.ClampInt(y, 0, l.h-1)
	return t.texel(lv, layer, x, y), t.TexelAddr(lv, layer, x, y)
}

func (t *Texture) sampleBilinear(u, v float32, layer, lv int) (gmath.Vec4, uint64) {
	lv = gmath.ClampInt(lv, 0, len(t.levels)-1)
	l := &t.levels[lv]
	fx := t.wrap(u)*float32(l.w) - 0.5
	fy := t.wrap(v)*float32(l.h) - 0.5
	x0 := int(gmath.Floor(fx))
	y0 := int(gmath.Floor(fy))
	tx := fx - float32(x0)
	ty := fy - float32(y0)
	c00 := t.texel(lv, layer, x0, y0)
	c10 := t.texel(lv, layer, x0+1, y0)
	c01 := t.texel(lv, layer, x0, y0+1)
	c11 := t.texel(lv, layer, x0+1, y0+1)
	top := c00.Scale(1 - tx).Add(c10.Scale(tx))
	bot := c01.Scale(1 - tx).Add(c11.Scale(tx))
	c := top.Scale(1 - ty).Add(bot.Scale(ty))
	// Dominant tap: the nearest of the four.
	nx, ny := x0, y0
	if tx > 0.5 {
		nx = x0 + 1
	}
	if ty > 0.5 {
		ny = y0 + 1
	}
	return c, t.TexelAddr(lv, layer, nx, ny)
}

// LodFor computes the mip level for the given texel-space footprint:
// log2(max(|ddx|, |ddy|)) where the derivatives are the texel-space UV
// deltas between adjacent pixels — the standard GPU LoD formula.
func (t *Texture) LodFor(ddxU, ddxV, ddyU, ddyV float32) float32 {
	dx := gmath.Sqrt(ddxU*ddxU*float32(t.W*t.W) + ddxV*ddxV*float32(t.H*t.H))
	dy := gmath.Sqrt(ddyU*ddyU*float32(t.W*t.W) + ddyV*ddyV*float32(t.H*t.H))
	d := gmath.Max(dx, dy)
	if d <= 1 {
		return 0
	}
	return gmath.Clamp(gmath.Log2(d), 0, float32(len(t.levels)-1))
}

// --- Procedural content -------------------------------------------------

// Checker builds a checkerboard texture (albedo-style content).
func Checker(name string, fmtc Format, w, h int, a, b gmath.Vec4, cells int) *Texture {
	pix := make([]gmath.Vec4, w*h)
	if cells < 1 {
		cells = 8
	}
	cw, ch := w/cells, h/cells
	if cw < 1 {
		cw = 1
	}
	if ch < 1 {
		ch = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/cw)+(y/ch))%2 == 0 {
				pix[y*w+x] = a
			} else {
				pix[y*w+x] = b
			}
		}
	}
	t, err := New(name, fmtc, w, h, 1, pix)
	if err != nil {
		panic(err) // power-of-two inputs only; programmer error
	}
	return t
}

// Noise builds a value-noise texture, deterministic in seed. Layered
// variants (layers > 1) differ per layer — the Planets texture array.
func Noise(name string, fmtc Format, w, h, layers int, seed int64) *Texture {
	rng := rand.New(rand.NewSource(seed))
	pix := make([]gmath.Vec4, w*h*layers)
	for l := 0; l < layers; l++ {
		// Coarse lattice filled with random values, then bilinearly
		// upsampled for smooth variation.
		const lat = 9
		lattice := make([]float32, lat*lat*3)
		for i := range lattice {
			lattice[i] = rng.Float32()
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				fx := float32(x) / float32(w) * (lat - 1)
				fy := float32(y) / float32(h) * (lat - 1)
				x0, y0 := int(fx), int(fy)
				tx, ty := fx-float32(x0), fy-float32(y0)
				x1, y1 := gmath.ClampInt(x0+1, 0, lat-1), gmath.ClampInt(y0+1, 0, lat-1)
				var c [3]float32
				for ch := 0; ch < 3; ch++ {
					v00 := lattice[(y0*lat+x0)*3+ch]
					v10 := lattice[(y0*lat+x1)*3+ch]
					v01 := lattice[(y1*lat+x0)*3+ch]
					v11 := lattice[(y1*lat+x1)*3+ch]
					c[ch] = gmath.Lerp(gmath.Lerp(v00, v10, tx), gmath.Lerp(v01, v11, tx), ty)
				}
				pix[l*w*h+y*w+x] = gmath.V4(c[0], c[1], c[2], 1)
			}
		}
	}
	t, err := New(name, fmtc, w, h, layers, pix)
	if err != nil {
		panic(err)
	}
	return t
}

// NoiseFine builds a per-texel random texture (no spatial smoothing) —
// the texel-granular content of detail normal maps and prefiltered
// environment maps, whose samples scatter across the texture when driven
// by per-pixel reflection vectors.
func NoiseFine(name string, fmtc Format, w, h, layers int, seed int64) *Texture {
	rng := rand.New(rand.NewSource(seed))
	pix := make([]gmath.Vec4, w*h*layers)
	for i := range pix {
		pix[i] = gmath.V4(rng.Float32(), rng.Float32(), rng.Float32(), 1)
	}
	t, err := New(name, fmtc, w, h, layers, pix)
	if err != nil {
		panic(err)
	}
	return t
}

// Gradient builds a horizontal gradient texture between two colors.
func Gradient(name string, fmtc Format, w, h int, a, b gmath.Vec4) *Texture {
	pix := make([]gmath.Vec4, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := float32(x) / float32(w-1)
			pix[y*w+x] = a.Scale(1 - t).Add(b.Scale(t))
		}
	}
	t, err := New(name, fmtc, w, h, 1, pix)
	if err != nil {
		panic(err)
	}
	return t
}
