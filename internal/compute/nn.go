package compute

import (
	"fmt"

	"crisp/internal/shader"
	"crisp/internal/trace"
)

// nnBase is the NN workload's virtual address region.
const nnBase = uint64(1) << 42

// nnLayer describes one RITnet principal kernel as a tiled matmul:
// (M×K)·(K×N), M = output channels, N = spatial positions × batch,
// K = input channels × filter taps.
type nnLayer struct {
	name    string
	m, n, k int
}

// NN builds the RITnet eye-segmentation principal kernels (the paper uses
// Principal Kernel Selection to avoid simulating the full 248K-parameter
// network). The layers are convolution-as-matmul with shared-memory
// tiling, joined by DenseNet-style concatenation kernels that stream
// feature maps through DRAM. The batch is pinned at two (one image per
// eye), so the grids stay modest and occupancy is capped — and the
// shared-memory-heavy, register-light matmuls complement the rendering
// pipeline's register-heavy, shared-memory-free shaders, which is why the
// NN pairing is the biggest concurrency winner in paper Fig. 12.
func NN(stream int) *Workload {
	w := &Workload{Name: "NN"}
	layers := []nnLayer{
		{"ritnet.conv1", 32, 2 * 60 * 40, 25},
		{"ritnet.down2", 32, 2 * 30 * 20, 144},
		{"ritnet.bottleneck", 64, 2 * 15 * 10, 144},
		{"ritnet.up1", 32, 2 * 30 * 20, 144},
		{"ritnet.head", 4, 2 * 60 * 40, 72},
	}
	var alloc uint64 = nnBase
	buf := func(bytes int) uint64 {
		b := alloc
		alloc += uint64(bytes+127) &^ 127
		return b
	}
	for i, l := range layers {
		in := buf(l.k * l.n * 4)
		wgt := buf(l.m * l.k * 4)
		out := buf(l.m * l.n * 4)
		w.Kernels = append(w.Kernels, nnMatmul(stream, l, in, wgt, out))
		// Dense skip connections: concatenate the layer's output with
		// the earlier features — a pure streaming copy through DRAM.
		if i == 1 || i == 3 {
			elems := l.m * l.n
			src := out
			dst := buf(elems * 2 * 4)
			w.Kernels = append(w.Kernels, nnConcat(stream, fmt.Sprintf("ritnet.concat%d", i), src, dst, elems))
		}
	}
	return w
}

// Tile geometry: each 256-thread CTA computes a 16(M)×64(N) output block
// with four outputs per thread, walking K in tiles of 16 through shared
// memory with barriers.
const (
	nnTileM = 16
	nnTileN = 64
	nnTileK = 16
)

func nnMatmul(stream int, l nnLayer, in, wgt, out uint64) *trace.Kernel {
	// Shared memory: A tile (16×16) + B tile (16×64), float32.
	shmem := (nnTileM*nnTileK + nnTileK*nnTileN) * 4
	g := newGrid(l.name, stream, 256, 40, shmem)

	mBlocks := (l.m + nnTileM - 1) / nnTileM
	nBlocks := (l.n + nnTileN - 1) / nnTileN
	kTiles := (l.k + nnTileK - 1) / nnTileK
	totalThreads := mBlocks * nBlocks * 256

	return g.run(totalThreads, func(c *shader.Ctx, base, lanes int) {
		ctaIdx := base / 256
		mb := ctaIdx % mBlocks
		nb := ctaIdx / mBlocks
		// Eight output accumulators per thread (register tiling).
		accs := make([]shader.Val, 8)
		for i := range accs {
			accs[i] = c.Imm(0)
		}
		for kt := 0; kt < kTiles; kt++ {
			// Cooperative loads into shared memory: each thread brings
			// one A element and one B element.
			aAddrs := make([]uint64, lanes)
			bAddrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				tid := (base + i) % 256
				row := mb*nnTileM + tid%nnTileM
				kcol := kt*nnTileK + tid/nnTileM%nnTileK
				aAddrs[i] = wgt + uint64((row*l.k+kcol)%(l.m*l.k))*4
				ncol := nb*nnTileN + tid%nnTileN
				bAddrs[i] = in + uint64((kcol*l.n+ncol)%(l.k*l.n))*4
			}
			av := c.Load(aAddrs, trace.ClassCompute)
			bv := c.Load(bAddrs, trace.ClassCompute)
			// Cooperative stores: one word per thread, stride-1 —
			// conflict-free.
			stA := make([]uint64, lanes)
			stB := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				tid := uint64((base + i) % 256)
				stA[i] = tid * 4
				stB[i] = (256 + tid) * 4
			}
			c.SharedStoreAt(av, stA)
			c.SharedStoreAt(bv, stB)
			c.Barrier()
			// Inner product over the K tile from shared memory, eight
			// outputs per LDS pair (the register tiling that makes
			// compiled matmuls FP-throughput-bound). The A tile is
			// padded (stride 17) so the row-major reads stay
			// conflict-free, as tuned kernels do.
			for kk := 0; kk < nnTileK; kk += 4 {
				ldA := make([]uint64, lanes)
				ldB := make([]uint64, lanes)
				for i := 0; i < lanes; i++ {
					tid := uint64((base + i) % 256)
					ldA[i] = ((tid%16)*17 + uint64(kk)) * 4
					ldB[i] = (544 + uint64(kk)*nnTileN + tid%64) * 4
				}
				a := c.SharedLoadAt(ldA)
				b := c.SharedLoadAt(ldB)
				for o := range accs {
					if o%2 == 0 {
						accs[o] = c.FMA(a, b, accs[o])
					} else {
						accs[o] = c.FMA(b, a, accs[o])
					}
				}
			}
			c.Barrier()
		}
		// ReLU and store (one 4-wide store per thread).
		sum := accs[0]
		for o := 1; o < len(accs); o++ {
			sum = c.Add(sum, accs[o])
		}
		r := c.Max(sum, c.Imm(0))
		oAddrs := make([]uint64, lanes)
		for i := 0; i < lanes; i++ {
			oAddrs[i] = out + uint64((base+i)%(l.m*l.n))*16
		}
		c.Store(r, oAddrs, trace.ClassCompute)
	})
}

// nnConcat streams elems float32 features from src to dst (skip-connection
// concatenation): one coalesced load and store per warp — pure DRAM
// bandwidth, the memory-bound side of the network.
func nnConcat(stream int, name string, src, dst uint64, elems int) *trace.Kernel {
	g := newGrid(name, stream, 256, 16, 0)
	return g.run(elems, func(c *shader.Ctx, base, lanes int) {
		v := c.Load(rowAddrs(src, base, lanes, 4), trace.ClassCompute)
		c.Store(v, rowAddrs(dst, base, lanes, 4), trace.ClassCompute)
	})
}
