// Package compute builds the paper's three XR system workloads as
// CUDA-analog trace generators:
//
//   - VIO: visual-inertial odometry — a pipeline of many small
//     computer-vision kernels (pyramid blur, undistortion, Harris corners,
//     Lucas–Kanade optical flow), the Nvidia-VPI-composed pipeline of the
//     paper.
//   - NN: RITnet eye-segmentation principal kernels — shared-memory tiled
//     convolution-as-matmul, memory bound, batch fixed at two (one image
//     per eye), unable to fill the GPU.
//   - HOLO: phase-hologram generation — per-pixel accumulation over point
//     sources, extremely FP/SFU (compute) bound with little memory
//     traffic.
//
// Each workload is one in-order stream of kernels whose instruction mixes
// and address streams come from the real algorithms' access patterns.
package compute

import (
	"fmt"

	"crisp/internal/shader"
	"crisp/internal/trace"
)

// Workload is one compute task: an ordered kernel stream.
type Workload struct {
	Name    string
	Kernels []*trace.Kernel
}

// InstCount sums warp instructions over all kernels.
func (w *Workload) InstCount() int {
	n := 0
	for _, k := range w.Kernels {
		n += k.InstCount()
	}
	return n
}

// Names lists the built-in compute workloads: the paper's three XR
// system tasks plus the two post-processing workloads its background
// section motivates (DLSS-style upscaling, asynchronous timewarp).
func Names() []string { return []string{"VIO", "HOLO", "NN", "UPSCALE", "ATW"} }

// ByName builds a workload by name with kernels on the given stream.
func ByName(name string, stream int) (*Workload, error) {
	switch name {
	case "VIO":
		return VIO(stream), nil
	case "HOLO":
		return HOLO(stream), nil
	case "NN":
		return NN(stream), nil
	case "UPSCALE":
		return Upscale(stream), nil
	case "ATW":
		return ATW(stream), nil
	}
	return nil, fmt.Errorf("compute: unknown workload %q (have %v)", name, Names())
}

// gridBuilder emits a 1-thread-per-element kernel over n elements with
// CTAs of ctaThreads, invoking body once per warp.
type gridBuilder struct {
	bld        *trace.Builder
	ctaThreads int
}

func newGrid(name string, stream, ctaThreads, regs, shmem int) *gridBuilder {
	return &gridBuilder{
		bld:        trace.NewBuilder(name, trace.KindCompute, stream, ctaThreads, regs, shmem),
		ctaThreads: ctaThreads,
	}
}

// run emits the kernel over n elements. body receives the warp context and
// the global index of the warp's first lane.
func (g *gridBuilder) run(n int, body func(c *shader.Ctx, base int, lanes int)) *trace.Kernel {
	warpsPerCTA := g.ctaThreads / shader.Lanes
	for e0 := 0; e0 < n; {
		g.bld.BeginCTA()
		for w := 0; w < warpsPerCTA && e0 < n; w++ {
			lanes := n - e0
			if lanes > shader.Lanes {
				lanes = shader.Lanes
			}
			mask := uint32(0xFFFFFFFF)
			if lanes < 32 {
				mask = (uint32(1) << uint(lanes)) - 1
			}
			g.bld.BeginWarp()
			c := shader.NewCtx(g.bld, mask)
			body(c, e0, lanes)
			e0 += lanes
		}
	}
	return g.bld.Finish()
}

// rowAddrs returns per-lane addresses for elements base..base+lanes at
// 4 bytes each from bufBase.
func rowAddrs(bufBase uint64, base, lanes, elemBytes int) []uint64 {
	a := make([]uint64, lanes)
	for i := range a {
		a[i] = bufBase + uint64((base+i)*elemBytes)
	}
	return a
}
