package compute

import (
	"fmt"

	"crisp/internal/shader"
	"crisp/internal/trace"
)

// vioBase is the VIO workload's virtual address region.
const vioBase = uint64(1) << 41

// vioW and vioH are the camera image dimensions (stereo pair processed as
// one stream of kernels, as in the EuRoC-style datasets the paper uses).
const (
	vioW = 160
	vioH = 120
)

// VIO builds the visual-inertial-odometry pipeline: per pyramid level a
// Gaussian blur and downsample, image undistortion, Sobel gradients,
// Harris corner response with non-max suppression, and two-level
// Lucas–Kanade optical flow. The defining property is many small kernels —
// the reason warped-slicer's per-launch sampling cannot amortize
// (paper Fig. 12).
func VIO(stream int) *Workload {
	w := &Workload{Name: "VIO"}
	var alloc uint64 = vioBase
	buf := func(elems, elemBytes int) uint64 {
		b := alloc
		alloc += uint64(elems*elemBytes+127) &^ 127
		return b
	}

	img0 := buf(vioW*vioH, 4)
	img1 := buf(vioW*vioH, 4)
	prev := buf(vioW*vioH, 4)

	levels := []struct{ w, h int }{{vioW, vioH}, {vioW / 2, vioH / 2}, {vioW / 4, vioH / 4}}
	pyr := make([]uint64, len(levels))
	for i, lv := range levels {
		pyr[i] = buf(lv.w*lv.h, 4)
	}

	// 1) Undistort: per-pixel radial remap with a bilinear gather.
	und := buf(vioW*vioH, 4)
	w.Kernels = append(w.Kernels, vioUndistort(stream, img0, und))

	// 2) Pyramid: blur + downsample per level.
	src := und
	for i, lv := range levels {
		blurred := buf(lv.w*lv.h, 4)
		w.Kernels = append(w.Kernels,
			vioBlur(stream, fmt.Sprintf("vio.blur.l%d", i), src, blurred, lv.w, lv.h))
		w.Kernels = append(w.Kernels,
			vioDownsample(stream, fmt.Sprintf("vio.down.l%d", i), blurred, pyr[i], lv.w, lv.h))
		src = pyr[i]
	}

	// 3) Gradients + Harris corner response + NMS on the base level.
	gx := buf(vioW*vioH, 4)
	gy := buf(vioW*vioH, 4)
	resp := buf(vioW*vioH, 4)
	w.Kernels = append(w.Kernels, vioSobel(stream, pyr[0], gx, gy))
	w.Kernels = append(w.Kernels, vioHarris(stream, gx, gy, resp))
	w.Kernels = append(w.Kernels, vioNMS(stream, resp, buf(vioW*vioH, 4)))

	// 4) Optical flow: LK on two pyramid levels against the previous
	// frame.
	for i := 0; i < 2; i++ {
		lv := levels[i]
		w.Kernels = append(w.Kernels,
			vioLK(stream, fmt.Sprintf("vio.lk.l%d", i), pyr[i], prev, buf(lv.w*lv.h, 8), lv.w, lv.h))
	}
	_ = img1
	return w
}

// vioBlur is a 5×5 separable-as-direct Gaussian: 5-tap vertical gather per
// pixel (the horizontal pass is folded to keep kernels small, as VPI's
// fused blur does).
func vioBlur(stream int, name string, src, dst uint64, iw, ih int) *trace.Kernel {
	g := newGrid(name, stream, 128, 24, 0)
	return g.run(iw*ih, func(c *shader.Ctx, base, lanes int) {
		acc := c.Imm(0)
		for tap := -2; tap <= 2; tap++ {
			addrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				y := p/iw + tap
				if y < 0 {
					y = 0
				}
				if y >= ih {
					y = ih - 1
				}
				addrs[i] = src + uint64((y*iw+p%iw)*4)
			}
			v := c.Load(addrs, trace.ClassCompute)
			acc = c.FMA(v, c.Imm(0.2), acc)
		}
		c.Store(acc, rowAddrs(dst, base, lanes, 4), trace.ClassCompute)
	})
}

// vioDownsample halves resolution with a 2×2 average.
func vioDownsample(stream int, name string, src, dst uint64, iw, ih int) *trace.Kernel {
	ow, oh := iw/2, ih/2
	g := newGrid(name, stream, 128, 16, 0)
	return g.run(ow*oh, func(c *shader.Ctx, base, lanes int) {
		acc := c.Imm(0)
		for dy := 0; dy < 2; dy++ {
			addrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				sy := (p/ow)*2 + dy
				sx := (p % ow) * 2
				addrs[i] = src + uint64((sy*iw+sx)*4)
			}
			v := c.Load(addrs, trace.ClassCompute)
			acc = c.FMA(v, c.Imm(0.5), acc)
		}
		c.Store(acc, rowAddrs(dst, base, lanes, 4), trace.ClassCompute)
	})
}

// vioUndistort remaps each pixel through a radial distortion polynomial
// (k1, k2) and gathers bilinearly — scattered reads, ALU-moderate.
func vioUndistort(stream int, src, dst uint64) *trace.Kernel {
	g := newGrid("vio.undistort", stream, 128, 32, 0)
	return g.run(vioW*vioH, func(c *shader.Ctx, base, lanes int) {
		// Normalized radius² from pixel coords: a few IMAD-like FMAs.
		x := c.Imm(0.1)
		y := c.Imm(0.2)
		r2 := c.FMA(x, x, c.Mul(y, y))
		k := c.FMA(r2, c.Imm(-0.12), c.Imm(1))
		k = c.FMA(c.Mul(r2, r2), c.Imm(0.03), k)
		// Gather: the remapped source address (computed functionally).
		addrs := make([]uint64, lanes)
		for i := 0; i < lanes; i++ {
			p := base + i
			px, py := p%vioW, p/vioW
			// Radial pull toward the center.
			cx, cy := px-vioW/2, py-vioH/2
			sx := vioW/2 + cx*97/100
			sy := vioH/2 + cy*97/100
			addrs[i] = src + uint64((sy*vioW+sx)*4)
		}
		v := c.Load(addrs, trace.ClassCompute)
		out := c.Mul(v, k)
		c.Store(out, rowAddrs(dst, base, lanes, 4), trace.ClassCompute)
	})
}

// vioSobel computes x/y gradients with 3×3 stencils.
func vioSobel(stream int, src, gx, gy uint64) *trace.Kernel {
	g := newGrid("vio.sobel", stream, 128, 24, 0)
	return g.run(vioW*vioH, func(c *shader.Ctx, base, lanes int) {
		sx := c.Imm(0)
		sy := c.Imm(0)
		for tap := 0; tap < 3; tap++ {
			addrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				y := p/vioW + tap - 1
				if y < 0 {
					y = 0
				}
				if y >= vioH {
					y = vioH - 1
				}
				addrs[i] = src + uint64((y*vioW+p%vioW)*4)
			}
			v := c.Load(addrs, trace.ClassCompute)
			sx = c.FMA(v, c.Imm(float32(tap-1)), sx)
			sy = c.FMA(v, c.Imm(float32(2-tap)), sy)
		}
		c.Store(sx, rowAddrs(gx, base, lanes, 4), trace.ClassCompute)
		c.Store(sy, rowAddrs(gy, base, lanes, 4), trace.ClassCompute)
	})
}

// vioHarris computes the corner response det(M) - k·trace(M)².
func vioHarris(stream int, gx, gy, resp uint64) *trace.Kernel {
	g := newGrid("vio.harris", stream, 128, 32, 0)
	return g.run(vioW*vioH, func(c *shader.Ctx, base, lanes int) {
		vx := c.Load(rowAddrs(gx, base, lanes, 4), trace.ClassCompute)
		vy := c.Load(rowAddrs(gy, base, lanes, 4), trace.ClassCompute)
		xx := c.Mul(vx, vx)
		yy := c.Mul(vy, vy)
		xy := c.Mul(vx, vy)
		det := c.FMA(xx, yy, c.Mul(c.Mul(xy, xy), c.Imm(-1)))
		tr := c.Add(xx, yy)
		r := c.FMA(c.Mul(tr, tr), c.Imm(-0.04), det)
		c.Store(r, rowAddrs(resp, base, lanes, 4), trace.ClassCompute)
	})
}

// vioNMS suppresses non-maximal responses in a 3-row neighborhood.
func vioNMS(stream int, resp, out uint64) *trace.Kernel {
	g := newGrid("vio.nms", stream, 128, 16, 0)
	return g.run(vioW*vioH, func(c *shader.Ctx, base, lanes int) {
		best := c.Imm(-1e30)
		for tap := -1; tap <= 1; tap++ {
			addrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				y := p/vioW + tap
				if y < 0 {
					y = 0
				}
				if y >= vioH {
					y = vioH - 1
				}
				addrs[i] = resp + uint64((y*vioW+p%vioW)*4)
			}
			v := c.Load(addrs, trace.ClassCompute)
			best = c.Max(best, v)
		}
		c.Store(best, rowAddrs(out, base, lanes, 4), trace.ClassCompute)
	})
}

// vioLK is one Lucas–Kanade iteration: a 3×3 window gather on both frames
// plus the 2×2 normal-equation solve.
func vioLK(stream int, name string, cur, prev, flow uint64, iw, ih int) *trace.Kernel {
	g := newGrid(name, stream, 128, 40, 0)
	return g.run(iw*ih, func(c *shader.Ctx, base, lanes int) {
		a11 := c.Imm(0)
		a12 := c.Imm(0)
		a22 := c.Imm(0)
		b1 := c.Imm(0)
		b2 := c.Imm(0)
		for tap := -1; tap <= 1; tap++ {
			addrsC := make([]uint64, lanes)
			addrsP := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				y := p/iw + tap
				if y < 0 {
					y = 0
				}
				if y >= ih {
					y = ih - 1
				}
				addrsC[i] = cur + uint64((y*iw+p%iw)*4)
				addrsP[i] = prev + uint64((y%vioH*vioW+p%iw)*4)
			}
			vc := c.Load(addrsC, trace.ClassCompute)
			vp := c.Load(addrsP, trace.ClassCompute)
			dt := c.Sub(vc, vp)
			gx := c.Mul(vc, c.Imm(0.5))
			gy := c.Mul(vp, c.Imm(0.5))
			a11 = c.FMA(gx, gx, a11)
			a12 = c.FMA(gx, gy, a12)
			a22 = c.FMA(gy, gy, a22)
			b1 = c.FMA(gx, dt, b1)
			b2 = c.FMA(gy, dt, b2)
		}
		// 2×2 solve via the inverse determinant.
		det := c.FMA(a11, a22, c.Mul(c.Mul(a12, a12), c.Imm(-1)))
		inv := c.Rcp(c.Max(det, c.Imm(1e-6)))
		u := c.Mul(c.FMA(a22, b1, c.Mul(c.Mul(a12, b2), c.Imm(-1))), inv)
		v := c.Mul(c.FMA(a11, b2, c.Mul(c.Mul(a12, b1), c.Imm(-1))), inv)
		c.Store(u, rowAddrs(flow, base, lanes, 8), trace.ClassCompute)
		c.Store(v, rowAddrs(flow+4, base, lanes, 8), trace.ClassCompute)
	})
}
