package compute

import (
	"crisp/internal/shader"
	"crisp/internal/trace"
)

// holoBase is the HOLO workload's virtual address region.
const holoBase = uint64(1) << 43

const (
	holoW      = 96
	holoH      = 64
	holoPoints = 20 // point sources accumulated per pixel
	holoIters  = 1  // Gerchberg–Saxton-style refinement passes
)

// HOLO builds the hologram-generation workload: for every SLM pixel the
// phase contributions of all point sources are accumulated (distance,
// reciprocal square root, sine/cosine per point). It is extremely
// compute-bound — FP and SFU pipes saturate while memory traffic is
// negligible — which is why TAP assigns it a single L2 set and
// warped-slicer's sampling sees no contention for it (paper §VI-C).
func HOLO(stream int) *Workload {
	w := &Workload{Name: "HOLO"}
	points := holoBase
	phase := holoBase + 1<<20

	for it := 0; it < holoIters; it++ {
		g := newGrid("holo.phase", stream, 256, 40, 0)
		k := g.run(holoW*holoH, func(c *shader.Ctx, base, lanes int) {
			// Point-source list arrives via a handful of coalesced loads.
			px := c.Load(rowAddrs(points, 0, lanes, 4), trace.ClassCompute)
			accRe := c.Imm(0)
			accIm := c.Imm(0)
			x := c.Mul(px, c.Imm(0.01))
			for p := 0; p < holoPoints; p++ {
				// Squared distance to the source (3 FMAs), then
				// 1/sqrt, then the phase's sine and cosine.
				dx := c.Add(x, c.Imm(float32(p)*0.13))
				d2 := c.FMA(dx, dx, c.Imm(1))
				d2 = c.FMA(x, x, d2)
				invd := c.Rsqrt(d2)
				ph := c.Mul(d2, c.Imm(6.28318*0.37))
				s := c.Sin(ph)
				co := c.Cos(ph)
				accRe = c.FMA(co, invd, accRe)
				accIm = c.FMA(s, invd, accIm)
			}
			// Final phase = atan2 approximation (polynomial).
			ratio := c.Mul(accIm, c.Rcp(c.Max(accRe, c.Imm(1e-6))))
			r2 := c.Mul(ratio, ratio)
			atan := c.Mul(ratio, c.FMA(r2, c.Imm(-0.33), c.Imm(1)))
			c.Store(atan, rowAddrs(phase, base, lanes, 4), trace.ClassCompute)
		})
		w.Kernels = append(w.Kernels, k)
	}
	return w
}
