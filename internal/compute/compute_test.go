package compute

import (
	"testing"

	"crisp/internal/isa"
	"crisp/internal/shader"
	"crisp/internal/trace"
)

func TestByName(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name {
			t.Errorf("name = %s", w.Name)
		}
		if len(w.Kernels) == 0 {
			t.Fatalf("%s has no kernels", name)
		}
		for _, k := range w.Kernels {
			if err := k.Validate(); err != nil {
				t.Errorf("%s kernel %q: %v", name, k.Name, err)
			}
			if k.Stream != 42 {
				t.Errorf("%s kernel %q stream = %d", name, k.Name, k.Stream)
			}
		}
		if w.InstCount() == 0 {
			t.Errorf("%s empty", name)
		}
	}
	if _, err := ByName("DLSS", 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestVIOHasManySmallKernels(t *testing.T) {
	vio := VIO(0)
	holo := HOLO(0)
	if len(vio.Kernels) < 8 {
		t.Errorf("VIO kernels = %d, want many small ones", len(vio.Kernels))
	}
	if len(vio.Kernels) <= 2*len(holo.Kernels) {
		t.Errorf("VIO (%d kernels) should have far more kernels than HOLO (%d)",
			len(vio.Kernels), len(holo.Kernels))
	}
	avgVIO := vio.InstCount() / len(vio.Kernels)
	avgHOLO := holo.InstCount() / len(holo.Kernels)
	if avgVIO >= avgHOLO {
		t.Errorf("VIO kernels (avg %d insts) should be smaller than HOLO's (avg %d)", avgVIO, avgHOLO)
	}
}

// isConcat reports whether an NN kernel is a concat (streaming) kernel.
func isConcat(name string) bool {
	return len(name) >= 13 && name[:13] == "ritnet.concat"
}

// opShare computes the fraction of warp instructions with opcodes in set.
func opShare(w *Workload, set map[isa.Opcode]bool) float64 {
	var in, total int
	for _, k := range w.Kernels {
		for op, n := range k.OpHistogram() {
			total += n
			if set[op] {
				in += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

func TestHOLOIsComputeBound(t *testing.T) {
	holo := HOLO(0)
	mem := map[isa.Opcode]bool{isa.OpLDG: true, isa.OpSTG: true, isa.OpLDS: true, isa.OpSTS: true, isa.OpTEX: true}
	sfu := map[isa.Opcode]bool{isa.OpMUFUSIN: true, isa.OpMUFUCOS: true, isa.OpMUFURSQ: true, isa.OpMUFURCP: true}
	if s := opShare(holo, mem); s > 0.02 {
		t.Errorf("HOLO memory share = %.3f, want ≈0 (compute-bound)", s)
	}
	if s := opShare(holo, sfu); s < 0.15 {
		t.Errorf("HOLO SFU share = %.3f, want heavy SFU usage", s)
	}
}

func TestNNUsesSharedMemoryAndBarriers(t *testing.T) {
	nn := NN(0)
	shared := map[isa.Opcode]bool{isa.OpLDS: true, isa.OpSTS: true}
	if s := opShare(nn, shared); s < 0.1 {
		t.Errorf("NN shared-memory share = %.3f, want tiled-matmul profile", s)
	}
	for _, k := range nn.Kernels {
		if isConcat(k.Name) {
			// Concat kernels are pure streaming copies.
			continue
		}
		if k.SharedMem == 0 {
			t.Errorf("NN kernel %q declares no shared memory", k.Name)
		}
		if k.OpHistogram()[isa.OpBAR] == 0 {
			t.Errorf("NN kernel %q has no barriers", k.Name)
		}
	}
}

func TestNNIsSmall(t *testing.T) {
	// Batch is pinned at 2 (one image per eye): the grid cannot fill a
	// large GPU. Total CTAs stay small.
	nn := NN(0)
	for _, k := range nn.Kernels {
		if totalWarps := len(k.CTAs) * k.WarpsPerCTA(); totalWarps > 1472 {
			t.Errorf("NN kernel %q resident demand %d warps — should be unable to fill the 3070", k.Name, totalWarps)
		}
	}
}

func TestVIOIsMemoryHeavy(t *testing.T) {
	vio := VIO(0)
	mem := map[isa.Opcode]bool{isa.OpLDG: true, isa.OpSTG: true}
	if s := opShare(vio, mem); s < 0.15 {
		t.Errorf("VIO memory share = %.3f, want stencil-heavy profile", s)
	}
}

func TestWorkloadsUseDisjointAddressSpaces(t *testing.T) {
	ranges := map[string][2]uint64{}
	for _, name := range Names() {
		w, _ := ByName(name, 0)
		lo, hi := uint64(1)<<63, uint64(0)
		for _, k := range w.Kernels {
			for _, cta := range k.CTAs {
				for _, warp := range cta.Warps {
					for _, in := range warp.Insts {
						if isa.SpaceOf(in.Op) == isa.SpaceShared {
							// Shared offsets are segment-local, not VAs.
							continue
						}
						for _, a := range in.Addrs {
							if a < lo {
								lo = a
							}
							if a > hi {
								hi = a
							}
						}
					}
				}
			}
		}
		ranges[name] = [2]uint64{lo, hi}
	}
	names := Names()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := ranges[names[i]], ranges[names[j]]
			if a[0] <= b[1] && b[0] <= a[1] {
				t.Errorf("%s [%#x,%#x] overlaps %s [%#x,%#x]",
					names[i], a[0], a[1], names[j], b[0], b[1])
			}
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := VIO(3)
	b := VIO(3)
	if a.InstCount() != b.InstCount() || len(a.Kernels) != len(b.Kernels) {
		t.Error("VIO builds differ between calls")
	}
}

func TestGridBuilderPartialWarp(t *testing.T) {
	g := newGrid("partial", 0, 128, 16, 0)
	k := g.run(40, func(c *shader.Ctx, base, lanes int) {
		c.Store(c.Imm(1), rowAddrs(0x1000, base, lanes, 4), trace.ClassCompute)
	})
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// 40 elements = 1 full warp + 1 8-lane warp.
	warps := 0
	for _, cta := range k.CTAs {
		warps += len(cta.Warps)
	}
	if warps != 2 {
		t.Errorf("warps = %d, want 2", warps)
	}
	if k.ThreadInstCount() == 0 {
		t.Error("no thread instructions")
	}
}

func TestUpscaleIsTensorHeavy(t *testing.T) {
	up := Upscale(0)
	tensor := map[isa.Opcode]bool{isa.OpHMMA: true}
	if s := opShare(up, tensor); s < 0.1 {
		t.Errorf("UPSCALE tensor share = %.3f, want heavy HMMA usage", s)
	}
	for _, k := range up.Kernels {
		if k.SharedMem == 0 {
			t.Errorf("UPSCALE kernel %q declares no shared memory", k.Name)
		}
		if k.OpHistogram()[isa.OpBAR] == 0 {
			t.Errorf("UPSCALE kernel %q has no barriers", k.Name)
		}
	}
}

func TestATWIsMemoryBound(t *testing.T) {
	atw := ATW(0)
	if len(atw.Kernels) != 2 {
		t.Fatalf("ATW kernels = %d, want one per eye", len(atw.Kernels))
	}
	mem := map[isa.Opcode]bool{isa.OpLDG: true, isa.OpSTG: true}
	if s := opShare(atw, mem); s < 0.10 {
		t.Errorf("ATW memory share = %.3f, want gather-dominated profile", s)
	}
	sfu := map[isa.Opcode]bool{isa.OpMUFUSIN: true, isa.OpMUFUCOS: true}
	if s := opShare(atw, sfu); s > 0.05 {
		t.Errorf("ATW SFU share = %.3f, want light ALU", s)
	}
}

func TestPostprocessPairsRunConcurrently(t *testing.T) {
	// Both new workloads must produce valid traces runnable next to
	// graphics (exercised fully in core tests; here just validate).
	for _, name := range []string{"UPSCALE", "ATW"} {
		w, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range w.Kernels {
			if err := k.Validate(); err != nil {
				t.Errorf("%s kernel %q: %v", name, k.Name, err)
			}
		}
	}
}
