package compute

import (
	"crisp/internal/shader"
	"crisp/internal/trace"
)

// The paper's background section motivates two post-processing compute
// workloads that co-run with rendering on real systems:
//
//   - DLSS-style super sampling: the scene renders at low resolution and
//     a neural network upscales it, "leveraging Tensor Cores for the
//     general matrix multiplication" while fragment shaders use the FP
//     units — the canonical async-compute pairing.
//   - Asynchronous timewarp: "after the scene is rendered, a compute
//     shader is executed to warp the scene to reflect the user's latest
//     position" — a memory-bound per-pixel reprojection adopted by
//     virtually all XR systems.
//
// UPSCALE and ATW implement these as additional workloads.

// upscaleBase is the UPSCALE workload's virtual address region.
const upscaleBase = uint64(1) << 44

const (
	upLowW  = 160 // low-resolution input
	upLowH  = 90
	upScale = 2 // output is 2x per axis
)

// Upscale builds the DLSS-analog workload: a patch-based neural upscaler.
// Each 256-thread CTA upscales one 8×8 input patch: it loads the patch
// and its feature context, stages it in shared memory, runs a stack of
// tensor-core (HMMA) layers with FP activations, and stores the 16×16
// output patch. Tensor-pipe-heavy with moderate streaming memory — the
// complement of fragment shading's FP+TEX profile.
func Upscale(stream int) *Workload {
	w := &Workload{Name: "UPSCALE"}
	in := upscaleBase
	wgt := upscaleBase + 1<<22
	out := upscaleBase + 1<<23

	const patch = 8
	patchesX := upLowW / patch
	patchesY := upLowH / patch
	const layers = 4
	const hmmaPerLayer = 8 // 16x16x16 MMA tiles per layer per warp

	g := newGrid("upscale.net", stream, 256, 64, 8<<10)
	k := g.run(patchesX*patchesY*256, func(c *shader.Ctx, base, lanes int) {
		p := base / 256
		px, py := p%patchesX, p/patchesX
		// Load the input patch + halo (two coalesced rows per thread).
		a1 := make([]uint64, lanes)
		a2 := make([]uint64, lanes)
		for i := 0; i < lanes; i++ {
			tid := (base + i) % 256
			x := px*patch + tid%16 - 4
			y := py*patch + tid/16 - 4
			if x < 0 {
				x = 0
			}
			if y < 0 {
				y = 0
			}
			if x >= upLowW {
				x = upLowW - 1
			}
			if y >= upLowH {
				y = upLowH - 1
			}
			a1[i] = in + uint64((y*upLowW+x)*4)
			a2[i] = in + uint64(((y+1)%upLowH*upLowW+x)*4)
		}
		v1 := c.Load(a1, trace.ClassCompute)
		v2 := c.Load(a2, trace.ClassCompute)
		c.SharedStore(v1)
		c.SharedStore(v2)
		c.Barrier()

		act := c.SharedLoad()
		for l := 0; l < layers; l++ {
			// Weights stream through the constant/global path once per
			// layer; the MMA tiles come from shared memory.
			wa := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				wa[i] = wgt + uint64((l*4096+((base+i)%1024))*4)
			}
			wv := c.Load(wa, trace.ClassCompute)
			for m := 0; m < hmmaPerLayer; m++ {
				act = c.Tensor(act, wv)
			}
			// Activation (ReLU) + residual add.
			act = c.Max(act, c.Imm(0))
			act = c.FMA(act, c.Imm(0.9), v1)
			c.SharedStore(act)
			c.Barrier()
			act = c.SharedLoad()
		}

		// Store the upscaled 16×16 output patch (4 output pixels per
		// thread → one wide store).
		oa := make([]uint64, lanes)
		for i := 0; i < lanes; i++ {
			tid := (base + i) % 256
			ox := px*patch*upScale + tid%16
			oy := py*patch*upScale + tid/16
			oa[i] = out + uint64((oy*upLowW*upScale+ox)*16)
		}
		c.Store(act, oa, trace.ClassCompute)
	})
	w.Kernels = append(w.Kernels, k)
	return w
}

// atwBase is the ATW workload's virtual address region.
const atwBase = uint64(1) << 45

const (
	atwW = 320
	atwH = 180
)

// ATW builds the asynchronous-timewarp workload: per output pixel,
// compute the reprojected source coordinate under the latest head pose (a
// small homography evaluation) and gather the rendered frame with a
// bilinear fetch. One pass per eye. Scattered reads of the source frame
// make it memory-latency/bandwidth-bound with light ALU — the classic
// latency-critical XR post-process.
func ATW(stream int) *Workload {
	w := &Workload{Name: "ATW"}
	src := atwBase
	dst := atwBase + 1<<22

	for eye := 0; eye < 2; eye++ {
		eye := eye
		g := newGrid("atw.warp", stream, 128, 28, 0)
		k := g.run(atwW*atwH, func(c *shader.Ctx, base, lanes int) {
			// Homography row evaluation: ~2 rcp + a handful of FMAs.
			x := c.Imm(0.31)
			y := c.Imm(0.17)
			wden := c.FMA(x, c.Imm(0.02), c.FMA(y, c.Imm(-0.013), c.Imm(1)))
			inv := c.Rcp(wden)
			u := c.Mul(c.FMA(x, c.Imm(0.998), c.Mul(y, c.Imm(0.04))), inv)
			v := c.Mul(c.FMA(y, c.Imm(0.997), c.Mul(x, c.Imm(-0.03))), inv)
			_ = u
			_ = v

			// Gather: the reprojected source pixel shifts a few pixels
			// from the output position (pose delta), scattering reads.
			addrs := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				p := base + i
				ox, oy := p%atwW, p/atwW
				sx := ox + (oy%7 - 3) + eye*2 // pose-dependent shear
				sy := oy + (ox % 5) - 2
				if sx < 0 {
					sx = 0
				}
				if sy < 0 {
					sy = 0
				}
				if sx >= atwW {
					sx = atwW - 1
				}
				if sy >= atwH {
					sy = atwH - 1
				}
				addrs[i] = src + uint64((sy*atwW+sx)*4)
			}
			col := c.Load(addrs, trace.ClassCompute)
			// Chromatic-aberration correction: one more shifted gather.
			addrs2 := make([]uint64, lanes)
			for i := 0; i < lanes; i++ {
				addrs2[i] = addrs[i] + 8
			}
			col2 := c.Load(addrs2, trace.ClassCompute)
			res := c.FMA(col2, c.Imm(0.5), c.Mul(col, c.Imm(0.5)))
			c.Store(res, rowAddrs(dst+uint64(eye)*uint64(atwW*atwH*4), base, lanes, 4), trace.ClassCompute)
		})
		w.Kernels = append(w.Kernels, k)
	}
	return w
}
