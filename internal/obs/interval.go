package obs

import (
	"bufio"
	"fmt"
	"io"
)

// SeriesPoint is one task-stream's metrics over one sampling interval.
// "Stream" here is the paper's logical stream (the rendering task or one
// compute workload), i.e. the task id: per-batch hardware streams are
// folded into their owning task so the series stays readable.
type SeriesPoint struct {
	Stream int    `json:"stream"` // task id (0 = graphics, 1.. = compute workloads)
	Label  string `json:"label"`  // task label ("graphics", workload name, or "taskN")

	IPC   float64 `json:"ipc"`    // warp instructions per cycle over the interval
	Warps int     `json:"warps"`  // resident warps at the sample instant (occupancy)
	L1Hit float64 `json:"l1_hit"` // L1 hit rate over the interval (0 when no accesses)
	L2Hit float64 `json:"l2_hit"` // L2 hit rate over the interval (0 when no accesses)
	// DRAMBytesPerCycle is the DRAM bandwidth consumed over the interval
	// (read + write bytes divided by elapsed cycles).
	DRAMBytesPerCycle float64 `json:"dram_bpc"`
	// Stalls counts the scheduler issue slots this stream failed to issue
	// in over the interval, by attributed cause, indexed by StallCause
	// (the slot-delta companion of stats.Stream.Stalls' cumulative view).
	Stalls [NumStallCauses]int64 `json:"stalls"`

	// Tenant QoS progress (scenario mixes only; zero and omitted for runs
	// without QoS tracking). Counts are cumulative as of the sample cycle:
	// instances arrived and completed, and deadline outcomes — an overdue
	// incomplete instance already counts as missed, so live consumers (the
	// /ui/ lanes, SSE) see violations as they happen.
	QoSArrived      int64 `json:"qos_arrived,omitempty"`
	QoSDone         int64 `json:"qos_done,omitempty"`
	DeadlinesMet    int64 `json:"deadlines_met,omitempty"`
	DeadlinesMissed int64 `json:"deadlines_missed,omitempty"`
}

// Sample is one interval's points for every active task-stream, plus the
// machine-level event-skipping counters (cumulative as of Cycle).
type Sample struct {
	Cycle  int64         `json:"cycle"` // cycle at which the sample was taken
	Points []SeriesPoint `json:"points"`

	// CyclesSimulated is the simulated cycle count (== Cycle); named
	// separately so exports read as a skip-ratio numerator/denominator
	// pair: the event-driven engine simulates CyclesSimulated cycles in
	// only StepsExecuted real core-step calls.
	CyclesSimulated int64 `json:"cycles_simulated,omitempty"`
	// StepsExecuted counts real sm.Core.Step calls across the SM array.
	StepsExecuted int64 `json:"steps_executed,omitempty"`
	// StepsSkipped counts engine steps cores slept through.
	StepsSkipped int64 `json:"steps_skipped,omitempty"`
	// BulkStallSlots counts stall slots synthesized by bulk accounting
	// when sleeping cores woke.
	BulkStallSlots int64 `json:"bulk_stall_slots,omitempty"`
}

// IntervalSeries accumulates interval metrics samples at a fixed cycle
// cadence. The GPU driver appends one Sample roughly every Interval
// cycles (event-accelerated runs may overshoot a boundary; the recorded
// Cycle is always the true sample time, and rates are computed over the
// true elapsed span).
type IntervalSeries struct {
	Interval int64
	Samples  []Sample
	// OnSample, when non-nil, is invoked with each sample as it is
	// appended. It runs on the simulation goroutine, so implementations
	// that publish to other goroutines (e.g. a service's live progress
	// endpoint) must do their own synchronization and stay cheap.
	OnSample func(Sample)
}

// Append records one sample and notifies the OnSample hook, if any.
func (s *IntervalSeries) Append(smp Sample) {
	s.Samples = append(s.Samples, smp)
	if s.OnSample != nil {
		s.OnSample(smp)
	}
}

// WriteCSV renders the series in long format: one row per (cycle,
// stream), with per-stream IPC, occupancy, hit-rate, and DRAM-bandwidth
// columns.
func (s *IntervalSeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "cycle,stream,label,ipc,occupancy_warps,l1_hit,l2_hit,dram_bytes_per_cycle"); err != nil {
		return err
	}
	for _, c := range StallCauses() {
		if _, err := fmt.Fprintf(bw, ",stall_%s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(bw, ",qos_arrived,qos_done,deadlines_met,deadlines_missed"); err != nil {
		return err
	}
	fmt.Fprintln(bw)
	for _, smp := range s.Samples {
		for _, p := range smp.Points {
			if _, err := fmt.Fprintf(bw, "%d,%d,%s,%.4f,%d,%.4f,%.4f,%.2f",
				smp.Cycle, p.Stream, p.Label, p.IPC, p.Warps, p.L1Hit, p.L2Hit, p.DRAMBytesPerCycle); err != nil {
				return err
			}
			for _, n := range p.Stalls {
				if _, err := fmt.Fprintf(bw, ",%d", n); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, ",%d,%d,%d,%d", p.QoSArrived, p.QoSDone, p.DeadlinesMet, p.DeadlinesMissed); err != nil {
				return err
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
