package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Synthetic pids for tracks that do not belong to a simulated stream.
// Stream ids stay below 1<<21 (graphics batches count from 0, compute
// streams from 1<<20), so these can never collide.
const (
	pidPolicy  = 1 << 30 // partition-policy decision track
	pidMemory  = 1<<30 + 1
	pidMetrics = 1<<30 + 2
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the JSON dialect both chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace converts recorded events (and an optional interval
// series) into Chrome trace-event JSON loadable by Perfetto or
// chrome://tracing. One trace "process" is emitted per stream (named via
// streamLabel when non-nil), with kernel spans on thread 0 and CTA spans
// on one thread per SM; policy repartitions, memory contention markers,
// and interval metric counters get their own processes. Timestamps are
// simulation cycles rendered as microseconds (1 cycle = 1 µs), and the
// output is sorted so ts is non-decreasing within every (pid, tid)
// track.
func WriteChromeTrace(w io.Writer, events []Event, series *IntervalSeries, streamLabel func(stream int) string) error {
	var out []chromeEvent

	type ctaKey struct{ stream, cta int }
	pendingKernel := make(map[int]Event)
	pendingCTA := make(map[ctaKey]Event)
	usedTid := make(map[[2]int]bool)
	var lastCycle int64

	use := func(pid, tid int) {
		usedTid[[2]int{pid, tid}] = true
	}
	for _, ev := range events {
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
		switch ev.Kind {
		case EvKernelLaunch:
			pendingKernel[ev.Stream] = ev
		case EvKernelDone:
			b, ok := pendingKernel[ev.Stream]
			if !ok {
				continue
			}
			delete(pendingKernel, ev.Stream)
			use(ev.Stream, 0)
			out = append(out, chromeEvent{
				Name: b.Name, Ph: "X", Ts: b.Cycle, Dur: maxi64(ev.Cycle-b.Cycle, 1),
				Pid: ev.Stream, Tid: 0,
				Args: map[string]any{"ctas": b.Arg, "task": b.Task},
			})
		case EvCTAIssue:
			pendingCTA[ctaKey{ev.Stream, ev.CTA}] = ev
		case EvCTACommit:
			b, ok := pendingCTA[ctaKey{ev.Stream, ev.CTA}]
			if !ok {
				continue
			}
			delete(pendingCTA, ctaKey{ev.Stream, ev.CTA})
			use(ev.Stream, 1+b.SM)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s cta%d", b.Name, b.CTA), Ph: "X",
				Ts: b.Cycle, Dur: maxi64(ev.Cycle-b.Cycle, 1),
				Pid: ev.Stream, Tid: 1 + b.SM,
				Args: map[string]any{"cta": b.CTA, "sm": b.SM},
			})
		case EvBatchStart, EvBatchDone:
			use(ev.Stream, 0)
			verb := "start"
			if ev.Kind == EvBatchDone {
				verb = "done"
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("batch %s %s", ev.Name, verb), Ph: "i",
				Ts: ev.Cycle, Pid: ev.Stream, Tid: 0, S: "p",
			})
		case EvRepartition:
			use(pidPolicy, 0)
			out = append(out, chromeEvent{
				Name: ev.Name, Ph: "i", Ts: ev.Cycle, Pid: pidPolicy, Tid: 0, S: "g",
				Args: map[string]any{"arg": ev.Arg, "task": ev.Task},
			})
		case EvMemContention:
			use(pidMemory, ev.SM)
			out = append(out, chromeEvent{
				Name: ev.Name, Ph: "i", Ts: ev.Cycle, Pid: pidMemory, Tid: ev.SM, S: "t",
				Args: map[string]any{"wait_cycles": ev.Arg, "stream": ev.Stream},
			})
		case EvWatchdog:
			use(pidPolicy, 0)
			out = append(out, chromeEvent{
				Name: "abort: " + ev.Name, Ph: "i", Ts: ev.Cycle, Pid: pidPolicy, Tid: 0, S: "g",
				Args: map[string]any{"cycle": ev.Cycle},
			})
		}
	}
	// Close dangling spans (interrupted runs) at the last seen cycle.
	for stream, b := range pendingKernel {
		use(stream, 0)
		out = append(out, chromeEvent{
			Name: b.Name, Ph: "X", Ts: b.Cycle, Dur: maxi64(lastCycle-b.Cycle, 1),
			Pid: stream, Tid: 0, Args: map[string]any{"ctas": b.Arg, "unfinished": true},
		})
	}
	for key, b := range pendingCTA {
		use(key.stream, 1+b.SM)
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s cta%d", b.Name, b.CTA), Ph: "X",
			Ts: b.Cycle, Dur: maxi64(lastCycle-b.Cycle, 1),
			Pid: key.stream, Tid: 1 + b.SM,
			Args: map[string]any{"cta": b.CTA, "sm": b.SM, "unfinished": true},
		})
	}

	if series != nil {
		for _, smp := range series.Samples {
			for _, p := range smp.Points {
				for _, c := range []struct {
					metric string
					value  float64
				}{
					{"IPC", p.IPC},
					{"occupancy", float64(p.Warps)},
					{"L1 hit", p.L1Hit},
					{"L2 hit", p.L2Hit},
					{"DRAM B/cycle", p.DRAMBytesPerCycle},
				} {
					use(pidMetrics, 0)
					out = append(out, chromeEvent{
						Name: fmt.Sprintf("%s %s", p.Label, c.metric), Ph: "C",
						Ts: smp.Cycle, Pid: pidMetrics, Tid: 0,
						Args: map[string]any{"value": c.value},
					})
				}
			}
		}
	}

	// Track naming metadata.
	seenPid := make(map[int]bool)
	for pt := range usedTid {
		pid, tid := pt[0], pt[1]
		if !seenPid[pid] {
			seenPid[pid] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": pidName(pid, streamLabel)},
			})
		}
		tname := ""
		switch {
		case pid == pidMemory:
			tname = fmt.Sprintf("queue %d", tid)
		case pid == pidPolicy || pid == pidMetrics:
			// single-track processes need no thread names
		case tid == 0:
			tname = "kernels"
		default:
			tname = fmt.Sprintf("SM %d", tid-1)
		}
		if tname != "" {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": tname},
			})
		}
	}

	// Perfetto wants non-decreasing ts within a track; metadata (ph "M",
	// ts 0) sorts first naturally.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Ts < out[j].Ts
	})

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func pidName(pid int, streamLabel func(int) string) string {
	switch pid {
	case pidPolicy:
		return "partition policy"
	case pidMemory:
		return "memory contention"
	case pidMetrics:
		return "interval metrics"
	}
	if streamLabel != nil {
		if l := streamLabel(pid); l != "" {
			return fmt.Sprintf("stream %d (%s)", pid, l)
		}
	}
	return fmt.Sprintf("stream %d", pid)
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
