package obs

import (
	"fmt"
	"sync"
	"testing"
)

func sampleEv(cycle int64) TimelineEvent {
	return TimelineEvent{
		Cycle: cycle,
		Kind:  TimelineSample,
		Sample: &Sample{Cycle: cycle, Points: []SeriesPoint{
			{Stream: 0, Label: "graphics", IPC: float64(cycle) / 100, Warps: int(cycle % 48)},
		}},
	}
}

func TestHubSequenceAndBacklog(t *testing.T) {
	h := NewHub(16)
	for c := int64(1); c <= 5; c++ {
		if seq := h.Publish(sampleEv(c * 10)); seq != uint64(c) {
			t.Fatalf("Publish #%d: seq %d", c, seq)
		}
	}
	backlog, sub, gapped := h.Subscribe(0, 4)
	defer sub.Cancel()
	if gapped {
		t.Fatal("unexpected gap on a non-evicted history")
	}
	if len(backlog) != 5 {
		t.Fatalf("backlog %d events, want 5", len(backlog))
	}
	for i, ev := range backlog {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("backlog[%d].Seq = %d", i, ev.Seq)
		}
	}

	// Resume from a mid-history cursor: Last-Event-ID semantics are
	// fromSeq = cursor+1.
	tail, sub2, gapped := h.Subscribe(4, 4)
	defer sub2.Cancel()
	if gapped || len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("resume backlog = %+v (gapped %v), want seqs [4 5]", tail, gapped)
	}

	// A live event reaches both subscribers after their backlogs.
	h.Publish(sampleEv(60))
	for name, c := range map[string]<-chan TimelineEvent{"sub": sub.C, "sub2": sub2.C} {
		ev := <-c
		if ev.Seq != 6 {
			t.Fatalf("%s live event seq %d, want 6", name, ev.Seq)
		}
	}
}

func TestHubEvictionGapsAndWindow(t *testing.T) {
	h := NewHub(4)
	for c := int64(1); c <= 10; c++ {
		h.Publish(sampleEv(c))
	}
	st := h.Stats()
	if st.Published != 10 || st.Retained != 4 || st.OldestSeq != 7 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	backlog, sub, gapped := h.Subscribe(2, 4)
	sub.Cancel()
	if !gapped {
		t.Fatal("want gapped=true for an evicted cursor")
	}
	if len(backlog) != 4 || backlog[0].Seq != 7 {
		t.Fatalf("gapped backlog starts at %d (%d events), want 7 (4)", backlog[0].Seq, len(backlog))
	}

	evs := h.Events(8, 9)
	if len(evs) != 2 || evs[0].Cycle != 8 || evs[1].Cycle != 9 {
		t.Fatalf("Events(8,9) = %+v", evs)
	}
	if ev, ok := h.Latest(TimelineSample); !ok || ev.Cycle != 10 {
		t.Fatalf("Latest = %+v ok=%v", ev, ok)
	}
	if _, ok := h.Latest(TimelineLifecycle); ok {
		t.Fatal("Latest(lifecycle) matched a sample")
	}
}

func TestHubSlowSubscriberDroppedNotBlocking(t *testing.T) {
	h := NewHub(64)
	_, slow, _ := h.Subscribe(0, 1)
	// Publish more than the channel holds without draining it; the
	// publisher must never block and must cut the subscriber loose.
	for c := int64(1); c <= 10; c++ {
		h.Publish(sampleEv(c))
	}
	// Drain: one buffered event, then the closed channel.
	n := 0
	for range slow.C {
		n++
	}
	if n != 1 {
		t.Fatalf("slow subscriber received %d events before the drop, want 1", n)
	}
	if !slow.Lagged() {
		t.Fatal("dropped subscriber must report Lagged")
	}
	st := h.Stats()
	if st.SubsDropped != 1 || st.EvsDropped == 0 || st.Subscribers != 0 {
		t.Fatalf("drop counters: %+v", st)
	}

	// The dropped reader resumes from its cursor with no gap.
	backlog, sub, gapped := h.Subscribe(2, 16)
	sub.Cancel()
	if gapped || len(backlog) != 9 || backlog[0].Seq != 2 {
		t.Fatalf("resume after drop: gapped=%v backlog=%d first=%d", gapped, len(backlog), backlog[0].Seq)
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub(8)
	h.Publish(sampleEv(1))
	_, live, _ := h.Subscribe(0, 4)
	h.Close()
	if !h.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// The live subscription's channel delivers the backlogged event then
	// closes (it was subscribed before the publish? No: after — so it
	// closes immediately once drained of the one live delivery).
	for range live.C {
	}
	if live.Lagged() {
		t.Fatal("closed-not-lagged subscriber reports Lagged")
	}

	// Late joiners still get the retained history on a born-closed channel.
	backlog, sub, _ := h.Subscribe(0, 4)
	if len(backlog) != 1 {
		t.Fatalf("post-close backlog %d, want 1", len(backlog))
	}
	if _, open := <-sub.C; open {
		t.Fatal("post-close subscription channel must be born closed")
	}
	if seq := h.Publish(sampleEv(2)); seq != 0 {
		t.Fatalf("Publish after Close returned seq %d, want 0", seq)
	}
	sub.Cancel() // must be a safe no-op
}

// TestHubConcurrentChurn hammers one publisher against subscribe /
// consume / cancel churn (run with -race): every reader checks that the
// backlog + live concatenation is strictly sequential — no gap, no
// duplicate — no matter when it joined or left.
func TestHubConcurrentChurn(t *testing.T) {
	h := NewHub(1 << 14)
	const events = 2000
	const readers = 8

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(1); c <= events; c++ {
			h.Publish(sampleEv(c))
		}
		h.Close()
	}()

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cursor := uint64(0)
			for round := 0; ; round++ {
				backlog, sub, gapped := h.Subscribe(cursor+1, 8)
				if gapped {
					errs <- fmt.Errorf("reader %d: gap at cursor %d with an oversized ring", r, cursor)
					return
				}
				for _, ev := range backlog {
					if ev.Seq != cursor+1 {
						errs <- fmt.Errorf("reader %d: backlog seq %d after %d", r, ev.Seq, cursor)
						return
					}
					cursor = ev.Seq
				}
				live := 0
				for ev := range sub.C {
					if ev.Seq != cursor+1 {
						errs <- fmt.Errorf("reader %d: live seq %d after %d", r, ev.Seq, cursor)
						return
					}
					cursor = ev.Seq
					// Churn: drop the subscription mid-stream every few
					// events and resubscribe from the cursor.
					if live++; live%50 == 0 && round < 5 {
						sub.Cancel()
						break
					}
				}
				if h.Closed() && !sub.Lagged() {
					// Channel closed because the run is over (not a lag
					// drop): pick up anything still retained, then stop.
					tail, s2, _ := h.Subscribe(cursor+1, 1)
					s2.Cancel()
					for _, ev := range tail {
						if ev.Seq != cursor+1 {
							errs <- fmt.Errorf("reader %d: tail seq %d after %d", r, ev.Seq, cursor)
							return
						}
						cursor = ev.Seq
					}
					if cursor != events {
						errs <- fmt.Errorf("reader %d: finished at %d, want %d", r, cursor, events)
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestIntervalSeriesPublishChurn wires a hub into IntervalSeries.OnSample
// the way the service does, then races Append against subscriber churn
// (run with -race): the simulation-side Append must never block or skip,
// and the hub history must match the buffered series bit for bit.
func TestIntervalSeriesPublishChurn(t *testing.T) {
	hub := NewHub(4096)
	series := &IntervalSeries{Interval: 64}
	series.OnSample = func(s Sample) {
		hub.Publish(TimelineEvent{Cycle: s.Cycle, Kind: TimelineSample, Sample: &s})
	}

	const n = 1000
	done := make(chan struct{})
	var churn sync.WaitGroup
	for r := 0; r < 4; r++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, sub, _ := hub.Subscribe(0, 2) // tiny buffer: most get dropped
				for range sub.C {
				}
				sub.Cancel()
			}
		}()
	}

	for c := int64(1); c <= n; c++ {
		series.Append(Sample{Cycle: c * 64, Points: []SeriesPoint{
			{Stream: 0, Label: "graphics", IPC: 1.5, Warps: 12},
			{Stream: 1, Label: "VIO", IPC: 0.5, Warps: 4},
		}})
	}
	close(done)
	churn.Wait()
	hub.Close()

	if len(series.Samples) != n {
		t.Fatalf("buffered series has %d samples, want %d", len(series.Samples), n)
	}
	var streamed []Sample
	for _, ev := range hub.Events(0, 0) {
		if ev.Kind == TimelineSample {
			streamed = append(streamed, *ev.Sample)
		}
	}
	if len(streamed) != n {
		t.Fatalf("hub retained %d samples, want %d", len(streamed), n)
	}
	if SamplesDigest(streamed) != SamplesDigest(series.Samples) {
		t.Fatal("streamed samples diverge from the buffered series")
	}
}

func TestSamplesDigest(t *testing.T) {
	mk := func() []Sample {
		return []Sample{
			{Cycle: 100, Points: []SeriesPoint{{Stream: 0, Label: "graphics", IPC: 1.25, Warps: 30, L1Hit: 0.9, L2Hit: 0.5, DRAMBytesPerCycle: 3.5, Stalls: [NumStallCauses]int64{1, 2, 3, 4, 5}}}},
			{Cycle: 200, Points: []SeriesPoint{{Stream: 1, Label: "VIO", IPC: 0.75, Warps: 8}}},
		}
	}
	a, b := mk(), mk()
	if SamplesDigest(a) != SamplesDigest(b) {
		t.Fatal("identical series hash differently")
	}
	b[1].Points[0].Stalls[2]++
	if SamplesDigest(a) == SamplesDigest(b) {
		t.Fatal("stall-count perturbation not reflected in the digest")
	}
	if SamplesDigest(nil) != SamplesDigest([]Sample{}) {
		t.Fatal("nil and empty series must agree")
	}
}
