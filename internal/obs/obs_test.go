package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderCollectsAndResets(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Cycle: 10, Kind: EvKernelLaunch, Stream: 1, Name: "k"})
	r.Emit(Event{Cycle: 20, Kind: EvKernelDone, Stream: 1, Name: "k"})
	if n := len(r.Events()); n != 2 {
		t.Fatalf("events = %d, want 2", n)
	}
	if r.Events()[0].Cycle != 10 || r.Events()[1].Kind != EvKernelDone {
		t.Errorf("events recorded out of order: %+v", r.Events())
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range StallCauses() {
		s := c.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("cause %d has no name: %q", c, s)
		}
		if seen[s] {
			t.Errorf("duplicate cause name %q", s)
		}
		seen[s] = true
	}
	if len(StallCauses()) != NumStallCauses {
		t.Errorf("StallCauses() = %d entries, want %d", len(StallCauses()), NumStallCauses)
	}
}

func TestEventKindNames(t *testing.T) {
	kinds := []EventKind{EvKernelLaunch, EvKernelDone, EvCTAIssue, EvCTACommit,
		EvBatchStart, EvBatchDone, EvRepartition, EvMemContention}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("kind %d has no name: %q", k, s)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

// chromeDoc mirrors the emitted JSON shape for round-trip checks.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func testEvents() []Event {
	return []Event{
		{Cycle: 0, Kind: EvBatchStart, Stream: 0, Task: 0, SM: -1, CTA: -1, Name: "b0"},
		{Cycle: 0, Kind: EvKernelLaunch, Stream: 0, Task: 0, SM: -1, CTA: -1, Name: "vs", Arg: 2},
		{Cycle: 1, Kind: EvCTAIssue, Stream: 0, Task: 0, SM: 3, CTA: 0, Name: "vs"},
		{Cycle: 2, Kind: EvCTAIssue, Stream: 0, Task: 0, SM: 1, CTA: 1, Name: "vs"},
		{Cycle: 50, Kind: EvCTACommit, Stream: 0, Task: 0, SM: 3, CTA: 0, Name: "vs"},
		{Cycle: 80, Kind: EvCTACommit, Stream: 0, Task: 0, SM: 1, CTA: 1, Name: "vs"},
		{Cycle: 80, Kind: EvKernelDone, Stream: 0, Task: 0, SM: -1, CTA: -1, Name: "vs", Arg: 2},
		{Cycle: 90, Kind: EvBatchDone, Stream: 0, Task: 0, SM: -1, CTA: -1, Name: "b0"},
		{Cycle: 100, Kind: EvRepartition, Stream: -1, Task: -1, SM: -1, CTA: -1, Name: "split 4:8 CTAs", Arg: 4<<16 | 8},
		{Cycle: 120, Kind: EvMemContention, Stream: 1 << 20, Task: -1, SM: 2, CTA: -1, Name: "L2 bank queue", Arg: 40},
		// A kernel that never finishes: must still be closed as a span.
		{Cycle: 130, Kind: EvKernelLaunch, Stream: 1 << 20, Task: 1, SM: -1, CTA: -1, Name: "dangling", Arg: 1},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	series := &IntervalSeries{Interval: 64, Samples: []Sample{
		{Cycle: 64, Points: []SeriesPoint{{Stream: 0, Label: "graphics", IPC: 1.5, Warps: 12, L1Hit: 0.9, L2Hit: 0.5, DRAMBytesPerCycle: 3.2}}},
		{Cycle: 128, Points: []SeriesPoint{{Stream: 0, Label: "graphics", IPC: 0.5, Warps: 4}}},
	}}
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, testEvents(), series, func(stream int) string {
		if stream == 0 {
			return "batch0"
		}
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	// ts must be non-decreasing within every (pid, tid) track.
	last := map[[2]int]int64{}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
		names[e.Name] = true
		if e.Ph == "M" {
			continue
		}
		k := [2]int{e.Pid, e.Tid}
		if prev, ok := last[k]; ok && e.Ts < prev {
			t.Errorf("track pid=%d tid=%d: ts %d after %d", e.Pid, e.Tid, e.Ts, prev)
		}
		last[k] = e.Ts
	}
	// One complete kernel span, two CTA spans, one dangling-kernel span.
	if phases["X"] != 4 {
		t.Errorf("X events = %d, want 4", phases["X"])
	}
	// 2 batch instants + 1 repartition + 1 contention marker.
	if phases["i"] != 4 {
		t.Errorf("i events = %d, want 4", phases["i"])
	}
	// 5 counters for the full sample + 5 for the sparse one.
	if phases["C"] != 10 {
		t.Errorf("C events = %d, want 10", phases["C"])
	}
	if phases["M"] == 0 {
		t.Error("no track-naming metadata emitted")
	}
	for _, want := range []string{"vs", "vs cta0", "vs cta1", "dangling",
		"split 4:8 CTAs", "L2 bank queue", "graphics IPC"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}

	// The dangling kernel must be closed at the last seen cycle (130 with
	// minimum duration 1).
	for _, e := range doc.TraceEvents {
		if e.Name == "dangling" && e.Ph == "X" {
			if e.Dur < 1 {
				t.Errorf("dangling span dur = %d", e.Dur)
			}
			if e.Args["unfinished"] != true {
				t.Error("dangling span not marked unfinished")
			}
		}
	}
}

func TestChromeTraceStreamLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testEvents(), nil, func(int) string { return "lbl" }); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "stream 0 (lbl)") {
		t.Error("stream label missing from process names")
	}
	if !strings.Contains(s, "partition policy") || !strings.Contains(s, "memory contention") {
		t.Error("synthetic process names missing")
	}
	// nil labeler must also work.
	if err := WriteChromeTrace(&bytes.Buffer{}, testEvents(), nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSeriesCSV(t *testing.T) {
	s := &IntervalSeries{Interval: 100, Samples: []Sample{
		{Cycle: 100, Points: []SeriesPoint{
			{Stream: 0, Label: "graphics", IPC: 1.25, Warps: 8, L1Hit: 0.5, L2Hit: 0.25, DRAMBytesPerCycle: 2},
			{Stream: 1, Label: "VIO", IPC: 0.5, Warps: 3},
		}},
		{Cycle: 200, Points: []SeriesPoint{
			{Stream: 0, Label: "graphics", IPC: 2, Warps: 10},
		}},
	}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "cycle,stream,label,ipc,") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "100,0,graphics,1.2500,8,") {
		t.Errorf("bad row %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "200,0,graphics,") {
		t.Errorf("bad row %q", lines[3])
	}
}
