// Package obs is CRISP's cycle-domain observability layer: structured,
// cycle-stamped trace events emitted by the timing model, a stall-cause
// taxonomy for per-scheduler issue-slot attribution, an interval metrics
// time series, and export sinks (Chrome trace-event / Perfetto JSON and
// CSV).
//
// The layer is designed around a nil fast path: every emission site in
// the simulator is guarded by a single tracer-non-nil branch, so a run
// with tracing disabled pays one predictable branch per site and nothing
// else. Stall attribution is always on — it is part of the model's
// statistics, not of the optional tracing — but it only adds work on
// scheduler slots that already failed to issue (a path that has already
// scanned every resident warp).
//
// The package is dependency-free (stdlib only) so every simulator layer
// (sm, mem, gpu, partition, stats) can import it without cycles.
package obs

// StallCause classifies why a warp scheduler could not issue in a cycle
// it was given an issue slot. Exactly one cause is recorded per
// non-issuing slot: the binding constraint of the earliest-ready warp
// (the warp that will issue soonest), which is the constraint actually
// delaying forward progress.
type StallCause uint8

const (
	// StallScoreboard: a source or destination register is pending on an
	// ALU/SFU/tensor producer (plain scoreboard dependence).
	StallScoreboard StallCause = iota
	// StallMemPending: a register is pending on an outstanding memory
	// access (global, texture, shared, or constant load).
	StallMemPending
	// StallPipeBusy: the instruction's execution unit has not finished
	// its initiation interval for the previous instruction.
	StallPipeBusy
	// StallBarrier: the warp is waiting at a CTA-wide barrier.
	StallBarrier
	// StallEmptySlot: the scheduler had no resident warps while its SM
	// was otherwise busy (a wasted issue slot from under-occupancy).
	StallEmptySlot

	numStallCauses
)

// NumStallCauses is the number of distinct stall causes, for sizing
// per-cause accumulator arrays.
const NumStallCauses = int(numStallCauses)

var stallNames = [NumStallCauses]string{
	StallScoreboard: "scoreboard",
	StallMemPending: "mem-pending",
	StallPipeBusy:   "pipe-busy",
	StallBarrier:    "barrier",
	StallEmptySlot:  "empty-slot",
}

func (c StallCause) String() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return "StallCause(?)"
}

// StallCauses lists every cause in accumulator order.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}

// EventKind identifies the type of a trace event.
type EventKind uint8

const (
	// EvKernelLaunch marks a kernel entering the running set.
	EvKernelLaunch EventKind = iota
	// EvKernelDone marks a kernel's last CTA committing.
	EvKernelDone
	// EvCTAIssue marks one CTA being placed on an SM.
	EvCTAIssue
	// EvCTACommit marks one CTA's last warp exiting.
	EvCTACommit
	// EvBatchStart marks a graphics drawcall batch (stream) beginning
	// execution.
	EvBatchStart
	// EvBatchDone marks a graphics drawcall batch (stream) draining.
	EvBatchDone
	// EvRepartition marks a dynamic partition policy decision (sampling
	// restart or a newly chosen split).
	EvRepartition
	// EvMemContention marks sustained queueing at an L2 bank or DRAM
	// channel (the shared-resource contention the paper studies).
	EvMemContention
	// EvWatchdog marks an abnormal termination of the run: a
	// forward-progress watchdog trip, a cycle-budget overrun, a
	// cancellation, or a placement deadlock. Name carries the reason.
	EvWatchdog
	// EvTenantArrive marks a scenario tenant instance (frame, request)
	// becoming eligible to run. Name is the tenant label, Arg the instance
	// index; immediate (cycle-0) arrivals are not emitted.
	EvTenantArrive
	// EvDeadlineMet marks a tenant instance completing within its
	// deadline. Arg is the (non-positive) slack in cycles.
	EvDeadlineMet
	// EvDeadlineMiss marks a tenant instance completing past its deadline.
	// Arg is the tardiness in cycles.
	EvDeadlineMiss
)

var kindNames = [...]string{
	EvKernelLaunch:  "kernel-launch",
	EvKernelDone:    "kernel-done",
	EvCTAIssue:      "cta-issue",
	EvCTACommit:     "cta-commit",
	EvBatchStart:    "batch-start",
	EvBatchDone:     "batch-done",
	EvRepartition:   "repartition",
	EvMemContention: "mem-contention",
	EvWatchdog:      "watchdog",
	EvTenantArrive:  "tenant-arrive",
	EvDeadlineMet:   "deadline-met",
	EvDeadlineMiss:  "deadline-miss",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "EventKind(?)"
}

// Event is one cycle-stamped structured trace event. Fields that do not
// apply to a kind are -1 (Stream, Task, SM, CTA) or zero values.
type Event struct {
	Cycle  int64
	Kind   EventKind
	Stream int    // owning stream id (-1 for policy-global events)
	Task   int    // owning task (-1 when not applicable)
	SM     int    // SM id, L2 bank, or DRAM channel (-1 when n/a)
	CTA    int    // CTA index within the kernel (-1 when n/a)
	Name   string // kernel/batch/policy detail
	Arg    int64  // kind-specific payload (CTA count, wait cycles, split)
}

// Tracer receives trace events from the timing model. Implementations
// must be cheap: Emit is called from the simulator's hot loop (guarded
// by one nil check per site). The simulator is single-threaded, so
// implementations need no locking.
type Tracer interface {
	Emit(ev Event)
}

// Recorder is a Tracer that appends every event to memory.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded events in emission order. The slice is
// owned by the recorder; callers must not mutate it while recording.
func (r *Recorder) Events() []Event { return r.events }

// Reset discards all recorded events, retaining capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// NullTracer is a Tracer that discards everything. It exists to measure
// the cost of the emission sites themselves (branch + interface call +
// event construction) against the nil fast path.
type NullTracer struct{}

// Emit implements Tracer.
func (NullTracer) Emit(Event) {}
