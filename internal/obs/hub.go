package obs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
)

// Timeline event kinds. A hub's history interleaves interval-metrics
// samples with lifecycle markers (job state transitions, run boundaries);
// the kind string doubles as the SSE event name on the wire.
const (
	// TimelineSample marks an interval-metrics sample (Sample set).
	TimelineSample = "sample"
	// TimelineLifecycle marks a state transition (State/Detail set).
	TimelineLifecycle = "lifecycle"
	// TimelineAttempt marks a supervised execution attempt starting
	// (Attempt/Detail set): attempt 1 is the first run, higher numbers are
	// retries resuming from a checkpoint.
	TimelineAttempt = "attempt"
)

// TimelineEvent is one entry in a telemetry Hub's history.
type TimelineEvent struct {
	// Seq is the hub-assigned sequence number: dense, 1-based, strictly
	// increasing. It is the SSE event id on the wire, so a client's
	// Last-Event-ID maps directly onto a hub cursor.
	Seq   uint64 `json:"seq"`
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	// Sample carries the per-stream interval points (including the
	// per-cause stall-attribution deltas) when Kind == TimelineSample.
	Sample *Sample `json:"sample,omitempty"`
	// State and Detail describe TimelineLifecycle events.
	State  string `json:"state,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Attempt is the 1-based execution attempt number for
	// TimelineAttempt events (retries under the supervised run loop).
	Attempt int `json:"attempt,omitempty"`
}

// DefaultHubCapacity bounds a hub's retained history when NewHub is given
// no explicit capacity. At the service's default 4096-cycle sampling
// cadence this retains tens of millions of simulated cycles — far beyond
// any realistic reconnect window.
const DefaultHubCapacity = 8192

// Hub is a bounded-history, multi-subscriber telemetry broadcaster: the
// bridge between a simulation goroutine appending interval samples
// (IntervalSeries.OnSample) and any number of live readers (SSE streams,
// pollers, tests).
//
// Design points:
//
//   - Bounded ring history. The newest capacity events are retained;
//     older ones are evicted. Cursor-based catch-up (Subscribe's fromSeq)
//     replays retained history atomically with live registration, so a
//     late joiner or a reconnecting client sees a gap-free, duplicate-free
//     continuation as long as its cursor is still retained.
//   - Non-blocking publish. Publish never waits on a subscriber: a
//     subscriber whose channel is full is dropped (its channel is closed
//     and Lagged reports true) rather than allowed to stall the
//     simulation goroutine. A dropped client reconnects with its last
//     seen id and catches up from the ring.
//   - Zero overhead when idle. With no subscribers, Publish is one mutex
//     acquisition and one ring write per sample interval (thousands of
//     simulated cycles apart) — nothing on the per-cycle hot path, which
//     keeps the tracing-overhead contract intact.
//
// The zero value is not usable; call NewHub.
type Hub struct {
	mu     sync.Mutex
	buf    []TimelineEvent // circular buffer, capacity == len(buf)
	head   int             // index of the oldest retained event
	n      int             // retained count
	next   uint64          // next sequence number to assign (1-based)
	subs   map[*Subscription]struct{}
	closed bool

	subsDropped uint64 // subscribers disconnected for lagging
	evsDropped  uint64 // events that failed delivery to a lagging subscriber
}

// NewHub returns a hub retaining at most capacity events (<= 0 selects
// DefaultHubCapacity).
func NewHub(capacity int) *Hub {
	if capacity <= 0 {
		capacity = DefaultHubCapacity
	}
	return &Hub{
		buf:  make([]TimelineEvent, capacity),
		next: 1,
		subs: make(map[*Subscription]struct{}),
	}
}

// Subscription is one reader's live feed. Receive from C until it is
// closed: the hub closes it when the publisher is done (Close) or when
// this subscriber lagged and was dropped (Lagged distinguishes the two).
type Subscription struct {
	// C delivers events in sequence order.
	C <-chan TimelineEvent

	hub    *Hub
	ch     chan TimelineEvent
	lagged bool
	done   bool
}

// Lagged reports whether the hub dropped this subscription because its
// channel filled up. A lagged reader resubscribes from its last seen
// sequence number to resume without gaps.
func (s *Subscription) Lagged() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.lagged
}

// Cancel unsubscribes. Safe to call multiple times and after the hub
// closed or dropped the subscription.
func (s *Subscription) Cancel() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	s.hub.removeLocked(s)
}

// removeLocked detaches s and closes its channel (caller holds h.mu).
func (h *Hub) removeLocked(s *Subscription) {
	if s.done {
		return
	}
	s.done = true
	delete(h.subs, s)
	close(s.ch)
}

// Publish appends one event to the history and broadcasts it, assigning
// and returning its sequence number. ev.Seq is set by the hub. After
// Close, Publish drops the event and returns 0.
func (h *Hub) Publish(ev TimelineEvent) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	ev.Seq = h.next
	h.next++
	if h.n == len(h.buf) {
		h.buf[h.head] = ev
		h.head = (h.head + 1) % len(h.buf)
	} else {
		h.buf[(h.head+h.n)%len(h.buf)] = ev
		h.n++
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow-subscriber policy: drop the subscriber, never block
			// the publisher. The closed channel tells the reader to
			// reconnect from its cursor.
			s.lagged = true
			h.subsDropped++
			h.evsDropped++
			h.removeLocked(s)
		}
	}
	return ev.Seq
}

// Close marks the history complete and closes every subscription channel.
// Subsequent Subscribe calls still replay the retained history (their
// channels are born closed); subsequent Publish calls are dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		h.removeLocked(s)
	}
}

// Closed reports whether the hub has been closed.
func (h *Hub) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Subscribe registers a reader starting at sequence number fromSeq
// (0 and 1 both mean "from the beginning"). It returns, atomically:
//
//   - backlog: the retained events with Seq >= fromSeq, in order;
//   - sub: the live feed for every event published after the backlog
//     (closed already if the hub is closed);
//   - gapped: true when fromSeq refers to history the ring has already
//     evicted, i.e. the replay starts later than requested and the
//     caller should refetch the full series instead of assuming
//     continuity.
//
// Because registration and the backlog copy happen under one lock, the
// concatenation backlog + <-sub.C is gap-free and duplicate-free.
// chanCap sizes the live channel (<= 0 selects 64); an SSE handler that
// flushes promptly rarely needs more.
func (h *Hub) Subscribe(fromSeq uint64, chanCap int) (backlog []TimelineEvent, sub *Subscription, gapped bool) {
	backlog, sub, gapped, _ = h.SubscribeLimited(fromSeq, chanCap, 0)
	return backlog, sub, gapped
}

// SubscribeLimited is Subscribe with an admission bound: when maxSubs > 0
// and that many subscriptions are already live, no subscription is created
// and ok is false — the check and the registration happen under one lock,
// so a flood of concurrent subscribers can never overshoot the cap. A
// closed hub always admits (the subscription is born closed and only the
// backlog is replayed; it holds no resources). maxSubs <= 0 means
// unlimited.
func (h *Hub) SubscribeLimited(fromSeq uint64, chanCap, maxSubs int) (backlog []TimelineEvent, sub *Subscription, gapped, ok bool) {
	if chanCap <= 0 {
		chanCap = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	if maxSubs > 0 && !h.closed && len(h.subs) >= maxSubs {
		return nil, nil, false, false
	}

	oldest := h.next - uint64(h.n) // seq of the oldest retained event
	if fromSeq < 1 {
		fromSeq = 1
	}
	if fromSeq < oldest {
		gapped = true
		fromSeq = oldest
	}
	if fromSeq < h.next {
		backlog = make([]TimelineEvent, 0, h.next-fromSeq)
		for i := int(fromSeq - oldest); i < h.n; i++ {
			backlog = append(backlog, h.buf[(h.head+i)%len(h.buf)])
		}
	}

	s := &Subscription{hub: h, ch: make(chan TimelineEvent, chanCap)}
	s.C = s.ch
	if h.closed {
		s.done = true
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	return backlog, s, gapped, true
}

// Events returns a copy of the retained events whose cycle lies in
// [fromCycle, toCycle]; toCycle <= 0 means "no upper bound". Lifecycle
// events at cycle 0 are included whenever fromCycle <= 0.
func (h *Hub) Events(fromCycle, toCycle int64) []TimelineEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]TimelineEvent, 0, h.n)
	for i := 0; i < h.n; i++ {
		ev := h.buf[(h.head+i)%len(h.buf)]
		if ev.Cycle < fromCycle {
			continue
		}
		if toCycle > 0 && ev.Cycle > toCycle {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Latest returns the newest retained event of the given kind ("" matches
// any kind); ok is false when none is retained.
func (h *Hub) Latest(kind string) (ev TimelineEvent, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := h.n - 1; i >= 0; i-- {
		e := h.buf[(h.head+i)%len(h.buf)]
		if kind == "" || e.Kind == kind {
			return e, true
		}
	}
	return TimelineEvent{}, false
}

// HubStats is a point-in-time hub counter snapshot (exported through the
// service's /metrics endpoint).
type HubStats struct {
	Published   uint64 // events ever published (== newest seq)
	Retained    int    // events currently in the ring
	OldestSeq   uint64 // seq of the oldest retained event (0 when empty)
	Subscribers int    // live subscriptions
	SubsDropped uint64 // subscribers dropped for lagging
	EvsDropped  uint64 // events that failed delivery to a lagging subscriber
	Closed      bool
}

// Stats returns current hub statistics.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{
		Published:   h.next - 1,
		Retained:    h.n,
		Subscribers: len(h.subs),
		SubsDropped: h.subsDropped,
		EvsDropped:  h.evsDropped,
		Closed:      h.closed,
	}
	if h.n > 0 {
		st.OldestSeq = h.next - uint64(h.n)
	}
	return st
}

// SamplesDigest hashes a sample series canonically: FNV-1a over every
// sample's cycle and every point's stream id, label, counters, and the
// IEEE-754 bit patterns of its rates, in order. Two series share a digest
// iff they are bit-identical, which is how a streamed timeline is checked
// against the buffered series it was broadcast from.
func SamplesDigest(samples []Sample) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	for _, s := range samples {
		u64(uint64(s.Cycle))
		u64(uint64(len(s.Points)))
		for _, p := range s.Points {
			u64(uint64(p.Stream))
			h.Write([]byte(p.Label))
			f64(p.IPC)
			u64(uint64(p.Warps))
			f64(p.L1Hit)
			f64(p.L2Hit)
			f64(p.DRAMBytesPerCycle)
			for _, n := range p.Stalls {
				u64(uint64(n))
			}
		}
	}
	return h.Sum64()
}
