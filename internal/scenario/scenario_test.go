package scenario

import (
	"encoding/json"
	"testing"

	"crisp/internal/gpu"
)

func TestArrivalTimes(t *testing.T) {
	cases := []struct {
		name string
		a    Arrival
		want []int64
	}{
		{"immediate default", Arrival{}, []int64{0}},
		{"immediate count", Arrival{Kind: ArriveImmediate, Count: 3}, []int64{0, 0, 0}},
		{"offset", Arrival{Kind: ArriveOffset, Offset: 500, Count: 2}, []int64{500, 500}},
		{"periodic", Arrival{Kind: ArrivePeriodic, Offset: 100, Period: 50, Count: 4}, []int64{100, 150, 200, 250}},
	}
	for _, c := range cases {
		got, err := c.a.Times()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

// TestBurstyDeterministic pins the bursty generator: same seed → identical
// schedule, different seed → different schedule, gaps within [1, 2P-1],
// and the exact expansion for one seed (a platform-independence canary —
// integer splitmix64 must produce these cycles everywhere).
func TestBurstyDeterministic(t *testing.T) {
	a := Arrival{Kind: ArriveBursty, Period: 1000, Count: 6, Seed: 42}
	x, err := a.Times()
	if err != nil {
		t.Fatal(err)
	}
	y, _ := a.Times()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("same seed diverged: %v vs %v", x, y)
		}
	}
	prev := int64(-1)
	for i, v := range x {
		if v <= prev && i > 0 {
			t.Fatalf("non-increasing arrivals: %v", x)
		}
		if i > 0 {
			gap := v - x[i-1]
			if gap < 1 || gap > 2*a.Period-1 {
				t.Fatalf("gap %d outside [1, %d]", gap, 2*a.Period-1)
			}
		}
		prev = v
	}
	b := a
	b.Seed = 43
	z, _ := b.Times()
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []MixSpec{
		{},
		{Tenants: []Tenant{{}}},
		{Tenants: []Tenant{{Scene: "SPL", Compute: "VIO"}}},
		{Tenants: []Tenant{{Scene: "nope"}}},
		{Tenants: []Tenant{{Compute: "nope"}}},
		{Tenants: []Tenant{{Compute: "VIO", Deadline: -1}}},
		{Tenants: []Tenant{{Compute: "VIO", Arrival: Arrival{Kind: "sometimes"}}}},
		{Tenants: []Tenant{{Compute: "VIO", Arrival: Arrival{Kind: ArrivePeriodic}}}},
		{Tenants: []Tenant{{Compute: "VIO"}, {Compute: "VIO"}}},
		{Tenants: make([]Tenant, MaxTenants+1)},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid mix accepted", i)
		}
	}
}

// TestNormalizeCanonicalJSON pins the cache-key property: normalizing and
// marshaling is idempotent — unmarshal(marshal(normalized)) re-marshals
// byte-identically, so the snapshot spec's Mix bytes are canonical.
func TestNormalizeCanonicalJSON(t *testing.T) {
	m := MixSpec{Tenants: []Tenant{
		{Scene: "SPL"},
		{Compute: "VIO", Arrival: Arrival{Kind: ArriveBursty, Period: 100, Count: 3, Seed: 9}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Normalize()
	b1, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var round MixSpec
	if err := json.Unmarshal(b1, &round); err != nil {
		t.Fatal(err)
	}
	round.Normalize()
	b2, err := json.Marshal(&round)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("canonical JSON not stable:\n%s\n%s", b1, b2)
	}
}

func TestPresetsValid(t *testing.T) {
	names := PresetNames()
	if len(names) < 4 {
		t.Fatalf("preset zoo too small: %v", names)
	}
	for _, n := range names {
		m, err := Preset(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		for i, tn := range m.Tenants {
			if tn.Name == "" {
				t.Errorf("%s: tenant %d not normalized", n, i)
			}
			if _, err := tn.Arrival.Times(); err != nil {
				t.Errorf("%s: tenant %d arrivals: %v", n, i, err)
			}
		}
	}
	if _, err := Preset("no-such-preset"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestAccount exercises the QoS fold: met/missed classification,
// tardiness histogram bucketing, incomplete-instance handling, and
// turnaround arithmetic.
func TestAccount(t *testing.T) {
	tenants := []gpu.QoSTenant{
		{Task: 0, Label: "a", Instances: []gpu.QoSInstance{
			{Arrival: 0, Deadline: 100},   // done 90  -> met
			{Arrival: 50, Deadline: 150},  // done 160 -> missed, tardy 10
			{Arrival: 100, Deadline: 300}, // incomplete -> missed
		}},
		{Task: 1, Label: "b", Priority: 3, Instances: []gpu.QoSInstance{
			{Arrival: 10}, // no deadline, done 500
		}},
	}
	done := [][]int64{{90, 160, 0}, {500}}
	rep := Account(tenants, done, 600)
	if rep.Makespan != 600 || len(rep.Tenants) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	a := rep.Tenants[0]
	if a.Completed != 2 || a.DeadlinesMet != 1 || a.DeadlinesMissed != 2 {
		t.Errorf("tenant a: %+v", a)
	}
	if a.MaxTardiness != 10 || a.TardyHist[log2Bucket(10)] != 1 {
		t.Errorf("tardiness: max=%d hist=%v", a.MaxTardiness, a.TardyHist)
	}
	if a.SumTurnaround != 90+110 {
		t.Errorf("turnaround sum: %d", a.SumTurnaround)
	}
	b := rep.Tenants[1]
	if b.Completed != 1 || b.DeadlinesMet != 0 || b.DeadlinesMissed != 0 {
		t.Errorf("tenant b: %+v", b)
	}
	if got := b.MeanTurnaround(); got != 490 {
		t.Errorf("mean turnaround: %v", got)
	}
	if rep.String() == "" {
		t.Error("empty report table")
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := log2Bucket(n); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", n, got, want)
		}
	}
	huge := int64(1) << 40
	if got := log2Bucket(huge); got != TardyHistBuckets-1 {
		t.Errorf("log2Bucket(2^40) = %d, want clamp %d", got, TardyHistBuckets-1)
	}
}
