package scenario

import (
	"fmt"
	"sort"
)

// The preset zoo: named, validated mixes organized like a benchmark
// suite. Each entry is a constructor so callers always get a fresh copy
// they may tweak. Deadlines and periods are in simulated cycles and sized
// for the default experiment scales; they are nominal service-level
// targets, not hardware truths — the QoS accounting is exercised either
// way.
var presets = map[string]func() MixSpec{
	// vr-frame-deadline is the paper's motivating scenario as a QoS mix:
	// frames rendered on a vsync cadence, each with a completion deadline,
	// while a sensor-fusion workload (VIO) shares the machine.
	"vr-frame-deadline": func() MixSpec {
		return MixSpec{
			Name: "vr-frame-deadline",
			Tenants: []Tenant{
				{
					Scene:    "SPL",
					Priority: 1,
					Arrival:  Arrival{Kind: ArrivePeriodic, Period: 600_000, Count: 3},
					Deadline: 1_200_000,
				},
				{Compute: "VIO"},
			},
		}
	},
	// bursty-inference-under-render models an interactive ML service:
	// inference requests (NN) arrive in seeded pseudo-random bursts under
	// a frame being rendered, each request with a latency deadline.
	"bursty-inference-under-render": func() MixSpec {
		return MixSpec{
			Name: "bursty-inference-under-render",
			Tenants: []Tenant{
				{Scene: "SPL", Priority: 1},
				{
					Compute:  "NN",
					Arrival:  Arrival{Kind: ArriveBursty, Period: 150_000, Count: 5, Seed: 7},
					Deadline: 2_000_000,
				},
			},
		}
	},
	// background-batch pairs a latency-critical render with a throughput
	// batch job (HOLO) that should only soak up leftover capacity.
	"background-batch": func() MixSpec {
		return MixSpec{
			Name: "background-batch",
			Tenants: []Tenant{
				{Scene: "SPL", Priority: 10, Deadline: 2_000_000},
				{Compute: "HOLO", Priority: 0},
			},
		}
	},
	// n-way-fair is the determinism workhorse: four compute tenants with
	// staggered fixed-offset arrivals, no rendering (fast to simulate),
	// exercising every N-way policy path. Used by the parity suite and the
	// CI scenario-determinism job.
	"n-way-fair": func() MixSpec {
		return MixSpec{
			Name: "n-way-fair",
			Tenants: []Tenant{
				{Compute: "VIO", Deadline: 4_000_000},
				{Compute: "NN", Arrival: Arrival{Kind: ArriveOffset, Offset: 20_000}, Deadline: 4_000_000},
				{Compute: "UPSCALE", Arrival: Arrival{Kind: ArriveOffset, Offset: 40_000}},
				{Compute: "ATW", Arrival: Arrival{Kind: ArriveOffset, Offset: 60_000}},
			},
		}
	},
}

// PresetNames lists the preset zoo in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a fresh, normalized copy of the named preset mix.
func Preset(name string) (MixSpec, error) {
	f, ok := presets[name]
	if !ok {
		return MixSpec{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, PresetNames())
	}
	m := f()
	if err := m.Validate(); err != nil {
		return MixSpec{}, fmt.Errorf("scenario: preset %q is invalid: %w", name, err)
	}
	m.Normalize()
	return m, nil
}
