package scenario

import (
	"fmt"
	"strings"

	"crisp/internal/gpu"
)

// TardyHistBuckets sizes the power-of-two tardiness histogram: bucket i
// counts misses with tardiness in [2^i, 2^(i+1)) cycles (bucket 0 also
// catches 1-cycle misses; the last bucket is open-ended).
const TardyHistBuckets = 24

// TenantReport is one tenant's QoS accounting over a finished run.
type TenantReport struct {
	Task     int    `json:"task"`
	Name     string `json:"name"`
	Priority int    `json:"priority,omitempty"`
	// Instances / Completed count the tenant's schedulable units (frames,
	// requests) declared and finished.
	Instances int `json:"instances"`
	Completed int `json:"completed"`
	// DeadlinesMet / DeadlinesMissed partition the completed instances
	// that carried a deadline; an instance that never completed but had a
	// deadline counts as missed.
	DeadlinesMet    int `json:"deadlines_met"`
	DeadlinesMissed int `json:"deadlines_missed"`
	// MaxTardiness is the worst lateness in cycles among missed
	// instances; TardyHist buckets the misses by floor(log2(tardiness)).
	MaxTardiness int64   `json:"max_tardiness,omitempty"`
	TardyHist    []int64 `json:"tardy_hist,omitempty"`
	// SumTurnaround totals completion-minus-arrival over completed
	// instances (mean turnaround = SumTurnaround / Completed).
	SumTurnaround int64 `json:"sum_turnaround"`
	// FirstArrival / LastDone frame the tenant's activity span.
	FirstArrival int64 `json:"first_arrival"`
	LastDone     int64 `json:"last_done"`
}

// MeanTurnaround is the tenant's average instance turnaround in cycles.
func (t *TenantReport) MeanTurnaround() float64 {
	if t.Completed == 0 {
		return 0
	}
	return float64(t.SumTurnaround) / float64(t.Completed)
}

// QoSReport is the per-tenant QoS accounting of one run — the single
// source of truth for deadline bookkeeping (the GPU's live counters and
// the experiments' case studies both derive from the same instance state
// this folds).
type QoSReport struct {
	Makespan int64          `json:"makespan"`
	Tenants  []TenantReport `json:"tenants"`
}

// Account folds the GPU's tenant declarations and per-instance completion
// cycles into a QoS report. done is indexed [tenant][instance] with 0
// meaning the instance never completed (gpu.QoSDone's convention; a
// finished run completes everything).
func Account(tenants []gpu.QoSTenant, done [][]int64, makespan int64) *QoSReport {
	rep := &QoSReport{Makespan: makespan}
	for ti, qt := range tenants {
		tr := TenantReport{Task: qt.Task, Name: qt.Label, Priority: qt.Priority,
			Instances: len(qt.Instances), FirstArrival: -1}
		for ii, inst := range qt.Instances {
			if tr.FirstArrival < 0 || inst.Arrival < tr.FirstArrival {
				tr.FirstArrival = inst.Arrival
			}
			var d int64
			if ti < len(done) && ii < len(done[ti]) {
				d = done[ti][ii]
			}
			if d == 0 {
				if inst.Deadline > 0 {
					tr.DeadlinesMissed++
				}
				continue
			}
			tr.Completed++
			tr.SumTurnaround += d - inst.Arrival
			if d > tr.LastDone {
				tr.LastDone = d
			}
			if inst.Deadline > 0 {
				if d <= inst.Deadline {
					tr.DeadlinesMet++
				} else {
					tr.DeadlinesMissed++
					tardy := d - inst.Deadline
					if tardy > tr.MaxTardiness {
						tr.MaxTardiness = tardy
					}
					if tr.TardyHist == nil {
						tr.TardyHist = make([]int64, TardyHistBuckets)
					}
					tr.TardyHist[log2Bucket(tardy)]++
				}
			}
		}
		if tr.FirstArrival < 0 {
			tr.FirstArrival = 0
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep
}

// log2Bucket maps a positive tardiness to its histogram bucket.
func log2Bucket(n int64) int {
	b := 0
	for n > 1 && b < TardyHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// String renders the report as a fixed-width table for CLI output.
func (r *QoSReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-16s %5s %5s %5s %6s %6s %14s %14s\n",
		"task", "tenant", "prio", "inst", "done", "dl-met", "dl-miss", "max-tardy", "mean-turnaround")
	for _, t := range r.Tenants {
		fmt.Fprintf(&sb, "%-4d %-16s %5d %5d %5d %6d %6d %14d %14.0f\n",
			t.Task, t.Name, t.Priority, t.Instances, t.Completed,
			t.DeadlinesMet, t.DeadlinesMissed, t.MaxTardiness, t.MeanTurnaround())
	}
	return sb.String()
}
