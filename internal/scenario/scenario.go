// Package scenario is CRISP's N-tenant mix engine: it describes an
// arbitrary set of tenants (rendering frames and compute workloads), each
// with a placement priority, an arrival schedule, and an optional
// per-instance deadline, and provides the QoS accounting over a finished
// run (deadlines met/missed, tardiness, turnaround).
//
// The package is declarative: a MixSpec is pure data, validated and
// normalized here, then lowered by internal/core into GPU streams whose
// NotBefore cycles realize the arrival schedule. Everything is
// deterministic by construction — bursty arrivals come from an explicit
// integer seed (splitmix64), never wall-clock or float math — so a mix is
// as reproducible, cacheable, and resumable as a plain pair.
package scenario

import (
	"fmt"

	"crisp/internal/compute"
	"crisp/internal/scene"
)

// MaxTenants bounds a mix. It matches the GPU's task-id limit (eight) —
// far beyond the paper's pairs, and enough for every preset here.
const MaxTenants = 8

// maxInstances bounds one tenant's arrival count (frames or requests); a
// runaway count would explode the stream table.
const maxInstances = 1 << 16

// Arrival schedule kinds.
const (
	// ArriveImmediate releases every instance at cycle zero (the default).
	ArriveImmediate = "immediate"
	// ArriveOffset releases every instance at the fixed Offset cycle.
	ArriveOffset = "offset"
	// ArrivePeriodic releases instance i at Offset + i*Period — a frame
	// cadence (vsync) for render tenants, a fixed-rate request stream for
	// compute tenants.
	ArrivePeriodic = "periodic"
	// ArriveBursty releases instances with pseudo-random gaps of mean
	// Period (uniform on [1, 2*Period-1]), drawn from a splitmix64 stream
	// seeded by Seed. Integer-only, so the schedule is bit-identical on
	// every platform.
	ArriveBursty = "bursty"
)

// Arrival describes when a tenant's instances (frames for render tenants,
// requests for compute tenants) become eligible to run.
type Arrival struct {
	// Kind selects the schedule; "" means ArriveImmediate.
	Kind string `json:"kind,omitempty"`
	// Offset delays the first instance (cycles).
	Offset int64 `json:"offset,omitempty"`
	// Period is the inter-arrival spacing for periodic schedules and the
	// mean gap for bursty ones.
	Period int64 `json:"period,omitempty"`
	// Count is the number of instances; 0 means 1.
	Count int `json:"count,omitempty"`
	// Seed seeds the bursty gap generator.
	Seed uint64 `json:"seed,omitempty"`
}

// Tenant is one workload sharing the GPU: exactly one of Scene/Compute
// names its work.
type Tenant struct {
	// Name labels the tenant in stats and reports; defaults to the
	// workload name. Names must be unique within a mix.
	Name string `json:"name,omitempty"`
	// Scene names a rendering workload (scene.Names).
	Scene string `json:"scene,omitempty"`
	// Compute names a compute workload (compute.Names).
	Compute string `json:"compute,omitempty"`
	// Priority orders CTA placement when tenants compete for freed
	// resources: higher first, ties by launch order. All-equal priorities
	// (the default) keep plain launch order.
	Priority int `json:"priority,omitempty"`
	// Arrival schedules the tenant's instances.
	Arrival Arrival `json:"arrival,omitempty"`
	// Deadline, when > 0, is the per-instance completion deadline in
	// cycles after the instance's arrival; the run accounts each instance
	// as met or missed against it.
	Deadline int64 `json:"deadline,omitempty"`
}

// MixSpec is a complete N-tenant scenario.
type MixSpec struct {
	// Name labels the mix (preset name, or free-form).
	Name    string   `json:"name,omitempty"`
	Tenants []Tenant `json:"tenants"`
}

// splitmix64 advances one step of the splitmix64 sequence: the returned
// state feeds the next call, the returned value is the draw.
func splitmix64(state uint64) (next, value uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Times expands the schedule into absolute arrival cycles, one per
// instance, non-decreasing. The expansion is a pure function of the
// Arrival fields.
func (a Arrival) Times() ([]int64, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	count := a.Count
	if count <= 0 {
		count = 1
	}
	out := make([]int64, count)
	switch a.Kind {
	case "", ArriveImmediate:
		// all zero
	case ArriveOffset:
		for i := range out {
			out[i] = a.Offset
		}
	case ArrivePeriodic:
		for i := range out {
			out[i] = a.Offset + int64(i)*a.Period
		}
	case ArriveBursty:
		s := a.Seed
		t := a.Offset
		span := uint64(2*a.Period - 1)
		for i := range out {
			out[i] = t
			var r uint64
			s, r = splitmix64(s)
			t += 1 + int64(r%span)
		}
	}
	return out, nil
}

func (a Arrival) validate() error {
	switch a.Kind {
	case "", ArriveImmediate, ArriveOffset, ArrivePeriodic, ArriveBursty:
	default:
		return fmt.Errorf("scenario: unknown arrival kind %q", a.Kind)
	}
	if a.Offset < 0 {
		return fmt.Errorf("scenario: negative arrival offset %d", a.Offset)
	}
	if a.Count < 0 || a.Count > maxInstances {
		return fmt.Errorf("scenario: arrival count %d outside [0, %d]", a.Count, maxInstances)
	}
	if (a.Kind == ArrivePeriodic || a.Kind == ArriveBursty) && a.Period <= 0 {
		return fmt.Errorf("scenario: %s arrivals need a positive period, got %d", a.Kind, a.Period)
	}
	return nil
}

// Validate checks the mix against the registered workload names and the
// structural limits. It does not modify the spec; call Normalize to fill
// defaults.
func (m *MixSpec) Validate() error {
	if len(m.Tenants) == 0 {
		return fmt.Errorf("scenario: mix %q has no tenants", m.Name)
	}
	if len(m.Tenants) > MaxTenants {
		return fmt.Errorf("scenario: mix %q has %d tenants, max is %d", m.Name, len(m.Tenants), MaxTenants)
	}
	seen := make(map[string]bool, len(m.Tenants))
	for i, t := range m.Tenants {
		if (t.Scene == "") == (t.Compute == "") {
			return fmt.Errorf("scenario: tenant %d must name exactly one of scene or compute", i)
		}
		if t.Scene != "" && !contains(scene.Names(), t.Scene) {
			return fmt.Errorf("scenario: tenant %d names unknown scene %q (have %v)", i, t.Scene, scene.Names())
		}
		if t.Compute != "" && !contains(compute.Names(), t.Compute) {
			return fmt.Errorf("scenario: tenant %d names unknown compute workload %q (have %v)", i, t.Compute, compute.Names())
		}
		if t.Deadline < 0 {
			return fmt.Errorf("scenario: tenant %d has negative deadline %d", i, t.Deadline)
		}
		if err := t.Arrival.validate(); err != nil {
			return fmt.Errorf("scenario: tenant %d: %w", i, err)
		}
		name := t.Name
		if name == "" {
			name = t.Scene + t.Compute
		}
		if seen[name] {
			return fmt.Errorf("scenario: duplicate tenant name %q", name)
		}
		seen[name] = true
	}
	return nil
}

// Normalize fills defaults in place — tenant names, the immediate arrival
// kind, unit counts — so two specs that mean the same mix serialize to the
// same canonical JSON (the form embedded in snapshot specs and job
// digests).
func (m *MixSpec) Normalize() {
	for i := range m.Tenants {
		t := &m.Tenants[i]
		if t.Name == "" {
			t.Name = t.Scene + t.Compute
		}
		if t.Arrival.Kind == "" {
			t.Arrival.Kind = ArriveImmediate
		}
		if t.Arrival.Count <= 0 {
			t.Arrival.Count = 1
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
