package sm

import (
	"testing"

	"crisp/internal/config"
	"crisp/internal/isa"
	"crisp/internal/mem"
	"crisp/internal/obs"
	"crisp/internal/trace"
)

type issueCounter struct {
	total   int64
	byOp    map[isa.Opcode]int64
	byTask  map[int]int64
	stalls  [obs.NumStallCauses]int64
	stalled int64
}

func newCounter() *issueCounter {
	return &issueCounter{byOp: make(map[isa.Opcode]int64), byTask: make(map[int]int64)}
}

func (c *issueCounter) OnIssue(smID, stream, task int, op isa.Opcode, lanes int) {
	c.total++
	c.byOp[op]++
	c.byTask[task]++
}

func (c *issueCounter) OnStall(smID, stream, task int, cause obs.StallCause) {
	c.stalls[cause]++
	c.stalled++
}

func (c *issueCounter) OnStallN(smID, stream, task int, cause obs.StallCause, n int64) {
	c.stalls[cause] += n
	c.stalled += n
}

func testCore(t *testing.T) (*Core, *issueCounter, *config.GPU) {
	t.Helper()
	cfg := config.JetsonOrin()
	ms, err := mem.NewSystem(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	cnt := newCounter()
	return NewCore(0, &cfg, ms, cnt), cnt, &cfg
}

// chainKernel: one warp, n dependent FADDs (each reads the previous).
func chainKernel(n int) *trace.Kernel {
	b := trace.NewBuilder("chain", trace.KindCompute, 0, 32, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	r := b.NewReg()
	b.ALU(isa.OpMOV, r, trace.FullMask)
	for i := 0; i < n; i++ {
		nr := b.NewReg()
		b.ALU(isa.OpFADD, nr, trace.FullMask, r, r)
		r = nr
	}
	return b.Finish()
}

// independentKernel: one warp, n independent FADDs.
func independentKernel(n int) *trace.Kernel {
	b := trace.NewBuilder("indep", trace.KindCompute, 0, 32, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	for i := 0; i < n; i++ {
		b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask)
	}
	return b.Finish()
}

// runCore drives the core until idle, returning the final cycle.
func runCore(t *testing.T, c *Core) int64 {
	t.Helper()
	now := int64(0)
	for i := 0; c.Busy(); i++ {
		if i > 1_000_000 {
			t.Fatal("core did not drain")
		}
		next := c.Step(now)
		if next <= now {
			next = now + 1
		}
		now = next
	}
	return now
}

func TestResourceArithmetic(t *testing.T) {
	cfg := config.JetsonOrin()
	full := Full(&cfg)
	if full.Threads != 64*32 || full.Regs != 65536 {
		t.Errorf("Full = %+v", full)
	}
	half := Fraction(full, 1, 2)
	if half.Threads != full.Threads/2 || half.CTAs != full.CTAs/2 {
		t.Errorf("Fraction = %+v", half)
	}
	if z := Fraction(full, 1, 0); z.Threads != 0 {
		t.Error("Fraction with zero denominator should be empty")
	}
	k := &trace.Kernel{ThreadsPerCTA: 256, RegsPerThread: 40, SharedMem: 1024}
	need := Need(k)
	if need.Threads != 256 || need.Regs != 256*40 || need.Shared != 1024 || need.CTAs != 1 {
		t.Errorf("Need = %+v", need)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	c1, _, _ := testCore(t)
	k1 := chainKernel(100)
	c1.IssueCTA(0, k1, 0, 0, nil)
	dep := runCore(t, c1)

	c2, _, _ := testCore(t)
	k2 := independentKernel(100)
	c2.IssueCTA(0, k2, 0, 0, nil)
	ind := runCore(t, c2)

	if dep <= ind {
		t.Errorf("dependent chain %d cycles should exceed independent %d", dep, ind)
	}
	// Dependent chain: ≈ latency(FADD)=4 per op.
	if dep < 350 {
		t.Errorf("dependent chain finished in %d cycles, expected ≈400", dep)
	}
	// Independent stream: ≈ 1 op/cycle.
	if ind > 220 {
		t.Errorf("independent stream took %d cycles, expected ≈100", ind)
	}
}

func TestAllInstructionsIssued(t *testing.T) {
	c, cnt, _ := testCore(t)
	k := chainKernel(50)
	c.IssueCTA(0, k, 0, 0, nil)
	runCore(t, c)
	want := int64(k.InstCount())
	if cnt.total != want {
		t.Errorf("issued %d, want %d", cnt.total, want)
	}
}

func TestCTACompletionFreesResources(t *testing.T) {
	c, _, cfg := testCore(t)
	k := chainKernel(10)
	done := 0
	c.IssueCTA(0, k, 0, 0, func(now int64) { done++ })
	if c.Usage(0).Threads != 32 {
		t.Errorf("usage = %+v", c.Usage(0))
	}
	runCore(t, c)
	if done != 1 {
		t.Errorf("onComplete ran %d times", done)
	}
	if c.Usage(0).Threads != 0 || c.TotalResidentWarps() != 0 {
		t.Error("resources not freed at CTA commit")
	}
	_ = cfg
}

func TestCanAcceptHonorsTaskLimits(t *testing.T) {
	c, _, cfg := testCore(t)
	k := &trace.Kernel{Name: "big", ThreadsPerCTA: 512, RegsPerThread: 64, CTAs: make([]trace.CTA, 1)}
	// Limit task 0 to a quarter SM: 512 threads need 512 ≤ 512 ok, but
	// registers 512*64=32768 > 65536/4.
	c.LimitFor = func(task int) Resources {
		if task == 0 {
			return Fraction(Full(cfg), 1, 4)
		}
		return Full(cfg)
	}
	if c.CanAccept(k, 0) {
		t.Error("CTA exceeding task limit accepted")
	}
	if !c.CanAccept(k, 1) {
		t.Error("CTA within other task's limit rejected")
	}
}

func TestCanAcceptHonorsPhysicalCapacity(t *testing.T) {
	c, _, _ := testCore(t)
	k := chainKernel(5) // 32 threads/CTA
	n := 0
	for c.CanAccept(k, 0) {
		c.IssueCTA(0, k, 0, 0, nil)
		n++
		if n > 100 {
			t.Fatal("no capacity bound")
		}
	}
	// 64 warps/SM at 1 warp per CTA, but CTA slots cap at 32.
	if n != 32 {
		t.Errorf("accepted %d CTAs, want 32 (CTA-slot limit)", n)
	}
}

func TestMemoryLoadStallsWarp(t *testing.T) {
	b := trace.NewBuilder("ld", trace.KindCompute, 0, 32, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i * 4)
	}
	r := b.NewReg()
	b.Mem(isa.OpLDG, r, trace.FullMask, addrs, trace.ClassCompute)
	b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask, r, r) // depends on load
	k := b.Finish()

	c, _, cfg := testCore(t)
	c.IssueCTA(0, k, 0, 0, nil)
	total := runCore(t, c)
	// DRAM round trip: must exceed L2+DRAM latency.
	if total < int64(cfg.L2Latency) {
		t.Errorf("load-dependent kernel finished in %d cycles, too fast", total)
	}
}

func TestBarrierSynchronizesWarps(t *testing.T) {
	// Two warps: warp 0 does long work then BAR; warp 1 hits BAR
	// immediately then one op. Warp 1's post-barrier op cannot retire
	// before warp 0 arrives.
	b := trace.NewBuilder("bar", trace.KindCompute, 0, 64, 16, 0)
	b.BeginCTA()
	b.BeginWarp()
	r := b.NewReg()
	b.ALU(isa.OpMOV, r, trace.FullMask)
	for i := 0; i < 50; i++ {
		nr := b.NewReg()
		b.ALU(isa.OpFADD, nr, trace.FullMask, r, r)
		r = nr
	}
	b.Barrier()
	b.BeginWarp()
	b.Barrier()
	b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask)
	k := b.Finish()

	c, _, _ := testCore(t)
	c.IssueCTA(0, k, 0, 0, nil)
	total := runCore(t, c)
	// Warp 0's chain takes ≈200 cycles; the barrier forces the total past it.
	if total < 180 {
		t.Errorf("barrier did not hold warp 1: %d cycles", total)
	}
}

func TestSFUThroughputLowerThanFP(t *testing.T) {
	mk := func(op isa.Opcode) *trace.Kernel {
		b := trace.NewBuilder("tp", trace.KindCompute, 0, 32, 16, 0)
		b.BeginCTA()
		b.BeginWarp()
		for i := 0; i < 64; i++ {
			b.ALU(op, b.NewReg(), trace.FullMask)
		}
		return b.Finish()
	}
	c1, _, _ := testCore(t)
	c1.IssueCTA(0, mk(isa.OpFADD), 0, 0, nil)
	fp := runCore(t, c1)
	c2, _, _ := testCore(t)
	c2.IssueCTA(0, mk(isa.OpMUFUSIN), 0, 0, nil)
	sfu := runCore(t, c2)
	if sfu <= 2*fp {
		t.Errorf("SFU stream %d cycles should be ≫ FP stream %d", sfu, fp)
	}
}

func TestWarpsSpreadAcrossSchedulers(t *testing.T) {
	b := trace.NewBuilder("multi", trace.KindCompute, 0, 128, 16, 0)
	b.BeginCTA()
	for w := 0; w < 4; w++ {
		b.BeginWarp()
		for i := 0; i < 32; i++ {
			b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask)
		}
	}
	k := b.Finish()
	c, _, _ := testCore(t)
	c.IssueCTA(0, k, 0, 0, nil)
	// 4 warps on 4 schedulers run in parallel: ≈ as fast as one warp.
	total := runCore(t, c)
	if total > 100 {
		t.Errorf("4 warps on 4 schedulers took %d cycles, expected ≈40", total)
	}
}

func TestResidentWarpCountsByTask(t *testing.T) {
	c, _, _ := testCore(t)
	k := chainKernel(5)
	c.IssueCTA(0, k, 0, 3, nil)
	c.IssueCTA(0, k, 0, 3, nil)
	c.IssueCTA(0, k, 0, 5, nil)
	if c.ResidentWarps(3) != 2 || c.ResidentWarps(5) != 1 {
		t.Errorf("resident = %d/%d", c.ResidentWarps(3), c.ResidentWarps(5))
	}
	if c.TotalResidentWarps() != 3 {
		t.Errorf("total = %d", c.TotalResidentWarps())
	}
}

func TestCoalesceUniqueLines(t *testing.T) {
	addrs := []uint64{0, 4, 8, 128, 132, 256, 0}
	lines := coalesce(addrs, 128)
	if len(lines) != 3 {
		t.Errorf("coalesce = %v, want 3 lines", lines)
	}
	if lines[0] != 0 || lines[1] != 1 || lines[2] != 2 {
		t.Errorf("coalesce order = %v", lines)
	}
}

func TestTexCarriesFilterLatency(t *testing.T) {
	mk := func(op isa.Opcode) *trace.Kernel {
		b := trace.NewBuilder("tex", trace.KindFragment, 0, 32, 16, 0)
		b.BeginCTA()
		b.BeginWarp()
		addrs := make([]uint64, 32)
		for i := range addrs {
			addrs[i] = uint64(i * 4)
		}
		r := b.NewReg()
		cls := trace.ClassCompute
		if op == isa.OpTEX {
			cls = trace.ClassTexture
		}
		b.Mem(op, r, trace.FullMask, addrs, cls)
		b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask, r, r)
		return b.Finish()
	}
	c1, _, _ := testCore(t)
	c1.IssueCTA(0, mk(isa.OpLDG), 0, 0, nil)
	ldg := runCore(t, c1)
	c2, _, _ := testCore(t)
	c2.IssueCTA(0, mk(isa.OpTEX), 0, 0, nil)
	tex := runCore(t, c2)
	if tex <= ldg {
		t.Errorf("TEX total %d should exceed LDG %d by the filter latency", tex, ldg)
	}
}

func TestDynamicLimitShrinkDrainsGracefully(t *testing.T) {
	// Issue CTAs under a generous limit, then shrink the limit: already
	// resident CTAs keep running; new CTAs are refused until usage
	// drains below the new envelope (the paper's dynamic-repartition
	// semantics: "the CTA scheduler stops issuing ... waits until CTAs
	// commit").
	c, _, cfg := testCore(t)
	k := chainKernel(40) // 32 threads, 1 warp per CTA
	limit := Full(cfg)
	c.LimitFor = func(task int) Resources { return limit }
	for i := 0; i < 8; i++ {
		if !c.CanAccept(k, 0) {
			t.Fatalf("CTA %d refused under full limit", i)
		}
		c.IssueCTA(0, k, 0, 0, nil)
	}
	// Shrink to a 4-CTA envelope: no new CTA fits while 8 are resident.
	limit = Resources{Threads: 4 * 32, Regs: 4 * 32 * 16, Shared: 1 << 20, CTAs: 4}
	if c.CanAccept(k, 0) {
		t.Fatal("CTA accepted beyond shrunken limit")
	}
	runCore(t, c)
	// After draining, the new envelope admits CTAs again.
	if !c.CanAccept(k, 0) {
		t.Fatal("CTA refused on empty SM under valid limit")
	}
}

func TestLRRRotatesFairly(t *testing.T) {
	// Two warps of independent work: LRR alternates them; GTO drains one
	// first. Both must complete either way, in similar total time.
	mk := func() *trace.Kernel {
		b := trace.NewBuilder("two", trace.KindCompute, 0, 256, 16, 0)
		b.BeginCTA()
		for w := 0; w < 8; w++ {
			b.BeginWarp()
			for i := 0; i < 40; i++ {
				b.ALU(isa.OpFADD, b.NewReg(), trace.FullMask)
			}
		}
		return b.Finish()
	}
	gto, _, _ := testCore(t)
	gto.IssueCTA(0, mk(), 0, 0, nil)
	tg := runCore(t, gto)

	lrr, _, _ := testCore(t)
	lrr.Sched = SchedLRR
	lrr.IssueCTA(0, mk(), 0, 0, nil)
	tl := runCore(t, lrr)

	if tl <= 0 || tg <= 0 {
		t.Fatal("no progress")
	}
	ratio := float64(tl) / float64(tg)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("LRR/GTO makespan ratio = %.2f, want same ballpark", ratio)
	}
}

func TestLRRLatencyHiding(t *testing.T) {
	// Dependent chains: GTO camps on one warp and eats the full
	// dependency latency; LRR interleaves the two chains and hides it.
	mk := func() *trace.Kernel {
		b := trace.NewBuilder("chains", trace.KindCompute, 0, 64, 16, 0)
		b.BeginCTA()
		for w := 0; w < 2; w++ {
			b.BeginWarp()
			r := b.NewReg()
			b.ALU(isa.OpMOV, r, trace.FullMask)
			for i := 0; i < 60; i++ {
				nr := b.NewReg()
				b.ALU(isa.OpFADD, nr, trace.FullMask, r, r)
				r = nr
			}
		}
		return b.Finish()
	}
	// Pin both warps on one scheduler by using warp ids 0 and 4? Warps
	// land on schedulers round-robin (0→sched0, 1→sched1), so use a core
	// with... instead compare totals: with 2 warps on 2 schedulers both
	// run in parallel for either policy; this test just checks LRR is
	// not slower than GTO for independent chains.
	gto, _, _ := testCore(t)
	gto.IssueCTA(0, mk(), 0, 0, nil)
	tg := runCore(t, gto)
	lrr, _, _ := testCore(t)
	lrr.Sched = SchedLRR
	lrr.IssueCTA(0, mk(), 0, 0, nil)
	tl := runCore(t, lrr)
	if tl > tg*11/10 {
		t.Errorf("LRR %d much slower than GTO %d on independent chains", tl, tg)
	}
}

func TestSharedBankConflicts(t *testing.T) {
	mk := func(stride uint64) *trace.Kernel {
		b := trace.NewBuilder("lds", trace.KindCompute, 0, 32, 16, 0)
		b.BeginCTA()
		b.BeginWarp()
		offsets := make([]uint64, 32)
		for i := range offsets {
			offsets[i] = uint64(i) * stride * 4
		}
		for n := 0; n < 32; n++ {
			r := b.NewReg()
			b.SharedAddr(isa.OpLDS, r, trace.FullMask, offsets)
		}
		return b.Finish()
	}
	run := func(stride uint64) int64 {
		c, _, _ := testCore(t)
		c.IssueCTA(0, mk(stride), 0, 0, nil)
		return runCore(t, c)
	}
	clean := run(1)   // stride-1 words: all banks distinct
	broad := run(0)   // same word: broadcast
	worst := run(32)  // stride-32 words: every lane hits bank 0
	if broad > clean+8 {
		t.Errorf("broadcast (%d) should match conflict-free (%d)", broad, clean)
	}
	if worst < 8*clean {
		t.Errorf("32-way conflict (%d cycles) should dwarf conflict-free (%d)", worst, clean)
	}
}

func TestSharedConflictDegree(t *testing.T) {
	mkInst := func(offsets []uint64) *trace.Inst {
		return &trace.Inst{Op: isa.OpLDS, Mask: trace.FullMask, Addrs: offsets}
	}
	seq := make([]uint64, 32)
	same := make([]uint64, 32)
	bankCamp := make([]uint64, 32)
	twoWay := make([]uint64, 32)
	for i := range seq {
		seq[i] = uint64(i) * 4
		same[i] = 64
		bankCamp[i] = uint64(i) * 32 * 4
		twoWay[i] = uint64(i%16) * 4 * 2 // 16 distinct words, 2 lanes each... stride-2: banks 0,2,..30 twice
	}
	if d := sharedConflictDegree(mkInst(seq)); d != 1 {
		t.Errorf("sequential degree = %d, want 1", d)
	}
	if d := sharedConflictDegree(mkInst(same)); d != 1 {
		t.Errorf("broadcast degree = %d, want 1", d)
	}
	if d := sharedConflictDegree(mkInst(bankCamp)); d != 32 {
		t.Errorf("bank-camping degree = %d, want 32", d)
	}
	if d := sharedConflictDegree(mkInst(twoWay)); d != 1 {
		t.Errorf("duplicated-words degree = %d, want 1 (broadcast per word)", d)
	}
	if d := sharedConflictDegree(mkInst(nil)); d != 1 {
		t.Errorf("no-offset degree = %d, want 1", d)
	}
}
