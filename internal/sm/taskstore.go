package sm

import "sort"

// taskAccount is one task's per-SM accounting: the resources its
// resident CTAs occupy and how many of its warps are resident.
type taskAccount struct {
	usage Resources
	warps int
}

// taskDenseLimit bounds the dense lo-band of taskAccounts. Task ids are
// small integers assigned in stream-registration order, so virtually
// every lookup hits the lo-band array.
const taskDenseLimit = 256

// taskAccounts maps task id -> taskAccount without a Go map on the CTA
// issue/retire path: a dense slice covers ids below taskDenseLimit and
// a tiny sorted hi-band (binary search + ordered insert) absorbs any
// outliers, mirroring internal/mem's counterStore.
type taskAccounts struct {
	lo    []taskAccount
	hiIDs []int
	hi    []*taskAccount
}

// get returns the account for task, creating it if absent.
func (t *taskAccounts) get(task int) *taskAccount {
	if task >= 0 && task < taskDenseLimit {
		if task >= len(t.lo) {
			grown := make([]taskAccount, task+1)
			copy(grown, t.lo)
			t.lo = grown
		}
		return &t.lo[task]
	}
	i := sort.SearchInts(t.hiIDs, task)
	if i < len(t.hiIDs) && t.hiIDs[i] == task {
		return t.hi[i]
	}
	a := &taskAccount{}
	t.hiIDs = append(t.hiIDs, 0)
	t.hi = append(t.hi, nil)
	copy(t.hiIDs[i+1:], t.hiIDs[i:])
	copy(t.hi[i+1:], t.hi[i:])
	t.hiIDs[i] = task
	t.hi[i] = a
	return a
}

// peek returns the account for task, or nil when it was never touched.
func (t *taskAccounts) peek(task int) *taskAccount {
	if task >= 0 && task < taskDenseLimit {
		if task < len(t.lo) {
			return &t.lo[task]
		}
		return nil
	}
	i := sort.SearchInts(t.hiIDs, task)
	if i < len(t.hiIDs) && t.hiIDs[i] == task {
		return t.hi[i]
	}
	return nil
}

// reset drops all accounts (restore rebuilds them from scratch).
func (t *taskAccounts) reset() {
	t.lo = nil
	t.hiIDs = nil
	t.hi = nil
}
