// Package sm models one Streaming Multiprocessor at cycle level: warp
// slots, greedy-then-oldest warp schedulers with scoreboarded register
// dependences, per-scheduler execution pipelines (FP32, INT, SFU, Tensor,
// LDST), a coalescing LDST path into the unified L1, CTA-wide barriers,
// and CTA issue/commit with full resource accounting (threads, registers,
// shared memory, CTA slots).
//
// The model is trace-driven: warps replay trace.Inst streams. Timing
// advances with an event-accelerated cycle loop — a scheduler that cannot
// issue reports the earliest cycle at which it could, so the GPU driver can
// skip idle spans without losing cycle accuracy of issue ordering.
package sm

import (
	"math"

	"crisp/internal/config"
	"crisp/internal/isa"
	"crisp/internal/mem"
	"crisp/internal/obs"
	"crisp/internal/trace"
)

// Resources is a bundle of the per-SM resources a CTA occupies.
type Resources struct {
	Threads int
	Regs    int
	Shared  int
	CTAs    int
}

// fits reports whether need fits within limit minus used.
func fits(used, need, limit Resources) bool {
	return used.Threads+need.Threads <= limit.Threads &&
		used.Regs+need.Regs <= limit.Regs &&
		used.Shared+need.Shared <= limit.Shared &&
		used.CTAs+need.CTAs <= limit.CTAs
}

func (r *Resources) add(o Resources) {
	r.Threads += o.Threads
	r.Regs += o.Regs
	r.Shared += o.Shared
	r.CTAs += o.CTAs
}

func (r *Resources) sub(o Resources) {
	r.Threads -= o.Threads
	r.Regs -= o.Regs
	r.Shared -= o.Shared
	r.CTAs -= o.CTAs
}

// Need computes the resource footprint of one CTA of k.
func Need(k *trace.Kernel) Resources {
	return Resources{
		Threads: k.ThreadsPerCTA,
		Regs:    k.ThreadsPerCTA * k.RegsPerThread,
		Shared:  k.SharedMem,
		CTAs:    1,
	}
}

// Full returns the whole-SM resource envelope for cfg.
func Full(cfg *config.GPU) Resources {
	return Resources{
		Threads: cfg.MaxWarpsPerSM * isa.WarpSize,
		Regs:    cfg.RegistersPerSM,
		Shared:  cfg.SharedMemPerSM,
		CTAs:    cfg.MaxCTAsPerSM,
	}
}

// Fraction scales an envelope by num/den (used for intra-SM partitions).
func Fraction(r Resources, num, den int) Resources {
	if den <= 0 {
		return Resources{}
	}
	return Resources{
		Threads: r.Threads * num / den,
		Regs:    r.Regs * num / den,
		Shared:  r.Shared * num / den,
		CTAs:    r.CTAs * num / den,
	}
}

const never = int64(math.MaxInt64 / 4)

// Never is the "no useful work, ever" sentinel a Core's Step returns when
// every resident warp is permanently blocked (or the SM is empty). The GPU
// driver compares against it to distinguish a quiescent machine from a
// livelocked one.
const Never = never

// InstStats receives per-instruction accounting, keyed by the issuing SM
// and the owning stream.
type InstStats interface {
	OnIssue(smID, stream, task int, op isa.Opcode, lanes int)
	// OnStall reports one scheduler issue slot in which no resident warp
	// could issue; stream/task identify the earliest-ready warp (the one
	// whose binding constraint is actually delaying progress). Empty
	// schedulers are accounted locally (see Core.EmptySlots) and do not
	// reach this method.
	OnStall(smID, stream, task int, cause obs.StallCause)
	// OnStallN reports n identical stall slots at once. A sleeping core's
	// binding stall cause and warp are constant over the sleep window (no
	// per-core state changes while it sleeps), so the engine bulk-accounts
	// the skipped slots in one call when the core wakes. Always invoked
	// from a serial context; counters are commutative, so bulk accounting
	// is indistinguishable from n OnStall calls.
	OnStallN(smID, stream, task int, cause obs.StallCause, n int64)
}

// ctaRT is the runtime state of one resident CTA.
type ctaRT struct {
	kernel     *trace.Kernel
	ctaIdx     int
	task       int
	stream     int
	res        Resources
	warpsLeft  int
	barArrived int
	barWaiting []*warpRT
	onComplete func(now int64)
}

// warpRT is the runtime state of one resident warp. The hot per-warp
// state the scheduler sweeps every issue slot — the register scoreboard
// and the from-memory marks — does not live here: it is laid out in
// dense per-scheduler SoA blocks (scheduler.sb / scheduler.memBits)
// indexed by the warp's slot, so the ready-warp sweep walks contiguous
// memory instead of pointer-chasing ~2.3KB warp structs.
type warpRT struct {
	insts        []trace.Inst
	warpIdx      int // index within the CTA's warp list (trace identity)
	pc           int
	blockedUntil int64
	done         bool
	stream       int
	task         int
	cta          *ctaRT
	arrival      int64
	// sched/slot locate this warp's scoreboard block inside its
	// scheduler's SoA arrays. slot tracks the warp's index in
	// scheduler.warps (retire compacts both in lockstep).
	sched *scheduler
	slot  int
}

// SchedPolicy selects the warp-scheduling discipline.
type SchedPolicy uint8

const (
	// SchedGTO is greedy-then-oldest (the Accel-Sim default): stick with
	// the last issued warp until it stalls, then take the oldest ready.
	SchedGTO SchedPolicy = iota
	// SchedLRR is loose round-robin: rotate the starting warp each
	// cycle, issuing from the first ready one.
	SchedLRR
)

// regsPerWarp is the scoreboard width of one warp slot in the SoA block.
const regsPerWarp = 256

// memWords is the number of uint64 words in one warp slot's from-memory
// bitmap (256 registers / 64 bits).
const memWords = regsPerWarp / 64

// scheduler is one of the SM's warp schedulers with its private pipelines.
//
// The per-warp hot state is structure-of-arrays: sb holds regsPerWarp
// scoreboard entries per warp slot and memBits holds the matching
// from-memory bitmaps, both indexed by warpRT.slot. earliestOf memoizes
// each slot's (earliest, cause) result; the memo is invalidated by a
// scheduler-wide version bump on every issue (issues mutate unitFree and
// the issuing warp) and per-slot on cross-slot writes (mem fills
// committed in phase B, barrier releases).
type scheduler struct {
	core     *Core
	warps    []*warpRT
	last     *warpRT
	rr       int // round-robin cursor (SchedLRR)
	unitFree [isa.UnitCount]int64

	sb      []int64  // regsPerWarp per slot: cycle each register is ready
	memBits []uint64 // memWords per slot: pending write is from memory

	version   uint64 // bumped on issue; memo valid iff memoVer == version
	memoE     []int64
	memoCause []obs.StallCause
	memoVer   []uint64 // 0 = invalid (version starts at 1)

	// legacy disables the memo (every step recomputes from the
	// scoreboard), making the -no-skip oracle independent of the memo
	// invalidation logic it is used to verify.
	legacy bool
}

// regReady reads one scoreboard entry.
func (s *scheduler) regReady(slot int, r isa.Reg) int64 {
	return s.sb[slot*regsPerWarp+int(r)]
}

// regFromMem reads one from-memory mark.
func (s *scheduler) regFromMem(slot int, r isa.Reg) bool {
	return s.memBits[slot*memWords+int(r)/64]&(1<<(uint(r)%64)) != 0
}

// setReg writes one scoreboard entry plus its from-memory mark and
// invalidates the slot's memoized earliest (the write may shorten it).
func (s *scheduler) setReg(slot int, r isa.Reg, ready int64, fromMem bool) {
	s.sb[slot*regsPerWarp+int(r)] = ready
	w := slot*memWords + int(r)/64
	bit := uint64(1) << (uint(r) % 64)
	if fromMem {
		s.memBits[w] |= bit
	} else {
		s.memBits[w] &^= bit
	}
	s.memoVer[slot] = 0
}

// growSlot appends one zeroed warp slot (all registers ready, nothing
// from memory, memo invalid) and returns its index.
func (s *scheduler) growSlot() int {
	slot := len(s.warps)
	var zero [regsPerWarp]int64
	s.sb = append(s.sb, zero[:]...)
	s.memBits = append(s.memBits, make([]uint64, memWords)...)
	s.memoE = append(s.memoE, 0)
	s.memoCause = append(s.memoCause, 0)
	s.memoVer = append(s.memoVer, 0)
	return slot
}

// dropSlot removes warp slot i, shifting later slots down one (retire
// preserves arrival order, so the SoA blocks shift in lockstep with the
// warps slice). Callers must re-number the shifted warps' slot fields.
func (s *scheduler) dropSlot(i int) {
	n := len(s.memoE)
	copy(s.sb[i*regsPerWarp:], s.sb[(i+1)*regsPerWarp:])
	s.sb = s.sb[:(n-1)*regsPerWarp]
	copy(s.memBits[i*memWords:], s.memBits[(i+1)*memWords:])
	s.memBits = s.memBits[:(n-1)*memWords]
	// Memo contents need not shift: the issue that triggered this retire
	// bumps version, invalidating every slot's memo anyway.
	s.memoE = s.memoE[:n-1]
	s.memoCause = s.memoCause[:n-1]
	s.memoVer = s.memoVer[:n-1]
}

// Core is one SM.
type Core struct {
	ID  int
	cfg *config.GPU

	memsys *mem.System
	stats  InstStats

	scheds []scheduler

	// tasks tracks per-task resource usage and resident-warp counts in a
	// dense lo-band array (task ids are small) with a sorted hi-band
	// fallback, keeping map ops off the CTA issue/retire path.
	tasks      taskAccounts
	usageTotal Resources
	// LimitFor returns the resource envelope available to a task on this
	// SM. Policies install it; nil means the full SM for every task.
	LimitFor func(task int) Resources

	resident   int // total resident warps, so Busy is O(1)
	arrivalSeq int64

	// wakeAt is the earliest cycle this core could do useful work, as
	// reported by its last Step. The engine skips stepping a busy core
	// while now < wakeAt; each skipped step accrues one unit of debt in
	// pendingSkipped, bulk-accounted by FlushSkipDebt before the next
	// step, observation, or resident-set mutation. wakeAt is maintained
	// identically with skipping disabled (the -no-skip oracle) so state
	// digests match bit-for-bit across modes.
	wakeAt         int64
	pendingSkipped int64

	// Observability-only skip counters (never serialized or digested):
	// stepsExecuted counts real Step calls, stepsSkipped counts engine
	// steps this core slept through, bulkStallSlots counts stall slots
	// synthesized by FlushSkipDebt, and sleepHist buckets flushed sleep
	// lengths by log2.
	stepsExecuted  int64
	stepsSkipped   int64
	bulkStallSlots int64
	sleepHist      [sleepHistBuckets]int64

	// log, when non-nil, switches the core into buffered (two-phase) mode:
	// issue slots record their cross-SM effects here instead of applying
	// them, and the engine drains the log serially via CommitStep. See
	// log.go for the protocol and its determinism argument.
	log *IssueLog

	// TexFilterLatency is added to TEX data-return latency to model the
	// texture unit's filtering pipeline.
	TexFilterLatency int64
	// Sched selects the warp-scheduling discipline (default GTO).
	Sched SchedPolicy

	// schedSlots counts scheduler issue slots examined (one per scheduler
	// per Step); emptySlots counts the subset in which the scheduler had
	// no resident warps. Every slot resolves to exactly one of: an issue
	// (InstStats.OnIssue), a per-stream stall (InstStats.OnStall), or an
	// empty slot — the conservation law the obs layer's tests check.
	schedSlots int64
	emptySlots int64
}

// NewCore builds one SM attached to the shared memory system.
func NewCore(id int, cfg *config.GPU, memsys *mem.System, stats InstStats) *Core {
	c := &Core{
		ID:               id,
		cfg:              cfg,
		memsys:           memsys,
		stats:            stats,
		scheds:           make([]scheduler, cfg.SchedulersPerSM),
		TexFilterLatency: 24,
	}
	for i := range c.scheds {
		c.scheds[i].core = c
		c.scheds[i].version = 1
	}
	return c
}

// SchedSlots reports the total scheduler issue slots examined on this SM.
func (c *Core) SchedSlots() int64 { return c.schedSlots }

// EmptySlots reports the issue slots in which a scheduler had no warps.
func (c *Core) EmptySlots() int64 { return c.emptySlots }

// ResidentWarps reports the warps currently resident for a task.
func (c *Core) ResidentWarps(task int) int {
	if a := c.tasks.peek(task); a != nil {
		return a.warps
	}
	return 0
}

// TotalResidentWarps reports all resident warps.
func (c *Core) TotalResidentWarps() int { return c.resident }

// Usage reports the resources currently used by a task.
func (c *Core) Usage(task int) Resources {
	if a := c.tasks.peek(task); a != nil {
		return a.usage
	}
	return Resources{}
}

// TotalUsage reports the combined resources in use across all tasks
// (crash-dump snapshots).
func (c *Core) TotalUsage() Resources { return c.usageTotal }

// BarrierBlocked counts resident warps parked indefinitely at a CTA
// barrier (waiting for arrivals that have not happened). Every resident
// warp blocked this way is the signature of a barrier livelock, which the
// GPU's forward-progress watchdog converts into a structured error.
func (c *Core) BarrierBlocked() int {
	n := 0
	for i := range c.scheds {
		for _, w := range c.scheds[i].warps {
			if !w.done && w.blockedUntil >= never {
				n++
			}
		}
	}
	return n
}

func (c *Core) limitFor(task int) Resources {
	if c.LimitFor != nil {
		return c.LimitFor(task)
	}
	return Full(c.cfg)
}

// CanAccept reports whether a CTA of k (for the given task) fits right now
// under both the task's partition limit and the SM's physical capacity.
func (c *Core) CanAccept(k *trace.Kernel, task int) bool {
	need := Need(k)
	if c.TotalResidentWarps()+k.WarpsPerCTA() > c.cfg.MaxWarpsPerSM {
		return false
	}
	taskUsage := Resources{}
	if a := c.tasks.peek(task); a != nil {
		taskUsage = a.usage
	}
	return fits(taskUsage, need, c.limitFor(task)) && fits(c.usageTotal, need, Full(c.cfg))
}

// IssueCTA places CTA ctaIdx of kernel k on this SM. onComplete runs when
// the CTA's last warp exits. The caller must have checked CanAccept.
func (c *Core) IssueCTA(now int64, k *trace.Kernel, ctaIdx, task int, onComplete func(now int64)) {
	// A new CTA changes what the schedulers can do, so any sleep debt must
	// be settled against the pre-arrival state (the stall disposition over
	// the slept window), and the core must wake for the upcoming step.
	c.FlushSkipDebt()
	c.wakeAt = 0

	need := Need(k)
	cta := &ctaRT{
		kernel:     k,
		ctaIdx:     ctaIdx,
		task:       task,
		stream:     k.Stream,
		res:        need,
		warpsLeft:  len(k.CTAs[ctaIdx].Warps),
		onComplete: onComplete,
	}
	a := c.tasks.get(task)
	a.usage.add(need)
	c.usageTotal.add(need)

	for wi := range k.CTAs[ctaIdx].Warps {
		w := &warpRT{
			insts:   k.CTAs[ctaIdx].Warps[wi].Insts,
			warpIdx: wi,
			stream:  k.Stream,
			task:    task,
			cta:     cta,
			arrival: c.arrivalSeq,
		}
		c.arrivalSeq++
		s := &c.scheds[wi%len(c.scheds)]
		w.sched = s
		w.slot = s.growSlot()
		s.warps = append(s.warps, w)
		a.warps++
		c.resident++
	}
}

// Step runs every scheduler for cycle now and returns the earliest future
// cycle at which this SM could do useful work (never if it is empty).
func (c *Core) Step(now int64) int64 {
	c.stepsExecuted++
	next := never
	for i := range c.scheds {
		if n := c.scheds[i].step(now); n < next {
			next = n
		}
	}
	return next
}

// WakeAt reports the core's current wake cycle (see the field comment).
func (c *Core) WakeAt() int64 { return c.wakeAt }

// SetWakeAt records the core's wake cycle. The engine calls it with
// Step's return value after every real step; the driver calls it to
// force a wake when a cross-core event (policy repartition) could let
// the core make progress earlier than it predicted.
func (c *Core) SetWakeAt(v int64) { c.wakeAt = v }

// SetLegacyStep switches the schedulers onto the legacy stepping path:
// the per-slot earliest memo is bypassed and every step recomputes from
// the scoreboard. The -no-skip oracle runs this way so its digests are
// produced without trusting the memo invalidation it verifies.
func (c *Core) SetLegacyStep(v bool) {
	for i := range c.scheds {
		c.scheds[i].legacy = v
	}
}

// Skip records one engine step this core slept through. The debt is
// bulk-accounted by FlushSkipDebt before anything can observe or change
// the core's state.
func (c *Core) Skip() { c.pendingSkipped++ }

// sleepHistBuckets is the number of log2 buckets in the sleep-length
// histogram: bucket i counts flushed sleeps of 2^i..2^(i+1)-1 skipped
// steps (the last bucket is open-ended).
const sleepHistBuckets = 16

func histBucket(n int64) int {
	b := 0
	for n > 1 && b < sleepHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// FlushSkipDebt settles the core's accumulated sleep debt: for each
// skipped engine step it synthesizes the scheduler slots the skipped
// Step calls would have produced. While the core sleeps no per-core
// state changes — warps, scoreboards, pipelines, and cursors are all
// frozen, and the stall disposition is independent of the cycle number —
// so every skipped step would have charged the same (warp, cause) stall
// on every scheduler. Bulk accounting therefore reproduces the
// cycle-by-cycle counters exactly (the -no-skip oracle digests
// identically). Always called from a serial context.
func (c *Core) FlushSkipDebt() {
	n := c.pendingSkipped
	if n == 0 {
		return
	}
	c.pendingSkipped = 0
	c.stepsSkipped += n
	c.sleepHist[histBucket(n)]++
	for i := range c.scheds {
		s := &c.scheds[i]
		c.schedSlots += n
		if len(s.warps) == 0 {
			c.emptySlots += n
			continue
		}
		w, cause := s.stallDisposition()
		if w == nil {
			c.emptySlots += n
			continue
		}
		c.bulkStallSlots += n
		if c.stats != nil {
			c.stats.OnStallN(c.ID, w.stream, w.task, cause, n)
		}
	}
}

// SkipCounters reports the core's event-skipping counters: real Step
// calls executed, engine steps slept through, and stall slots
// synthesized by bulk accounting.
func (c *Core) SkipCounters() (executed, skipped, bulkStalls int64) {
	return c.stepsExecuted, c.stepsSkipped, c.bulkStallSlots
}

// SleepHist returns the log2 histogram of flushed sleep lengths.
func (c *Core) SleepHist() [sleepHistBuckets]int64 { return c.sleepHist }

// stallDisposition recomputes which (warp, cause) a non-issuing step
// would charge, mirroring step/stepLRR's selection exactly: the
// strict-< minimum of earliestOf over live warps in sweep order (GTO
// visits non-last warps in arrival order, then the last-issued warp;
// LRR sweeps from one past the cursor). nil means every slot would have
// been empty (no live warps). The result is valid for the whole sleep
// window because nothing the selection reads changes while the core
// sleeps.
func (s *scheduler) stallDisposition() (*warpRT, obs.StallCause) {
	best := never
	var bestWarp *warpRT
	var bestCause obs.StallCause
	if s.core.Sched == SchedLRR {
		n := len(s.warps)
		for i := 0; i < n; i++ {
			w := s.warps[(s.rr+1+i)%n]
			if w.done {
				continue
			}
			if e, cause := s.earliestOf(w); e < best {
				best, bestWarp, bestCause = e, w, cause
			}
		}
		return bestWarp, bestCause
	}
	for _, w := range s.warps {
		if w.done || w == s.last {
			continue
		}
		if e, cause := s.earliestOf(w); e < best {
			best, bestWarp, bestCause = e, w, cause
		}
	}
	if s.last != nil && !s.last.done {
		if e, cause := s.earliestOf(s.last); e < best {
			best, bestWarp, bestCause = e, s.last, cause
		}
	}
	return bestWarp, bestCause
}

// Busy reports whether any warps are resident. It is O(1) so the engine's
// per-step busy scan stays cheap even on a mostly idle machine.
func (c *Core) Busy() bool { return c.resident > 0 }

// step attempts one issue for cycle now; it returns the next cycle this
// scheduler wants to run (now+1 after an issue, the stall-resolution cycle
// otherwise, never when it has no warps). Every invocation is one issue
// slot, accounted as exactly one of issue / stall / empty.
func (s *scheduler) step(now int64) int64 {
	core := s.core
	core.schedSlots++
	if len(s.warps) == 0 {
		core.emptySlots++
		return never
	}
	if core.Sched == SchedLRR {
		return s.stepLRR(now)
	}
	// Greedy: stick with the last issued warp while it can issue.
	if s.last != nil && !s.last.done {
		if ok, _, _ := s.tryIssue(s.last, now); ok {
			return now + 1
		}
	}
	// Then oldest-first among the rest; the warps slice preserves
	// arrival order, so a single in-order pass realizes GTO.
	best := never
	var bestWarp *warpRT
	var bestCause obs.StallCause
	for _, w := range s.warps {
		if w.done || w == s.last {
			continue
		}
		ok, earliest, cause := s.tryIssue(w, now)
		if ok {
			s.last = w
			return now + 1
		}
		if earliest < best {
			best, bestWarp, bestCause = earliest, w, cause
		}
	}
	if s.last != nil && !s.last.done {
		if _, e, cause := s.earliestFor(s.last, now); e < best {
			best, bestWarp, bestCause = e, s.last, cause
		}
	}
	s.noteStall(bestWarp, bestCause)
	if best <= now {
		best = now + 1
	}
	return best
}

// stepLRR rotates the starting warp each invocation and issues from the
// first ready warp after the cursor.
func (s *scheduler) stepLRR(now int64) int64 {
	n := len(s.warps)
	best := never
	var bestWarp *warpRT
	var bestCause obs.StallCause
	for i := 0; i < n; i++ {
		idx := (s.rr + 1 + i) % n
		w := s.warps[idx]
		if w.done {
			continue
		}
		ok, earliest, cause := s.tryIssue(w, now)
		if ok {
			// Advance the cursor to the issued warp. idx is its position
			// unless the issue was an EXIT, whose retire compacts the slice;
			// the cursor then stays where it is (the successor slides into
			// idx, and the next sweep starts one past it, as LRR should).
			if idx < len(s.warps) && s.warps[idx] == w {
				s.rr = idx
			}
			return now + 1
		}
		if earliest < best {
			best, bestWarp, bestCause = earliest, w, cause
		}
	}
	s.noteStall(bestWarp, bestCause)
	if best <= now {
		best = now + 1
	}
	return best
}

// noteStall attributes a non-issuing slot to the earliest-ready warp's
// stream (stall-cause attribution).
func (s *scheduler) noteStall(w *warpRT, cause obs.StallCause) {
	if w == nil {
		// All resident warps raced to done within this slot; count the
		// slot as empty rather than losing it.
		s.core.emptySlots++
		return
	}
	if st := s.core.stats; st != nil {
		if lg := s.core.log; lg != nil {
			lg.addStall(w, cause)
			return
		}
		st.OnStall(s.core.ID, w.stream, w.task, cause)
	}
}

// earliestFor computes when w could issue its current instruction and,
// when it cannot issue now, which constraint binds (the stall cause).
func (s *scheduler) earliestFor(w *warpRT, now int64) (canNow bool, earliest int64, cause obs.StallCause) {
	e, cause := s.earliestOf(w)
	return e <= now, e, cause
}

// earliestOf computes the earliest cycle w could issue and the binding
// constraint. Both are independent of the current cycle (all inputs are
// absolute cycle numbers), so the result is memoized per slot and
// reused until the scheduler's state changes: any issue bumps version,
// and cross-slot writes (phase-B mem fills, barrier releases) clear the
// slot's memoVer. In legacy (-no-skip oracle) mode the memo is bypassed
// entirely — every step recomputes from the scoreboard — so a memo
// invalidation bug shows up as a digest divergence against the oracle
// instead of being shared by both sides of the comparison.
func (s *scheduler) earliestOf(w *warpRT) (earliest int64, cause obs.StallCause) {
	if !s.legacy && s.memoVer[w.slot] == s.version {
		return s.memoE[w.slot], s.memoCause[w.slot]
	}
	in := &w.insts[w.pc]
	// blockedUntil is only ever set by barriers, so it is the barrier
	// cause whenever it binds.
	e := w.blockedUntil
	cause = obs.StallBarrier
	if in.Dst != isa.RegNone {
		if r := s.regReady(w.slot, in.Dst); r > e {
			e = r
			cause = s.regCause(w.slot, in.Dst)
		}
	}
	for _, src := range [3]isa.Reg{in.SrcA, in.SrcB, in.SrcC} {
		if src == isa.RegNone {
			continue
		}
		if r := s.regReady(w.slot, src); r > e {
			e = r
			cause = s.regCause(w.slot, src)
		}
	}
	unit := isa.UnitOf(in.Op)
	if unit != isa.UnitCTRL && unit != isa.UnitNone {
		if f := s.unitFree[unit]; f > e {
			e = f
			cause = obs.StallPipeBusy
		}
	}
	s.memoE[w.slot] = e
	s.memoCause[w.slot] = cause
	s.memoVer[w.slot] = s.version
	return e, cause
}

// regCause distinguishes waiting on memory from a plain scoreboard
// dependence for a pending register.
func (s *scheduler) regCause(slot int, r isa.Reg) obs.StallCause {
	if s.regFromMem(slot, r) {
		return obs.StallMemPending
	}
	return obs.StallScoreboard
}

// tryIssue issues w's current instruction at cycle now if possible.
// On failure it returns the earliest cycle issue could succeed and the
// binding stall cause.
func (s *scheduler) tryIssue(w *warpRT, now int64) (bool, int64, obs.StallCause) {
	ok, earliest, cause := s.earliestFor(w, now)
	if !ok {
		return false, earliest, cause
	}
	in := &w.insts[w.pc]
	core := s.core

	unit := isa.UnitOf(in.Op)
	switch in.Op {
	case isa.OpEXIT:
		w.done = true
		s.retire(w, now)
	case isa.OpBAR:
		cta := w.cta
		cta.barArrived++
		if cta.barArrived == cta.warpsLeft {
			// Last arrival releases everyone. Waiters may live on other
			// schedulers of this core, whose memoized earliest the write
			// invalidates (the releasing scheduler's version bump below
			// does not cover them).
			for _, bw := range cta.barWaiting {
				bw.blockedUntil = now + 1
				bw.sched.memoVer[bw.slot] = 0
			}
			cta.barWaiting = cta.barWaiting[:0]
			cta.barArrived = 0
			w.blockedUntil = now + 1
		} else {
			cta.barWaiting = append(cta.barWaiting, w)
			w.blockedUntil = never
		}
	case isa.OpBRA:
		// Traces are post-branch: BRA only costs its pipeline slot.
	case isa.OpLDG, isa.OpTEX:
		lines := coalesce(in.Addrs, uint64(core.cfg.LineSize))
		s.unitFree[isa.UnitLDST] = now + int64(len(lines))
		if lg := core.log; lg != nil {
			// Request half: the data-ready cycle (the response) is written
			// into the scoreboard by CommitStep, before any scheduler can
			// look at it again.
			lg.addLoad(w, in.Op, in.Class, in.Dst, lines, now+int64(isa.Latency(in.Op)))
			break
		}
		ready := now + int64(isa.Latency(in.Op))
		for _, la := range lines {
			r := core.memsys.Load(now, core.ID, w.stream, in.Class, la*uint64(core.cfg.LineSize))
			if r > ready {
				ready = r
			}
		}
		if in.Op == isa.OpTEX {
			ready += core.TexFilterLatency
		}
		if in.Dst != isa.RegNone {
			s.setReg(w.slot, in.Dst, ready, true)
		}
	case isa.OpSTG:
		lines := coalesce(in.Addrs, uint64(core.cfg.LineSize))
		s.unitFree[isa.UnitLDST] = now + int64(len(lines))
		if lg := core.log; lg != nil {
			lg.addStore(w, in.Class, lines)
			break
		}
		for _, la := range lines {
			core.memsys.Store(now, core.ID, w.stream, in.Class, la*uint64(core.cfg.LineSize))
		}
	case isa.OpLDS:
		conflicts := sharedConflictDegree(in)
		s.unitFree[isa.UnitLDST] = now + int64(conflicts)
		if in.Dst != isa.RegNone {
			s.setReg(w.slot, in.Dst, now+int64(isa.Latency(in.Op))+int64(conflicts-1)*2, true)
		}
	case isa.OpSTS:
		s.unitFree[isa.UnitLDST] = now + int64(sharedConflictDegree(in))
	case isa.OpLDC:
		// Constant cache: modeled as a fixed-latency hit.
		s.unitFree[isa.UnitLDST] = now + int64(isa.InitiationInterval(in.Op))
		if in.Dst != isa.RegNone {
			s.setReg(w.slot, in.Dst, now+int64(isa.Latency(in.Op)), true)
		}
	default:
		s.unitFree[unit] = now + int64(isa.InitiationInterval(in.Op))
		if in.Dst != isa.RegNone {
			s.setReg(w.slot, in.Dst, now+int64(isa.Latency(in.Op)), false)
		}
	}

	if core.stats != nil {
		if lg := core.log; lg != nil {
			lg.addIssue(w, in.Op, in.ActiveLanes())
		} else {
			core.stats.OnIssue(core.ID, w.stream, w.task, in.Op, in.ActiveLanes())
		}
	}
	w.pc++
	// An issue mutates scheduler state every memoized earliest may depend
	// on (unitFree, the issuing warp's scoreboard and pc, slot layout
	// after a retire), so invalidate the whole scheduler's memo.
	s.version++
	return true, now, 0
}

// retire removes a finished warp and commits its CTA when it was the last.
func (s *scheduler) retire(w *warpRT, now int64) {
	for i, x := range s.warps {
		if x == w {
			s.warps = append(s.warps[:i], s.warps[i+1:]...)
			s.dropSlot(i)
			for j := i; j < len(s.warps); j++ {
				s.warps[j].slot = j
			}
			break
		}
	}
	if s.last == w {
		s.last = nil
	}
	core := s.core
	if a := core.tasks.peek(w.task); a != nil {
		a.warps--
	}
	core.resident--
	cta := w.cta
	cta.warpsLeft--
	if cta.warpsLeft == 0 {
		if a := core.tasks.peek(cta.task); a != nil {
			a.usage.sub(cta.res)
		}
		core.usageTotal.sub(cta.res)
		if cta.onComplete != nil {
			// The completion callback mutates launch/stream state shared
			// across SMs, so in buffered mode it is deferred to phase B.
			if lg := core.log; lg != nil {
				lg.addComplete(cta.onComplete)
			} else {
				cta.onComplete(now)
			}
		}
	}
}

// sharedConflictDegree computes the bank-conflict serialization of a
// shared-memory access: 32 banks of 4-byte words; lanes touching distinct
// words in the same bank serialize, lanes touching the same word
// broadcast. Accesses without offsets are modeled conflict-free.
func sharedConflictDegree(in *trace.Inst) int {
	if len(in.Addrs) == 0 {
		return 1
	}
	const banks = 32
	var words [banks][]uint64
	degree := 1
	for _, off := range in.Addrs {
		word := off / 4
		b := word % banks
		dup := false
		for _, wd := range words[b] {
			if wd == word {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		words[b] = append(words[b], word)
		if len(words[b]) > degree {
			degree = len(words[b])
		}
	}
	return degree
}

// coalesce reduces per-lane byte addresses to unique line addresses.
// It preserves first-touch order; memory traces have ≤32 lanes, so a
// linear scan beats a map.
func coalesce(addrs []uint64, lineSize uint64) []uint64 {
	var buf [32]uint64
	lines := buf[:0]
	for _, a := range addrs {
		la := a / lineSize
		found := false
		for _, l := range lines {
			if l == la {
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, la)
		}
	}
	return lines
}
