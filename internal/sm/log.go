package sm

import (
	"crisp/internal/isa"
	"crisp/internal/obs"
	"crisp/internal/trace"
)

// This file is the request/response split of the sm→mem interface, the
// foundation of the parallel stepping engine's two-phase protocol.
//
// In direct mode (Core.log == nil, the serial reference engine) an issue
// slot applies its cross-SM side effects — memory-system loads and stores,
// per-stream statistics, CTA-completion callbacks — immediately, exactly
// as the simulator always has.
//
// In buffered mode (Core.SetBuffered(true)) the same slots append those
// effects to a per-SM IssueLog instead, touching nothing outside the SM.
// That makes Core.Step safe to run concurrently with other SMs' steps:
// all state written during a buffered step is owned by this core (warp and
// CTA runtime state, scheduler cursors, pipeline reservations, slot
// counters). The engine then drains the logs serially in canonical order —
// ascending SM id, and within an SM the exact order the events were
// recorded (scheduler id, then program order) — which is precisely the
// order the serial engine interleaves the same calls in. The memory system
// and the statistics sinks therefore observe an identical call sequence,
// making the committed state, stats, stall attribution, digests, and
// checkpoints byte-identical to a serial run at any worker count.
//
// The one response that flows back into SM state, a load's data-ready
// cycle, is written into the issuing warp's scoreboard during commit. That
// is sound because nothing reads the destination register's readiness
// between the buffered issue and the commit: a warp issues at most once
// per step, and the next step — the earliest point any scheduler
// re-examines the scoreboard — begins only after every log is drained.

// logKind discriminates buffered issue-slot effects.
type logKind uint8

const (
	logIssue logKind = iota
	logStall
	logLoad
	logStore
	logComplete
)

// logEvent is one recorded effect. Load/store events reference a span of
// the log's shared line buffer rather than holding their own slice, so a
// step's recording allocates nothing once the buffers are warm.
type logEvent struct {
	kind   logKind
	op     isa.Opcode
	class  trace.MemClass
	dst    isa.Reg
	cause  obs.StallCause
	stream int32
	task   int32
	lanes  int32
	lineLo int32
	lineHi int32
	ready  int64 // loads: minimum data-ready cycle before memory responses
	warp   *warpRT
	done   func(now int64)
}

// IssueLog is one SM's ordered buffer of deferred cross-SM effects.
type IssueLog struct {
	events []logEvent
	lines  []uint64
}

func (l *IssueLog) addLoad(w *warpRT, op isa.Opcode, class trace.MemClass, dst isa.Reg, lines []uint64, minReady int64) {
	lo := int32(len(l.lines))
	l.lines = append(l.lines, lines...)
	l.events = append(l.events, logEvent{
		kind: logLoad, op: op, class: class, dst: dst,
		stream: int32(w.stream), lineLo: lo, lineHi: int32(len(l.lines)),
		ready: minReady, warp: w,
	})
}

func (l *IssueLog) addStore(w *warpRT, class trace.MemClass, lines []uint64) {
	lo := int32(len(l.lines))
	l.lines = append(l.lines, lines...)
	l.events = append(l.events, logEvent{
		kind: logStore, class: class,
		stream: int32(w.stream), lineLo: lo, lineHi: int32(len(l.lines)),
	})
}

func (l *IssueLog) addIssue(w *warpRT, op isa.Opcode, lanes int) {
	l.events = append(l.events, logEvent{
		kind: logIssue, op: op,
		stream: int32(w.stream), task: int32(w.task), lanes: int32(lanes),
	})
}

func (l *IssueLog) addStall(w *warpRT, cause obs.StallCause) {
	l.events = append(l.events, logEvent{
		kind: logStall, cause: cause,
		stream: int32(w.stream), task: int32(w.task),
	})
}

func (l *IssueLog) addComplete(fn func(now int64)) {
	l.events = append(l.events, logEvent{kind: logComplete, done: fn})
}

// reset empties the log for the next step, keeping capacity. Pointer
// fields are not zeroed: the retained warp/closure references are
// overwritten on the next step and the log's lifetime is the run's.
func (l *IssueLog) reset() {
	l.events = l.events[:0]
	l.lines = l.lines[:0]
}

// SetBuffered switches the core between direct effects (false, the serial
// reference path) and the recorded two-phase protocol (true). It must only
// be flipped between steps, with the log drained.
func (c *Core) SetBuffered(on bool) {
	if on {
		if c.log == nil {
			c.log = &IssueLog{}
		}
		return
	}
	c.log = nil
}

// CommitStep is phase B for this core: it applies the effects a buffered
// Step recorded at cycle now to the shared memory system and statistics
// sinks, in the exact order the serial engine would have produced them,
// then clears the log. The caller serializes CommitStep across cores in
// ascending SM id.
func (c *Core) CommitStep(now int64) {
	lg := c.log
	if lg == nil || len(lg.events) == 0 {
		return
	}
	lineSize := uint64(c.cfg.LineSize)
	for i := range lg.events {
		ev := &lg.events[i]
		switch ev.kind {
		case logLoad:
			ready := ev.ready
			for _, la := range lg.lines[ev.lineLo:ev.lineHi] {
				if r := c.memsys.Load(now, c.ID, int(ev.stream), ev.class, la*lineSize); r > ready {
					ready = r
				}
			}
			if ev.op == isa.OpTEX {
				ready += c.TexFilterLatency
			}
			if ev.dst != isa.RegNone {
				// The warp's slot is stable between the buffered issue and
				// this commit: a scheduler issues at most once per step, so
				// no retire can have compacted its slots in between. setReg
				// also invalidates the slot's memoized earliest.
				ev.warp.sched.setReg(ev.warp.slot, ev.dst, ready, true)
			}
		case logStore:
			for _, la := range lg.lines[ev.lineLo:ev.lineHi] {
				c.memsys.Store(now, c.ID, int(ev.stream), ev.class, la*lineSize)
			}
		case logIssue:
			c.stats.OnIssue(c.ID, int(ev.stream), int(ev.task), ev.op, int(ev.lanes))
		case logStall:
			c.stats.OnStall(c.ID, int(ev.stream), int(ev.task), ev.cause)
		case logComplete:
			ev.done(now)
		}
	}
	lg.reset()
}
