package sm

import (
	"fmt"

	"crisp/internal/isa"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
	"crisp/internal/trace"
)

// This file implements checkpoint capture/restore for one SM. Warp and
// CTA runtime structures carry pointers and closures that cannot be
// serialized directly, so the snapshot uses positional identities instead:
// warps are numbered in (scheduler, slot) order, CTAs in first-reference
// order, and each warp names its trace by (stream, kernel index, CTA
// index, warp index). The RestoreEnv resolves those names back to live
// kernels and rebuilds the completion closures, so a restored SM is
// structurally identical to the one that was captured.

func smStateErr(format string, args ...any) error {
	return &robust.SimError{Kind: robust.KindSnapshot, Msg: fmt.Sprintf(format, args...)}
}

// CaptureState snapshots the SM at cycle now. kernelIdx maps a resident
// CTA's kernel back to its index in the owning stream's kernel list (the
// GPU knows the lists; the SM only holds pointers).
//
// Scoreboard state is captured sparsely: a register whose pending-write
// cycle is ≤ now can never bind a future issue (earliestFor only stalls on
// constraints strictly after the current cycle), so only future entries
// are recorded.
func (c *Core) CaptureState(now int64, kernelIdx func(stream int, k *trace.Kernel) (int, error)) (snapshot.CoreState, error) {
	// Settle any sleep debt so the captured slot counters match what a
	// cycle-by-cycle run would have accumulated by this cycle. (The GPU
	// settles every core before capturing stream stats too; this makes a
	// directly-captured core self-consistent.)
	c.FlushSkipDebt()
	cs := snapshot.CoreState{
		ID:         c.ID,
		ArrivalSeq: c.arrivalSeq,
		SchedSlots: c.schedSlots,
		EmptySlots: c.emptySlots,
		WakeAt:     c.wakeAt,
	}

	// Pass 1: assign positional refs. Warps get consecutive refs in
	// (scheduler, slot) order; CTAs in first-reference order — both walks
	// are over slices, so the numbering is deterministic.
	warpRef := make(map[*warpRT]int)
	ctaRef := make(map[*ctaRT]int)
	var ctas []*ctaRT
	for si := range c.scheds {
		for _, w := range c.scheds[si].warps {
			warpRef[w] = len(warpRef)
			if _, ok := ctaRef[w.cta]; !ok {
				ctaRef[w.cta] = len(ctas)
				ctas = append(ctas, w.cta)
			}
		}
	}

	// Pass 2: serialize CTAs, then schedulers with their warps.
	cs.CTAs = make([]snapshot.CTAState, len(ctas))
	for i, cta := range ctas {
		ki, err := kernelIdx(cta.stream, cta.kernel)
		if err != nil {
			return snapshot.CoreState{}, err
		}
		st := snapshot.CTAState{
			Ref:        i,
			StreamID:   cta.stream,
			KernelIdx:  ki,
			CTAIdx:     cta.ctaIdx,
			Task:       cta.task,
			WarpsLeft:  cta.warpsLeft,
			BarArrived: cta.barArrived,
		}
		for _, bw := range cta.barWaiting {
			r, ok := warpRef[bw]
			if !ok {
				return snapshot.CoreState{}, smStateErr("SM %d: barrier-waiting warp not resident", c.ID)
			}
			st.BarWaiting = append(st.BarWaiting, r)
		}
		cs.CTAs[i] = st
	}

	cs.Scheds = make([]snapshot.SchedState, len(c.scheds))
	for si := range c.scheds {
		s := &c.scheds[si]
		ss := snapshot.SchedState{
			LastWarp: -1,
			RR:       s.rr,
			UnitFree: append([]int64(nil), s.unitFree[:]...),
		}
		if s.last != nil {
			if r, ok := warpRef[s.last]; ok {
				ss.LastWarp = r
			}
		}
		ss.Warps = make([]snapshot.WarpState, len(s.warps))
		for wi, w := range s.warps {
			ws := snapshot.WarpState{
				Ref:          warpRef[w],
				CTA:          ctaRef[w.cta],
				WarpIdx:      w.warpIdx,
				PC:           w.pc,
				BlockedUntil: w.blockedUntil,
				Arrival:      w.arrival,
			}
			sb := s.sb[wi*regsPerWarp : (wi+1)*regsPerWarp]
			for r := range sb {
				if sb[r] > now {
					ws.PendingRegs = append(ws.PendingRegs, snapshot.RegState{
						Reg:     r,
						Ready:   sb[r],
						FromMem: s.regFromMem(wi, isa.Reg(r)),
					})
				}
			}
			ss.Warps[wi] = ws
		}
		cs.Scheds[si] = ss
	}
	return cs, nil
}

// RestoreEnv supplies what an SM cannot rebuild alone: kernel resolution
// and completion closures.
type RestoreEnv struct {
	// Kernel resolves (stream, kernel index) to the live kernel.
	Kernel func(stream, kernelIdx int) (*trace.Kernel, error)
	// OnComplete builds the CTA-completion closure for a restored CTA —
	// the same bookkeeping IssueCTA's caller installed originally.
	OnComplete func(stream, kernelIdx, ctaIdx, smID int) func(now int64)
}

// RestoreState rebuilds the SM from a capture. The core must be freshly
// built (no resident work); resource usage and per-task warp counts are
// recomputed from the restored CTAs rather than trusted from the file.
func (c *Core) RestoreState(cs snapshot.CoreState, env RestoreEnv) error {
	if cs.ID != c.ID {
		return smStateErr("SM id mismatch: snapshot %d, core %d", cs.ID, c.ID)
	}
	if len(cs.Scheds) != len(c.scheds) {
		return smStateErr("SM %d: snapshot has %d schedulers, core has %d", c.ID, len(cs.Scheds), len(c.scheds))
	}
	c.arrivalSeq = cs.ArrivalSeq
	c.schedSlots = cs.SchedSlots
	c.emptySlots = cs.EmptySlots
	c.wakeAt = cs.WakeAt
	c.pendingSkipped = 0
	c.tasks.reset()
	c.usageTotal = Resources{}
	c.resident = 0

	// Rebuild CTAs.
	ctas := make([]*ctaRT, len(cs.CTAs))
	for i, st := range cs.CTAs {
		if st.Ref != i {
			return smStateErr("SM %d: CTA refs not dense", c.ID)
		}
		k, err := env.Kernel(st.StreamID, st.KernelIdx)
		if err != nil {
			return err
		}
		if st.CTAIdx < 0 || st.CTAIdx >= len(k.CTAs) {
			return smStateErr("SM %d: CTA index %d outside kernel %q (%d CTAs)", c.ID, st.CTAIdx, k.Name, len(k.CTAs))
		}
		if st.WarpsLeft <= 0 || st.WarpsLeft > len(k.CTAs[st.CTAIdx].Warps) {
			return smStateErr("SM %d: CTA %d of %q has impossible warpsLeft %d", c.ID, st.CTAIdx, k.Name, st.WarpsLeft)
		}
		cta := &ctaRT{
			kernel:     k,
			ctaIdx:     st.CTAIdx,
			task:       st.Task,
			stream:     st.StreamID,
			res:        Need(k),
			warpsLeft:  st.WarpsLeft,
			barArrived: st.BarArrived,
		}
		if env.OnComplete != nil {
			cta.onComplete = env.OnComplete(st.StreamID, st.KernelIdx, st.CTAIdx, c.ID)
		}
		ctas[i] = cta
		c.tasks.get(cta.task).usage.add(cta.res)
		c.usageTotal.add(cta.res)
	}

	// Rebuild warps scheduler by scheduler, collecting refs so barrier
	// lists and GTO cursors can be re-linked afterwards.
	warpByRef := make(map[int]*warpRT)
	for si := range c.scheds {
		s := &c.scheds[si]
		ss := cs.Scheds[si]
		if len(ss.UnitFree) != len(s.unitFree) {
			return smStateErr("SM %d: snapshot has %d pipeline units, core has %d", c.ID, len(ss.UnitFree), len(s.unitFree))
		}
		copy(s.unitFree[:], ss.UnitFree)
		s.rr = ss.RR
		s.last = nil
		s.warps = s.warps[:0]
		s.sb = s.sb[:0]
		s.memBits = s.memBits[:0]
		s.memoE = s.memoE[:0]
		s.memoCause = s.memoCause[:0]
		s.memoVer = s.memoVer[:0]
		s.version = 1
		for _, ws := range ss.Warps {
			if ws.CTA < 0 || ws.CTA >= len(ctas) {
				return smStateErr("SM %d: warp references unknown CTA %d", c.ID, ws.CTA)
			}
			cta := ctas[ws.CTA]
			warps := cta.kernel.CTAs[cta.ctaIdx].Warps
			if ws.WarpIdx < 0 || ws.WarpIdx >= len(warps) {
				return smStateErr("SM %d: warp index %d outside CTA of %d warps", c.ID, ws.WarpIdx, len(warps))
			}
			insts := warps[ws.WarpIdx].Insts
			if ws.PC < 0 || ws.PC >= len(insts) {
				return smStateErr("SM %d: warp pc %d outside trace of %d insts", c.ID, ws.PC, len(insts))
			}
			w := &warpRT{
				insts:        insts,
				warpIdx:      ws.WarpIdx,
				pc:           ws.PC,
				blockedUntil: ws.BlockedUntil,
				stream:       cta.stream,
				task:         cta.task,
				cta:          cta,
				arrival:      ws.Arrival,
				sched:        s,
			}
			w.slot = s.growSlot()
			for _, rs := range ws.PendingRegs {
				if rs.Reg < 0 || rs.Reg >= regsPerWarp {
					return smStateErr("SM %d: pending register %d out of range", c.ID, rs.Reg)
				}
				s.setReg(w.slot, isa.Reg(rs.Reg), rs.Ready, rs.FromMem)
			}
			if _, dup := warpByRef[ws.Ref]; dup {
				return smStateErr("SM %d: duplicate warp ref %d", c.ID, ws.Ref)
			}
			warpByRef[ws.Ref] = w
			s.warps = append(s.warps, w)
			c.tasks.get(cta.task).warps++
			c.resident++
		}
	}

	// Re-link barrier waiters and GTO last-issued cursors.
	for i, st := range cs.CTAs {
		for _, r := range st.BarWaiting {
			w, ok := warpByRef[r]
			if !ok {
				return smStateErr("SM %d: barrier list references unknown warp %d", c.ID, r)
			}
			ctas[i].barWaiting = append(ctas[i].barWaiting, w)
		}
	}
	for si := range c.scheds {
		if r := cs.Scheds[si].LastWarp; r >= 0 {
			w, ok := warpByRef[r]
			if !ok {
				return smStateErr("SM %d: scheduler %d GTO cursor references unknown warp %d", c.ID, si, r)
			}
			c.scheds[si].last = w
		}
	}
	return nil
}
