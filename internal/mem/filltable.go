package mem

// fillTable tracks in-flight line fills (MSHR merge state) as an
// open-addressed hash table from fill granule to data-ready cycle. It
// replaces the per-SM / per-bank map[uint64]int64 on the hot path: the
// tables are small (sized by the MSHR count), stay allocated across the
// run, and probe with a multiplicative hash plus linear scan instead of
// the runtime map machinery.
//
// Semantics are exactly those of the maps it replaces: size() counts
// every stored entry (including fills whose ready cycle has passed but
// that have not been deleted yet — the capacity-stall check deliberately
// counts those, matching the original len(map) test), minReady() scans
// all stored entries, and gc() deletes entries with ready <= cutoff.
// Every consumer is order-independent (min, predicate delete, sorted
// capture), so swapping the map's random iteration order for the table's
// slot order cannot change any simulated cycle or digest.
type fillTable struct {
	keys  []uint64
	ready []int64
	state []uint8 // slot states: fillEmpty, fillLive, fillDead
	live  int     // stored entries
	used  int     // live + tombstones (probe-chain occupancy)
}

const (
	fillEmpty uint8 = iota
	fillLive
	fillDead // tombstone: deleted, but probe chains pass through

	fillNoReady = int64(1<<62 - 1) // minReady() result for an empty table
)

// initTable sizes the table for an expected MSHR population. Capacity is
// a power of two so the probe mask is cheap; it starts at 8x the MSHR
// count because the garbage collector only triggers above 4x and deletes
// lazily, so the steady-state population can sit just past that line.
func (t *fillTable) initTable(mshrs int) {
	capacity := 8
	for capacity < 8*mshrs {
		capacity *= 2
	}
	t.keys = make([]uint64, capacity)
	t.ready = make([]int64, capacity)
	t.state = make([]uint8, capacity)
	t.live = 0
	t.used = 0
}

func fillHash(g uint64) uint64 {
	// Fibonacci multiplicative hash; granules are sequential line/sector
	// indices, so the multiply is what spreads neighbors across slots.
	return g * 0x9e3779b97f4a7c15
}

// size reports the number of stored entries (live fills, expired or not).
func (t *fillTable) size() int { return t.live }

// get returns the ready cycle for granule g, if a fill is stored.
func (t *fillTable) get(g uint64) (int64, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := fillHash(g) & mask; ; i = (i + 1) & mask {
		switch t.state[i] {
		case fillEmpty:
			return 0, false
		case fillLive:
			if t.keys[i] == g {
				return t.ready[i], true
			}
		}
	}
}

// del removes the entry for granule g if present.
func (t *fillTable) del(g uint64) {
	mask := uint64(len(t.keys) - 1)
	for i := fillHash(g) & mask; ; i = (i + 1) & mask {
		switch t.state[i] {
		case fillEmpty:
			return
		case fillLive:
			if t.keys[i] == g {
				t.state[i] = fillDead
				t.live--
				return
			}
		}
	}
}

// set inserts or updates the fill for granule g.
func (t *fillTable) set(g uint64, ready int64) {
	// Keep probe chains short: rehash when the chain occupancy (live +
	// tombstones) passes 3/4 of capacity. Growth doubles only when the
	// live population itself is the pressure; otherwise the rehash just
	// clears tombstones in place.
	if 4*(t.used+1) > 3*len(t.keys) {
		newCap := len(t.keys)
		if 2*t.live >= len(t.keys) {
			newCap *= 2
		}
		t.rehash(newCap)
	}
	mask := uint64(len(t.keys) - 1)
	firstDead := -1
	for i := fillHash(g) & mask; ; i = (i + 1) & mask {
		switch t.state[i] {
		case fillEmpty:
			if firstDead >= 0 {
				i = uint64(firstDead)
			} else {
				t.used++
			}
			t.keys[i] = g
			t.ready[i] = ready
			t.state[i] = fillLive
			t.live++
			return
		case fillLive:
			if t.keys[i] == g {
				t.ready[i] = ready
				return
			}
		case fillDead:
			if firstDead < 0 {
				firstDead = int(i)
			}
		}
	}
}

func (t *fillTable) rehash(newCap int) {
	oldKeys, oldReady, oldState := t.keys, t.ready, t.state
	t.keys = make([]uint64, newCap)
	t.ready = make([]int64, newCap)
	t.state = make([]uint8, newCap)
	t.live = 0
	t.used = 0
	for i, st := range oldState {
		if st == fillLive {
			t.set(oldKeys[i], oldReady[i])
		}
	}
}

// minReady returns the earliest ready cycle over all stored entries, or
// fillNoReady when the table is empty. This is the capacity-stall scan:
// a full MSHR file stalls the requester behind the earliest completing
// fill.
func (t *fillTable) minReady() int64 {
	earliest := fillNoReady
	for i, st := range t.state {
		if st == fillLive && t.ready[i] < earliest {
			earliest = t.ready[i]
		}
	}
	return earliest
}

// gc deletes every entry whose fill completed at or before cutoff.
func (t *fillTable) gc(cutoff int64) {
	for i, st := range t.state {
		if st == fillLive && t.ready[i] <= cutoff {
			t.state[i] = fillDead
			t.live--
		}
	}
}

// reset drops all entries but keeps the allocation.
func (t *fillTable) reset() {
	for i := range t.state {
		t.state[i] = fillEmpty
	}
	t.live = 0
	t.used = 0
}
