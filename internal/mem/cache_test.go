package mem

import (
	"testing"
	"testing/quick"

	"crisp/internal/trace"
)

func mustCache(t *testing.T, size, assoc, line int) *Cache {
	t.Helper()
	c, err := NewCache(size, assoc, line)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

func TestCacheGeometry(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	if c.Sets() != 32 || c.Assoc() != 4 {
		t.Errorf("geometry = %d sets × %d ways", c.Sets(), c.Assoc())
	}
	if _, err := NewCache(1000, 4, 128); err == nil {
		t.Error("accepted non-multiple size")
	}
	if _, err := NewCache(0, 4, 128); err == nil {
		t.Error("accepted zero size")
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	addr := uint64(0x4000)
	if c.Probe(addr, -1) {
		t.Fatal("cold cache reports hit")
	}
	res := c.Access(1, addr, false, trace.ClassCompute, 0, -1)
	if res.Hit {
		t.Fatal("first access hit")
	}
	if !c.Probe(addr, -1) {
		t.Fatal("line not resident after fill")
	}
	res = c.Access(2, addr, false, trace.ClassCompute, 0, -1)
	if !res.Hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if !c.Probe(addr+64, -1) {
		t.Fatal("same-line offset missed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := mustCache(t, 4*128, 4, 128) // 1 set, 4 ways
	// Fill 4 ways.
	for i := 0; i < 4; i++ {
		c.Access(int64(i), uint64(i*128), false, trace.ClassCompute, 0, -1)
	}
	// Touch line 0 so line 1 is LRU.
	c.Access(10, 0, false, trace.ClassCompute, 0, -1)
	// Insert a 5th line; line 1 must be evicted.
	c.Access(11, 4*128, false, trace.ClassCompute, 0, -1)
	if c.Probe(1*128, -1) {
		t.Error("LRU line survived eviction")
	}
	if !c.Probe(0, -1) || !c.Probe(4*128, -1) {
		t.Error("wrong line evicted")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := mustCache(t, 2*128, 2, 128) // 1 set, 2 ways
	c.Access(1, 0, true, trace.ClassCompute, 0, -1)     // dirty
	c.Access(2, 128, false, trace.ClassCompute, 0, -1)  // clean
	res := c.Access(3, 256, false, trace.ClassCompute, 0, -1)
	if !res.Writeback || res.WritebackLine != 0 {
		t.Errorf("expected writeback of line 0, got %+v", res)
	}
	res = c.Access(4, 384, false, trace.ClassCompute, 0, -1)
	if res.Writeback {
		t.Error("clean eviction produced writeback")
	}
}

func TestCacheExplicitSet(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	// Two addresses that would hash to different sets, forced into set 3.
	c.Access(1, 0, false, trace.ClassCompute, 0, 3)
	c.Access(2, 128*999, false, trace.ClassCompute, 0, 3)
	if !c.Probe(0, 3) || !c.Probe(128*999, 3) {
		t.Error("explicit-set residency failed")
	}
	if c.Probe(0, 0) {
		t.Error("line visible in wrong set")
	}
}

func TestCacheComposition(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	c.Access(1, 0, false, trace.ClassTexture, 7, -1)
	c.Access(2, 128, false, trace.ClassTexture, 7, -1)
	c.Access(3, 256, false, trace.ClassCompute, 9, -1)
	comp := c.Composition()
	if comp.Valid != 3 {
		t.Errorf("valid = %d", comp.Valid)
	}
	if comp.ByClass[trace.ClassTexture] != 2 || comp.ByClass[trace.ClassCompute] != 1 {
		t.Errorf("byClass = %v", comp.ByClass)
	}
	if comp.ByStream[7] != 2 || comp.ByStream[9] != 1 {
		t.Errorf("byStream = %v", comp.ByStream)
	}
	// Re-touch by another stream: ownership transfers.
	c.Access(4, 0, false, trace.ClassCompute, 9, -1)
	comp = c.Composition()
	if comp.ByStream[9] != 2 {
		t.Errorf("ownership did not follow toucher: %v", comp.ByStream)
	}
}

func TestCompositionMerge(t *testing.T) {
	a := Composition{Valid: 1, Total: 10, ByClass: map[trace.MemClass]int{trace.ClassTexture: 1}, ByStream: map[int]int{0: 1}}
	b := Composition{Valid: 2, Total: 10, ByClass: map[trace.MemClass]int{trace.ClassTexture: 2}, ByStream: map[int]int{1: 2}}
	a.Merge(b)
	if a.Valid != 3 || a.Total != 20 || a.ByClass[trace.ClassTexture] != 3 || a.ByStream[1] != 2 {
		t.Errorf("merge = %+v", a)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	c.Access(1, 0, false, trace.ClassCompute, 0, -1)
	c.InvalidateAll()
	if c.Probe(0, -1) {
		t.Error("line survived InvalidateAll")
	}
	if c.Composition().Valid != 0 {
		t.Error("composition nonzero after invalidate")
	}
}

// Property: after accessing any sequence of addresses, the most recently
// accessed address is always resident.
func TestCacheMRUAlwaysResident(t *testing.T) {
	c := mustCache(t, 4<<10, 4, 128)
	f := func(addrs []uint16) bool {
		c.InvalidateAll()
		for i, a16 := range addrs {
			addr := uint64(a16) * 64
			c.Access(int64(i), addr, a16%3 == 0, trace.ClassCompute, 0, -1)
			if !c.Probe(addr, -1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: valid-line count never exceeds capacity and never decreases
// under pure insertion.
func TestCacheValidCountBounded(t *testing.T) {
	c := mustCache(t, 2<<10, 2, 128) // 16 lines
	f := func(addrs []uint16) bool {
		c.InvalidateAll()
		for i, a := range addrs {
			c.Access(int64(i), uint64(a)*128, false, trace.ClassCompute, 0, -1)
			if v := c.Composition().Valid; v > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSectoredCacheFillsPerSector(t *testing.T) {
	c := mustCache(t, 16<<10, 4, 128)
	if err := c.SetSectored(32); err != nil {
		t.Fatal(err)
	}
	// First access: line miss (allocates one sector).
	res := c.Access(1, 0x1000, false, trace.ClassCompute, 0, -1)
	if res.Hit || res.SectorFill {
		t.Fatalf("first access = %+v, want full miss", res)
	}
	// Same sector: hit.
	if res := c.Access(2, 0x1010, false, trace.ClassCompute, 0, -1); !res.Hit {
		t.Fatalf("same-sector access = %+v, want hit", res)
	}
	// Different sector of the same line: sector fill, no eviction.
	res = c.Access(3, 0x1040, false, trace.ClassCompute, 0, -1)
	if res.Hit || !res.SectorFill || res.Writeback {
		t.Fatalf("other-sector access = %+v, want sector fill", res)
	}
	// Probe is sector-precise.
	if !c.Probe(0x1000, -1) || !c.Probe(0x1040, -1) {
		t.Error("filled sectors not resident")
	}
	if c.Probe(0x1080, -1) {
		t.Error("unfilled sector reported resident")
	}
}

func TestSetSectoredValidation(t *testing.T) {
	c := mustCache(t, 4<<10, 4, 128)
	if err := c.SetSectored(48); err == nil {
		t.Error("non-dividing sector size accepted")
	}
	if err := c.SetSectored(2); err == nil {
		t.Error(">32 sectors per line accepted")
	}
	if err := c.SetSectored(0); err != nil {
		t.Errorf("disabling sectors: %v", err)
	}
}

func TestUnsectoredBehaviorUnchanged(t *testing.T) {
	c := mustCache(t, 4<<10, 4, 128)
	c.Access(1, 0x2000, false, trace.ClassCompute, 0, -1)
	// Whole line resident after one access.
	if !c.Probe(0x2000, -1) || !c.Probe(0x2040, -1) {
		t.Error("line-granular fill broken")
	}
}
