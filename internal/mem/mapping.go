package mem

// L2Mapper decides which L2 bank and which set within that bank a line
// address maps to for a given stream. Swapping the mapper is how the
// simulator realizes L2 partitioning schemes:
//
//   - SharedMapper: all banks and sets shared (baseline, MPS).
//   - BankMapper:   each task owns a subset of banks (MiG bank-level
//     partitioning; owning fewer banks also constrains DRAM channels,
//     limiting the task's memory bandwidth).
//   - SetMapper:    banks shared, sets within each bank divided between
//     tasks (TAP-style partitioning; full bank bandwidth retained).
//
// Partition policies think in tasks while the memory system sees streams,
// so the partitioned mappers carry a TaskOf translation.
type L2Mapper interface {
	// Map returns the bank index and the set index within that bank for
	// the line address.
	Map(stream int, lineAddr uint64, banks, setsPerBank int) (bank, set int)
}

// SharedMapper hashes all streams across all banks and sets.
type SharedMapper struct{}

// Map implements L2Mapper.
func (SharedMapper) Map(_ int, lineAddr uint64, banks, setsPerBank int) (int, int) {
	bank := int(lineAddr % uint64(banks))
	set := int((lineAddr / uint64(banks)) % uint64(setsPerBank))
	return bank, set
}

// BankMapper assigns each task an explicit list of banks (MiG).
// Tasks not present fall back to all banks.
type BankMapper struct {
	// TaskOf maps a stream id to its task; nil treats streams as tasks.
	TaskOf func(stream int) int
	// Banks lists the banks owned by each task.
	Banks map[int][]int
}

// Map implements L2Mapper.
func (m *BankMapper) Map(stream int, lineAddr uint64, banks, setsPerBank int) (int, int) {
	task := stream
	if m.TaskOf != nil {
		task = m.TaskOf(stream)
	}
	allowed := m.Banks[task]
	if len(allowed) == 0 {
		return SharedMapper{}.Map(stream, lineAddr, banks, setsPerBank)
	}
	bank := allowed[int(lineAddr%uint64(len(allowed)))]
	set := int((lineAddr / uint64(len(allowed))) % uint64(setsPerBank))
	return bank, set
}

// SetRegion is a contiguous range of sets owned by one task within every
// bank.
type SetRegion struct {
	Start int // first set index
	Count int // number of sets
}

// SetMapper shares all banks but gives each task a region of sets within
// each bank. The region table is updated dynamically by the TAP policy.
type SetMapper struct {
	// TaskOf maps a stream id to its task; nil treats streams as tasks.
	TaskOf func(stream int) int
	// Regions maps each task to its set region.
	Regions map[int]SetRegion
}

// Map implements L2Mapper.
func (m *SetMapper) Map(stream int, lineAddr uint64, banks, setsPerBank int) (int, int) {
	bank := int(lineAddr % uint64(banks))
	task := stream
	if m.TaskOf != nil {
		task = m.TaskOf(stream)
	}
	r, ok := m.Regions[task]
	if !ok || r.Count <= 0 {
		return bank, int((lineAddr / uint64(banks)) % uint64(setsPerBank))
	}
	set := r.Start + int((lineAddr/uint64(banks))%uint64(r.Count))
	if set >= setsPerBank {
		set = setsPerBank - 1
	}
	return bank, set
}

// Observer is notified of every L2 access so policies (e.g. TAP's utility
// monitors) can sample the access stream without being wired into the
// memory system.
type Observer interface {
	ObserveL2(stream int, lineAddr uint64, hit bool)
}
