package mem

import (
	"fmt"

	"crisp/internal/config"
	"crisp/internal/obs"
	"crisp/internal/trace"
)

// Counters accumulates per-stream memory-system statistics.
type Counters struct {
	L1Accesses int64
	L1Misses   int64
	L2Accesses int64
	L2Misses   int64
	DRAMReadB  int64
	DRAMWriteB int64
}

// System is the whole memory hierarchy below the SMs' execution pipelines:
// per-SM unified L1 data caches, the crossbar, the banked L2, and DRAM.
// All latencies and service times are in core cycles.
type System struct {
	cfg *config.GPU

	l1        []*Cache
	l1Pending []fillTable // per SM: in-flight line fills (MSHR merge)

	l2         []*Cache
	l2NextFree []int64     // per bank single-server queue
	l2Pending  []fillTable // per bank: in-flight line fills (L2 MSHR merge)
	setsPer    int

	dramNextFree []int64 // per channel
	dramSvc      float64 // cycles to transfer one line on one channel

	fillBytes int // bytes fetched per miss (sector or full line)

	mapper   L2Mapper
	observer Observer

	tracer obs.Tracer
	// lastL2Cont / lastDramCont rate-limit contention markers to one per
	// queue per contentionEvery cycles so congested phases do not flood
	// the trace.
	lastL2Cont   []int64
	lastDramCont []int64

	counters counterStore
}

// Contention-marker thresholds: a request queueing at least contentionMin
// cycles behind an L2 bank or DRAM channel emits an EvMemContention event
// (at most one per queue per contentionEvery cycles).
const (
	contentionMin   = 32
	contentionEvery = 256
)

// NewSystem builds the memory system for cfg with the default shared
// mapper.
func NewSystem(cfg *config.GPU) (*System, error) {
	s := &System{
		cfg:          cfg,
		l1:           make([]*Cache, cfg.NumSMs),
		l1Pending:    make([]fillTable, cfg.NumSMs),
		l2:           make([]*Cache, cfg.L2Banks),
		l2NextFree:   make([]int64, cfg.L2Banks),
		dramNextFree: make([]int64, cfg.MemChannels),
		lastL2Cont:   make([]int64, cfg.L2Banks),
		lastDramCont: make([]int64, cfg.MemChannels),
		mapper:       SharedMapper{},
	}
	for i := range s.l1 {
		c, err := NewCache(cfg.L1Size, cfg.L1Assoc, cfg.LineSize)
		if err != nil {
			return nil, fmt.Errorf("mem: L1: %w", err)
		}
		if err := c.SetSectored(cfg.SectorSize); err != nil {
			return nil, err
		}
		s.l1[i] = c
		s.l1Pending[i].initTable(cfg.L1MSHRs)
	}
	bankSize := cfg.L2Size / cfg.L2Banks
	s.l2Pending = make([]fillTable, cfg.L2Banks)
	for i := range s.l2 {
		c, err := NewCache(bankSize, cfg.L2Assoc, cfg.LineSize)
		if err != nil {
			return nil, fmt.Errorf("mem: L2 bank: %w", err)
		}
		if err := c.SetSectored(cfg.SectorSize); err != nil {
			return nil, err
		}
		s.l2[i] = c
		s.l2Pending[i].initTable(cfg.L2MSHRs)
	}
	s.setsPer = s.l2[0].Sets()
	s.fillBytes = cfg.LineSize
	if cfg.SectorSize > 0 {
		s.fillBytes = cfg.SectorSize
	}
	perChannelBPC := cfg.BytesPerCycle() / float64(cfg.MemChannels)
	s.dramSvc = float64(s.fillBytes) / perChannelBPC
	return s, nil
}

// fillGranule maps addr to the fill-tracking key: the sector when
// sectored, the line otherwise.
func (s *System) fillGranule(addr uint64) uint64 {
	return addr / uint64(s.fillBytes)
}

// SetMapper installs an L2 address mapper (partitioning mechanism).
func (s *System) SetMapper(m L2Mapper) { s.mapper = m }

// SetObserver installs an L2 access observer (e.g. TAP's monitors).
func (s *System) SetObserver(o Observer) { s.observer = o }

// SetTracer installs a trace-event sink for contention markers; nil (the
// default) disables them at the cost of one branch per access.
func (s *System) SetTracer(t obs.Tracer) { s.tracer = t }

// SetsPerBank reports the number of sets in each L2 bank.
func (s *System) SetsPerBank() int { return s.setsPer }

// Counters returns (creating if needed) the counter block for a stream.
func (s *System) Counters(stream int) *Counters { return s.counters.get(stream) }

// PeekCounters returns the counter block for a stream without creating
// one; nil means the stream has produced no memory traffic.
func (s *System) PeekCounters(stream int) *Counters { return s.counters.peek(stream) }

// Streams lists the stream ids with recorded activity, sorted.
func (s *System) Streams() []int { return s.counters.streams() }

const xbarLatency = 16 // SM→L2 crossbar traversal, core cycles

// Load performs a line-granular load issued by SM sm on behalf of stream.
// addr is any byte address within the line. It returns the cycle at which
// the data is available in the SM.
func (s *System) Load(now int64, sm, stream int, class trace.MemClass, addr uint64) int64 {
	cnt := s.Counters(stream)
	cnt.L1Accesses++
	granule := s.fillGranule(addr)

	// MSHR merge: if a fill for this granule is still in flight, the
	// access rides the outstanding request (a hit-under-miss: it waits,
	// but produces no new L2 traffic and no new miss).
	pending := &s.l1Pending[sm]
	if ready, ok := pending.get(granule); ok {
		if ready > now {
			return ready
		}
		pending.del(granule)
	}

	l1 := s.l1[sm]
	if l1.Probe(addr, -1) {
		l1.Access(now, addr, false, class, stream, -1)
		return now + int64(s.cfg.L1Latency)
	}
	cnt.L1Misses++
	// MSHR capacity: when full, the LDST unit stalls behind the earliest
	// completing fill.
	start := now
	if pending.size() >= s.cfg.L1MSHRs {
		if earliest := pending.minReady(); earliest > start {
			start = earliest
		}
	}

	ready := s.l2Access(start+int64(s.cfg.L1Latency), stream, cnt, class, addr, false)
	l1.Access(now, addr, false, class, stream, -1)
	pending.set(granule, ready)
	// Garbage-collect completed fills opportunistically.
	if pending.size() > 4*s.cfg.L1MSHRs {
		pending.gc(now)
	}
	return ready
}

// Store performs a line-granular store. The L1 is write-through without
// allocation (global stores), so the store is forwarded to L2. It returns
// the cycle the store is accepted (the warp does not wait for completion).
func (s *System) Store(now int64, sm, stream int, class trace.MemClass, addr uint64) int64 {
	cnt := s.Counters(stream)
	cnt.L1Accesses++
	l1 := s.l1[sm]
	if l1.Probe(addr, -1) {
		// Keep L1 coherent with the write-through.
		l1.Access(now, addr, true, class, stream, -1)
	} else {
		cnt.L1Misses++
	}
	s.l2Access(now+int64(s.cfg.L1Latency), stream, cnt, class, addr, true)
	return now + int64(s.cfg.L1Latency)
}

// l2Access routes one request through the crossbar to its L2 bank and, on
// miss, to DRAM. It returns the data-ready cycle (for loads). cnt is the
// stream's counter block, passed down from Load/Store so the per-stream
// lookup happens once per request.
func (s *System) l2Access(now int64, stream int, cnt *Counters, class trace.MemClass, addr uint64, write bool) int64 {
	cnt.L2Accesses++

	lineA := addr / uint64(s.cfg.LineSize)
	granule := s.fillGranule(addr)
	bank, set := s.mapper.Map(stream, lineA, s.cfg.L2Banks, s.setsPer)

	// Crossbar + bank queue: each bank services one request per cycle.
	arrive := now + xbarLatency
	start := s.l2NextFree[bank]
	if arrive > start {
		start = arrive
	}
	s.l2NextFree[bank] = start + 1
	if t := s.tracer; t != nil {
		if wait := start - arrive; wait >= contentionMin && now-s.lastL2Cont[bank] >= contentionEvery {
			s.lastL2Cont[bank] = now
			t.Emit(obs.Event{Cycle: now, Kind: obs.EvMemContention, Stream: stream,
				Task: -1, SM: bank, CTA: -1, Name: "L2 bank queue", Arg: wait})
		}
	}

	hit := s.l2[bank].Probe(addr, set)
	if s.observer != nil {
		s.observer.ObserveL2(stream, lineA, hit)
	}
	res := s.l2[bank].Access(start, addr, write, class, stream, set)
	_ = res.Hit // residency decided by Probe before the access mutates LRU

	if hit {
		return start + int64(s.cfg.L2Latency)
	}
	cnt.L2Misses++
	// L2 MSHR merge: a fill for this line already in flight (typically
	// the same texture line missed by several SMs at once) is ridden
	// rather than duplicated at DRAM.
	pending := &s.l2Pending[bank]
	if ready, ok := pending.get(granule); ok {
		if ready > start {
			return ready
		}
		pending.del(granule)
	}
	// Miss: fetch line from DRAM (write-allocate covers stores too).
	ready := s.dramTransfer(start+int64(s.cfg.L2Latency), bank, stream, cnt, false)
	pending.set(granule, ready)
	if pending.size() > 4*s.cfg.L2MSHRs {
		pending.gc(start)
	}
	if res.Writeback {
		// Dirty eviction: schedule the writeback; it consumes bandwidth
		// but nobody waits on it.
		s.dramTransfer(start+int64(s.cfg.L2Latency), bank, stream, cnt, true)
	}
	return ready
}

// dramTransfer meters one line transfer on the bank's DRAM channel and
// returns its completion cycle. Banks map to channels contiguously, so
// partitioning the banks (MiG) also partitions the DRAM channels — and
// with them the memory bandwidth, which is the paper's explanation for
// MiG's slowdown on memory-bound pairs.
func (s *System) dramTransfer(now int64, bank, stream int, cnt *Counters, write bool) int64 {
	ch := bank * s.cfg.MemChannels / s.cfg.L2Banks
	start := s.dramNextFree[ch]
	if now > start {
		start = now
	}
	if t := s.tracer; t != nil {
		if wait := start - now; wait >= contentionMin && now-s.lastDramCont[ch] >= contentionEvery {
			s.lastDramCont[ch] = now
			t.Emit(obs.Event{Cycle: now, Kind: obs.EvMemContention, Stream: stream,
				Task: -1, SM: ch, CTA: -1, Name: "DRAM channel queue", Arg: wait})
		}
	}
	done := start + int64(s.dramSvc+0.5)
	s.dramNextFree[ch] = done
	if write {
		cnt.DRAMWriteB += int64(s.fillBytes)
	} else {
		cnt.DRAMReadB += int64(s.fillBytes)
	}
	return done + int64(s.cfg.DRAMLatency)
}

// L2Composition scans all banks and reports the combined line composition.
func (s *System) L2Composition() Composition {
	comp := Composition{ByClass: make(map[trace.MemClass]int), ByStream: make(map[int]int)}
	for _, b := range s.l2 {
		comp.Merge(b.Composition())
	}
	return comp
}

// InvalidateAll drops all cached state (between frames or experiments).
func (s *System) InvalidateAll() {
	for _, c := range s.l1 {
		c.InvalidateAll()
	}
	for i := range s.l1Pending {
		s.l1Pending[i].reset()
	}
	for _, c := range s.l2 {
		c.InvalidateAll()
	}
	for i := range s.l2Pending {
		s.l2Pending[i].reset()
	}
}
