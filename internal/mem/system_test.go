package mem

import (
	"testing"

	"crisp/internal/config"
	"crisp/internal/trace"
)

func newSys(t *testing.T) *System {
	t.Helper()
	cfg := config.JetsonOrin()
	s, err := NewSystem(&cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestLoadMissThenHitLatency(t *testing.T) {
	s := newSys(t)
	cold := s.Load(0, 0, 1, trace.ClassCompute, 0x10000)
	warm := s.Load(cold+1, 0, 1, trace.ClassCompute, 0x10000)
	if cold <= 0 {
		t.Fatal("cold load returned non-positive ready time")
	}
	hitLat := warm - (cold + 1)
	missLat := cold - 0
	if hitLat >= missLat {
		t.Errorf("hit latency %d should be far below miss latency %d", hitLat, missLat)
	}
	cfg := config.JetsonOrin()
	if hitLat != int64(cfg.L1Latency) {
		t.Errorf("L1 hit latency = %d, want %d", hitLat, cfg.L1Latency)
	}
}

func TestCountersPerStream(t *testing.T) {
	s := newSys(t)
	s.Load(0, 0, 5, trace.ClassCompute, 0x1000)
	s.Load(1, 0, 5, trace.ClassCompute, 0x1000)
	s.Load(2, 0, 9, trace.ClassCompute, 0x2000000)
	c5 := s.Counters(5)
	c9 := s.Counters(9)
	if c5.L1Accesses != 2 || c5.L1Misses != 1 {
		t.Errorf("stream 5 counters = %+v", *c5)
	}
	if c9.L1Accesses != 1 || c9.L1Misses != 1 {
		t.Errorf("stream 9 counters = %+v", *c9)
	}
	streams := s.Streams()
	if len(streams) != 2 || streams[0] != 5 || streams[1] != 9 {
		t.Errorf("Streams = %v", streams)
	}
}

func TestMSHRMerge(t *testing.T) {
	s := newSys(t)
	r1 := s.Load(0, 0, 1, trace.ClassCompute, 0x5000)
	// Second access to the same line while in flight rides the MSHR.
	r2 := s.Load(1, 0, 1, trace.ClassCompute, 0x5040)
	if r2 != r1 {
		t.Errorf("merged access ready %d, want %d", r2, r1)
	}
	c := s.Counters(1)
	if c.L2Accesses != 1 {
		t.Errorf("merged access reached L2: %d accesses", c.L2Accesses)
	}
}

func TestL1PrivatePerSM(t *testing.T) {
	s := newSys(t)
	r1 := s.Load(0, 0, 1, trace.ClassCompute, 0x9000)
	// Same line from another SM: misses its own L1 but hits L2.
	r2 := s.Load(r1+1, 1, 1, trace.ClassCompute, 0x9000)
	c := s.Counters(1)
	if c.L1Misses != 2 {
		t.Errorf("expected 2 L1 misses, got %d", c.L1Misses)
	}
	if c.L2Misses != 1 {
		t.Errorf("expected 1 L2 miss (second fill hits L2), got %d", c.L2Misses)
	}
	if r2-(r1+1) >= r1 {
		t.Error("L2 hit should be faster than DRAM round trip")
	}
}

func TestDRAMTrafficAccounting(t *testing.T) {
	s := newSys(t)
	cfg := config.JetsonOrin()
	for i := 0; i < 10; i++ {
		s.Load(int64(i), 0, 1, trace.ClassCompute, uint64(i)*uint64(cfg.LineSize)+1<<20)
	}
	c := s.Counters(1)
	if c.DRAMReadB != int64(10*cfg.LineSize) {
		t.Errorf("DRAM reads = %d, want %d", c.DRAMReadB, 10*cfg.LineSize)
	}
}

func TestStoreWriteThrough(t *testing.T) {
	s := newSys(t)
	done := s.Store(0, 0, 1, trace.ClassCompute, 0x3000)
	if done <= 0 {
		t.Fatal("store returned non-positive cycle")
	}
	c := s.Counters(1)
	if c.L2Accesses != 1 {
		t.Errorf("store did not reach L2: %d", c.L2Accesses)
	}
	// A subsequent load of that line hits in L2 (write-allocate).
	s.Load(done, 0, 1, trace.ClassCompute, 0x3000)
	if c.L2Misses != 1 {
		t.Errorf("L2 misses = %d, want only the store's allocate", c.L2Misses)
	}
}

func TestBankContentionSerializes(t *testing.T) {
	s := newSys(t)
	// Many distinct lines that map to the same bank (same line % banks).
	cfg := config.JetsonOrin()
	banks := uint64(cfg.L2Banks)
	line := uint64(cfg.LineSize)
	var last int64
	for i := 0; i < 50; i++ {
		addr := (uint64(i)*banks + 0) * line // bank 0 always
		r := s.Load(0, 0, 1, trace.ClassCompute, addr)
		if r < last {
			t.Fatal("ready times regressed")
		}
		last = r
	}
	// Same count spread across banks finishes sooner in the tail.
	s2 := newSys(t)
	var last2 int64
	for i := 0; i < 50; i++ {
		addr := uint64(i) * line // round-robin banks
		r := s2.Load(0, 0, 1, trace.ClassCompute, addr)
		if r > last2 {
			last2 = r
		}
	}
	if last2 >= last {
		t.Errorf("bank-spread tail %d should beat single-bank tail %d", last2, last)
	}
}

func TestSetMapperPartitionIsolation(t *testing.T) {
	s := newSys(t)
	sets := s.SetsPerBank()
	s.SetMapper(&SetMapper{
		Regions: map[int]SetRegion{
			0: {Start: 0, Count: sets / 2},
			1: {Start: sets / 2, Count: sets / 2},
		},
	})
	// Stream 0 fills far more lines than its region holds; stream 1's
	// lines must survive untouched.
	cfg := config.JetsonOrin()
	line := uint64(cfg.LineSize)
	s.Load(0, 0, 1, trace.ClassCompute, 7777*line)
	for i := 0; i < 100000; i++ {
		s.Load(int64(i+1), 0, 0, trace.ClassCompute, uint64(i)*line)
	}
	comp := s.L2Composition()
	if comp.ByStream[1] != 1 {
		t.Errorf("stream 1's line evicted by stream 0 despite set partition: %v", comp.ByStream)
	}
}

func TestBankMapperRestrictsBanks(t *testing.T) {
	s := newSys(t)
	s.SetMapper(&BankMapper{Banks: map[int][]int{0: {0, 1}}})
	cfg := config.JetsonOrin()
	line := uint64(cfg.LineSize)
	// With only 2 banks, 40 same-stream requests serialize harder than
	// the 16-bank shared default.
	var tail2 int64
	for i := 0; i < 40; i++ {
		if r := s.Load(0, 0, 0, trace.ClassCompute, uint64(i)*line); r > tail2 {
			tail2 = r
		}
	}
	s16 := newSys(t)
	var tail16 int64
	for i := 0; i < 40; i++ {
		if r := s16.Load(0, 0, 0, trace.ClassCompute, uint64(i)*line); r > tail16 {
			tail16 = r
		}
	}
	if tail16 >= tail2 {
		t.Errorf("16-bank tail %d should beat 2-bank tail %d", tail16, tail2)
	}
}

type recordingObserver struct {
	n    int
	hits int
}

func (r *recordingObserver) ObserveL2(stream int, lineAddr uint64, hit bool) {
	r.n++
	if hit {
		r.hits++
	}
}

func TestObserverSeesAccesses(t *testing.T) {
	s := newSys(t)
	obs := &recordingObserver{}
	s.SetObserver(obs)
	s.Load(0, 0, 1, trace.ClassCompute, 0x8000)
	s.Load(500000, 1, 1, trace.ClassCompute, 0x8000) // L1 miss on SM1 → L2 hit
	if obs.n != 2 {
		t.Errorf("observer saw %d accesses, want 2", obs.n)
	}
	if obs.hits != 1 {
		t.Errorf("observer saw %d hits, want 1", obs.hits)
	}
}

func TestInvalidateAllResets(t *testing.T) {
	s := newSys(t)
	s.Load(0, 0, 1, trace.ClassCompute, 0x8000)
	s.InvalidateAll()
	if s.L2Composition().Valid != 0 {
		t.Error("L2 lines survived InvalidateAll")
	}
}

func TestBankToChannelMappingIsContiguous(t *testing.T) {
	// MiG's bandwidth partitioning depends on contiguous bank→channel
	// mapping: the first half of the banks must use the first half of
	// the channels, so bank partitioning also partitions DRAM bandwidth.
	cfg := config.JetsonOrin()
	for bank := 0; bank < cfg.L2Banks; bank++ {
		ch := bank * cfg.MemChannels / cfg.L2Banks
		if bank < cfg.L2Banks/2 && ch >= cfg.MemChannels/2 {
			t.Errorf("bank %d maps to channel %d (upper half)", bank, ch)
		}
		if bank >= cfg.L2Banks/2 && ch < cfg.MemChannels/2 {
			t.Errorf("bank %d maps to channel %d (lower half)", bank, ch)
		}
	}
}

func TestHalfBanksHalveBandwidth(t *testing.T) {
	// Stream many distinct lines through the full machine vs through a
	// bank-restricted mapper: the restricted tail must be ≈2x later.
	run := func(restrict bool) int64 {
		s := newSys(t)
		if restrict {
			s.SetMapper(&BankMapper{Banks: map[int][]int{0: {0, 1, 2, 3, 4, 5, 6, 7}}})
		}
		cfg := config.JetsonOrin()
		line := uint64(cfg.LineSize)
		var tail int64
		for i := 0; i < 2000; i++ {
			if r := s.Load(0, 0, 0, trace.ClassCompute, uint64(i)*line); r > tail {
				tail = r
			}
		}
		return tail
	}
	full := run(false)
	half := run(true)
	ratio := float64(half) / float64(full)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("half-bank bandwidth ratio = %.2f, want ≈2", ratio)
	}
}

func TestL2MSHRMergeAcrossSMs(t *testing.T) {
	s := newSys(t)
	// Two SMs miss the same line back to back: one DRAM transfer only.
	r1 := s.Load(0, 0, 1, trace.ClassCompute, 0x70000)
	r2 := s.Load(1, 1, 1, trace.ClassCompute, 0x70000)
	c := s.Counters(1)
	if c.DRAMReadB != int64(config.JetsonOrin().LineSize) {
		t.Errorf("DRAM reads = %d, want one line (L2 MSHR merge)", c.DRAMReadB)
	}
	if r2 > r1+64 {
		t.Errorf("merged fill ready %d far beyond original %d", r2, r1)
	}
}

func TestSectoredSystemReducesDRAMTraffic(t *testing.T) {
	// Scattered 4-byte accesses, one per line: sectored fills move 32B
	// per miss instead of 128B.
	run := func(sector int) int64 {
		cfg := config.JetsonOrin()
		cfg.SectorSize = sector
		s, err := NewSystem(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			s.Load(int64(i), 0, 1, trace.ClassCompute, uint64(i)*128+1<<24)
		}
		return s.Counters(1).DRAMReadB
	}
	full := run(0)
	sect := run(32)
	if sect*4 != full {
		t.Errorf("sectored traffic %d should be a quarter of line-granular %d", sect, full)
	}
}
