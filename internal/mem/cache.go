// Package mem models the GPU memory system: per-SM unified L1 data caches
// (texture requests share the L1, as in contemporary GPUs), a banked shared
// L2, a bandwidth-metered DRAM model, and the SM↔L2 crossbar. It also
// provides the partitioning mechanisms the concurrency studies need:
// per-stream L2 bank masks (MiG) and per-stream L2 set partitions (TAP),
// plus cache-line composition tagging for the L2-footprint case studies.
package mem

import (
	"fmt"

	"crisp/internal/trace"
)

// line is one cache line's bookkeeping.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse int64
	class   trace.MemClass
	stream  int
	// sectors is the valid-sector bitmask when the cache is sectored
	// (bit i = sector i of the line present).
	sectors uint32
}

// Cache is a set-associative, LRU, write-back/write-allocate cache.
// The same structure implements the L1 (configured write-through by its
// caller: stores are forwarded without allocation) and each L2 bank.
type Cache struct {
	sets     int
	assoc    int
	lineSize uint64
	// sectorSize enables sectored operation when > 0: tags stay
	// line-granular but data validity and fills are per sector, as in
	// Ampere-class L1/L2 caches (32 B sectors).
	sectorSize uint64
	lines      []line // sets*assoc, row-major by set
}

// NewCache builds a cache with the given geometry. sizeBytes must be an
// exact multiple of assoc*lineSize.
func NewCache(sizeBytes, assoc, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("mem: invalid cache geometry size=%d assoc=%d line=%d", sizeBytes, assoc, lineSize)
	}
	setBytes := assoc * lineSize
	if sizeBytes%setBytes != 0 {
		return nil, fmt.Errorf("mem: cache size %d not a multiple of set size %d", sizeBytes, setBytes)
	}
	sets := sizeBytes / setBytes
	return &Cache{
		sets:     sets,
		assoc:    assoc,
		lineSize: uint64(lineSize),
		lines:    make([]line, sets*assoc),
	}, nil
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc reports the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// SetSectored configures sectored operation (0 disables). sectorSize must
// divide the line size into at most 32 sectors.
func (c *Cache) SetSectored(sectorSize int) error {
	if sectorSize == 0 {
		c.sectorSize = 0
		return nil
	}
	if sectorSize < 0 || uint64(sectorSize) > c.lineSize ||
		c.lineSize%uint64(sectorSize) != 0 || c.lineSize/uint64(sectorSize) > 32 {
		return fmt.Errorf("mem: sector size %d incompatible with %d-byte lines", sectorSize, c.lineSize)
	}
	c.sectorSize = uint64(sectorSize)
	return nil
}

// sectorBit returns the valid-mask bit for addr's sector (bit 0 when
// unsectored — the whole line acts as one sector).
func (c *Cache) sectorBit(addr uint64) uint32 {
	if c.sectorSize == 0 {
		return 1
	}
	return 1 << uint((addr%c.lineSize)/c.sectorSize)
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit bool
	// SectorFill reports that the line's tag was resident but the
	// accessed sector was not: the fill transfers one sector, with no
	// eviction.
	SectorFill bool
	// WritebackLine is the address of a dirty line evicted by this
	// access (0 and Writeback=false when none).
	Writeback     bool
	WritebackLine uint64
}

// lineAddr converts a byte address to a line-granular address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr / c.lineSize }

// setOf maps a line address to its home set using low-order bits.
func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr % uint64(c.sets)) }

// Access performs a load (write=false) or store (write=true) of the line
// containing addr, allocating on miss, in the set chosen by setIdx
// (callers with partitioned set mappings pass their own; pass -1 for the
// default hash). The class/stream tags are recorded on the line for
// composition accounting.
func (c *Cache) Access(now int64, addr uint64, write bool, class trace.MemClass, stream int, setIdx int) AccessResult {
	la := c.lineAddr(addr)
	if setIdx < 0 {
		setIdx = c.setOf(la)
	}
	base := setIdx * c.assoc
	set := c.lines[base : base+c.assoc]

	// Hit path (tag match; sector validity decides hit vs sector fill).
	bit := c.sectorBit(addr)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lastUse = now
			if write {
				set[i].dirty = true
			}
			// Ownership follows the most recent toucher so that
			// composition snapshots reflect live usage.
			set[i].class = class
			set[i].stream = stream
			if set[i].sectors&bit == 0 {
				set[i].sectors |= bit
				return AccessResult{SectorFill: true}
			}
			return AccessResult{Hit: true}
		}
	}

	// Miss: find victim (invalid first, else LRU).
	victim := 0
	oldest := int64(1<<62 - 1)
	for i := range set {
		if !set[i].valid {
			victim = i
			oldest = -1
			break
		}
		if set[i].lastUse < oldest {
			oldest = set[i].lastUse
			victim = i
		}
	}
	res := AccessResult{}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = true
		res.WritebackLine = set[victim].tag * c.lineSize
	}
	set[victim] = line{tag: la, valid: true, dirty: write, lastUse: now, class: class, stream: stream, sectors: bit}
	return res
}

// Probe reports whether addr's line (and, when sectored, its sector) is
// resident, without disturbing LRU state.
func (c *Cache) Probe(addr uint64, setIdx int) bool {
	la := c.lineAddr(addr)
	if setIdx < 0 {
		setIdx = c.setOf(la)
	}
	bit := c.sectorBit(addr)
	base := setIdx * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.lines[i].valid && c.lines[i].tag == la && c.lines[i].sectors&bit != 0 {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (used between frames / experiments).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Composition counts valid lines by memory class (and, separately, by
// stream). It implements the L2-footprint measurement of paper Fig. 11.
type Composition struct {
	Valid    int
	Total    int
	ByClass  map[trace.MemClass]int
	ByStream map[int]int
}

// Composition scans the tag array and reports the current line composition.
func (c *Cache) Composition() Composition {
	comp := Composition{
		Total:    len(c.lines),
		ByClass:  make(map[trace.MemClass]int),
		ByStream: make(map[int]int),
	}
	for i := range c.lines {
		if !c.lines[i].valid {
			continue
		}
		comp.Valid++
		comp.ByClass[c.lines[i].class]++
		comp.ByStream[c.lines[i].stream]++
	}
	return comp
}

// Merge folds o into comp (used to combine per-bank compositions).
func (comp *Composition) Merge(o Composition) {
	comp.Valid += o.Valid
	comp.Total += o.Total
	for k, v := range o.ByClass {
		comp.ByClass[k] += v
	}
	for k, v := range o.ByStream {
		comp.ByStream[k] += v
	}
}
