package mem

// UMON is a utility monitor in the style of Qureshi & Patt's UCP, the
// mechanism TAP builds on: a sampled shadow tag directory with full
// associativity per sampled set and per-LRU-stack-position hit counters.
// From the counters one can read how many hits a stream would retain if it
// were allotted any number of ways (or, scaled, any fraction of sets).
type UMON struct {
	assoc      int
	sampleMod  int // sample one in sampleMod sets
	stacks     map[uint64][]uint64
	WayHits    []int64 // hits at each LRU stack depth
	Accesses   int64
	Misses     int64
	maxStacks  int
}

// NewUMON builds a monitor with the cache's associativity, sampling one in
// sampleMod sets.
func NewUMON(assoc, sampleMod int) *UMON {
	if sampleMod < 1 {
		sampleMod = 1
	}
	return &UMON{
		assoc:     assoc,
		sampleMod: sampleMod,
		stacks:    make(map[uint64][]uint64),
		WayHits:   make([]int64, assoc),
		maxStacks: 4096,
	}
}

// Observe records one access to the monitored stream's address stream.
func (u *UMON) Observe(lineAddr uint64) {
	u.Accesses++
	setKey := lineAddr % uint64(u.sampleMod*64)
	if setKey%uint64(u.sampleMod) != 0 {
		return
	}
	stack := u.stacks[setKey]
	for i, tag := range stack {
		if tag == lineAddr {
			u.WayHits[i]++
			// Move to MRU.
			copy(stack[1:i+1], stack[:i])
			stack[0] = lineAddr
			return
		}
	}
	u.Misses++
	if len(stack) < u.assoc {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = lineAddr
	if len(u.stacks) < u.maxStacks || u.stacks[setKey] != nil {
		u.stacks[setKey] = stack
	}
}

// Utility reports the cumulative hits the stream would keep with the given
// number of ways of the monitored capacity (clamped to [0, assoc]).
func (u *UMON) Utility(ways int) int64 {
	if ways > u.assoc {
		ways = u.assoc
	}
	var s int64
	for i := 0; i < ways; i++ {
		s += u.WayHits[i]
	}
	return s
}

// MarginalUtility reports the additional hits gained by growing from
// ways-1 to ways.
func (u *UMON) MarginalUtility(ways int) int64 {
	if ways <= 0 || ways > u.assoc {
		return 0
	}
	return u.WayHits[ways-1]
}

// Reset clears counters and shadow tags (used at repartition epochs; the
// monitor keeps a fresh view of each phase).
func (u *UMON) Reset() {
	u.stacks = make(map[uint64][]uint64)
	for i := range u.WayHits {
		u.WayHits[i] = 0
	}
	u.Accesses = 0
	u.Misses = 0
}
