package mem

import (
	"fmt"
	"sort"

	"crisp/internal/robust"
	"crisp/internal/snapshot"
	"crisp/internal/trace"
)

// This file implements checkpoint capture/restore for the memory system.
// Capture walks maps into slices sorted by key so the serialized form is
// deterministic; restore validates geometry against the live system before
// touching any state, so a snapshot from a different config fails with a
// structured error instead of corrupting the hierarchy.

func stateErr(format string, args ...any) error {
	return &robust.SimError{Kind: robust.KindSnapshot, Msg: fmt.Sprintf(format, args...)}
}

// captureState snapshots one cache's valid lines, ordered by tag-array
// index (the iteration is already deterministic; the order is the array's).
func (c *Cache) captureState() snapshot.CacheState {
	var cs snapshot.CacheState
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		cs.Lines = append(cs.Lines, snapshot.LineState{
			Idx:     i,
			Tag:     l.tag,
			Dirty:   l.dirty,
			LastUse: l.lastUse,
			Class:   uint8(l.class),
			Stream:  l.stream,
			Sectors: l.sectors,
		})
	}
	return cs
}

// restoreState rebuilds the tag array from a capture.
func (c *Cache) restoreState(cs snapshot.CacheState) error {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for _, ls := range cs.Lines {
		if ls.Idx < 0 || ls.Idx >= len(c.lines) {
			return stateErr("cache line index %d outside tag array of %d lines", ls.Idx, len(c.lines))
		}
		c.lines[ls.Idx] = line{
			tag:     ls.Tag,
			valid:   true,
			dirty:   ls.Dirty,
			lastUse: ls.LastUse,
			class:   trace.MemClass(ls.Class),
			stream:  ls.Stream,
			sectors: ls.Sectors,
		}
	}
	return nil
}

// capturePending flattens an MSHR fill table into a granule-sorted slice.
func capturePending(t *fillTable) snapshot.PendingFills {
	var p snapshot.PendingFills
	if t.size() == 0 {
		return p
	}
	p.Fills = make([]snapshot.Fill, 0, t.size())
	for i, st := range t.state {
		if st == fillLive {
			p.Fills = append(p.Fills, snapshot.Fill{Granule: t.keys[i], Ready: t.ready[i]})
		}
	}
	sort.Slice(p.Fills, func(i, j int) bool { return p.Fills[i].Granule < p.Fills[j].Granule })
	return p
}

func restorePending(t *fillTable, p snapshot.PendingFills) {
	t.reset()
	for _, f := range p.Fills {
		t.set(f.Granule, f.Ready)
	}
}

// CaptureState snapshots the complete memory-system state: cache tag
// arrays, in-flight MSHR fills, bank/channel queue state, and per-stream
// counters. The contention-marker rate limiters (lastL2Cont/lastDramCont)
// are tracer-only state and deliberately excluded.
func (s *System) CaptureState() snapshot.MemState {
	var ms snapshot.MemState
	ms.L1 = make([]snapshot.CacheState, len(s.l1))
	ms.L1Pending = make([]snapshot.PendingFills, len(s.l1Pending))
	for i, c := range s.l1 {
		ms.L1[i] = c.captureState()
		ms.L1Pending[i] = capturePending(&s.l1Pending[i])
	}
	ms.L2 = make([]snapshot.CacheState, len(s.l2))
	ms.L2Pending = make([]snapshot.PendingFills, len(s.l2Pending))
	for i, c := range s.l2 {
		ms.L2[i] = c.captureState()
		ms.L2Pending[i] = capturePending(&s.l2Pending[i])
	}
	ms.L2NextFree = append([]int64(nil), s.l2NextFree...)
	ms.DRAMNextFree = append([]int64(nil), s.dramNextFree...)

	ids := s.Streams()
	ms.Counters = make([]snapshot.StreamCounterState, 0, len(ids))
	for _, id := range ids {
		c := s.counters.peek(id)
		ms.Counters = append(ms.Counters, snapshot.StreamCounterState{
			Stream:     id,
			L1Accesses: c.L1Accesses,
			L1Misses:   c.L1Misses,
			L2Accesses: c.L2Accesses,
			L2Misses:   c.L2Misses,
			DRAMReadB:  c.DRAMReadB,
			DRAMWriteB: c.DRAMWriteB,
		})
	}
	return ms
}

// RestoreState loads a capture into the live system. The system must have
// been built from the same config (the geometry check enforces it).
func (s *System) RestoreState(ms snapshot.MemState) error {
	if len(ms.L1) != len(s.l1) || len(ms.L2) != len(s.l2) ||
		len(ms.L2NextFree) != len(s.l2NextFree) || len(ms.DRAMNextFree) != len(s.dramNextFree) {
		return stateErr("memory geometry mismatch: snapshot has %d L1s/%d L2 banks/%d channels, system has %d/%d/%d",
			len(ms.L1), len(ms.L2), len(ms.DRAMNextFree), len(s.l1), len(s.l2), len(s.dramNextFree))
	}
	if len(ms.L1Pending) != len(s.l1Pending) || len(ms.L2Pending) != len(s.l2Pending) {
		return stateErr("memory snapshot inconsistent: pending-fill tables do not match cache counts")
	}
	for i, c := range s.l1 {
		if err := c.restoreState(ms.L1[i]); err != nil {
			return err
		}
		restorePending(&s.l1Pending[i], ms.L1Pending[i])
	}
	for i, c := range s.l2 {
		if err := c.restoreState(ms.L2[i]); err != nil {
			return err
		}
		restorePending(&s.l2Pending[i], ms.L2Pending[i])
	}
	copy(s.l2NextFree, ms.L2NextFree)
	copy(s.dramNextFree, ms.DRAMNextFree)

	s.counters.reset()
	for _, cs := range ms.Counters {
		*s.counters.get(cs.Stream) = Counters{
			L1Accesses: cs.L1Accesses,
			L1Misses:   cs.L1Misses,
			L2Accesses: cs.L2Accesses,
			L2Misses:   cs.L2Misses,
			DRAMReadB:  cs.DRAMReadB,
			DRAMWriteB: cs.DRAMWriteB,
		}
	}
	// Reset the tracer rate limiters: they only suppress duplicate
	// contention markers and carry no architectural state.
	for i := range s.lastL2Cont {
		s.lastL2Cont[i] = 0
	}
	for i := range s.lastDramCont {
		s.lastDramCont[i] = 0
	}
	return nil
}

// CaptureState snapshots the monitor with its shadow-tag stacks sorted by
// sampled-set key.
func (u *UMON) CaptureState() snapshot.UMONState {
	us := snapshot.UMONState{
		WayHits:  append([]int64(nil), u.WayHits...),
		Accesses: u.Accesses,
		Misses:   u.Misses,
	}
	keys := make([]uint64, 0, len(u.stacks))
	for k := range u.stacks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	us.Stacks = make([]snapshot.UMONStack, 0, len(keys))
	for _, k := range keys {
		us.Stacks = append(us.Stacks, snapshot.UMONStack{
			Key:  k,
			Tags: append([]uint64(nil), u.stacks[k]...),
		})
	}
	return us
}

// RestoreState loads a monitor capture.
func (u *UMON) RestoreState(us snapshot.UMONState) error {
	if len(us.WayHits) != len(u.WayHits) {
		return stateErr("UMON snapshot has %d way counters, monitor has %d", len(us.WayHits), len(u.WayHits))
	}
	copy(u.WayHits, us.WayHits)
	u.Accesses = us.Accesses
	u.Misses = us.Misses
	u.stacks = make(map[uint64][]uint64, len(us.Stacks))
	for _, st := range us.Stacks {
		u.stacks[st.Key] = append([]uint64(nil), st.Tags...)
	}
	return nil
}
