package mem

import "sort"

// counterStore holds the per-stream counter blocks. Stream ids come in
// two bands: graphics streams are small dense integers (batch index
// order), while compute streams sit at multiples of 1<<20 (the facade's
// ComputeStreamBase spacing). Counter lookups are on the hot path — two
// per load before this store existed — so the dense band is a direct
// slice index and only the handful of high compute ids fall back to a
// short sorted table scanned linearly. The map the store replaced is
// rebuilt nowhere; exports walk the store in sorted id order directly.
type counterStore struct {
	lo []*Counters // dense, indexed by stream id; nil = no traffic yet
	// hi holds the sparse band (id < 0 or id >= denseLimit), sorted by id.
	hiIDs []int
	hiCnt []*Counters
}

// denseLimit bounds the directly indexed band. It matches the facade's
// compute-stream spacing (core.ComputeStreamBase): every graphics stream
// id is below it, every compute stream id at or above it. The slice only
// ever grows to the largest dense id actually seen, so a render with n
// batch streams costs n pointers, not denseLimit.
const denseLimit = 1 << 20

// get returns the counter block for a stream, creating it on first use.
func (cs *counterStore) get(stream int) *Counters {
	if stream >= 0 && stream < denseLimit {
		if stream >= len(cs.lo) {
			grown := make([]*Counters, stream+1)
			copy(grown, cs.lo)
			cs.lo = grown
		}
		c := cs.lo[stream]
		if c == nil {
			c = &Counters{}
			cs.lo[stream] = c
		}
		return c
	}
	if c := cs.peekHi(stream); c != nil {
		return c
	}
	// Insert keeping hiIDs sorted; the band holds a few compute streams,
	// so the linear shift is irrelevant.
	i := sort.SearchInts(cs.hiIDs, stream)
	c := &Counters{}
	cs.hiIDs = append(cs.hiIDs, 0)
	cs.hiCnt = append(cs.hiCnt, nil)
	copy(cs.hiIDs[i+1:], cs.hiIDs[i:])
	copy(cs.hiCnt[i+1:], cs.hiCnt[i:])
	cs.hiIDs[i] = stream
	cs.hiCnt[i] = c
	return c
}

// peek returns the counter block without creating one; nil means the
// stream has produced no memory traffic.
func (cs *counterStore) peek(stream int) *Counters {
	if stream >= 0 && stream < denseLimit {
		if stream < len(cs.lo) {
			return cs.lo[stream]
		}
		return nil
	}
	return cs.peekHi(stream)
}

func (cs *counterStore) peekHi(stream int) *Counters {
	for i, id := range cs.hiIDs {
		if id == stream {
			return cs.hiCnt[i]
		}
	}
	return nil
}

// streams lists the active stream ids, sorted ascending. Negative hi ids
// sort before the dense band, positive ones after it.
func (cs *counterStore) streams() []int {
	ids := make([]int, 0, len(cs.hiIDs)+8)
	for _, id := range cs.hiIDs {
		if id < 0 {
			ids = append(ids, id)
		}
	}
	for id, c := range cs.lo {
		if c != nil {
			ids = append(ids, id)
		}
	}
	for _, id := range cs.hiIDs {
		if id >= denseLimit {
			ids = append(ids, id)
		}
	}
	return ids
}

// reset drops all counter blocks (snapshot restore rebuilds from here).
func (cs *counterStore) reset() {
	cs.lo = nil
	cs.hiIDs = nil
	cs.hiCnt = nil
}
