package mem

import "testing"

func TestUMONCountsReuse(t *testing.T) {
	u := NewUMON(4, 1)
	// Touch one line repeatedly: first access misses, rest hit at MRU.
	for i := 0; i < 10; i++ {
		u.Observe(64)
	}
	if u.Accesses != 10 {
		t.Errorf("accesses = %d", u.Accesses)
	}
	if u.Misses != 1 {
		t.Errorf("misses = %d", u.Misses)
	}
	if u.WayHits[0] != 9 {
		t.Errorf("MRU hits = %d, want 9", u.WayHits[0])
	}
	if u.Utility(1) != 9 || u.Utility(4) != 9 {
		t.Errorf("utility = %d/%d", u.Utility(1), u.Utility(4))
	}
}

// sameSet returns the i-th distinct line that maps to sampled set 0
// (multiples of 64 share a set key for sampleMod=1).
func sameSet(i int) uint64 { return uint64(i) * 64 }

func TestUMONStackDepth(t *testing.T) {
	u := NewUMON(4, 1)
	// Cycle 3 lines in the same set over 5 rounds: round 1 misses all
	// three, later rounds hit at stack depth 3 (index 2).
	for r := 0; r < 5; r++ {
		for l := 0; l < 3; l++ {
			u.Observe(sameSet(l))
		}
	}
	if u.Misses != 3 {
		t.Errorf("misses = %d, want 3", u.Misses)
	}
	if u.WayHits[2] != 12 {
		t.Errorf("depth-3 hits = %d, want 12 (hits: %v)", u.WayHits[2], u.WayHits)
	}
}

func TestUMONDistinguishesWorkingSets(t *testing.T) {
	small := NewUMON(8, 1)
	big := NewUMON(8, 1)
	// Small working set: 2 lines in one set, reused heavily.
	for i := 0; i < 100; i++ {
		small.Observe(sameSet(i % 2))
	}
	// Big working set: 16 lines cycled in one set — exceeds the 8-way
	// stack, so no depth yields reuse hits.
	for i := 0; i < 100; i++ {
		big.Observe(sameSet(i % 16))
	}
	if small.Utility(8) <= big.Utility(8) {
		t.Errorf("small-set utility %d should exceed thrashing utility %d",
			small.Utility(8), big.Utility(8))
	}
}

func TestUMONMarginalUtility(t *testing.T) {
	u := NewUMON(4, 1)
	// Alternate 2 same-set lines: hits land at depth 2 (index 1).
	for i := 0; i < 40; i++ {
		u.Observe(sameSet(i % 2))
	}
	if u.MarginalUtility(2) == 0 {
		t.Error("expected marginal utility at 2 ways")
	}
	if u.MarginalUtility(0) != 0 || u.MarginalUtility(5) != 0 {
		t.Error("out-of-range marginal utility should be 0")
	}
}

func TestUMONReset(t *testing.T) {
	u := NewUMON(4, 1)
	u.Observe(0)
	u.Observe(0)
	u.Reset()
	if u.Accesses != 0 || u.Misses != 0 || u.Utility(4) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestUMONSampling(t *testing.T) {
	u := NewUMON(4, 4)
	// With sampleMod=4, only one in four set keys is monitored; feeding
	// many distinct lines must not blow up the stack map.
	for i := 0; i < 100000; i++ {
		u.Observe(uint64(i))
	}
	if u.Accesses != 100000 {
		t.Errorf("accesses = %d", u.Accesses)
	}
}
