package isa

import "testing"

func TestEveryOpcodeHasUnitAndName(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		if op == OpNOP {
			continue
		}
		if UnitOf(op) == UnitNone {
			t.Errorf("%v has no execution unit", op)
		}
		if Latency(op) <= 0 {
			t.Errorf("%v has non-positive latency", op)
		}
		if InitiationInterval(op) <= 0 {
			t.Errorf("%v has non-positive initiation interval", op)
		}
		if op.String() == "" || op.String()[0] == 'O' && op.String()[1] == 'p' {
			t.Errorf("%d has no name", uint8(op))
		}
	}
}

func TestMemoryClassification(t *testing.T) {
	loads := []Opcode{OpLDG, OpLDS, OpLDC, OpTEX}
	for _, op := range loads {
		if !IsMemory(op) || !IsLoad(op) || IsStore(op) {
			t.Errorf("%v misclassified as load", op)
		}
	}
	stores := []Opcode{OpSTG, OpSTS}
	for _, op := range stores {
		if !IsMemory(op) || IsLoad(op) || !IsStore(op) {
			t.Errorf("%v misclassified as store", op)
		}
	}
	alu := []Opcode{OpFADD, OpFFMA, OpIMAD, OpMUFURSQ, OpHMMA, OpMOV}
	for _, op := range alu {
		if IsMemory(op) || IsLoad(op) || IsStore(op) {
			t.Errorf("%v misclassified as memory", op)
		}
	}
}

func TestSpaces(t *testing.T) {
	cases := map[Opcode]Space{
		OpLDG: SpaceGlobal,
		OpSTG: SpaceGlobal,
		OpLDS: SpaceShared,
		OpSTS: SpaceShared,
		OpLDC: SpaceConst,
		OpTEX: SpaceTexture,
		OpFADD: SpaceNone,
	}
	for op, want := range cases {
		if got := SpaceOf(op); got != want {
			t.Errorf("SpaceOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestUnits(t *testing.T) {
	cases := map[Opcode]Unit{
		OpFADD:    UnitFP,
		OpFFMA:    UnitFP,
		OpIMAD:    UnitINT,
		OpMUFUSIN: UnitSFU,
		OpMUFURCP: UnitSFU,
		OpHMMA:    UnitTensor,
		OpLDG:     UnitLDST,
		OpTEX:     UnitLDST,
		OpEXIT:    UnitCTRL,
		OpBAR:     UnitCTRL,
	}
	for op, want := range cases {
		if got := UnitOf(op); got != want {
			t.Errorf("UnitOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestSFULatencyExceedsALU(t *testing.T) {
	if Latency(OpMUFUSIN) <= Latency(OpFADD) {
		t.Error("SFU ops should have higher latency than FP32 ALU ops")
	}
	if InitiationInterval(OpMUFUSIN) <= InitiationInterval(OpFADD) {
		t.Error("SFU throughput should be lower than FP32")
	}
}

func TestStringFallbacks(t *testing.T) {
	if Opcode(200).String() == "" {
		t.Error("unknown opcode String empty")
	}
	if Unit(99).String() == "" {
		t.Error("unknown unit String empty")
	}
	if Space(99).String() == "" {
		t.Error("unknown space String empty")
	}
}
