// Package isa defines the SASS-like instruction set consumed by the timing
// model. CRISP replays traces of these instructions: the functional front
// ends (the graphics pipeline and the compute-kernel builders) lower their
// work to isa instructions, and the cycle-level simulator executes them
// against the SM, cache, and DRAM models.
//
// The set mirrors the subset of NVIDIA SASS that matters for timing:
// arithmetic in several latency classes, special-function ops, tensor ops,
// and memory operations in each address space. Exact encodings are
// irrelevant for a trace-driven simulator; what matters is the opcode's
// execution-unit class, its latency, its register dependencies, and (for
// memory ops) the per-lane addresses carried alongside the instruction in
// the trace.
package isa

import "fmt"

// Opcode identifies one machine operation.
type Opcode uint8

// Opcodes. Names follow SASS conventions where a close analog exists.
const (
	OpNOP Opcode = iota

	// Single-precision floating point (FP32 unit).
	OpFADD
	OpFMUL
	OpFFMA
	OpFMNMX // min/max
	OpFSET  // compare, writes predicate-like register
	OpF2I
	OpI2F

	// Integer (INT unit).
	OpIADD
	OpIMAD
	OpISETP
	OpSHL
	OpSHR
	OpLOP3 // bitwise logic
	OpMOV
	OpSEL // predicated select

	// Special function unit (SFU / MUFU.*).
	OpMUFURCP  // reciprocal
	OpMUFURSQ  // reciprocal square root
	OpMUFUSIN
	OpMUFUCOS
	OpMUFUEX2
	OpMUFULG2

	// Tensor core.
	OpHMMA

	// Memory.
	OpLDG // load global
	OpSTG // store global
	OpLDS // load shared
	OpSTS // store shared
	OpLDC // load constant
	OpTEX // texture sample (issued to unified L1 data cache in CRISP)

	// Control.
	OpBRA
	OpBAR // barrier (CTA-wide)
	OpEXIT

	opcodeCount
)

var opcodeNames = [...]string{
	OpNOP:     "NOP",
	OpFADD:    "FADD",
	OpFMUL:    "FMUL",
	OpFFMA:    "FFMA",
	OpFMNMX:   "FMNMX",
	OpFSET:    "FSET",
	OpF2I:     "F2I",
	OpI2F:     "I2F",
	OpIADD:    "IADD",
	OpIMAD:    "IMAD",
	OpISETP:   "ISETP",
	OpSHL:     "SHL",
	OpSHR:     "SHR",
	OpLOP3:    "LOP3",
	OpMOV:     "MOV",
	OpSEL:     "SEL",
	OpMUFURCP: "MUFU.RCP",
	OpMUFURSQ: "MUFU.RSQ",
	OpMUFUSIN: "MUFU.SIN",
	OpMUFUCOS: "MUFU.COS",
	OpMUFUEX2: "MUFU.EX2",
	OpMUFULG2: "MUFU.LG2",
	OpHMMA:    "HMMA",
	OpLDG:     "LDG",
	OpSTG:     "STG",
	OpLDS:     "LDS",
	OpSTS:     "STS",
	OpLDC:     "LDC",
	OpTEX:     "TEX",
	OpBRA:     "BRA",
	OpBAR:     "BAR",
	OpEXIT:    "EXIT",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Unit is the execution-pipeline class an opcode issues to.
type Unit uint8

const (
	UnitNone Unit = iota
	UnitFP        // FP32 ALU
	UnitINT       // integer ALU
	UnitSFU       // special function
	UnitTensor
	UnitLDST // memory pipeline
	UnitCTRL // branch/barrier/exit — handled by the scheduler
	unitCount
)

var unitNames = [...]string{
	UnitNone:   "none",
	UnitFP:     "fp",
	UnitINT:    "int",
	UnitSFU:    "sfu",
	UnitTensor: "tensor",
	UnitLDST:   "ldst",
	UnitCTRL:   "ctrl",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// UnitCount is the number of distinct execution-unit classes.
const UnitCount = int(unitCount)

// Space is the memory space a memory opcode addresses.
type Space uint8

const (
	SpaceNone Space = iota
	SpaceGlobal
	SpaceShared
	SpaceConst
	SpaceTexture // global memory carrying texture data (unified L1 path)
)

var spaceNames = [...]string{
	SpaceNone:    "none",
	SpaceGlobal:  "global",
	SpaceShared:  "shared",
	SpaceConst:   "const",
	SpaceTexture: "texture",
}

func (s Space) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}

type opInfo struct {
	unit    Unit
	latency uint8 // result latency in core cycles
	initInt uint8 // initiation interval on the unit
	space   Space
}

// Latencies follow Accel-Sim's Ampere model in spirit: 4-cycle ALU
// dependent-issue latency, longer SFU and tensor latencies; memory latency
// is determined by the memory system, so memory ops carry only the pipeline
// issue cost here.
var opTable = [opcodeCount]opInfo{
	OpNOP:     {UnitINT, 1, 1, SpaceNone},
	OpFADD:    {UnitFP, 4, 1, SpaceNone},
	OpFMUL:    {UnitFP, 4, 1, SpaceNone},
	OpFFMA:    {UnitFP, 4, 1, SpaceNone},
	OpFMNMX:   {UnitFP, 4, 1, SpaceNone},
	OpFSET:    {UnitFP, 4, 1, SpaceNone},
	OpF2I:     {UnitFP, 4, 1, SpaceNone},
	OpI2F:     {UnitFP, 4, 1, SpaceNone},
	OpIADD:    {UnitINT, 4, 1, SpaceNone},
	OpIMAD:    {UnitINT, 5, 1, SpaceNone},
	OpISETP:   {UnitINT, 4, 1, SpaceNone},
	OpSHL:     {UnitINT, 4, 1, SpaceNone},
	OpSHR:     {UnitINT, 4, 1, SpaceNone},
	OpLOP3:    {UnitINT, 4, 1, SpaceNone},
	OpMOV:     {UnitINT, 2, 1, SpaceNone},
	OpSEL:     {UnitINT, 4, 1, SpaceNone},
	OpMUFURCP: {UnitSFU, 21, 4, SpaceNone},
	OpMUFURSQ: {UnitSFU, 21, 4, SpaceNone},
	OpMUFUSIN: {UnitSFU, 21, 4, SpaceNone},
	OpMUFUCOS: {UnitSFU, 21, 4, SpaceNone},
	OpMUFUEX2: {UnitSFU, 21, 4, SpaceNone},
	OpMUFULG2: {UnitSFU, 21, 4, SpaceNone},
	OpHMMA:    {UnitTensor, 16, 8, SpaceNone},
	OpLDG:     {UnitLDST, 4, 1, SpaceGlobal},
	OpSTG:     {UnitLDST, 4, 1, SpaceGlobal},
	OpLDS:     {UnitLDST, 22, 1, SpaceShared},
	OpSTS:     {UnitLDST, 4, 1, SpaceShared},
	OpLDC:     {UnitLDST, 8, 1, SpaceConst},
	OpTEX:     {UnitLDST, 4, 1, SpaceTexture},
	OpBRA:     {UnitCTRL, 2, 1, SpaceNone},
	OpBAR:     {UnitCTRL, 2, 1, SpaceNone},
	OpEXIT:    {UnitCTRL, 1, 1, SpaceNone},
}

// UnitOf reports the execution-unit class op issues to.
func UnitOf(op Opcode) Unit {
	if int(op) < len(opTable) {
		return opTable[op].unit
	}
	return UnitNone
}

// Latency reports the register-result latency of op in core cycles.
// For memory ops this is only the address-generation pipeline depth;
// data-return latency comes from the memory system model.
func Latency(op Opcode) int {
	if int(op) < len(opTable) {
		return int(opTable[op].latency)
	}
	return 1
}

// InitiationInterval reports how many cycles the issuing unit is busy
// before it can accept another instruction.
func InitiationInterval(op Opcode) int {
	if int(op) < len(opTable) {
		return int(opTable[op].initInt)
	}
	return 1
}

// SpaceOf reports the memory space of op, or SpaceNone for non-memory ops.
func SpaceOf(op Opcode) Space {
	if int(op) < len(opTable) {
		return opTable[op].space
	}
	return SpaceNone
}

// IsMemory reports whether op accesses memory.
func IsMemory(op Opcode) bool { return SpaceOf(op) != SpaceNone }

// IsLoad reports whether op reads memory into a register.
func IsLoad(op Opcode) bool {
	switch op {
	case OpLDG, OpLDS, OpLDC, OpTEX:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func IsStore(op Opcode) bool { return op == OpSTG || op == OpSTS }

// Reg is a virtual register number local to one warp's trace.
// Register 255 (RegNone) means "no operand".
type Reg = uint8

// RegNone marks an absent register operand.
const RegNone Reg = 255

// WarpSize is the number of lanes in a warp.
const WarpSize = 32

// OpcodeCount is the number of defined opcodes. Serialized traces embed
// it as a format fingerprint: inserting an opcode renumbers the ISA, and
// a trace written under a different numbering must not be replayed.
const OpcodeCount = int(opcodeCount)
