// Package gmath provides the small linear-algebra toolkit used by the
// graphics front end: 2/3/4-component float32 vectors, 4×4 matrices,
// and the projection/view helpers a rasterization pipeline needs.
package gmath

import "math"

// Vec2 is a 2-component float32 vector.
type Vec2 struct{ X, Y float32 }

// Vec3 is a 3-component float32 vector.
type Vec3 struct{ X, Y, Z float32 }

// Vec4 is a 4-component float32 vector (homogeneous coordinates).
type Vec4 struct{ X, Y, Z, W float32 }

// V2 constructs a Vec2.
func V2(x, y float32) Vec2 { return Vec2{x, y} }

// V3 constructs a Vec3.
func V3(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// V4 constructs a Vec4.
func V4(x, y, z, w float32) Vec4 { return Vec4{x, y, z, w} }

// Add returns a+b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a-b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a*s.
func (a Vec2) Scale(s float32) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the component-wise product a*b.
func (a Vec3) Mul(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Scale returns a*s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product a·b.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns |a|.
func (a Vec3) Len() float32 { return Sqrt(a.Dot(a)) }

// Normalize returns a/|a|, or the zero vector if |a| is zero.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return Vec3{}
	}
	return a.Scale(1 / l)
}

// Add returns a+b.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W}
}

// Sub returns a-b.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W}
}

// Scale returns a*s.
func (a Vec4) Scale(s float32) Vec4 {
	return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s}
}

// Dot returns the 4-component dot product.
func (a Vec4) Dot(b Vec4) float32 {
	return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W
}

// XYZ drops the W component.
func (a Vec4) XYZ() Vec3 { return Vec3{a.X, a.Y, a.Z} }

// Mat4 is a 4×4 row-major matrix.
type Mat4 [16]float32

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m*n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// MulVec returns m*v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// MulDir transforms a direction (w=0), ignoring translation.
func (m Mat4) MulDir(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z,
	}
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = t.X, t.Y, t.Z
	return m
}

// ScaleUniform returns a uniform scaling matrix.
func ScaleUniform(s float32) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s, s, s
	return m
}

// ScaleVec returns a per-axis scaling matrix.
func ScaleVec(s Vec3) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s.X, s.Y, s.Z
	return m
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float32) Mat4 {
	c := Cos(angle)
	s := Sin(angle)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float32) Mat4 {
	c := Cos(angle)
	s := Sin(angle)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float32) Mat4 {
	c := Cos(angle)
	s := Sin(angle)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Perspective returns a right-handed perspective projection with the given
// vertical field of view (radians), aspect ratio, and near/far planes,
// mapping depth to [0,1] (Vulkan convention).
func Perspective(fovY, aspect, near, far float32) Mat4 {
	f := 1 / Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, far / (near - far), near * far / (near - far),
		0, 0, -1, 0,
	}
}

// LookAt returns a right-handed view matrix placing the camera at eye,
// looking at center, with the given up direction.
func LookAt(eye, center, up Vec3) Mat4 {
	fwd := center.Sub(eye).Normalize()
	right := fwd.Cross(up).Normalize()
	realUp := right.Cross(fwd)
	return Mat4{
		right.X, right.Y, right.Z, -right.Dot(eye),
		realUp.X, realUp.Y, realUp.Z, -realUp.Dot(eye),
		-fwd.X, -fwd.Y, -fwd.Z, fwd.Dot(eye),
		0, 0, 0, 1,
	}
}

// Sqrt is float32 square root.
func Sqrt(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Sin is float32 sine.
func Sin(x float32) float32 { return float32(math.Sin(float64(x))) }

// Cos is float32 cosine.
func Cos(x float32) float32 { return float32(math.Cos(float64(x))) }

// Tan is float32 tangent.
func Tan(x float32) float32 { return float32(math.Tan(float64(x))) }

// Pow is float32 power.
func Pow(x, y float32) float32 { return float32(math.Pow(float64(x), float64(y))) }

// Log2 is float32 base-2 logarithm.
func Log2(x float32) float32 { return float32(math.Log2(float64(x))) }

// Floor is float32 floor.
func Floor(x float32) float32 { return float32(math.Floor(float64(x))) }

// Abs is float32 absolute value.
func Abs(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates from a to b by t.
func Lerp(a, b, t float32) float32 { return a + (b-a)*t }

// Lerp3 linearly interpolates two Vec3s.
func Lerp3(a, b Vec3, t float32) Vec3 {
	return Vec3{Lerp(a.X, b.X, t), Lerp(a.Y, b.Y, t), Lerp(a.Z, b.Z, t)}
}

// Min returns the smaller of a and b.
func Min(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
