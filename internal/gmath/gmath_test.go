package gmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

func vecAlmostEq(a, b Vec3, tol float32) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Basics(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, 5, 6)
	if got := a.Add(b); got != V3(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V3(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := V3(1, 0, 0)
	b := V3(0, 1, 0)
	if got := a.Cross(b); got != V3(0, 0, 1) {
		t.Errorf("x cross y = %v, want z", got)
	}
	// Property: cross product is orthogonal to both inputs.
	f := func(ax, ay, az, bx, by, bz float32) bool {
		u := V3(ax, ay, az)
		v := V3(bx, by, bz)
		c := u.Cross(v)
		scale := u.Len() * v.Len()
		if scale == 0 || scale > 1e6 {
			return true
		}
		return almostEq(c.Dot(u)/scale, 0, 1e-3) && almostEq(c.Dot(v)/scale, 0, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := V3(3, 4, 0).Normalize()
	if !almostEq(v.Len(), 1, 1e-6) {
		t.Errorf("normalized length = %v", v.Len())
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("zero normalize = %v", got)
	}
}

func TestMat4Identity(t *testing.T) {
	id := Identity()
	v := V4(1, 2, 3, 1)
	if got := id.MulVec(v); got != v {
		t.Errorf("I*v = %v", got)
	}
	if got := id.Mul(id); got != id {
		t.Errorf("I*I = %v", got)
	}
}

func TestMat4MulAssociative(t *testing.T) {
	a := Translate(V3(1, 2, 3))
	b := RotateY(0.7)
	c := ScaleUniform(2)
	v := V4(0.5, -1, 2, 1)
	left := a.Mul(b).Mul(c).MulVec(v)
	right := a.MulVec(b.MulVec(c.MulVec(v)))
	if !almostEq(left.X, right.X, 1e-4) || !almostEq(left.Y, right.Y, 1e-4) ||
		!almostEq(left.Z, right.Z, 1e-4) || !almostEq(left.W, right.W, 1e-4) {
		t.Errorf("(ABC)v = %v, A(B(Cv)) = %v", left, right)
	}
}

func TestTranslate(t *testing.T) {
	m := Translate(V3(10, 20, 30))
	got := m.MulVec(V4(1, 1, 1, 1))
	if got != V4(11, 21, 31, 1) {
		t.Errorf("translate = %v", got)
	}
	// Directions (w=0) are unaffected.
	if d := m.MulDir(V3(1, 0, 0)); d != V3(1, 0, 0) {
		t.Errorf("translate dir = %v", d)
	}
}

func TestRotateYPreservesLength(t *testing.T) {
	f := func(angle, x, y, z float32) bool {
		if Abs(x) > 1e3 || Abs(y) > 1e3 || Abs(z) > 1e3 {
			return true
		}
		v := V3(x, y, z)
		r := RotateY(angle).MulDir(v)
		return almostEq(r.Len(), v.Len(), 1e-2+v.Len()*1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRotateYQuarterTurn(t *testing.T) {
	r := RotateY(float32(math.Pi / 2)).MulDir(V3(1, 0, 0))
	if !vecAlmostEq(r, V3(0, 0, -1), 1e-6) {
		t.Errorf("rotY(90°)·x = %v, want -z", r)
	}
}

func TestLookAtPlacesEyeAtOrigin(t *testing.T) {
	eye := V3(5, 3, -2)
	m := LookAt(eye, V3(0, 0, 0), V3(0, 1, 0))
	got := m.MulVec(V4(eye.X, eye.Y, eye.Z, 1))
	if !almostEq(got.X, 0, 1e-4) || !almostEq(got.Y, 0, 1e-4) || !almostEq(got.Z, 0, 1e-4) {
		t.Errorf("view(eye) = %v, want origin", got)
	}
}

func TestLookAtTargetOnNegativeZ(t *testing.T) {
	m := LookAt(V3(0, 0, 5), V3(0, 0, 0), V3(0, 1, 0))
	got := m.MulVec(V4(0, 0, 0, 1))
	if !(got.Z < 0) || !almostEq(got.X, 0, 1e-5) || !almostEq(got.Y, 0, 1e-5) {
		t.Errorf("view(target) = %v, want on -Z axis", got)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	p := Perspective(1.0, 16.0/9, 0.1, 100)
	// A point at the near plane maps to depth 0 after divide.
	near := p.MulVec(V4(0, 0, -0.1, 1))
	if !almostEq(near.Z/near.W, 0, 1e-4) {
		t.Errorf("near depth = %v, want 0", near.Z/near.W)
	}
	far := p.MulVec(V4(0, 0, -100, 1))
	if !almostEq(far.Z/far.W, 1, 1e-3) {
		t.Errorf("far depth = %v, want 1", far.Z/far.W)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
	if Lerp(0, 10, 0.5) != 5 {
		t.Error("Lerp broken")
	}
	if ClampInt(7, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 {
		t.Error("ClampInt broken")
	}
}

func TestScalarHelpers(t *testing.T) {
	if !almostEq(Sqrt(9), 3, 1e-6) {
		t.Error("Sqrt")
	}
	if !almostEq(Log2(8), 3, 1e-6) {
		t.Error("Log2")
	}
	if !almostEq(Pow(2, 10), 1024, 1e-2) {
		t.Error("Pow")
	}
	if Floor(1.9) != 1 || Floor(-0.5) != -1 {
		t.Error("Floor")
	}
	if Min(1, 2) != 1 || Max(1, 2) != 2 {
		t.Error("Min/Max")
	}
	if Abs(-3) != 3 || Abs(3) != 3 {
		t.Error("Abs")
	}
}

func TestVec2AndVec4Ops(t *testing.T) {
	a := V2(1, 2)
	b := V2(3, 4)
	if a.Add(b) != V2(4, 6) || b.Sub(a) != V2(2, 2) || a.Scale(2) != V2(2, 4) {
		t.Error("Vec2 arithmetic broken")
	}
	p := V4(1, 2, 3, 4)
	q := V4(5, 6, 7, 8)
	if p.Add(q) != V4(6, 8, 10, 12) || q.Sub(p) != V4(4, 4, 4, 4) {
		t.Error("Vec4 add/sub broken")
	}
	if p.Scale(2) != V4(2, 4, 6, 8) {
		t.Error("Vec4 scale broken")
	}
	if p.Dot(q) != 70 {
		t.Errorf("Vec4 dot = %v", p.Dot(q))
	}
	if p.XYZ() != V3(1, 2, 3) {
		t.Error("XYZ broken")
	}
}

func TestVec3MulAndLerp3(t *testing.T) {
	if got := V3(1, 2, 3).Mul(V3(2, 3, 4)); got != V3(2, 6, 12) {
		t.Errorf("Mul = %v", got)
	}
	if got := Lerp3(V3(0, 0, 0), V3(2, 4, 6), 0.5); got != V3(1, 2, 3) {
		t.Errorf("Lerp3 = %v", got)
	}
}

func TestRotateXZAndScaleVec(t *testing.T) {
	rx := RotateX(float32(math.Pi / 2)).MulDir(V3(0, 1, 0))
	if !vecAlmostEq(rx, V3(0, 0, 1), 1e-6) {
		t.Errorf("rotX(90°)·y = %v, want z", rx)
	}
	rz := RotateZ(float32(math.Pi / 2)).MulDir(V3(1, 0, 0))
	if !vecAlmostEq(rz, V3(0, 1, 0), 1e-6) {
		t.Errorf("rotZ(90°)·x = %v, want y", rz)
	}
	sv := ScaleVec(V3(2, 3, 4)).MulVec(V4(1, 1, 1, 1))
	if sv != V4(2, 3, 4, 1) {
		t.Errorf("ScaleVec = %v", sv)
	}
}

func TestSinCosTanIdentity(t *testing.T) {
	for _, x := range []float32{0, 0.5, 1.2, -0.7} {
		s, c := Sin(x), Cos(x)
		if !almostEq(s*s+c*c, 1, 1e-5) {
			t.Errorf("sin²+cos²(%v) = %v", x, s*s+c*c)
		}
		if c != 0 && !almostEq(Tan(x), s/c, 1e-4) {
			t.Errorf("tan(%v) = %v, want %v", x, Tan(x), s/c)
		}
	}
}
