// Package silicon is the hardware stand-in for the validation studies.
//
// The paper validates CRISP against real GPUs (Nsight frame times and
// profiler counters on an RTX 3070 and a Jetson Orin). Real silicon is not
// available here, so this package provides an *independent* first-order
// analytic throughput model: frame time is bounded by shader-ALU
// throughput, texture fill rate, and DRAM bandwidth, with a
// driver-optimization factor (hardware shaders are JIT-optimized by the
// vendor driver, so silicon runs faster than the Mesa-derived shaders the
// simulator replays — the paper's simulated frame times read uniformly
// high for exactly this reason) and small deterministic per-workload
// measurement noise.
//
// Because the analytic model shares none of the cycle simulator's
// machinery, the correlation and MAPE numbers the harness reports are
// genuine cross-model measurements rather than self-comparisons.
package silicon

import (
	"hash/fnv"

	"crisp/internal/config"
	"crisp/internal/render"
)

// per-material per-fragment shader cost in ALU operations (hardware
// estimate after driver optimization).
func fragCost(kind render.MaterialKind) float64 {
	switch kind {
	case render.MatPBR:
		return 160
	case render.MatMaterial:
		return 70
	case render.MatPlanet:
		return 40
	case render.MatToon:
		return 35
	default:
		return 30
	}
}

// vertCost is the per-vertex ALU estimate.
const vertCost = 48.0

// hash01 produces a deterministic per-name value in [0, 1).
func hash01(name string) float64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return float64(h.Sum32()%10000) / 10000
}

// FrameTime estimates the silicon frame time in milliseconds for a
// functionally rendered frame on cfg.
func FrameTime(res *render.Result, cfg *config.GPU, kinds map[string]render.MaterialKind) float64 {
	var aluOps, texReqs, dramBytes, batches float64
	for _, m := range res.Metrics {
		kind := kinds[m.Name]
		aluOps += float64(m.Fragments) * fragCost(kind)
		aluOps += float64(m.ShadedVertices) * vertCost
		ref := m.RefTexAccesses
		if ref == 0 {
			ref = m.SimTexAccesses
		}
		texReqs += float64(ref)
		batches += float64(m.Batches)
		// Unique texture bytes touched scale with reference accesses;
		// framebuffer and pipeline traffic with fragments and vertices.
		dramBytes += float64(ref) * 24
		dramBytes += float64(m.Fragments) * 4
		dramBytes += float64(m.ShadedVertices) * 84 // attributes in + varyings out
	}

	smALU := float64(cfg.NumSMs) * float64(cfg.FPUnits) * 32 // thread-ops/cycle
	texRate := float64(cfg.NumSMs) * 4                       // L1 tex requests/cycle
	aluCycles := aluOps / smALU
	texCycles := texReqs / texRate
	dramCycles := dramBytes / cfg.BytesPerCycle()
	// Per-batch pipeline overhead: vertex fetch, binning, and raster
	// setup serialize partially even with many batches in flight.
	batchCycles := batches * 28

	cycles := aluCycles
	if texCycles > cycles {
		cycles = texCycles
	}
	if dramCycles > cycles {
		cycles = dramCycles
	}
	// Imperfect overlap between the bound resource and the others.
	cycles = cycles*1.10 + 0.08*(aluCycles+texCycles+dramCycles-cycles)
	cycles += batchCycles
	cycles += 1800 // submit/sync overhead

	// Driver optimization: silicon runs the vendor-compiled shader,
	// which is faster than the Mesa-derived one the simulator replays.
	driver := 0.52 + 0.10*hash01(res.Frame)
	// Deterministic measurement noise (clock conversion, run-to-run).
	noise := 0.97 + 0.06*hash01(res.Frame+".noise")

	return cycles * driver * noise / (float64(cfg.CoreClockMHz) * 1e3)
}

// VertexInvocations reports the hardware profiler's per-drawcall vertex
// invocation counts (exact batched shading counts — the profiler reports
// thread counts, while the simulator reports warps-launched × 32; the
// difference is the bottom-left error band of paper Fig. 3).
func VertexInvocations(res *render.Result) map[string]int {
	out := make(map[string]int, len(res.Metrics))
	for _, m := range res.Metrics {
		out[m.Name] = m.ShadedVertices
	}
	return out
}

// TexAccesses reports the per-drawcall hardware L1 texture access counts
// (the exact-LoD reference stream).
func TexAccesses(res *render.Result) map[string]int64 {
	out := make(map[string]int64, len(res.Metrics))
	for _, m := range res.Metrics {
		out[m.Name] = m.RefTexAccesses
	}
	return out
}
