package silicon

import (
	"testing"

	"crisp/internal/config"
	"crisp/internal/render"
)

// fakeResult builds a Result with synthetic metrics.
func fakeResult(name string, frags, verts int, tex int64) *render.Result {
	return &render.Result{
		Frame: name,
		W:     320, H: 180,
		Metrics: []render.DrawMetrics{{
			Name:           name + ".draw",
			Fragments:      frags,
			ShadedVertices: verts,
			RefTexAccesses: tex,
			SimTexAccesses: tex,
		}},
	}
}

func kinds(name string, k render.MaterialKind) map[string]render.MaterialKind {
	return map[string]render.MaterialKind{name + ".draw": k}
}

func TestFrameTimePositiveAndDeterministic(t *testing.T) {
	cfg := config.RTX3070()
	res := fakeResult("X", 50000, 8000, 60000)
	a := FrameTime(res, &cfg, kinds("X", render.MatBasic))
	b := FrameTime(res, &cfg, kinds("X", render.MatBasic))
	if a <= 0 {
		t.Fatalf("frame time = %v", a)
	}
	if a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestFrameTimeScalesWithWork(t *testing.T) {
	cfg := config.RTX3070()
	small := FrameTime(fakeResult("X", 20000, 5000, 20000), &cfg, kinds("X", render.MatBasic))
	big := FrameTime(fakeResult("X", 80000, 5000, 80000), &cfg, kinds("X", render.MatBasic))
	if big <= small {
		t.Errorf("4× fragments should cost more: %v vs %v", big, small)
	}
}

func TestPBRCostsMoreThanBasic(t *testing.T) {
	cfg := config.RTX3070()
	res := fakeResult("X", 50000, 5000, 50000)
	basic := FrameTime(res, &cfg, kinds("X", render.MatBasic))
	pbr := FrameTime(res, &cfg, kinds("X", render.MatPBR))
	if pbr <= basic {
		t.Errorf("PBR %v should exceed basic %v", pbr, basic)
	}
}

func TestSmallerGPUIsSlower(t *testing.T) {
	orin := config.JetsonOrin()
	rtx := config.RTX3070()
	res := fakeResult("X", 80000, 20000, 100000)
	tOrin := FrameTime(res, &orin, kinds("X", render.MatPBR))
	tRTX := FrameTime(res, &rtx, kinds("X", render.MatPBR))
	if tOrin <= tRTX {
		t.Errorf("Orin %v should be slower than the 3070 %v", tOrin, tRTX)
	}
}

func TestNoiseVariesByWorkload(t *testing.T) {
	cfg := config.RTX3070()
	a := FrameTime(fakeResult("A", 50000, 5000, 50000), &cfg, kinds("A", render.MatBasic))
	b := FrameTime(fakeResult("B", 50000, 5000, 50000), &cfg, kinds("B", render.MatBasic))
	if a == b {
		t.Error("identical times across workload names — measurement noise missing")
	}
	// But within 25%: the driver/noise factors are bounded.
	ratio := a / b
	if ratio < 0.75 || ratio > 1.3 {
		t.Errorf("noise too large: ratio %v", ratio)
	}
}

func TestVertexAndTexAccessors(t *testing.T) {
	res := fakeResult("X", 100, 42, 77)
	v := VertexInvocations(res)
	if v["X.draw"] != 42 {
		t.Errorf("VertexInvocations = %v", v)
	}
	tex := TexAccesses(res)
	if tex["X.draw"] != 77 {
		t.Errorf("TexAccesses = %v", tex)
	}
}

func TestFallbackToSimTexWhenNoRef(t *testing.T) {
	cfg := config.RTX3070()
	res := fakeResult("X", 50000, 5000, 0)
	res.Metrics[0].SimTexAccesses = 90000
	withSim := FrameTime(res, &cfg, kinds("X", render.MatBasic))
	res2 := fakeResult("X", 50000, 5000, 90000)
	withRef := FrameTime(res2, &cfg, kinds("X", render.MatBasic))
	if withSim != withRef {
		t.Errorf("fallback differs: %v vs %v", withSim, withRef)
	}
}
