package engine

import (
	"runtime"
	"testing"

	"crisp/internal/sm"
)

func TestResolve(t *testing.T) {
	cases := []struct {
		workers, cores, want int
	}{
		{-1, 8, 1},                          // negative forces serial
		{1, 8, 1},                           // explicit serial
		{3, 8, 3},                           // explicit count passes through
		{100, 8, 8},                         // capped at core count
		{2, 1, 1},                           // single core can never fan out
		{0, 1 << 20, runtime.GOMAXPROCS(0)}, // auto = GOMAXPROCS
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.cores); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.cores, got, c.want)
		}
	}
}

func TestEngineKindSelection(t *testing.T) {
	cores := []*sm.Core{}
	e := New(cores, 1, false)
	defer e.Close()
	if _, ok := e.(*serialEngine); !ok {
		t.Errorf("workers=1 built %T, want serial engine", e)
	}
	if e.Workers() != 1 {
		t.Errorf("serial engine reports %d workers", e.Workers())
	}
}

func TestEmptyStep(t *testing.T) {
	// Either engine with no busy cores must report idle with next=Never.
	for name, e := range map[string]Engine{
		"serial":   &serialEngine{},
		"parallel": newParallel(nil, 2, false),
	} {
		next, busy := e.Step(0)
		if busy || next < sm.Never {
			t.Errorf("%s: empty step reported busy=%v next=%d", name, busy, next)
		}
		e.Close()
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := newParallel(nil, 4, false)
	e.Close()
	e.Close() // second close must not panic
}
