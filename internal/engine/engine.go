// Package engine steps the SM array through simulated time. It owns the
// one loop the whole simulator's wall-clock time is spent in: for every
// simulated time step, run each busy SM's warp schedulers and report the
// earliest future cycle at which any of them could do useful work.
//
// Two implementations share that contract:
//
//   - The serial engine is the legacy reference path: it steps busy cores
//     one after another in ascending SM id, with every cross-SM side
//     effect (memory-system traffic, statistics, CTA completions) applied
//     directly as it happens.
//
//   - The parallel engine shards busy cores across a persistent worker
//     pool using a two-phase deterministic protocol. Phase A (parallel):
//     each core steps against purely per-SM state, recording its would-be
//     memory transactions, statistics, and completion callbacks into its
//     IssueLog (see internal/sm/log.go). Phase B (serial): the logs are
//     drained in canonical order — ascending SM id, program order within
//     an SM — which reproduces the serial engine's exact interleaving of
//     calls into the shared memory system and statistics sinks. Results,
//     stats, stall attribution, state digests, and checkpoints are
//     therefore byte-identical to the serial engine at any worker count.
//
// Both engines skip idle SMs via an O(1) per-core residency check, so the
// long tail of a run (few busy SMs) costs one compare per idle core per
// step under either engine.
//
// On top of that, both engines sleep busy cores at event granularity:
// Core.Step reports the earliest future cycle the core could do useful
// work, recorded as its wakeAt. A core whose wakeAt is still in the
// future is not stepped — it accrues one unit of skip debt per skipped
// engine step instead, bulk-accounted into identical stall/slot counters
// when it next wakes (sm.Core.FlushSkipDebt). Because a sleeping core's
// state is frozen and its stall disposition is cycle-independent, the
// skipped steps are reproduced exactly, so results, digests, and
// checkpoints stay byte-identical to cycle-by-cycle stepping. Passing
// noSkip disables the sleeping (the -no-skip oracle) while maintaining
// wakeAt identically, keeping the two modes digest-compatible.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crisp/internal/sm"
)

// Engine advances every busy SM core one simulated time step at a time.
type Engine interface {
	// Step runs all busy cores for cycle now and returns the earliest
	// future cycle at which the SM array could do useful work, plus
	// whether any core was busy. When no core is busy the next value is
	// meaningless; when all busy cores are permanently blocked it is
	// >= sm.Never (the driver's livelock signal).
	Step(now int64) (next int64, anyBusy bool)
	// Workers reports the effective worker count (1 for the serial engine).
	Workers() int
	// Close releases the engine's goroutines. The engine must not be
	// stepped afterwards.
	Close()
}

// Resolve maps a Workers configuration value to an effective worker
// count: 0 selects auto (GOMAXPROCS), negative forces serial, and any
// count is capped at numCores — more workers than SMs can never help.
func Resolve(workers, numCores int) int {
	if workers < 0 {
		return 1
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numCores {
		workers = numCores
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// New builds the engine for cores: serial for an effective worker count
// of one, the two-phase parallel engine otherwise. Construction switches
// every core into the matching effects mode, so an engine must be built
// (and the previous one closed) before each run. noSkip disables
// event-driven core sleeping (the cycle-by-cycle oracle).
func New(cores []*sm.Core, workers int, noSkip bool) Engine {
	// The oracle also drops the per-warp earliest memo, so a memo
	// invalidation bug diverges from it instead of being shared.
	for _, c := range cores {
		c.SetLegacyStep(noSkip)
	}
	w := Resolve(workers, len(cores))
	if w <= 1 {
		for _, c := range cores {
			c.SetBuffered(false)
		}
		return &serialEngine{cores: cores, noSkip: noSkip}
	}
	return newParallel(cores, w, noSkip)
}

// stepOrSleep is the per-core sleep gate both engines share. It returns
// (wakeAt, false) after charging one unit of skip debt when the core is
// asleep, and (0, true) — with any accrued debt settled — when the core
// must actually be stepped this cycle. Always called serially.
func stepOrSleep(c *sm.Core, now int64, noSkip bool) (int64, bool) {
	if w := c.WakeAt(); !noSkip && now < w {
		c.Skip()
		return w, false
	}
	c.FlushSkipDebt()
	return 0, true
}

// serialEngine is the legacy direct-effects reference path.
type serialEngine struct {
	cores  []*sm.Core
	noSkip bool
}

func (e *serialEngine) Step(now int64) (int64, bool) {
	next := int64(sm.Never)
	anyBusy := false
	for _, c := range e.cores {
		if !c.Busy() {
			continue
		}
		anyBusy = true
		if w, run := stepOrSleep(c, now, e.noSkip); !run {
			if w < next {
				next = w
			}
			continue
		}
		n := c.Step(now)
		c.SetWakeAt(n)
		if n < next {
			next = n
		}
	}
	return next, anyBusy
}

func (e *serialEngine) Workers() int { return 1 }
func (e *serialEngine) Close()       {}

// minFanout is the busy-core count below which phase A runs inline on the
// stepping goroutine: waking workers costs on the order of a microsecond,
// which only pays off once several cores' worth of scheduler work can be
// overlapped. The protocol (and thus the results) are identical either
// way; only the goroutine handoff is skipped.
const minFanout = 4

// parallelEngine is the two-phase worker-pool engine.
type parallelEngine struct {
	cores   []*sm.Core
	workers int
	noSkip  bool

	// Per-step shards, published to workers via the work channel's
	// happens-before edge and read back after wg.Wait.
	busy   []int   // busy core ids, ascending
	nexts  []int64 // phase-A result per busy index
	now    int64
	cursor atomic.Int64

	work   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

func newParallel(cores []*sm.Core, workers int, noSkip bool) *parallelEngine {
	e := &parallelEngine{
		cores:   cores,
		workers: workers,
		noSkip:  noSkip,
		busy:    make([]int, 0, len(cores)),
		nexts:   make([]int64, len(cores)),
		work:    make(chan struct{}),
	}
	for _, c := range cores {
		c.SetBuffered(true)
	}
	for i := 0; i < workers-1; i++ {
		go func() {
			for range e.work {
				e.runShard()
				e.wg.Done()
			}
		}()
	}
	return e
}

// runShard claims busy-core indices off the shared cursor until none
// remain, stepping each claimed core. Claims are dynamic (one core at a
// time) so an SM with heavy scheduler work does not serialize the step
// behind it; results land in disjoint nexts slots, so phase A shares
// nothing but the cursor.
func (e *parallelEngine) runShard() {
	now := e.now
	n := int64(len(e.busy))
	for {
		i := e.cursor.Add(1) - 1
		if i >= n {
			return
		}
		c := e.cores[e.busy[i]]
		next := c.Step(now)
		// wakeAt is per-core state and each core is claimed by exactly one
		// worker, so recording it here is race-free.
		c.SetWakeAt(next)
		e.nexts[i] = next
	}
}

func (e *parallelEngine) Step(now int64) (int64, bool) {
	// The busy scan doubles as the sleep gate: still-sleeping cores are
	// left off the phase-A list (contributing only their wakeAt to next),
	// and waking cores settle their skip debt here, in the serial prelude
	// — FlushSkipDebt writes the shared statistics sinks, which phase A
	// must never touch.
	busy := e.busy[:0]
	next := int64(sm.Never)
	anyBusy := false
	for id, c := range e.cores {
		if !c.Busy() {
			continue
		}
		anyBusy = true
		if w, run := stepOrSleep(c, now, e.noSkip); !run {
			if w < next {
				next = w
			}
			continue
		}
		busy = append(busy, id)
	}
	e.busy = busy
	if !anyBusy {
		return sm.Never, false
	}
	if len(busy) == 0 {
		// Every busy core is asleep; nothing to step or commit this cycle.
		return next, true
	}

	// Phase A: step every busy core against per-SM state only.
	e.now = now
	e.cursor.Store(0)
	if helpers := min(e.workers, len(busy)) - 1; helpers > 0 && len(busy) >= minFanout {
		e.wg.Add(helpers)
		for i := 0; i < helpers; i++ {
			e.work <- struct{}{}
		}
		e.runShard()
		e.wg.Wait()
	} else {
		e.runShard()
	}

	// Phase B: serial commit in canonical order (ascending SM id; each
	// core's log is already in scheduler/program order). This is the only
	// code that touches the shared memory system and statistics sinks.
	for i, id := range busy {
		e.cores[id].CommitStep(now)
		if e.nexts[i] < next {
			next = e.nexts[i]
		}
	}
	return next, true
}

func (e *parallelEngine) Workers() int { return e.workers }

func (e *parallelEngine) Close() {
	if !e.closed {
		e.closed = true
		close(e.work)
	}
}
